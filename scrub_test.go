package doppel

// DB-level WAL scrub tests: ScrubWAL audits a live database's sealed
// segments on demand, the ScrubEvery background loop does it unattended,
// and damage surfaces through Stats.

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// corruptSealedSegment flips a byte in the middle of dir's oldest
// segment file and returns its name.
func corruptSealedSegment(t *testing.T, dir string) string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range ents {
		if !strings.HasPrefix(ent.Name(), "wal-") {
			continue
		}
		path := filepath.Join(dir, ent.Name())
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(raw) == 0 {
			continue
		}
		raw[len(raw)/2] ^= 0x40
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		return ent.Name()
	}
	t.Fatal("no non-empty segment to corrupt")
	return ""
}

// scrubDB opens a database whose log has several sealed segments.
func scrubDB(t *testing.T, opts Options) (*DB, string) {
	t.Helper()
	dir := t.TempDir()
	opts.Workers = 1
	opts.RedoLog = dir
	opts.MaxSegmentBytes = 256
	// Size rotation is checked between group commits; without SyncCommit
	// every Exec below could be acknowledged into one still-buffered
	// batch and no segment would ever seal.
	opts.SyncCommit = true
	db, err := OpenErr(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(db.Close)
	for i := 0; i < 60; i++ {
		if err := db.Exec(func(tx Tx) error {
			return tx.PutBytes("key-with-some-length", []byte("value-padding-to-force-rotation"))
		}); err != nil {
			t.Fatal(err)
		}
	}
	return db, dir
}

func TestScrubWALCleanThenDamaged(t *testing.T) {
	db, dir := scrubDB(t, Options{})
	stats, err := db.ScrubWAL()
	if err != nil {
		t.Fatalf("clean log failed scrub: %v", err)
	}
	if stats.Segments == 0 {
		t.Fatal("scrub audited no sealed segments; MaxSegmentBytes never rotated")
	}
	seg := corruptSealedSegment(t, dir)
	if _, err := db.ScrubWAL(); err == nil {
		t.Fatalf("scrub passed after corrupting %s", seg)
	}
	s := db.Stats()
	if s.ScrubPasses < 2 {
		t.Fatalf("ScrubPasses = %d, want >= 2", s.ScrubPasses)
	}
	if s.ScrubError == "" {
		t.Fatal("Stats.ScrubError empty after a failed scrub")
	}
}

func TestScrubWALRequiresRedoLog(t *testing.T) {
	db := Open(Options{Workers: 1})
	defer db.Close()
	if _, err := db.ScrubWAL(); !errors.Is(err, ErrRequiresRedoLog) {
		t.Fatalf("ScrubWAL = %v, want ErrRequiresRedoLog", err)
	}
}

// TestScrubEveryBackgroundLoop: with ScrubEvery set, passes run
// unattended and a decayed segment surfaces in Stats without any call.
func TestScrubEveryBackgroundLoop(t *testing.T) {
	db, dir := scrubDB(t, Options{ScrubEvery: 10 * time.Millisecond})
	corruptSealedSegment(t, dir)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if s := db.Stats(); s.ScrubPasses > 0 && s.ScrubError != "" {
			break
		}
		if time.Now().After(deadline) {
			s := db.Stats()
			t.Fatalf("background scrub never reported: passes=%d err=%q", s.ScrubPasses, s.ScrubError)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
