package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// This file is the tiny analysis framework doppelvet runs on. It
// mirrors the shape of golang.org/x/tools/go/analysis — Analyzer, Pass,
// Diagnostic — but is self-contained on the standard library so the
// suite builds offline with no module dependencies. The one structural
// extension is that an Analyzer's state lives in a Runner created per
// driver invocation: the repo-specific invariants (atomic coherence,
// lock ordering, sentinel bijection) are whole-program properties, so a
// Runner sees every package first and reports in Finish.

// Diagnostic is one finding, positioned in the shared FileSet.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Pass presents one type-checked package (a "unit": a package, its
// in-package-test variant, or an external test package) to a Runner.
type Pass struct {
	Unit  *Unit
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	// Report records a finding against this unit.
	Report func(pos token.Pos, format string, args ...any)
}

// Runner holds one analyzer's per-invocation state.
type Runner interface {
	// Package is called once per unit, in deterministic order.
	Package(p *Pass)
	// Finish is called after every unit has been presented; program-wide
	// findings are reported here through the passes retained by Package.
	Finish()
}

// Analyzer is a named check with a fresh-state factory.
type Analyzer struct {
	Name string
	Doc  string
	New  func() Runner
}

// runAnalyzers presents every unit to every analyzer and returns the
// deduplicated findings sorted by position.
func runAnalyzers(fset *token.FileSet, units []*Unit, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		r := a.New()
		for _, u := range units {
			name := a.Name
			p := &Pass{
				Unit:  u,
				Fset:  fset,
				Files: u.Files,
				Pkg:   u.Pkg,
				Info:  u.Info,
			}
			p.Report = func(pos token.Pos, format string, args ...any) {
				diags = append(diags, Diagnostic{
					Pos:      pos,
					Analyzer: name,
					Message:  fmt.Sprintf(format, args...),
				})
			}
			r.Package(p)
		}
		r.Finish()
	}
	return dedupDiagnostics(fset, diags)
}

// dedupDiagnostics sorts findings by file position and drops exact
// duplicates: a package and its in-package-test variant share non-test
// files, so per-file findings would otherwise appear twice.
func dedupDiagnostics(fset *token.FileSet, diags []Diagnostic) []Diagnostic {
	type key struct {
		pos      string
		analyzer string
		msg      string
	}
	seen := map[key]bool{}
	var out []Diagnostic
	for _, d := range diags {
		k := key{fset.Position(d.Pos).String(), d.Analyzer, d.Message}
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool {
		pi, pj := fset.Position(out[i].Pos), fset.Position(out[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return out[i].Message < out[j].Message
	})
	return out
}

// walkStack is ast.Inspect with an ancestor stack: fn sees each node
// with stack holding its ancestors, outermost first. Returning false
// skips the node's children.
func walkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		ok := fn(n, stack)
		stack = append(stack, n)
		if !ok {
			// Children are skipped; pop immediately since the nil
			// callback for this node will not come.
			stack = stack[:len(stack)-1]
		}
		return ok
	})
}
