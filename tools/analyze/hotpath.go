package main

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// hotpathalloc turns the 0/1-allocs-per-op contract from a
// benchmark-only property into a static gate. Functions annotated
//
//	//doppel:hotpath
//
// (the OCC commit path, redo logging, the WAL append, the router's
// probe path, the follower apply loop) are located in the parsed tree,
// then `go build -gcflags=-m` runs over their packages and every
// "escapes to heap" / "moved to heap" line falling inside an annotated
// body must appear in the golden allow file (hotpath.allow, entries
// "symbol: message"). The annotated-symbol set itself is frozen in a
// second golden (hotpath.funcs) the way tools/apicheck freezes the
// public API, so silently deleting an annotation is caught too.

const hotpathMarker = "//doppel:hotpath"

// hotpathFunc is one annotated function.
type hotpathFunc struct {
	symbol  string // e.g. doppel/internal/core.(*Tx).commit
	pkgPath string
	file    string // path as registered in the FileSet
	relFile string // module-root-relative, for matching compiler output
	start   int    // first line of the declaration
	end     int    // last line of the body
}

// collectHotpath finds every annotated function in the loaded units.
// Test files never qualify: the contract is about production paths.
func collectHotpath(fset *token.FileSet, units []*Unit, modRoot string) []hotpathFunc {
	var funcs []hotpathFunc
	seen := map[string]bool{}
	for _, u := range units {
		for _, f := range u.Files {
			tf := fset.File(f.Pos())
			if tf == nil || strings.HasSuffix(tf.Name(), "_test.go") {
				continue
			}
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Doc == nil || fd.Body == nil {
					continue
				}
				annotated := false
				for _, c := range fd.Doc.List {
					if strings.TrimSpace(c.Text) == hotpathMarker {
						annotated = true
					}
				}
				if !annotated {
					continue
				}
				symbol := u.PkgPath + "." + fd.Name.Name
				if fd.Recv != nil && len(fd.Recv.List) > 0 {
					symbol = u.PkgPath + "." + recvString(fd.Recv.List[0].Type) + "." + fd.Name.Name
				}
				if seen[symbol] {
					continue // base package and test variant share files
				}
				seen[symbol] = true
				rel := tf.Name()
				if r, err := filepath.Rel(modRoot, tf.Name()); err == nil {
					rel = r
				}
				funcs = append(funcs, hotpathFunc{
					symbol:  symbol,
					pkgPath: u.PkgPath,
					file:    tf.Name(),
					relFile: rel,
					start:   fset.Position(fd.Pos()).Line,
					end:     fset.Position(fd.Body.End()).Line,
				})
			}
		}
	}
	sort.Slice(funcs, func(i, j int) bool { return funcs[i].symbol < funcs[j].symbol })
	return funcs
}

func recvString(t ast.Expr) string {
	switch t := t.(type) {
	case *ast.StarExpr:
		return "(*" + recvString(t.X) + ")"
	case *ast.Ident:
		return t.Name
	case *ast.IndexExpr: // generic receiver
		return recvString(t.X)
	}
	return "?"
}

// checkHotpathGolden compares the annotated-symbol set against the
// golden list. With update true it rewrites the golden instead.
func checkHotpathGolden(funcs []hotpathFunc, goldenPath string, update bool) ([]string, error) {
	current := make([]string, len(funcs))
	for i, f := range funcs {
		current[i] = f.symbol
	}
	if update {
		data := strings.Join(current, "\n")
		if len(current) > 0 {
			data += "\n"
		}
		return nil, os.WriteFile(goldenPath, []byte(data), 0o644)
	}
	raw, err := os.ReadFile(goldenPath)
	if err != nil {
		return nil, fmt.Errorf("reading hotpath golden (run with -update-hotpath to create it): %w", err)
	}
	want := map[string]bool{}
	for _, line := range strings.Split(string(raw), "\n") {
		if line = strings.TrimSpace(line); line != "" && !strings.HasPrefix(line, "#") {
			want[line] = true
		}
	}
	have := map[string]bool{}
	for _, s := range current {
		have[s] = true
	}
	var problems []string
	for _, s := range sortedKeys(want) {
		if !have[s] {
			problems = append(problems, fmt.Sprintf("hotpathalloc: %s is in %s but no longer carries %s; restore the annotation or update the golden with -update-hotpath", s, filepath.Base(goldenPath), hotpathMarker))
		}
	}
	for _, s := range sortedKeys(have) {
		if !want[s] {
			problems = append(problems, fmt.Sprintf("hotpathalloc: %s carries %s but is missing from %s; run with -update-hotpath", s, hotpathMarker, filepath.Base(goldenPath)))
		}
	}
	return problems, nil
}

// loadAllow parses the allow file: one "symbol: message" entry per
// line, '#' comments.
func loadAllow(path string) (map[string]bool, error) {
	allow := map[string]bool{}
	raw, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return allow, nil // empty allow list is valid
		}
		return nil, err
	}
	for _, line := range strings.Split(string(raw), "\n") {
		if line = strings.TrimSpace(line); line != "" && !strings.HasPrefix(line, "#") {
			allow[line] = true
		}
	}
	return allow, nil
}

// runEscapeGate builds the annotated packages with -gcflags=-m and
// reports heap escapes inside annotated bodies that the allow file
// does not cover. The build runs from the module root so compiler
// paths match relFile.
func runEscapeGate(modRoot string, funcs []hotpathFunc, allowPath string) ([]string, error) {
	if len(funcs) == 0 {
		return nil, nil
	}
	allow, err := loadAllow(allowPath)
	if err != nil {
		return nil, err
	}
	pkgSet := map[string]bool{}
	for _, f := range funcs {
		pkgSet[f.pkgPath] = true
	}
	args := append([]string{"build", "-gcflags=-m"}, sortedKeys(pkgSet)...)
	cmd := exec.Command("go", args...)
	cmd.Dir = modRoot
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go build -gcflags=-m: %v\n%s", err, stderr.String())
	}

	var problems []string
	for _, line := range strings.Split(stderr.String(), "\n") {
		if !strings.Contains(line, "escapes to heap") && !strings.Contains(line, "moved to heap") {
			continue
		}
		file, lineNo, msg, ok := parseEscapeLine(line)
		if !ok {
			continue
		}
		for _, f := range funcs {
			if lineNo < f.start || lineNo > f.end {
				continue
			}
			if f.relFile != file && !strings.HasSuffix(f.relFile, file) && !strings.HasSuffix(file, f.relFile) {
				continue
			}
			entry := f.symbol + ": " + msg
			if !allow[entry] {
				problems = append(problems, fmt.Sprintf("hotpathalloc: %s:%d: %s in %s %s; eliminate the allocation or add %q to %s",
					file, lineNo, msg, hotpathMarker, f.symbol, entry, filepath.Base(allowPath)))
			}
			break
		}
	}
	sort.Strings(problems)
	return problems, nil
}

// parseEscapeLine splits "file.go:12:7: x escapes to heap" into its
// parts.
func parseEscapeLine(line string) (file string, lineNo int, msg string, ok bool) {
	parts := strings.SplitN(line, ":", 4)
	if len(parts) != 4 || !strings.HasSuffix(parts[0], ".go") {
		return "", 0, "", false
	}
	n, err := strconv.Atoi(parts[1])
	if err != nil {
		return "", 0, "", false
	}
	return parts[0], n, strings.TrimSpace(parts[3]), true
}
