package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// The fixtures under testdata/src are deliberately broken packages,
// one per analyzer (go tooling never matches testdata in wildcard
// patterns, so they are invisible to `go build ./...` and to the CI
// run of the suite itself). Expectations are written analysistest
// style: a `// want "regex"` comment on the line the diagnostic must
// land on.

// loadFixture type-checks one testdata package through the production
// loader and runs the given analyzers over it.
func loadFixture(t *testing.T, analyzers []*Analyzer, pkgs ...string) (*token.FileSet, []*Unit, []Diagnostic) {
	t.Helper()
	patterns := make([]string, len(pkgs))
	for i, p := range pkgs {
		patterns[i] = "./testdata/src/" + p
	}
	fset := token.NewFileSet()
	units, err := load(fset, ".", patterns, false)
	if err != nil {
		t.Fatal(err)
	}
	return fset, units, runAnalyzers(fset, units, analyzers)
}

// wantsIn parses the `// want "..."` expectations out of the loaded
// fixture files, keyed by file:line.
func wantsIn(fset *token.FileSet, units []*Unit) map[string][]*regexp.Regexp {
	wants := map[string][]*regexp.Regexp{}
	for _, u := range units {
		for _, f := range u.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					if !strings.HasPrefix(text, "want ") {
						continue
					}
					key := posKey(fset, c.Pos())
					for _, field := range splitQuoted(strings.TrimPrefix(text, "want ")) {
						wants[key] = append(wants[key], regexp.MustCompile(field))
					}
				}
			}
		}
	}
	return wants
}

func splitQuoted(s string) []string {
	var out []string
	for {
		start := strings.IndexByte(s, '"')
		if start < 0 {
			return out
		}
		rest := s[start:]
		q, err := strconv.QuotedPrefix(rest)
		if err != nil {
			return out
		}
		unq, _ := strconv.Unquote(q)
		out = append(out, unq)
		s = rest[len(q):]
	}
}

func posKey(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	return fmt.Sprintf("%s:%d", p.Filename, p.Line)
}

// checkWants asserts the diagnostics exactly cover the expectations.
func checkWants(t *testing.T, fset *token.FileSet, units []*Unit, diags []Diagnostic) {
	t.Helper()
	wants := wantsIn(fset, units)
	matched := map[string][]bool{}
	for key, res := range wants {
		matched[key] = make([]bool, len(res))
	}
	for _, d := range diags {
		key := posKey(fset, d.Pos)
		res, ok := wants[key]
		if !ok {
			t.Errorf("unexpected diagnostic at %s: %s: %s", fset.Position(d.Pos), d.Analyzer, d.Message)
			continue
		}
		found := false
		for i, re := range res {
			if !matched[key][i] && re.MatchString(d.Message) {
				matched[key][i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("diagnostic at %s matches no want: %s", fset.Position(d.Pos), d.Message)
		}
	}
	for key, res := range wants {
		for i, re := range res {
			if !matched[key][i] {
				t.Errorf("missing diagnostic at %s matching %q", key, re)
			}
		}
	}
}

func TestAtomicCoherenceFixture(t *testing.T) {
	fset, units, diags := loadFixture(t, []*Analyzer{atomicCoherenceAnalyzer}, "atomiccoherence")
	checkWants(t, fset, units, diags)
}

func TestLockOrderFixture(t *testing.T) {
	fset, units, diags := loadFixture(t, []*Analyzer{lockOrderAnalyzer}, "lockorder")
	checkWants(t, fset, units, diags)
}

func TestSentinelErrFixture(t *testing.T) {
	fset, units, diags := loadFixture(t, []*Analyzer{sentinelErrAnalyzer}, "sentinelerr")
	checkWants(t, fset, units, diags)
}

func TestNilnessFixture(t *testing.T) {
	fset, units, diags := loadFixture(t, []*Analyzer{nilnessAnalyzer}, "nilness")
	checkWants(t, fset, units, diags)
}

func TestUnusedWriteFixture(t *testing.T) {
	fset, units, diags := loadFixture(t, []*Analyzer{unusedWriteAnalyzer}, "unusedwrite")
	checkWants(t, fset, units, diags)
}

// TestSentinelBijection seeds a root/server fixture pair with three
// violations: a sentinel with no status, an orphan status, and mapping
// functions that skip both.
func TestSentinelBijection(t *testing.T) {
	oldRoot, oldServer := sentinelRootPkg, sentinelServerPkg
	sentinelRootPkg = "doppel/tools/analyze/testdata/src/wireroot"
	sentinelServerPkg = "doppel/tools/analyze/testdata/src/wireserver"
	defer func() { sentinelRootPkg, sentinelServerPkg = oldRoot, oldServer }()

	_, _, diags := loadFixture(t, []*Analyzer{sentinelErrAnalyzer}, "wireroot", "wireserver")
	wantSubstrings := []string{
		"missing statusErrBeta",
		"missing statusErrRetriesExhausted",
		"statusErrGamma has no exported sentinel",
		"ErrBeta is not handled by statusForError",
		"ErrRetriesExhausted is not handled by statusForError",
		"statusErrGamma is not handled by sentinelFor",
	}
	for _, want := range wantSubstrings {
		found := false
		for _, d := range diags {
			if strings.Contains(d.Message, want) {
				found = true
			}
		}
		if !found {
			t.Errorf("no diagnostic contains %q; got %d diagnostics", want, len(diags))
		}
	}
	if len(diags) != len(wantSubstrings) {
		for _, d := range diags {
			t.Logf("  %s: %s", d.Analyzer, d.Message)
		}
		t.Errorf("got %d diagnostics, want %d", len(diags), len(wantSubstrings))
	}
}

// TestEscapeGateFixture proves the gate fails on a known escape in an
// annotated function and passes once the escape is allow-listed.
func TestEscapeGateFixture(t *testing.T) {
	fset := token.NewFileSet()
	units, err := load(fset, ".", []string{"./testdata/src/hotpath"}, false)
	if err != nil {
		t.Fatal(err)
	}
	modRoot, err := moduleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	funcs := collectHotpath(fset, units, modRoot)
	if len(funcs) != 2 {
		t.Fatalf("collected %d annotated functions, want 2 (Clean, Leak)", len(funcs))
	}

	// With an empty allow list the known escape must fail the gate.
	problems, err := runEscapeGate(modRoot, funcs, filepath.Join(t.TempDir(), "empty.allow"))
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) == 0 {
		t.Fatal("escape gate passed a hot-path function with a guaranteed escape")
	}
	var leakEntry string
	for _, p := range problems {
		if !strings.Contains(p, ".Leak") {
			t.Errorf("unexpected escape outside Leak: %s", p)
		}
		if m := regexp.MustCompile(`add "([^"]+)"`).FindStringSubmatch(p); m != nil {
			leakEntry = m[1]
		}
	}
	if leakEntry == "" {
		t.Fatalf("no allow entry suggested in %q", problems)
	}

	// Allow-listing the suggested entry clears the gate.
	allowPath := filepath.Join(t.TempDir(), "hotpath.allow")
	if err := os.WriteFile(allowPath, []byte(leakEntry+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	problems, err = runEscapeGate(modRoot, funcs, allowPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 0 {
		t.Fatalf("escape gate still failing with allow entry: %v", problems)
	}
}

// TestHotpathGolden proves removing a //doppel:hotpath annotation (or
// adding one) is caught against the golden symbol list, apicheck-style.
func TestHotpathGolden(t *testing.T) {
	fset := token.NewFileSet()
	units, err := load(fset, ".", []string{"./testdata/src/hotpath"}, false)
	if err != nil {
		t.Fatal(err)
	}
	modRoot, err := moduleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	funcs := collectHotpath(fset, units, modRoot)
	golden := filepath.Join(t.TempDir(), "hotpath.funcs")

	if _, err := checkHotpathGolden(funcs, golden, true); err != nil {
		t.Fatal(err)
	}
	problems, err := checkHotpathGolden(funcs, golden, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 0 {
		t.Fatalf("fresh golden not clean: %v", problems)
	}

	// Simulate deleting an annotation: the symbol stays in the golden
	// but is no longer collected.
	problems, err = checkHotpathGolden(funcs[:1], golden, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 1 || !strings.Contains(problems[0], "no longer carries") {
		t.Fatalf("annotation removal not caught: %v", problems)
	}

	// Simulate annotating a new function without updating the golden.
	extra := append([]hotpathFunc{{symbol: "doppel/internal/fake.New"}}, funcs...)
	problems, err = checkHotpathGolden(extra, golden, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 1 || !strings.Contains(problems[0], "-update-hotpath") {
		t.Fatalf("new annotation not caught: %v", problems)
	}
}

// TestRepoHotpathGoldenCurrent keeps the checked-in golden in sync
// with the annotations in the real tree.
func TestRepoHotpathGoldenCurrent(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole module")
	}
	modRoot, err := moduleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	units, err := load(fset, modRoot, []string{"./..."}, false)
	if err != nil {
		t.Fatal(err)
	}
	funcs := collectHotpath(fset, units, modRoot)
	if len(funcs) < 5 {
		t.Fatalf("only %d annotated hot-path functions, want >= 5", len(funcs))
	}
	problems, err := checkHotpathGolden(funcs, filepath.Join(modRoot, "tools/analyze/hotpath.funcs"), false)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range problems {
		t.Error(p)
	}
}

// TestWalkStack pins the stack bookkeeping walkStack does around
// pruned subtrees, which every whole-program analyzer relies on.
func TestWalkStack(t *testing.T) {
	fset := token.NewFileSet()
	units, err := load(fset, ".", []string{"./testdata/src/nilness"}, false)
	if err != nil {
		t.Fatal(err)
	}
	pruned := false
	walkStack(units[0].Files[0], func(n ast.Node, stack []ast.Node) bool {
		// Every stack entry must positionally contain the next one, and
		// the last must contain n — a stale entry left behind by a
		// pruned subtree breaks this for its next sibling.
		nodes := append(append([]ast.Node{}, stack...), n)
		for i := 1; i < len(nodes); i++ {
			switch nodes[i].(type) {
			case *ast.CommentGroup, *ast.Comment:
				continue // doc comments precede their owner's Pos
			}
			if _, isFile := nodes[i-1].(*ast.File); isFile {
				continue // a File's Pos is the package clause
			}
			if nodes[i].Pos() < nodes[i-1].Pos() || nodes[i].End() > nodes[i-1].End() {
				t.Fatalf("stack entry %T does not contain %T at %s",
					nodes[i-1], nodes[i], fset.Position(n.Pos()))
			}
		}
		// Prune every other FuncDecl so both paths are exercised.
		if _, ok := n.(*ast.FuncDecl); ok {
			pruned = !pruned
			return pruned
		}
		return true
	})
}
