// Command analyze ("doppelvet") is the repo's static-invariant suite.
// It runs four repo-specific analyzers — atomiccoherence, lockorder,
// hotpathalloc and sentinelerr — plus two conservative stdlib
// reimplementations of stock passes (nilness, unusedwrite), delegates
// copylocks/lostcancel/atomic to `go vet`, and gates the annotated
// hot-path functions against `go build -gcflags=-m` escape output.
//
// Usage:
//
//	go run ./tools/analyze ./...
//
// Flags:
//
//	-tests=false       skip _test.go files and test packages
//	-vet=false         skip the go vet delegation
//	-escapes=false     skip the hot-path escape gate
//	-update-hotpath    rewrite the golden annotated-symbol list
//	-funcs, -allow     override the golden file paths (module-root relative)
//
// Exit status: 0 clean, 1 findings, 2 driver failure.
package main

import (
	"flag"
	"fmt"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
)

func main() {
	tests := flag.Bool("tests", true, "analyze test files and test packages")
	vet := flag.Bool("vet", true, "also run go vet's copylocks, lostcancel and atomic checks")
	escapes := flag.Bool("escapes", true, "run the hot-path escape gate")
	updateHotpath := flag.Bool("update-hotpath", false, "rewrite the golden list of //doppel:hotpath symbols")
	funcsPath := flag.String("funcs", "tools/analyze/hotpath.funcs", "golden annotated-symbol list, relative to the module root")
	allowPath := flag.String("allow", "tools/analyze/hotpath.allow", "allowed hot-path escapes, relative to the module root")
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	dir, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	modRoot, err := moduleRoot(dir)
	if err != nil {
		fatal(err)
	}

	fset := token.NewFileSet()
	units, err := load(fset, dir, patterns, *tests)
	if err != nil {
		fatal(err)
	}

	analyzers := []*Analyzer{
		atomicCoherenceAnalyzer,
		lockOrderAnalyzer,
		sentinelErrAnalyzer,
		nilnessAnalyzer,
		unusedWriteAnalyzer,
	}
	found := false
	for _, d := range runAnalyzers(fset, units, analyzers) {
		found = true
		fmt.Printf("%s: %s: %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
	}

	if *vet {
		args := append([]string{"vet", "-copylocks", "-lostcancel", "-atomic"}, patterns...)
		cmd := exec.Command("go", args...)
		cmd.Dir = dir
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			if _, ok := err.(*exec.ExitError); !ok {
				fatal(err)
			}
			found = true
		}
	}

	if *escapes || *updateHotpath {
		funcs := collectHotpath(fset, units, modRoot)
		problems, err := checkHotpathGolden(funcs, filepath.Join(modRoot, *funcsPath), *updateHotpath)
		if err != nil {
			fatal(err)
		}
		for _, p := range problems {
			found = true
			fmt.Println(p)
		}
		if *escapes {
			escProblems, err := runEscapeGate(modRoot, funcs, filepath.Join(modRoot, *allowPath))
			if err != nil {
				fatal(err)
			}
			for _, p := range escProblems {
				found = true
				fmt.Println(p)
			}
		}
	}

	if found {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "analyze:", err)
	os.Exit(2)
}
