package main

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Packages holding the two halves of the wire-status bijection; tests
// point these at fixture packages.
var (
	sentinelRootPkg   = "doppel"
	sentinelServerPkg = "doppel/internal/server"
)

// sentinelerr enforces the error-identity contract the wire protocol
// depends on (internal/server/doc.go):
//
//   - Sentinels must be matched with errors.Is, never ==/!=. The
//     engine, router and server all wrap sentinels with context
//     (fmt.Errorf("...: %w", ErrClosed)), and the client rebuilds
//     remote errors that only Unwrap to the sentinel — a direct
//     comparison works in unit tests and silently fails in
//     production. Only module-local Err* sentinels are in scope;
//     stdlib identities like io.EOF, which the WAL replay reader
//     compares by design, are left alone.
//
//   - The wire status table stays in bijection with the exported
//     sentinels: every exported Err<Name> in the root package must
//     have a statusErr<Name> constant in internal/server, and vice
//     versa, and both statusForError and sentinelFor must mention
//     every pair. Adding a sentinel without threading it through the
//     wire demotes it to an untyped statusErr on remote clients.
var sentinelErrAnalyzer = &Analyzer{
	Name: "sentinelerr",
	Doc:  "Err* sentinels must use errors.Is; wire status table must stay in bijection with exported sentinels",
	New:  func() Runner { return &sentinelErr{} },
}

type sentinelErr struct {
	rootPass   *Pass
	serverPass *Pass
}

// sentinelObj reports whether e resolves to a module-local exported
// error sentinel (an Err*-named variable of type error).
func sentinelObj(info *types.Info, e ast.Expr) *types.Var {
	var id *ast.Ident
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil
	}
	v, ok := info.Uses[id].(*types.Var)
	if !ok || v.Pkg() == nil || v.IsField() {
		return nil
	}
	pkg := v.Pkg().Path()
	if pkg != modulePathPrefix && !strings.HasPrefix(pkg, modulePathPrefix+"/") {
		return nil
	}
	if !strings.HasPrefix(v.Name(), "Err") || len(v.Name()) < 4 {
		return nil
	}
	if c := v.Name()[3]; c < 'A' || c > 'Z' {
		return nil
	}
	errType, _ := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	if errType == nil || !types.Implements(v.Type(), errType) {
		return nil
	}
	return v
}

func isNilIdent(info *types.Info, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := info.Uses[id].(*types.Nil)
	return isNil
}

func (s *sentinelErr) Package(p *Pass) {
	switch p.Pkg.Path() {
	case sentinelRootPkg:
		if s.rootPass == nil {
			s.rootPass = p
		}
	case sentinelServerPkg:
		if s.serverPass == nil {
			s.serverPass = p
		}
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				for i, operand := range []ast.Expr{n.X, n.Y} {
					v := sentinelObj(p.Info, operand)
					if v == nil {
						continue
					}
					other := n.Y
					if i == 1 {
						other = n.X
					}
					if isNilIdent(p.Info, other) {
						continue // ErrFoo == nil is an identity check, not matching
					}
					p.Report(n.Pos(), "comparison %s %s sentinel %s; wrapped and remote errors will not match — use errors.Is",
						exprString(n.X), n.Op, v.Name())
					break
				}
			case *ast.SwitchStmt:
				// switch err { case ErrFoo: } — same identity trap.
				if n.Tag == nil {
					return true
				}
				tv, ok := p.Info.Types[n.Tag]
				if !ok || tv.Type == nil || tv.Type.String() != "error" {
					return true
				}
				for _, st := range n.Body.List {
					cc, ok := st.(*ast.CaseClause)
					if !ok {
						continue
					}
					for _, e := range cc.List {
						if v := sentinelObj(p.Info, e); v != nil {
							p.Report(e.Pos(), "switch on error identity matches sentinel %s; wrapped and remote errors will not match — use errors.Is",
								v.Name())
						}
					}
				}
			}
			return true
		})
	}
}

func (s *sentinelErr) Finish() {
	if s.rootPass == nil || s.serverPass == nil {
		return // bijection halves not both under analysis
	}
	// Exported Err* sentinels in the root package.
	sentinels := map[string]bool{} // suffix after "Err"
	scope := s.rootPass.Pkg.Scope()
	for _, name := range scope.Names() {
		v, ok := scope.Lookup(name).(*types.Var)
		if !ok || !v.Exported() || !strings.HasPrefix(name, "Err") || len(name) < 4 {
			continue
		}
		errType, _ := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
		if errType == nil || !types.Implements(v.Type(), errType) {
			continue
		}
		sentinels[name[3:]] = true
	}
	// statusErr<Suffix> constants in the server package.
	statuses := map[string]bool{}
	sscope := s.serverPass.Pkg.Scope()
	for _, name := range sscope.Names() {
		if _, ok := sscope.Lookup(name).(*types.Const); !ok {
			continue
		}
		if !strings.HasPrefix(name, "statusErr") || len(name) <= len("statusErr") {
			continue
		}
		statuses[name[len("statusErr"):]] = true
	}

	reportAt := s.serverPass.Files[0].Pos()
	for _, suffix := range sortedKeys(sentinels) {
		if !statuses[suffix] {
			s.serverPass.Report(reportAt, "wire status table is missing statusErr%s for exported sentinel Err%s; remote clients will see it demoted to the untyped statusErr",
				suffix, suffix)
		}
	}
	for _, suffix := range sortedKeys(statuses) {
		if !sentinels[suffix] {
			s.serverPass.Report(reportAt, "wire status statusErr%s has no exported sentinel Err%s in package %s; the typed code can never be produced",
				suffix, suffix, sentinelRootPkg)
		}
	}

	// Both mapping functions must mention every pair they translate.
	s.checkMentions("statusForError", sentinels, "Err", "sentinel Err%s is not handled by statusForError; it will cross the wire as the untyped statusErr")
	s.checkMentions("sentinelFor", statuses, "statusErr", "status statusErr%s is not handled by sentinelFor; clients will reject it as an unknown status")
}

// checkMentions verifies that the named function in the server package
// mentions prefix+suffix for every suffix in want.
func (s *sentinelErr) checkMentions(funcName string, want map[string]bool, prefix, format string) {
	var body *ast.BlockStmt
	var pos token.Pos
	for _, f := range s.serverPass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == funcName && fd.Recv == nil {
				body = fd.Body
				pos = fd.Pos()
			}
		}
	}
	if body == nil {
		return // no translation function in this tree shape; bijection check above still holds
	}
	mentioned := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && strings.HasPrefix(id.Name, prefix) {
			mentioned[id.Name[len(prefix):]] = true
		}
		return true
	})
	for _, suffix := range sortedKeys(want) {
		if !mentioned[suffix] {
			s.serverPass.Report(pos, format, suffix)
		}
	}
}

func sortedKeys(m map[string]bool) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
