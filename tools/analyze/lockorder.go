package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// modulePathPrefix scopes the "module type" heuristics (lock protocols,
// call summaries) to the code under analysis; tests override it to
// point at fixture packages.
var modulePathPrefix = "doppel"

// lockorder builds a static lock-acquisition graph and enforces the two
// ordering rules the 2PC and phase-change protocols depend on
// (internal/router/doc.go, internal/core/doc.go):
//
//   - No cycles: if any execution path acquires lock class A while
//     holding B, no path may acquire B while holding A. Lock classes
//     are named structurally — "pkg.Type.field" for mutex fields,
//     "pkg.Type.field[]" for per-element locks in a slice/array field,
//     and "pkg.Type" for module types with their own Lock/Unlock
//     protocol (store.Record's TID-word spinlock). Held sets propagate
//     through direct calls to module functions, so an edge is found
//     even when the inner acquisition is a call deep.
//
//   - Ascending order inside lock loops: a range loop that acquires
//     per-element locks (locks[s].Lock() with s the range variable)
//     must iterate a slice the package establishes sorted (sort.Ints /
//     sort.Slice / slices.Sort on the same variable or field) — the
//     ascending shard-ID rule that keeps concurrent cross-shard
//     commits deadlock-free.
//
// The walk is linear per function body (no path sensitivity): both
// branches of an if are visited with the same held set, and a lock
// released on only one path is treated as released. This
// over-approximates acquisition order but never invents an
// acquisition, which is what the cycle check needs.
var lockOrderAnalyzer = &Analyzer{
	Name: "lockorder",
	Doc:  "static lock-acquisition graph: flags cycles and unsorted per-shard lock loops",
	New: func() Runner {
		return &lockOrder{
			edges:     map[string]map[string]token.Pos{},
			acquires:  map[string]map[string]token.Pos{},
			calls:     map[string]map[string]bool{},
			sortedObj: map[string]bool{},
		}
	},
}

type lockOrder struct {
	passes []*Pass

	// edges[a][b] = first position where b was acquired while a held.
	edges map[string]map[string]token.Pos
	// acquires[fn] = lock classes fn acquires directly.
	acquires map[string]map[string]token.Pos
	// calls[fn] = module functions fn calls (for summary propagation).
	calls map[string]map[string]bool
	// heldCalls records (held set, callee) pairs; Finish turns them
	// into edges against the callee's transitive acquisition summary.
	heldCalls []heldCall
	// sortedObj marks slices the package sorts ascending, keyed by
	// canonical object identity.
	sortedObj map[string]bool
	// lockLoops are per-element lock acquisitions inside range loops,
	// checked against sortedObj in Finish.
	lockLoops []lockLoop
}

type heldCall struct {
	held   map[string]token.Pos
	callee string
}

type lockLoop struct {
	rangeKey string // canonical key of the ranged slice
	rangeStr string // source-ish rendering for the message
	class    string
	pos      token.Pos
	pass     *Pass
}

// objKey canonicalizes a variable or field so a sort call and a range
// statement over the same slice compare equal. Package-level variables
// and struct fields get stable cross-unit names; locals use object
// identity, which is consistent within a unit.
func objKey(info *types.Info, e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		obj := info.Uses[e]
		if obj == nil {
			obj = info.Defs[e]
		}
		if obj == nil {
			return ""
		}
		if obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
			return obj.Pkg().Path() + "." + obj.Name()
		}
		return fmt.Sprintf("local:%p", obj)
	case *ast.SelectorExpr:
		if key, v := fieldKey(info, e); key != "" && v != nil {
			return key
		}
		// Qualified package-level identifier (pkg.Var).
		if obj, ok := info.Uses[e.Sel].(*types.Var); ok && obj.Pkg() != nil && !obj.IsField() {
			return obj.Pkg().Path() + "." + obj.Name()
		}
	case *ast.ParenExpr:
		return objKey(info, e.X)
	}
	return ""
}

// syncLockClass names a sync.Mutex/RWMutex lock by where it lives:
// struct field, package-level variable, or local. indexed reports a
// per-element lock (slice/array field of mutexes).
func syncLockClass(p *Pass, recv ast.Expr) (class string, indexed bool, indexExpr ast.Expr) {
	switch e := recv.(type) {
	case *ast.SelectorExpr:
		if key := objKey(p.Info, e); key != "" {
			return key, false, nil
		}
	case *ast.IndexExpr:
		base, _, _ := syncLockClass(p, e.X)
		if base == "" {
			return "", false, nil
		}
		return base + "[]", true, e.Index
	case *ast.Ident:
		if key := objKey(p.Info, e); key != "" {
			return key, false, nil
		}
	case *ast.ParenExpr:
		return syncLockClass(p, e.X)
	}
	return "", false, nil
}

// lockMethod classifies a call as an acquire (Lock/RLock) or release
// (Unlock/RUnlock) and returns the receiver expression. sync.Mutex and
// sync.RWMutex methods always qualify; a module type qualifies when it
// defines both Lock and Unlock itself (store.Record's TID-word
// spinlock).
func lockMethod(p *Pass, call *ast.CallExpr) (recv ast.Expr, acquire, release, isSync bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, false, false, false
	}
	var acq, rel bool
	switch sel.Sel.Name {
	case "Lock", "RLock":
		acq = true
	case "Unlock", "RUnlock":
		rel = true
	default:
		return nil, false, false, false
	}
	obj, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return nil, false, false, false
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil, false, false, false
	}
	n, ok := deref(sig.Recv().Type()).(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return nil, false, false, false
	}
	pkg := n.Obj().Pkg().Path()
	if pkg == "sync" {
		return sel.X, acq, rel, true
	}
	if pkg != modulePathPrefix && !strings.HasPrefix(pkg, modulePathPrefix+"/") {
		return nil, false, false, false
	}
	var hasLock, hasUnlock bool
	for i := 0; i < n.NumMethods(); i++ {
		switch n.Method(i).Name() {
		case "Lock":
			hasLock = true
		case "Unlock":
			hasUnlock = true
		}
	}
	if !hasLock || !hasUnlock {
		return nil, false, false, false
	}
	return sel.X, acq, rel, false
}

func deref(t types.Type) types.Type {
	for {
		p, ok := t.(*types.Pointer)
		if !ok {
			return t
		}
		t = p.Elem()
	}
}

// typeClass names a module-type lock by its receiver's named type,
// e.g. "doppel/internal/store.Record".
func typeClass(p *Pass, recv ast.Expr) string {
	tv, ok := p.Info.Types[recv]
	if !ok {
		return ""
	}
	if n, ok := deref(tv.Type).(*types.Named); ok && n.Obj().Pkg() != nil {
		return n.Obj().Pkg().Path() + "." + n.Obj().Name()
	}
	return ""
}

// funcKey canonicalizes a function or method for the call graph.
func funcKey(obj *types.Func) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	key := obj.Pkg().Path() + "." + obj.Name()
	if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
		if n, ok := deref(sig.Recv().Type()).(*types.Named); ok {
			key += "@" + n.Obj().Name()
		}
	}
	return key
}

// exprString renders a short source-ish form of e for messages.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	case *ast.CallExpr:
		return exprString(e.Fun) + "(...)"
	case *ast.ParenExpr:
		return exprString(e.X)
	}
	return "..."
}

func (l *lockOrder) Package(p *Pass) {
	l.passes = append(l.passes, p)
	for _, f := range p.Files {
		// Collect slices the package sorts: sort.Ints/Slice/SliceStable,
		// slices.Sort*.
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := p.Info.Uses[sel.Sel]
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			pkg, name := obj.Pkg().Path(), obj.Name()
			isSort := (pkg == "sort" && (name == "Ints" || name == "Slice" || name == "SliceStable" || name == "Sort")) ||
				(pkg == "slices" && strings.HasPrefix(name, "Sort"))
			if isSort {
				if key := objKey(p.Info, call.Args[0]); key != "" {
					l.sortedObj[key] = true
				}
			}
			return true
		})

		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				l.analyzeFunc(p, fd)
			}
		}
	}
}

// loopMeta is one enclosing range loop during the body walk.
type loopMeta struct {
	indexVars map[types.Object]bool
	rangeKey  string
	rangeStr  string
}

// funcState is the linear walk state for one function body.
type funcState struct {
	l            *lockOrder
	p            *Pass
	fnKey        string
	held         map[string]token.Pos
	deferRelease map[string]bool
	loops        []loopMeta
}

func (l *lockOrder) analyzeFunc(p *Pass, fd *ast.FuncDecl) {
	fnObj, _ := p.Info.Defs[fd.Name].(*types.Func)
	fnKey := funcKey(fnObj)
	if fnKey == "" {
		return
	}
	if l.acquires[fnKey] == nil {
		l.acquires[fnKey] = map[string]token.Pos{}
	}
	if l.calls[fnKey] == nil {
		l.calls[fnKey] = map[string]bool{}
	}
	s := &funcState{
		l:            l,
		p:            p,
		fnKey:        fnKey,
		held:         map[string]token.Pos{},
		deferRelease: map[string]bool{},
	}
	s.block(fd.Body.List)
}

func (s *funcState) block(list []ast.Stmt) {
	for _, st := range list {
		s.stmt(st)
	}
}

func (s *funcState) stmt(st ast.Stmt) {
	switch st := st.(type) {
	case *ast.BlockStmt:
		s.block(st.List)
	case *ast.LabeledStmt:
		s.stmt(st.Stmt)
	case *ast.IfStmt:
		if st.Init != nil {
			s.stmt(st.Init)
		}
		s.visitCalls(st.Cond)
		s.stmt(st.Body)
		if st.Else != nil {
			s.stmt(st.Else)
		}
	case *ast.ForStmt:
		if st.Init != nil {
			s.stmt(st.Init)
		}
		if st.Cond != nil {
			s.visitCalls(st.Cond)
		}
		s.stmt(st.Body)
		if st.Post != nil {
			s.stmt(st.Post)
		}
	case *ast.RangeStmt:
		s.visitCalls(st.X)
		lc := loopMeta{
			indexVars: map[types.Object]bool{},
			rangeKey:  objKey(s.p.Info, st.X),
			rangeStr:  exprString(st.X),
		}
		for _, v := range []ast.Expr{st.Key, st.Value} {
			id, ok := v.(*ast.Ident)
			if !ok {
				continue
			}
			if obj := s.p.Info.Defs[id]; obj != nil {
				lc.indexVars[obj] = true
			} else if obj := s.p.Info.Uses[id]; obj != nil {
				lc.indexVars[obj] = true
			}
		}
		s.loops = append(s.loops, lc)
		s.stmt(st.Body)
		s.loops = s.loops[:len(s.loops)-1]
	case *ast.SwitchStmt:
		if st.Init != nil {
			s.stmt(st.Init)
		}
		if st.Tag != nil {
			s.visitCalls(st.Tag)
		}
		s.stmt(st.Body)
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			s.stmt(st.Init)
		}
		s.stmt(st.Assign)
		s.stmt(st.Body)
	case *ast.CaseClause:
		for _, e := range st.List {
			s.visitCalls(e)
		}
		s.block(st.Body)
	case *ast.SelectStmt:
		s.stmt(st.Body)
	case *ast.CommClause:
		if st.Comm != nil {
			s.stmt(st.Comm)
		}
		s.block(st.Body)
	case *ast.DeferStmt:
		s.deferCall(st.Call)
	case *ast.GoStmt:
		// Runs concurrently on a fresh stack; its locks do not nest
		// under ours. FuncLit bodies are skipped by visitCalls anyway.
	default:
		s.visitCalls(st)
	}
}

// visitCalls visits every CallExpr inside n in source order, skipping
// function literals (their bodies run at an unknown time with an
// unknown held set).
func (s *funcState) visitCalls(n ast.Node) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			s.call(call)
		}
		return true
	})
}

func (s *funcState) call(call *ast.CallExpr) {
	recv, acq, rel, isSync := lockMethod(s.p, call)
	if recv == nil {
		// Not a lock operation: record the call edge for summary
		// propagation, and the held set at this site.
		var obj types.Object
		switch fun := call.Fun.(type) {
		case *ast.SelectorExpr:
			obj = s.p.Info.Uses[fun.Sel]
		case *ast.Ident:
			obj = s.p.Info.Uses[fun]
		}
		fn, ok := obj.(*types.Func)
		if !ok || fn.Pkg() == nil {
			return
		}
		pkg := fn.Pkg().Path()
		if pkg != modulePathPrefix && !strings.HasPrefix(pkg, modulePathPrefix+"/") {
			return
		}
		callee := funcKey(fn)
		s.l.calls[s.fnKey][callee] = true
		if len(s.held) > 0 {
			heldCopy := make(map[string]token.Pos, len(s.held))
			for k := range s.held {
				heldCopy[k] = call.Pos()
			}
			s.l.heldCalls = append(s.l.heldCalls, heldCall{held: heldCopy, callee: callee})
		}
		return
	}

	var class string
	var indexed bool
	var indexExpr ast.Expr
	if isSync {
		class, indexed, indexExpr = syncLockClass(s.p, recv)
	} else {
		class = typeClass(s.p, recv)
	}
	if class == "" {
		return
	}
	switch {
	case acq:
		for h := range s.held {
			s.l.addEdge(h, class, call.Pos())
		}
		if _, ok := s.l.acquires[s.fnKey][class]; !ok {
			s.l.acquires[s.fnKey][class] = call.Pos()
		}
		if _, ok := s.held[class]; !ok {
			s.held[class] = call.Pos()
		}
		if indexed {
			s.checkLockLoop(call, class, indexExpr)
		}
	case rel:
		if !s.deferRelease[class] {
			delete(s.held, class)
		}
	}
}

// checkLockLoop records a per-element acquisition whose index is a
// range variable of an enclosing loop, to be validated against the
// sorted-slice set in Finish.
func (s *funcState) checkLockLoop(call *ast.CallExpr, class string, index ast.Expr) {
	if index == nil {
		return
	}
	var indexObjs []types.Object
	ast.Inspect(index, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := s.p.Info.Uses[id]; obj != nil {
				indexObjs = append(indexObjs, obj)
			}
		}
		return true
	})
	for i := len(s.loops) - 1; i >= 0; i-- {
		for _, obj := range indexObjs {
			if s.loops[i].indexVars[obj] {
				s.l.lockLoops = append(s.l.lockLoops, lockLoop{
					rangeKey: s.loops[i].rangeKey,
					rangeStr: s.loops[i].rangeStr,
					class:    class,
					pos:      call.Pos(),
					pass:     s.p,
				})
				return
			}
		}
	}
}

// deferCall handles `defer x()`: a deferred Unlock keeps its class in
// the held set for the rest of the walk (that is exactly what callers
// observe); a deferred closure is scanned for Unlocks to the same
// effect; any other deferred module call is treated as a call site
// under the current held set.
func (s *funcState) deferCall(call *ast.CallExpr) {
	if recv, _, rel, isSync := lockMethod(s.p, call); recv != nil {
		if rel {
			var class string
			if isSync {
				class, _, _ = syncLockClass(s.p, recv)
			} else {
				class = typeClass(s.p, recv)
			}
			if class != "" {
				s.deferRelease[class] = true
			}
		}
		return
	}
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			inner, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if recv, _, rel, isSync := lockMethod(s.p, inner); recv != nil && rel {
				var class string
				if isSync {
					class, _, _ = syncLockClass(s.p, recv)
				} else {
					class = typeClass(s.p, recv)
				}
				if class != "" {
					s.deferRelease[class] = true
				}
			}
			return true
		})
		return
	}
	s.call(call)
}

func (l *lockOrder) addEdge(from, to string, pos token.Pos) {
	if from == to {
		return // multi-acquisition of one class is governed by the loop rule
	}
	if l.edges[from] == nil {
		l.edges[from] = map[string]token.Pos{}
	}
	if _, ok := l.edges[from][to]; !ok {
		l.edges[from][to] = pos
	}
}

func (l *lockOrder) Finish() {
	if len(l.passes) == 0 {
		return
	}
	// Propagate acquisition summaries through the call graph to a fixed
	// point, then convert held-at-call records into edges.
	closure := map[string]map[string]bool{}
	for fn, acq := range l.acquires {
		closure[fn] = map[string]bool{}
		for c := range acq {
			closure[fn][c] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for fn, callees := range l.calls {
			for callee := range callees {
				for c := range closure[callee] {
					if closure[fn] == nil {
						closure[fn] = map[string]bool{}
					}
					if !closure[fn][c] {
						closure[fn][c] = true
						changed = true
					}
				}
			}
		}
	}
	for _, hc := range l.heldCalls {
		for h, pos := range hc.held {
			for c := range closure[hc.callee] {
				l.addEdge(h, c, pos)
			}
		}
	}

	l.reportCycles()

	for _, ll := range l.lockLoops {
		if ll.rangeKey != "" && l.sortedObj[ll.rangeKey] {
			continue
		}
		ll.pass.Report(ll.pos, "per-element lock %s acquired in a loop over %s, which is never sorted; cross-shard 2PC requires ascending acquisition order (sort with sort.Ints or slices.Sort first)",
			ll.class, ll.rangeStr)
	}
}

// reportCycles runs a DFS over the class graph and reports each cycle
// it encounters once, deterministically.
func (l *lockOrder) reportCycles() {
	report := l.passes[0].Report
	nodes := make([]string, 0, len(l.edges))
	for n := range l.edges {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[string]int{}
	reported := map[string]bool{}
	var path []string
	var dfs func(n string)
	dfs = func(n string) {
		color[n] = gray
		path = append(path, n)
		tos := make([]string, 0, len(l.edges[n]))
		for t := range l.edges[n] {
			tos = append(tos, t)
		}
		sort.Strings(tos)
		for _, t := range tos {
			switch color[t] {
			case white:
				dfs(t)
			case gray:
				i := 0
				for j, pn := range path {
					if pn == t {
						i = j
						break
					}
				}
				cyc := append(append([]string{}, path[i:]...), t)
				// Canonicalize rotation so the same cycle found from two
				// entry points reports once.
				key := canonicalCycle(cyc[:len(cyc)-1])
				if !reported[key] {
					reported[key] = true
					report(l.edges[n][t], "lock-order cycle: %s", strings.Join(cyc, " -> "))
				}
			}
		}
		path = path[:len(path)-1]
		color[n] = black
	}
	for _, n := range nodes {
		if color[n] == white {
			dfs(n)
		}
	}
}

// canonicalCycle rotates the cycle node list so it starts at its
// lexicographically smallest element.
func canonicalCycle(cyc []string) string {
	if len(cyc) == 0 {
		return ""
	}
	min := 0
	for i := range cyc {
		if cyc[i] < cyc[min] {
			min = i
		}
	}
	rot := append(append([]string{}, cyc[min:]...), cyc[:min]...)
	return strings.Join(rot, "->")
}
