package main

import (
	"go/ast"
	"go/token"
	"go/types"
)

// nilness is a conservative, syntactic take on the stock SSA-based
// pass: inside the body of `if x == nil { ... }` (or the else arm of
// `if x != nil`), a dereference of x — *x, x.field on a pointer, or a
// direct call x() — is a guaranteed nil panic unless the body assigns
// x first. No dataflow beyond that one guard is attempted, so every
// report is a certain fault, never a maybe.
var nilnessAnalyzer = &Analyzer{
	Name: "nilness",
	Doc:  "dereference of a value inside the branch that proved it nil",
	New:  func() Runner { return &nilness{} },
}

type nilness struct{}

func (*nilness) Finish() {}

func (*nilness) Package(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ifst, ok := n.(*ast.IfStmt)
			if !ok {
				return true
			}
			cond, ok := ifst.Cond.(*ast.BinaryExpr)
			if !ok {
				return true
			}
			var nilBody *ast.BlockStmt
			switch cond.Op {
			case token.EQL:
				nilBody = ifst.Body
			case token.NEQ:
				nilBody, _ = ifst.Else.(*ast.BlockStmt)
			default:
				return true
			}
			if nilBody == nil {
				return true
			}
			// One side must be the nil ident, the other a plain variable
			// of a nilable, dereferenceable type.
			operand := cond.X
			if isNilIdent(p.Info, operand) {
				operand = cond.Y
			} else if !isNilIdent(p.Info, cond.Y) {
				return true
			}
			id, ok := ast.Unparen(operand).(*ast.Ident)
			if !ok {
				return true
			}
			v, ok := p.Info.Uses[id].(*types.Var)
			if !ok {
				return true
			}
			checkNilUses(p, nilBody, v)
			return true
		})
	}
}

// checkNilUses reports dereferences of v inside body, stopping at the
// first assignment to v (after which its value is unknown again).
func checkNilUses(p *Pass, body *ast.BlockStmt, v *types.Var) {
	reassigned := false
	isV := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && p.Info.Uses[id] == v
	}
	walkStack(body, func(n ast.Node, stack []ast.Node) bool {
		if reassigned {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // runs later; v may differ by then
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if isV(lhs) {
					reassigned = true
				}
			}
			// RHS uses are still checked via the expression nodes below.
		case *ast.UnaryExpr:
			if n.Op == token.AND && isV(n.X) {
				// &v: taking the address is fine and lets callees assign.
				reassigned = true
			}
		case *ast.StarExpr:
			if isV(n.X) {
				p.Report(n.Pos(), "dereference of %s inside the branch where it is nil", v.Name())
			}
		case *ast.SelectorExpr:
			if !isV(n.X) {
				return true
			}
			if sel, ok := p.Info.Selections[n]; ok {
				if _, isPtr := v.Type().Underlying().(*types.Pointer); isPtr && sel.Kind() == types.FieldVal {
					p.Report(n.Pos(), "field access on %s inside the branch where it is nil", v.Name())
				}
			}
		case *ast.CallExpr:
			if isV(n.Fun) {
				p.Report(n.Pos(), "call of %s inside the branch where it is nil", v.Name())
			}
		case *ast.IndexExpr:
			if isV(n.X) {
				if _, isPtr := v.Type().Underlying().(*types.Pointer); isPtr {
					p.Report(n.Pos(), "index of %s inside the branch where it is nil", v.Name())
				}
			}
		}
		return true
	})
}
