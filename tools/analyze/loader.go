package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// The loader type-checks the packages under analysis from source while
// resolving their dependencies from compiled export data, the way
// cmd/vet's unitchecker does: `go list -test -deps -export` builds (or
// reuses from the build cache) every dependency's export file, and a
// per-unit gc importer reads types out of those files. Only the units
// being analyzed are parsed; the standard library is never re-checked.

// Unit is one type-checked analysis unit: a package, its
// in-package-test variant, or an external _test package.
type Unit struct {
	ImportPath string // as reported by go list, e.g. "doppel/internal/core [doppel/internal/core.test]"
	PkgPath    string // canonical import path, test-variant marker stripped
	Dir        string
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
}

// listedPackage is the subset of `go list -json` output the loader uses.
type listedPackage struct {
	ImportPath string
	Dir        string
	Name       string
	Standard   bool
	ForTest    string
	Export     string
	Module     *struct{ Path string }
	GoFiles    []string
	CgoFiles   []string
	Imports    []string
	ImportMap  map[string]string
	Error      *struct{ Err string }
}

// goList runs `go list -e -test -deps -export -json` on the patterns and
// decodes the JSON stream.
func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{"list", "-e", "-test", "-deps", "-export", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(out)
	for {
		p := new(listedPackage)
		if err := dec.Decode(p); err != nil {
			if err == io.EOF {
				break
			}
			return nil, fmt.Errorf("go list: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	if err := cmd.Wait(); err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	return pkgs, nil
}

// load lists the patterns and type-checks every module-local unit. When
// tests is true the in-package-test variants replace their base
// packages and external _test packages are included.
func load(fset *token.FileSet, dir string, patterns []string, tests bool) ([]*Unit, error) {
	pkgs, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := map[string]string{} // ImportPath (incl. variant marker) -> export file
	byPath := map[string]*listedPackage{}
	for _, p := range pkgs {
		byPath[p.ImportPath] = p
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}

	// Pick the units to analyze: module-local packages named by the
	// patterns' expansion (go list puts dependencies in the stream too,
	// but only non-deps are interesting — approximated here as "in the
	// module and not standard"). The synthesized ".test" mains are
	// skipped; test variants replace their base packages.
	hasTestVariant := map[string]bool{}
	if tests {
		for _, p := range pkgs {
			if p.ForTest != "" && p.ImportPath == p.ForTest+" ["+p.ForTest+".test]" {
				hasTestVariant[p.ForTest] = true
			}
		}
	}
	var units []*Unit
	for _, p := range pkgs {
		if p.Standard || p.Module == nil || strings.HasSuffix(p.ImportPath, ".test") {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if len(p.CgoFiles) > 0 {
			continue // cgo source is preprocessed; analyze the rest of the module
		}
		isVariant := p.ForTest != ""
		if isVariant && !tests {
			continue
		}
		if !isVariant && hasTestVariant[p.ImportPath] {
			continue // the test variant supersedes it
		}
		u, err := typecheckUnit(fset, p, exports)
		if err != nil {
			return nil, err
		}
		units = append(units, u)
	}
	if len(units) == 0 {
		return nil, fmt.Errorf("no packages matched %v", patterns)
	}
	return units, nil
}

// typecheckUnit parses and type-checks one listed package against the
// export data of its dependencies.
func typecheckUnit(fset *token.FileSet, p *listedPackage, exports map[string]string) (*Unit, error) {
	var files []*ast.File
	for _, name := range p.GoFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(p.Dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	lookup := func(path string) (io.ReadCloser, error) {
		resolved := path
		if mapped, ok := p.ImportMap[path]; ok {
			resolved = mapped
		}
		exp, ok := exports[resolved]
		if !ok {
			return nil, fmt.Errorf("no export data for %q (resolved %q)", path, resolved)
		}
		return os.Open(exp)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	// "pkg [pkg.test]" (in-package-test variant) and "pkg_test
	// [pkg.test]" (external test package) both type-check under the
	// bracket-free path.
	pkgPath, _, _ := strings.Cut(p.ImportPath, " [")
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "gc", lookup),
		Error:    func(error) {}, // collect the first hard error below instead
	}
	pkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", p.ImportPath, err)
	}
	return &Unit{
		ImportPath: p.ImportPath,
		PkgPath:    pkgPath,
		Dir:        p.Dir,
		Files:      files,
		Pkg:        pkg,
		Info:       info,
	}, nil
}

// moduleRoot returns the directory containing go.mod for dir.
func moduleRoot(dir string) (string, error) {
	cmd := exec.Command("go", "env", "GOMOD")
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		return "", err
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		return "", fmt.Errorf("not in a module")
	}
	return filepath.Dir(gomod), nil
}
