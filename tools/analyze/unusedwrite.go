package main

import (
	"go/ast"
	"go/token"
	"go/types"
)

// unusedwrite is a conservative, syntactic take on the stock SSA-based
// pass: within one statement list, a write to a local variable that is
// overwritten by a later write with no intervening read is dead. Two
// shapes are flagged:
//
//	x = f()        // dead: x never read before the next write
//	x = g()
//
// and the classic self-assignment `x = x`. A variable whose address is
// taken anywhere in the function, or that appears inside any function
// literal, is exempt — something else may observe the first write.
var unusedWriteAnalyzer = &Analyzer{
	Name: "unusedwrite",
	Doc:  "write to a local overwritten before any read",
	New:  func() Runner { return &unusedWrite{} },
}

type unusedWrite struct{}

func (*unusedWrite) Finish() {}

func (*unusedWrite) Package(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(p, fd)
		}
	}
}

func checkFunc(p *Pass, fd *ast.FuncDecl) {
	// Locals that escape simple reasoning: address taken, or captured
	// by a closure.
	escaped := map[types.Object]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
					if obj := p.Info.Uses[id]; obj != nil {
						escaped[obj] = true
					}
				}
			}
		case *ast.FuncLit:
			ast.Inspect(n.Body, func(inner ast.Node) bool {
				if id, ok := inner.(*ast.Ident); ok {
					if obj := p.Info.Uses[id]; obj != nil {
						escaped[obj] = true
					}
				}
				return true
			})
			return false
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		block, ok := n.(*ast.BlockStmt)
		if !ok {
			return true
		}
		checkBlock(p, block.List, escaped)
		return true
	})
}

// simpleWrite returns the local variable a statement writes as its
// single, plain-assignment target (x = expr, not x, y = ... and not
// :=, whose "write" is a definition).
func simpleWrite(p *Pass, st ast.Stmt) (types.Object, *ast.AssignStmt) {
	as, ok := st.(*ast.AssignStmt)
	if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return nil, nil
	}
	id, ok := as.Lhs[0].(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil, nil
	}
	obj := p.Info.Uses[id]
	if obj == nil {
		return nil, nil
	}
	if v, ok := obj.(*types.Var); !ok || v.IsField() || (v.Pkg() != nil && v.Parent() == v.Pkg().Scope()) {
		return nil, nil
	}
	return obj, as
}

// mentions reports whether obj appears anywhere under n.
func mentions(p *Pass, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if p.Info.Uses[id] == obj || p.Info.Defs[id] == obj {
				found = true
			}
		}
		return !found
	})
	return found
}

func checkBlock(p *Pass, stmts []ast.Stmt, escaped map[types.Object]bool) {
	for i, st := range stmts {
		obj, as := simpleWrite(p, st)
		if obj == nil || escaped[obj] {
			continue
		}
		// Self-assignment is dead on arrival.
		if rhs, ok := as.Rhs[0].(*ast.Ident); ok && p.Info.Uses[rhs] == obj {
			p.Report(as.Pos(), "self-assignment of %s", obj.Name())
			continue
		}
		// Look ahead for an overwrite with no intervening read. Only
		// simple intervening statements are allowed — any control flow
		// (loop, if, defer, goto target) could read the value.
		for j := i + 1; j < len(stmts); j++ {
			next := stmts[j]
			switch next.(type) {
			case *ast.AssignStmt, *ast.ExprStmt, *ast.DeclStmt, *ast.IncDecStmt:
			default:
				j = len(stmts) // control flow: abandon the lookahead
				continue
			}
			if nobj, nas := simpleWrite(p, next); nobj == obj {
				// The overwrite's own RHS may read x (x = x+1 is a read).
				if !mentions(p, nas.Rhs[0], obj) {
					p.Report(as.Pos(), "value written to %s is never read; overwritten at line %d",
						obj.Name(), p.Fset.Position(nas.Pos()).Line)
				}
				break
			}
			if mentions(p, next, obj) {
				break // read (or shadowed write in a multi-assign): live
			}
		}
	}
}
