// Package sentinelerr is a deliberately broken fixture: Check matches
// the sentinel with ==, != and an identity switch instead of errors.Is.
package sentinelerr

import (
	"errors"
	"fmt"
)

// ErrGone is the fixture's sentinel.
var ErrGone = errors.New("gone")

// Wrap returns the sentinel with context, as the real tree does.
func Wrap(key string) error {
	return fmt.Errorf("load %q: %w", key, ErrGone)
}

// Check mixes every broken comparison shape with the legal one.
func Check(err error) bool {
	if err == ErrGone { // want "use errors.Is"
		return true
	}
	if errors.Is(err, ErrGone) { // the legal shape
		return true
	}
	switch err {
	case ErrGone: // want "use errors.Is"
		return true
	}
	return err != ErrGone // want "use errors.Is"
}

// SanityCheck compares the sentinel against nil, which is identity by
// construction and not flagged.
func SanityCheck() bool {
	return ErrGone == nil
}
