// Package hotpath is the escape-gate fixture: Leak is annotated as a
// hot path but allocates a value the compiler must move to the heap.
package hotpath

// Leak returns a pointer to a local, the canonical guaranteed escape.
//
//doppel:hotpath
func Leak(v int) *int {
	x := v
	return &x
}

// Clean is annotated and allocation-free.
//
//doppel:hotpath
func Clean(v int) int {
	return v * 2
}
