// Package wireserver is the bijection fixture's stand-in for
// internal/server, seeded with three violations: no status for
// ErrBeta, a statusErrGamma with no sentinel behind it, and mapping
// functions that only handle Alpha.
package wireserver

import (
	"errors"

	"doppel/tools/analyze/testdata/src/wireroot"
)

// Status codes; Beta is missing and Gamma is an orphan.
const (
	statusOK       = 0
	statusErr      = 1
	statusErrAlpha = 2
	statusErrGamma = 3
)

// statusForError handles only Alpha.
func statusForError(err error) byte {
	if errors.Is(err, wireroot.ErrAlpha) {
		return statusErrAlpha
	}
	return statusErr
}

// sentinelFor handles only Alpha.
func sentinelFor(status byte) error {
	if status == statusErrAlpha {
		return wireroot.ErrAlpha
	}
	return nil
}
