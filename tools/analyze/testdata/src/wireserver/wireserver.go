// Package wireserver is the bijection fixture's stand-in for
// internal/server, seeded with violations alongside correct wiring: no
// status for ErrBeta or ErrRetriesExhausted, a statusErrGamma with no
// sentinel behind it, and mapping functions that handle only Alpha and
// Overloaded.
package wireserver

import (
	"errors"

	"doppel/tools/analyze/testdata/src/wireroot"
)

// Status codes; Beta and RetriesExhausted are missing and Gamma is an
// orphan. Overloaded is threaded correctly end to end.
const (
	statusOK            = 0
	statusErr           = 1
	statusErrAlpha      = 2
	statusErrGamma      = 3
	statusErrOverloaded = 4
)

// statusForError handles Alpha and Overloaded.
func statusForError(err error) byte {
	if errors.Is(err, wireroot.ErrAlpha) {
		return statusErrAlpha
	}
	if errors.Is(err, wireroot.ErrOverloaded) {
		return statusErrOverloaded
	}
	return statusErr
}

// sentinelFor handles Alpha and Overloaded.
func sentinelFor(status byte) error {
	if status == statusErrAlpha {
		return wireroot.ErrAlpha
	}
	if status == statusErrOverloaded {
		return wireroot.ErrOverloaded
	}
	return nil
}
