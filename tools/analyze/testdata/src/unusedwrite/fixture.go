// Package unusedwrite is a deliberately broken fixture: Dead's first
// assignment is overwritten unread, and Self assigns a variable to
// itself.
package unusedwrite

// Dead overwrites x before any read.
func Dead(a, b int) int {
	x := 0
	x = a // want "never read"
	x = b
	return x
}

// Self is the classic no-op assignment.
func Self(y int) int {
	y = y // want "self-assignment"
	return y
}

// Live reads the first write before the second: no finding.
func Live(a, b int) int {
	x := a
	sum := x
	x = b
	return sum + x
}

// Escaped takes x's address, so another frame may observe the first
// write: no finding.
func Escaped(a, b int) int {
	x := a
	p := &x
	x = b
	return *p
}
