// Package lockorder is a deliberately broken fixture: AB and BA
// acquire the two mutexes in opposite orders, and LockAllUnsorted
// takes per-element locks over a slice nothing ever sorts.
package lockorder

import (
	"sort"
	"sync"
)

// S carries two plain mutexes and a per-shard lock slice.
type S struct {
	a, b   sync.Mutex
	locks  []sync.Mutex
	ids    []int // never sorted
	sorted []int // established ascending by Prepare
}

// AB nests b under a.
func (s *S) AB() {
	s.a.Lock()
	s.b.Lock()
	s.b.Unlock()
	s.a.Unlock()
}

// BA nests a under b — together with AB this is a deadlock.
func (s *S) BA() {
	s.b.Lock()
	s.a.Lock() // want "lock-order cycle"
	s.a.Unlock()
	s.b.Unlock()
}

// Prepare sorts the shard-ID slice the lock loop iterates.
func (s *S) Prepare(ids []int) {
	s.sorted = append(s.sorted[:0], ids...)
	sort.Ints(s.sorted)
}

// LockAllSorted is the legal 2PC shape: ascending acquisition.
func (s *S) LockAllSorted() {
	for _, i := range s.sorted {
		s.locks[i].Lock()
	}
	for _, i := range s.sorted {
		s.locks[i].Unlock()
	}
}

// LockAllUnsorted iterates a slice that is never sorted.
func (s *S) LockAllUnsorted() {
	for _, i := range s.ids {
		s.locks[i].Lock() // want "never sorted"
	}
	for _, i := range s.ids {
		s.locks[i].Unlock()
	}
}

// lockB is a helper so the cycle check sees edges through calls.
func (s *S) lockB() {
	s.b.Lock()
	s.b.Unlock()
}

// CallEdge acquires b via a call while holding a; the resulting a->b
// edge coincides with AB's, so no new report.
func (s *S) CallEdge() {
	s.a.Lock()
	defer s.a.Unlock()
	s.lockB()
}
