// Package atomiccoherence is a deliberately broken fixture: the n
// field is accessed via sync/atomic in Load but plainly in Bad, and
// the typed wrapper w is copied out of its struct.
package atomiccoherence

import "sync/atomic"

// C mixes a legacy atomic word (n) with a typed wrapper (w).
type C struct {
	n uint64
	w atomic.Uint64
}

// Load is the legitimate atomic access that marks C.n.
func Load(c *C) uint64 {
	return atomic.LoadUint64(&c.n)
}

// Store is also fine: same field, also atomic.
func Store(c *C, v uint64) {
	atomic.StoreUint64(&c.n, v)
}

// Bad reads and writes the marked field without atomics.
func Bad(c *C) uint64 {
	c.n++      // want "plain access to field"
	return c.n // want "plain access to field"
}

// CopyWrapper copies a typed atomic out of its struct, silently
// snapshotting it instead of loading it.
func CopyWrapper(c *C) atomic.Uint64 {
	return c.w // want "copied or assigned directly"
}

// UseWrapper is the legal shape: method calls and address-taking.
func UseWrapper(c *C) uint64 {
	p := &c.w
	p.Add(1)
	return c.w.Load()
}
