// Package nilness is a deliberately broken fixture: each Bad* function
// dereferences a value inside the branch that proved it nil.
package nilness

// T is a target for pointer field access.
type T struct {
	x int
}

// BadField reads through the pointer in the nil branch.
func BadField(p *T) int {
	if p == nil {
		return p.x // want "field access on p"
	}
	return p.x
}

// BadDeref dereferences in the inverted guard's else arm.
func BadDeref(p *int) int {
	if p != nil {
		return *p
	} else {
		return *p // want "dereference of p"
	}
}

// BadCall invokes a func value known to be nil.
func BadCall(fn func() int) int {
	if fn == nil {
		return fn() // want "call of fn"
	}
	return fn()
}

// Reassigned is legal: the nil branch repairs the pointer first.
func Reassigned(p *T) int {
	if p == nil {
		p = new(T)
		return p.x
	}
	return p.x
}
