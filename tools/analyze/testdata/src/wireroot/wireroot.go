// Package wireroot is the bijection fixture's stand-in for the root
// doppel package: exported sentinels in every state the analyzer must
// distinguish — threaded correctly (ErrAlpha, ErrOverloaded), missing
// from the server's status table (ErrBeta), and missing from both the
// table and the mapping functions (ErrRetriesExhausted, mirroring the
// retry-layer sentinel the real wire protocol carries).
package wireroot

import "errors"

// ErrAlpha is threaded through the wire table correctly.
var ErrAlpha = errors.New("wireroot: alpha")

// ErrBeta is deliberately missing from wireserver's status table.
var ErrBeta = errors.New("wireroot: beta")

// ErrOverloaded mirrors the real load-shedding sentinel; it is threaded
// through the wire table correctly and must produce no diagnostics.
var ErrOverloaded = errors.New("wireroot: overloaded")

// ErrRetriesExhausted is deliberately missing from wireserver entirely:
// no status constant and no mapping-function case.
var ErrRetriesExhausted = errors.New("wireroot: retries exhausted")
