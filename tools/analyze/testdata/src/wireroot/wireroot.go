// Package wireroot is the bijection fixture's stand-in for the root
// doppel package: two exported sentinels, one of which (ErrBeta) the
// wireserver fixture fails to carry.
package wireroot

import "errors"

// ErrAlpha is threaded through the wire table correctly.
var ErrAlpha = errors.New("wireroot: alpha")

// ErrBeta is deliberately missing from wireserver's status table.
var ErrBeta = errors.New("wireroot: beta")
