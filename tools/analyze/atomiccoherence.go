package main

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// atomiccoherence enforces the rule the memory model cannot: a struct
// field that is accessed atomically anywhere must be accessed
// atomically everywhere. Two forms are checked program-wide:
//
//  1. A field of plain scalar/pointer type passed by address to a
//     sync/atomic function (atomic.LoadUint64(&s.f), AddInt32, CAS, …)
//     is marked atomic; any plain read or write of the same field in
//     any analyzed package is then a violation. This is how the
//     fence/TID words, the WAL durability watermark and the phase/epoch
//     words would regress if someone reached past the typed API.
//
//  2. A field declared with one of the sync/atomic wrapper types
//     (atomic.Uint64, atomic.Pointer[T], …) — the form the tree uses
//     for store.Record's words, wal.Logger.durable and core.DB's
//     phase/epoch — may only be used as a method-call receiver or have
//     its address taken. Copying it out (v := r.tid) or assigning over
//     it (r.tid = other.tid) bypasses the atomic protocol and is
//     reported immediately.
var atomicCoherenceAnalyzer = &Analyzer{
	Name: "atomiccoherence",
	Doc:  "fields accessed via sync/atomic must be accessed atomically everywhere",
	New:  func() Runner { return &atomicCoherence{marked: map[string]token.Pos{}} },
}

type atomicCoherence struct {
	passes []*Pass
	// marked maps canonical field keys ("pkg.Type.field") that some
	// package touched through a sync/atomic function.
	marked map[string]token.Pos
}

// fieldKey canonicalizes a struct field across units: the same field
// seen from a package and from its test variant must compare equal.
func fieldKey(info *types.Info, sel *ast.SelectorExpr) (string, *types.Var) {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return "", nil
	}
	obj, ok := s.Obj().(*types.Var)
	if !ok || !obj.IsField() {
		return "", nil
	}
	// Name the field by its owning named struct when there is one.
	recv := s.Recv()
	for {
		if p, ok := recv.(*types.Pointer); ok {
			recv = p.Elem()
			continue
		}
		break
	}
	owner := "_"
	if n, ok := recv.(*types.Named); ok {
		owner = n.Obj().Name()
	}
	pkg := "_"
	if obj.Pkg() != nil {
		pkg = obj.Pkg().Path()
	}
	return pkg + "." + owner + "." + obj.Name(), obj
}

// isAtomicFuncCall reports whether call is sync/atomic.F(...) and
// returns the &field selector of its address argument, if any.
func isAtomicFuncCall(info *types.Info, call *ast.CallExpr) (*ast.SelectorExpr, bool) {
	fn, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, false
	}
	obj, ok := info.Uses[fn.Sel]
	if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" {
		return nil, false
	}
	if _, isFunc := obj.(*types.Func); !isFunc {
		return nil, false
	}
	for _, arg := range call.Args {
		un, ok := arg.(*ast.UnaryExpr)
		if !ok || un.Op != token.AND {
			continue
		}
		if sel, ok := un.X.(*ast.SelectorExpr); ok {
			return sel, true
		}
	}
	return nil, true
}

// isAtomicWrapperType reports whether t is one of sync/atomic's typed
// wrappers (atomic.Uint64, atomic.Pointer[T], …).
func isAtomicWrapperType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic" && obj.Name() != "noCopy"
}

func (a *atomicCoherence) Package(p *Pass) {
	a.passes = append(a.passes, p)
	for _, f := range p.Files {
		walkStack(f, func(n ast.Node, stack []ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if sel, ok := isAtomicFuncCall(p.Info, n); ok && sel != nil {
					if key, _ := fieldKey(p.Info, sel); key != "" {
						if _, dup := a.marked[key]; !dup {
							a.marked[key] = sel.Pos()
						}
					}
				}
			case *ast.SelectorExpr:
				// Typed atomic wrapper misuse: the selector must be a
				// method-call base (x.f.Load) or address operand (&x.f).
				key, obj := fieldKey(p.Info, n)
				if key == "" || !isAtomicWrapperType(obj.Type()) {
					return true
				}
				if atomicWrapperUseOK(stack) {
					return true
				}
				p.Report(n.Pos(), "field %s has atomic type %s but is copied or assigned directly; use its methods", key, obj.Type())
			}
			return true
		})
	}
}

// atomicWrapperUseOK reports whether the selector at the top of stack's
// subject position is used legally: as the base of a further selection
// (method call), as an address operand, or as a composite-literal
// zero-value context the checker cannot misuse.
func atomicWrapperUseOK(stack []ast.Node) bool {
	if len(stack) == 0 {
		return true
	}
	switch parent := stack[len(stack)-1].(type) {
	case *ast.SelectorExpr:
		return true // x.f.Load(...) — f is the base of a method selection
	case *ast.UnaryExpr:
		return parent.Op == token.AND
	}
	return false
}

func (a *atomicCoherence) Finish() {
	if len(a.marked) == 0 {
		return
	}
	for _, p := range a.passes {
		for _, f := range p.Files {
			// First collect the selector nodes that ARE the atomic
			// accesses, then flag every other access to a marked field.
			atomicUses := map[*ast.SelectorExpr]bool{}
			ast.Inspect(f, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if sel, ok := isAtomicFuncCall(p.Info, call); ok && sel != nil {
						atomicUses[sel] = true
					}
				}
				return true
			})
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok || atomicUses[sel] {
					return true
				}
				key, obj := fieldKey(p.Info, sel)
				if key == "" {
					return true
				}
				if _, markedField := a.marked[key]; !markedField {
					return true
				}
				if isAtomicWrapperType(obj.Type()) {
					return true // typed wrappers are safe by construction
				}
				p.Report(sel.Pos(), "plain access to field %s, which is accessed with sync/atomic elsewhere (%s)",
					key, shortPos(p.Fset, a.marked[key]))
				return true
			})
		}
	}
}

// shortPos renders pos as file:line with the directory trimmed.
func shortPos(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	name := p.Filename
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	return name + ":" + strconv.Itoa(p.Line)
}
