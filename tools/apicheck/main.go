// Command apicheck gates the public API surface of the root doppel
// package: it renders every exported declaration — functions, methods,
// types (with unexported struct fields and interface methods elided),
// consts and vars — into a normalized listing and compares it against
// the committed golden file. An unreviewed export, signature change or
// removal fails CI; an intentional change is recorded with -update,
// which makes the API diff part of the reviewed change itself.
//
// Usage:
//
//	go run ./tools/apicheck            # verify against the golden file
//	go run ./tools/apicheck -update    # rewrite the golden file
package main

import (
	"bytes"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"sort"
	"strings"
)

func main() {
	dir := flag.String("dir", ".", "package directory to audit")
	golden := flag.String("golden", "tools/apicheck/doppel.api", "golden API listing to compare against")
	update := flag.Bool("update", false, "rewrite the golden file instead of comparing")
	flag.Parse()

	got, err := surface(*dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "apicheck: %v\n", err)
		os.Exit(2)
	}
	if *update {
		if err := os.WriteFile(*golden, []byte(got), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "apicheck: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("apicheck: wrote %s\n", *golden)
		return
	}
	want, err := os.ReadFile(*golden)
	if err != nil {
		fmt.Fprintf(os.Stderr, "apicheck: %v (run with -update to create it)\n", err)
		os.Exit(2)
	}
	if got != string(want) {
		fmt.Fprintf(os.Stderr, "apicheck: public API differs from %s\n\n%s\nIf the change is intentional, run: go run ./tools/apicheck -update\n",
			*golden, diff(string(want), got))
		os.Exit(1)
	}
}

// surface renders the package's exported declarations, one entry per
// line (struct and interface types span lines but count as one entry),
// sorted so the listing is stable across file moves.
func surface(dir string) (string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		return "", err
	}
	var entries []string
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				entries = append(entries, renderDecl(fset, decl)...)
			}
		}
	}
	sort.Strings(entries)
	return strings.Join(entries, "\n") + "\n", nil
}

func renderDecl(fset *token.FileSet, decl ast.Decl) []string {
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() || !exportedRecv(d.Recv) {
			return nil
		}
		return []string{"func " + recvString(fset, d.Recv) + d.Name.Name + strings.TrimPrefix(render(fset, stripFuncType(d.Type)), "func")}
	case *ast.GenDecl:
		var out []string
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if !s.Name.IsExported() {
					continue
				}
				out = append(out, "type "+s.Name.Name+assignToken(s)+render(fset, stripType(s.Type)))
			case *ast.ValueSpec:
				kw := "var"
				if d.Tok == token.CONST {
					kw = "const"
				}
				for _, name := range s.Names {
					if !name.IsExported() {
						continue
					}
					entry := kw + " " + name.Name
					if s.Type != nil {
						entry += " " + render(fset, s.Type)
					}
					out = append(out, entry)
				}
			}
		}
		return out
	}
	return nil
}

func assignToken(s *ast.TypeSpec) string {
	if s.Assign.IsValid() {
		return " = "
	}
	return " "
}

func exportedRecv(recv *ast.FieldList) bool {
	if recv == nil || len(recv.List) == 0 {
		return true
	}
	name := recvTypeName(recv.List[0].Type)
	return name == "" || ast.IsExported(name)
}

func recvTypeName(expr ast.Expr) string {
	switch e := expr.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.StarExpr:
		return recvTypeName(e.X)
	case *ast.IndexExpr: // generic receiver
		return recvTypeName(e.X)
	}
	return ""
}

func recvString(fset *token.FileSet, recv *ast.FieldList) string {
	if recv == nil || len(recv.List) == 0 {
		return ""
	}
	return "(" + render(fset, recv.List[0].Type) + ") "
}

// stripFuncType drops parameter names: only types are part of the
// surface, so renaming a parameter is not an API change.
func stripFuncType(ft *ast.FuncType) *ast.FuncType {
	return &ast.FuncType{Params: stripFields(ft.Params), Results: stripFields(ft.Results)}
}

func stripFields(fl *ast.FieldList) *ast.FieldList {
	if fl == nil {
		return nil
	}
	out := &ast.FieldList{}
	for _, f := range fl.List {
		n := len(f.Names)
		if n == 0 {
			n = 1
		}
		for i := 0; i < n; i++ {
			out.List = append(out.List, &ast.Field{Type: f.Type})
		}
	}
	return out
}

// stripType elides what is not API: unexported struct fields (kept
// abstract behind accessors) and doc comments.
func stripType(expr ast.Expr) ast.Expr {
	switch e := expr.(type) {
	case *ast.StructType:
		out := &ast.StructType{Fields: &ast.FieldList{}}
		for _, f := range e.Fields.List {
			var names []*ast.Ident
			for _, name := range f.Names {
				if name.IsExported() {
					names = append(names, ast.NewIdent(name.Name))
				}
			}
			if len(f.Names) > 0 && len(names) == 0 {
				continue
			}
			out.Fields.List = append(out.Fields.List, &ast.Field{Names: names, Type: f.Type})
		}
		return out
	case *ast.InterfaceType:
		out := &ast.InterfaceType{Methods: &ast.FieldList{}}
		for _, m := range e.Methods.List {
			nm := &ast.Field{Names: nil, Type: m.Type}
			for _, name := range m.Names {
				nm.Names = append(nm.Names, ast.NewIdent(name.Name))
			}
			if ft, ok := m.Type.(*ast.FuncType); ok {
				nm.Type = stripFuncType(ft)
			}
			out.Methods.List = append(out.Methods.List, nm)
		}
		return out
	case *ast.FuncType:
		return stripFuncType(e)
	}
	return expr
}

func render(fset *token.FileSet, node any) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, node); err != nil {
		return fmt.Sprintf("<render error: %v>", err)
	}
	return buf.String()
}

// diff is a minimal line diff: everything only in want is shown as
// removed, everything only in got as added. Good enough to point at
// the drifted declarations.
func diff(want, got string) string {
	wantSet := map[string]bool{}
	for _, l := range strings.Split(want, "\n") {
		wantSet[l] = true
	}
	gotSet := map[string]bool{}
	for _, l := range strings.Split(got, "\n") {
		gotSet[l] = true
	}
	var b strings.Builder
	for _, l := range strings.Split(want, "\n") {
		if l != "" && !gotSet[l] {
			fmt.Fprintf(&b, "- %s\n", l)
		}
	}
	for _, l := range strings.Split(got, "\n") {
		if l != "" && !wantSet[l] {
			fmt.Fprintf(&b, "+ %s\n", l)
		}
	}
	return b.String()
}
