// Command doccheck enforces the repository's documentation invariants
// in CI:
//
//  1. Every exported identifier (functions, methods, types, consts,
//     vars) in the audited packages carries a doc comment, and every
//     audited package has a package comment.
//  2. Every relative markdown link in the audited documents resolves to
//     a file that exists.
//
// Usage:
//
//	go run ./tools/doccheck -pkgs internal/core,internal/store -docs README.md,docs
//
// It exits non-zero listing every violation, so the docs job fails
// loudly rather than letting exported API drift undocumented or links
// rot.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

func main() {
	pkgs := flag.String("pkgs", "", "comma-separated package directories to audit for godoc coverage")
	docs := flag.String("docs", "", "comma-separated markdown files or directories to audit for link rot")
	flag.Parse()

	var problems []string
	for _, dir := range splitList(*pkgs) {
		ps, err := auditPackage(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doccheck: %s: %v\n", dir, err)
			os.Exit(2)
		}
		problems = append(problems, ps...)
	}
	for _, path := range splitList(*docs) {
		ps, err := auditDocs(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doccheck: %s: %v\n", path, err)
			os.Exit(2)
		}
		problems = append(problems, ps...)
	}
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, p)
		}
		fmt.Fprintf(os.Stderr, "doccheck: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// auditPackage parses dir (non-test files only) and reports exported
// identifiers without doc comments.
func auditPackage(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgMap, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var problems []string
	report := func(pos token.Pos, what, name string) {
		p := fset.Position(pos)
		problems = append(problems, fmt.Sprintf("%s:%d: exported %s %s has no doc comment", p.Filename, p.Line, what, name))
	}
	for _, pkg := range pkgMap {
		hasPkgDoc := false
		for _, f := range pkg.Files {
			if f.Doc != nil {
				hasPkgDoc = true
			}
		}
		if !hasPkgDoc {
			problems = append(problems, fmt.Sprintf("%s: package %s has no package comment", dir, pkg.Name))
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if !d.Name.IsExported() || receiverUnexported(d) {
						continue
					}
					if d.Doc == nil {
						what := "function"
						if d.Recv != nil {
							what = "method"
						}
						report(d.Pos(), what, d.Name.Name)
					}
				case *ast.GenDecl:
					auditGenDecl(d, report)
				}
			}
		}
	}
	return problems, nil
}

// receiverUnexported reports whether a method's receiver type is
// unexported (methods on unexported types are not part of the API).
func receiverUnexported(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return false
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver
		t = idx.X
	}
	id, ok := t.(*ast.Ident)
	return ok && !id.IsExported()
}

// auditGenDecl checks type/const/var declarations. A spec counts as
// documented when the declaration group, the spec, or the spec's
// trailing comment documents it.
func auditGenDecl(d *ast.GenDecl, report func(token.Pos, string, string)) {
	if d.Tok != token.TYPE && d.Tok != token.CONST && d.Tok != token.VAR {
		return
	}
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
				report(s.Pos(), "type", s.Name.Name)
			}
		case *ast.ValueSpec:
			for _, name := range s.Names {
				if name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
					report(s.Pos(), strings.ToLower(d.Tok.String()), name.Name)
				}
			}
		}
	}
}

// mdLink matches inline markdown links; group 2 is the target.
var mdLink = regexp.MustCompile(`\[([^\]]*)\]\(([^)\s]+)[^)]*\)`)

// auditDocs checks every relative link in path (a markdown file or a
// directory of them) for a resolvable target.
func auditDocs(path string) ([]string, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	var files []string
	if fi.IsDir() {
		err := filepath.WalkDir(path, func(p string, d os.DirEntry, err error) error {
			if err == nil && !d.IsDir() && strings.HasSuffix(p, ".md") {
				files = append(files, p)
			}
			return err
		})
		if err != nil {
			return nil, err
		}
	} else {
		files = []string{path}
	}
	var problems []string
	for _, f := range files {
		raw, err := os.ReadFile(f)
		if err != nil {
			return nil, err
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(raw), -1) {
			target := m[2]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
				continue
			}
			target = strings.SplitN(target, "#", 2)[0]
			resolved := filepath.Join(filepath.Dir(f), target)
			if _, err := os.Stat(resolved); err != nil {
				problems = append(problems, fmt.Sprintf("%s: broken link %q (%s)", f, m[2], resolved))
			}
		}
	}
	return problems, nil
}
