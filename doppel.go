// Package doppel is an in-memory transactional key/value database that
// uses phase reconciliation to execute contended commutative updates in
// parallel, reproducing "Phase Reconciliation for Contended In-Memory
// Transactions" (Narula, Cutler, Kohler, Morris — OSDI 2014).
//
// The database cycles through joined, split and reconciliation phases.
// Joined phases run every transaction under Silo-style OCC. When a
// record becomes contended under a commutative operation (Add, Max, Min,
// Mult, OPut, TopKInsert), Doppel marks it split: during split phases
// that operation updates per-core slices with no coordination, and short
// reconciliation phases merge the slices back. Transactions that touch
// split data any other way are transparently stashed and re-executed in
// the next joined phase; callers just observe a slower commit.
//
// # Quick start
//
//	db := doppel.Open(doppel.Options{})
//	defer db.Close()
//	err := db.Exec(func(tx doppel.Tx) error {
//		if err := tx.Add("page:42:likes", 1); err != nil {
//			return err
//		}
//		return tx.PutBytes("user:7:last", []byte("page:42"))
//	})
//
// Exec retries conflict aborts internally and returns after the
// transaction has committed (or failed with the body's own error).
package doppel

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"doppel/internal/checkpoint"
	"doppel/internal/core"
	"doppel/internal/engine"
	"doppel/internal/metrics"
	"doppel/internal/store"
	"doppel/internal/wal"
)

// Tx is the transaction interface passed to transaction bodies. See
// engine.Tx for method semantics; the splittable operations (Add, Max,
// Min, Mult, OPut, TopKInsert) are the ones phase reconciliation can
// parallelize under contention.
type Tx = engine.Tx

// TxFunc is a transaction body. Bodies may be re-executed after
// conflicts or stashes and must therefore be pure functions of the
// database state they read.
type TxFunc = engine.TxFunc

// Order is the ordering component of OPut's ordered tuples.
type Order = store.Order

// TopKEntry is one member of a top-K set record.
type TopKEntry = store.TopKEntry

// Value is an immutable typed record value.
type Value = store.Value

// OpKind identifies an operation for SplitHint.
type OpKind = store.OpKind

// Splittable operation kinds for SplitHint.
const (
	OpAdd        = store.OpAdd
	OpMax        = store.OpMax
	OpMin        = store.OpMin
	OpMult       = store.OpMult
	OpOPut       = store.OpOPut
	OpTopKInsert = store.OpTopKInsert
)

// Stats is a point-in-time summary of database activity.
type Stats struct {
	Committed    uint64
	Aborted      uint64
	Stashed      uint64
	Retries      uint64
	Phase        string
	PhaseChanges uint64
	SplitKeys    []string
	// MergeFailures counts reconciliation merges that failed on a type
	// mismatch between a split record's global value and a per-core
	// slice; the affected slice writes were dropped and the record kept
	// its previous value and TID. Non-zero means the application mixed
	// incompatible operations on a split key.
	MergeFailures uint64
	// StashDropped counts stashed transactions the drain abandoned after
	// its replay cap (over a million consecutive conflict aborts — a
	// pathological livelock). Non-zero means an accepted transaction was
	// never executed; each worker also logs the first drop it makes.
	StashDropped uint64
	// FenceAborts counts attempts that yielded to a cross-shard commit
	// fence: the transaction touched a key an in-flight cross-shard
	// commit had validated but not yet applied. These retry like
	// conflict aborts (fences live for microseconds); the counter is
	// only ever non-zero for shards of a Cluster.
	FenceAborts uint64
	// RedoLogError is the redo logger's terminal failure ("" when
	// healthy or logging is disabled). Logging is asynchronous, so
	// transactions keep committing in memory after such a failure —
	// operators must watch this field to know durability has stopped.
	RedoLogError string
	// ScrubPasses counts completed WAL scrub passes (background via
	// Options.ScrubEvery plus manual ScrubWAL calls); ScrubError is the
	// newest pass's damage report, "" while the log audits clean. A
	// non-empty value means a sealed segment recovery would need has
	// decayed on disk — act while the database is still healthy.
	ScrubPasses uint64
	ScrubError  string
}

// WALScrubStats summarizes one WAL scrub pass; see wal.ScrubDir.
type WALScrubStats = wal.ScrubStats

// CheckpointStats summarizes checkpoint activity; see checkpoint.Stats.
type CheckpointStats = checkpoint.Stats

// RecoveryStats reports what Recover read to rebuild the database. After
// a checkpoint, recovery is bounded: it loads the snapshot and replays
// only the segments written after it.
type RecoveryStats struct {
	SnapshotFile     string // snapshot loaded, "" when none existed
	SnapshotEntries  int    // records restored from the snapshot
	SnapshotSeq      uint64 // first segment sequence the snapshot does not cover
	SegmentsReplayed int    // live segments replayed after the snapshot
	RecordsReplayed  int    // redo records replayed from those segments
	Parallelism      int    // goroutines used for snapshot decode and segment replay
	Overlapped       bool   // segment replay ran concurrently with the snapshot load
}

// DB is a Doppel database with its own worker goroutines. All methods
// are safe for concurrent use.
type DB struct {
	eng         *core.DB
	redo        *wal.Logger
	redoDir     string
	ckpt        *checkpoint.Checkpointer
	walFailStop bool
	syncCommit  bool
	recovery    RecoveryStats
	queues      []chan *request
	wg          sync.WaitGroup
	stopped     atomic.Bool
	next        atomic.Uint64

	scrubStop chan struct{}
	scrubWG   sync.WaitGroup
	scrubMu   sync.Mutex
	scrubs    uint64
	scrubErr  error
}

type request struct {
	fn     TxFunc
	submit int64
	done   chan error      // synchronous completion (Exec)
	cb     func(error)     // asynchronous completion (ExecAsync); nil for Exec
	ctx    context.Context // nil means not cancellable (Exec, ExecAsync)
}

// finish reports the request's outcome through whichever completion
// mechanism the submitter chose.
func (req *request) finish(err error) {
	if req.cb != nil {
		req.cb(err)
		return
	}
	req.done <- err
}

// Open creates a database and starts its workers. It panics only on
// programmer error; an unopenable redo log is returned by OpenErr.
func Open(opts Options) *DB {
	db, err := OpenErr(opts)
	if err != nil {
		panic(err)
	}
	return db
}

// OpenErr is Open with an error return (needed only when Options.RedoLog
// is set). It refuses a durability directory that already holds logged
// state — appending a fresh database's records behind an old
// generation's would make the new writes unrecoverable; use Recover for
// existing directories.
func OpenErr(opts Options) (*DB, error) {
	if opts.RedoLog != "" {
		has, err := wal.HasState(opts.RedoLog)
		if err != nil {
			return nil, err
		}
		if has {
			return nil, fmt.Errorf("%w: %s", ErrLogExists, opts.RedoLog)
		}
	}
	return openInto(opts, store.New())
}

// Recover rebuilds a database from the durability directory at dir:
// it loads the manifest's snapshot (if any), replays only the segments
// the snapshot does not cover, and starts the database. Loading is
// parallel (Options.RecoveryParallelism): snapshot entries decode on N
// goroutines sharded by key, and segments replay concurrently — safe
// because a redo record applies only when it advances the key's TID,
// so the merge is order-independent. Unless opts.RedoLog names a
// different directory, logging resumes into dir by appending fresh
// records to the existing log — recovering and crashing again never
// loses recovered state. RecoveryStats reports how bounded the replay
// was.
func Recover(dir string, opts Options) (*DB, error) {
	st, res, err := checkpoint.LoadStore(dir, checkpoint.LoadOptions{
		Parallelism: opts.RecoveryParallelism,
		Overlap:     opts.RecoveryOverlap,
	})
	if err != nil {
		return nil, err
	}
	if opts.RedoLog == "" {
		opts.RedoLog = dir
	}
	db, err := openInto(opts, st)
	if err != nil {
		return nil, err
	}
	db.recovery = RecoveryStats{
		SnapshotFile:     res.Manifest.Snapshot,
		SnapshotEntries:  res.SnapshotEntries,
		SnapshotSeq:      res.Manifest.SnapshotSeq,
		SegmentsReplayed: len(res.Segments),
		RecordsReplayed:  res.Records,
		Parallelism:      res.Parallelism,
		Overlapped:       res.Overlapped,
	}
	return db, nil
}

func openInto(opts Options, st *store.Store) (*DB, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	opts, cfg := opts.resolve()
	workers := opts.Workers
	var redo *wal.Logger
	if opts.RedoLog != "" {
		var err error
		redo, err = wal.OpenOptions(opts.RedoLog, wal.Options{MaxSegmentBytes: opts.MaxSegmentBytes})
		if err != nil {
			return nil, err
		}
		cfg.Redo = redo
		cfg.WALFailStop = opts.WALFailStop
	}
	db := &DB{
		eng:         core.Open(st, cfg),
		redo:        redo,
		walFailStop: cfg.WALFailStop,
		syncCommit:  opts.SyncCommit && redo != nil,
		queues:      make([]chan *request, workers),
	}
	if redo != nil {
		db.redoDir = opts.RedoLog
		db.ckpt = checkpoint.New(db.eng, redo, checkpoint.Options{
			Every:       opts.CheckpointEvery,
			FrameBuffer: opts.CheckpointFrameBuffer,
		})
		if opts.ScrubEvery > 0 {
			db.scrubStop = make(chan struct{})
			db.scrubWG.Add(1)
			go db.scrubLoop(opts.ScrubEvery)
		}
	}
	for w := 0; w < workers; w++ {
		db.queues[w] = make(chan *request, 128)
		db.wg.Add(1)
		go db.worker(w)
	}
	return db, nil
}

// fenceSpinBudget bounds how long run retries a fence-aborted
// transaction inline before parking it with the worker loop. Fences
// release in microseconds — unless the releasing apply transaction is
// queued behind this very request, which is why the budget must be
// small and the request must come off the worker's critical path.
const fenceSpinBudget = 100 * time.Microsecond

// worker drives one engine worker: it executes submitted transactions,
// retries conflict aborts with backoff, and polls the engine between
// requests so phase transitions keep moving even when idle.
//
// Requests that keep aborting on a cross-shard commit fence are parked
// in the deferred list rather than retried in place: the fence releases
// only after the owning cross-shard commit's apply transactions run,
// and one of those may be waiting in this worker's own queue — blocking
// on the fence would deadlock the shard. While anything is parked the
// worker drains its queue without blocking and retries the parked work
// between requests.
func (db *DB) worker(w int) {
	defer db.wg.Done()
	q := db.queues[w]
	idle := time.NewTicker(200 * time.Microsecond)
	defer idle.Stop()
	var (
		deferred []*request // fence-parked, re-run between requests
		stashed  []*request // in the engine stash, finish when it drains
	)
	for {
		if len(deferred) > 0 || len(stashed) > 0 {
			select {
			case req, ok := <-q:
				if !ok {
					db.finishParked(w, deferred, stashed)
					return
				}
				switch db.run(w, req) {
				case runParked:
					deferred = append(deferred, req)
				case runStashed:
					stashed = append(stashed, req)
				}
			default:
				db.eng.Poll(w)
				time.Sleep(20 * time.Microsecond)
			}
			keep := deferred[:0]
			for _, req := range deferred {
				switch db.run(w, req) {
				case runParked:
					keep = append(keep, req)
				case runStashed:
					stashed = append(stashed, req)
				}
			}
			deferred = keep
			// A drained stash means every stashed transaction replayed
			// (the joined phase arrived and no fence re-stashed them), so
			// their callers can be acknowledged.
			if len(stashed) > 0 && db.eng.StashLen(w) == 0 {
				for _, req := range stashed {
					db.finishStashed(w, req)
				}
				stashed = nil
			}
			continue
		}
		select {
		case req, ok := <-q:
			if !ok {
				return
			}
			switch db.run(w, req) {
			case runParked:
				deferred = append(deferred, req)
			case runStashed:
				stashed = append(stashed, req)
			}
		case <-idle.C:
			db.eng.Poll(w)
		}
	}
}

// finishParked completes parked and stashed requests at shutdown. The
// fences the parked requests wait on are released by cross-shard
// applies draining on the other workers' queues (this worker's own
// queue is already empty), or by the router's failure-path cleanup; the
// stash drains when the still-running coordinator starts the next
// joined phase — so both loops terminate.
func (db *DB) finishParked(w int, deferred, stashed []*request) {
	for _, req := range deferred {
	retry:
		for {
			switch db.run(w, req) {
			case runDone:
				break retry
			case runStashed:
				stashed = append(stashed, req)
				break retry
			case runParked:
				db.eng.Poll(w)
				time.Sleep(20 * time.Microsecond)
			}
		}
	}
	for db.eng.StashLen(w) > 0 {
		db.eng.Poll(w)
		time.Sleep(20 * time.Microsecond)
	}
	for _, req := range stashed {
		db.finishStashed(w, req)
	}
}

// finishStashed acknowledges a request whose transaction went through
// the worker's stash, after the stash has drained.
func (db *DB) finishStashed(w int, req *request) {
	// Fail-stop: if the redo logger died, the drain may have refused
	// (and dropped) this stashed transaction instead of executing it —
	// acknowledging success here would violate the fail-stop contract.
	// Report the logger failure; a transaction that in fact replayed
	// just before the death gets a conservative error for a commit whose
	// durability is unknown anyway.
	if db.walFailStop {
		if err := db.redo.Err(); err != nil {
			req.finish(fmt.Errorf("doppel: redo log failed, stashed transaction dropped: %w", err))
			return
		}
	}
	// The stashed transaction replayed during the drain, so the worker's
	// newest redo LSN covers it (or an earlier record — waiting on that
	// is merely conservative).
	if db.syncCommit {
		if err := db.waitDurableCommit(w); err != nil {
			req.finish(err)
			return
		}
	}
	req.finish(nil)
}

// runResult says what the worker loop must do with a request after one
// run call.
type runResult int

const (
	// runDone: the request finished (committed, aborted with the user's
	// error, or was cancelled); nothing further to do.
	runDone runResult = iota
	// runParked: the request kept aborting on a commit fence past its
	// inline spin budget — retry it later without blocking the worker.
	runParked
	// runStashed: the transaction was stashed for the next joined phase;
	// finish the request (finishStashed) once this worker's stash
	// drains. The worker MUST keep servicing its queue meanwhile: the
	// stash can be pinned by a commit fence whose owning cross-shard
	// apply is queued behind this very request, so blocking here until
	// the stash drains deadlocks the shard.
	runStashed
)

// run executes one request until it completes, parks, or stashes; see
// runResult for what each outcome requires of the caller.
func (db *DB) run(w int, req *request) runResult {
	// A request cancelled while it waited in the queue never executes
	// (the ExecContext contract); the caller has already returned, so
	// the completion send lands in the buffered done channel unread.
	if req.ctx != nil {
		select {
		case <-req.ctx.Done():
			req.finish(req.ctx.Err())
			return runDone
		default:
		}
	}
	backoff := time.Microsecond
	var fenceDeadline time.Time
	for {
		out, err := db.eng.Attempt(w, req.fn, req.submit)
		switch out {
		case engine.Committed:
			if db.syncCommit {
				if err := db.waitDurableCommit(w); err != nil {
					req.finish(err)
					return runDone
				}
			}
			req.finish(nil)
			return runDone
		case engine.Stashed:
			// The transaction accessed split data incompatibly and was
			// stashed; it will re-execute during the next joined phase.
			// The caller's acknowledgement waits until this worker's
			// stash drains — that wait, up to a phase length, is the
			// read-latency cost the paper's Table 3 and Figure 13
			// measure — but the worker itself must not: it keeps
			// executing its queue (the paper's point of the split phase)
			// and finishes this request from the loop once the stash is
			// empty.
			return runStashed
		case engine.UserAbort:
			req.finish(err)
			return runDone
		case engine.Paused:
			db.eng.Poll(w)
		case engine.AbortedFenced:
			// Yielding to a cross-shard commit fence. Spin briefly — the
			// owning commit usually applies within microseconds — but
			// never past the budget: its apply transaction may be queued
			// behind this request on this very worker.
			if fenceDeadline.IsZero() {
				fenceDeadline = time.Now().Add(fenceSpinBudget)
			} else if time.Now().After(fenceDeadline) {
				return runParked
			}
			db.eng.Poll(w)
			time.Sleep(5 * time.Microsecond)
		case engine.Aborted:
			time.Sleep(backoff)
			if backoff < time.Millisecond {
				backoff *= 2
			}
		}
	}
}

// waitDurableCommit holds a SyncCommit acknowledgement until the
// transaction's redo record is written and fsynced. A commit that
// buffered split (slice) writes has no redo record yet — slice writes
// are logged when reconciliation merges them at the next phase
// transition — so first poll the engine until this worker's slices
// have reconciled (bounded by the coordinator's phase clock, like the
// stash wait), then wait on the group-commit watermark. Concurrent
// commits share each fsync; a terminal logger failure surfaces here
// instead of acknowledging a commit that can never be durable.
func (db *DB) waitDurableCommit(w int) error {
	for db.eng.SliceRedoPending(w) {
		db.eng.Poll(w)
		time.Sleep(50 * time.Microsecond)
	}
	if err := db.redo.WaitDurable(db.eng.RedoLSN(w)); err != nil {
		return fmt.Errorf("doppel: commit not durable: %w", err)
	}
	return nil
}

// Exec runs fn as a serializable transaction and returns once it has
// committed (or has been durably accepted for commit in the next joined
// phase, when the transaction was stashed). A non-nil return is fn's own
// error; conflicts are retried internally. Exec is exactly
// ExecContext(context.Background(), fn).
func (db *DB) Exec(fn TxFunc) error {
	return db.ExecContext(context.Background(), fn)
}

// ExecContext is Exec with cancellation: if ctx is cancelled while the
// request is still waiting in the worker queue — either the queue is
// full or the worker has not reached it yet — the transaction does not
// execute and ctx's error is returned. Cancellation is checked up to
// the moment a worker starts the first execution attempt; once
// execution has begun the transaction runs to completion (a commit
// cannot be un-happened), and a cancellation that fires during it makes
// ExecContext return ctx's error even though the transaction may still
// commit. Use Exec when that ambiguity is unacceptable.
func (db *DB) ExecContext(ctx context.Context, fn TxFunc) error {
	if db.stopped.Load() {
		return ErrClosed
	}
	req := &request{fn: fn, submit: time.Now().UnixNano(), done: make(chan error, 1)}
	w := int(db.next.Add(1)) % len(db.queues)
	if ctx.Done() == nil {
		// Not cancellable (context.Background()): plain channel operations
		// keep the hot path free of selectgo.
		db.queues[w] <- req
		return <-req.done
	}
	req.ctx = ctx
	select {
	case db.queues[w] <- req:
	case <-ctx.Done():
		return ctx.Err()
	}
	select {
	case err := <-req.done:
		return err
	case <-ctx.Done():
		// The worker still owns the request; its completion send lands in
		// the buffered done channel and is dropped with the request.
		return ctx.Err()
	}
}

// ExecAsync submits fn like Exec but returns without waiting: done is
// called exactly once with the transaction's outcome, from the worker
// goroutine that completed it. done must be quick and must not submit
// further transactions synchronously, or it stalls that worker. This is
// the batching path the network server uses to keep every worker busy
// without one blocked goroutine per in-flight request.
func (db *DB) ExecAsync(fn TxFunc, done func(error)) {
	if db.stopped.Load() {
		done(ErrClosed)
		return
	}
	req := &request{fn: fn, submit: time.Now().UnixNano(), cb: done}
	w := int(db.next.Add(1)) % len(db.queues)
	db.queues[w] <- req
}

// ExecWait is Exec for callers that need the stashed-transaction commit
// to have happened before return: it re-submits a no-op read after fn to
// ensure a joined phase has passed. Reads of split data already behave
// this way naturally.
func (db *DB) ExecWait(fn TxFunc) error {
	if err := db.Exec(fn); err != nil {
		return err
	}
	return db.Exec(func(tx Tx) error { return nil })
}

// Checkpoint forces a checkpoint now: a consistent snapshot is written
// at a quiesced phase boundary, the WAL rotates, and segments the
// snapshot covers are garbage-collected. It returns once the checkpoint
// is durable. Requires Options.RedoLog.
func (db *DB) Checkpoint() error {
	if db.ckpt == nil {
		return fmt.Errorf("Checkpoint: %w", ErrRequiresRedoLog)
	}
	if db.stopped.Load() {
		return ErrClosed
	}
	return db.ckpt.Checkpoint()
}

// ScrubWAL audits the redo log's sealed segments now: every live sealed
// segment is re-decoded end to end and cross-checked against the
// manifest's sealed metadata — the same validation recovery performs,
// run on demand while the database is healthy. A non-nil error is the
// joined damage report; the pass also feeds Stats.ScrubPasses and
// Stats.ScrubError. Scrubbing only reads and runs concurrently with
// traffic and checkpoints (a segment GC'd mid-pass counts as skipped).
// Requires Options.RedoLog.
func (db *DB) ScrubWAL() (WALScrubStats, error) {
	if db.redo == nil {
		return WALScrubStats{}, fmt.Errorf("ScrubWAL: %w", ErrRequiresRedoLog)
	}
	stats, err := wal.ScrubDir(db.redoDir)
	db.scrubMu.Lock()
	db.scrubs++
	db.scrubErr = err
	db.scrubMu.Unlock()
	return stats, err
}

// scrubLoop runs background scrub passes every interval until Close.
func (db *DB) scrubLoop(every time.Duration) {
	defer db.scrubWG.Done()
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-db.scrubStop:
			return
		case <-t.C:
			_, _ = db.ScrubWAL()
		}
	}
}

// CheckpointStats returns checkpoint activity counters (zero when no
// redo log is configured).
func (db *DB) CheckpointStats() CheckpointStats {
	if db.ckpt == nil {
		return CheckpointStats{}
	}
	return db.ckpt.Stats()
}

// LastRecovery reports what Recover loaded to build this database; it is
// zero for databases not created by Recover.
func (db *DB) LastRecovery() RecoveryStats { return db.recovery }

// WALErr returns the redo logger's terminal failure, or nil while the
// logger is healthy or logging is disabled. Logging is asynchronous, so
// without Options.WALFailStop transactions keep committing in memory
// after such a failure — operators must watch this (or
// Stats.RedoLogError) to know durability has stopped.
func (db *DB) WALErr() error {
	if db.redo == nil {
		return nil
	}
	return db.redo.Err()
}

// DurableLSN returns the redo log's durability watermark: every record
// whose LSN is at or below it has been written and fsynced. Zero when
// logging is disabled. Compared against a Replica's AppliedLSN it is
// the replication lag in records.
func (db *DB) DurableLSN() uint64 {
	if db.redo == nil {
		return 0
	}
	return db.redo.Durable()
}

// LogPosition returns the redo log's durable byte position — the
// replication offset a follower must reach to have applied every
// acknowledged commit. Zero when logging is disabled. After Close the
// final flush has run, so the value is the log's true end.
func (db *DB) LogPosition() LogPosition {
	if db.redo == nil {
		return LogPosition{}
	}
	return db.redo.DurablePosition()
}

// SplitHint manually labels key as split data for op (§5.5 of the
// paper). The classifier handles hot keys automatically; hints are for
// workloads whose contention the application can predict.
func (db *DB) SplitHint(key string, op OpKind) { db.eng.SplitHint(key, op) }

// ClearSplitHint removes a manual label.
func (db *DB) ClearSplitHint(key string) { db.eng.ClearSplitHint(key) }

// Stats returns aggregate statistics.
func (db *DB) Stats() Stats {
	agg := metrics.NewTxnStats()
	for w := 0; w < db.eng.Workers(); w++ {
		agg.Merge(db.eng.WorkerStats(w))
	}
	s := Stats{
		Committed:     agg.Committed,
		Aborted:       agg.Aborted,
		Stashed:       agg.Stashed,
		Retries:       agg.Retries,
		MergeFailures: agg.MergeFailures,
		StashDropped:  agg.StashDropped,
		FenceAborts:   agg.FenceAborts,
		Phase:         db.eng.Phase().String(),
		PhaseChanges:  db.eng.PhaseChanges(),
		SplitKeys:     db.eng.SplitKeys(),
	}
	if db.redo != nil {
		if err := db.redo.Err(); err != nil {
			s.RedoLogError = err.Error()
		}
		db.scrubMu.Lock()
		s.ScrubPasses = db.scrubs
		if db.scrubErr != nil {
			s.ScrubError = db.scrubErr.Error()
		}
		db.scrubMu.Unlock()
	}
	return s
}

// Close stops the workers, reconciles outstanding per-core slices and
// commits any stashed transactions. The database must not be used after
// Close.
func (db *DB) Close() {
	if db.stopped.Swap(true) {
		return
	}
	if db.scrubStop != nil {
		close(db.scrubStop)
		db.scrubWG.Wait()
	}
	// Stop the checkpointer while the workers are still being driven: an
	// in-flight checkpoint barrier needs polling workers to complete.
	if db.ckpt != nil {
		db.ckpt.Close()
	}
	for _, q := range db.queues {
		close(q)
	}
	db.wg.Wait()
	db.eng.Close()
	if db.redo != nil {
		_ = db.redo.Close()
	}
}

// Internal returns the underlying engine for benchmarks and tests that
// need direct worker control.
func (db *DB) Internal() *core.DB { return db.eng }
