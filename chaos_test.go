package doppel_test

// Chaos harness: a primary serving over a seeded fault-injected
// network, a checkpointing follower tailing its log, and retrying
// clients — driven through partitions, connection kills, checkpoints
// (which GC segments under the follower) and full primary/follower
// restarts, all derived deterministically from a seed. The invariants:
//
//   - No acked-write loss and no duplication: every operation is
//     acknowledged exactly once, and the counter equals the operation
//     count exactly (conservation), across every re-issue and restart.
//   - The follower's applied watermark never regresses within an
//     instance's lifetime, and the follower never goes terminal —
//     falling behind checkpoint GC must self-heal by re-bootstrap.
//   - The 2-shard variant additionally requires
//     RouterStats.CrossShardApplyLost == 0: connection chaos must never
//     surface as a half-applied cross-shard commit.
//
// Exactly-once here is belt and braces: the wire layer dedups re-issued
// request IDs per session, and the "addonce" procedure is idempotent in
// the database itself (a per-op marker key), which is what survives a
// primary restart throwing the session state away.

import (
	"context"
	"fmt"
	"math/rand/v2"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"doppel"
	"doppel/internal/fault"
	"doppel/internal/server"
)

// chaosRig owns the primary/follower lifecycle so the chaos driver can
// bounce them while clients and the watermark sampler keep running.
type chaosRig struct {
	t        *testing.T
	dir      string // primary redo-log directory
	stateDir string // follower checkpoint directory
	addr     string // fixed server address across restarts
	netF     *fault.Network

	mu      sync.Mutex
	db      *doppel.DB
	srv     *server.Server
	rep     *doppel.Replica
	lastPos doppel.LogPosition // per-instance watermark floor
}

func (r *chaosRig) dbOptions() doppel.Options {
	return doppel.Options{
		Workers:         2,
		RedoLog:         r.dir,
		SyncCommit:      true, // acked => durable, so restarts may not lose acked writes
		MaxSegmentBytes: 4 << 10,
	}
}

// registerChaosProcs installs the harness procedures on a server.
func registerChaosProcs(s *server.Server) {
	// addonce is idempotent per opid: the marker key commits in the same
	// transaction as the increment, so a re-issued request (lost ack,
	// restarted server) observes the marker and becomes a no-op.
	s.Register("addonce", func(tx doppel.Tx, args []server.Arg) (server.Arg, error) {
		key, opid := args[0].String(), "op:"+args[1].String()
		n, err := tx.GetInt(opid)
		if err != nil {
			return server.Nil, err
		}
		if n != 0 {
			return server.Str("dup"), nil
		}
		if err := tx.PutInt(opid, 1); err != nil {
			return server.Nil, err
		}
		if err := tx.Add(key, 1); err != nil {
			return server.Nil, err
		}
		return server.Str("ok"), nil
	})
	s.Register("get", func(tx doppel.Tx, args []server.Arg) (server.Arg, error) {
		n, err := tx.GetInt(args[0].String())
		return server.Int(n), err
	})
}

// startPrimary (re)opens the database from the log directory and serves
// it on the rig's fixed address through the fault network.
func (r *chaosRig) startPrimary() error {
	db, err := doppel.Recover(r.dir, r.dbOptions())
	if err != nil {
		return err
	}
	lis, err := net.Listen("tcp", r.addr)
	if err != nil {
		db.Close()
		return err
	}
	srv := server.New(db)
	registerChaosProcs(srv)
	srv.ServeListener(r.netF.Listener(lis))
	r.mu.Lock()
	r.db, r.srv = db, srv
	r.addr = lis.Addr().String()
	r.mu.Unlock()
	return nil
}

func (r *chaosRig) stopPrimary() {
	r.mu.Lock()
	db, srv := r.db, r.srv
	r.db, r.srv = nil, nil
	r.mu.Unlock()
	if srv != nil {
		srv.Close()
	}
	if db != nil {
		db.Close() // seals the WAL and releases the directory lock
	}
}

func (r *chaosRig) startFollower() error {
	rep, err := doppel.OpenFollower(r.dir, doppel.FollowerOptions{
		PollInterval:    time.Millisecond,
		StateDir:        r.stateDir,
		CheckpointEvery: 32,
	})
	if err != nil {
		return err
	}
	r.mu.Lock()
	r.rep = rep
	r.lastPos = doppel.LogPosition{} // new instance, new monotonicity floor
	r.mu.Unlock()
	return nil
}

func (r *chaosRig) stopFollower() {
	r.mu.Lock()
	rep := r.rep
	r.rep = nil
	r.mu.Unlock()
	if rep != nil {
		rep.Close()
	}
}

// sampleWatermark asserts the follower invariants once: the applied
// position never regresses within an instance, and the tail never goes
// terminal (GC overruns must self-heal instead).
func (r *chaosRig) sampleWatermark() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.rep == nil {
		return
	}
	pos := r.rep.Position()
	if pos.Seq < r.lastPos.Seq || (pos.Seq == r.lastPos.Seq && pos.Offset < r.lastPos.Offset) {
		r.t.Errorf("follower watermark regressed: %s after %s", pos, r.lastPos)
	}
	r.lastPos = pos
	if err := r.rep.Err(); err != nil {
		r.t.Errorf("follower went terminal: %v", err)
	}
}

func (r *chaosRig) checkpointPrimary() {
	r.mu.Lock()
	db := r.db
	r.mu.Unlock()
	if db != nil {
		_ = db.Checkpoint()
	}
}

func TestChaosPrimaryFollowerClients(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos harness is seconds-long; skipped with -short")
	}
	for _, seed := range []uint64{1, 2, 3} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runChaosSeed(t, seed)
		})
	}
}

func runChaosSeed(t *testing.T, seed uint64) {
	const (
		clients      = 3
		opsPerClient = 25
		chaosEvents  = 12
	)
	rig := &chaosRig{
		t:        t,
		dir:      t.TempDir(),
		stateDir: t.TempDir(),
		addr:     "127.0.0.1:0",
		netF:     fault.NewNetwork(seed),
	}
	// On top of the driver's partitions and kills, every fourth
	// connection carries a byte budget so some cuts land mid-frame —
	// half-written requests and responses that force re-issue and dedup.
	rig.netF.SetScript(func(i uint64, rng *rand.Rand) fault.Script {
		if i%4 == 3 {
			return fault.Script{CutAfterBytes: 200 + int64(rng.IntN(800))}
		}
		return fault.Script{}
	})
	if err := rig.startPrimary(); err != nil {
		t.Fatal(err)
	}
	defer rig.stopPrimary()
	if err := rig.startFollower(); err != nil {
		t.Fatal(err)
	}
	defer rig.stopFollower()

	// Watermark sampler: runs for the whole test at a few-ms cadence.
	samplerStop := make(chan struct{})
	var samplerWG sync.WaitGroup
	samplerWG.Add(1)
	go func() {
		defer samplerWG.Done()
		for {
			select {
			case <-samplerStop:
				return
			case <-time.After(3 * time.Millisecond):
				rig.sampleWatermark()
			}
		}
	}()

	// Clients: every op is re-issued until acknowledged, so by the end
	// each opid was acked exactly once and the counter must conserve.
	var acked atomic.Int64
	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	var clientWG sync.WaitGroup
	clientErr := make(chan error, clients)
	for id := 0; id < clients; id++ {
		clientWG.Add(1)
		go func(id int) {
			defer clientWG.Done()
			rc := server.DialRetry(rig.addr, server.RetryOptions{
				RequestTimeout: 300 * time.Millisecond,
				MaxAttempts:    6,
				BackoffBase:    2 * time.Millisecond,
				BackoffMax:     40 * time.Millisecond,
				Seed:           seed*100 + uint64(id),
			})
			defer rc.Close()
			for op := 0; op < opsPerClient; op++ {
				opid := fmt.Sprintf("s%d-c%d-%d", seed, id, op)
				for {
					_, err := rc.Call(ctx, "addonce", server.Str("counter"), server.Str(opid))
					if err == nil {
						break
					}
					if ctx.Err() != nil {
						clientErr <- fmt.Errorf("client %d op %d never acked: %w", id, op, err)
						return
					}
					// Retries exhausted against a down or partitioned
					// server: re-issuing the same opid is safe (addonce is
					// idempotent), so back off and go again.
					time.Sleep(10 * time.Millisecond)
				}
				acked.Add(1)
				// Pace the stream so traffic is in flight across the whole
				// chaos schedule, not finished before it starts.
				time.Sleep(5 * time.Millisecond)
			}
		}(id)
	}

	// Chaos driver: a deterministic event schedule from the seed.
	rng := rand.New(rand.NewPCG(seed, 0xC4A05))
	for i := 0; i < chaosEvents; i++ {
		time.Sleep(time.Duration(20+rng.IntN(40)) * time.Millisecond)
		switch rng.IntN(6) {
		case 0:
			rig.netF.Partition()
			time.Sleep(time.Duration(20+rng.IntN(60)) * time.Millisecond)
			rig.netF.Heal()
		case 1:
			rig.netF.PartitionOutbound()
			time.Sleep(time.Duration(20+rng.IntN(60)) * time.Millisecond)
			rig.netF.Heal()
		case 2:
			rig.netF.KillConns()
		case 3:
			rig.stopPrimary()
			time.Sleep(time.Duration(rng.IntN(30)) * time.Millisecond)
			if err := rig.startPrimary(); err != nil {
				t.Fatalf("primary restart: %v", err)
			}
		case 4:
			// Checkpoint GCs segments; a lagging follower must
			// re-bootstrap rather than die.
			rig.checkpointPrimary()
		case 5:
			rig.stopFollower()
			time.Sleep(time.Duration(rng.IntN(20)) * time.Millisecond)
			if err := rig.startFollower(); err != nil {
				t.Fatalf("follower restart: %v", err)
			}
		}
	}
	rig.netF.Heal()

	clientWG.Wait()
	close(clientErr)
	for err := range clientErr {
		t.Fatal(err)
	}
	const total = clients * opsPerClient
	if n := acked.Load(); n != total {
		t.Fatalf("acked %d ops, want %d", n, total)
	}

	// Conservation on the primary, over a clean connection.
	rig.mu.Lock()
	addr := rig.addr
	db := rig.db
	rig.mu.Unlock()
	c, err := server.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Call("get", server.Str("counter"))
	c.Close()
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := got.Int64(); n != total {
		t.Fatalf("counter = %d, want %d: an acked increment was lost or doubled", n, total)
	}

	// The follower converges to the primary's durable position and
	// agrees on the counter; then stop the sampler.
	rig.mu.Lock()
	rep := rig.rep
	rig.mu.Unlock()
	wctx, wcancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer wcancel()
	if err := rep.WaitPosition(wctx, db.LogPosition()); err != nil {
		t.Fatalf("follower never converged: %v (stats %+v)", err, rep.Stats())
	}
	if _, err := rep.View(func(tx doppel.Tx) error {
		n, err := tx.GetInt("counter")
		if err != nil {
			return err
		}
		if n != total {
			return fmt.Errorf("follower counter = %d, want %d", n, total)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	close(samplerStop)
	samplerWG.Wait()

	if s := rig.netF.Stats(); s.Cut+s.Killed == 0 && s.Conns < 4 {
		t.Logf("warning: tame run (stats %+v)", s)
	}
	t.Logf("seed %d: acked=%d fault=%+v follower=%+v", seed, acked.Load(), rig.netF.Stats(), rep.Stats())
}

// TestChaosClusterCrossShard drives cross-shard transfers through
// connection chaos on a 2-shard cluster: money conservation must hold
// exactly and no per-shard apply may ever be lost (the split-set fence
// invariant), no matter how connections die mid-2PC acknowledgement.
func TestChaosClusterCrossShard(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos harness is seconds-long; skipped with -short")
	}
	for _, seed := range []uint64{1, 2, 3} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runClusterChaosSeed(t, seed)
		})
	}
}

func runClusterChaosSeed(t *testing.T, seed uint64) {
	const (
		clients      = 3
		opsPerClient = 20
		accounts     = 4
	)
	cl, err := doppel.OpenCluster(doppel.ClusterOptions{
		Shards: 2,
		DB:     doppel.Options{Workers: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	netF := fault.NewNetwork(seed)
	netF.SetScript(func(i uint64, rng *rand.Rand) fault.Script {
		if i%4 == 3 {
			return fault.Script{CutAfterBytes: 200 + int64(rng.IntN(800))}
		}
		return fault.Script{}
	})
	srv := server.New(cl)
	// transfer moves one unit between two accounts (usually on different
	// shards) with the same marker-key idempotence as addonce.
	srv.Register("transfer", func(tx doppel.Tx, args []server.Arg) (server.Arg, error) {
		from, to, opid := args[0].String(), args[1].String(), "op:"+args[2].String()
		n, err := tx.GetInt(opid)
		if err != nil {
			return server.Nil, err
		}
		if n != 0 {
			return server.Str("dup"), nil
		}
		if err := tx.PutInt(opid, 1); err != nil {
			return server.Nil, err
		}
		if err := tx.Add(from, -1); err != nil {
			return server.Nil, err
		}
		if err := tx.Add(to, 1); err != nil {
			return server.Nil, err
		}
		return server.Str("ok"), nil
	})
	srv.Register("sum", func(tx doppel.Tx, args []server.Arg) (server.Arg, error) {
		var sum int64
		for i := 0; i < accounts; i++ {
			n, err := tx.GetInt(fmt.Sprintf("acct%d", i))
			if err != nil {
				return server.Nil, err
			}
			sum += n
		}
		return server.Int(sum), nil
	})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv.ServeListener(netF.Listener(lis))
	defer srv.Close()
	addr := lis.Addr().String()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	clientErr := make(chan error, clients)
	for id := 0; id < clients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rc := server.DialRetry(addr, server.RetryOptions{
				RequestTimeout: 300 * time.Millisecond,
				MaxAttempts:    6,
				BackoffBase:    2 * time.Millisecond,
				BackoffMax:     40 * time.Millisecond,
				Seed:           seed*1000 + uint64(id),
			})
			defer rc.Close()
			for op := 0; op < opsPerClient; op++ {
				from := fmt.Sprintf("acct%d", (id+op)%accounts)
				to := fmt.Sprintf("acct%d", (id+op+1)%accounts)
				opid := fmt.Sprintf("s%d-c%d-%d", seed, id, op)
				for {
					_, err := rc.Call(ctx, "transfer", server.Str(from), server.Str(to), server.Str(opid))
					if err == nil {
						break
					}
					if ctx.Err() != nil {
						clientErr <- fmt.Errorf("client %d op %d never acked: %w", id, op, err)
						return
					}
					time.Sleep(10 * time.Millisecond)
				}
				// Keep traffic in flight across the whole chaos schedule.
				time.Sleep(8 * time.Millisecond)
			}
		}(id)
	}

	rng := rand.New(rand.NewPCG(seed, 0x2BC))
	for i := 0; i < 10; i++ {
		time.Sleep(time.Duration(15+rng.IntN(40)) * time.Millisecond)
		switch rng.IntN(3) {
		case 0:
			netF.Partition()
			time.Sleep(time.Duration(15+rng.IntN(50)) * time.Millisecond)
			netF.Heal()
		case 1:
			netF.KillConns()
		case 2:
			netF.PartitionInbound()
			time.Sleep(time.Duration(15+rng.IntN(50)) * time.Millisecond)
			netF.Heal()
		}
	}
	netF.Heal()
	wg.Wait()
	close(clientErr)
	for err := range clientErr {
		t.Fatal(err)
	}

	c, err := server.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	got, err := c.Call("sum")
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := got.Int64(); n != 0 {
		t.Fatalf("account sum = %d, want 0: a transfer half-applied", n)
	}
	cs := cl.Stats()
	if cs.Router.CrossShardApplyLost != 0 {
		t.Fatalf("CrossShardApplyLost = %d, want 0", cs.Router.CrossShardApplyLost)
	}
	if cs.Router.CrossShard == 0 {
		t.Fatal("no cross-shard transactions ran; the variant exercised nothing")
	}
	t.Logf("seed %d: cross_shard=%d retries=%d fault=%+v",
		seed, cs.Router.CrossShard, cs.Router.CrossShardRetries, netF.Stats())
}
