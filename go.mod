module doppel

go 1.24
