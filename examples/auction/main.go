// Auction: the paper's motivating workload (§1). Many bidders hammer a
// few popular auctions as they near their close; the StoreBid
// transaction is written with commutative operations (the paper's
// Figure 7) so Doppel can split the auction metadata and absorb the
// contention on per-core slices.
//
//	go run ./examples/auction
package main

import (
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"doppel"
)

const (
	auctions = 100
	hotItem  = 7 // everyone wants the signed guitar
	bidders  = 8
	duration = 500 * time.Millisecond
)

func maxBidKey(item int) string    { return fmt.Sprintf("auction:%d:maxbid", item) }
func maxBidderKey(item int) string { return fmt.Sprintf("auction:%d:winner", item) }
func numBidsKey(item int) string   { return fmt.Sprintf("auction:%d:numbids", item) }
func bidIndexKey(item int) string  { return fmt.Sprintf("auction:%d:bids", item) }

// storeBid is the Figure 7 transaction: insert the bid row, then update
// the auction metadata with Max / OPut / Add / TopKInsert — all
// commutative, all splittable.
func storeBid(db *doppel.DB, bidder, item int, amount int64, bidSeq int64) error {
	bidKey := fmt.Sprintf("bid:%d:%d", bidder, bidSeq)
	now := time.Now().UnixNano()
	return db.Exec(func(tx doppel.Tx) error {
		if err := tx.PutBytes(bidKey, []byte(fmt.Sprintf("item=%d amt=%d", item, amount))); err != nil {
			return err
		}
		if err := tx.Max(maxBidKey(item), amount); err != nil {
			return err
		}
		if err := tx.OPut(maxBidderKey(item), doppel.Order{A: amount, B: now},
			[]byte(fmt.Sprintf("bidder-%d", bidder))); err != nil {
			return err
		}
		if err := tx.Add(numBidsKey(item), 1); err != nil {
			return err
		}
		return tx.TopKInsert(bidIndexKey(item), amount, []byte(bidKey), 10)
	})
}

func main() {
	db := doppel.Open(doppel.Options{Workers: 4, PhaseLength: 5 * time.Millisecond})
	defer db.Close()

	var totalBids, hotBids atomic.Int64
	var highest atomic.Int64
	var wg sync.WaitGroup
	stop := time.Now().Add(duration)
	for b := 0; b < bidders; b++ {
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			seq := int64(0)
			for time.Now().Before(stop) {
				seq++
				item := hotItem
				if seq%5 == 0 { // an occasional bid on a quiet auction
					item = int(seq) % auctions
				}
				amount := int64(100 + b*7 + int(seq)%1000)
				if err := storeBid(db, b, item, amount, seq); err != nil {
					log.Printf("bid failed: %v", err)
					continue
				}
				totalBids.Add(1)
				if item == hotItem {
					hotBids.Add(1)
					for {
						cur := highest.Load()
						if amount <= cur || highest.CompareAndSwap(cur, amount) {
							break
						}
					}
				}
			}
		}(b)
	}
	wg.Wait()

	// Reads of split data stash until the next joined phase; Exec blocks
	// until the value is fully reconciled.
	err := db.Exec(func(tx doppel.Tx) error {
		maxBid, err := tx.GetInt(maxBidKey(hotItem))
		if err != nil {
			return err
		}
		numBids, err := tx.GetInt(numBidsKey(hotItem))
		if err != nil {
			return err
		}
		winner, ok, err := tx.GetTuple(maxBidderKey(hotItem))
		if err != nil {
			return err
		}
		top, err := tx.GetTopK(bidIndexKey(hotItem))
		if err != nil {
			return err
		}
		fmt.Printf("hot auction #%d: %d bids, winning bid %d", hotItem, numBids, maxBid)
		if ok {
			fmt.Printf(" by %s", winner.Data)
		}
		fmt.Printf("; top-%d bid index populated\n", len(top))
		if numBids != hotBids.Load() {
			return fmt.Errorf("CONSERVATION VIOLATED: %d bids recorded, %d submitted", numBids, hotBids.Load())
		}
		if maxBid != highest.Load() {
			return fmt.Errorf("max bid %d does not match highest submitted %d", maxBid, highest.Load())
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	s := db.Stats()
	fmt.Printf("total bids: %d (hot: %d) — commits=%d stashed=%d phase-changes=%d split-keys=%v\n",
		totalBids.Load(), hotBids.Load(), s.Committed, s.Stashed, s.PhaseChanges, s.SplitKeys)
}
