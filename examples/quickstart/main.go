// Quickstart: open a Doppel database, run a few transactions, read the
// results. Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"doppel"
)

func main() {
	db := doppel.Open(doppel.Options{Workers: 4})
	defer db.Close()

	// A transaction is a function over tx; Exec retries conflicts and
	// returns once it has committed.
	err := db.Exec(func(tx doppel.Tx) error {
		if err := tx.PutBytes("greeting", []byte("hello, doppel")); err != nil {
			return err
		}
		// Splittable operations: these are the ones Doppel can run on
		// per-core slices when the record becomes contended.
		if err := tx.Add("visits", 1); err != nil {
			return err
		}
		if err := tx.Max("high-score", 9000); err != nil {
			return err
		}
		return tx.TopKInsert("scoreboard", 9000, []byte("ada"), 10)
	})
	if err != nil {
		log.Fatal(err)
	}

	err = db.Exec(func(tx doppel.Tx) error {
		g, err := tx.GetBytes("greeting")
		if err != nil {
			return err
		}
		visits, err := tx.GetInt("visits")
		if err != nil {
			return err
		}
		hi, err := tx.GetInt("high-score")
		if err != nil {
			return err
		}
		board, err := tx.GetTopK("scoreboard")
		if err != nil {
			return err
		}
		fmt.Printf("%s — visits=%d high-score=%d leaders=%d\n", g, visits, hi, len(board))
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stats: %+v\n", db.Stats())
}
