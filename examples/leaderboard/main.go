// Leaderboard: a Reddit-style front page (§2 of the paper cites Reddit's
// materialized vote counts and top-k lists). Stories accumulate votes
// with Add; the front page is a top-K set maintained with TopKInsert;
// the most recent headline is an OPut ordered tuple. All three update
// paths commute, so the hottest records can be split while the site is
// being hammered.
//
//	go run ./examples/leaderboard
package main

import (
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"doppel"
)

const (
	stories  = 200
	voters   = 8
	frontK   = 10
	duration = 400 * time.Millisecond
)

func votesKey(s int) string { return fmt.Sprintf("story:%d:votes", s) }

const frontPageKey = "frontpage"
const latestKey = "latest-headline"

func main() {
	db := doppel.Open(doppel.Options{Workers: 4, PhaseLength: 5 * time.Millisecond})
	defer db.Close()

	// The front page and the few viral stories are predictably hot;
	// label them up front (§5.5 manual data labeling). Everything else
	// is left to the classifier.
	db.SplitHint(frontPageKey, doppel.OpTopKInsert)
	db.SplitHint(votesKey(0), doppel.OpAdd)
	db.SplitHint(latestKey, doppel.OpOPut)

	votes := make([]atomic.Int64, stories)
	var wg sync.WaitGroup
	stop := time.Now().Add(duration)
	for v := 0; v < voters; v++ {
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			i := 0
			for time.Now().Before(stop) {
				i++
				story := 0 // the viral story gets most votes
				if i%3 != 0 {
					story = (v*31 + i) % stories
				}
				seq := int64(i)
				err := db.Exec(func(tx doppel.Tx) error {
					if err := tx.Add(votesKey(story), 1); err != nil {
						return err
					}
					// Maintain the front page: a story's index entry
					// carries its (approximate) vote count as the order.
					if err := tx.TopKInsert(frontPageKey, seq, []byte(votesKey(story)), frontK); err != nil {
						return err
					}
					return tx.OPut(latestKey, doppel.Order{A: seq, B: int64(v)},
						[]byte(fmt.Sprintf("story %d is trending", story)))
				})
				if err != nil {
					log.Fatal(err)
				}
				votes[story].Add(1)
			}
		}(v)
	}
	wg.Wait()

	err := db.Exec(func(tx doppel.Tx) error {
		viral, err := tx.GetInt(votesKey(0))
		if err != nil {
			return err
		}
		if viral != votes[0].Load() {
			return fmt.Errorf("viral story: %d votes recorded, %d cast", viral, votes[0].Load())
		}
		front, err := tx.GetTopK(frontPageKey)
		if err != nil {
			return err
		}
		latest, ok, err := tx.GetTuple(latestKey)
		if err != nil {
			return err
		}
		fmt.Printf("viral story: %d votes (verified exact)\n", viral)
		fmt.Printf("front page (%d entries):\n", len(front))
		for i, e := range front {
			if i >= 3 {
				fmt.Printf("  ...\n")
				break
			}
			fmt.Printf("  #%d %s\n", i+1, e.Data)
		}
		if ok {
			fmt.Printf("latest headline: %s\n", latest.Data)
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	s := db.Stats()
	fmt.Printf("engine: commits=%d stashed=%d phase-changes=%d split-keys=%d\n",
		s.Committed, s.Stashed, s.PhaseChanges, len(s.SplitKeys))
}
