// Likes: the paper's LIKE application (§7) — users "like" pages on a
// social site. Update transactions write the user's like and increment a
// per-page counter; read transactions read a user's last like and a
// page's total. Page popularity is heavily skewed, so the hot pages'
// counters become split data while every individual like row stays an
// ordinary record.
//
//	go run ./examples/likes
package main

import (
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"doppel"
)

const (
	users    = 10_000
	pages    = 1_000
	hotPages = 3 // a celebrity account or two
	workers  = 8
	duration = 500 * time.Millisecond
)

func pageKey(p int) string { return fmt.Sprintf("page:%d:likes", p) }
func userKey(u int) string { return fmt.Sprintf("user:%d:last", u) }

func main() {
	db := doppel.Open(doppel.Options{Workers: 4, PhaseLength: 5 * time.Millisecond})
	defer db.Close()

	perPage := make([]atomic.Int64, pages)
	var reads, writes atomic.Int64
	var wg sync.WaitGroup
	stop := time.Now().Add(duration)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			i := 0
			for time.Now().Before(stop) {
				i++
				user := (w*7919 + i) % users
				page := i % hotPages // most traffic on hot pages
				if i%10 == 0 {
					page = i % pages
				}
				if i%2 == 0 {
					// Like: record it and bump the page counter.
					err := db.Exec(func(tx doppel.Tx) error {
						if err := tx.PutBytes(userKey(user), []byte(pageKey(page))); err != nil {
							return err
						}
						return tx.Add(pageKey(page), 1)
					})
					if err != nil {
						log.Fatal(err)
					}
					perPage[page].Add(1)
					writes.Add(1)
				} else {
					// Read: the user's last like and some page's total.
					err := db.Exec(func(tx doppel.Tx) error {
						if _, err := tx.GetBytes(userKey(user)); err != nil {
							return err
						}
						_, err := tx.GetInt(pageKey(page))
						return err
					})
					if err != nil {
						log.Fatal(err)
					}
					reads.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()

	// Verify conservation for every page that received likes.
	var checked, totalLikes int64
	err := db.Exec(func(tx doppel.Tx) error {
		for p := 0; p < pages; p++ {
			want := perPage[p].Load()
			if want == 0 {
				continue
			}
			got, err := tx.GetInt(pageKey(p))
			if err != nil {
				return err
			}
			if got != want {
				return fmt.Errorf("page %d: %d likes recorded, %d submitted", p, got, want)
			}
			checked++
			totalLikes += got
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	s := db.Stats()
	fmt.Printf("%d likes across %d pages verified exactly; %d reads, %d writes\n",
		totalLikes, checked, reads.Load(), writes.Load())
	fmt.Printf("engine: commits=%d aborted=%d stashed=%d phase=%s split-keys=%v\n",
		s.Committed, s.Aborted, s.Stashed, s.Phase, s.SplitKeys)
}
