package doppel

import (
	"errors"

	"doppel/internal/repl"
)

// Sentinel errors. API errors that callers are expected to branch on
// are exported here and matchable with errors.Is; richer messages wrap
// them with context (the option or directory involved).
var (
	// ErrClosed reports an operation on a database (or cluster) after
	// Close. Exec, ExecContext, ExecAsync and Checkpoint return it —
	// directly or wrapped — once shutdown has begun.
	ErrClosed = errors.New("doppel: database closed")

	// ErrRequiresRedoLog reports an option that is meaningless without a
	// durability directory (CheckpointEvery, MaxSegmentBytes, SyncCommit,
	// WALFailStop, CheckpointFrameBuffer) set while Options.RedoLog is
	// empty. Options.Validate wraps it once per violating option.
	ErrRequiresRedoLog = errors.New("doppel: option requires RedoLog")

	// ErrLogExists reports an Open/OpenErr against a durability directory
	// that already holds logged state. Appending a fresh database's
	// records behind an old generation's would make the new writes
	// unrecoverable; use Recover for existing directories.
	ErrLogExists = errors.New("doppel: directory contains an existing log; use Recover")

	// ErrOverloaded reports a request shed because the server's in-flight
	// budget was exhausted. The request was not executed; the connection
	// stays usable and the caller should back off and retry.
	ErrOverloaded = errors.New("doppel: server overloaded")

	// ErrRetriesExhausted reports a request a retrying client gave up on
	// after its reconnect/backoff budget ran out. Wrapped failures carry
	// the last underlying error for inspection with errors.Is/As.
	ErrRetriesExhausted = errors.New("doppel: retries exhausted")
)

// ErrReadOnly reports a write operation inside a Replica view. A replica
// applies only what the primary's log dictates; a local write would
// diverge and be silently overwritten by replay. It aliases the internal
// sentinel so errors.Is matches whichever layer reported it.
var ErrReadOnly = repl.ErrReadOnly
