package doppel_test

// One benchmark per table and figure of the paper's evaluation (§8).
//
// The Sim benchmarks run a representative point of each experiment on
// the multicore simulator and report simulated throughput; run
// `doppel-bench -experiment <name>` for the full sweep behind each
// figure. The Real benchmarks measure the actual engines on this
// machine: per-transaction cost of each concurrency-control scheme. On a
// single-CPU host the real engines cannot show parallel speedup — that
// is exactly what internal/sim substitutes for (see DESIGN.md §2).

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"doppel"
	"doppel/internal/atomiceng"
	"doppel/internal/bench"
	"doppel/internal/core"
	"doppel/internal/engine"
	"doppel/internal/occ"
	"doppel/internal/rng"
	"doppel/internal/sim"
	"doppel/internal/store"
	"doppel/internal/twopl"
	"doppel/internal/workload"
)

// simPoint runs one simulator configuration per benchmark iteration and
// reports simulated transactions/second.
func simPoint(b *testing.B, kind sim.Kind, gen sim.Generator, records int) {
	b.Helper()
	cfg := sim.Config{
		Engine:   kind,
		Cores:    20,
		Records:  records,
		Warmup:   20_000_000,
		Duration: 50_000_000,
		Seed:     42,
	}
	var tput float64
	for i := 0; i < b.N; i++ {
		res := sim.Run(cfg, gen)
		tput = res.Throughput
	}
	b.ReportMetric(tput, "sim-txn/s")
}

// --- Figure 8: INCR1 vs hot fraction (the 100% point, where the paper
// reports its 38x/19x/6.2x headline ratios). ---

func BenchmarkFig8INCR1Hot100Doppel(b *testing.B) {
	simPoint(b, sim.Doppel, sim.IncrGen(100_000, 1.0, 0), 100_000)
}
func BenchmarkFig8INCR1Hot100OCC(b *testing.B) {
	simPoint(b, sim.OCC, sim.IncrGen(100_000, 1.0, 0), 100_000)
}
func BenchmarkFig8INCR1Hot100TwoPL(b *testing.B) {
	simPoint(b, sim.TwoPL, sim.IncrGen(100_000, 1.0, 0), 100_000)
}
func BenchmarkFig8INCR1Hot100Atomic(b *testing.B) {
	simPoint(b, sim.Atomic, sim.IncrGen(100_000, 1.0, 0), 100_000)
}

// --- Figure 9: scaling (the 40-core point). ---

func BenchmarkFig9Scaling40CoresDoppel(b *testing.B) {
	cfg := sim.Config{Engine: sim.Doppel, Cores: 40, Records: 100_000,
		Warmup: 20_000_000, Duration: 50_000_000, Seed: 42}
	var tput float64
	for i := 0; i < b.N; i++ {
		tput = sim.Run(cfg, sim.IncrGen(100_000, 1.0, 0)).Throughput
	}
	b.ReportMetric(tput/40, "sim-txn/s/core")
}

// --- Figure 10: changing hot key (adaptation run). ---

func BenchmarkFig10ChangingHotKey(b *testing.B) {
	cfg := sim.Config{Engine: sim.Doppel, Cores: 20, Records: 10_000,
		Warmup: 0, Duration: 300_000_000, Seed: 42}
	var tput float64
	for i := 0; i < b.N; i++ {
		tput = sim.Run(cfg, sim.IncrGen(10_000, 0.10, 100_000_000)).Throughput
	}
	b.ReportMetric(tput, "sim-txn/s")
}

// --- Figure 11 / Table 2: INCRZ at alpha=1.4. ---

func BenchmarkFig11INCRZAlpha14Doppel(b *testing.B) {
	z := workload.NewZipf(100_000, 1.4)
	simPoint(b, sim.Doppel, sim.IncrZGen(z), 100_000)
}
func BenchmarkFig11INCRZAlpha14OCC(b *testing.B) {
	z := workload.NewZipf(100_000, 1.4)
	simPoint(b, sim.OCC, sim.IncrZGen(z), 100_000)
}
func BenchmarkTable2SplitKeyCount(b *testing.B) {
	z := workload.NewZipf(100_000, 1.4)
	cfg := sim.Config{Engine: sim.Doppel, Cores: 20, Records: 100_000,
		Warmup: 20_000_000, Duration: 50_000_000, Seed: 42}
	var moved float64
	for i := 0; i < b.N; i++ {
		moved = float64(len(sim.Run(cfg, sim.IncrZGen(z)).SplitKeys))
	}
	b.ReportMetric(moved, "keys-moved")
}

// --- Table 1 is analytic; benchmark the Zipf sampler itself. ---

func BenchmarkTable1ZipfSampler(b *testing.B) {
	z := workload.NewZipf(1_000_000, 1.4)
	r := rng.New(12345)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = z.Sample(r)
	}
}

// --- Figure 12 / Table 3: LIKE 50/50 at alpha=1.4. ---

func BenchmarkFig12LIKE50Doppel(b *testing.B) {
	z := workload.NewZipf(100_000, 1.4)
	simPoint(b, sim.Doppel, sim.LikeGen(100_000, 100_000, z, 0.5), 200_000)
}
func BenchmarkFig12LIKE50OCC(b *testing.B) {
	z := workload.NewZipf(100_000, 1.4)
	simPoint(b, sim.OCC, sim.LikeGen(100_000, 100_000, z, 0.5), 200_000)
}
func BenchmarkTable3LIKEReadLatency(b *testing.B) {
	z := workload.NewZipf(100_000, 1.4)
	cfg := sim.Config{Engine: sim.Doppel, Cores: 20, Records: 200_000,
		Warmup: 20_000_000, Duration: 60_000_000, Seed: 42}
	var p99 float64
	for i := 0; i < b.N; i++ {
		res := sim.Run(cfg, sim.LikeGen(100_000, 100_000, z, 0.5))
		p99 = float64(res.ReadLat.Quantile(0.99))
	}
	b.ReportMetric(p99/1000, "sim-p99-read-us")
}

// --- Figures 13/14: phase length sensitivity (the 5 ms point). ---

func BenchmarkFig13PhaseLength5ms(b *testing.B) {
	z := workload.NewZipf(100_000, 1.4)
	cfg := sim.Config{Engine: sim.Doppel, Cores: 20, Records: 200_000,
		Warmup: 20_000_000, Duration: 60_000_000, Seed: 42}
	cfg.Doppel = sim.DefaultParams()
	cfg.Doppel.PhaseLen = 5_000_000
	var mean float64
	for i := 0; i < b.N; i++ {
		mean = sim.Run(cfg, sim.LikeGen(100_000, 100_000, z, 0.5)).ReadLat.Mean()
	}
	b.ReportMetric(mean/1000, "sim-mean-read-us")
}
func BenchmarkFig14PhaseLength5msThroughput(b *testing.B) {
	z := workload.NewZipf(100_000, 1.4)
	cfg := sim.Config{Engine: sim.Doppel, Cores: 20, Records: 200_000,
		Warmup: 20_000_000, Duration: 60_000_000, Seed: 42}
	cfg.Doppel = sim.DefaultParams()
	cfg.Doppel.PhaseLen = 5_000_000
	var tput float64
	for i := 0; i < b.N; i++ {
		tput = sim.Run(cfg, sim.LikeGen(100_000, 100_000, z, 0.5)).Throughput
	}
	b.ReportMetric(tput, "sim-txn/s")
}

// --- Table 4 / Figure 15: RUBiS-C at alpha=1.8. ---

func benchRUBiS(b *testing.B, kind sim.Kind) {
	users, items := 100_000, 33_000
	z := workload.NewZipf(items, 1.8)
	cfg := sim.Config{Engine: kind, Cores: 20,
		Records: sim.RUBiSRecords(users, items),
		Warmup:  20_000_000, Duration: 50_000_000, Seed: 42}
	var tput float64
	for i := 0; i < b.N; i++ {
		tput = sim.Run(cfg, sim.RUBiSGen(users, items, z, 0.5)).Throughput
	}
	b.ReportMetric(tput, "sim-txn/s")
}

func BenchmarkTable4RUBiSCDoppel(b *testing.B) { benchRUBiS(b, sim.Doppel) }
func BenchmarkTable4RUBiSCOCC(b *testing.B)    { benchRUBiS(b, sim.OCC) }
func BenchmarkFig15RUBiSCTwoPL(b *testing.B)   { benchRUBiS(b, sim.TwoPL) }

// --- Real-engine benchmarks: per-transaction cost on this machine. ---

func realEngine(name string, workers int) (engine.Engine, *store.Store) {
	st := store.New()
	st.Preload("hot", store.IntValue(0))
	switch name {
	case "doppel":
		cfg := core.DefaultConfig(workers)
		cfg.PhaseLength = 0 // joined-phase cost without a coordinator
		return core.Open(st, cfg), st
	case "occ":
		return occ.New(st, workers), st
	case "2pl":
		return twopl.New(st, workers), st
	default:
		return atomiceng.New(st, workers), st
	}
}

func benchRealAdd(b *testing.B, name string) {
	e, _ := realEngine(name, 1)
	defer e.Stop()
	fn := func(tx engine.Tx) error { return tx.Add("hot", 1) }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out, err := e.Attempt(0, fn, 0); err != nil || out != engine.Committed {
			b.Fatalf("outcome %v err %v", out, err)
		}
	}
}

func BenchmarkRealAddDoppelJoined(b *testing.B) { benchRealAdd(b, "doppel") }
func BenchmarkRealAddOCC(b *testing.B)          { benchRealAdd(b, "occ") }
func BenchmarkRealAddTwoPL(b *testing.B)        { benchRealAdd(b, "2pl") }
func BenchmarkRealAddAtomic(b *testing.B)       { benchRealAdd(b, "atomic") }

// BenchmarkRealAddDoppelSplit measures the split-phase fast path: the
// hot key is hinted split, so every Add goes to a per-core slice.
func BenchmarkRealAddDoppelSplit(b *testing.B) {
	st := store.New()
	st.Preload("hot", store.IntValue(0))
	cfg := core.DefaultConfig(1)
	cfg.PhaseLength = 0
	db := core.Open(st, cfg)
	defer db.Close()
	db.SplitHint("hot", store.OpAdd)
	if !db.RequestSplitPhase() {
		b.Fatal("split refused")
	}
	db.Poll(0)
	fn := func(tx engine.Tx) error { return tx.Add("hot", 1) }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out, err := db.Attempt(0, fn, 0); err != nil || out != engine.Committed {
			b.Fatalf("outcome %v err %v", out, err)
		}
	}
}

// BenchmarkRealLoadDoppel runs the full harness loop (generation,
// retries, phase participation) briefly per iteration.
func BenchmarkRealLoadDoppel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		st := store.New()
		cfg := core.DefaultConfig(2)
		cfg.PhaseLength = 5 * time.Millisecond
		db := core.Open(st, cfg)
		ks := workload.NewKeySpace('k', 1000)
		gen := &workload.Incr1{Keys: ks, HotKey: 0, HotFrac: 0.5}
		res := bench.RunLoad(db, gen, bench.Options{Duration: 50 * time.Millisecond, Seed: 1})
		db.Close()
		b.ReportMetric(res.Throughput, "real-txn/s")
	}
}

// BenchmarkCheckpoint measures one full checkpoint (quiesced cut +
// snapshot write + manifest install + segment GC) of a 10k-record store
// under a running database.
func BenchmarkCheckpoint(b *testing.B) {
	dir := b.TempDir()
	db, err := doppel.OpenErr(doppel.Options{Workers: 2, RedoLog: dir})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	const keys = 10_000
	for i := 0; i < keys; i++ {
		key := "k" + string(rune('a'+i%26)) + fmt.Sprint(i)
		if err := db.Exec(func(tx doppel.Tx) error { return tx.PutInt(key, int64(i)) }); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := db.Checkpoint(); err != nil {
			b.Fatal(err)
		}
	}
}

// benchCheckpointBarrier populates a store of the given size and
// reports the worker-visible pause of a checkpoint cut alongside the
// concurrent walk time. Two acceptance properties of the incremental
// streaming cut: barrier-ns stays flat as keys grows (the pause is
// O(1)) while only walk-ns — which runs with workers live — scales
// with the store; and allocated bytes/op stay roughly flat from 1k to
// 100k records, because the streaming walk encodes and writes entries
// through reused buffers instead of materializing the store
// (ReportAllocs makes this visible as B/op).
func benchCheckpointBarrier(b *testing.B, keys int) {
	b.Helper()
	b.ReportAllocs()
	dir := b.TempDir()
	db, err := doppel.OpenErr(doppel.Options{Workers: 2, RedoLog: dir})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	var wg sync.WaitGroup
	wg.Add(keys)
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("k%d", i)
		n := int64(i)
		db.ExecAsync(func(tx doppel.Tx) error { return tx.PutInt(key, n) }, func(err error) {
			if err != nil {
				b.Error(err)
			}
			wg.Done()
		})
	}
	wg.Wait()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := db.Checkpoint(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	cs := db.CheckpointStats()
	b.ReportMetric(float64(cs.LastBarrier.Nanoseconds()), "barrier-ns")
	b.ReportMetric(float64(cs.LastWalk.Nanoseconds()), "walk-ns")
	b.ReportMetric(float64(cs.LastEntries), "entries")
}

func BenchmarkCheckpointBarrier1k(b *testing.B)   { benchCheckpointBarrier(b, 1_000) }
func BenchmarkCheckpointBarrier10k(b *testing.B)  { benchCheckpointBarrier(b, 10_000) }
func BenchmarkCheckpointBarrier100k(b *testing.B) { benchCheckpointBarrier(b, 100_000) }

// benchRecoverParallel measures Recover over a size-rotated,
// multi-segment log (with a mid-run checkpoint, so a snapshot plus a
// segment tail both exist) at a given parallelism. Compare par=1 with
// par=N for the parallel-replay speedup (visible on multi-core hosts)
// and the overlapped variant for the snapshot/segment overlap win.
func benchRecoverParallel(b *testing.B, parallelism int, overlap bool) {
	b.Helper()
	dir := b.TempDir()
	db, err := doppel.OpenErr(doppel.Options{Workers: 2, RedoLog: dir, MaxSegmentBytes: 64 << 10})
	if err != nil {
		b.Fatal(err)
	}
	const txns = 20_000
	load := func(n int) {
		var wg sync.WaitGroup
		wg.Add(n)
		for i := 0; i < n; i++ {
			key := fmt.Sprintf("k%d", i%500)
			db.ExecAsync(func(tx doppel.Tx) error { return tx.Add(key, 1) }, func(err error) {
				if err != nil {
					b.Error(err)
				}
				wg.Done()
			})
		}
		wg.Wait()
	}
	load(txns / 2)
	if err := db.Checkpoint(); err != nil {
		b.Fatal(err)
	}
	load(txns / 2)
	db.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec, err := doppel.Recover(dir, doppel.Options{
			Workers: 2, RecoveryParallelism: parallelism, RecoveryOverlap: overlap,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(rec.LastRecovery().SegmentsReplayed), "segments")
			b.ReportMetric(float64(rec.LastRecovery().SnapshotEntries), "snapshot-entries")
		}
		b.StopTimer()
		rec.Close()
		b.StartTimer()
	}
}

func BenchmarkRecoverSegmentsSequential(b *testing.B) { benchRecoverParallel(b, 1, false) }
func BenchmarkRecoverSegmentsParallel(b *testing.B) {
	benchRecoverParallel(b, runtime.GOMAXPROCS(0), false)
}
func BenchmarkRecoverSegmentsOverlapped(b *testing.B) {
	benchRecoverParallel(b, runtime.GOMAXPROCS(0), true)
}

// BenchmarkRecoverFullReplay measures Recover with no checkpoint: the
// whole log replays. Compare with BenchmarkRecoverAfterCheckpoint; the
// doppel-bench -recovery mode sweeps this at larger scales.
func BenchmarkRecoverFullReplay(b *testing.B) {
	benchRecover(b, false)
}

// BenchmarkRecoverAfterCheckpoint measures bounded recovery: snapshot
// load plus replay of only the post-checkpoint tail.
func BenchmarkRecoverAfterCheckpoint(b *testing.B) {
	benchRecover(b, true)
}

func benchRecover(b *testing.B, checkpoint bool) {
	b.Helper()
	dir := b.TempDir()
	db, err := doppel.OpenErr(doppel.Options{Workers: 2, RedoLog: dir})
	if err != nil {
		b.Fatal(err)
	}
	const txns = 10_000
	for i := 0; i < txns; i++ {
		key := fmt.Sprintf("k%d", i%500)
		if err := db.Exec(func(tx doppel.Tx) error { return tx.Add(key, 1) }); err != nil {
			b.Fatal(err)
		}
	}
	if checkpoint {
		if err := db.Checkpoint(); err != nil {
			b.Fatal(err)
		}
	}
	db.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec, err := doppel.Recover(dir, doppel.Options{Workers: 2})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(rec.LastRecovery().RecordsReplayed), "records-replayed")
		}
		b.StopTimer()
		rec.Close()
		b.StartTimer()
	}
}

// BenchmarkPublicExec measures the service-mode Exec path end to end.
func BenchmarkPublicExec(b *testing.B) {
	db := doppel.Open(doppel.Options{Workers: 2})
	defer db.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := db.Exec(func(tx doppel.Tx) error { return tx.Add("k", 1) }); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPublicExecRedo is BenchmarkPublicExec with asynchronous redo
// logging enabled: the gap between the two is the full logging overhead
// on the service path (encode + LSN append; commits do not wait).
func BenchmarkPublicExecRedo(b *testing.B) {
	db, err := doppel.OpenErr(doppel.Options{Workers: 2, RedoLog: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := db.Exec(func(tx doppel.Tx) error { return tx.Add("k", 1) }); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPublicExecSyncCommit measures the durability-synchronous
// mode: every acknowledgement waits for its group commit's fsync. A
// single blocking caller pays one fsync per op — the worst case; the
// watermark design exists so concurrent callers share each fsync.
func BenchmarkPublicExecSyncCommit(b *testing.B) {
	db, err := doppel.OpenErr(doppel.Options{Workers: 2, RedoLog: b.TempDir(), SyncCommit: true})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := db.Exec(func(tx doppel.Tx) error { return tx.Add("k", 1) }); err != nil {
			b.Fatal(err)
		}
	}
}
