package doppel

import (
	"fmt"
	"path/filepath"
	"testing"
	"time"
)

// TestRedoLogRecovery writes through a logged database (including split
// phases so reconciliation merges get logged), closes it, and recovers a
// fresh database from the log.
func TestRedoLogRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "doppel.wal")
	opts := Options{Workers: 2, PhaseLength: 2 * time.Millisecond, RedoLog: path}
	db, err := OpenErr(opts)
	if err != nil {
		t.Fatal(err)
	}
	db.SplitHint("counter", OpAdd)
	for i := 0; i < 200; i++ {
		if err := db.Exec(func(tx Tx) error { return tx.Add("counter", 1) }); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Exec(func(tx Tx) error {
		if err := tx.PutBytes("name", []byte("doppel")); err != nil {
			return err
		}
		if err := tx.Max("best", 77); err != nil {
			return err
		}
		return tx.TopKInsert("board", 5, []byte("entry"), 3)
	}); err != nil {
		t.Fatal(err)
	}
	// Give stashes/reconciliation a chance to settle, then close (which
	// forces the final reconciliation and flushes the log).
	if err := db.ExecWait(func(tx Tx) error { return nil }); err != nil {
		t.Fatal(err)
	}
	db.Close()

	rec, err := Recover(path, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	err = rec.Exec(func(tx Tx) error {
		n, err := tx.GetInt("counter")
		if err != nil {
			return err
		}
		if n != 200 {
			return fmt.Errorf("counter %d after recovery", n)
		}
		b, err := tx.GetBytes("name")
		if err != nil {
			return err
		}
		if string(b) != "doppel" {
			return fmt.Errorf("name %q", b)
		}
		best, err := tx.GetInt("best")
		if err != nil {
			return err
		}
		if best != 77 {
			return fmt.Errorf("best %d", best)
		}
		es, err := tx.GetTopK("board")
		if err != nil {
			return err
		}
		if len(es) != 1 || string(es[0].Data) != "entry" {
			return fmt.Errorf("board %v", es)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecoverMissingLog(t *testing.T) {
	if _, err := Recover(filepath.Join(t.TempDir(), "nope.wal"), Options{}); err == nil {
		t.Fatal("expected error")
	}
}

func TestOpenErrBadLogPath(t *testing.T) {
	if _, err := OpenErr(Options{RedoLog: filepath.Join(t.TempDir(), "no", "such", "dir", "x.wal")}); err == nil {
		t.Fatal("expected error")
	}
}
