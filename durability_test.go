package doppel

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"doppel/internal/core"
	"doppel/internal/store"
	"doppel/internal/wal"
)

// TestRedoLogRecovery writes through a logged database (including split
// phases so reconciliation merges get logged), closes it, and recovers a
// fresh database from the log directory.
func TestRedoLogRecovery(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Workers: 2, PhaseLength: 2 * time.Millisecond, RedoLog: dir}
	db, err := OpenErr(opts)
	if err != nil {
		t.Fatal(err)
	}
	db.SplitHint("counter", OpAdd)
	for i := 0; i < 200; i++ {
		if err := db.Exec(func(tx Tx) error { return tx.Add("counter", 1) }); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Exec(func(tx Tx) error {
		if err := tx.PutBytes("name", []byte("doppel")); err != nil {
			return err
		}
		if err := tx.Max("best", 77); err != nil {
			return err
		}
		return tx.TopKInsert("board", 5, []byte("entry"), 3)
	}); err != nil {
		t.Fatal(err)
	}
	// Give stashes/reconciliation a chance to settle, then close (which
	// forces the final reconciliation and flushes the log).
	if err := db.ExecWait(func(tx Tx) error { return nil }); err != nil {
		t.Fatal(err)
	}
	db.Close()

	rec, err := Recover(dir, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	err = rec.Exec(func(tx Tx) error {
		n, err := tx.GetInt("counter")
		if err != nil {
			return err
		}
		if n != 200 {
			return fmt.Errorf("counter %d after recovery", n)
		}
		b, err := tx.GetBytes("name")
		if err != nil {
			return err
		}
		if string(b) != "doppel" {
			return fmt.Errorf("name %q", b)
		}
		best, err := tx.GetInt("best")
		if err != nil {
			return err
		}
		if best != 77 {
			return fmt.Errorf("best %d", best)
		}
		es, err := tx.GetTopK("board")
		if err != nil {
			return err
		}
		if len(es) != 1 || string(es[0].Data) != "entry" {
			return fmt.Errorf("board %v", es)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRecoverThenCrashAgain is the regression test for the seed's
// truncate-on-open bug: wal.Open used os.Create, so a database that
// recovered and then crashed (or merely closed) before writing anything
// new silently lost the entire recovered state. Recovery must survive
// any number of crash → recover cycles, with and without new writes.
func TestRecoverThenCrashAgain(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenErr(Options{Workers: 2, RedoLog: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Exec(func(tx Tx) error { return tx.PutInt("gen", 1) }); err != nil {
		t.Fatal(err)
	}
	db.Close() // crash #1 (Close flushes; the file is now the crash image)

	wantGen := func(db *DB, want int64) {
		t.Helper()
		err := db.Exec(func(tx Tx) error {
			n, err := tx.GetInt("gen")
			if err != nil {
				return err
			}
			if n != want {
				return fmt.Errorf("gen = %d, want %d", n, want)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}

	// Recover and crash again immediately, writing nothing. The seed bug
	// truncated the log right here.
	db2, err := Recover(dir, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	wantGen(db2, 1)
	db2.Close() // crash #2

	// Recover again: generation 1 must still be there; add generation 2.
	db3, err := Recover(dir, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	wantGen(db3, 1)
	if err := db3.Exec(func(tx Tx) error { return tx.PutInt("gen", 2) }); err != nil {
		t.Fatal(err)
	}
	db3.Close() // crash #3

	// Both generations' effects must survive.
	db4, err := Recover(dir, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	wantGen(db4, 2)
	db4.Close()
}

// TestCheckpointBoundsReplay is the acceptance test for bounded
// recovery: after a checkpoint, recovery loads the snapshot and replays
// only post-snapshot segments, verified via segment accounting.
func TestCheckpointBoundsReplay(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenErr(Options{Workers: 2, RedoLog: dir})
	if err != nil {
		t.Fatal(err)
	}
	const preCheckpoint = 500
	for i := 0; i < preCheckpoint; i++ {
		key := fmt.Sprintf("k%d", i%50)
		if err := db.Exec(func(tx Tx) error { return tx.Add(key, 1) }); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	cs := db.CheckpointStats()
	if cs.Checkpoints != 1 || cs.LastEntries != 50 {
		t.Fatalf("checkpoint stats: %+v", cs)
	}
	// A handful of post-checkpoint transactions: this is all recovery
	// should have to replay.
	const postCheckpoint = 7
	for i := 0; i < postCheckpoint; i++ {
		if err := db.Exec(func(tx Tx) error { return tx.PutInt(fmt.Sprintf("post%d", i), int64(i)) }); err != nil {
			t.Fatal(err)
		}
	}
	db.Close()

	rec, err := Recover(dir, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	rs := rec.LastRecovery()
	if rs.SnapshotFile == "" || rs.SnapshotEntries != 50 {
		t.Fatalf("recovery did not use the snapshot: %+v", rs)
	}
	if rs.SegmentsReplayed != 1 {
		t.Fatalf("replayed %d segments, want only the 1 post-snapshot segment (%+v)", rs.SegmentsReplayed, rs)
	}
	if rs.RecordsReplayed >= preCheckpoint {
		t.Fatalf("replay not bounded: %d records for %d post-checkpoint writes (%+v)",
			rs.RecordsReplayed, postCheckpoint, rs)
	}
	// And the state is still complete.
	err = rec.Exec(func(tx Tx) error {
		for i := 0; i < 50; i++ {
			n, err := tx.GetInt(fmt.Sprintf("k%d", i))
			if err != nil {
				return err
			}
			if n != preCheckpoint/50 {
				return fmt.Errorf("k%d = %d, want %d", i, n, preCheckpoint/50)
			}
		}
		for i := 0; i < postCheckpoint; i++ {
			n, err := tx.GetInt(fmt.Sprintf("post%d", i))
			if err != nil {
				return err
			}
			if n != int64(i) {
				return fmt.Errorf("post%d = %d", i, n)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestBackgroundCheckpointing exercises Options.CheckpointEvery under
// live traffic: checkpoints must happen, and recovery afterwards must
// see every committed transaction.
func TestBackgroundCheckpointing(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenErr(Options{
		Workers:         2,
		PhaseLength:     2 * time.Millisecond,
		RedoLog:         dir,
		CheckpointEvery: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	db.SplitHint("hot", OpAdd)
	const txns = 400
	for i := 0; i < txns; i++ {
		if err := db.Exec(func(tx Tx) error { return tx.Add("hot", 1) }); err != nil {
			t.Fatal(err)
		}
	}
	// Let at least one checkpoint land while traffic has stopped too.
	deadline := time.Now().Add(5 * time.Second)
	for db.CheckpointStats().Checkpoints == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	cs := db.CheckpointStats()
	db.Close()
	if cs.Checkpoints == 0 {
		t.Fatal("no background checkpoint completed")
	}

	rec, err := Recover(dir, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	err = rec.Exec(func(tx Tx) error {
		n, err := tx.GetInt("hot")
		if err != nil {
			return err
		}
		if n != txns {
			return fmt.Errorf("hot = %d, want %d", n, txns)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// storeState flattens a store into key → canonical value encoding for
// deep comparison.
func storeState(st *store.Store) map[string]string {
	out := map[string]string{}
	for _, e := range st.SnapshotEntries() {
		out[e.Key] = string(store.EncodeValue(e.Value))
	}
	return out
}

// TestRecoverPropertyMixedWorkload is the randomized property test:
// after a mixed workload of every splittable operation plus Put, run by
// concurrent workers with checkpoints interleaved, the recovered store
// must deep-equal the store at Close.
func TestRecoverPropertyMixedWorkload(t *testing.T) {
	seeds := []int64{1, 2, 3}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			dir := t.TempDir()
			db, err := OpenErr(Options{
				Workers:     2,
				PhaseLength: 2 * time.Millisecond,
				RedoLog:     dir,
			})
			if err != nil {
				t.Fatal(err)
			}
			db.SplitHint("add:hot", OpAdd)

			const workers = 4
			const txnsPerWorker = 150
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					r := rand.New(rand.NewSource(seed*1000 + int64(w)))
					for i := 0; i < txnsPerWorker; i++ {
						n := int64(r.Intn(100) + 1)
						key := r.Intn(10)
						var fn TxFunc
						switch r.Intn(7) {
						case 0:
							k := fmt.Sprintf("add:%d", key)
							if r.Intn(4) == 0 {
								k = "add:hot"
							}
							fn = func(tx Tx) error { return tx.Add(k, n) }
						case 1:
							fn = func(tx Tx) error { return tx.Max(fmt.Sprintf("max:%d", key), n) }
						case 2:
							fn = func(tx Tx) error { return tx.Min(fmt.Sprintf("min:%d", key), -n) }
						case 3:
							fn = func(tx Tx) error { return tx.Mult(fmt.Sprintf("mult:%d", key), 1+n%3) }
						case 4:
							fn = func(tx Tx) error {
								return tx.OPut(fmt.Sprintf("oput:%d", key), Order{A: n, B: int64(i)},
									[]byte(fmt.Sprintf("o%d", n)))
							}
						case 5:
							fn = func(tx Tx) error {
								return tx.TopKInsert(fmt.Sprintf("topk:%d", key%3), n,
									[]byte(fmt.Sprintf("e%d", n)), 5)
							}
						default:
							fn = func(tx Tx) error {
								return tx.PutBytes(fmt.Sprintf("put:%d", key), []byte(fmt.Sprintf("v%d", n)))
							}
						}
						if err := db.Exec(fn); err != nil {
							t.Error(err)
							return
						}
						// A mid-workload checkpoint from one goroutine
						// exercises cut-under-traffic.
						if w == 0 && i == txnsPerWorker/2 {
							if err := db.Checkpoint(); err != nil {
								t.Error(err)
								return
							}
						}
					}
				}(w)
			}
			wg.Wait()
			db.Close() // final reconciliation + flush
			want := storeState(db.Internal().Store())

			rec, err := Recover(dir, Options{Workers: 2})
			if err != nil {
				t.Fatal(err)
			}
			defer rec.Close()
			got := storeState(rec.Internal().Store())
			if len(got) != len(want) {
				t.Fatalf("recovered %d keys, want %d", len(got), len(want))
			}
			for k, v := range want {
				if got[k] != v {
					t.Fatalf("key %q: recovered %x, want %x", k, got[k], v)
				}
			}
		})
	}
}

// TestParallelRecoveryMatchesSequential: with size-based rotation
// producing a multi-segment log, recovery at any parallelism must
// rebuild exactly the state sequential recovery does. This is the
// end-to-end check that the highest-TID-wins merge is order-independent.
func TestParallelRecoveryMatchesSequential(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenErr(Options{
		Workers:         2,
		PhaseLength:     2 * time.Millisecond,
		RedoLog:         dir,
		MaxSegmentBytes: 2 << 10, // tiny segments: force many rotations
	})
	if err != nil {
		t.Fatal(err)
	}
	db.SplitHint("hot", OpAdd)
	const txns = 2000
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < txns/4; i++ {
				key := fmt.Sprintf("k%d", (i*5+w)%97)
				if i%10 == 0 {
					key = "hot"
				}
				if err := db.Exec(func(tx Tx) error { return tx.Add(key, 1) }); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	db.Close()
	want := storeState(db.Internal().Store())

	seq, err := Recover(dir, Options{Workers: 2, RecoveryParallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	rs := seq.LastRecovery()
	seq.Close()
	if rs.SegmentsReplayed < 3 {
		t.Fatalf("log not multi-segment (%d segments): size rotation not exercised", rs.SegmentsReplayed)
	}
	if rs.Parallelism != 1 {
		t.Fatalf("sequential recovery ran at parallelism %d", rs.Parallelism)
	}
	gotSeq := storeState(seq.Internal().Store())

	par, err := Recover(dir, Options{Workers: 2, RecoveryParallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	prs := par.LastRecovery()
	par.Close()
	if prs.Parallelism != 8 {
		t.Fatalf("parallel recovery ran at parallelism %d", prs.Parallelism)
	}
	gotPar := storeState(par.Internal().Store())

	for name, got := range map[string]map[string]string{"sequential": gotSeq, "parallel": gotPar} {
		if len(got) != len(want) {
			t.Fatalf("%s recovery: %d keys, want %d", name, len(got), len(want))
		}
		for k, v := range want {
			if got[k] != v {
				t.Fatalf("%s recovery: key %q = %x, want %x", name, k, got[k], v)
			}
		}
	}
}

// TestSizeRotationWithCheckpointGC: many small sealed segments
// accumulate between checkpoints and a checkpoint must garbage-collect
// all of them, leaving a bounded directory.
func TestSizeRotationWithCheckpointGC(t *testing.T) {
	dir := t.TempDir()
	// Size rotation is checked once per group-commit batch, so the test
	// must keep batches small: SyncCommit makes every Exec wait out its
	// batch (otherwise a fast loop can land all 500 records in one batch
	// and rotate once, a scheduling accident). Auto-split off for the
	// same reason: split writes log only as merged reconciliation
	// records, too few bytes to rotate.
	db, err := OpenErr(Options{
		Workers:         2,
		RedoLog:         dir,
		MaxSegmentBytes: 1 << 10,
		SyncCommit:      true,
		Engine:          core.Config{DisableAutoSplit: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("k%d", i%20)
		if err := db.Exec(func(tx Tx) error { return tx.Add(key, 1) }); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	cs := db.CheckpointStats()
	db.Close()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	segments := 0
	for _, ent := range ents {
		if filepath.Ext(ent.Name()) == ".log" {
			segments++
		}
	}
	// Everything before the checkpoint's rotation point is collected;
	// only the post-checkpoint tail (and anything sealed during the
	// concurrent walk) remains.
	if segments > 3 {
		t.Fatalf("%d segments survived the checkpoint; GC did not cope with size rotation", segments)
	}
	if cs.LastSeq < 5 {
		t.Fatalf("checkpoint rotated to segment %d; size rotation never triggered", cs.LastSeq)
	}
}

// TestRecoveredTIDsStayMonotonic: writes after recovery must generate
// per-key TIDs above the recovered ones, or a later recovery would
// drop them as stale.
func TestRecoveredTIDsStayMonotonic(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenErr(Options{Workers: 2, RedoLog: dir})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := db.Exec(func(tx Tx) error { return tx.PutInt("k", int64(i)) }); err != nil {
			t.Fatal(err)
		}
	}
	db.Close()

	db2, err := Recover(dir, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := db2.Exec(func(tx Tx) error { return tx.PutInt("k", 999) }); err != nil {
		t.Fatal(err)
	}
	db2.Close()

	db3, err := Recover(dir, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer db3.Close()
	err = db3.Exec(func(tx Tx) error {
		n, err := tx.GetInt("k")
		if err != nil {
			return err
		}
		if n != 999 {
			return fmt.Errorf("k = %d: post-recovery write lost to a stale TID", n)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestOverlappedRecoveryMatchesSequential: overlapping segment replay
// with the snapshot load must rebuild exactly the state sequential
// recovery does — the end-to-end check that the per-key TID filter
// makes the snapshot/segment interleaving order-independent.
func TestOverlappedRecoveryMatchesSequential(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenErr(Options{
		Workers:         2,
		PhaseLength:     2 * time.Millisecond,
		RedoLog:         dir,
		MaxSegmentBytes: 2 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	db.SplitHint("hot", OpAdd)
	const txns = 1500
	run := func(base int) {
		for i := 0; i < txns/2; i++ {
			key := fmt.Sprintf("k%d", (i+base)%97)
			if i%10 == 0 {
				key = "hot"
			}
			if err := db.Exec(func(tx Tx) error { return tx.Add(key, 1) }); err != nil {
				t.Fatal(err)
			}
		}
	}
	run(0)
	// A mid-run checkpoint gives recovery both a snapshot and a segment
	// tail, so the overlap actually has two streams to interleave.
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	run(31)
	db.Close()
	want := storeState(db.Internal().Store())

	seq, err := Recover(dir, Options{Workers: 2, RecoveryParallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	gotSeq := storeState(seq.Internal().Store())
	srs := seq.LastRecovery()
	seq.Close()
	if srs.Overlapped {
		t.Fatal("sequential recovery reported overlap")
	}
	if srs.SnapshotEntries == 0 || srs.RecordsReplayed == 0 {
		t.Fatalf("scenario too weak — snapshot %d entries, %d records replayed", srs.SnapshotEntries, srs.RecordsReplayed)
	}

	over, err := Recover(dir, Options{Workers: 2, RecoveryParallelism: 4, RecoveryOverlap: true})
	if err != nil {
		t.Fatal(err)
	}
	gotOver := storeState(over.Internal().Store())
	ors := over.LastRecovery()
	over.Close()
	if !ors.Overlapped {
		t.Fatal("overlapped recovery did not report overlap")
	}
	if ors.SnapshotEntries != srs.SnapshotEntries || ors.RecordsReplayed != srs.RecordsReplayed {
		t.Fatalf("overlapped recovery accounting diverged: %+v vs %+v", ors, srs)
	}

	for name, got := range map[string]map[string]string{"sequential": gotSeq, "overlapped": gotOver} {
		if len(got) != len(want) {
			t.Fatalf("%s recovery: %d keys, want %d", name, len(got), len(want))
		}
		for k, v := range want {
			if got[k] != v {
				t.Fatalf("%s recovery: key %q = %x, want %x", name, k, got[k], v)
			}
		}
	}
}

// TestWALFailStop kills the redo log mid-run (the next segment's path is
// occupied by a directory, so rotation's open fails terminally) and
// checks the fail-stop contract: the failure surfaces through WALErr and
// Stats.RedoLogError, and with Options.WALFailStop new transactions are
// refused instead of being acknowledged without durability.
func TestWALFailStop(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenErr(Options{Workers: 2, RedoLog: dir, WALFailStop: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.Exec(func(tx Tx) error { return tx.PutInt("k", 1) }); err != nil {
		t.Fatal(err)
	}
	if err := db.WALErr(); err != nil {
		t.Fatalf("healthy logger reports %v", err)
	}

	// Kill the log: the checkpoint rotation will try to open segment 2,
	// which is now a directory.
	if err := os.Mkdir(filepath.Join(dir, "wal-00000002.log"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err == nil {
		t.Fatal("checkpoint succeeded over a dead segment path")
	}
	if err := db.WALErr(); err == nil {
		t.Fatal("WALErr nil after terminal logger failure")
	}
	if db.Stats().RedoLogError == "" {
		t.Fatal("Stats.RedoLogError empty after terminal logger failure")
	}
	// Fail-stop: new transactions must be refused, not silently
	// committed in memory only.
	if err := db.Exec(func(tx Tx) error { return tx.PutInt("k", 2) }); err == nil {
		t.Fatal("Exec acknowledged a commit after the redo log died")
	}
}

// TestWALFailStopRequiresRedoLog: the option is meaningless without a
// log and must be rejected rather than silently ignored.
func TestWALFailStopRequiresRedoLog(t *testing.T) {
	if _, err := OpenErr(Options{WALFailStop: true}); err == nil {
		t.Fatal("expected error: WALFailStop without RedoLog")
	}
}

// TestSyncCommitAckAfterFsync: with Options.SyncCommit, an Exec
// acknowledgement means the redo record has already cleared the group
// commit (write + fsync) — checked by replaying the live segment file
// underneath the running database after every commit and requiring the
// just-acknowledged key to be present. (That a synced record then
// survives power loss at any cut point is the WAL crash-injection
// suite's business; this test pins the ordering through the public
// API.)
func TestSyncCommitAckAfterFsync(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenErr(Options{Workers: 2, RedoLog: dir, SyncCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	const n = 25
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("k%d", i)
		val := int64(i)
		if err := db.Exec(func(tx Tx) error { return tx.PutInt(key, val) }); err != nil {
			t.Fatal(err)
		}
		recs, err := wal.ReplayFile(filepath.Join(dir, "wal-00000001.log"))
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, r := range recs {
			for _, op := range r.Ops {
				if op.Key == key {
					found = true
				}
			}
		}
		if !found {
			t.Fatalf("Exec acknowledged %q under SyncCommit but its redo record is not in the log", key)
		}
	}
}

func TestSyncCommitRequiresRedoLog(t *testing.T) {
	if _, err := OpenErr(Options{SyncCommit: true}); err == nil {
		t.Fatal("expected error: SyncCommit without RedoLog")
	}
}

// TestSyncCommitCoversSliceWrites: split-phase slice writes are logged
// only when reconciliation merges them, so a SyncCommit acknowledgement
// of an Add on a split key must wait out the merge. Verified by
// replaying the live log after every acked increment (highest TID wins
// per key) and requiring the full count to be there already — whether
// the add took the joined OCC path or a per-core slice.
func TestSyncCommitCoversSliceWrites(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenErr(Options{
		Workers: 2, PhaseLength: 2 * time.Millisecond,
		RedoLog: dir, SyncCommit: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	db.SplitHint("counter", OpAdd)
	const n = 40
	for i := 1; i <= n; i++ {
		if err := db.Exec(func(tx Tx) error { return tx.Add("counter", 1) }); err != nil {
			t.Fatal(err)
		}
		if got := replayIntKey(t, dir, "counter"); got != int64(i) {
			t.Fatalf("after %d acked adds the log replays counter=%d", i, got)
		}
	}
	if db.Stats().SplitKeys == nil && db.Stats().PhaseChanges == 0 {
		t.Log("warning: no split phases occurred; test exercised only the joined path")
	}
}

// replayIntKey replays the live log directory and returns key's value
// under the highest-TID-wins rule recovery uses.
func replayIntKey(t *testing.T, dir, key string) int64 {
	t.Helper()
	_, recs, _, err := wal.ReplayDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var bestTID uint64
	var val int64
	for _, r := range recs {
		for _, op := range r.Ops {
			if op.Key != key || r.TID < bestTID {
				continue
			}
			bestTID = r.TID
			v, err := store.DecodeValue(op.Value)
			if err != nil {
				t.Fatal(err)
			}
			if val, err = v.AsInt(); err != nil {
				t.Fatal(err)
			}
		}
	}
	return val
}

// TestSnapshotCanonical: two checkpoints of identical state produce
// byte-identical snapshots (entries are sorted), which keeps snapshots
// diffable and the fuzz round-trip meaningful.
func TestSnapshotCanonical(t *testing.T) {
	st := store.New()
	st.PreloadTID("b", store.IntValue(2), 2)
	st.PreloadTID("a", store.IntValue(1), 1)
	var b1, b2 bytes.Buffer
	if err := store.WriteSnapshot(&b1, st.SnapshotEntries()); err != nil {
		t.Fatal(err)
	}
	if err := store.WriteSnapshot(&b2, st.SnapshotEntries()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("snapshots of identical state differ")
	}
}

func TestRecoverMissingDir(t *testing.T) {
	if _, err := Recover(filepath.Join(t.TempDir(), "nope"), Options{}); err == nil {
		t.Fatal("expected error")
	}
}

func TestOpenErrBadLogPath(t *testing.T) {
	// A path that exists as a regular file cannot become a log directory.
	f := filepath.Join(t.TempDir(), "file")
	if err := os.WriteFile(f, []byte("not a dir"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenErr(Options{RedoLog: f}); err == nil {
		t.Fatal("expected error for file in place of log directory")
	}
}

func TestCheckpointRequiresRedoLog(t *testing.T) {
	if _, err := OpenErr(Options{CheckpointEvery: time.Second}); err == nil {
		t.Fatal("expected error: CheckpointEvery without RedoLog")
	}
	db := Open(Options{})
	defer db.Close()
	if err := db.Checkpoint(); err == nil {
		t.Fatal("expected error: Checkpoint without RedoLog")
	}
}

// TestOpenErrRefusesExistingState: opening (rather than recovering) a
// directory that already holds logged state must fail — a fresh store's
// low-TID records appended behind the old generation's would be
// silently dropped by the next recovery.
func TestOpenErrRefusesExistingState(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenErr(Options{Workers: 2, RedoLog: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Exec(func(tx Tx) error { return tx.PutInt("k", 1) }); err != nil {
		t.Fatal(err)
	}
	db.Close()
	if _, err := OpenErr(Options{Workers: 2, RedoLog: dir}); err == nil {
		t.Fatal("OpenErr accepted a directory with existing state")
	}
	// Recover is the sanctioned path and must still work.
	rec, err := Recover(dir, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	rec.Close()
}
