package doppel

import (
	"errors"
	"fmt"
	"time"

	"doppel/internal/core"
)

// Options configures Open.
type Options struct {
	// Workers is the number of worker goroutines (the paper's
	// one-worker-per-core model). 0 means 4.
	Workers int
	// PhaseLength is the coordinator's phase-change interval; the paper
	// uses 20ms. 0 means 20ms.
	PhaseLength time.Duration
	// Engine overrides internal classifier knobs; leave zero-valued
	// unless benchmarking.
	Engine core.Config
	// RedoLog, when non-empty, names a durability directory and enables
	// asynchronous group-commit redo logging into it (the durability
	// design the paper cites as future work). The directory holds
	// numbered WAL segments, snapshot files and a MANIFEST; use Recover
	// to rebuild a database from it. Reopening an existing directory
	// appends — it never truncates logged data. The directory is also
	// the replication feed: OpenFollower tails it to serve read
	// replicas, with no further primary-side configuration.
	//
	// For OpenCluster the value is a per-shard template that must
	// contain a %d verb (e.g. "data/shard-%d"): each shard logs and
	// checkpoints into its own directory.
	RedoLog string
	// CheckpointEvery, when non-zero, checkpoints the database at this
	// interval: a consistent snapshot is captured incrementally starting
	// at a quiesced phase boundary (the pause is O(1); the store walk
	// runs concurrently with traffic, copy-on-write), the WAL rotates to
	// a fresh segment, and segments covered by the snapshot are deleted.
	// This bounds both recovery time and log disk usage. Requires
	// RedoLog. Checkpoint() forces one manually.
	CheckpointEvery time.Duration
	// MaxSegmentBytes, when non-zero, seals the active WAL segment and
	// opens the next one as soon as it exceeds this many bytes,
	// independent of checkpoints. Bounded segments keep any single log
	// file small between checkpoints and give parallel recovery units of
	// work. Requires RedoLog.
	MaxSegmentBytes int64
	// RecoveryParallelism caps the goroutines Recover uses to decode the
	// snapshot and replay WAL segments; 0 means GOMAXPROCS. 1 forces
	// sequential recovery.
	RecoveryParallelism int
	// RecoveryOverlap starts WAL segment replay concurrently with the
	// snapshot load instead of after it, cutting total recovery time to
	// roughly max(snapshot, segments) instead of their sum. Snapshot
	// entries then install through the same per-key highest-TID-wins
	// filter replay uses, so the interleaving cannot change the result.
	RecoveryOverlap bool
	// CheckpointFrameBuffer bounds how many snapshot entries may sit
	// between the checkpoint's store walker and its file writer. The
	// streaming walk never materializes the store, so checkpoint memory
	// is O(frame buffer), not O(records); 0 means a sensible default
	// (1024). Requires RedoLog.
	CheckpointFrameBuffer int
	// SyncCommit makes Exec/ExecAsync wait for the transaction's redo
	// record to be written and fsynced before acknowledging: an
	// acknowledged commit then survives any crash. The wait is on the
	// log's group-commit watermark, so concurrent transactions share
	// fsyncs — throughput degrades far less than one fsync per commit —
	// but each acknowledgement pays up to one group-commit latency. A
	// split-phase commutative write costs more: its redo record is
	// written only when reconciliation merges the per-core slices, so
	// the acknowledgement additionally waits for the next phase
	// transition (up to a few PhaseLengths), like a stashed
	// transaction's. Off by default: the paper's design (§3)
	// acknowledges from memory and logs asynchronously. Requires
	// RedoLog.
	SyncCommit bool
	// ScrubEvery, when non-zero, runs a background scrub of the redo
	// log's sealed segments at this interval: each pass re-decodes every
	// live sealed segment and cross-checks it against the manifest's
	// sealed metadata — the validation recovery would perform, run while
	// the database is healthy instead of at the moment the data is
	// needed. Damage surfaces in Stats.ScrubError (and via ScrubWAL,
	// which forces a pass manually). Scrubbing only reads; it never
	// repairs or deletes. Requires RedoLog.
	ScrubEvery time.Duration
	// WALFailStop makes the database refuse new transactions once the
	// redo logger has failed terminally (disk gone, write error):
	// Exec/ExecAsync then return the logger's error instead of
	// acknowledging commits that can never be durable. This covers
	// stashed transactions too — a transaction stashed before the
	// failure whose replay was refused reports the logger error, not
	// success. Without the option the database keeps serving from
	// memory and the failure is visible only via WALErr /
	// Stats.RedoLogError. Requires RedoLog.
	WALFailStop bool

	// workerIDBase namespaces this instance's worker IDs inside the
	// shared TID clock domain: the IDs embedded in commit TIDs run from
	// workerIDBase to workerIDBase+Workers-1. Zero for a standalone
	// database; OpenCluster assigns each shard a disjoint range so no
	// two shards can mint the same TID.
	workerIDBase int
}

// Validate reports every way the option combination is invalid, not
// just the first: the violations are joined with errors.Join, so
// errors.Is(err, ErrRequiresRedoLog) matches when any option demanded a
// durability directory. A nil return means Open/OpenErr/Recover (and
// OpenCluster, which validates the per-shard template) will not reject
// the options on consistency grounds; opening the redo log itself can
// still fail.
func (o Options) Validate() error {
	var errs []error
	if o.RedoLog == "" {
		for _, v := range []struct {
			name string
			set  bool
		}{
			{"CheckpointEvery", o.CheckpointEvery > 0},
			{"MaxSegmentBytes", o.MaxSegmentBytes > 0},
			{"CheckpointFrameBuffer", o.CheckpointFrameBuffer > 0},
			{"SyncCommit", o.SyncCommit},
			{"ScrubEvery", o.ScrubEvery > 0},
			{"WALFailStop", o.WALFailStop},
		} {
			if v.set {
				errs = append(errs, fmt.Errorf("%s: %w", v.name, ErrRequiresRedoLog))
			}
		}
	}
	if o.Workers < 0 {
		errs = append(errs, fmt.Errorf("doppel: negative Workers (%d)", o.Workers))
	}
	return errors.Join(errs...)
}

// resolve normalizes the options into their effective values and the
// engine configuration Open builds: worker-count defaulting and
// capping, phase-length defaulting, and durability plumbing all live
// here so every construction path (Open, OpenErr, Recover, OpenCluster)
// resolves identically. It assumes Validate passed.
func (o Options) resolve() (Options, core.Config) {
	workers := o.Workers
	if workers <= 0 {
		workers = 4
	}
	if workers > core.MaxWorkers {
		// Commit TIDs carry an 8-bit worker ID (see internal/core's
		// doc.go); more workers would mint colliding TIDs.
		workers = core.MaxWorkers
	}
	if o.workerIDBase+workers > core.MaxWorkers {
		// The instance shares its TID clock domain (a cluster): its slice
		// of the 8-bit ID space is what remains above the base.
		workers = core.MaxWorkers - o.workerIDBase
	}
	o.Workers = workers
	cfg := o.Engine
	cfg.Workers = workers
	cfg.WorkerIDBase = o.workerIDBase
	if cfg.PhaseLength == 0 {
		cfg.PhaseLength = o.PhaseLength
	}
	if cfg.PhaseLength == 0 {
		cfg.PhaseLength = 20 * time.Millisecond
	}
	return o, cfg
}
