// Command doppel-cli is a line-oriented client for doppel-server.
//
//	doppel-cli -addr 127.0.0.1:7777
//	> add counter 5
//	> get counter
//	5
//
// Each input line is "procedure arg1 arg2 ..."; the server's reply (or
// error) is printed. End with EOF or "quit".
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"doppel/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7777", "server address")
	flag.Parse()

	// Non-interactive mode: arguments form a single call.
	if args := flag.Args(); len(args) > 0 {
		c, err := server.Dial(*addr)
		if err != nil {
			log.Fatal(err)
		}
		defer c.Close()
		out, err := c.Call(args[0], args[1:]...)
		if err != nil {
			log.Fatal(err)
		}
		if out != "" {
			fmt.Println(out)
		}
		return
	}

	c, err := server.Dial(*addr)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("> ")
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			fmt.Print("> ")
			continue
		}
		if fields[0] == "quit" || fields[0] == "exit" {
			return
		}
		out, err := c.Call(fields[0], fields[1:]...)
		if err != nil {
			fmt.Printf("error: %v\n", err)
		} else if out != "" {
			fmt.Println(out)
		} else {
			fmt.Println("ok")
		}
		fmt.Print("> ")
	}
}
