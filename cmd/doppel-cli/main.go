// Command doppel-cli is a line-oriented client for doppel-server.
//
//	doppel-cli -addr 127.0.0.1:7777
//	> add counter 5
//	> get counter
//	5
//
// Each input line is "procedure arg1 arg2 ..."; the server's reply (or
// error) is printed. End with EOF or "quit".
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"doppel/internal/server"
)

// toArgs types each token: integers become Int args, everything else a
// byte string. A token is only treated as an integer when the decimal
// rendering round-trips exactly ("007" or "+5" stay byte strings), so
// no value is ever stored differently from how it was typed.
func toArgs(tokens []string) []server.Arg {
	args := make([]server.Arg, len(tokens))
	for i, tok := range tokens {
		if n, err := strconv.ParseInt(tok, 10, 64); err == nil && strconv.FormatInt(n, 10) == tok {
			args[i] = server.Int(n)
		} else {
			args[i] = server.Str(tok)
		}
	}
	return args
}

func main() {
	addr := flag.String("addr", "127.0.0.1:7777", "server address")
	flag.Parse()

	// Non-interactive mode: arguments form a single call.
	if args := flag.Args(); len(args) > 0 {
		c, err := server.Dial(*addr)
		if err != nil {
			log.Fatal(err)
		}
		defer c.Close()
		out, err := c.Call(args[0], toArgs(args[1:])...)
		if err != nil {
			log.Fatal(err)
		}
		if !out.IsNil() {
			fmt.Println(out)
		}
		return
	}

	c, err := server.Dial(*addr)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("> ")
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			fmt.Print("> ")
			continue
		}
		if fields[0] == "quit" || fields[0] == "exit" {
			return
		}
		out, err := c.Call(fields[0], toArgs(fields[1:])...)
		if err != nil {
			fmt.Printf("error: %v\n", err)
		} else if !out.IsNil() {
			fmt.Println(out)
		} else {
			fmt.Println("ok")
		}
		fmt.Print("> ")
	}
}
