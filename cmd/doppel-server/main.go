// Command doppel-server runs a Doppel database serving a small
// general-purpose procedure set over TCP: get/put/add/max/min/topk.
// The protocol is pipelined; see internal/server.
//
//	doppel-server -addr 127.0.0.1:7777 -workers 4 -max-inflight 256 -flush 100us
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"doppel"
	"doppel/internal/server"
)

func needArgs(args []server.Arg, n int) error {
	if len(args) != n {
		return fmt.Errorf("need %d args, got %d", n, len(args))
	}
	return nil
}

func main() {
	addr := flag.String("addr", "127.0.0.1:7777", "listen address")
	workers := flag.Int("workers", 4, "worker count (per shard when -shards > 1)")
	shards := flag.Int("shards", 1, "shard the keyspace across this many independent databases (cross-shard transactions use 2PC)")
	maxInFlight := flag.Int("max-inflight", 128, "max concurrently executing requests per connection")
	flush := flag.Duration("flush", 0, "response flush interval (0 flushes when the queue goes idle)")
	maxFrame := flag.Int("max-frame", server.DefaultMaxFrame, "max frame payload bytes")
	walDir := flag.String("wal", "", "durability directory (enables redo logging; recovers existing state on start)")
	ckptEvery := flag.Duration("checkpoint-every", 30*time.Second, "checkpoint interval when -wal is set (0 disables)")
	segBytes := flag.Int64("max-segment-bytes", 64<<20, "seal WAL segments at this size, independent of checkpoints (0 disables)")
	recoveryPar := flag.Int("recovery-parallelism", 0, "goroutines for snapshot decode and segment replay on start (0 = GOMAXPROCS)")
	recoveryOverlap := flag.Bool("recovery-overlap", true, "replay WAL segments concurrently with the snapshot load on start")
	ckptFrames := flag.Int("checkpoint-frame-buffer", 0, "snapshot entries buffered between the checkpoint walker and writer (0 = default)")
	walFailStop := flag.Bool("wal-fail-stop", false, "refuse new transactions once the redo logger has failed terminally")
	syncCommit := flag.Bool("sync-commit", false, "acknowledge commits only after their redo record's group commit is fsynced")
	follow := flag.Bool("follow", false, "serve read-only from a replica tailing the -wal directory (writes fail; the primary may be a separate process)")
	followPoll := flag.Duration("follow-poll", time.Millisecond, "replica tail polling interval with -follow")
	followState := flag.String("follow-state", "", "follower checkpoint directory with -follow: restarts resume from the newest follower checkpoint instead of re-bootstrapping from the primary's snapshot")
	scrubEvery := flag.Duration("scrub-every", 0, "background WAL scrub interval when -wal is set (0 disables); damage surfaces in \"stats\"")
	maxServerInFlight := flag.Int("max-server-inflight", 0, "server-wide cap on concurrently executing requests; excess is shed with an overloaded error instead of queueing without bound (0 disables)")
	readTimeout := flag.Duration("read-timeout", 0, "drop connections that deliver no request for this long (0 disables)")
	writeTimeout := flag.Duration("write-timeout", 0, "drop connections that stop reading responses for this long (0 disables)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "how long shutdown waits for in-flight requests before force-closing connections")
	flag.Parse()

	opts := doppel.Options{Workers: *workers}
	durable := *walDir != ""
	if durable {
		opts.CheckpointEvery = *ckptEvery
		opts.MaxSegmentBytes = *segBytes
		opts.RecoveryParallelism = *recoveryPar
		opts.RecoveryOverlap = *recoveryOverlap
		opts.CheckpointFrameBuffer = *ckptFrames
		opts.WALFailStop = *walFailStop
		opts.SyncCommit = *syncCommit
		opts.ScrubEvery = *scrubEvery
	}

	// The handlers below drive whichever backend was opened through the
	// same four capabilities; a Cluster and a DB differ only here.
	var (
		backend    server.Backend
		dbStats    func() string
		checkpoint func() error
		closeAll   func()
		// direct registers the mode's wait-free handlers (the
		// read-your-writes token endpoints) once the server exists.
		direct func(srv *server.Server)
	)
	if *follow {
		if !durable {
			log.Fatal("-follow requires -wal (the directory to tail)")
		}
		if *shards > 1 {
			log.Fatal("-follow serves a single directory; combine one follower per shard instead of -shards")
		}
		rep, err := doppel.OpenFollower(*walDir, doppel.FollowerOptions{
			PollInterval:        *followPoll,
			RecoveryParallelism: *recoveryPar,
			StateDir:            *followState,
		})
		if err != nil {
			log.Fatal(err)
		}
		rs := rep.Stats()
		log.Printf("following %s: snapshot %d records, tail at %s (resumed=%v)",
			*walDir, rs.SnapshotEntries, rs.Position, rs.Resumed)
		backend, closeAll = rep, rep.Close
		checkpoint = func() error { return fmt.Errorf("follower is read-only; checkpoint on the primary") }
		dbStats = func() string {
			s := rep.Stats()
			out := fmt.Sprintf("follower applied_lsn=%d position=%s snapshot_entries=%d polls=%d manifest_reads=%d rebootstraps=%d checkpoints=%d resumed=%v",
				s.AppliedLSN, s.Position, s.SnapshotEntries, s.Polls, s.ManifestReads,
				s.Rebootstraps, s.Checkpoints, s.Resumed)
			if s.TailError != "" {
				out += fmt.Sprintf(" tail_error=%q", s.TailError)
			}
			return out
		}
		// waitpos blocks a read-your-writes client until the replica has
		// applied at least the primary position in the client's token
		// (from the primary's "position" endpoint), then returns the
		// replica's applied position. Optional second argument: wait
		// bound in milliseconds (default 10s).
		direct = func(srv *server.Server) {
			srv.RegisterDirect("waitpos", func(args []server.Arg) (server.Arg, error) {
				if len(args) < 1 || len(args) > 2 {
					return server.Nil, fmt.Errorf("need 1 or 2 args, got %d", len(args))
				}
				pos, err := doppel.ParseLogPosition(args[0].String())
				if err != nil {
					return server.Nil, err
				}
				timeout := 10 * time.Second
				if len(args) == 2 {
					ms, err := args[1].Int64()
					if err != nil {
						return server.Nil, err
					}
					timeout = time.Duration(ms) * time.Millisecond
				}
				ctx, cancel := context.WithTimeout(context.Background(), timeout)
				defer cancel()
				if err := rep.WaitPosition(ctx, pos); err != nil {
					return server.Nil, err
				}
				return server.Str(rep.Position().String()), nil
			})
		}
	} else if *shards > 1 {
		copts := doppel.ClusterOptions{Shards: *shards, DB: opts}
		var cl *doppel.Cluster
		if durable {
			tmpl := *walDir
			if !strings.Contains(tmpl, "%d") {
				tmpl = filepath.Join(tmpl, "shard-%d")
			}
			copts.DB.RedoLog = tmpl
			for i := 0; i < *shards; i++ {
				if err := os.MkdirAll(fmt.Sprintf(tmpl, i), 0o755); err != nil {
					log.Fatal(err)
				}
			}
			var err error
			cl, err = doppel.RecoverCluster(tmpl, copts)
			if err != nil {
				log.Fatal(err)
			}
			for i := 0; i < cl.Shards(); i++ {
				rs := cl.DB(i).LastRecovery()
				log.Printf("shard %d recovered from %s: snapshot %q (%d records), %d segments / %d records replayed",
					i, fmt.Sprintf(tmpl, i), rs.SnapshotFile, rs.SnapshotEntries, rs.SegmentsReplayed, rs.RecordsReplayed)
			}
		} else {
			var err error
			cl, err = doppel.OpenCluster(copts)
			if err != nil {
				log.Fatal(err)
			}
		}
		backend, checkpoint, closeAll = cl, cl.Checkpoint, cl.Close
		dbStats = func() string {
			cs := cl.Stats()
			var agg doppel.Stats
			split := 0
			for _, s := range cs.Shards {
				agg.Committed += s.Committed
				agg.Aborted += s.Aborted
				agg.Stashed += s.Stashed
				agg.MergeFailures += s.MergeFailures
				agg.StashDropped += s.StashDropped
				agg.FenceAborts += s.FenceAborts
				split += len(s.SplitKeys)
			}
			return fmt.Sprintf(
				"shards=%d committed=%d aborted=%d stashed=%d merge_failures=%d stash_dropped=%d split=%d single_shard=%d reroutes=%d cross_shard=%d cross_retries=%d cross_aborts=%d fenced_keys=%d fence_aborts=%d apply_lost=%d",
				cl.Shards(), agg.Committed, agg.Aborted, agg.Stashed, agg.MergeFailures, agg.StashDropped, split,
				cs.Router.SingleShard, cs.Router.Reroutes, cs.Router.CrossShard, cs.Router.CrossShardRetries, cs.Router.CrossShardAborts,
				cs.Router.FencedKeys, agg.FenceAborts, cs.Router.CrossShardApplyLost)
		}
	} else {
		var db *doppel.DB
		if durable {
			opts.RedoLog = *walDir
			if err := os.MkdirAll(*walDir, 0o755); err != nil {
				log.Fatal(err)
			}
			var err error
			db, err = doppel.Recover(*walDir, opts)
			if err != nil {
				log.Fatal(err)
			}
			rs := db.LastRecovery()
			log.Printf("recovered from %s: snapshot %q (%d records), %d segments / %d records replayed (parallelism %d, overlapped %v)",
				*walDir, rs.SnapshotFile, rs.SnapshotEntries, rs.SegmentsReplayed, rs.RecordsReplayed, rs.Parallelism, rs.Overlapped)
		} else {
			db = doppel.Open(opts)
		}
		backend, checkpoint, closeAll = db, db.Checkpoint, db.Close
		if durable {
			// position hands a writer its read-your-writes token: the log
			// position its acknowledged writes are durable at, to pass to
			// a follower's "waitpos" before reading there.
			direct = func(srv *server.Server) {
				srv.RegisterDirect("position", func(args []server.Arg) (server.Arg, error) {
					return server.Str(db.LogPosition().String()), nil
				})
			}
		}
		dbStats = func() string {
			s := db.Stats()
			out := fmt.Sprintf(
				"committed=%d aborted=%d stashed=%d merge_failures=%d stash_dropped=%d phase=%s split=%d",
				s.Committed, s.Aborted, s.Stashed, s.MergeFailures, s.StashDropped, s.Phase, len(s.SplitKeys))
			if durable {
				cs := db.CheckpointStats()
				out += fmt.Sprintf(
					" checkpoints=%d ckpt_failures=%d ckpt_seg=%d ckpt_entries=%d ckpt_bytes=%d ckpt_barrier=%v ckpt_walk=%v ckpt_cow=%d",
					cs.Checkpoints, cs.Failures, cs.LastSeq, cs.LastEntries, cs.LastBytes, cs.LastBarrier, cs.LastWalk, cs.LastCOWSaves)
				if s.RedoLogError != "" {
					out += fmt.Sprintf(" redo_error=%q", s.RedoLogError)
				}
			}
			return out
		}
	}
	defer closeAll()
	srv := server.NewWithOptions(backend, server.Options{
		MaxInFlight:       *maxInFlight,
		FlushEvery:        *flush,
		MaxFrame:          *maxFrame,
		MaxServerInFlight: *maxServerInFlight,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
	})
	if direct != nil {
		direct(srv)
	}

	srv.Register("get", func(tx doppel.Tx, args []server.Arg) (server.Arg, error) {
		if err := needArgs(args, 1); err != nil {
			return server.Nil, err
		}
		n, err := tx.GetInt(args[0].String())
		return server.Int(n), err
	})
	srv.Register("getbytes", func(tx doppel.Tx, args []server.Arg) (server.Arg, error) {
		if err := needArgs(args, 1); err != nil {
			return server.Nil, err
		}
		b, err := tx.GetBytes(args[0].String())
		return server.Bytes(b), err
	})
	srv.Register("put", func(tx doppel.Tx, args []server.Arg) (server.Arg, error) {
		if err := needArgs(args, 2); err != nil {
			return server.Nil, err
		}
		// String() rather than Bytes(): integer-typed args (the CLI sends
		// them for numeric tokens) coerce to their decimal text instead of
		// silently storing nothing.
		return server.Nil, tx.PutBytes(args[0].String(), []byte(args[1].String()))
	})
	intOp := func(op func(tx doppel.Tx, key string, n int64) error) server.Handler {
		return func(tx doppel.Tx, args []server.Arg) (server.Arg, error) {
			if err := needArgs(args, 2); err != nil {
				return server.Nil, err
			}
			n, err := args[1].Int64()
			if err != nil {
				return server.Nil, err
			}
			return server.Nil, op(tx, args[0].String(), n)
		}
	}
	srv.Register("add", intOp(func(tx doppel.Tx, k string, n int64) error { return tx.Add(k, n) }))
	srv.Register("max", intOp(func(tx doppel.Tx, k string, n int64) error { return tx.Max(k, n) }))
	srv.Register("min", intOp(func(tx doppel.Tx, k string, n int64) error { return tx.Min(k, n) }))
	srv.Register("topk-insert", func(tx doppel.Tx, args []server.Arg) (server.Arg, error) {
		if err := needArgs(args, 3); err != nil {
			return server.Nil, err
		}
		order, err := args[1].Int64()
		if err != nil {
			return server.Nil, err
		}
		return server.Nil, tx.TopKInsert(args[0].String(), order, []byte(args[2].String()), 100)
	})
	srv.Register("topk", func(tx doppel.Tx, args []server.Arg) (server.Arg, error) {
		if err := needArgs(args, 1); err != nil {
			return server.Nil, err
		}
		es, err := tx.GetTopK(args[0].String())
		if err != nil {
			return server.Nil, err
		}
		out := ""
		for _, e := range es {
			out += fmt.Sprintf("%d:%s\n", e.Order, e.Data)
		}
		return server.Str(out), nil
	})
	srv.Register("stats", func(tx doppel.Tx, args []server.Arg) (server.Arg, error) {
		requests, errs, lat := srv.Stats()
		out := fmt.Sprintf("%s rpc=%d rpc_errors=%d rpc_p50=%v rpc_p99=%v",
			dbStats(), requests, errs,
			time.Duration(lat.Quantile(0.5)), time.Duration(lat.Quantile(0.99)))
		return server.Str(out), nil
	})
	// Handlers execute on worker goroutines, and a checkpoint barrier
	// needs every worker to reach a transaction boundary — so the RPC
	// only kicks the checkpoint off; progress is visible via "stats".
	srv.Register("checkpoint", func(tx doppel.Tx, args []server.Arg) (server.Arg, error) {
		if !durable {
			return server.Nil, fmt.Errorf("server started without -wal")
		}
		go func() {
			if err := checkpoint(); err != nil {
				log.Printf("checkpoint: %v", err)
			}
		}()
		return server.Str("checkpoint started"), nil
	})

	bound, err := srv.Listen(*addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("doppel-server listening on %s (%d shards, %d workers/shard, %d in-flight/conn)",
		bound, *shards, *workers, *maxInFlight)

	// Graceful drain on SIGTERM/SIGINT: stop accepting, let in-flight
	// requests finish (bounded by -drain-timeout), flush their responses,
	// then checkpoint so a restart recovers from the snapshot instead of
	// replaying the log, and finally seal the WAL via the deferred close.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("draining (timeout %v)", *drainTimeout)
	srv.Drain(*drainTimeout)
	if durable && !*follow {
		if err := checkpoint(); err != nil {
			log.Printf("final checkpoint: %v", err)
		}
	}
}
