// Command doppel-server runs a Doppel database serving a small
// general-purpose procedure set over TCP: get/put/add/max/min/topk.
//
//	doppel-server -addr 127.0.0.1:7777 -workers 4
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"

	"doppel"
	"doppel/internal/server"
)

func needArgs(args []string, n int) error {
	if len(args) != n {
		return fmt.Errorf("need %d args, got %d", n, len(args))
	}
	return nil
}

func main() {
	addr := flag.String("addr", "127.0.0.1:7777", "listen address")
	workers := flag.Int("workers", 4, "worker count")
	flag.Parse()

	db := doppel.Open(doppel.Options{Workers: *workers})
	defer db.Close()
	srv := server.New(db)

	srv.Register("get", func(tx doppel.Tx, args []string) (string, error) {
		if err := needArgs(args, 1); err != nil {
			return "", err
		}
		n, err := tx.GetInt(args[0])
		return strconv.FormatInt(n, 10), err
	})
	srv.Register("getbytes", func(tx doppel.Tx, args []string) (string, error) {
		if err := needArgs(args, 1); err != nil {
			return "", err
		}
		b, err := tx.GetBytes(args[0])
		return string(b), err
	})
	srv.Register("put", func(tx doppel.Tx, args []string) (string, error) {
		if err := needArgs(args, 2); err != nil {
			return "", err
		}
		return "", tx.PutBytes(args[0], []byte(args[1]))
	})
	intOp := func(op func(tx doppel.Tx, key string, n int64) error) server.Handler {
		return func(tx doppel.Tx, args []string) (string, error) {
			if err := needArgs(args, 2); err != nil {
				return "", err
			}
			n, err := strconv.ParseInt(args[1], 10, 64)
			if err != nil {
				return "", err
			}
			return "", op(tx, args[0], n)
		}
	}
	srv.Register("add", intOp(func(tx doppel.Tx, k string, n int64) error { return tx.Add(k, n) }))
	srv.Register("max", intOp(func(tx doppel.Tx, k string, n int64) error { return tx.Max(k, n) }))
	srv.Register("min", intOp(func(tx doppel.Tx, k string, n int64) error { return tx.Min(k, n) }))
	srv.Register("topk-insert", func(tx doppel.Tx, args []string) (string, error) {
		if err := needArgs(args, 3); err != nil {
			return "", err
		}
		order, err := strconv.ParseInt(args[1], 10, 64)
		if err != nil {
			return "", err
		}
		return "", tx.TopKInsert(args[0], order, []byte(args[2]), 100)
	})
	srv.Register("topk", func(tx doppel.Tx, args []string) (string, error) {
		if err := needArgs(args, 1); err != nil {
			return "", err
		}
		es, err := tx.GetTopK(args[0])
		if err != nil {
			return "", err
		}
		out := ""
		for _, e := range es {
			out += fmt.Sprintf("%d:%s\n", e.Order, e.Data)
		}
		return out, nil
	})
	srv.Register("stats", func(tx doppel.Tx, args []string) (string, error) {
		s := db.Stats()
		return fmt.Sprintf("committed=%d aborted=%d stashed=%d phase=%s split=%d",
			s.Committed, s.Aborted, s.Stashed, s.Phase, len(s.SplitKeys)), nil
	})

	bound, err := srv.Listen(*addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("doppel-server listening on %s (%d workers)", bound, *workers)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	log.Print("shutting down")
	srv.Close()
}
