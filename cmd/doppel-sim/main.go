// Command doppel-sim runs one multicore simulation with explicit
// parameters, for exploring the cost model and classifier behaviour
// beyond the paper's fixed experiments.
//
// Example:
//
//	doppel-sim -engine doppel -cores 40 -hot 0.5 -duration 200ms
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"doppel/internal/sim"
	"doppel/internal/workload"
)

func main() {
	engineName := flag.String("engine", "doppel", "doppel, occ, 2pl, atomic, silo")
	cores := flag.Int("cores", 20, "simulated cores")
	records := flag.Int("records", 1_000_000, "records")
	hot := flag.Float64("hot", -1, "INCR1 hot fraction (use -alpha for INCRZ)")
	alpha := flag.Float64("alpha", -1, "INCRZ Zipf exponent")
	writeFrac := flag.Float64("writes", -1, "LIKE write fraction (with -alpha)")
	duration := flag.Duration("duration", 150*time.Millisecond, "simulated duration")
	warmup := flag.Duration("warmup", 60*time.Millisecond, "simulated warmup")
	phase := flag.Duration("phase", 20*time.Millisecond, "Doppel phase length")
	seed := flag.Uint64("seed", 42, "seed")
	flag.Parse()

	var kind sim.Kind
	switch *engineName {
	case "doppel":
		kind = sim.Doppel
	case "occ":
		kind = sim.OCC
	case "2pl":
		kind = sim.TwoPL
	case "atomic":
		kind = sim.Atomic
	case "silo":
		kind = sim.Silo
	default:
		fmt.Fprintf(os.Stderr, "unknown engine %q\n", *engineName)
		os.Exit(2)
	}

	cfg := sim.Config{
		Engine:   kind,
		Cores:    *cores,
		Records:  *records,
		Warmup:   warmup.Nanoseconds(),
		Duration: duration.Nanoseconds(),
		Seed:     *seed,
	}
	cfg.Doppel = sim.DefaultParams()
	cfg.Doppel.PhaseLen = phase.Nanoseconds()

	var gen sim.Generator
	switch {
	case *writeFrac >= 0 && *alpha >= 0:
		users := *records / 2
		z := workload.NewZipf(users, *alpha)
		gen = sim.LikeGen(users, users, z, *writeFrac)
		fmt.Printf("workload: LIKE writes=%.0f%% alpha=%.2f\n", *writeFrac*100, *alpha)
	case *alpha >= 0:
		z := workload.NewZipf(*records, *alpha)
		gen = sim.IncrZGen(z)
		fmt.Printf("workload: INCRZ alpha=%.2f\n", *alpha)
	default:
		h := *hot
		if h < 0 {
			h = 1.0
		}
		gen = sim.IncrGen(*records, h, 0)
		fmt.Printf("workload: INCR1 hot=%.0f%%\n", h*100)
	}

	res := sim.Run(cfg, gen)
	fmt.Printf("engine=%s cores=%d records=%d\n", kind, *cores, *records)
	fmt.Printf("throughput:   %.2f Mtxn/s\n", res.Throughput/1e6)
	fmt.Printf("commits:      %d\n", res.Commits)
	fmt.Printf("aborts:       %d\n", res.Aborts)
	fmt.Printf("stashes:      %d\n", res.Stashes)
	fmt.Printf("phase changes: %d\n", res.PhaseChanges)
	fmt.Printf("split keys:   %d %v\n", len(res.SplitKeys), res.SplitKeys)
	fmt.Printf("read latency:  mean=%.1fus p99=%.1fus\n",
		res.ReadLat.Mean()/1000, float64(res.ReadLat.Quantile(0.99))/1000)
	fmt.Printf("write latency: mean=%.1fus p99=%.1fus\n",
		res.WriteLat.Mean()/1000, float64(res.WriteLat.Quantile(0.99))/1000)
}
