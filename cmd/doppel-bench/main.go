// Command doppel-bench regenerates the tables and figures of "Phase
// Reconciliation for Contended In-Memory Transactions" (OSDI 2014) on the
// repository's multicore simulator, and can additionally drive the real
// engines on the local machine.
//
// Usage:
//
//	doppel-bench -experiment fig8            # one experiment
//	doppel-bench -experiment all             # the whole evaluation
//	doppel-bench -experiment fig11 -cores 40 # different core count
//	doppel-bench -real -duration 2s          # real-engine INCR1 run
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"doppel/internal/atomiceng"
	"doppel/internal/bench"
	"doppel/internal/core"
	"doppel/internal/engine"
	"doppel/internal/occ"
	"doppel/internal/store"
	"doppel/internal/twopl"
	"doppel/internal/workload"
)

func main() {
	exp := flag.String("experiment", "", "experiment to run: "+strings.Join(bench.ExperimentNames(), ", ")+", or 'all'")
	cores := flag.Int("cores", 20, "simulated core count")
	records := flag.Int("records", 1_000_000, "simulated record count")
	full := flag.Bool("full", false, "longer simulations for smoother curves")
	seed := flag.Uint64("seed", 42, "simulation seed")
	real := flag.Bool("real", false, "run INCR1 on the real engines instead of the simulator")
	hot := flag.Float64("hot", 1.0, "real mode: fraction of transactions on the hot key")
	duration := flag.Duration("duration", time.Second, "real mode: run duration per engine")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "real mode: worker count")
	flag.Parse()

	if *real {
		runReal(*hot, *duration, *workers)
		return
	}
	if *exp == "" {
		flag.Usage()
		os.Exit(2)
	}
	cfg := bench.ExpConfig{Cores: *cores, Records: *records, Seed: *seed, Full: *full}
	if *exp == "all" {
		for _, name := range []string{"fig8", "fig9", "fig10", "fig11", "table1",
			"table2", "fig12", "table3", "fig13", "fig14", "table4", "fig15"} {
			bench.Experiments[name](os.Stdout, cfg)
			fmt.Println()
		}
		return
	}
	fn, ok := bench.Experiments[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; have %s\n", *exp, strings.Join(bench.ExperimentNames(), ", "))
		os.Exit(2)
	}
	fn(os.Stdout, cfg)
}

// runReal measures the real engines on this machine with the INCR1
// microbenchmark. On a single-CPU host this demonstrates functional
// behaviour (abort/stash accounting, conservation), not parallel
// speedup; see EXPERIMENTS.md.
func runReal(hot float64, dur time.Duration, workers int) {
	const keys = 100_000
	ks := workload.NewKeySpace('k', keys)
	gen := &workload.Incr1{Keys: ks, HotKey: 0, HotFrac: hot}

	build := func(name string) (engine.Engine, *store.Store) {
		st := store.New()
		for i := 0; i < keys; i++ {
			st.Preload(ks.Key(i), store.IntValue(0))
		}
		switch name {
		case "doppel":
			cfg := core.DefaultConfig(workers)
			return core.Open(st, cfg), st
		case "occ":
			return occ.New(st, workers), st
		case "2pl":
			return twopl.New(st, workers), st
		default:
			return atomiceng.New(st, workers), st
		}
	}

	fmt.Printf("# real-engine INCR1: %d workers, hot=%.0f%%, %v per engine\n", workers, hot*100, dur)
	fmt.Printf("%-8s %12s %12s %12s %12s\n", "engine", "txn/s", "committed", "aborted", "stashed")
	for _, name := range []string{"doppel", "occ", "2pl", "atomic"} {
		e, st := build(name)
		res := bench.RunLoad(e, gen, bench.Options{Duration: dur, Seed: 1})
		e.Stop()
		var total int64
		st.Range(func(k string, rec *store.Record) bool {
			n, _ := rec.Value().AsInt()
			total += n
			return true
		})
		ok := "ok"
		if total != int64(res.Stats.Committed) {
			ok = fmt.Sprintf("CONSERVATION VIOLATED (%d != %d)", total, res.Stats.Committed)
		}
		fmt.Printf("%-8s %12.0f %12d %12d %12d  %s\n", name, res.Throughput,
			res.Stats.Committed, res.Stats.Aborted, res.Stats.Stashed, ok)
	}
}
