// Command doppel-bench regenerates the tables and figures of "Phase
// Reconciliation for Contended In-Memory Transactions" (OSDI 2014) on the
// repository's multicore simulator, and can additionally drive the real
// engines on the local machine.
//
// Usage:
//
//	doppel-bench -experiment fig8            # one experiment
//	doppel-bench -experiment all             # the whole evaluation
//	doppel-bench -experiment fig11 -cores 40 # different core count
//	doppel-bench -real -duration 2s          # real-engine INCR1 run
//	doppel-bench -net -duration 2s           # network protocol: blocking vs pipelined
//	doppel-bench -recovery -txns 50000       # recovery time: full replay vs after a checkpoint
//	doppel-bench -checkpoint                 # checkpoint cost vs store size (barrier/walk/alloc)
//	doppel-bench -throughput -duration 2s    # steady-state ops/sec + allocs/op, joined vs split mixes
//	doppel-bench -replication -duration 2s   # replication lag vs write throughput with a WAL-tailing follower
//	doppel-bench -recovery -json             # additionally write BENCH_recovery.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"doppel"
	"doppel/internal/atomiceng"
	"doppel/internal/bench"
	"doppel/internal/core"
	"doppel/internal/engine"
	"doppel/internal/metrics"
	"doppel/internal/occ"
	"doppel/internal/rng"
	"doppel/internal/server"
	"doppel/internal/store"
	"doppel/internal/twopl"
	"doppel/internal/wal"
	"doppel/internal/workload"
)

func main() {
	exp := flag.String("experiment", "", "experiment to run: "+strings.Join(bench.ExperimentNames(), ", ")+", or 'all'")
	cores := flag.Int("cores", 20, "simulated core count")
	records := flag.Int("records", 1_000_000, "simulated record count")
	full := flag.Bool("full", false, "longer simulations for smoother curves")
	seed := flag.Uint64("seed", 42, "simulation seed")
	real := flag.Bool("real", false, "run INCR1 on the real engines instead of the simulator")
	netMode := flag.Bool("net", false, "run the networked INCR1 benchmark: blocking vs pipelined on one connection")
	recovery := flag.Bool("recovery", false, "measure recovery time: full WAL replay vs bounded replay after a checkpoint")
	ckptMode := flag.Bool("checkpoint", false, "measure checkpoint cost (barrier, walk, allocation) across store sizes")
	tputMode := flag.Bool("throughput", false, "measure steady-state transaction throughput, latency and allocs/op across phase mixes")
	replMode := flag.Bool("replication", false, "measure replication lag vs write throughput with a WAL-tailing follower")
	jsonOut := flag.Bool("json", false, "recovery/checkpoint modes: also write machine-readable BENCH_<mode>.json")
	txns := flag.Int("txns", 50_000, "recovery mode: transactions to log before measuring")
	segBytes := flag.Int64("segment-bytes", 128<<10, "recovery mode: WAL segment size (small values force a multi-segment log)")
	recoveryPar := flag.Int("recovery-parallelism", runtime.GOMAXPROCS(0), "recovery mode: parallelism for the parallel-replay row")
	addr := flag.String("addr", "", "net mode: benchmark an already-running server instead of an in-process one")
	inflight := flag.Int("inflight", 128, "net mode: pipelined requests kept in flight")
	flush := flag.Duration("flush", 0, "net mode: server/client flush interval (0 flushes when idle)")
	hot := flag.Float64("hot", 1.0, "real/net mode: fraction of transactions on the hot key")
	duration := flag.Duration("duration", time.Second, "real/net mode: run duration per engine")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "real/net mode: worker count")
	shards := flag.Int("shards", 0, "throughput mode: additionally measure a sharded cluster with this many shards (0 skips the sharded-* rows)")
	flag.Parse()

	if *tputMode {
		runThroughput(*workers, *duration, *jsonOut, *shards)
		return
	}
	if *replMode {
		runReplication(*duration, *jsonOut)
		return
	}
	if *recovery {
		runRecovery(*txns, *workers, *segBytes, *recoveryPar, *jsonOut)
		return
	}
	if *ckptMode {
		runCheckpoint(*workers, *jsonOut)
		return
	}
	if *netMode {
		runNet(*addr, *hot, *duration, *workers, *inflight, *flush)
		return
	}
	if *real {
		runReal(*hot, *duration, *workers)
		return
	}
	if *exp == "" {
		flag.Usage()
		os.Exit(2)
	}
	cfg := bench.ExpConfig{Cores: *cores, Records: *records, Seed: *seed, Full: *full}
	if *exp == "all" {
		for _, name := range []string{"fig8", "fig9", "fig10", "fig11", "table1",
			"table2", "fig12", "table3", "fig13", "fig14", "table4", "fig15"} {
			bench.Experiments[name](os.Stdout, cfg)
			fmt.Println()
		}
		return
	}
	fn, ok := bench.Experiments[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; have %s\n", *exp, strings.Join(bench.ExperimentNames(), ", "))
		os.Exit(2)
	}
	fn(os.Stdout, cfg)
}

// runNet measures the network path with INCR1-over-RPC on a single
// client connection, first with the blocking request/response pattern
// (one request in flight, as the seed protocol forced), then pipelined
// with `inflight` outstanding requests. The gap between the two is the
// round-trip cost the pipelined protocol removes.
func runNet(addr string, hot float64, dur time.Duration, workers, inflight int, flush time.Duration) {
	const keys = 100_000
	if addr == "" {
		db := doppel.Open(doppel.Options{Workers: workers})
		defer db.Close()
		srv := server.NewWithOptions(db, server.Options{MaxInFlight: inflight, FlushEvery: flush})
		srv.Register("add", func(tx doppel.Tx, args []server.Arg) (server.Arg, error) {
			n, err := args[1].Int64()
			if err != nil {
				return server.Nil, err
			}
			return server.Nil, tx.Add(args[0].String(), n)
		})
		bound, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		addr = bound
	}

	ks := workload.NewKeySpace('k', keys)
	pick := func(r *rng.Rand) string {
		if r.Bool(hot) {
			return ks.Key(0)
		}
		return ks.Key(1 + r.Intn(keys-1))
	}

	fmt.Printf("# networked INCR1: 1 connection, %d workers, hot=%.0f%%, %v per mode, flush=%v\n",
		workers, hot*100, dur, flush)
	fmt.Printf("%-22s %12s %12s %12s %12s\n", "mode", "req/s", "requests", "p50", "p99")
	row := func(mode string, n int, elapsed time.Duration, lat *metrics.Hist) float64 {
		tput := float64(n) / elapsed.Seconds()
		fmt.Printf("%-22s %12.0f %12d %12v %12v\n", mode, tput, n,
			time.Duration(lat.Quantile(0.5)), time.Duration(lat.Quantile(0.99)))
		return tput
	}

	n, elapsed, lat := netBlocking(addr, flush, dur, pick)
	blocking := row("blocking (seed-style)", n, elapsed, lat)
	n, elapsed, lat = netPipelined(addr, flush, dur, inflight, pick)
	pipelined := row(fmt.Sprintf("pipelined (%d)", inflight), n, elapsed, lat)
	if blocking > 0 {
		fmt.Printf("speedup: %.1fx\n", pipelined/blocking)
	}
}

func netDial(addr string, flush time.Duration) *server.Client {
	c, err := server.DialOptions(addr, server.Options{FlushEvery: flush})
	if err != nil {
		log.Fatal(err)
	}
	return c
}

// netBlocking issues one synchronous request at a time: every request
// pays a full network round trip, like the seed protocol.
func netBlocking(addr string, flush time.Duration, dur time.Duration, pick func(*rng.Rand) string) (int, time.Duration, *metrics.Hist) {
	c := netDial(addr, flush)
	defer c.Close()
	r := rng.New(1)
	lat := metrics.NewHist()
	n := 0
	begin := time.Now()
	deadline := begin.Add(dur)
	for time.Now().Before(deadline) {
		start := time.Now()
		if _, err := c.Call("add", server.Str(pick(r)), server.Int(1)); err != nil {
			log.Fatal(err)
		}
		lat.Record(time.Since(start).Nanoseconds())
		n++
	}
	return n, time.Since(begin), lat
}

// netPipelined keeps `window` requests outstanding on one connection,
// reaping completions as the server answers (possibly out of order).
func netPipelined(addr string, flush time.Duration, dur time.Duration, window int, pick func(*rng.Rand) string) (int, time.Duration, *metrics.Hist) {
	c := netDial(addr, flush)
	defer c.Close()
	r := rng.New(2)
	lat := metrics.NewHist()
	done := make(chan *server.Call, 2*window)
	starts := make(map[*server.Call]time.Time, window)
	n, inFlight := 0, 0
	begin := time.Now()
	deadline := begin.Add(dur)
	for {
		for inFlight < window && time.Now().Before(deadline) {
			call := c.Go("add", []server.Arg{server.Str(pick(r)), server.Int(1)}, done)
			starts[call] = time.Now()
			inFlight++
		}
		if inFlight == 0 {
			break
		}
		call := <-done
		if call.Err != nil {
			log.Fatal(call.Err)
		}
		lat.Record(time.Since(starts[call]).Nanoseconds())
		delete(starts, call)
		inFlight--
		n++
	}
	return n, time.Since(begin), lat
}

// benchRow is one mode's measurement in the machine-readable output.
type benchRow struct {
	Mode            string `json:"mode"`
	NS              int64  `json:"ns"`
	Segments        int    `json:"segments,omitempty"`
	Records         int    `json:"records,omitempty"`
	SnapshotEntries int    `json:"snapshot_entries,omitempty"`
	Overlapped      bool   `json:"overlapped,omitempty"`
	StoreRecords    int    `json:"store_records,omitempty"`
	BarrierNS       int64  `json:"barrier_ns,omitempty"`
	WalkNS          int64  `json:"walk_ns,omitempty"`
	SnapshotBytes   int64  `json:"snapshot_bytes,omitempty"`
	AllocBytes      uint64 `json:"alloc_bytes,omitempty"`
	COWSaves        int    `json:"cow_saves,omitempty"`
	// Throughput-mode fields. Deliberately not omitempty: CI asserts
	// their presence on every throughput row, and a legitimate measured
	// zero (the target for allocs/op) must not make the key vanish.
	OpsPerSec   float64 `json:"ops_per_sec"`
	Committed   uint64  `json:"committed"`
	Stashed     uint64  `json:"stashed"`
	P50NS       int64   `json:"p50_ns"`
	P99NS       int64   `json:"p99_ns"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// benchReport is the BENCH_<mode>.json document: enough context to
// compare the same mode's rows across PRs.
type benchReport struct {
	Mode    string            `json:"mode"`
	Config  map[string]string `json:"config"`
	Rows    []benchRow        `json:"rows"`
	Version int               `json:"version"`
}

// writeBenchJSON writes report to BENCH_<mode>.json in the current
// directory so CI can track the perf trajectory across PRs.
func writeBenchJSON(report benchReport) {
	report.Version = 1
	writeJSONDoc(report.Mode, report)
}

// writeJSONDoc writes any report document to BENCH_<mode>.json; modes
// whose rows don't fit benchRow (replication) bring their own document
// type and call this directly.
func writeJSONDoc(mode string, doc any) {
	raw, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	name := "BENCH_" + mode + ".json"
	if err := os.WriteFile(name, append(raw, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", name)
}

// replRow is one replication measurement. None of the fields are
// omitempty: CI asserts their presence on every row, and a measured
// zero (an idle follower's lag) must not make the key vanish.
type replRow struct {
	Mode           string  `json:"mode"`
	NS             int64   `json:"ns"`
	WriteOpsPerSec float64 `json:"write_ops_per_sec"`
	Committed      uint64  `json:"committed"`
	AppliedLSN     uint64  `json:"applied_lsn"`
	LagRecords     float64 `json:"lag_records"`
	LagRecordsMax  int64   `json:"lag_records_max"`
	CatchupNS      int64   `json:"catchup_ns"`
}

// replReport is the BENCH_replication.json document.
type replReport struct {
	Mode    string            `json:"mode"`
	Config  map[string]string `json:"config"`
	Rows    []replRow         `json:"rows"`
	Version int               `json:"version"`
}

// runReplication measures what replication costs and how far behind a
// follower runs: for each primary worker count, 2w client goroutines
// drive uniform single-key increments while a follower tails the
// primary's WAL directory. A 1ms sampler records the replication lag —
// the primary's durable record count minus the follower's applied
// watermark — whose mean and max land in the row alongside the write
// throughput. After the writers stop and the primary closes, the row's
// catch-up time is how long the follower takes to drain the remaining
// gap to the log's true end.
func runReplication(dur time.Duration, jsonOut bool) {
	const keys = 10_000
	const poll = 200 * time.Microsecond
	ks := workload.NewKeySpace('k', keys)

	fmt.Printf("# replication lag vs write throughput: follower tails the WAL at poll=%v, %v per row\n", poll, dur)
	fmt.Printf("%-14s %14s %12s %12s %12s %12s %12s\n",
		"mode", "write txn/s", "committed", "applied", "lag(mean)", "lag(max)", "catch-up")
	var rows []replRow

	for _, w := range []int{1, 2, 4} {
		dir, err := os.MkdirTemp("", "doppel-replication-")
		if err != nil {
			log.Fatal(err)
		}
		db, err := doppel.OpenErr(doppel.Options{Workers: w, RedoLog: dir})
		if err != nil {
			log.Fatal(err)
		}
		rep, err := doppel.OpenFollower(dir, doppel.FollowerOptions{PollInterval: poll})
		if err != nil {
			log.Fatal(err)
		}

		clients := 2 * w
		counts := make([]uint64, clients)
		stop := make(chan struct{})
		var wg sync.WaitGroup
		begin := time.Now()
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				r := rng.New(uint64(100 + c))
				for {
					select {
					case <-stop:
						return
					default:
					}
					key := ks.Key(r.Intn(keys))
					if err := db.Exec(func(tx doppel.Tx) error { return tx.Add(key, 1) }); err != nil {
						log.Fatal(err)
					}
					counts[c]++
				}
			}(c)
		}

		// Sample the lag every millisecond while the writers run.
		var lagSum, lagMax, lagN int64
		samplerDone := make(chan struct{})
		go func() {
			defer close(samplerDone)
			tick := time.NewTicker(time.Millisecond)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
					lag := int64(db.DurableLSN()) - int64(rep.AppliedLSN())
					if lag < 0 {
						lag = 0
					}
					lagSum += lag
					lagN++
					if lag > lagMax {
						lagMax = lag
					}
				}
			}
		}()

		time.Sleep(dur)
		close(stop)
		wg.Wait()
		<-samplerDone
		elapsed := time.Since(begin)
		db.Close() // final flush: LogPosition is now the log's true end

		catchStart := time.Now()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		if err := rep.WaitPosition(ctx, db.LogPosition()); err != nil {
			log.Fatalf("follower never caught up to %s (at %s): %v", db.LogPosition(), rep.Position(), err)
		}
		cancel()
		catchup := time.Since(catchStart)

		var committed uint64
		for _, n := range counts {
			committed += n
		}
		lagMean := 0.0
		if lagN > 0 {
			lagMean = float64(lagSum) / float64(lagN)
		}
		tput := float64(committed) / elapsed.Seconds()
		mode := fmt.Sprintf("repl-%dw", w)
		fmt.Printf("%-14s %14.0f %12d %12d %12.1f %12d %12v\n",
			mode, tput, committed, rep.AppliedLSN(), lagMean, lagMax, catchup)
		rows = append(rows, replRow{
			Mode: mode, NS: elapsed.Nanoseconds(),
			WriteOpsPerSec: tput, Committed: committed,
			AppliedLSN: rep.AppliedLSN(),
			LagRecords: lagMean, LagRecordsMax: lagMax,
			CatchupNS: catchup.Nanoseconds(),
		})
		rep.Close()
		os.RemoveAll(dir)
	}

	if jsonOut {
		writeJSONDoc("replication", replReport{
			Mode: "replication",
			Config: map[string]string{
				"keys":     fmt.Sprint(keys),
				"duration": dur.String(),
				"poll":     poll.String(),
			},
			Rows:    rows,
			Version: 1,
		})
	}
}

// runThroughput measures the transaction hot path in steady state —
// the headline number the commit-path work optimizes. Four mixes cover
// the phase model's main shapes:
//
//   - joined-uniform: INCR1 over uniformly random keys with no
//     coordinator — every commit takes the joined-phase OCC path. Run
//     twice, without and with redo logging, so the logging overhead is
//     its own row.
//   - split-incr1-redo: INCR1 with 100% of increments on one hinted hot
//     key under the default coordinator — split phases dominate and most
//     commits take the per-core-slice fast path, reconciliation merges
//     carry the redo records.
//   - like-mix-redo: the paper's LIKE shape, 50% reads / 50%
//     user-put+page-add writes over Zipfian pages — a mixed workload
//     with stashes, the classifier live, and redo logging on.
//
// Alongside ops/sec and p50/p99 commit latency, each row reports heap
// allocations per committed transaction measured as a MemStats.Mallocs
// delta over the whole run — end to end, workload generation included,
// so regressions anywhere on the path show up.
//
// With -shards N, three sharded-* rows follow (see runSharded): the
// embedded single-DB baseline and the N-shard cluster, driven through
// the public Exec API with the same total worker budget, so the
// sharded-uniform / sharded-1db ratio isolates the router's overhead.
func runThroughput(workers int, dur time.Duration, jsonOut bool, shards int) {
	const keys = 100_000
	ks := workload.NewKeySpace('k', keys)

	fmt.Printf("# steady-state throughput: %d workers, %v per mix\n", workers, dur)
	fmt.Printf("%-22s %12s %12s %10s %10s %10s %10s\n",
		"mode", "txn/s", "committed", "p50", "p99", "allocs/op", "stashed")
	var rows []benchRow

	run := func(mode string, redo bool, cfg core.Config, gen workload.Generator, hint string) {
		st := store.New()
		for i := 0; i < keys; i++ {
			st.Preload(ks.Key(i), store.IntValue(0))
		}
		var logger *wal.Logger
		if redo {
			dir, err := os.MkdirTemp("", "doppel-throughput-")
			if err != nil {
				log.Fatal(err)
			}
			defer os.RemoveAll(dir)
			logger, err = wal.Open(dir)
			if err != nil {
				log.Fatal(err)
			}
			cfg.Redo = logger
		}
		db := core.Open(st, cfg)
		if hint != "" {
			db.SplitHint(hint, store.OpAdd)
		}
		runtime.GC()
		var m1, m2 runtime.MemStats
		runtime.ReadMemStats(&m1)
		res := bench.RunLoad(db, gen, bench.Options{Duration: dur, Seed: 1})
		runtime.ReadMemStats(&m2)
		db.Close()
		if logger != nil {
			if err := logger.Close(); err != nil {
				log.Fatal(err)
			}
		}
		lat := metrics.NewHist()
		lat.Merge(res.Stats.ReadLatency)
		lat.Merge(res.Stats.WriteLatency)
		allocsPerOp := 0.0
		if res.Stats.Committed > 0 {
			allocsPerOp = float64(m2.Mallocs-m1.Mallocs) / float64(res.Stats.Committed)
		}
		fmt.Printf("%-22s %12.0f %12d %10v %10v %10.2f %10d\n",
			mode, res.Throughput, res.Stats.Committed,
			time.Duration(lat.Quantile(0.5)), time.Duration(lat.Quantile(0.99)),
			allocsPerOp, res.Stats.Stashed)
		rows = append(rows, benchRow{
			Mode: mode, NS: res.Elapsed.Nanoseconds(),
			OpsPerSec: res.Throughput, Committed: res.Stats.Committed,
			Stashed: res.Stats.Stashed,
			P50NS:   lat.Quantile(0.5), P99NS: lat.Quantile(0.99),
			AllocsPerOp: allocsPerOp,
		})
	}

	joined := core.DefaultConfig(workers)
	joined.PhaseLength = 0 // no coordinator: every commit is joined-phase OCC
	uniform := &workload.Incr1{Keys: ks, HotKey: 0, HotFrac: 0}
	run("joined-uniform", false, joined, uniform, "")
	run("joined-uniform-redo", true, joined, uniform, "")

	split := core.DefaultConfig(workers)
	hot := &workload.Incr1{Keys: ks, HotKey: 0, HotFrac: 1.0}
	run("split-incr1-redo", true, split, hot, ks.Key(0))

	like := core.DefaultConfig(workers)
	users := workload.NewKeySpace('u', keys)
	z := workload.NewZipf(keys, 1.4)
	run("like-mix-redo", true, like,
		&workload.Like{Users: users, Pages: ks, PageZipf: z, WriteFrac: 0.5}, "")

	if shards > 1 {
		rows = append(rows, runSharded(shards, workers, dur)...)
	}

	if jsonOut {
		writeBenchJSON(benchReport{
			Mode: "throughput",
			Config: map[string]string{
				"workers":  fmt.Sprint(workers),
				"keys":     fmt.Sprint(keys),
				"duration": dur.String(),
				"shards":   fmt.Sprint(shards),
			},
			Rows: rows,
		})
	}
}

// runSharded measures the cluster API end to end through Exec, against
// an embedded single DB driven the same way with the same total worker
// budget:
//
//   - sharded-1db: one DB, totalWorkers workers — the baseline.
//   - sharded-uniform: the cluster under a uniformly random single-key
//     workload, so (nearly) every transaction takes the router's
//     single-shard fast path. Its per-total-worker throughput against
//     sharded-1db is the router tax.
//   - sharded-cross: the same cluster with 10% of transactions touching
//     two keys on different shards — those pay an aborted probe attempt
//     plus a full two-phase commit.
//
// Throughput counts completed Exec calls on the client side (for the
// cross row, engine-level commit counters also include the 2PC's
// internal read and apply transactions, which are cost, not work).
func runSharded(shards, workers int, dur time.Duration) []benchRow {
	const keys = 100_000
	ks := workload.NewKeySpace('k', keys)
	perShard := workers / shards
	if perShard < 1 {
		perShard = 1
	}
	totalWorkers := perShard * shards
	clients := 4 * totalWorkers

	fmt.Printf("# sharded cluster: %d shards x %d workers vs 1 db x %d workers, %d client goroutines\n",
		shards, perShard, totalWorkers, clients)

	measure := func(mode string, exec func(doppel.TxFunc) error, mk func(*rng.Rand) doppel.TxFunc) benchRow {
		hists := make([]*metrics.Hist, clients)
		counts := make([]uint64, clients)
		stop := make(chan struct{})
		var wg sync.WaitGroup
		runtime.GC()
		var m1, m2 runtime.MemStats
		runtime.ReadMemStats(&m1)
		begin := time.Now()
		for c := 0; c < clients; c++ {
			hists[c] = metrics.NewHist()
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				r := rng.New(uint64(1000 + c))
				for {
					select {
					case <-stop:
						return
					default:
					}
					fn := mk(r)
					start := time.Now()
					if err := exec(fn); err != nil {
						log.Fatal(err)
					}
					hists[c].Record(time.Since(start).Nanoseconds())
					counts[c]++
				}
			}(c)
		}
		time.Sleep(dur)
		close(stop)
		wg.Wait()
		elapsed := time.Since(begin)
		runtime.ReadMemStats(&m2)
		lat := metrics.NewHist()
		var done uint64
		for c := 0; c < clients; c++ {
			lat.Merge(hists[c])
			done += counts[c]
		}
		allocsPerOp := 0.0
		if done > 0 {
			allocsPerOp = float64(m2.Mallocs-m1.Mallocs) / float64(done)
		}
		tput := float64(done) / elapsed.Seconds()
		fmt.Printf("%-22s %12.0f %12d %10v %10v %10.2f %10d\n",
			mode, tput, done,
			time.Duration(lat.Quantile(0.5)), time.Duration(lat.Quantile(0.99)),
			allocsPerOp, 0)
		return benchRow{
			Mode: mode, NS: elapsed.Nanoseconds(),
			OpsPerSec: tput, Committed: done,
			P50NS: lat.Quantile(0.5), P99NS: lat.Quantile(0.99),
			AllocsPerOp: allocsPerOp,
		}
	}

	uniform := func(r *rng.Rand) doppel.TxFunc {
		key := ks.Key(r.Intn(keys))
		return func(tx doppel.Tx) error { return tx.Add(key, 1) }
	}

	var rows []benchRow

	db := doppel.Open(doppel.Options{Workers: totalWorkers})
	base := measure("sharded-1db", db.Exec, uniform)
	rows = append(rows, base)
	db.Close()

	openCluster := func() *doppel.Cluster {
		c, err := doppel.OpenCluster(doppel.ClusterOptions{
			Shards: shards,
			DB:     doppel.Options{Workers: perShard},
		})
		if err != nil {
			log.Fatal(err)
		}
		return c
	}

	cl := openCluster()
	uni := measure("sharded-uniform", cl.Exec, uniform)
	rows = append(rows, uni)
	cl.Close()
	if base.OpsPerSec > 0 {
		fmt.Printf("router tax: sharded-uniform at %.0f%% of sharded-1db\n",
			100*uni.OpsPerSec/base.OpsPerSec)
	}

	cl = openCluster()
	cross := func(r *rng.Rand) doppel.TxFunc {
		k1 := ks.Key(r.Intn(keys))
		if !r.Bool(0.1) {
			return func(tx doppel.Tx) error { return tx.Add(k1, 1) }
		}
		k2 := ks.Key(r.Intn(keys))
		for cl.ShardOf(k2) == cl.ShardOf(k1) {
			k2 = ks.Key(r.Intn(keys))
		}
		return func(tx doppel.Tx) error {
			if err := tx.Add(k1, 1); err != nil {
				return err
			}
			return tx.Add(k2, 1)
		}
	}
	rows = append(rows, measure("sharded-cross", cl.Exec, cross))
	rs := cl.Stats().Router
	fmt.Printf("cross-row routing: %d single-shard, %d cross-shard commits, %d prepare retries\n",
		rs.SingleShard, rs.CrossShard, rs.CrossShardRetries)
	cl.Close()

	return rows
}

// runRecovery measures what the durability layer's recovery levers buy:
// parallel segment replay (sequential vs parallel over a multi-segment,
// size-rotated log), overlapping segment replay with the snapshot load,
// and checkpointing (full replay vs bounded replay of the post-snapshot
// tail). On a single-CPU host the parallel row shows only I/O/decode
// overlap; the speedup needs real cores.
func runRecovery(txns, workers int, segBytes int64, par int, jsonOut bool) {
	dir, err := os.MkdirTemp("", "doppel-recovery-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	const keys = 1000

	db, err := doppel.OpenErr(doppel.Options{Workers: workers, RedoLog: dir, MaxSegmentBytes: segBytes})
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < txns; i++ {
		key := fmt.Sprintf("k%d", i%keys)
		if err := db.Exec(func(tx doppel.Tx) error { return tx.Add(key, 1) }); err != nil {
			log.Fatal(err)
		}
	}
	db.Close()

	fmt.Printf("# recovery time: %d logged transactions over %d keys, %d workers, %dKiB segments\n",
		txns, keys, workers, segBytes>>10)
	fmt.Printf("%-26s %12s %10s %10s %12s\n", "mode", "recover", "segments", "records", "snapshot")
	var rows []benchRow
	row := func(mode string, d time.Duration, rs doppel.RecoveryStats) {
		snap := "-"
		if rs.SnapshotFile != "" {
			snap = fmt.Sprintf("%d recs", rs.SnapshotEntries)
		}
		fmt.Printf("%-26s %12v %10d %10d %12s\n", mode, d, rs.SegmentsReplayed, rs.RecordsReplayed, snap)
		rows = append(rows, benchRow{
			Mode: mode, NS: d.Nanoseconds(),
			Segments: rs.SegmentsReplayed, Records: rs.RecordsReplayed,
			SnapshotEntries: rs.SnapshotEntries, Overlapped: rs.Overlapped,
		})
	}
	recover := func(par int, overlap bool) (*doppel.DB, time.Duration) {
		start := time.Now()
		rec, err := doppel.Recover(dir, doppel.Options{
			Workers: workers, RecoveryParallelism: par, RecoveryOverlap: overlap,
		})
		if err != nil {
			log.Fatal(err)
		}
		return rec, time.Since(start)
	}

	rec, full := recover(1, false)
	row("full replay (sequential)", full, rec.LastRecovery())
	rec.Close()

	rec, parTime := recover(par, false)
	row(fmt.Sprintf("full replay (par=%d)", par), parTime, rec.LastRecovery())
	rec.Close()
	if parTime > 0 {
		fmt.Printf("parallel replay speedup: %.1fx\n", float64(full)/float64(parTime))
	}

	// Checkpoint, then append a 1% tail so the snapshot-vs-segments
	// rows below have both a snapshot and real (but small) replay work.
	rec, _ = recover(par, false)
	if err := rec.Checkpoint(); err != nil {
		log.Fatal(err)
	}
	tail := txns / 100
	for i := 0; i < tail; i++ {
		key := fmt.Sprintf("k%d", i%keys)
		if err := rec.Exec(func(tx doppel.Tx) error { return tx.Add(key, 1) }); err != nil {
			log.Fatal(err)
		}
	}
	rec.Close()

	rec2, bounded := recover(par, false)
	row(fmt.Sprintf("after checkpoint (+%d)", tail), bounded, rec2.LastRecovery())
	rec2.Close()
	if bounded > 0 {
		fmt.Printf("replay bound speedup: %.1fx\n", float64(full)/float64(bounded))
	}

	// Overlapped: same snapshot + tail, but segment replay starts
	// concurrently with the snapshot load instead of after it.
	rec3, overlapped := recover(par, true)
	row(fmt.Sprintf("overlapped (par=%d)", par), overlapped, rec3.LastRecovery())
	rec3.Close()
	if overlapped > 0 {
		fmt.Printf("overlap speedup vs after-checkpoint: %.2fx\n", float64(bounded)/float64(overlapped))
	}

	if jsonOut {
		writeBenchJSON(benchReport{
			Mode: "recovery",
			Config: map[string]string{
				"txns":          fmt.Sprint(txns),
				"keys":          fmt.Sprint(keys),
				"workers":       fmt.Sprint(workers),
				"segment_bytes": fmt.Sprint(segBytes),
				"parallelism":   fmt.Sprint(par),
			},
			Rows: rows,
		})
	}
}

// runCheckpoint measures one streaming checkpoint at several store
// sizes: the worker-visible barrier pause (must stay flat — it is
// O(1)), the concurrent walk+write time (scales with the store), and
// the bytes allocated during the checkpoint (must stay roughly flat:
// the streaming walk never materializes the store).
func runCheckpoint(workers int, jsonOut bool) {
	sizes := []int{1_000, 10_000, 100_000}
	fmt.Printf("# checkpoint cost vs store size: %d workers\n", workers)
	fmt.Printf("%-10s %12s %12s %12s %12s %12s\n", "records", "barrier", "walk", "total", "snapshot", "alloc")
	var rows []benchRow
	for _, n := range sizes {
		dir, err := os.MkdirTemp("", "doppel-checkpoint-")
		if err != nil {
			log.Fatal(err)
		}
		db, err := doppel.OpenErr(doppel.Options{Workers: workers, RedoLog: dir})
		if err != nil {
			log.Fatal(err)
		}
		var wg sync.WaitGroup
		wg.Add(n)
		for i := 0; i < n; i++ {
			key := fmt.Sprintf("k%d", i)
			v := int64(i)
			db.ExecAsync(func(tx doppel.Tx) error { return tx.PutInt(key, v) }, func(err error) {
				if err != nil {
					log.Fatal(err)
				}
				wg.Done()
			})
		}
		wg.Wait()
		if err := db.Checkpoint(); err != nil { // warm up file system + buffers
			log.Fatal(err)
		}
		runtime.GC()
		var m1, m2 runtime.MemStats
		runtime.ReadMemStats(&m1)
		start := time.Now()
		if err := db.Checkpoint(); err != nil {
			log.Fatal(err)
		}
		total := time.Since(start)
		runtime.ReadMemStats(&m2)
		cs := db.CheckpointStats()
		alloc := m2.TotalAlloc - m1.TotalAlloc
		fmt.Printf("%-10d %12v %12v %12v %11dB %11dB\n",
			n, cs.LastBarrier, cs.LastWalk, total, cs.LastBytes, alloc)
		rows = append(rows, benchRow{
			Mode: fmt.Sprintf("checkpoint-%d", n), NS: total.Nanoseconds(),
			StoreRecords: n, BarrierNS: cs.LastBarrier.Nanoseconds(),
			WalkNS: cs.LastWalk.Nanoseconds(), SnapshotBytes: cs.LastBytes,
			AllocBytes: alloc, COWSaves: cs.LastCOWSaves,
		})
		db.Close()
		os.RemoveAll(dir)
	}
	if jsonOut {
		writeBenchJSON(benchReport{
			Mode:   "checkpoint",
			Config: map[string]string{"workers": fmt.Sprint(workers)},
			Rows:   rows,
		})
	}
}

// runReal measures the real engines on this machine with the INCR1
// microbenchmark. On a single-CPU host this demonstrates functional
// behaviour (abort/stash accounting, conservation), not parallel
// speedup; see EXPERIMENTS.md.
func runReal(hot float64, dur time.Duration, workers int) {
	const keys = 100_000
	ks := workload.NewKeySpace('k', keys)
	gen := &workload.Incr1{Keys: ks, HotKey: 0, HotFrac: hot}

	build := func(name string) (engine.Engine, *store.Store) {
		st := store.New()
		for i := 0; i < keys; i++ {
			st.Preload(ks.Key(i), store.IntValue(0))
		}
		switch name {
		case "doppel":
			cfg := core.DefaultConfig(workers)
			return core.Open(st, cfg), st
		case "occ":
			return occ.New(st, workers), st
		case "2pl":
			return twopl.New(st, workers), st
		default:
			return atomiceng.New(st, workers), st
		}
	}

	fmt.Printf("# real-engine INCR1: %d workers, hot=%.0f%%, %v per engine\n", workers, hot*100, dur)
	fmt.Printf("%-8s %12s %12s %12s %12s\n", "engine", "txn/s", "committed", "aborted", "stashed")
	for _, name := range []string{"doppel", "occ", "2pl", "atomic"} {
		e, st := build(name)
		res := bench.RunLoad(e, gen, bench.Options{Duration: dur, Seed: 1})
		e.Stop()
		var total int64
		st.Range(func(k string, rec *store.Record) bool {
			n, _ := rec.Value().AsInt()
			total += n
			return true
		})
		ok := "ok"
		if total != int64(res.Stats.Committed) {
			ok = fmt.Sprintf("CONSERVATION VIOLATED (%d != %d)", total, res.Stats.Committed)
		}
		fmt.Printf("%-8s %12.0f %12d %12d %12d  %s\n", name, res.Throughput,
			res.Stats.Committed, res.Stats.Aborted, res.Stats.Stashed, ok)
	}
}
