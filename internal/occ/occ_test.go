package occ

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"doppel/internal/engine"
	"doppel/internal/rng"
	"doppel/internal/store"
)

func run(t *testing.T, e *Engine, w int, fn engine.TxFunc) engine.Outcome {
	t.Helper()
	out, err := e.Attempt(w, fn, time.Now().UnixNano())
	if err != nil {
		t.Fatalf("attempt error: %v", err)
	}
	return out
}

// mustCommit retries until the transaction commits.
func mustCommit(t *testing.T, e *Engine, w int, fn engine.TxFunc) {
	t.Helper()
	for i := 0; i < 10000; i++ {
		if run(t, e, w, fn) == engine.Committed {
			return
		}
	}
	t.Fatal("transaction never committed")
}

func TestBasicPutGet(t *testing.T) {
	e := New(store.New(), 1)
	mustCommit(t, e, 0, func(tx engine.Tx) error {
		if err := tx.PutInt("a", 41); err != nil {
			return err
		}
		return tx.Add("a", 1)
	})
	mustCommit(t, e, 0, func(tx engine.Tx) error {
		n, err := tx.GetInt("a")
		if err != nil {
			return err
		}
		if n != 42 {
			return fmt.Errorf("got %d", n)
		}
		return nil
	})
	if e.Name() != "occ" || e.Workers() != 1 {
		t.Fatal("metadata wrong")
	}
	e.Poll(0)
	e.Stop()
}

func TestReadYourWrites(t *testing.T) {
	e := New(store.New(), 1)
	mustCommit(t, e, 0, func(tx engine.Tx) error {
		if err := tx.PutInt("k", 10); err != nil {
			return err
		}
		if err := tx.Add("k", 5); err != nil {
			return err
		}
		n, err := tx.GetInt("k")
		if err != nil {
			return err
		}
		if n != 15 {
			return fmt.Errorf("read-your-writes got %d", n)
		}
		return nil
	})
}

func TestGetMissingIsAbsent(t *testing.T) {
	e := New(store.New(), 1)
	mustCommit(t, e, 0, func(tx engine.Tx) error {
		v, err := tx.Get("missing")
		if err != nil {
			return err
		}
		if v != nil {
			return errors.New("expected absent value")
		}
		n, err := tx.GetInt("missing2")
		if err != nil || n != 0 {
			return fmt.Errorf("GetInt missing: %d %v", n, err)
		}
		b, err := tx.GetBytes("missing3")
		if err != nil || b != nil {
			return fmt.Errorf("GetBytes missing: %v %v", b, err)
		}
		_, ok, err := tx.GetTuple("missing4")
		if err != nil || ok {
			return fmt.Errorf("GetTuple missing: %v %v", ok, err)
		}
		es, err := tx.GetTopK("missing5")
		if err != nil || es != nil {
			return fmt.Errorf("GetTopK missing: %v %v", es, err)
		}
		return nil
	})
}

func TestAllOps(t *testing.T) {
	e := New(store.New(), 1)
	mustCommit(t, e, 0, func(tx engine.Tx) error {
		if err := tx.Max("m", 5); err != nil {
			return err
		}
		if err := tx.Max("m", 3); err != nil {
			return err
		}
		if err := tx.Min("n", 5); err != nil {
			return err
		}
		if err := tx.Min("n", 2); err != nil {
			return err
		}
		if err := tx.Mult("p", 3); err != nil {
			return err
		}
		if err := tx.Mult("p", 4); err != nil {
			return err
		}
		if err := tx.OPut("o", store.Order{A: 9}, []byte("hi")); err != nil {
			return err
		}
		if err := tx.TopKInsert("t", 7, []byte("x"), 3); err != nil {
			return err
		}
		return tx.PutBytes("b", []byte("bytes"))
	})
	mustCommit(t, e, 0, func(tx engine.Tx) error {
		if n, _ := tx.GetInt("m"); n != 5 {
			return fmt.Errorf("max=%d", n)
		}
		if n, _ := tx.GetInt("n"); n != 2 {
			return fmt.Errorf("min=%d", n)
		}
		if n, _ := tx.GetInt("p"); n != 12 {
			return fmt.Errorf("mult=%d", n)
		}
		tp, ok, _ := tx.GetTuple("o")
		if !ok || string(tp.Data) != "hi" {
			return fmt.Errorf("oput=%v,%v", tp, ok)
		}
		es, _ := tx.GetTopK("t")
		if len(es) != 1 || es[0].Order != 7 {
			return fmt.Errorf("topk=%v", es)
		}
		b, _ := tx.GetBytes("b")
		if string(b) != "bytes" {
			return fmt.Errorf("bytes=%q", b)
		}
		if v, _ := tx.GetForUpdate("m"); v == nil {
			return errors.New("GetForUpdate")
		}
		if n, _ := tx.GetIntForUpdate("m"); n != 5 {
			return errors.New("GetIntForUpdate")
		}
		if tx.WorkerID() != 0 {
			return errors.New("worker id")
		}
		return nil
	})
}

func TestUserAbortSurfaced(t *testing.T) {
	e := New(store.New(), 1)
	myErr := errors.New("boom")
	out, err := e.Attempt(0, func(tx engine.Tx) error {
		_ = tx.PutInt("x", 1)
		return myErr
	}, time.Now().UnixNano())
	if out != engine.UserAbort || !errors.Is(err, myErr) {
		t.Fatalf("out=%v err=%v", out, err)
	}
	// The buffered write must not have been applied.
	mustCommit(t, e, 0, func(tx engine.Tx) error {
		if n, _ := tx.GetInt("x"); n != 0 {
			return fmt.Errorf("aborted write leaked: %d", n)
		}
		return nil
	})
}

func TestTypeErrorAtCommitHasNoEffects(t *testing.T) {
	e := New(store.New(), 1)
	mustCommit(t, e, 0, func(tx engine.Tx) error { return tx.PutBytes("s", []byte("str")) })
	out, err := e.Attempt(0, func(tx engine.Tx) error {
		if err := tx.PutInt("ok", 7); err != nil {
			return err
		}
		// Type error only discovered at apply time: Add to a bytes record.
		return tx.Add("s", 1)
	}, time.Now().UnixNano())
	if out != engine.UserAbort || err == nil {
		t.Fatalf("out=%v err=%v", out, err)
	}
	mustCommit(t, e, 0, func(tx engine.Tx) error {
		if n, _ := tx.GetInt("ok"); n != 0 {
			return fmt.Errorf("partial commit leaked: %d", n)
		}
		return nil
	})
}

func TestConflictingIncrementsNoLostUpdates(t *testing.T) {
	e := New(store.New(), 4)
	e.Store().Preload("ctr", store.IntValue(0))
	const perWorker = 2000
	var wg sync.WaitGroup
	commits := make([]int, 4)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rng.New(uint64(w) + 1)
			done := 0
			for done < perWorker {
				out, err := e.Attempt(w, func(tx engine.Tx) error {
					return tx.Add("ctr", 1)
				}, time.Now().UnixNano())
				if err != nil {
					t.Error(err)
					return
				}
				if out == engine.Committed {
					done++
				} else {
					// Tiny randomized backoff.
					for i := uint64(0); i < r.Uint64n(64); i++ {
						_ = i
					}
				}
			}
			commits[w] = done
		}(w)
	}
	wg.Wait()
	var final int64
	mustCommit(t, e, 0, func(tx engine.Tx) error {
		n, err := tx.GetInt("ctr")
		final = n
		return err
	})
	if final != 4*perWorker {
		t.Fatalf("lost updates: final=%d want %d", final, 4*perWorker)
	}
	// Stats should account for every commit.
	total := uint64(0)
	for w := 0; w < 4; w++ {
		total += e.WorkerStats(w).Committed
	}
	if total < 4*perWorker {
		t.Fatalf("stats undercount: %d", total)
	}
}

// TestTransferInvariant runs concurrent transfers between accounts and
// checks that the total balance is conserved — the classic
// serializability smoke test.
func TestTransferInvariant(t *testing.T) {
	const accounts = 10
	const workers = 4
	const transfers = 1500
	e := New(store.New(), workers)
	for i := 0; i < accounts; i++ {
		e.Store().Preload(fmt.Sprintf("acct%d", i), store.IntValue(1000))
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rng.New(uint64(w) + 99)
			done := 0
			for done < transfers {
				from := fmt.Sprintf("acct%d", r.Intn(accounts))
				to := fmt.Sprintf("acct%d", r.Intn(accounts))
				amt := int64(r.Intn(50))
				out, err := e.Attempt(w, func(tx engine.Tx) error {
					b, err := tx.GetInt(from)
					if err != nil {
						return err
					}
					if err := tx.PutInt(from, b-amt); err != nil {
						return err
					}
					b2, err := tx.GetInt(to)
					if err != nil {
						return err
					}
					return tx.PutInt(to, b2+amt)
				}, time.Now().UnixNano())
				if err != nil {
					t.Error(err)
					return
				}
				if out == engine.Committed {
					done++
				}
			}
		}(w)
	}
	wg.Wait()
	var sum int64
	mustCommit(t, e, 0, func(tx engine.Tx) error {
		sum = 0
		for i := 0; i < accounts; i++ {
			n, err := tx.GetInt(fmt.Sprintf("acct%d", i))
			if err != nil {
				return err
			}
			sum += n
		}
		return nil
	})
	if sum != accounts*1000 {
		t.Fatalf("balance not conserved: %d", sum)
	}
}

func TestReadOnlyValidationAborts(t *testing.T) {
	// A read-only transaction whose read set changed must abort.
	st := store.New()
	e := New(st, 2)
	st.Preload("k", store.IntValue(1))
	out, err := e.Attempt(0, func(tx engine.Tx) error {
		if _, err := tx.GetInt("k"); err != nil {
			return err
		}
		// Concurrent writer commits between our read and our commit.
		mustCommit(t, e, 1, func(tx2 engine.Tx) error { return tx2.PutInt("k", 2) })
		return nil
	}, time.Now().UnixNano())
	if err != nil {
		t.Fatal(err)
	}
	if out != engine.Aborted {
		t.Fatalf("expected abort, got %v", out)
	}
}

func TestWriteSkewPrevented(t *testing.T) {
	// Classic write skew: two txns each read both keys and write one.
	// Serializable execution forbids both committing from the same
	// initial state. We interleave them deterministically.
	st := store.New()
	e := New(st, 2)
	st.Preload("x", store.IntValue(1))
	st.Preload("y", store.IntValue(1))

	var out0, out1 engine.Outcome
	out0, _ = e.Attempt(0, func(tx engine.Tx) error {
		x, _ := tx.GetInt("x")
		y, _ := tx.GetInt("y")
		// Inner transaction on worker 1 does the symmetric thing and
		// commits first.
		out1, _ = e.Attempt(1, func(tx2 engine.Tx) error {
			x2, _ := tx2.GetInt("x")
			y2, _ := tx2.GetInt("y")
			return tx2.PutInt("x", x2+y2)
		}, time.Now().UnixNano())
		return tx.PutInt("y", x+y)
	}, time.Now().UnixNano())

	if out1 != engine.Committed {
		t.Fatalf("inner should commit, got %v", out1)
	}
	if out0 != engine.Aborted {
		t.Fatalf("outer must abort (write skew), got %v", out0)
	}
}

func TestLatencyRecorded(t *testing.T) {
	e := New(store.New(), 1)
	mustCommit(t, e, 0, func(tx engine.Tx) error { return tx.PutInt("a", 1) })
	mustCommit(t, e, 0, func(tx engine.Tx) error { _, err := tx.GetInt("a"); return err })
	s := e.WorkerStats(0)
	if s.WriteLatency.Count() != 1 || s.ReadLatency.Count() != 1 {
		t.Fatalf("latency counts: w=%d r=%d", s.WriteLatency.Count(), s.ReadLatency.Count())
	}
}

func TestTIDsMonotonePerRecord(t *testing.T) {
	e := New(store.New(), 2)
	var last uint64
	for i := 0; i < 100; i++ {
		w := i % 2
		mustCommit(t, e, w, func(tx engine.Tx) error { return tx.Add("k", 1) })
		rec := e.Store().Get("k")
		tid, locked := rec.TIDWord()
		if locked {
			t.Fatal("record left locked")
		}
		if tid <= last {
			t.Fatalf("TID not increasing: %d then %d", last, tid)
		}
		last = tid
	}
}
