package occ

import (
	"sort"

	"doppel/internal/engine"
	"doppel/internal/store"
)

// Tx is one OCC transaction execution. It is reused across attempts by
// its owning worker to keep the per-transaction allocation count flat.
type Tx struct {
	eng   *Engine
	w     int
	reads []readEnt
	wset  []writeEnt
	pend  []pending
	wrote bool
}

type readEnt struct {
	rec *store.Record
	tid uint64
}

type writeEnt struct {
	key string
	rec *store.Record
	op  store.Op
}

// pending is a computed-but-not-installed commit value.
type pending struct {
	rec *store.Record
	val *store.Value
}

func (t *Tx) reset(e *Engine, w int) {
	t.eng = e
	t.w = w
	t.reads = t.reads[:0]
	t.wset = t.wset[:0]
	t.wrote = false
}

// WorkerID implements engine.Tx.
func (t *Tx) WorkerID() int { return t.w }

// load performs the Silo consistent read, records the read TID, and
// overlays the transaction's own buffered writes (read-your-writes).
func (t *Tx) load(key string) (*store.Value, error) {
	rec, _ := t.eng.st.GetOrCreate(key)
	v, tid, ok := rec.ReadConsistent(readSpins)
	if !ok {
		return nil, engine.ErrAbort
	}
	t.reads = append(t.reads, readEnt{rec, tid})
	for i := range t.wset {
		if t.wset[i].rec == rec {
			var err error
			v, err = store.Apply(v, t.wset[i].op)
			if err != nil {
				return nil, err
			}
		}
	}
	return v, nil
}

// observe records a read TID for a record the transaction is about to
// blind-update via a read-modify-write operation. This is what makes the
// OCC baseline behave as the paper describes: increments "read the value
// of a key, compute the new value ... and validate that it hasn't changed
// since it was first read", and therefore conflict under contention.
func (t *Tx) observe(key string) (*store.Record, error) {
	rec, _ := t.eng.st.GetOrCreate(key)
	_, tid, ok := rec.ReadConsistent(readSpins)
	if !ok {
		return nil, engine.ErrAbort
	}
	t.reads = append(t.reads, readEnt{rec, tid})
	return rec, nil
}

func (t *Tx) buffer(key string, rec *store.Record, op store.Op) {
	t.wrote = true
	t.wset = append(t.wset, writeEnt{key, rec, op})
}

// Get implements engine.Tx.
func (t *Tx) Get(key string) (*store.Value, error) { return t.load(key) }

// GetForUpdate implements engine.Tx; in OCC it is identical to Get.
func (t *Tx) GetForUpdate(key string) (*store.Value, error) { return t.load(key) }

// GetInt implements engine.Tx.
func (t *Tx) GetInt(key string) (int64, error) {
	v, err := t.load(key)
	if err != nil {
		return 0, err
	}
	return v.AsInt()
}

// GetIntForUpdate implements engine.Tx.
func (t *Tx) GetIntForUpdate(key string) (int64, error) { return t.GetInt(key) }

// GetBytes implements engine.Tx.
func (t *Tx) GetBytes(key string) ([]byte, error) {
	v, err := t.load(key)
	if err != nil {
		return nil, err
	}
	return v.AsBytes()
}

// GetTuple implements engine.Tx.
func (t *Tx) GetTuple(key string) (store.Tuple, bool, error) {
	v, err := t.load(key)
	if err != nil {
		return store.Tuple{}, false, err
	}
	return v.AsTuple()
}

// GetTopK implements engine.Tx.
func (t *Tx) GetTopK(key string) ([]store.TopKEntry, error) {
	v, err := t.load(key)
	if err != nil {
		return nil, err
	}
	tk, err := v.AsTopK()
	if err != nil {
		return nil, err
	}
	return tk.Entries(), nil
}

// Put implements engine.Tx. Put is a blind write: it takes no read-set
// entry (Silo permits blind writes).
func (t *Tx) Put(key string, v *store.Value) error {
	rec, _ := t.eng.st.GetOrCreate(key)
	t.buffer(key, rec, store.Op{Kind: store.OpPut, Val: v})
	return nil
}

// PutInt implements engine.Tx.
func (t *Tx) PutInt(key string, n int64) error { return t.Put(key, store.IntValue(n)) }

// PutBytes implements engine.Tx.
func (t *Tx) PutBytes(key string, b []byte) error { return t.Put(key, store.BytesValue(b)) }

// rmw buffers a read-modify-write operation: observe then buffer.
func (t *Tx) rmw(key string, op store.Op) error {
	rec, err := t.observe(key)
	if err != nil {
		return err
	}
	t.buffer(key, rec, op)
	return nil
}

// Add implements engine.Tx.
func (t *Tx) Add(key string, n int64) error {
	return t.rmw(key, store.Op{Kind: store.OpAdd, Int: n})
}

// Max implements engine.Tx.
func (t *Tx) Max(key string, n int64) error {
	return t.rmw(key, store.Op{Kind: store.OpMax, Int: n})
}

// Min implements engine.Tx.
func (t *Tx) Min(key string, n int64) error {
	return t.rmw(key, store.Op{Kind: store.OpMin, Int: n})
}

// Mult implements engine.Tx.
func (t *Tx) Mult(key string, n int64) error {
	return t.rmw(key, store.Op{Kind: store.OpMult, Int: n})
}

// OPut implements engine.Tx.
func (t *Tx) OPut(key string, order store.Order, data []byte) error {
	return t.rmw(key, store.Op{Kind: store.OpOPut, Tuple: store.Tuple{
		Order: order, CoreID: int32(t.w), Data: data,
	}})
}

// TopKInsert implements engine.Tx.
func (t *Tx) TopKInsert(key string, order int64, data []byte, k int) error {
	return t.rmw(key, store.Op{Kind: store.OpTopKInsert, K: k, Entry: store.TopKEntry{
		Order: order, CoreID: int32(t.w), Data: data,
	}})
}

// inWrites reports whether rec is in the transaction's write set (and so
// locked by this transaction during validation).
func (t *Tx) inWrites(rec *store.Record) bool {
	for i := range t.wset {
		if t.wset[i].rec == rec {
			return true
		}
	}
	return false
}

// genTID produces a commit TID greater than every TID observed by the
// transaction, composed with the worker ID so TIDs are globally unique
// without a shared counter ("our implementation assigns TIDs locally",
// §5.1).
func (t *Tx) genTID() uint64 {
	ws := &t.eng.workers[t.w]
	seq := ws.lastSeq
	for i := range t.reads {
		if s := t.reads[i].tid >> 8; s > seq {
			seq = s
		}
	}
	for i := range t.wset {
		tid, _ := t.wset[i].rec.TIDWord()
		if s := tid >> 8; s > seq {
			seq = s
		}
	}
	seq++
	ws.lastSeq = seq
	return seq<<8 | uint64(t.w)&0xff
}

// commit runs the paper's Figure 2 protocol. A returned error is a
// non-retryable user error (e.g. type mismatch at apply time).
func (t *Tx) commit() (engine.Outcome, error) {
	// Read-only fast path: validate reads without locking anything.
	if len(t.wset) == 0 {
		for i := range t.reads {
			tid, locked := t.reads[i].rec.TIDWord()
			if locked || tid != t.reads[i].tid {
				return engine.Aborted, nil
			}
		}
		return engine.Committed, nil
	}

	// Part 1: lock the write set in global key order; abort if any
	// record is already locked.
	sort.SliceStable(t.wset, func(i, j int) bool { return t.wset[i].key < t.wset[j].key })
	locked := 0
	for i := range t.wset {
		if i > 0 && t.wset[i].rec == t.wset[i-1].rec {
			continue
		}
		if !t.wset[i].rec.TryLock() {
			t.unlockPrefix(locked)
			return engine.Aborted, nil
		}
		locked = i + 1
	}
	commitTID := t.genTID()

	// Part 2: validate the read set.
	for i := range t.reads {
		rd := &t.reads[i]
		tid, isLocked := rd.rec.TIDWord()
		if tid != rd.tid || (isLocked && !t.inWrites(rd.rec)) {
			t.unlockPrefix(locked)
			return engine.Aborted, nil
		}
	}

	// Part 3: apply buffered operations and release locks with the new
	// TID. Operations for one record apply in program order (the sort
	// above is stable). New values are computed for every record before
	// any is installed, so a type error at apply time aborts cleanly
	// with no partial effects.
	newVals := t.pend[:0]
	for i := 0; i < len(t.wset); {
		rec := t.wset[i].rec
		v := rec.Value()
		var err error
		j := i
		for ; j < len(t.wset) && t.wset[j].rec == rec; j++ {
			v, err = store.Apply(v, t.wset[j].op)
			if err != nil {
				t.unlockPrefix(len(t.wset))
				return engine.UserAbort, err
			}
		}
		newVals = append(newVals, pending{rec, v})
		i = j
	}
	t.pend = newVals
	for _, p := range newVals {
		p.rec.SetValue(p.val)
		p.rec.UnlockWithTID(commitTID)
	}
	return engine.Committed, nil
}

// unlockPrefix releases the locks acquired on the first n write-set
// entries (skipping duplicate records).
func (t *Tx) unlockPrefix(n int) {
	for i := 0; i < n; i++ {
		if i > 0 && t.wset[i].rec == t.wset[i-1].rec {
			continue
		}
		t.wset[i].rec.Unlock()
	}
}

var _ engine.Tx = (*Tx)(nil)
