// Package occ implements the paper's OCC baseline: Silo-style optimistic
// concurrency control (§5.1, Figure 2). Transactions buffer writes and
// record read TIDs during execution; at commit they lock the write set in
// a global order, validate the read set, apply buffered operations and
// install a new TID. A transaction that observes a locked record or fails
// validation aborts, to be retried later by the caller.
//
// Doppel's joined phase embeds this same protocol; keeping a standalone
// engine gives the benchmarks an OCC measurement in the same framework
// (§8.1).
package occ

import (
	"errors"
	"time"

	"doppel/internal/engine"
	"doppel/internal/metrics"
	"doppel/internal/store"
)

// readSpins bounds how long a read waits for a locked record before the
// transaction gives up and aborts.
const readSpins = 128

// Engine is an OCC engine over a shared store.
type Engine struct {
	st      *store.Store
	workers []workerState
}

type workerState struct {
	stats   *metrics.TxnStats
	lastSeq uint64
	tx      Tx
	_       [24]byte // avoid false sharing between worker states
}

// New returns an OCC engine with the given worker count over st.
func New(st *store.Store, workers int) *Engine {
	if workers < 1 {
		workers = 1
	}
	e := &Engine{st: st, workers: make([]workerState, workers)}
	for i := range e.workers {
		e.workers[i].stats = metrics.NewTxnStats()
	}
	return e
}

// Name implements engine.Engine.
func (e *Engine) Name() string { return "occ" }

// Workers implements engine.Engine.
func (e *Engine) Workers() int { return len(e.workers) }

// Poll implements engine.Engine; OCC has no background duties.
func (e *Engine) Poll(w int) {}

// Stop implements engine.Engine; OCC holds no resources.
func (e *Engine) Stop() {}

// WorkerStats implements engine.Engine.
func (e *Engine) WorkerStats(w int) *metrics.TxnStats { return e.workers[w].stats }

// Store returns the engine's backing store (for preloading).
func (e *Engine) Store() *store.Store { return e.st }

// Attempt implements engine.Engine.
func (e *Engine) Attempt(w int, fn engine.TxFunc, submitNanos int64) (engine.Outcome, error) {
	ws := &e.workers[w]
	tx := &ws.tx
	tx.reset(e, w)
	err := fn(tx)
	var out engine.Outcome
	switch {
	case errors.Is(err, engine.ErrAbort):
		out = engine.Aborted
	case err != nil:
		ws.stats.Aborted++ // count it, but surface the user error
		return engine.UserAbort, err
	default:
		out, err = tx.commit()
		if err != nil {
			return engine.UserAbort, err
		}
	}
	switch out {
	case engine.Committed:
		ws.stats.Committed++
		lat := time.Now().UnixNano() - submitNanos
		if tx.wrote {
			ws.stats.WriteLatency.Record(lat)
		} else {
			ws.stats.ReadLatency.Record(lat)
		}
	case engine.Aborted:
		ws.stats.Aborted++
	}
	return out, nil
}
