package repl

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"doppel/internal/checkpoint"
	"doppel/internal/engine"
	"doppel/internal/store"
	"doppel/internal/wal"
)

// ErrReadOnly reports a write operation attempted inside a replica
// view. Replicas apply only what the primary's log tells them to; a
// local write would diverge and be silently overwritten by replay.
var ErrReadOnly = errors.New("repl: replica is read-only")

// ErrStopped reports an operation on a Follower whose tail loop has
// stopped (Close or Drain).
var ErrStopped = errors.New("repl: follower stopped")

// Options tunes a Follower.
type Options struct {
	// Poll is the tail polling interval; values <= 0 mean 1ms.
	Poll time.Duration
	// Parallelism caps the goroutines used to decode the bootstrap
	// snapshot; values below 1 mean GOMAXPROCS.
	Parallelism int
	// StateDir, when set, enables follower-side checkpointing: the
	// follower periodically persists its materialized store plus the log
	// position it is consistent with, and a restart resumes from that
	// state, replaying only the suffix after it instead of the whole
	// post-snapshot log. The directory is created if needed and must not
	// be the primary's log directory.
	StateDir string
	// CheckpointEvery is how many applied records between follower
	// checkpoints; <= 0 with StateDir set means 4096. Ignored without
	// StateDir.
	CheckpointEvery int
}

// Stats is a point-in-time snapshot of a Follower's progress.
type Stats struct {
	// AppliedLSN is the follower's applied-record watermark.
	AppliedLSN uint64
	// Position is the log byte position the follower has consumed to.
	Position wal.Position
	// SnapshotEntries is how many records the bootstrap snapshot held.
	SnapshotEntries int
	// Tail carries the cursor's cumulative I/O counters.
	Tail wal.TailStats
	// Rebootstraps counts self-heals: times the tail fell behind a
	// checkpoint GC and the follower rebuilt itself from the newest
	// primary snapshot.
	Rebootstraps uint64
	// Checkpoints counts follower-side checkpoints written to StateDir.
	Checkpoints uint64
	// Resumed reports whether this follower started from StateDir state
	// rather than a full bootstrap.
	Resumed bool
	// Err is the terminal tail error, "" while healthy.
	Err string
}

// Follower replays a primary's redo log into a local store as the log
// grows, and serves reads frozen at its applied watermark. See doc.go
// for the invariants it maintains.
type Follower struct {
	dir  string
	st   *store.Store
	cur  *wal.Cursor
	poll time.Duration
	par  int

	// Follower-side checkpointing state; all fields below are owned by
	// the tail goroutine except the counters mirrored under mu.
	stateDir     string
	ckptEvery    int
	sinceCkpt    int
	ckpts        uint64
	lastSnapName string
	resumed      bool

	rebootstraps atomic.Uint64

	snapshotEntries int

	// applyMu orders record application against views: the apply loop
	// write-locks around each record's installs plus the watermark
	// advance, so a View (read lock) always observes whole records and a
	// watermark no older than anything it read.
	applyMu sync.RWMutex
	applied atomic.Uint64
	pos     atomic.Pointer[wal.Position]

	// mu guards the terminal error and the cursor-stats mirror (the
	// cursor itself is owned by the tail loop, then by Drain).
	mu        sync.Mutex
	tailStats wal.TailStats
	termErr   error

	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
}

// Open starts a follower over the log directory at dir. With no (or
// unusable) StateDir state it loads the checkpoint snapshot the
// manifest names exactly as recovery would, then begins tailing the
// segments; with valid StateDir state it resumes from its own snapshot
// and replays only the log suffix after it. The primary may be live or
// absent; a missing or empty directory simply waits for the primary's
// first append.
func Open(dir string, opts Options) (*Follower, error) {
	poll := opts.Poll
	if poll <= 0 {
		poll = time.Millisecond
	}
	f := &Follower{
		dir:       dir,
		poll:      poll,
		par:       opts.Parallelism,
		stateDir:  opts.StateDir,
		ckptEvery: opts.CheckpointEvery,
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
	if f.stateDir != "" {
		if f.ckptEvery <= 0 {
			f.ckptEvery = 4096
		}
		if err := os.MkdirAll(f.stateDir, 0o755); err != nil {
			return nil, err
		}
		if ok, err := f.tryResume(); err != nil {
			return nil, err
		} else if !ok {
			if err := f.bootstrapFresh(); err != nil {
				return nil, err
			}
		}
	} else if err := f.bootstrapFresh(); err != nil {
		return nil, err
	}
	p := f.cur.Position()
	f.pos.Store(&p)
	go f.loop()
	return f, nil
}

// bootstrapFresh builds the follower from the primary's newest
// checkpoint snapshot, exactly as recovery would.
func (f *Follower) bootstrapFresh() error {
	cur, man, err := wal.OpenCursor(f.dir)
	if err != nil {
		return err
	}
	st := store.New()
	// tidFiltered=true: redo records in live segments are replayed after
	// (and during catch-up, conceptually concurrently with) the snapshot,
	// so installs must go through the highest-TID-wins filter.
	n, err := checkpoint.LoadSnapshot(f.dir, man, st, f.par, true)
	if err != nil {
		cur.Close()
		return err
	}
	f.st, f.cur, f.snapshotEntries = st, cur, n
	return nil
}

// tryResume rebuilds the follower from its own StateDir checkpoint. A
// missing state file, or a resume position the primary has since
// garbage-collected, reports ok=false so the caller bootstraps fresh;
// corrupt state or snapshot files are errors (silently discarding them
// could hide real damage).
func (f *Follower) tryResume() (bool, error) {
	s, ok, err := readState(f.stateDir)
	if err != nil || !ok {
		return false, err
	}
	cur, err := wal.OpenCursorAt(f.dir, s.Pos)
	if err != nil {
		if errors.Is(err, wal.ErrTailGCed) {
			return false, nil // fell behind while down; full bootstrap
		}
		return false, err
	}
	st := store.New()
	n, err := loadSnapshotFile(f.stateDir, s.Snapshot, st, f.par)
	if err != nil {
		cur.Close()
		return false, err
	}
	f.st, f.cur, f.snapshotEntries = st, cur, n
	f.applied.Store(s.Applied)
	f.ckpts = s.Ckpts
	f.lastSnapName = s.Snapshot
	f.resumed = true
	return true, nil
}

// loop is the tail goroutine: poll, apply, checkpoint, publish, until
// stopped or a terminal error. Falling behind a checkpoint GC
// (ErrTailGCed) is not terminal: the follower re-bootstraps itself from
// the primary's newest snapshot and keeps going.
func (f *Follower) loop() {
	defer close(f.done)
	t := time.NewTicker(f.poll)
	defer t.Stop()
	for {
		select {
		case <-f.stop:
			return
		case <-t.C:
			n, err := f.pollOnce()
			if err != nil {
				if errors.Is(err, wal.ErrTailGCed) {
					err = f.rebootstrap()
				}
				if err != nil {
					f.mu.Lock()
					f.termErr = err
					f.mu.Unlock()
					return
				}
				continue
			}
			f.maybeCheckpoint(n)
		}
	}
}

// rebootstrap rebuilds the follower in place from the primary's newest
// checkpoint snapshot after the tail fell behind a segment GC. The
// applied watermark is never reset — it keeps counting records this
// follower has installed (so it undercounts the primary's LSN from now
// on) — and Position is monotone: the new cursor starts at the
// snapshot's segment, which is strictly after the GCed one. Views keep
// working throughout; the store swap is atomic under applyMu.
func (f *Follower) rebootstrap() error {
	cur, man, err := wal.OpenCursor(f.dir)
	if err != nil {
		return err
	}
	st := store.New()
	n, err := checkpoint.LoadSnapshot(f.dir, man, st, f.par, true)
	if err != nil {
		cur.Close()
		return err
	}
	old := f.cur
	f.applyMu.Lock()
	f.st = st
	f.applyMu.Unlock()
	f.cur = cur
	p := cur.Position()
	f.pos.Store(&p)
	_ = old.Close()
	f.mu.Lock()
	f.snapshotEntries = n
	f.mu.Unlock()
	f.rebootstraps.Add(1)
	// Persist the new baseline promptly: the old StateDir snapshot now
	// predates the GC and would be rejected on restart anyway.
	f.sinceCkpt = f.ckptEvery
	return nil
}

// maybeCheckpoint persists the follower's state to StateDir once enough
// records have been applied since the last checkpoint. The tail
// goroutine is the only store writer, so between applies the store is
// quiescent and the snapshot is exactly consistent with the cursor
// position; concurrent Views only read. A failed checkpoint is not
// terminal — the previous state remains valid, and the next interval
// retries.
func (f *Follower) maybeCheckpoint(applied int) {
	if f.stateDir == "" {
		return
	}
	f.sinceCkpt += applied
	if f.sinceCkpt < f.ckptEvery {
		return
	}
	name := fmt.Sprintf("snap-%06d", f.ckpts+1)
	if _, err := writeSnapshotFile(f.stateDir, name, f.st); err != nil {
		return
	}
	s := followerState{
		Snapshot: name,
		Pos:      f.cur.Position(),
		Applied:  f.applied.Load(),
		Ckpts:    f.ckpts + 1,
	}
	if err := writeState(f.stateDir, s); err != nil {
		_ = os.Remove(filepath.Join(f.stateDir, name))
		return
	}
	if f.lastSnapName != "" && f.lastSnapName != name {
		_ = os.Remove(filepath.Join(f.stateDir, f.lastSnapName))
	}
	f.lastSnapName = name
	f.mu.Lock()
	f.ckpts++
	f.mu.Unlock()
	f.sinceCkpt = 0
}

// pollOnce applies everything newly visible and publishes the resulting
// position and stats, returning how many records it applied.
func (f *Follower) pollOnce() (int, error) {
	n, err := f.cur.Next(f.applyRecord)
	p := f.cur.Position()
	f.pos.Store(&p)
	f.mu.Lock()
	f.tailStats = f.cur.Stats()
	f.mu.Unlock()
	return n, err
}

// applyRecord installs one redo record's ops under the per-key
// highest-TID-wins rule and advances the applied watermark, all inside
// one applyMu critical section — a concurrent View sees either none or
// all of the record, and any view that observes one of its writes
// observes a watermark at or above its LSN.
//
//doppel:hotpath
func (f *Follower) applyRecord(rec wal.Record) error {
	f.applyMu.Lock()
	defer f.applyMu.Unlock()
	for _, op := range rec.Ops {
		sr, _ := f.st.GetOrCreate(op.Key)
		// Optimistic staleness check before paying for the decode, as in
		// checkpoint replay; InstallRecovered re-validates under the
		// record lock.
		if tid, _ := sr.TIDWord(); tid > rec.TID {
			continue
		}
		v, err := store.DecodeValue(op.Value)
		if err != nil {
			return fmt.Errorf("repl: corrupt redo value for %q: %w", op.Key, err)
		}
		sr.InstallRecovered(v, rec.TID)
	}
	f.applied.Add(1)
	return nil
}

// View runs fn against the replica frozen at its applied watermark:
// application is held off for the duration, so every read observes the
// same log prefix. It returns the watermark LSN the view ran at —
// exactly how many records had been applied when fn's reads executed.
// Write operations inside fn fail with ErrReadOnly.
func (f *Follower) View(fn engine.TxFunc) (uint64, error) {
	f.applyMu.RLock()
	defer f.applyMu.RUnlock()
	err := fn(&readTx{st: f.st})
	return f.applied.Load(), err
}

// AppliedLSN returns the applied-record watermark: how many redo
// records the follower has installed, in log order. For a log written
// by a single primary session it equals the primary's LSN for the same
// record, making Durable()-vs-AppliedLSN the replication lag in
// records.
func (f *Follower) AppliedLSN() uint64 { return f.applied.Load() }

// Position returns the log byte position the follower has consumed to;
// it is directly comparable with the primary's DurablePosition across
// primary restarts.
func (f *Follower) Position() wal.Position { return *f.pos.Load() }

// SnapshotEntries returns how many records the bootstrap snapshot held
// (refreshed when a re-bootstrap loads a newer one).
func (f *Follower) SnapshotEntries() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.snapshotEntries
}

// Store exposes the replica's store for equivalence checks; callers
// must treat it as read-only. A re-bootstrap replaces the store, so
// hold no reference across polls when GC is possible.
func (f *Follower) Store() *store.Store {
	f.applyMu.RLock()
	defer f.applyMu.RUnlock()
	return f.st
}

// Err returns the tail loop's terminal error, if any. A non-nil result
// means the follower has stopped applying (sealed-segment corruption,
// manifest damage, or its position was garbage-collected) and must be
// rebuilt from the current checkpoint.
func (f *Follower) Err() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.termErr
}

// Stats returns a point-in-time progress snapshot.
func (f *Follower) Stats() Stats {
	f.mu.Lock()
	ts, terr := f.tailStats, f.termErr
	snapN, ckpts := f.snapshotEntries, f.ckpts
	f.mu.Unlock()
	s := Stats{
		AppliedLSN:      f.applied.Load(),
		Position:        f.Position(),
		SnapshotEntries: snapN,
		Tail:            ts,
		Rebootstraps:    f.rebootstraps.Load(),
		Checkpoints:     ckpts,
		Resumed:         f.resumed,
	}
	if terr != nil {
		s.Err = terr.Error()
	}
	return s
}

// WaitPosition blocks until the follower's applied position reaches at
// least pos, the follower stops or fails, or ctx expires.
func (f *Follower) WaitPosition(ctx context.Context, pos wal.Position) error {
	for {
		if !f.Position().Less(pos) {
			return nil
		}
		if err := f.Err(); err != nil {
			return err
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-f.done:
			// One last check: the loop may have stopped after reaching pos.
			if !f.Position().Less(pos) {
				return nil
			}
			if err := f.Err(); err != nil {
				return err
			}
			return ErrStopped
		case <-time.After(f.poll):
		}
	}
}

// stopLoop halts the tail goroutine and waits for it to exit.
func (f *Follower) stopLoop() {
	f.stopOnce.Do(func() { close(f.stop) })
	<-f.done
}

// Close stops the tail loop and releases the cursor. It does not drain:
// records not yet applied stay in the log.
func (f *Follower) Close() error {
	f.stopLoop()
	return f.cur.Close()
}

// Drain stops the periodic tail loop and synchronously applies every
// record still visible in the log, returning the final position. The
// caller must fence out the primary first (hold the directory lock);
// otherwise new records can land after the final read. The follower no
// longer tails afterwards, but View keeps working — promotion reads the
// drained store through it.
func (f *Follower) Drain() (wal.Position, error) {
	f.stopLoop()
	if err := f.Err(); err != nil {
		return f.Position(), err
	}
	for {
		n, err := f.pollOnce()
		if err != nil {
			f.mu.Lock()
			f.termErr = err
			f.mu.Unlock()
			return f.Position(), err
		}
		if n == 0 {
			return f.Position(), nil
		}
	}
}
