package repl

// Crash-injection tests for the follower tail: the log is truncated at
// every 7th byte (and damaged by sector drops and reorders) and at each
// point the follower must apply exactly the decodable prefix, never a
// byte past the tear, and resume cleanly once the primary re-syncs the
// directory — reopening trims the torn tail and appends fresh records.

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"

	"doppel/internal/engine"
	"doppel/internal/store"
	"doppel/internal/wal"
)

// testPoll keeps test followers snappy.
const testPoll = 100 * time.Microsecond

// replWorkload builds n records: record i sets key "k<i>" to the
// encoded integer i under TID i+1, so any applied prefix is fully
// checkable through a View.
func replWorkload(n int) []wal.Record {
	recs := make([]wal.Record, n)
	for i := range recs {
		recs[i] = wal.Record{
			TID: uint64(i + 1),
			Ops: []wal.Op{{
				Key:   fmt.Sprintf("k%d", i),
				Value: store.EncodeValue(store.IntValue(int64(i))),
			}},
		}
	}
	return recs
}

// encodeAll concatenates the wire encoding of recs.
func encodeAll(recs []wal.Record) []byte {
	var full []byte
	for _, r := range recs {
		full = append(full, wal.EncodeRecord(r)...)
	}
	return full
}

// waitApplied blocks until the follower's watermark reaches want.
func waitApplied(t *testing.T, f *Follower, want uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if f.AppliedLSN() >= want {
			return
		}
		if err := f.Err(); err != nil {
			t.Fatalf("follower failed waiting for %d: %v", want, err)
		}
		time.Sleep(testPoll)
	}
	t.Fatalf("follower stuck at %d, want %d", f.AppliedLSN(), want)
}

// segPath returns the damaged test segment's path inside dir.
func segPath(dir string) string { return filepath.Join(dir, "wal-00000001.log") }

// checkPrefixThenResync drives the shared scenario: dir holds a
// (possibly damaged) segment whose decodable prefix is nPrefix records
// of replWorkload; the follower must settle at exactly nPrefix, then —
// after the primary reopens the directory (trimming the tail) and
// appends post-crash records — catch up and serve both generations.
func checkPrefixThenResync(t *testing.T, dir string, nPrefix int) {
	t.Helper()
	f, err := Open(dir, Options{Poll: testPoll})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	waitApplied(t, f, uint64(nPrefix))
	// The watermark must not move past the tear: give the tail loop many
	// poll intervals to (wrongly) find more, then re-check.
	time.Sleep(2 * time.Millisecond)
	if got := f.AppliedLSN(); got != uint64(nPrefix) {
		t.Fatalf("follower applied %d records, decodable prefix is %d", got, nPrefix)
	}
	if err := f.Err(); err != nil {
		t.Fatalf("live-tail damage must read as torn (retry), not terminal: %v", err)
	}

	// Primary re-sync: reopening trims the torn bytes, then appends.
	l, err := wal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	const nPost = 3
	for i := 0; i < nPost; i++ {
		rec := wal.Record{
			TID: uint64(1000 + i),
			Ops: []wal.Op{{
				Key:   fmt.Sprintf("post%d", i),
				Value: store.EncodeValue(store.IntValue(int64(100 + i))),
			}},
		}
		if err := l.AppendSync(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	waitApplied(t, f, uint64(nPrefix+nPost))

	// The store is exactly prefix + post-crash: surviving keys have
	// their values, torn-off keys never appeared.
	lsn, err := f.View(func(tx engine.Tx) error {
		for i := 0; i < nPrefix; i++ {
			n, err := tx.GetInt(fmt.Sprintf("k%d", i))
			if err != nil || n != int64(i) {
				return fmt.Errorf("k%d = %d, %v; want %d", i, n, err, i)
			}
		}
		for i := nPrefix; i < nPrefix+4; i++ {
			if v, err := tx.Get(fmt.Sprintf("k%d", i)); err != nil || v != nil {
				return fmt.Errorf("k%d exists (%v, %v) beyond the torn tail", i, v, err)
			}
		}
		for i := 0; i < nPost; i++ {
			n, err := tx.GetInt(fmt.Sprintf("post%d", i))
			if err != nil || n != int64(100+i) {
				return fmt.Errorf("post%d = %d, %v; want %d", i, n, err, 100+i)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if lsn != uint64(nPrefix+nPost) {
		t.Fatalf("view watermark %d, want %d", lsn, nPrefix+nPost)
	}
}

// decodablePrefix counts how many whole records of recs fit in the
// first n bytes of their encoding.
func decodablePrefix(recs []wal.Record, n int) int {
	off := 0
	for i, r := range recs {
		off += len(wal.EncodeRecord(r))
		if off > n {
			return i
		}
	}
	return len(recs)
}

// TestFollowerCrashInjectionEveryCut truncates the primary's segment at
// every 7th byte (plus the exact end) and proves, at each point, the
// follower applies exactly the decodable prefix and resumes after the
// primary re-syncs.
func TestFollowerCrashInjectionEveryCut(t *testing.T) {
	recs := replWorkload(12)
	full := encodeAll(recs)
	root := t.TempDir()
	cuts := []int{}
	for cut := 0; cut <= len(full); cut += 7 {
		cuts = append(cuts, cut)
	}
	if cuts[len(cuts)-1] != len(full) {
		cuts = append(cuts, len(full))
	}
	for _, cut := range cuts {
		cut := cut
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			dir := filepath.Join(root, fmt.Sprintf("cut-%d", cut))
			if err := os.MkdirAll(dir, 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(segPath(dir), full[:cut], 0o644); err != nil {
				t.Fatal(err)
			}
			checkPrefixThenResync(t, dir, decodablePrefix(recs, cut))
		})
	}
}

// TestFollowerSectorDamageResync simulates mid-file damage a lying disk
// can leave — a dropped 16-byte span (later bytes shift earlier) and a
// swapped pair of 16-byte spans — in the live segment. Both corrupt the
// frame at the damage point, so the follower treats the spot as a torn
// tail: it applies the records before it, holds, and resumes after the
// primary's reopen trims the junk.
func TestFollowerSectorDamageResync(t *testing.T) {
	recs := replWorkload(12)
	full := encodeAll(recs)
	// Damage starts inside record 5's frame.
	off := 0
	for i := 0; i < 5; i++ {
		off += len(wal.EncodeRecord(recs[i]))
	}
	damageAt := off + 3
	cases := []struct {
		name   string
		mangle func() []byte
	}{
		{"drop", func() []byte {
			out := append([]byte(nil), full[:damageAt]...)
			return append(out, full[damageAt+16:]...)
		}},
		{"swap", func() []byte {
			out := append([]byte(nil), full...)
			copy(out[damageAt:], full[damageAt+16:damageAt+32])
			copy(out[damageAt+16:], full[damageAt:damageAt+16])
			return out
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			if err := os.WriteFile(segPath(dir), tc.mangle(), 0o644); err != nil {
				t.Fatal(err)
			}
			checkPrefixThenResync(t, dir, 5)
		})
	}
}

// TestViewIsReadOnly: every write operation inside a View fails with
// ErrReadOnly and leaves no trace; reads of all value kinds work.
func TestViewIsReadOnly(t *testing.T) {
	dir := t.TempDir()
	l, err := wal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.AppendSync(wal.Record{
		TID: 1,
		Ops: []wal.Op{{Key: "n", Value: store.EncodeValue(store.IntValue(7))}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := Open(dir, Options{Poll: testPoll})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	waitApplied(t, f, 1)
	_, err = f.View(func(tx engine.Tx) error {
		if n, err := tx.GetInt("n"); err != nil || n != 7 {
			return fmt.Errorf("GetInt = %d, %v", n, err)
		}
		if b, err := tx.GetBytes("absent"); err != nil || b != nil {
			return fmt.Errorf("absent GetBytes = %q, %v", b, err)
		}
		if es, err := tx.GetTopK("absent"); err != nil || es != nil {
			return fmt.Errorf("absent GetTopK = %v, %v", es, err)
		}
		writes := map[string]error{
			"Put":        tx.Put("n", store.IntValue(1)),
			"PutInt":     tx.PutInt("n", 1),
			"PutBytes":   tx.PutBytes("n", []byte("x")),
			"Add":        tx.Add("n", 1),
			"Max":        tx.Max("n", 1),
			"Min":        tx.Min("n", 1),
			"Mult":       tx.Mult("n", 2),
			"OPut":       tx.OPut("n", store.Order{}, nil),
			"TopKInsert": tx.TopKInsert("n", 1, nil, 10),
		}
		for op, err := range writes {
			if !errors.Is(err, ErrReadOnly) {
				return fmt.Errorf("%s = %v, want ErrReadOnly", op, err)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// The refused writes left the store untouched.
	if _, err := f.View(func(tx engine.Tx) error {
		n, err := tx.GetInt("n")
		if err != nil || n != 7 {
			return fmt.Errorf("n = %d, %v after refused writes", n, err)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestFollowerSurvivesCheckpointGC: a caught-up follower keeps tailing
// across a checkpoint install that garbage-collects the segments it
// already consumed.
func TestFollowerSurvivesCheckpointGC(t *testing.T) {
	dir := t.TempDir()
	l, err := wal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for _, rec := range replWorkload(6) {
		if err := l.AppendSync(rec); err != nil {
			t.Fatal(err)
		}
	}
	f, err := Open(dir, Options{Poll: testPoll})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	waitApplied(t, f, 6)
	// Checkpoint: rotate, install an (empty, irrelevant to the caught-up
	// follower) snapshot, GC segment 1.
	seq, err := l.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	snap := wal.SnapshotFileName(seq)
	if _, err := wal.WriteFileAtomic(dir, snap, func(w io.Writer) error {
		return store.WriteSnapshot(w, nil)
	}); err != nil {
		t.Fatal(err)
	}
	if err := l.Install(snap, seq); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendSync(wal.Record{
		TID: 100,
		Ops: []wal.Op{{Key: "after", Value: store.EncodeValue(store.IntValue(1))}},
	}); err != nil {
		t.Fatal(err)
	}
	waitApplied(t, f, 7)
	if err := f.Err(); err != nil {
		t.Fatalf("follower failed across checkpoint GC: %v", err)
	}
}
