// Package repl implements WAL-shipping replication: a Follower tails a
// primary's redo-log segment directory and replays it into a local
// store, serving reads frozen at an applied-LSN watermark.
//
// The design leans entirely on contracts the log already keeps, and it
// is worth stating the invariants explicitly because every piece of the
// follower is justified by one of them:
//
//  1. Log order is apply order. The primary's group committer writes
//     whole record frames, in LSN order, append-only. The follower's
//     cursor consumes frames in file order, so the i-th record it
//     applies is the record the primary assigned LSN i (within one
//     primary session over a fresh log; across sessions, byte
//     positions — wal.Position — are the durable coordinate).
//  2. Per-key TIDs are monotone in log order, so replaying through the
//     highest-TID-wins filter (store.Record.InstallRecovered) is
//     idempotent and converges to the primary's state: exactly the
//     property recovery relies on, reused unchanged.
//  3. Only unacknowledged bytes are ever torn. An undecodable frame at
//     the tail of the open segment is either a group commit in flight
//     or a torn tail a primary crash left; both resolve by re-reading
//     from the same offset later (the primary's reopen trims torn
//     bytes before appending new ones). The follower therefore never
//     buffers partial frames across polls and never applies past a
//     torn tail.
//  4. A segment's successor exists only after its seal is durable, so
//     undecodable bytes in a segment whose successor exists are real
//     corruption; the follower fails loudly, like recovery, and
//     cross-checks the manifest's sealed record-count/TID-range
//     metadata at every segment handoff.
//  5. Watermark reads are record-atomic and monotone: the apply loop
//     installs each record's ops and advances the watermark inside one
//     write-locked critical section, and views read under the read
//     lock — so a view observes a prefix of the log, whole records
//     only, and a watermark at least as new as anything it read.
//  6. The checkpoint snapshot plus live segments reconstruct the
//     store (recovery's contract); the follower bootstraps through
//     checkpoint.LoadSnapshot and tails from the manifest's snapshot
//     sequence, so catch-up cost is bounded by checkpoint age, not log
//     age.
//  7. Promotion is recovery at the log's end: fence the primary (the
//     directory flock), drain to EOF, then reopen the log for
//     appending over the already-materialized store. The torn-tail
//     trim at reopen is the "seal": every acknowledged record
//     survives, unacknowledged bytes are discarded.
//
// The follower is deliberately pull-based — it shares no memory with
// the primary and needs nothing from it but the directory. Anything
// that can read the files (eventually, a network fetch layer) can run a
// replica.
package repl
