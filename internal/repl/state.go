package repl

import (
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strings"

	"doppel/internal/store"
	"doppel/internal/wal"
)

// stateName is the follower state manifest inside a state directory. It
// names the newest follower snapshot and the log position (plus applied
// watermark) that snapshot is consistent with, checksummed like the
// primary's MANIFEST.
const stateName = "FOLLOWER"

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// followerState is the durable restart point a follower checkpoint
// records: the snapshot file in the state directory holding the store
// materialized up to Pos, and the watermark counters to resume from.
type followerState struct {
	Snapshot string
	Pos      wal.Position
	Applied  uint64
	Ckpts    uint64
}

// writeState atomically replaces dir's follower state manifest.
func writeState(dir string, s followerState) error {
	body := fmt.Sprintf("doppel-follower-v1\nsnapshot=%s\nseq=%d\noffset=%d\napplied=%d\nckpts=%d\n",
		s.Snapshot, s.Pos.Seq, s.Pos.Offset, s.Applied, s.Ckpts)
	content := body + fmt.Sprintf("crc=%08x\n", crc32.Checksum([]byte(body), castagnoli))
	_, err := wal.WriteFileAtomic(dir, stateName, func(w io.Writer) error {
		_, err := io.WriteString(w, content)
		return err
	})
	return err
}

// readState loads dir's follower state. ok is false with a nil error
// when no state exists yet; a present-but-corrupt state file is an
// error so the caller falls back to a fresh bootstrap deliberately, not
// silently.
func readState(dir string) (s followerState, ok bool, err error) {
	raw, err := os.ReadFile(filepath.Join(dir, stateName))
	if err != nil {
		if os.IsNotExist(err) {
			return followerState{}, false, nil
		}
		return followerState{}, false, err
	}
	content := string(raw)
	i := strings.LastIndex(content, "crc=")
	if i < 0 || !strings.HasSuffix(content, "\n") {
		return followerState{}, false, fmt.Errorf("repl: malformed follower state in %s", dir)
	}
	body, crcLine := content[:i], content[i:]
	var wantCRC uint32
	if n, err := fmt.Sscanf(crcLine, "crc=%08x\n", &wantCRC); n != 1 || err != nil {
		return followerState{}, false, fmt.Errorf("repl: malformed follower state crc in %s", dir)
	}
	if crc32.Checksum([]byte(body), castagnoli) != wantCRC {
		return followerState{}, false, fmt.Errorf("repl: follower state checksum mismatch in %s", dir)
	}
	n, err := fmt.Sscanf(body, "doppel-follower-v1\nsnapshot=%s\nseq=%d\noffset=%d\napplied=%d\nckpts=%d\n",
		&s.Snapshot, &s.Pos.Seq, &s.Pos.Offset, &s.Applied, &s.Ckpts)
	if n != 5 || err != nil {
		return followerState{}, false, fmt.Errorf("repl: malformed follower state body in %s", dir)
	}
	return s, true, nil
}

// writeSnapshotFile streams the store's current entries into name in
// dir, atomically, returning the entry count.
func writeSnapshotFile(dir, name string, st *store.Store) (int, error) {
	var count int
	_, err := wal.WriteFileAtomic(dir, name, func(w io.Writer) error {
		sw, err := store.NewSnapshotWriter(w)
		if err != nil {
			return err
		}
		for _, e := range st.SnapshotEntries() {
			if err := sw.Write(e); err != nil {
				return err
			}
		}
		count = sw.Count()
		return sw.Close()
	})
	return count, err
}

// loadSnapshotFile reads a follower snapshot into st.
func loadSnapshotFile(dir, name string, st *store.Store, par int) (int, error) {
	f, err := os.Open(filepath.Join(dir, name))
	if err != nil {
		return 0, err
	}
	defer f.Close()
	// tidFiltered: suffix records replayed after the snapshot go through
	// the highest-TID-wins filter, same as primary-checkpoint bootstrap.
	return store.ReadSnapshotInto(f, st, par, true)
}
