package repl

import (
	"doppel/internal/store"
)

// readTx implements engine.Tx over a replica's store. Reads go straight
// to the record's current value — the caller (View) holds the apply
// lock, so "current" is a frozen log prefix — and every write returns
// ErrReadOnly.
type readTx struct {
	st *store.Store
}

// get returns the key's value, nil if absent. The Value accessors all
// treat a nil receiver as an absent record, so lookups need no
// existence branching.
func (t *readTx) get(key string) *store.Value {
	r := t.st.Get(key)
	if r == nil {
		return nil
	}
	return r.Value()
}

// Get implements engine.Tx.
func (t *readTx) Get(key string) (*store.Value, error) { return t.get(key), nil }

// GetForUpdate implements engine.Tx; the write-intent hint is
// meaningless without writes, so it is plain Get.
func (t *readTx) GetForUpdate(key string) (*store.Value, error) { return t.get(key), nil }

// GetInt implements engine.Tx.
func (t *readTx) GetInt(key string) (int64, error) { return t.get(key).AsInt() }

// GetIntForUpdate implements engine.Tx.
func (t *readTx) GetIntForUpdate(key string) (int64, error) { return t.get(key).AsInt() }

// GetBytes implements engine.Tx.
func (t *readTx) GetBytes(key string) ([]byte, error) { return t.get(key).AsBytes() }

// GetTuple implements engine.Tx.
func (t *readTx) GetTuple(key string) (store.Tuple, bool, error) { return t.get(key).AsTuple() }

// GetTopK implements engine.Tx.
func (t *readTx) GetTopK(key string) ([]store.TopKEntry, error) {
	tk, err := t.get(key).AsTopK()
	if err != nil {
		return nil, err
	}
	return tk.Entries(), nil
}

// Put implements engine.Tx; it always fails with ErrReadOnly.
func (t *readTx) Put(key string, v *store.Value) error { return ErrReadOnly }

// PutInt implements engine.Tx; it always fails with ErrReadOnly.
func (t *readTx) PutInt(key string, n int64) error { return ErrReadOnly }

// PutBytes implements engine.Tx; it always fails with ErrReadOnly.
func (t *readTx) PutBytes(key string, b []byte) error { return ErrReadOnly }

// Add implements engine.Tx; it always fails with ErrReadOnly.
func (t *readTx) Add(key string, n int64) error { return ErrReadOnly }

// Max implements engine.Tx; it always fails with ErrReadOnly.
func (t *readTx) Max(key string, n int64) error { return ErrReadOnly }

// Min implements engine.Tx; it always fails with ErrReadOnly.
func (t *readTx) Min(key string, n int64) error { return ErrReadOnly }

// Mult implements engine.Tx; it always fails with ErrReadOnly.
func (t *readTx) Mult(key string, n int64) error { return ErrReadOnly }

// OPut implements engine.Tx; it always fails with ErrReadOnly.
func (t *readTx) OPut(key string, order store.Order, data []byte) error { return ErrReadOnly }

// TopKInsert implements engine.Tx; it always fails with ErrReadOnly.
func (t *readTx) TopKInsert(key string, order int64, data []byte, k int) error { return ErrReadOnly }

// WorkerID implements engine.Tx. Views run on the caller's goroutine,
// not an engine worker; 0 keeps any worker-sharded caller logic inert.
func (t *readTx) WorkerID() int { return 0 }
