// Package checkpoint turns the segmented WAL into a bounded-recovery
// durability layer: a checkpointer periodically captures a consistent
// snapshot of the store at a quiesced phase boundary, rotates the log to
// a fresh segment, publishes the snapshot in the log's manifest, and
// garbage-collects the segments the snapshot subsumes. Recovery then
// loads the newest snapshot and replays only the segments written after
// it, so both replay time and disk usage are bounded by the checkpoint
// interval instead of the database's lifetime.
//
// The consistency argument: the cut runs inside a core.DB barrier
// transition, i.e. with every worker paused between transactions and all
// per-core slices reconciled. At that point each committed value is
// visible in the store and its redo record has been submitted to the
// logger, and no commit is in flight. Rotate flushes those records to
// the sealed segments, so snapshot ⊇ every record in segments before the
// cut; records logged after the cut land in newer segments and carry
// per-key TIDs larger than the snapshot's, so replaying them over the
// snapshot is exact.
package checkpoint

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"doppel/internal/core"
	"doppel/internal/store"
	"doppel/internal/wal"
)

// Options configures a Checkpointer.
type Options struct {
	// Every is the background checkpoint interval; 0 disables the
	// background loop (manual Checkpoint calls still work).
	Every time.Duration
}

// Stats is a point-in-time summary of checkpoint activity.
type Stats struct {
	Checkpoints  uint64        // completed checkpoints
	Failures     uint64        // failed checkpoint attempts
	LastSeq      uint64        // first live segment after the last checkpoint
	LastEntries  int           // records in the last snapshot
	LastBytes    int64         // size of the last snapshot file
	LastBarrier  time.Duration // time workers were stalled by the last cut
	LastDuration time.Duration // wall time of the last checkpoint
	LastError    string        // message of the last failure, if any
}

// Checkpointer drives snapshot+rotate checkpoints for one database and
// its logger.
type Checkpointer struct {
	db  *core.DB
	log *wal.Logger

	ckptMu sync.Mutex // serializes checkpoints; held across Close's drain
	mu     sync.Mutex // guards stats
	stats  Stats

	closed atomic.Bool
	stop   chan struct{}
	done   chan struct{}
}

// New returns a checkpointer for db and log. When opts.Every > 0 a
// background goroutine checkpoints at that interval until Close.
func New(db *core.DB, log *wal.Logger, opts Options) *Checkpointer {
	c := &Checkpointer{db: db, log: log, stop: make(chan struct{}), done: make(chan struct{})}
	if opts.Every > 0 {
		go c.loop(opts.Every)
	} else {
		close(c.done)
	}
	return c
}

func (c *Checkpointer) loop(every time.Duration) {
	defer close(c.done)
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			_ = c.Checkpoint() // failures are recorded in Stats
		}
	}
}

// Stats returns a copy of the checkpointer's counters.
func (c *Checkpointer) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

func (c *Checkpointer) fail(err error) error {
	c.mu.Lock()
	c.stats.Failures++
	c.stats.LastError = err.Error()
	c.mu.Unlock()
	return err
}

// cut is what the barrier captures: the rotation point and the store
// contents at the quiesced boundary.
type cut struct {
	seq     uint64
	entries []store.SnapshotEntry
	barrier time.Duration
	err     error
}

// Checkpoint performs one checkpoint now: cut at a barrier, write the
// snapshot, install it in the manifest, garbage-collect. It blocks until
// the checkpoint is durable (or failed). Workers must be running (being
// polled) for the barrier to complete.
func (c *Checkpointer) Checkpoint() error {
	c.ckptMu.Lock()
	defer c.ckptMu.Unlock()
	if c.closed.Load() {
		return errors.New("checkpoint: checkpointer closed")
	}
	start := time.Now()

	// Publish the barrier; retry while another phase transition is in
	// flight. Once published it is guaranteed to run (workers complete
	// it as they poll; core.DB.Close completes it during quiesce).
	cutCh := make(chan cut, 1)
	for !c.db.RequestBarrier(func() {
		t0 := time.Now()
		seq, err := c.log.Rotate()
		if err != nil {
			cutCh <- cut{err: err}
			return
		}
		// Values are immutable: collecting pointers is all the barrier
		// needs; encoding and file I/O happen after workers resume.
		cutCh <- cut{
			seq:     seq,
			entries: c.db.Store().SnapshotEntries(),
			barrier: time.Since(t0),
		}
	}) {
		if c.closed.Load() {
			return errors.New("checkpoint: checkpointer closed")
		}
		time.Sleep(50 * time.Microsecond)
	}
	cu := <-cutCh
	if cu.err != nil {
		return c.fail(fmt.Errorf("checkpoint: rotate: %w", cu.err))
	}

	name := wal.SnapshotFileName(cu.seq)
	size, err := wal.WriteFileAtomic(c.log.Dir(), name, func(w io.Writer) error {
		return store.WriteSnapshot(w, cu.entries)
	})
	if err != nil {
		return c.fail(fmt.Errorf("checkpoint: snapshot: %w", err))
	}
	if err := c.log.Install(name, cu.seq); err != nil {
		return c.fail(fmt.Errorf("checkpoint: install: %w", err))
	}

	c.mu.Lock()
	c.stats.Checkpoints++
	c.stats.LastSeq = cu.seq
	c.stats.LastEntries = len(cu.entries)
	c.stats.LastBytes = size
	c.stats.LastBarrier = cu.barrier
	c.stats.LastDuration = time.Since(start)
	c.stats.LastError = ""
	c.mu.Unlock()
	return nil
}

// Close stops the background loop and waits for any in-flight
// checkpoint. It must be called while the database's workers are still
// being driven (before core.DB.Close), so an in-flight barrier can
// complete.
func (c *Checkpointer) Close() {
	if c.closed.Swap(true) {
		return
	}
	close(c.stop)
	<-c.done
	c.ckptMu.Lock() // wait out an in-flight manual Checkpoint
	c.ckptMu.Unlock()
}

// Recovered is the durable state read back from a log directory.
type Recovered struct {
	Manifest wal.Manifest
	Snapshot []store.SnapshotEntry // entries of the manifest's snapshot
	Records  []wal.Record          // live-segment records, log order
	Segments []wal.SegmentInfo     // the segments those records came from
}

// Load reads dir's manifest, snapshot and live segments. It fails
// loudly on a corrupt manifest or snapshot (both are published
// atomically, so corruption means real damage) and tolerates only a
// torn tail in the newest segment.
func Load(dir string) (*Recovered, error) {
	man, recs, segs, err := wal.ReplayDir(dir)
	if err != nil {
		return nil, err
	}
	r := &Recovered{Manifest: man, Records: recs, Segments: segs}
	if man.Snapshot != "" {
		f, err := os.Open(filepath.Join(dir, man.Snapshot))
		if err != nil {
			return nil, fmt.Errorf("checkpoint: manifest names missing snapshot: %w", err)
		}
		r.Snapshot, err = store.ReadSnapshot(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("checkpoint: %s: %w", man.Snapshot, err)
		}
	}
	return r, nil
}

// BuildStore materializes the recovered state: snapshot entries first,
// then redo records in log order. A record's op applies only when its
// TID exceeds the key's current TID, which both deduplicates records the
// snapshot already covers and keeps replay idempotent.
func (r *Recovered) BuildStore() (*store.Store, error) {
	st := store.New()
	for _, e := range r.Snapshot {
		st.PreloadTID(e.Key, e.Value, e.TID)
	}
	for _, rec := range r.Records {
		for _, op := range rec.Ops {
			sr, _ := st.GetOrCreate(op.Key)
			tid, _ := sr.TIDWord()
			if tid >= rec.TID {
				continue
			}
			v, err := store.DecodeValue(op.Value)
			if err != nil {
				return nil, fmt.Errorf("checkpoint: corrupt redo value for %q: %w", op.Key, err)
			}
			sr.SetValue(v)
			sr.SetTID(rec.TID)
		}
	}
	return st, nil
}
