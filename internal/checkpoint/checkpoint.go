package checkpoint

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"doppel/internal/core"
	"doppel/internal/store"
	"doppel/internal/wal"
)

// Options configures a Checkpointer.
type Options struct {
	// Every is the background checkpoint interval; 0 disables the
	// background loop (manual Checkpoint calls still work).
	Every time.Duration
	// FrameBuffer is how many snapshot entries may sit between the
	// store walker and the file writer of a streaming checkpoint. It
	// bounds the checkpoint's memory footprint: the walk never
	// materializes the store, it stays at most FrameBuffer entries
	// ahead of the bytes on disk. 0 means defaultFrameBuffer.
	FrameBuffer int
}

// defaultFrameBuffer is the walker→writer channel capacity when
// Options.FrameBuffer is zero: deep enough to ride out fsync hiccups,
// shallow enough that a checkpoint holds only ~a thousand entry headers
// (values are shared pointers, not copies) regardless of store size.
const defaultFrameBuffer = 1024

// Stats is a point-in-time summary of checkpoint activity.
type Stats struct {
	Checkpoints  uint64        // completed checkpoints
	Failures     uint64        // failed checkpoint attempts
	LastSeq      uint64        // first live segment after the last checkpoint
	LastEntries  int           // records in the last snapshot
	LastBytes    int64         // size of the last snapshot file
	LastBarrier  time.Duration // time workers were stalled by the last cut (O(1), not O(records))
	LastWalk     time.Duration // duration of the last concurrent streaming walk (includes snapshot-writer backpressure)
	LastCOWSaves int           // records whose barrier value a concurrent writer had to copy
	LastDuration time.Duration // wall time of the last checkpoint
	LastError    string        // message of the last failure, if any
}

// Checkpointer drives snapshot+rotate checkpoints for one database and
// its logger.
type Checkpointer struct {
	db     *core.DB
	log    *wal.Logger
	frames int // walker→writer channel capacity

	ckptMu sync.Mutex // serializes checkpoints; held across Close's drain
	mu     sync.Mutex // guards stats
	stats  Stats

	closed atomic.Bool
	stop   chan struct{}
	done   chan struct{}
}

// New returns a checkpointer for db and log. When opts.Every > 0 a
// background goroutine checkpoints at that interval until Close.
func New(db *core.DB, log *wal.Logger, opts Options) *Checkpointer {
	c := &Checkpointer{db: db, log: log, frames: opts.FrameBuffer,
		stop: make(chan struct{}), done: make(chan struct{})}
	if c.frames <= 0 {
		c.frames = defaultFrameBuffer
	}
	if opts.Every > 0 {
		go c.loop(opts.Every)
	} else {
		close(c.done)
	}
	return c
}

func (c *Checkpointer) loop(every time.Duration) {
	defer close(c.done)
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			_ = c.Checkpoint() // failures are recorded in Stats
		}
	}
}

// Stats returns a copy of the checkpointer's counters.
func (c *Checkpointer) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

func (c *Checkpointer) fail(err error) error {
	c.mu.Lock()
	c.stats.Failures++
	c.stats.LastError = err.Error()
	c.mu.Unlock()
	return err
}

// cut is what the barrier captures: the rotation point and the handle
// of the copy-on-write capture started at the quiesced boundary.
type cut struct {
	seq     uint64
	cap     *store.Capture
	barrier time.Duration
	err     error
}

// Checkpoint performs one checkpoint now: start an incremental
// copy-on-write cut at a barrier, walk the store concurrently with the
// resumed workers, write the snapshot, install it in the manifest,
// garbage-collect. It blocks until the checkpoint is durable (or
// failed). Workers must be running (being polled) for the barrier to
// complete.
//
// The barrier itself is O(1): it rotates the log (a bounded flush of
// records already submitted) and installs a capture generation. The
// O(records) work — walking the store, encoding, file I/O — happens
// after the workers resume; writers that beat the walk to a record copy
// its pre-barrier value aside first (store.SaveBeforeWrite), so the
// assembled snapshot is exactly the store's state at the barrier.
func (c *Checkpointer) Checkpoint() error {
	c.ckptMu.Lock()
	defer c.ckptMu.Unlock()
	if c.closed.Load() {
		return errors.New("checkpoint: checkpointer closed")
	}
	start := time.Now()

	// Publish the barrier; retry while another phase transition is in
	// flight. Once published it is guaranteed to run (workers complete
	// it as they poll; core.DB.Close completes it during quiesce).
	cutCh := make(chan cut, 1)
	for !c.db.RequestBarrier(func() {
		t0 := time.Now()
		seq, err := c.log.Rotate()
		if err != nil {
			cutCh <- cut{err: err}
			return
		}
		cutCh <- cut{
			seq:     seq,
			cap:     c.db.Store().StartCapture(),
			barrier: time.Since(t0),
		}
	}) {
		if c.closed.Load() {
			return errors.New("checkpoint: checkpointer closed")
		}
		time.Sleep(50 * time.Microsecond)
	}
	cu := <-cutCh
	if cu.err != nil {
		return c.fail(fmt.Errorf("checkpoint: rotate: %w", cu.err))
	}

	// Stream the walk straight to disk: the walker goroutine resolves
	// capture claims shard by shard and feeds entries through a bounded
	// channel to this goroutine, which encodes and writes them as they
	// arrive. Memory stays O(frame buffer + copy-on-write saves) instead
	// of O(store). The walker always runs the capture to completion —
	// even if the writer fails, the writer keeps draining the channel —
	// so the capture is deactivated and writers stop paying the
	// copy-on-write hook on every exit path.
	type walkOut struct {
		entries  int
		cowSaves int
		walk     time.Duration
	}
	entryCh := make(chan store.SnapshotEntry, c.frames)
	walkCh := make(chan walkOut, 1)
	go func() {
		walkStart := time.Now()
		n := 0
		cowSaves, _ := c.db.Store().StreamCapture(cu.cap, func(e store.SnapshotEntry) error {
			entryCh <- e
			n++
			return nil
		})
		close(entryCh)
		walkCh <- walkOut{entries: n, cowSaves: cowSaves, walk: time.Since(walkStart)}
	}()
	name := wal.SnapshotFileName(cu.seq)
	size, err := wal.WriteFileAtomic(c.log.Dir(), name, func(w io.Writer) error {
		sw, err := store.NewSnapshotWriter(w)
		for e := range entryCh {
			if err == nil {
				err = sw.Write(e)
			}
			// On error keep draining so the walker never blocks.
		}
		if err != nil {
			return err
		}
		return sw.Close()
	})
	for range entryCh {
		// WriteFileAtomic can fail before its callback runs (e.g. the
		// temporary file cannot be created); unblock the walker then too.
	}
	wo := <-walkCh
	if err != nil {
		return c.fail(fmt.Errorf("checkpoint: snapshot: %w", err))
	}
	if err := c.log.Install(name, cu.seq); err != nil {
		return c.fail(fmt.Errorf("checkpoint: install: %w", err))
	}

	c.mu.Lock()
	c.stats.Checkpoints++
	c.stats.LastSeq = cu.seq
	c.stats.LastEntries = wo.entries
	c.stats.LastBytes = size
	c.stats.LastBarrier = cu.barrier
	c.stats.LastWalk = wo.walk
	c.stats.LastCOWSaves = wo.cowSaves
	c.stats.LastDuration = time.Since(start)
	c.stats.LastError = ""
	c.mu.Unlock()
	return nil
}

// Close stops the background loop and waits for any in-flight
// checkpoint. It must be called while the database's workers are still
// being driven (before core.DB.Close), so an in-flight barrier can
// complete.
func (c *Checkpointer) Close() {
	if c.closed.Swap(true) {
		return
	}
	close(c.stop)
	<-c.done
	c.ckptMu.Lock() // wait out an in-flight manual Checkpoint
	c.ckptMu.Unlock()
}

// Recovered is the durable state read back from a log directory.
type Recovered struct {
	Manifest wal.Manifest
	Snapshot []store.SnapshotEntry // entries of the manifest's snapshot
	Records  []wal.Record          // live-segment records, log order
	Segments []wal.SegmentInfo     // the segments those records came from
}

// Load reads dir's manifest, snapshot and live segments. It fails
// loudly on a corrupt manifest or snapshot (both are published
// atomically, so corruption means real damage) and tolerates only a
// torn tail in the newest segment.
func Load(dir string) (*Recovered, error) {
	man, recs, segs, err := wal.ReplayDir(dir)
	if err != nil {
		return nil, err
	}
	r := &Recovered{Manifest: man, Records: recs, Segments: segs}
	if man.Snapshot != "" {
		f, err := os.Open(filepath.Join(dir, man.Snapshot))
		if err != nil {
			return nil, fmt.Errorf("checkpoint: manifest names missing snapshot: %w", err)
		}
		r.Snapshot, err = store.ReadSnapshot(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("checkpoint: %s: %w", man.Snapshot, err)
		}
	}
	return r, nil
}

// BuildStore materializes the recovered state: snapshot entries first,
// then redo records in log order. A record's op applies only when its
// TID exceeds the key's current TID, which both deduplicates records the
// snapshot already covers and keeps replay idempotent.
func (r *Recovered) BuildStore() (*store.Store, error) {
	st := store.New()
	for _, e := range r.Snapshot {
		st.PreloadTID(e.Key, e.Value, e.TID)
	}
	for _, rec := range r.Records {
		if err := applyRecord(st, rec); err != nil {
			return nil, err
		}
	}
	return st, nil
}

// applyRecord applies one redo record to st under the highest-TID-wins
// rule, atomically per key. Because per-key TIDs are unique and
// monotone in commit order, applying any set of records in any order —
// including concurrently from several goroutines — converges to the
// same state as sequential log-order replay.
func applyRecord(st *store.Store, rec wal.Record) error {
	for _, op := range rec.Ops {
		sr, _ := st.GetOrCreate(op.Key)
		// Optimistic staleness check before paying for the decode; on
		// skewed logs most records lose to the snapshot or a newer record.
		// InstallIfNewer re-validates under the record lock, so a racing
		// concurrent install cannot break the highest-TID-wins merge.
		if tid, _ := sr.TIDWord(); tid >= rec.TID {
			continue
		}
		v, err := store.DecodeValue(op.Value)
		if err != nil {
			return fmt.Errorf("checkpoint: corrupt redo value for %q: %w", op.Key, err)
		}
		sr.InstallIfNewer(v, rec.TID)
	}
	return nil
}

// LoadOptions tunes LoadStore.
type LoadOptions struct {
	// Parallelism caps the goroutines used for snapshot decoding and
	// segment replay; values below 1 mean runtime.GOMAXPROCS(0).
	Parallelism int
	// Overlap starts segment replay concurrently with the snapshot
	// load instead of after it. Snapshot entries then install through a
	// per-key TID filter (highest TID wins, like replay itself), so the
	// merge is correct in any arrival order: a redo record for a key
	// always carries a higher TID than the snapshot's entry for it.
	Overlap bool
}

// LoadResult summarizes what LoadStore read.
type LoadResult struct {
	Manifest        wal.Manifest
	SnapshotEntries int               // records restored from the snapshot
	Segments        []wal.SegmentInfo // live segments replayed, with record counts
	Records         int               // redo records replayed from those segments
	Parallelism     int               // goroutines actually configured
	Overlapped      bool              // snapshot load and segment replay ran concurrently
}

// LoadStore reads dir and materializes the recovered store with
// parallel replay: the snapshot decodes on N goroutines sharded by key,
// and live segments replay concurrently, each applied under the
// highest-TID-wins rule with per-record atomicity (see applyRecord).
// Without opts.Overlap the snapshot is fully loaded first (preloading
// is then unconditional); with it, segment replay starts immediately
// and the snapshot installs through the same per-key TID filter.
// The manifest's sealed-segment metadata, where present, is used as a
// corruption check: a sealed segment must replay to exactly the record
// count and TID range it sealed with. Corruption semantics otherwise
// match Load: only the newest segment may end in a torn tail.
func LoadStore(dir string, opts LoadOptions) (*store.Store, LoadResult, error) {
	par := opts.Parallelism
	if par < 1 {
		par = runtime.GOMAXPROCS(0)
	}
	res := LoadResult{Parallelism: par}
	man, segs, err := wal.LiveSegments(dir)
	if err != nil {
		return nil, res, err
	}
	res.Manifest = man
	// Overlap is only real when there is a snapshot for segment replay
	// to run concurrently with; report what actually happened.
	res.Overlapped = opts.Overlap && man.Snapshot != ""
	st := store.New()
	snapDone := make(chan error, 1)
	snapDone <- nil // replaced below when there is a snapshot to load
	if man.Snapshot != "" {
		loadSnap := func() error {
			n, err := LoadSnapshot(dir, man, st, par, opts.Overlap)
			if err != nil {
				return err
			}
			res.SnapshotEntries = n
			return nil
		}
		<-snapDone
		if opts.Overlap {
			// Segment replay proceeds below while the snapshot loads;
			// the TID-filtered install makes the interleaving safe.
			go func() { snapDone <- loadSnap() }()
		} else {
			if err := loadSnap(); err != nil {
				return nil, res, err
			}
			snapDone <- nil
		}
	}

	// Replay live segments concurrently. Each worker streams one segment
	// from disk and applies its records; decoding and application of
	// different segments overlap, and the TID filter makes the merge
	// order-independent.
	var (
		mu       sync.Mutex
		firstErr error
		workers  = par
	)
	if workers > len(segs) {
		workers = len(segs)
	}
	setErr := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				n, err := replaySegmentInto(st, segs[i], man.SealedFor(segs[i].Seq), i == len(segs)-1)
				if err != nil {
					setErr(err)
					continue
				}
				segs[i].Records = n
			}
		}()
	}
	for i := range segs {
		mu.Lock()
		stop := firstErr != nil
		mu.Unlock()
		if stop {
			break
		}
		work <- i
	}
	close(work)
	wg.Wait()
	if err := <-snapDone; err != nil && firstErr == nil {
		firstErr = err
	}
	if firstErr != nil {
		return nil, res, firstErr
	}
	res.Segments = segs
	for _, s := range segs {
		res.Records += s.Records
	}
	return st, res, nil
}

// LoadSnapshot loads the snapshot file named by man into st with
// par-way parallel decode (values below 1 mean GOMAXPROCS) and returns
// the entry count. tidFiltered selects the per-key highest-TID-wins
// install filter (see store.ReadSnapshotInto) — required whenever redo
// records may install into st before or concurrently with the snapshot,
// as in overlapped recovery and a replication follower's catch-up. A
// manifest naming no snapshot is a no-op. Exposed so a follower can
// bootstrap from the checkpoint exactly the way recovery does.
func LoadSnapshot(dir string, man wal.Manifest, st *store.Store, par int, tidFiltered bool) (int, error) {
	if man.Snapshot == "" {
		return 0, nil
	}
	if par < 1 {
		par = runtime.GOMAXPROCS(0)
	}
	f, err := os.Open(filepath.Join(dir, man.Snapshot))
	if err != nil {
		return 0, fmt.Errorf("checkpoint: manifest names missing snapshot: %w", err)
	}
	defer f.Close()
	n, err := store.ReadSnapshotInto(f, st, par, tidFiltered)
	if err != nil {
		return 0, fmt.Errorf("checkpoint: %s: %w", man.Snapshot, err)
	}
	return n, nil
}

// replaySegmentInto replays one segment into st and returns its record
// count. meta, when non-nil, is the manifest's sealed metadata for the
// segment and must match what the file replays to.
func replaySegmentInto(st *store.Store, seg wal.SegmentInfo, meta *wal.SegmentMeta, newest bool) (int, error) {
	recs, torn, err := wal.ReplaySegment(seg.Path)
	if err != nil {
		return 0, err
	}
	if torn && !newest {
		return 0, fmt.Errorf("wal: corrupt record in sealed segment %s", seg.Path)
	}
	if meta != nil {
		if check := wal.MetaFor(seg.Seq, recs); check != *meta {
			return 0, fmt.Errorf(
				"wal: sealed segment %s replays to %d records TIDs [%d,%d], manifest sealed it with %d records TIDs [%d,%d]",
				seg.Path, check.Records, check.MinTID, check.MaxTID, meta.Records, meta.MinTID, meta.MaxTID)
		}
	}
	for _, rec := range recs {
		if err := applyRecord(st, rec); err != nil {
			return 0, err
		}
	}
	return len(recs), nil
}
