package checkpoint

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"doppel/internal/core"
	"doppel/internal/engine"
	"doppel/internal/store"
	"doppel/internal/wal"
)

// harness drives a coordinator-less core.DB whose workers are polled
// from the test goroutine, the way checkpoint barriers require.
type harness struct {
	t   *testing.T
	db  *core.DB
	log *wal.Logger
}

func newHarness(t *testing.T, workers int) *harness {
	t.Helper()
	log, err := wal.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig(workers)
	cfg.PhaseLength = 0
	cfg.Redo = log
	return &harness{t: t, db: core.Open(store.New(), cfg), log: log}
}

func (h *harness) commit(w int, fn engine.TxFunc) {
	h.t.Helper()
	for i := 0; i < 10000; i++ {
		out, err := h.db.Attempt(w, fn, time.Now().UnixNano())
		if err != nil {
			h.t.Fatalf("attempt: %v", err)
		}
		if out == engine.Committed {
			return
		}
	}
	h.t.Fatal("never committed")
}

// checkpoint runs c.Checkpoint while polling every worker so the
// barrier can complete.
func (h *harness) checkpoint(c *Checkpointer) error {
	h.t.Helper()
	errCh := make(chan error, 1)
	go func() { errCh <- c.Checkpoint() }()
	for {
		select {
		case err := <-errCh:
			return err
		default:
			for w := 0; w < h.db.Workers(); w++ {
				h.db.Poll(w)
			}
			time.Sleep(50 * time.Microsecond)
		}
	}
}

func TestCheckpointRotateInstallRecover(t *testing.T) {
	h := newHarness(t, 2)
	defer h.log.Close()
	for i := 0; i < 10; i++ {
		key := fmt.Sprintf("k%d", i)
		n := int64(i)
		h.commit(i%2, func(tx engine.Tx) error { return tx.PutInt(key, n) })
	}
	c := New(h.db, h.log, Options{})
	defer c.Close()
	if err := h.checkpoint(c); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Checkpoints != 1 || st.Failures != 0 {
		t.Fatalf("stats: %+v", st)
	}
	if st.LastSeq != 2 {
		t.Fatalf("rotation landed on segment %d, want 2", st.LastSeq)
	}
	if st.LastEntries != 10 {
		t.Fatalf("snapshot has %d entries, want 10", st.LastEntries)
	}
	if st.LastBytes <= 0 {
		t.Fatalf("snapshot size %d", st.LastBytes)
	}

	// Post-checkpoint traffic lands in the new segment only.
	h.commit(0, func(tx engine.Tx) error { return tx.PutInt("k3", 333) })
	h.commit(1, func(tx engine.Tx) error { return tx.PutInt("new", 1) })
	h.db.Close()
	if err := h.log.Close(); err != nil {
		t.Fatal(err)
	}

	rec, err := Load(h.log.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if rec.Manifest.Snapshot != wal.SnapshotFileName(2) || rec.Manifest.SnapshotSeq != 2 {
		t.Fatalf("manifest: %+v", rec.Manifest)
	}
	if len(rec.Snapshot) != 10 {
		t.Fatalf("snapshot entries: %d", len(rec.Snapshot))
	}
	if len(rec.Segments) != 1 || rec.Segments[0].Seq != 2 {
		t.Fatalf("bounded replay violated: live segments %+v", rec.Segments)
	}
	if len(rec.Records) != 2 {
		t.Fatalf("replayed %d records, want only the 2 post-checkpoint ones", len(rec.Records))
	}
	built, err := rec.BuildStore()
	if err != nil {
		t.Fatal(err)
	}
	wantInt := func(key string, want int64) {
		t.Helper()
		r := built.Get(key)
		if r == nil {
			t.Fatalf("%s missing after recovery", key)
		}
		n, err := r.Value().AsInt()
		if err != nil || n != want {
			t.Fatalf("%s = %d (%v), want %d", key, n, err, want)
		}
	}
	for i := 0; i < 10; i++ {
		if i == 3 {
			continue
		}
		wantInt(fmt.Sprintf("k%d", i), int64(i))
	}
	wantInt("k3", 333) // post-snapshot record overrides snapshot value
	wantInt("new", 1)
}

// TestBuildStoreSkipsStaleRecords: replay applies a redo record only
// when its TID advances past the key's snapshot TID, so records the
// snapshot already covers are no-ops.
func TestBuildStoreSkipsStaleRecords(t *testing.T) {
	r := &Recovered{
		Snapshot: []store.SnapshotEntry{{Key: "k", TID: 500, Value: store.IntValue(42)}},
		Records: []wal.Record{
			{TID: 400, Ops: []wal.Op{{Key: "k", Value: store.EncodeValue(store.IntValue(1))}}},
			{TID: 600, Ops: []wal.Op{{Key: "j", Value: store.EncodeValue(store.IntValue(2))}}},
		},
	}
	st, err := r.BuildStore()
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := st.Get("k").Value().AsInt(); n != 42 {
		t.Fatalf("stale record applied: k=%d", n)
	}
	if n, _ := st.Get("j").Value().AsInt(); n != 2 {
		t.Fatalf("fresh record dropped: j=%d", n)
	}
	if tid, _ := st.Get("k").TIDWord(); tid != 500 {
		t.Fatalf("k TID %d, want 500", tid)
	}
}

// barrier publishes a checkpoint-style barrier running fn at the
// quiesced boundary and polls every worker until it has completed.
func (h *harness) barrier(fn func()) {
	h.t.Helper()
	done := make(chan struct{})
	for !h.db.RequestBarrier(func() { fn(); close(done) }) {
		time.Sleep(50 * time.Microsecond)
	}
	for {
		select {
		case <-done:
			return
		default:
			for w := 0; w < h.db.Workers(); w++ {
				h.db.Poll(w)
			}
			time.Sleep(50 * time.Microsecond)
		}
	}
}

// TestIncrementalCutEqualsBarrierState is the engine-level
// copy-on-write property test (run with -race): writers keep committing
// through the engine while the walk runs, and the capture must equal
// the store state observed inside the barrier, byte for byte and TID
// for TID.
func TestIncrementalCutEqualsBarrierState(t *testing.T) {
	const workers = 3
	const keys = 200
	h := newHarness(t, workers)
	defer h.log.Close()
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("k%d", i)
		n := int64(i)
		h.commit(i%workers, func(tx engine.Tx) error { return tx.PutInt(key, n) })
	}

	// The barrier snapshots the expected state the expensive way —
	// O(records) inside the barrier is fine for a test oracle — and
	// starts the capture that must reproduce it.
	var want []store.SnapshotEntry
	var capt *store.Capture
	h.barrier(func() {
		want = h.db.Store().SnapshotEntries()
		capt = h.db.Store().StartCapture()
	})

	// Overwrite some keys through the engine before the walk starts, so
	// the writer-side copy path is exercised deterministically: their
	// barrier values can only come from copy-on-write saves.
	const preWalkWrites = 20
	for i := 0; i < preWalkWrites; i++ {
		key := fmt.Sprintf("k%d", i)
		h.commit(i%workers, func(tx engine.Tx) error { return tx.Add(key, 1000) })
	}

	// Hammer the store through the engine while collecting: every commit
	// goes through the copy-on-write hook.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				key := fmt.Sprintf("k%d", (i*13+w)%keys)
				fn := func(tx engine.Tx) error { return tx.Add(key, 1) }
				out, err := h.db.Attempt(w, fn, time.Now().UnixNano())
				if err != nil {
					t.Error(err)
					return
				}
				_ = out // aborts and pauses just retry on the next loop
			}
		}(w)
	}
	entries, cowSaves := h.db.Store().CollectCapture(capt)
	close(stop)
	wg.Wait()
	if cowSaves < preWalkWrites {
		t.Fatalf("%d copy-on-write saves, want at least the %d pre-walk overwrites", cowSaves, preWalkWrites)
	}

	wantByKey := map[string]store.SnapshotEntry{}
	for _, e := range want {
		if e.Value != nil {
			wantByKey[e.Key] = e
		}
	}
	if len(entries) != len(wantByKey) {
		t.Fatalf("captured %d entries, want %d", len(entries), len(wantByKey))
	}
	for _, e := range entries {
		we, ok := wantByKey[e.Key]
		if !ok {
			t.Fatalf("capture has unexpected key %q", e.Key)
		}
		if e.TID != we.TID || e.Value != we.Value {
			t.Fatalf("key %q: captured (tid=%d, %p), barrier state (tid=%d, %p)",
				e.Key, e.TID, e.Value, we.TID, we.Value)
		}
	}
	t.Logf("capture matched barrier state; %d records were writer-copied", cowSaves)
}

// TestCrashMidIncrementalCheckpoint simulates a crash between the
// incremental cut and the manifest install: the rotation and the
// snapshot file (or its temporary) may exist, but the manifest still
// names the previous checkpoint. Recovery must come up from the prior
// snapshot plus every segment after it, and the next Install must
// garbage-collect the orphan files.
func TestCrashMidIncrementalCheckpoint(t *testing.T) {
	h := newHarness(t, 2)
	for i := 0; i < 10; i++ {
		key := fmt.Sprintf("k%d", i)
		h.commit(i%2, func(tx engine.Tx) error { return tx.PutInt(key, 1) })
	}
	c := New(h.db, h.log, Options{})
	if err := h.checkpoint(c); err != nil { // checkpoint #1 completes
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		key := fmt.Sprintf("k%d", i)
		h.commit(i%2, func(tx engine.Tx) error { return tx.PutInt(key, 2) })
	}

	// Checkpoint #2 up to — but not including — Install, mirroring
	// Checkpoint's own sequence: rotate + capture at a barrier, walk,
	// write the snapshot file. Then "crash".
	var seq uint64
	var capt *store.Capture
	h.barrier(func() {
		var err error
		seq, err = h.log.Rotate()
		if err != nil {
			t.Error(err)
			return
		}
		capt = h.db.Store().StartCapture()
	})
	if capt == nil {
		t.Fatal("barrier did not run")
	}
	entries, _ := h.db.Store().CollectCapture(capt)
	if _, err := wal.WriteFileAtomic(h.log.Dir(), wal.SnapshotFileName(seq), func(w io.Writer) error {
		return store.WriteSnapshot(w, entries)
	}); err != nil {
		t.Fatal(err)
	}
	// A leftover temporary from an even-earlier crash point.
	if err := os.WriteFile(filepath.Join(h.log.Dir(), "snapshot-junk.db.tmp"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	c.Close()
	h.db.Close()
	if err := h.log.Close(); err != nil {
		t.Fatal(err)
	}

	// Recovery: manifest still names checkpoint #1's snapshot; replay
	// must start there and cross the mid-checkpoint rotation.
	rec, err := Load(h.log.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if rec.Manifest.Snapshot == wal.SnapshotFileName(seq) {
		t.Fatal("aborted checkpoint's snapshot reached the manifest")
	}
	built, err := rec.BuildStore()
	if err != nil {
		t.Fatal(err)
	}
	st, res, err := LoadStore(h.log.Dir(), LoadOptions{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Records == 0 || len(res.Segments) < 2 {
		t.Fatalf("parallel load did not cross the aborted rotation: %+v", res)
	}
	for i := 0; i < 10; i++ {
		key := fmt.Sprintf("k%d", i)
		for name, s := range map[string]*store.Store{"sequential": built, "parallel": st} {
			r := s.Get(key)
			if r == nil {
				t.Fatalf("%s: %s missing", name, key)
			}
			if n, _ := r.Value().AsInt(); n != 2 {
				t.Fatalf("%s: %s = %d, want 2", name, key, n)
			}
		}
	}

	// The next completed checkpoint must collect the orphan snapshot and
	// the stray temporary.
	log2, err := wal.Open(h.log.Dir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig(1)
	cfg.PhaseLength = 0
	cfg.Redo = log2
	db2 := core.Open(st, cfg)
	h2 := &harness{t: t, db: db2, log: log2}
	c2 := New(db2, log2, Options{})
	if err := h2.checkpoint(c2); err != nil {
		t.Fatal(err)
	}
	c2.Close()
	db2.Close()
	if err := log2.Close(); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(h.log.Dir())
	if err != nil {
		t.Fatal(err)
	}
	man, _, err := wal.ReadManifest(h.log.Dir())
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range ents {
		name := ent.Name()
		if filepath.Ext(name) == ".tmp" {
			t.Fatalf("stray temporary %s survived the next checkpoint", name)
		}
		if name != man.Snapshot && len(name) > 9 && name[:9] == "snapshot-" {
			t.Fatalf("orphan snapshot %s survived the next checkpoint", name)
		}
	}
}

func TestCheckpointerClosedErrors(t *testing.T) {
	h := newHarness(t, 1)
	defer h.db.Close()
	defer h.log.Close()
	c := New(h.db, h.log, Options{})
	c.Close()
	c.Close() // idempotent
	if err := c.Checkpoint(); err == nil {
		t.Fatal("expected error after close")
	}
}

func TestBackgroundCheckpointLoop(t *testing.T) {
	h := newHarness(t, 1)
	defer h.log.Close()
	h.commit(0, func(tx engine.Tx) error { return tx.PutInt("k", 7) })
	c := New(h.db, h.log, Options{Every: 2 * time.Millisecond})
	// Keep the worker polled until the checkpointer has fully stopped:
	// the loop may begin another checkpoint at any tick, and its barrier
	// needs a polling worker to complete (same ordering doppel.DB.Close
	// follows).
	pollStop := make(chan struct{})
	pollDone := make(chan struct{})
	go func() {
		defer close(pollDone)
		for {
			select {
			case <-pollStop:
				return
			default:
				h.db.Poll(0)
				time.Sleep(50 * time.Microsecond)
			}
		}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for c.Stats().Checkpoints == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	c.Close()
	close(pollStop)
	<-pollDone
	h.db.Close()
	if c.Stats().Checkpoints == 0 {
		t.Fatal("background loop never checkpointed")
	}
}
