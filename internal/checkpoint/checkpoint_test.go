package checkpoint

import (
	"fmt"
	"testing"
	"time"

	"doppel/internal/core"
	"doppel/internal/engine"
	"doppel/internal/store"
	"doppel/internal/wal"
)

// harness drives a coordinator-less core.DB whose workers are polled
// from the test goroutine, the way checkpoint barriers require.
type harness struct {
	t   *testing.T
	db  *core.DB
	log *wal.Logger
}

func newHarness(t *testing.T, workers int) *harness {
	t.Helper()
	log, err := wal.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig(workers)
	cfg.PhaseLength = 0
	cfg.Redo = log
	return &harness{t: t, db: core.Open(store.New(), cfg), log: log}
}

func (h *harness) commit(w int, fn engine.TxFunc) {
	h.t.Helper()
	for i := 0; i < 10000; i++ {
		out, err := h.db.Attempt(w, fn, time.Now().UnixNano())
		if err != nil {
			h.t.Fatalf("attempt: %v", err)
		}
		if out == engine.Committed {
			return
		}
	}
	h.t.Fatal("never committed")
}

// checkpoint runs c.Checkpoint while polling every worker so the
// barrier can complete.
func (h *harness) checkpoint(c *Checkpointer) error {
	h.t.Helper()
	errCh := make(chan error, 1)
	go func() { errCh <- c.Checkpoint() }()
	for {
		select {
		case err := <-errCh:
			return err
		default:
			for w := 0; w < h.db.Workers(); w++ {
				h.db.Poll(w)
			}
			time.Sleep(50 * time.Microsecond)
		}
	}
}

func TestCheckpointRotateInstallRecover(t *testing.T) {
	h := newHarness(t, 2)
	defer h.log.Close()
	for i := 0; i < 10; i++ {
		key := fmt.Sprintf("k%d", i)
		n := int64(i)
		h.commit(i%2, func(tx engine.Tx) error { return tx.PutInt(key, n) })
	}
	c := New(h.db, h.log, Options{})
	defer c.Close()
	if err := h.checkpoint(c); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Checkpoints != 1 || st.Failures != 0 {
		t.Fatalf("stats: %+v", st)
	}
	if st.LastSeq != 2 {
		t.Fatalf("rotation landed on segment %d, want 2", st.LastSeq)
	}
	if st.LastEntries != 10 {
		t.Fatalf("snapshot has %d entries, want 10", st.LastEntries)
	}
	if st.LastBytes <= 0 {
		t.Fatalf("snapshot size %d", st.LastBytes)
	}

	// Post-checkpoint traffic lands in the new segment only.
	h.commit(0, func(tx engine.Tx) error { return tx.PutInt("k3", 333) })
	h.commit(1, func(tx engine.Tx) error { return tx.PutInt("new", 1) })
	h.db.Close()
	if err := h.log.Close(); err != nil {
		t.Fatal(err)
	}

	rec, err := Load(h.log.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if rec.Manifest.Snapshot != wal.SnapshotFileName(2) || rec.Manifest.SnapshotSeq != 2 {
		t.Fatalf("manifest: %+v", rec.Manifest)
	}
	if len(rec.Snapshot) != 10 {
		t.Fatalf("snapshot entries: %d", len(rec.Snapshot))
	}
	if len(rec.Segments) != 1 || rec.Segments[0].Seq != 2 {
		t.Fatalf("bounded replay violated: live segments %+v", rec.Segments)
	}
	if len(rec.Records) != 2 {
		t.Fatalf("replayed %d records, want only the 2 post-checkpoint ones", len(rec.Records))
	}
	built, err := rec.BuildStore()
	if err != nil {
		t.Fatal(err)
	}
	wantInt := func(key string, want int64) {
		t.Helper()
		r := built.Get(key)
		if r == nil {
			t.Fatalf("%s missing after recovery", key)
		}
		n, err := r.Value().AsInt()
		if err != nil || n != want {
			t.Fatalf("%s = %d (%v), want %d", key, n, err, want)
		}
	}
	for i := 0; i < 10; i++ {
		if i == 3 {
			continue
		}
		wantInt(fmt.Sprintf("k%d", i), int64(i))
	}
	wantInt("k3", 333) // post-snapshot record overrides snapshot value
	wantInt("new", 1)
}

// TestBuildStoreSkipsStaleRecords: replay applies a redo record only
// when its TID advances past the key's snapshot TID, so records the
// snapshot already covers are no-ops.
func TestBuildStoreSkipsStaleRecords(t *testing.T) {
	r := &Recovered{
		Snapshot: []store.SnapshotEntry{{Key: "k", TID: 500, Value: store.IntValue(42)}},
		Records: []wal.Record{
			{TID: 400, Ops: []wal.Op{{Key: "k", Value: store.EncodeValue(store.IntValue(1))}}},
			{TID: 600, Ops: []wal.Op{{Key: "j", Value: store.EncodeValue(store.IntValue(2))}}},
		},
	}
	st, err := r.BuildStore()
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := st.Get("k").Value().AsInt(); n != 42 {
		t.Fatalf("stale record applied: k=%d", n)
	}
	if n, _ := st.Get("j").Value().AsInt(); n != 2 {
		t.Fatalf("fresh record dropped: j=%d", n)
	}
	if tid, _ := st.Get("k").TIDWord(); tid != 500 {
		t.Fatalf("k TID %d, want 500", tid)
	}
}

func TestCheckpointerClosedErrors(t *testing.T) {
	h := newHarness(t, 1)
	defer h.db.Close()
	defer h.log.Close()
	c := New(h.db, h.log, Options{})
	c.Close()
	c.Close() // idempotent
	if err := c.Checkpoint(); err == nil {
		t.Fatal("expected error after close")
	}
}

func TestBackgroundCheckpointLoop(t *testing.T) {
	h := newHarness(t, 1)
	defer h.log.Close()
	h.commit(0, func(tx engine.Tx) error { return tx.PutInt("k", 7) })
	c := New(h.db, h.log, Options{Every: 2 * time.Millisecond})
	// Keep the worker polled until the checkpointer has fully stopped:
	// the loop may begin another checkpoint at any tick, and its barrier
	// needs a polling worker to complete (same ordering doppel.DB.Close
	// follows).
	pollStop := make(chan struct{})
	pollDone := make(chan struct{})
	go func() {
		defer close(pollDone)
		for {
			select {
			case <-pollStop:
				return
			default:
				h.db.Poll(0)
				time.Sleep(50 * time.Microsecond)
			}
		}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for c.Stats().Checkpoints == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	c.Close()
	close(pollStop)
	<-pollDone
	h.db.Close()
	if c.Stats().Checkpoints == 0 {
		t.Fatal("background loop never checkpointed")
	}
}
