// Package checkpoint turns the segmented WAL into a bounded-recovery
// durability layer: a checkpointer periodically captures a consistent
// snapshot of the store, rotates the log to a fresh segment, publishes
// the snapshot in the log's manifest, and garbage-collects the segments
// the snapshot subsumes. Recovery then loads the newest snapshot and
// replays only the segments written after it, so both replay time and
// disk usage are bounded by the checkpoint interval instead of the
// database's lifetime.
//
// # The incremental cut
//
// A checkpoint cut begins inside a core.DB barrier transition, i.e.
// with every worker paused between transactions and all per-core slices
// reconciled. The barrier itself is O(1): it rotates the log and starts
// a store.Capture, then the workers resume. The O(records) walk runs
// concurrently with traffic under the copy-on-write protocol (see
// store/cow.go): a post-barrier writer that reaches a record before the
// walk does saves the record's pre-barrier state aside first, so the
// assembled snapshot is exactly the store's state at the barrier.
//
// # The consistency argument
//
// At the barrier, each committed value is visible in the store and its
// redo record has been submitted to the logger, and no commit is in
// flight. Rotate flushes those records to the sealed segments, so
// snapshot ⊇ every record in segments before the cut; records logged
// after the cut land in newer segments and carry per-key TIDs larger
// than the snapshot's, so replaying them over the snapshot is exact.
// The snapshot is published atomically (write + fsync + rename +
// manifest install), so a crash at any point mid-checkpoint leaves the
// previous checkpoint authoritative and recovery replays across the
// aborted cut's rotation as if it never happened.
//
// # Recovery
//
// Load/BuildStore is the sequential reference implementation; LoadStore
// is the parallel production path: snapshot frames decode on N
// goroutines sharded by key, and live segments replay concurrently.
// Order independence holds because replay applies a redo record only
// when it advances the key's TID, atomically per record — per-key TIDs
// are unique and monotone in log order, so highest-TID-wins converges
// to the sequential result from any interleaving. The manifest's
// sealed-segment metadata (TID ranges, record counts) is checked
// against what each segment actually replays to, so sealed-file
// corruption fails recovery loudly.
package checkpoint
