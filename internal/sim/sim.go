package sim

import (
	"container/heap"

	"doppel/internal/metrics"
	"doppel/internal/rng"
	"doppel/internal/store"
)

// Kind selects the concurrency-control scheme to simulate.
type Kind int

// Engine kinds.
const (
	Doppel Kind = iota
	OCC
	TwoPL
	Atomic
	Silo
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Doppel:
		return "doppel"
	case OCC:
		return "occ"
	case TwoPL:
		return "2pl"
	case Atomic:
		return "atomic"
	case Silo:
		return "silo"
	default:
		return "unknown"
	}
}

// Access is one record operation inside a simulated transaction. OpGet is
// a read; every other kind writes.
type Access struct {
	Key int32
	Op  store.OpKind
}

// Generator produces the access list of the next transaction for a core.
// now is the current simulated time (Figure 10's workload changes its hot
// key over time). The generator must fill and return buf to avoid
// allocation.
type Generator func(core int, now int64, r *rng.Rand, buf []Access) []Access

// Params are Doppel's phase-reconciliation parameters, mirroring
// core.Config.
type Params struct {
	PhaseLen          int64 // simulated ns between phase changes
	SplitMinConflicts int
	SplitFraction     float64
	MaxSplitKeys      int
	ReadDominance     float64
	KeepMinWrites     int
	// KeepWriteFraction demotes a split key whose slice writes fall
	// below this fraction of the window's transactions: residual
	// background traffic must not keep a cooled key split (§5.5 write
	// sampling).
	KeepWriteFraction float64
	HurryFraction     float64
	// MaxSplitExtend is how many times in a row the coordinator may
	// extend a split phase that stashed nothing — no transaction is
	// waiting for a joined phase, so changing phases would only cost
	// barrier time (§5.4's feedback mechanisms, applied symmetrically).
	MaxSplitExtend   int
	DisableAutoSplit bool
	Hints            map[int32]store.OpKind
}

// DefaultParams mirrors core.DefaultConfig.
func DefaultParams() Params {
	return Params{
		PhaseLen:          20_000_000, // 20 ms
		SplitMinConflicts: 8,
		SplitFraction:     0.02,
		MaxSplitKeys:      64,
		ReadDominance:     3.0,
		KeepMinWrites:     4,
		KeepWriteFraction: 0.005,
		HurryFraction:     0.5,
		MaxSplitExtend:    8,
	}
}

// Config describes one simulation run.
type Config struct {
	Engine  Kind
	Cores   int
	Records int
	// Warmup and Duration are simulated nanoseconds; statistics cover
	// [Warmup, Warmup+Duration).
	Warmup   int64
	Duration int64
	Seed     uint64
	Cost     CostModel // zero value → DefaultCosts
	Doppel   Params    // zero value → DefaultParams
	// TimelineBucket, when > 0, records committed-transaction counts in
	// buckets of this many simulated ns over the whole run (Figure 10).
	TimelineBucket int64
}

// Result reports one simulation run.
type Result struct {
	Commits, Aborts, Stashes uint64
	SimNanos                 int64
	Throughput               float64 // committed txns per simulated second
	ReadLat, WriteLat        *metrics.Hist
	SplitKeys                []int32 // final split assignment (Table 2)
	SplitCoverage            float64 // fraction of record accesses on split keys
	PhaseChanges             uint64
	Timeline                 []float64 // txns/sec per bucket
}

// opKindCount sizes per-operation counter arrays.
const opKindCount = int(store.OpTopKInsert) + 1

type opCounts [opKindCount]uint32

// record is the simulator's view of one database record.
type record struct {
	version    uint64
	wLockUntil int64
	rLockUntil int64
	lineBusy   int64 // cache line occupied by an in-flight transfer until
	lastTouch  int64 // last access time, for cache eviction
	owner      int32 // core owning the cache line exclusively; -1 cold
	splitIdx   int32 // >= 0 while split in the current split phase
	splitOp    store.OpKind
	readers    [2]uint64 // cores holding the line in shared state
	accesses   uint64
}

func (r *record) sharedBy(core int) bool {
	return r.readers[core>>6]&(1<<(uint(core)&63)) != 0
}

func (r *record) addSharer(core int) {
	r.readers[core>>6] |= 1 << (uint(core) & 63)
}

func (r *record) clearSharers() { r.readers[0], r.readers[1] = 0, 0 }

type readVer struct {
	key int32
	ver uint64
}

type stashedTxn struct {
	acc    []Access
	submit int64
}

// simCore is one simulated core.
type simCore struct {
	id     int
	clock  int64
	r      *rng.Rand
	hindex int // heap index; -1 when not in heap

	// current transaction
	acc     []Access
	accBuf  []Access
	step    int
	reads   []readVer
	sw      []int32 // split (slice) writes this txn
	submit  int64
	attempt int
	isWrite bool

	stash  []stashedTxn
	drain  []stashedTxn
	parked bool
	done   bool
	ack    int64
}

// state is one simulation.
type state struct {
	cfg   Config
	cost  CostModel
	gen   Generator
	recs  []record
	cores []*simCore
	h     coreHeap

	// Doppel phase machinery.
	split        bool // current phase: false = joined
	nextChange   int64
	phaseStart   int64
	barrier      bool
	target       bool // barrier target phase (true = split)
	pendingSet   map[int32]store.OpKind
	parkedCount  int
	doneCount    int
	splitList    []int32
	curAssign    map[int32]store.OpKind
	lastSplit    map[int32]bool
	phaseChanges uint64

	// classifier windows
	conflicts        map[int32]*opCounts
	stashCounts      map[int32]*opCounts
	splitWrites      map[int32]uint64
	attemptsWindow   uint64
	commitsPhase     uint64
	stashedPhase     uint64
	sliceWritesPhase uint64
	extends          int

	// measurement
	measureStart  int64
	endTime       int64
	commits       uint64
	aborts        uint64
	stashes       uint64
	readLat       *metrics.Hist
	writeLat      *metrics.Hist
	timeline      []uint64
	totalAccesses uint64
	splitAccesses uint64
}

// coreHeap orders runnable cores by clock (ties by id, for determinism).
type coreHeap []*simCore

func (h coreHeap) Len() int { return len(h) }
func (h coreHeap) Less(i, j int) bool {
	if h[i].clock != h[j].clock {
		return h[i].clock < h[j].clock
	}
	return h[i].id < h[j].id
}
func (h coreHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].hindex = i
	h[j].hindex = j
}
func (h *coreHeap) Push(x any) {
	c := x.(*simCore)
	c.hindex = len(*h)
	*h = append(*h, c)
}
func (h *coreHeap) Pop() any {
	old := *h
	n := len(old)
	c := old[n-1]
	c.hindex = -1
	*h = old[:n-1]
	return c
}

// Run executes one simulation.
func Run(cfg Config, gen Generator) Result {
	if cfg.Cores < 1 {
		cfg.Cores = 1
	}
	if cfg.Records < 1 {
		cfg.Records = 1
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 100_000_000
	}
	if cfg.Cost == (CostModel{}) {
		cfg.Cost = DefaultCosts()
	}
	if cfg.Doppel.PhaseLen == 0 {
		d := DefaultParams()
		d.Hints = cfg.Doppel.Hints
		d.DisableAutoSplit = cfg.Doppel.DisableAutoSplit
		cfg.Doppel = d
	}
	s := &state{
		cfg:          cfg,
		cost:         cfg.Cost,
		gen:          gen,
		recs:         make([]record, cfg.Records),
		curAssign:    map[int32]store.OpKind{},
		lastSplit:    map[int32]bool{},
		conflicts:    map[int32]*opCounts{},
		stashCounts:  map[int32]*opCounts{},
		splitWrites:  map[int32]uint64{},
		measureStart: cfg.Warmup,
		endTime:      cfg.Warmup + cfg.Duration,
		readLat:      metrics.NewHist(),
		writeLat:     metrics.NewHist(),
		nextChange:   cfg.Doppel.PhaseLen,
	}
	for i := range s.recs {
		s.recs[i].owner = -1
		s.recs[i].splitIdx = -1
	}
	if cfg.TimelineBucket > 0 {
		s.timeline = make([]uint64, int(s.endTime/cfg.TimelineBucket)+1)
	}
	s.cores = make([]*simCore, cfg.Cores)
	for i := range s.cores {
		s.cores[i] = &simCore{id: i, r: rng.New(cfg.Seed + uint64(i)*7919 + 1), hindex: -1}
		heap.Push(&s.h, s.cores[i])
	}

	for s.h.Len() > 0 {
		c := s.h[0]
		if c.clock >= s.endTime {
			heap.Pop(&s.h)
			c.done = true
			s.doneCount++
			if s.barrier {
				s.completeBarrierIfReady()
			}
			continue
		}
		s.advance(c)
		if c.parked || c.done {
			if c.hindex >= 0 {
				heap.Remove(&s.h, c.hindex)
			}
		} else if c.hindex >= 0 {
			heap.Fix(&s.h, c.hindex)
		} else {
			heap.Push(&s.h, c)
		}
	}
	return s.result()
}

func (s *state) result() Result {
	res := Result{
		Commits:      s.commits,
		Aborts:       s.aborts,
		Stashes:      s.stashes,
		SimNanos:     s.cfg.Duration,
		Throughput:   float64(s.commits) / (float64(s.cfg.Duration) / 1e9),
		ReadLat:      s.readLat,
		WriteLat:     s.writeLat,
		PhaseChanges: s.phaseChanges,
	}
	for k := range s.curAssign {
		res.SplitKeys = append(res.SplitKeys, k)
	}
	if s.totalAccesses > 0 {
		res.SplitCoverage = float64(s.splitAccesses) / float64(s.totalAccesses)
	}
	if s.cfg.TimelineBucket > 0 {
		res.Timeline = make([]float64, len(s.timeline))
		scale := 1e9 / float64(s.cfg.TimelineBucket)
		for i, n := range s.timeline {
			res.Timeline[i] = float64(n) * scale
		}
	}
	return res
}

// advance performs one simulation step for core c.
func (s *state) advance(c *simCore) {
	if c.acc == nil {
		// Transaction setup is its own event: it advances the core's
		// clock by TxnBase, and the first record access must not be
		// simulated until every other core's earlier event has run.
		s.startTxn(c)
		return
	}
	switch s.cfg.Engine {
	case TwoPL:
		s.runTwoPL(c)
	case Atomic:
		s.stepAtomic(c)
	default:
		s.stepOCC(c)
	}
}

// startTxn sets up the next transaction for c: either a stashed
// transaction being drained or a fresh one from the generator. The core
// may instead park at a phase barrier, leaving c.acc nil.
func (s *state) startTxn(c *simCore) {
	if s.cfg.Engine == Doppel && !s.doppelGate(c) {
		return
	}
	if len(c.drain) > 0 {
		st := c.drain[len(c.drain)-1]
		c.drain = c.drain[:len(c.drain)-1]
		c.acc = st.acc
		c.submit = st.submit
	} else {
		c.accBuf = s.gen(c.id, c.clock, c.r, c.accBuf[:0])
		c.acc = c.accBuf
		c.submit = c.clock
	}
	c.step = 0
	c.attempt = 0
	c.reads = c.reads[:0]
	c.sw = c.sw[:0]
	c.isWrite = false
	for _, a := range c.acc {
		if a.Op.Write() {
			c.isWrite = true
			break
		}
	}
	c.clock += s.cost.TxnBase
	if s.cfg.Engine == Silo {
		c.clock += s.cost.SiloOverhead
	}
	if s.cfg.Engine == Doppel {
		s.attemptsWindow++
	}
}

// accessCost models the MESI-style cost of touching a record's line at
// time now. Reads are cheap when the core owns or shares the line, cost
// a DRAM fetch when no cache holds it, and an ownership transfer when
// another core has it modified. Writes additionally invalidate other
// copies. Lines untouched for EvictNs fall out of all caches.
func (s *state) accessCost(rec *record, c *simCore, now int64, write bool) int64 {
	if now-rec.lastTouch > s.cost.EvictNs {
		rec.owner = -1
		rec.clearSharers()
	}
	rec.lastTouch = now
	me := int32(c.id)
	// onlyMe: no OTHER core shares the line.
	others := rec.readers
	others[c.id>>6] &^= 1 << (uint(c.id) & 63)
	onlyMe := others == [2]uint64{}

	var cost int64
	switch {
	case !write && (rec.owner == me || rec.sharedBy(c.id)):
		cost = s.cost.OpLocal
	case !write && rec.owner == -1 && rec.readers == [2]uint64{}:
		cost = s.cost.DRAMFetch
	case !write:
		cost = s.cost.LineTransfer
	case rec.owner == me && onlyMe:
		cost = s.cost.OpLocal // already exclusive (or harmlessly shared by self)
	case rec.owner == -1 && onlyMe && rec.sharedBy(c.id):
		cost = s.cost.OpLocal // upgrade of a line only this core holds
	case rec.owner == -1 && rec.readers == [2]uint64{}:
		cost = s.cost.DRAMFetch // read-for-ownership from memory
	default:
		cost = s.cost.LineTransfer // steal or invalidate other copies
	}
	if write {
		rec.owner = me
		rec.clearSharers()
	} else if rec.owner != me {
		rec.addSharer(c.id)
	}
	return cost
}

// countAccess tracks total and split-key access counts (Table 2's "% of
// requests" column).
func (s *state) countAccess(rec *record) {
	rec.accesses++
	s.totalAccesses++
	if rec.splitIdx >= 0 {
		s.splitAccesses++
	}
}

// stepOCC advances an OCC-family transaction (OCC, Silo, Doppel) by one
// access or its commit.
func (s *state) stepOCC(c *simCore) {
	if c.step < len(c.acc) {
		a := c.acc[c.step]
		rec := &s.recs[a.Key]
		s.countAccess(rec)

		// Doppel split-phase routing (§5.2).
		if s.cfg.Engine == Doppel && s.split && rec.splitIdx >= 0 {
			if a.Op == rec.splitOp {
				// Per-core slice: always a local line, no coordination.
				c.clock += s.cost.OpLocal
				c.sw = append(c.sw, a.Key)
				c.step++
				return
			}
			s.stashTxn(c, a)
			return
		}

		if rec.wLockUntil > c.clock {
			s.abortTxn(c, a)
			return
		}
		// Hardware arbitration: if the line is mid-transfer, stall and
		// retry this access.
		if rec.lineBusy > c.clock {
			c.clock = rec.lineBusy
			return
		}
		// Read-modify-write operations and reads validate; blind Puts do
		// not (Silo permits blind writes). The read phase only READS the
		// line (writes are buffered until commit), so many cores can
		// share a hot line and observe the same version concurrently —
		// which is exactly what makes them fight at commit time.
		if a.Op == store.OpGet || a.Op.Splittable() {
			c.reads = append(c.reads, readVer{a.Key, rec.version})
			cost := s.accessCost(rec, c, c.clock, false)
			c.clock += cost
			if cost != s.cost.OpLocal {
				rec.lineBusy = c.clock
			}
		} else {
			// Blind Put: buffered locally; no record line touched yet.
			c.clock += s.cost.OpLocal
		}
		c.step++
		return
	}
	s.commitOCC(c)
}

// commitOCC runs the Figure 2 commit protocol at the current instant:
// lock the write set, validate the read set, install and release.
func (s *state) commitOCC(c *simCore) {
	// Part 1: lock the write set. Seeing a record locked by another
	// transaction aborts; an in-flight line transfer stalls this event.
	globalWrite := false
	for _, a := range c.acc {
		if !a.Op.Write() {
			continue
		}
		rec := &s.recs[a.Key]
		if s.cfg.Engine == Doppel && s.split && rec.splitIdx >= 0 {
			continue // slice write: no global lock
		}
		if rec.wLockUntil > c.clock {
			s.abortTxn(c, a)
			return
		}
		if rec.lineBusy > c.clock {
			c.clock = rec.lineBusy
			return
		}
		globalWrite = true
	}
	if globalWrite {
		// Acquiring the commit locks writes each record's line: another
		// ownership transfer when a concurrent access stole it since our
		// read phase. This work is wasted if validation then fails,
		// which is exactly OCC's cost under contention.
		for _, a := range c.acc {
			if !a.Op.Write() {
				continue
			}
			rec := &s.recs[a.Key]
			if s.cfg.Engine == Doppel && s.split && rec.splitIdx >= 0 {
				continue
			}
			cost := s.accessCost(rec, c, c.clock, true)
			c.clock += cost
			if cost != s.cost.OpLocal {
				rec.lineBusy = c.clock
			}
			rec.wLockUntil = c.clock + s.cost.CommitLockHold
		}
	}
	// Part 2: validate the read set (after locking, as in Figure 2).
	for _, rv := range c.reads {
		if s.recs[rv.key].version != rv.ver {
			// Release the locks we just took and abort.
			if globalWrite {
				for _, a := range c.acc {
					if a.Op.Write() {
						rec := &s.recs[a.Key]
						if rec.wLockUntil > c.clock {
							rec.wLockUntil = c.clock
						}
					}
				}
			}
			s.abortTxn(c, Access{rv.key, opForKey(c, rv.key)})
			return
		}
	}
	// Part 3: install values and release locks.
	if globalWrite {
		c.clock += s.cost.CommitLockHold
		for _, a := range c.acc {
			if !a.Op.Write() {
				continue
			}
			rec := &s.recs[a.Key]
			if s.cfg.Engine == Doppel && s.split && rec.splitIdx >= 0 {
				continue
			}
			rec.version++
			rec.wLockUntil = c.clock
			rec.lineBusy = c.clock
		}
	}
	for _, k := range c.sw {
		s.splitWrites[k]++
		s.sliceWritesPhase++
	}
	s.finishTxn(c)
}

// opForKey recovers which operation the transaction performed on key,
// for conflict attribution.
func opForKey(c *simCore, key int32) store.OpKind {
	for _, a := range c.acc {
		if a.Key == key {
			return a.Op
		}
	}
	return store.OpGet
}

// stepAtomic advances an Atomic-engine transaction: every operation
// applies immediately with hardware arbitration and no other concurrency
// control (§8.2).
func (s *state) stepAtomic(c *simCore) {
	if c.step < len(c.acc) {
		a := c.acc[c.step]
		rec := &s.recs[a.Key]
		if rec.lineBusy > c.clock {
			// The line is being updated by another core; hardware
			// serializes us behind it.
			c.clock = rec.lineBusy
			return
		}
		s.countAccess(rec)
		cost := s.accessCost(rec, c, c.clock, a.Op.Write())
		if a.Op.Write() {
			cost += s.cost.AtomicOp
			rec.version++
			rec.lineBusy = c.clock + cost
		} else if cost != s.cost.OpLocal {
			rec.lineBusy = c.clock + cost
		}
		c.clock += cost
		c.step++
		return
	}
	s.finishTxn(c)
}

// runTwoPL executes a whole 2PL transaction in one event: acquire each
// lock in access order (waiting out conflicting leases), then hold
// everything until commit. 2PL never aborts (§8.1).
func (s *state) runTwoPL(c *simCore) {
	t := c.clock
	// Pass 1: walk the accesses, waiting for conflicting locks, to find
	// the commit time.
	for _, a := range c.acc {
		rec := &s.recs[a.Key]
		s.countAccess(rec)
		if a.Op.Write() {
			free := rec.wLockUntil
			if rec.rLockUntil > free {
				free = rec.rLockUntil
			}
			if free > t {
				t = free + s.cost.LockHandoff
			}
		} else if rec.wLockUntil > t {
			t = rec.wLockUntil + s.cost.LockHandoff
		}
		if rec.lineBusy > t {
			t = rec.lineBusy
		}
		cost := s.accessCost(rec, c, t, a.Op.Write())
		t += cost
		if cost != s.cost.OpLocal {
			rec.lineBusy = t
		}
	}
	t += s.cost.CommitLockHold
	// Pass 2: extend leases to the commit time and install effects.
	for _, a := range c.acc {
		rec := &s.recs[a.Key]
		if a.Op.Write() {
			if t > rec.wLockUntil {
				rec.wLockUntil = t
			}
			rec.version++
		} else if t > rec.rLockUntil {
			rec.rLockUntil = t
		}
	}
	c.clock = t
	s.finishTxn(c)
}

// abortTxn records a conflict abort and schedules the retry with
// randomized exponential backoff (§8.1).
func (s *state) abortTxn(c *simCore, a Access) {
	if c.clock >= s.measureStart {
		s.aborts++
	}
	if s.cfg.Engine == Doppel {
		s.sampleConflict(a.Key, a.Op)
	}
	c.attempt++
	c.clock += int64(c.r.ExpBackoff(uint64(s.cost.BackoffBase), uint64(s.cost.BackoffCap), c.attempt))
	// The retry re-executes the whole transaction body ("OCC saves and
	// re-starts aborted transactions", §8.2).
	c.clock += s.cost.TxnBase
	c.step = 0
	c.reads = c.reads[:0]
	c.sw = c.sw[:0]
}

// finishTxn commits the bookkeeping for a completed transaction.
func (s *state) finishTxn(c *simCore) {
	if c.clock >= s.measureStart {
		s.commits++
		lat := c.clock - c.submit
		if c.isWrite {
			s.writeLat.Record(lat)
		} else {
			s.readLat.Record(lat)
		}
	}
	s.commitsPhase++
	if s.timeline != nil {
		b := int(c.clock / s.cfg.TimelineBucket)
		if b >= 0 && b < len(s.timeline) {
			s.timeline[b]++
		}
	}
	c.acc = nil
}
