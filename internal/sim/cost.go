// Package sim is a deterministic discrete-event simulator of a multicore
// machine running the four concurrency-control schemes the paper
// evaluates (Doppel, OCC, 2PL, Atomic — §8.1), plus a Silo variant.
//
// The paper's evaluation ran on an 80-core machine; its figures measure
// mechanisms — cache-line ownership transfer for contended records, lock
// serialization, OCC abort/retry waste, per-core slice locality and phase
// change barriers — that cannot be observed with real goroutines on the
// single-vCPU machines this repository targets. The simulator models
// those mechanisms directly: simulated cores advance private clocks,
// record accesses cost time according to a cache-coherence cost model,
// and the engine models implement the same commit protocols as the real
// engines (paper Figures 2–4), including Doppel's classifier. Given a
// seed, runs are exactly reproducible.
package sim

// CostModel assigns simulated nanosecond costs to machine-level events.
// Defaults are calibrated so the INCR1 microbenchmark reproduces the
// shape and rough magnitudes of the paper's Figure 8 (see EXPERIMENTS.md
// for the calibration notes).
type CostModel struct {
	// TxnBase is fixed per-transaction work: client logic, transaction
	// dispatch, read/write-set bookkeeping.
	TxnBase int64
	// OpLocal is a record access whose cache line this core owns.
	OpLocal int64
	// DRAMFetch is an access to a line no core has touched (the paper:
	// unpopular keys "incur the DRAM latency required to fetch such keys
	// from memory").
	DRAMFetch int64
	// LineTransfer is an access to a line another core wrote last: a
	// cache-coherence ownership transfer ("expensive cache line
	// transfers relating to contended data", §4).
	LineTransfer int64
	// CommitLockHold is how long OCC-style commits hold record locks
	// while validating and installing values.
	CommitLockHold int64
	// AtomicOp is the execution cost of an atomic RMW instruction once
	// the line is owned.
	AtomicOp int64
	// LockHandoff is the overhead of a contended Go mutex handoff ("2PL
	// uses Go mutexes which yield the CPU", §8.2).
	LockHandoff int64
	// BackoffBase and BackoffCap bound the randomized exponential retry
	// backoff after an abort (§8.1).
	BackoffBase int64
	BackoffCap  int64
	// BarrierBase and BarrierPerCore model the phase-change barrier:
	// total pause ≈ BarrierBase + BarrierPerCore × cores ("phase change
	// takes about half a millisecond" at 20 cores, §8.7; "phase changes
	// take longer with more cores", §8.2).
	BarrierBase    int64
	BarrierPerCore int64
	// MergePerRecord is the reconciliation cost per split record per
	// core (Figure 4: lock, merge-apply, unlock).
	MergePerRecord int64
	// SiloOverhead is added to TxnBase for the Silo engine variant ("it
	// implements more features", §8.2).
	SiloOverhead int64
	// EvictNs is how long a cache line survives untouched before it
	// falls out of every cache (so cold keys cost DRAM fetches, not
	// phantom invalidations).
	EvictNs int64
}

// DefaultCosts returns the calibrated cost model.
func DefaultCosts() CostModel {
	return CostModel{
		TxnBase:        550,
		OpLocal:        40,
		DRAMFetch:      120,
		LineTransfer:   170,
		CommitLockHold: 60,
		AtomicOp:       30,
		LockHandoff:    300,
		BackoffBase:    400,
		BackoffCap:     60_000,
		BarrierBase:    60_000,
		BarrierPerCore: 20_000,
		MergePerRecord: 500,
		SiloOverhead:   400,
		EvictNs:        1_000_000,
	}
}
