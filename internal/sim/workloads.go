package sim

import (
	"doppel/internal/rng"
	"doppel/internal/store"
	"doppel/internal/workload"
)

// IncrGen returns the INCR1 generator (§8.2): each transaction increments
// one key out of n; a hotFrac fraction of transactions increment key 0.
// When changeEvery > 0, the identity of the hot key advances every
// changeEvery simulated nanoseconds (Figure 10's changing workload).
func IncrGen(n int, hotFrac float64, changeEvery int64) Generator {
	return func(core int, now int64, r *rng.Rand, buf []Access) []Access {
		hot := int32(0)
		if changeEvery > 0 {
			hot = int32((now / changeEvery) % int64(n))
		}
		key := hot
		if !r.Bool(hotFrac) {
			k := int32(r.Intn(n - 1))
			if k >= hot {
				k++
			}
			key = k
		}
		return append(buf, Access{Key: key, Op: store.OpAdd})
	}
}

// IncrZGen returns the INCRZ generator (§8.4): each transaction
// increments one key drawn from a Zipfian distribution (rank 0 most
// popular).
func IncrZGen(z *workload.Zipf) Generator {
	return func(core int, now int64, r *rng.Rand, buf []Access) []Access {
		return append(buf, Access{Key: int32(z.Sample(r)), Op: store.OpAdd})
	}
}

// LikeGen returns the LIKE generator (§7, §8.5) over a simulated key
// space: user records occupy keys [0, users), page records
// [users, users+pages). A write transaction puts the user's like and
// increments the page count; a read transaction reads both.
func LikeGen(users, pages int, pageZipf *workload.Zipf, writeFrac float64) Generator {
	base := int32(users)
	return func(core int, now int64, r *rng.Rand, buf []Access) []Access {
		user := int32(r.Intn(users))
		page := base + int32(pageZipf.Sample(r))
		if r.Bool(writeFrac) {
			return append(buf,
				Access{Key: user, Op: store.OpPut},
				Access{Key: page, Op: store.OpAdd})
		}
		return append(buf,
			Access{Key: user, Op: store.OpGet},
			Access{Key: page, Op: store.OpGet})
	}
}

// RUBiS key-space layout for the simulator. The op-level transcription
// keeps each transaction's record-contention pattern: StoreBid touches
// one fresh bid row plus four pieces of per-item auction metadata
// (Figure 7); browse transactions read index and item records.
type rubisLayout struct {
	users, items   int
	bidBase        int32 // fresh bid rows (uncontended inserts)
	maxBidBase     int32
	maxBidderBase  int32
	numBidsBase    int32
	bidsPerItem    int32
	ratingBase     int32
	commentBase    int32
	itemBase       int32
	categoryIdx    int32
	regionIdx      int32
	numCategories  int
	numRegions     int
	totalRecords   int
	freshBidCount  int32
	freshRowsPerCo int32
}

// RUBiSRecords reports how many simulated records a RUBiS configuration
// needs.
func RUBiSRecords(users, items int) int {
	l := rubisLayout{}
	l.init(users, items)
	return l.totalRecords
}

func (l *rubisLayout) init(users, items int) {
	l.users, l.items = users, items
	l.numCategories = 20
	l.numRegions = 62
	next := int32(0)
	grab := func(n int) int32 {
		base := next
		next += int32(n)
		return base
	}
	l.itemBase = grab(items)
	l.maxBidBase = grab(items)
	l.maxBidderBase = grab(items)
	l.numBidsBase = grab(items)
	l.bidsPerItem = grab(items)
	l.ratingBase = grab(users)
	l.commentBase = grab(users)
	l.categoryIdx = grab(l.numCategories)
	l.regionIdx = grab(l.numRegions)
	// A pool of "fresh row" records stands in for inserted bids,
	// comments and items: each core cycles through its own range so
	// inserts never contend, like real fresh keys.
	l.freshRowsPerCo = 4096
	l.bidBase = grab(int(l.freshRowsPerCo) * 128)
	l.totalRecords = int(next)
}

// RUBiSGen returns a simulator generator for the RUBiS mixes (§8.8).
// bidFrac is the fraction of StoreBid transactions (0.5 in RUBiS-C);
// items are chosen with itemZipf (uniform for RUBiS-B). The remaining
// transactions follow the browsing-heavy proportions of the bidding mix.
func RUBiSGen(users, items int, itemZipf *workload.Zipf, bidFrac float64) Generator {
	l := &rubisLayout{}
	l.init(users, items)
	var freshCtr [128]int32
	return func(core int, now int64, r *rng.Rand, buf []Access) []Access {
		item := int32(itemZipf.Sample(r))
		user := int32(r.Intn(l.users))
		roll := r.Float64()
		switch {
		case roll < bidFrac:
			// StoreBid (Figure 7): insert the bid row, then commutative
			// updates of the auction metadata.
			fresh := l.bidBase + int32(core&127)*l.freshRowsPerCo + freshCtr[core&127]
			freshCtr[core&127] = (freshCtr[core&127] + 1) % l.freshRowsPerCo
			return append(buf,
				Access{Key: fresh, Op: store.OpPut},
				Access{Key: l.maxBidBase + item, Op: store.OpMax},
				Access{Key: l.maxBidderBase + item, Op: store.OpOPut},
				Access{Key: l.numBidsBase + item, Op: store.OpAdd},
				Access{Key: l.bidsPerItem + item, Op: store.OpTopKInsert})
		case roll < bidFrac+0.05*(1-bidFrac)/0.95:
			// StoreComment: insert comment, bump the owner's rating.
			fresh := l.bidBase + int32(core&127)*l.freshRowsPerCo + freshCtr[core&127]
			freshCtr[core&127] = (freshCtr[core&127] + 1) % l.freshRowsPerCo
			return append(buf,
				Access{Key: fresh, Op: store.OpPut},
				Access{Key: l.ratingBase + user, Op: store.OpAdd})
		case roll < bidFrac+0.25*(1-bidFrac)/0.95:
			// ViewItem: item row plus auction metadata.
			return append(buf,
				Access{Key: l.itemBase + item, Op: store.OpGet},
				Access{Key: l.maxBidBase + item, Op: store.OpGet},
				Access{Key: l.numBidsBase + item, Op: store.OpGet})
		case roll < bidFrac+0.45*(1-bidFrac)/0.95:
			// SearchItemsByCategory: category index plus a few items.
			cat := l.categoryIdx + int32(r.Intn(l.numCategories))
			return append(buf,
				Access{Key: cat, Op: store.OpGet},
				Access{Key: l.itemBase + item, Op: store.OpGet})
		case roll < bidFrac+0.60*(1-bidFrac)/0.95:
			// SearchItemsByRegion.
			reg := l.regionIdx + int32(r.Intn(l.numRegions))
			return append(buf,
				Access{Key: reg, Op: store.OpGet},
				Access{Key: l.itemBase + item, Op: store.OpGet})
		case roll < bidFrac+0.75*(1-bidFrac)/0.95:
			// ViewBidHistory: the per-item bid index plus metadata.
			return append(buf,
				Access{Key: l.bidsPerItem + item, Op: store.OpGet},
				Access{Key: l.maxBidderBase + item, Op: store.OpGet})
		case roll < bidFrac+0.85*(1-bidFrac)/0.95:
			// ViewUserInfo: user rating and comments.
			return append(buf,
				Access{Key: l.ratingBase + user, Op: store.OpGet},
				Access{Key: l.commentBase + user, Op: store.OpGet})
		default:
			// BrowseCategories / BrowseRegions.
			cat := l.categoryIdx + int32(r.Intn(l.numCategories))
			reg := l.regionIdx + int32(r.Intn(l.numRegions))
			return append(buf,
				Access{Key: cat, Op: store.OpGet},
				Access{Key: reg, Op: store.OpGet})
		}
	}
}
