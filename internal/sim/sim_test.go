package sim

import (
	"reflect"
	"testing"

	"doppel/internal/store"
	"doppel/internal/workload"
)

// quick returns a small config for fast test runs.
func quick(engine Kind, cores int) Config {
	return Config{
		Engine:   engine,
		Cores:    cores,
		Records:  100_000,
		Warmup:   40_000_000,  // 40 ms
		Duration: 100_000_000, // 100 ms
		Seed:     42,
	}
}

func TestKindString(t *testing.T) {
	for k := Doppel; k <= Silo+1; k++ {
		if k.String() == "" {
			t.Fatal("empty kind string")
		}
	}
}

func TestDeterminism(t *testing.T) {
	gen := func() Generator { return IncrGen(1000, 0.5, 0) }
	for _, e := range []Kind{Doppel, OCC, TwoPL, Atomic, Silo} {
		a := Run(quick(e, 4), gen())
		b := Run(quick(e, 4), gen())
		if a.Commits != b.Commits || a.Aborts != b.Aborts || a.Stashes != b.Stashes {
			t.Fatalf("%v: nondeterministic: %+v vs %+v", e, a, b)
		}
	}
}

func TestUniformWorkloadAllEnginesSimilar(t *testing.T) {
	// With uniform access to 100k keys there is almost no contention:
	// every engine should land within ~35% of OCC (the paper's Figure 8
	// left edge).
	gen := IncrGen(100_000, 0, 0)
	occ := Run(quick(OCC, 8), gen).Throughput
	for _, e := range []Kind{Doppel, TwoPL, Atomic} {
		got := Run(quick(e, 8), gen).Throughput
		ratio := got / occ
		if ratio < 0.65 || ratio > 1.6 {
			t.Errorf("%v/occ throughput ratio %.2f at zero contention", e, ratio)
		}
	}
}

func TestHotKeyCollapseAndDoppelWin(t *testing.T) {
	// 100% of transactions increment one key on 16 cores: the paper's
	// Figure 8 right edge. OCC and 2PL collapse to ~serial throughput;
	// Atomic does better; Doppel splits the key and scales.
	gen := IncrGen(100_000, 1.0, 0)
	doppel := Run(quick(Doppel, 16), gen)
	occ := Run(quick(OCC, 16), gen)
	tpl := Run(quick(TwoPL, 16), gen)
	atomic := Run(quick(Atomic, 16), gen)

	if len(doppel.SplitKeys) != 1 || doppel.SplitKeys[0] != 0 {
		t.Fatalf("doppel did not split the hot key: %v", doppel.SplitKeys)
	}
	if doppel.Throughput < 4*atomic.Throughput {
		t.Errorf("doppel %.2fM should be well above atomic %.2fM",
			doppel.Throughput/1e6, atomic.Throughput/1e6)
	}
	if atomic.Throughput < 1.5*tpl.Throughput {
		t.Errorf("atomic %.2fM should beat 2PL %.2fM",
			atomic.Throughput/1e6, tpl.Throughput/1e6)
	}
	if tpl.Throughput < occ.Throughput {
		t.Errorf("2PL %.2fM should beat OCC %.2fM under full contention",
			tpl.Throughput/1e6, occ.Throughput/1e6)
	}
	if occ.Aborts == 0 {
		t.Error("OCC should abort under full contention")
	}
	if doppel.Throughput < 10*occ.Throughput {
		t.Errorf("doppel %.2fM vs occ %.2fM: expected order-of-magnitude win",
			doppel.Throughput/1e6, occ.Throughput/1e6)
	}
}

func TestDoppelMatchesOCCWithoutContention(t *testing.T) {
	gen := IncrGen(100_000, 0.0, 0)
	d := Run(quick(Doppel, 8), gen)
	if len(d.SplitKeys) != 0 {
		t.Fatalf("doppel split keys on a uniform workload: %v", d.SplitKeys)
	}
	if d.PhaseChanges != 0 {
		t.Fatalf("doppel changed phases with nothing to split: %d", d.PhaseChanges)
	}
}

func TestDoppelScalesWithCores(t *testing.T) {
	// Figure 9: at 100% hot-key writes, Doppel's total throughput should
	// grow with cores while OCC's stays flat (or worse).
	gen := IncrGen(10_000, 1.0, 0)
	d4 := Run(quick(Doppel, 4), gen).Throughput
	d16 := Run(quick(Doppel, 16), gen).Throughput
	if d16 < 2.5*d4 {
		t.Errorf("doppel 16-core %.2fM not scaling over 4-core %.2fM", d16/1e6, d4/1e6)
	}
	o4 := Run(quick(OCC, 4), gen).Throughput
	o16 := Run(quick(OCC, 16), gen).Throughput
	if o16 > 2*o4 {
		t.Errorf("OCC should not scale under full contention: %.2fM -> %.2fM", o4/1e6, o16/1e6)
	}
}

func TestZipfSplitThreshold(t *testing.T) {
	// Figure 11 / Table 2: no splitting at low alpha, a few keys split
	// at high alpha.
	lowZ := workload.NewZipf(100_000, 0.4)
	cfg := quick(Doppel, 16)
	low := Run(cfg, IncrZGen(lowZ))
	if len(low.SplitKeys) != 0 {
		t.Errorf("alpha=0.4 split keys: %v", low.SplitKeys)
	}
	highZ := workload.NewZipf(100_000, 1.4)
	high := Run(cfg, IncrZGen(highZ))
	if len(high.SplitKeys) == 0 || len(high.SplitKeys) > 10 {
		t.Errorf("alpha=1.4 split keys: %v", high.SplitKeys)
	}
	// The most popular key must be among them.
	found := false
	for _, k := range high.SplitKeys {
		if k == 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("top key not split at alpha=1.4: %v", high.SplitKeys)
	}
	if high.SplitCoverage <= 0 {
		t.Error("split coverage should be positive")
	}
}

func TestLikeStashesReadsAndWins(t *testing.T) {
	// §8.5: a 50/50 LIKE mix at alpha=1.4 splits the hot pages; reads of
	// hot pages stash, yet Doppel still beats OCC.
	z := workload.NewZipf(100_000, 1.4)
	mk := func(e Kind) Config {
		c := quick(e, 16)
		c.Records = 200_000
		c.Warmup = 60_000_000
		c.Duration = 200_000_000
		return c
	}
	d := Run(mk(Doppel), LikeGen(100_000, 100_000, z, 0.5))
	o := Run(mk(OCC), LikeGen(100_000, 100_000, z, 0.5))
	if len(d.SplitKeys) == 0 {
		t.Fatal("no pages split")
	}
	if d.Stashes == 0 {
		t.Fatal("reads of split pages should stash")
	}
	if d.Throughput < 1.2*o.Throughput {
		t.Errorf("doppel %.2fM vs occ %.2fM on LIKE 50/50", d.Throughput/1e6, o.Throughput/1e6)
	}
	// Read latency must reflect stash waits: 99th percentile read
	// latency on the order of the phase length (20ms), far above the
	// microsecond-scale write latency (Table 3).
	if d.ReadLat.Quantile(0.99) < 1_000_000 {
		t.Errorf("stashed read p99 %.0fus too low", float64(d.ReadLat.Quantile(0.99))/1000)
	}
	if d.WriteLat.Quantile(0.5) > 100_000 {
		t.Errorf("write p50 %.0fus too high", float64(d.WriteLat.Quantile(0.5))/1000)
	}
}

func TestLikeReadHeavyDoesNotSplit(t *testing.T) {
	// §8.5 / Figure 12: below ~30% writes Doppel does not split and
	// behaves like OCC.
	z := workload.NewZipf(100_000, 1.4)
	cfg := quick(Doppel, 16)
	cfg.Records = 200_000
	d := Run(cfg, LikeGen(100_000, 100_000, z, 0.10))
	if len(d.SplitKeys) != 0 {
		t.Errorf("10%% writes split keys: %v", d.SplitKeys)
	}
}

func TestChangingHotKeyAdapts(t *testing.T) {
	// Figure 10: the hot key changes; Doppel must demote the old key and
	// split the new one.
	cfg := quick(Doppel, 8)
	cfg.Records = 10_000
	cfg.Warmup = 0
	cfg.Duration = 400_000_000               // 400 ms
	gen := IncrGen(10_000, 0.8, 150_000_000) // change every 150 ms
	res := Run(cfg, gen)
	if len(res.SplitKeys) == 0 || len(res.SplitKeys) > 2 {
		t.Errorf("final split keys %v; stale keys not demoted", res.SplitKeys)
	}
	if res.PhaseChanges < 4 {
		t.Errorf("phase changes %d", res.PhaseChanges)
	}
}

func TestTimeline(t *testing.T) {
	cfg := quick(OCC, 4)
	cfg.TimelineBucket = 20_000_000
	res := Run(cfg, IncrGen(1000, 0.1, 0))
	if len(res.Timeline) == 0 {
		t.Fatal("no timeline")
	}
	var nonzero int
	for _, v := range res.Timeline {
		if v > 0 {
			nonzero++
		}
	}
	if nonzero < len(res.Timeline)/2 {
		t.Fatalf("timeline mostly empty: %v", res.Timeline)
	}
}

func TestTwoPLNeverAborts(t *testing.T) {
	res := Run(quick(TwoPL, 8), IncrGen(100, 1.0, 0))
	if res.Aborts != 0 {
		t.Fatalf("2PL aborted %d times", res.Aborts)
	}
}

func TestSiloSlowerThanOCC(t *testing.T) {
	gen := IncrGen(100_000, 0, 0)
	o := Run(quick(OCC, 8), gen).Throughput
	s := Run(quick(Silo, 8), gen).Throughput
	if s >= o {
		t.Fatalf("silo %.2fM should trail occ %.2fM", s/1e6, o/1e6)
	}
}

func TestManualHints(t *testing.T) {
	cfg := quick(Doppel, 8)
	cfg.Doppel = DefaultParams()
	cfg.Doppel.DisableAutoSplit = true
	cfg.Doppel.Hints = map[int32]store.OpKind{0: store.OpAdd}
	res := Run(cfg, IncrGen(1000, 0.9, 0))
	if !reflect.DeepEqual(res.SplitKeys, []int32{0}) {
		t.Fatalf("hinted split keys %v", res.SplitKeys)
	}
	if res.PhaseChanges == 0 {
		t.Fatal("no phase changes with a hint present")
	}
}

func TestRUBiSGenShapes(t *testing.T) {
	z := workload.NewZipf(1000, 1.0)
	gen := RUBiSGen(10_000, 1000, z, 0.5)
	records := RUBiSRecords(10_000, 1000)
	if records <= 0 {
		t.Fatal("records")
	}
	cfg := quick(Doppel, 8)
	cfg.Records = records
	res := Run(cfg, gen)
	if res.Commits == 0 {
		t.Fatal("no commits")
	}
}

func TestRUBiSDoppelBeatsOCCAtHighSkew(t *testing.T) {
	// Figure 15 at alpha = 1.8.
	z := workload.NewZipf(33_000, 1.8)
	records := RUBiSRecords(100_000, 33_000)
	mk := func(e Kind) Config {
		c := quick(e, 16)
		c.Records = records
		c.Warmup = 60_000_000
		c.Duration = 200_000_000
		return c
	}
	d := Run(mk(Doppel), RUBiSGen(100_000, 33_000, z, 0.5))
	o := Run(mk(OCC), RUBiSGen(100_000, 33_000, z, 0.5))
	if d.Throughput < 1.5*o.Throughput {
		t.Errorf("RUBiS-C alpha=1.8: doppel %.2fM vs occ %.2fM",
			d.Throughput/1e6, o.Throughput/1e6)
	}
	if len(d.SplitKeys) == 0 {
		t.Error("no auction metadata split")
	}
}
