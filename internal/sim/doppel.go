package sim

import (
	"container/heap"
	"sort"

	"doppel/internal/store"
)

// doppelGate runs Doppel's phase machinery when core c is about to start
// a new transaction. It returns false when the core parked at a barrier.
func (s *state) doppelGate(c *simCore) bool {
	p := &s.cfg.Doppel
	if !s.barrier && c.clock >= s.nextChange {
		if s.split {
			// A split phase that stashed nothing has no transaction
			// waiting on a joined phase; extend it instead of paying a
			// barrier, up to MaxSplitExtend times so the classifier can
			// still adapt.
			if s.stashedPhase == 0 && s.sliceWritesPhase > uint64(p.KeepMinWrites) &&
				s.extends < p.MaxSplitExtend {
				s.extends++
				s.sliceWritesPhase = 0
				s.nextChange = c.clock + p.PhaseLen
			} else {
				s.extends = 0
				s.barrier = true
				s.target = false
			}
		} else {
			// Propose joined → split, unless the classifier finds
			// nothing worth splitting ("the coordinator delays the next
			// split phase", §5.4).
			set := s.decideNextSplit()
			if len(set) == 0 {
				s.nextChange = c.clock + p.PhaseLen
			} else {
				s.barrier = true
				s.target = true
				s.pendingSet = set
			}
		}
	}
	if s.barrier && !c.parked {
		// Acknowledge: finish current work, merge slices when leaving a
		// split phase (§5.3), then park.
		c.ack = c.clock
		if s.split {
			c.ack += int64(len(s.splitList)) * s.cost.MergePerRecord
		}
		c.parked = true
		s.parkedCount++
		s.completeBarrierIfReady()
		return false
	}
	return true
}

// completeBarrierIfReady flips the phase once every live core has
// acknowledged, charges the barrier cost, and releases the cores
// ("phase change must wait for all cores to finish their current
// transaction", §8.2).
func (s *state) completeBarrierIfReady() {
	if !s.barrier || s.parkedCount < len(s.cores)-s.doneCount {
		return
	}
	release := int64(0)
	for _, c := range s.cores {
		if c.parked && c.ack > release {
			release = c.ack
		}
	}
	release += s.cost.BarrierBase + s.cost.BarrierPerCore*int64(len(s.cores))

	if s.split {
		// Leaving a split phase: reconciliation already charged per core
		// in the ack time; install the merged state globally.
		for _, k := range s.splitList {
			rec := &s.recs[k]
			rec.version++
			rec.splitIdx = -1
			rec.owner = -1
			rec.clearSharers()
		}
		s.splitList = s.splitList[:0]
	}
	s.split = s.target
	if s.split {
		for i, k := range sortedKeys(s.pendingSet) {
			rec := &s.recs[k]
			rec.splitIdx = int32(i)
			rec.splitOp = s.pendingSet[k]
			s.splitList = append(s.splitList, k)
		}
		s.pendingSet = nil
	}
	s.phaseChanges++
	s.phaseStart = release
	s.nextChange = release + s.cfg.Doppel.PhaseLen
	s.commitsPhase = 0
	s.stashedPhase = 0
	s.sliceWritesPhase = 0
	s.barrier = false
	s.parkedCount = 0
	for _, c := range s.cores {
		if !c.parked {
			continue
		}
		c.parked = false
		c.clock = release
		if !s.split && len(c.stash) > 0 {
			// Entering a joined phase: restart stashed transactions
			// (§5.4).
			c.drain = append(c.drain, c.stash...)
			c.stash = c.stash[:0]
		}
		s.pushCore(c)
	}
}

// pushCore returns a released core to the run heap (unless it is already
// there or the run is over for it; the main loop retires finished cores).
func (s *state) pushCore(c *simCore) {
	if c.hindex < 0 && !c.done {
		heap.Push(&s.h, c)
	}
}

// stashTxn saves the current transaction for the next joined phase
// because it accessed split data with a non-selected operation (§5.2).
func (s *state) stashTxn(c *simCore, a Access) {
	if c.clock >= s.measureStart {
		s.stashes++
	}
	s.stashedPhase++
	oc := s.stashCounts[a.Key]
	if oc == nil {
		oc = &opCounts{}
		s.stashCounts[a.Key] = oc
	}
	oc[a.Op]++
	saved := make([]Access, len(c.acc))
	copy(saved, c.acc)
	c.stash = append(c.stash, stashedTxn{saved, c.submit})
	c.acc = nil

	// Hurry the next joined phase when stashes dominate (§5.4). Mirrors
	// the real coordinator, which checks at quarter-phase granularity.
	p := &s.cfg.Doppel
	if c.clock-s.phaseStart > p.PhaseLen/4 {
		total := s.commitsPhase + s.stashedPhase
		if total > 16 && float64(s.stashedPhase) > p.HurryFraction*float64(total) {
			if s.nextChange > c.clock {
				s.nextChange = c.clock
			}
		}
	}
}

// sampleConflict feeds the classifier's joined-phase conflict window.
func (s *state) sampleConflict(key int32, op store.OpKind) {
	if s.split && s.recs[key].splitIdx >= 0 {
		return
	}
	oc := s.conflicts[key]
	if oc == nil {
		oc = &opCounts{}
		s.conflicts[key] = oc
	}
	oc[op]++
}

// decideNextSplit mirrors core.decideNextSplit (§5.5) over the
// simulator's counter windows.
func (s *state) decideNextSplit() map[int32]store.OpKind {
	p := &s.cfg.Doppel

	if !p.DisableAutoSplit {
		// Demotions.
		for k := range s.curAssign {
			if _, hinted := p.Hints[k]; hinted {
				continue
			}
			if !s.lastSplit[k] {
				continue
			}
			writes := s.splitWrites[k]
			stashes := countTotal(s.stashCounts[k])
			keepFloor := uint64(p.KeepMinWrites)
			if rel := uint64(p.KeepWriteFraction * float64(s.attemptsWindow)); rel > keepFloor {
				keepFloor = rel
			}
			if writes < keepFloor ||
				float64(stashes) > p.ReadDominance*float64(writes) {
				delete(s.curAssign, k)
				continue
			}
			if op, n := dominantSplittable(s.stashCounts[k]); op != store.OpNone && n > writes {
				s.curAssign[k] = op
			}
		}
		// Promotions.
		type cand struct {
			key  int32
			op   store.OpKind
			conf uint64
		}
		var cands []cand
		for k, oc := range s.conflicts {
			if _, already := s.curAssign[k]; already {
				continue
			}
			op, splitConf := dominantSplittable(oc)
			if op == store.OpNone {
				continue
			}
			incompat := uint64(oc[store.OpGet]) + uint64(oc[store.OpPut])
			if splitConf < uint64(p.SplitMinConflicts) {
				continue
			}
			if float64(splitConf) < p.SplitFraction*float64(s.attemptsWindow) {
				continue
			}
			if float64(incompat) > p.ReadDominance*float64(splitConf) {
				continue
			}
			cands = append(cands, cand{k, op, splitConf})
		}
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].conf != cands[j].conf {
				return cands[i].conf > cands[j].conf
			}
			return cands[i].key < cands[j].key
		})
		for _, cd := range cands {
			if len(s.curAssign) >= p.MaxSplitKeys {
				break
			}
			s.curAssign[cd.key] = cd.op
		}
	}
	for k, op := range p.Hints {
		if op.Splittable() {
			s.curAssign[k] = op
		}
	}

	// Reset windows.
	s.conflicts = map[int32]*opCounts{}
	s.stashCounts = map[int32]*opCounts{}
	s.splitWrites = map[int32]uint64{}
	s.attemptsWindow = 0

	s.lastSplit = make(map[int32]bool, len(s.curAssign))
	out := make(map[int32]store.OpKind, len(s.curAssign))
	for k, op := range s.curAssign {
		out[k] = op
		s.lastSplit[k] = true
	}
	return out
}

func countTotal(oc *opCounts) uint64 {
	if oc == nil {
		return 0
	}
	var n uint64
	for _, c := range oc {
		n += uint64(c)
	}
	return n
}

func dominantSplittable(oc *opCounts) (store.OpKind, uint64) {
	if oc == nil {
		return store.OpNone, 0
	}
	best := store.OpNone
	var bestN uint32
	var totalN uint64
	for i := range oc {
		k := store.OpKind(i)
		if !k.Splittable() || oc[i] == 0 {
			continue
		}
		totalN += uint64(oc[i])
		if oc[i] > bestN {
			bestN = oc[i]
			best = k
		}
	}
	return best, totalN
}

func sortedKeys(m map[int32]store.OpKind) []int32 {
	out := make([]int32, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
