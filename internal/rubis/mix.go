package rubis

import (
	"sync/atomic"

	"doppel/internal/engine"
	"doppel/internal/rng"
	"doppel/internal/workload"
)

// Mix generates RUBiS transactions. With BidFrac = 0.07-ish and uniform
// items it approximates the paper's RUBiS-B bidding mix ("15% read-write
// transactions and 85% read-only ... 7% total writes and 93% total
// reads"); with BidFrac = 0.5 and Zipfian items it is RUBiS-C ("50% of
// its transactions are bids on items chosen with a Zipfian
// distribution", §8.8).
type Mix struct {
	App      *App
	ItemZipf *workload.Zipf // nil → uniform item choice
	BidFrac  float64        // fraction of transactions that are StoreBid
	// DoppelOps selects the Figure 7 StoreBid/StoreComment variants
	// (commutative operations) instead of the Figure 6 read-modify-write
	// originals.
	DoppelOps bool

	clock atomic.Int64 // coarse timestamp for OPut tie-breaking
}

// NewMixB returns the RUBiS-B bidding workload.
func NewMixB(app *App, doppelOps bool) *Mix {
	return &Mix{App: app, BidFrac: 0.03, DoppelOps: doppelOps}
}

// NewMixC returns the RUBiS-C contended workload for the given Zipf
// parameter over items.
func NewMixC(app *App, alpha float64, doppelOps bool) *Mix {
	return &Mix{
		App:       app,
		ItemZipf:  workload.NewZipf(int(app.Items), alpha),
		BidFrac:   0.5,
		DoppelOps: doppelOps,
	}
}

func (m *Mix) item(r *rng.Rand) int64 {
	if m.ItemZipf != nil {
		return int64(m.ItemZipf.Sample(r))
	}
	return int64(r.Intn(int(m.App.Items)))
}

// Next implements workload.Generator.
func (m *Mix) Next(worker int, r *rng.Rand) (engine.TxFunc, bool) {
	app := m.App
	item := m.item(r)
	user := int64(r.Intn(int(app.Users)))
	roll := r.Float64()

	if roll < m.BidFrac {
		amt := int64(1 + r.Intn(1_000_000))
		if m.DoppelOps {
			ts := m.clock.Add(1)
			return func(tx engine.Tx) error {
				return app.StoreBidDoppel(tx, worker, user, item, amt, ts)
			}, true
		}
		return func(tx engine.Tx) error {
			return app.StoreBidOriginal(tx, worker, user, item, amt)
		}, true
	}
	// Scale the non-bid interactions into the remaining probability
	// mass, keeping the bidding mix's relative proportions.
	rest := (roll - m.BidFrac) / (1 - m.BidFrac)
	switch {
	case rest < 0.02: // StoreComment
		c := Comment{From: user, To: int64(r.Intn(int(app.Users))), Item: item,
			Rating: int64(r.Intn(5) + 1), Text: "great seller"}
		if m.DoppelOps {
			return func(tx engine.Tx) error {
				return app.StoreCommentDoppel(tx, worker, c)
			}, true
		}
		return func(tx engine.Tx) error {
			return app.StoreCommentOriginal(tx, worker, c)
		}, true
	case rest < 0.03: // StoreBuyNow
		return func(tx engine.Tx) error {
			return app.StoreBuyNow(tx, worker, user, item, 1)
		}, true
	case rest < 0.04: // StoreItem
		it := Item{Seller: user, Category: item % NumCategories,
			Region: item % NumRegions, Name: "new item"}
		return func(tx engine.Tx) error {
			_, err := app.StoreItem(tx, worker, it)
			return err
		}, true
	case rest < 0.30: // ViewItem
		return func(tx engine.Tx) error {
			_, _, _, err := app.ViewItem(tx, item)
			return err
		}, false
	case rest < 0.50: // SearchItemsByCategory
		cat := int64(r.Intn(NumCategories))
		return func(tx engine.Tx) error {
			_, err := app.SearchItemsByCategory(tx, cat)
			return err
		}, false
	case rest < 0.65: // SearchItemsByRegion
		reg := int64(r.Intn(NumRegions))
		return func(tx engine.Tx) error {
			_, err := app.SearchItemsByRegion(tx, reg)
			return err
		}, false
	case rest < 0.75: // ViewBidHistory
		return func(tx engine.Tx) error {
			_, err := app.ViewBidHistory(tx, item)
			return err
		}, false
	case rest < 0.85: // ViewUserInfo
		return func(tx engine.Tx) error {
			_, _, err := app.ViewUserInfo(tx, user)
			return err
		}, false
	case rest < 0.92: // AboutMe
		return func(tx engine.Tx) error { return app.AboutMe(tx, user) }, false
	case rest < 0.96: // BrowseCategories
		return func(tx engine.Tx) error { return app.BrowseCategories(tx) }, false
	default: // BrowseRegions
		return func(tx engine.Tx) error { return app.BrowseRegions(tx) }, false
	}
}

var _ workload.Generator = (*Mix)(nil)
