package rubis

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"doppel/internal/core"
	"doppel/internal/engine"
	"doppel/internal/occ"
	"doppel/internal/rng"
	"doppel/internal/store"
	"doppel/internal/twopl"
)

func TestRowCodecs(t *testing.T) {
	b := Bid{Item: 5, Bidder: 9, Price: 1234}
	got, err := DecodeBid(EncodeBid(b))
	if err != nil || got != b {
		t.Fatalf("bid: %+v %v", got, err)
	}
	if _, err := DecodeBid([]byte("short")); err == nil {
		t.Fatal("short bid should fail")
	}
	it := Item{Seller: 3, Category: 7, Region: 11, Name: "vase"}
	gi, err := DecodeItem(EncodeItem(it))
	if err != nil || gi != it {
		t.Fatalf("item: %+v %v", gi, err)
	}
	if _, err := DecodeItem(nil); err == nil {
		t.Fatal("short item should fail")
	}
	c := Comment{From: 1, To: 2, Item: 3, Rating: 4, Text: "ok"}
	gc, err := DecodeComment(EncodeComment(c))
	if err != nil || gc != c {
		t.Fatalf("comment: %+v %v", gc, err)
	}
	if _, err := DecodeComment([]byte("x")); err == nil {
		t.Fatal("short comment should fail")
	}
}

func TestKeysDistinct(t *testing.T) {
	keys := []string{
		UserKey(1), RatingKey(1), ItemKey(1), MaxBidKey(1), MaxBidderKey(1),
		NumBidsKey(1), BidsPerItemIndexKey(1), BidKey(1), CommentKey(1),
		BuyNowKey(1), CategoryIndexKey(1), RegionIndexKey(1),
	}
	seen := map[string]bool{}
	for _, k := range keys {
		if len(k) != 16 {
			t.Fatalf("key %q not 16 bytes", k)
		}
		if seen[k] {
			t.Fatalf("duplicate key %q", k)
		}
		seen[k] = true
	}
}

func commit(t *testing.T, e engine.Engine, w int, fn engine.TxFunc) {
	t.Helper()
	for i := 0; i < 100000; i++ {
		out, err := e.Attempt(w, fn, time.Now().UnixNano())
		if err != nil {
			t.Fatalf("user error: %v", err)
		}
		if out == engine.Committed || out == engine.Stashed {
			return
		}
	}
	t.Fatal("never committed")
}

func newApp(t *testing.T, workers int) (*App, *store.Store) {
	app := NewApp(50, 20, workers)
	st := store.New()
	app.Preload(st)
	return app, st
}

func TestStoreBidBothVariantsUpdateMetadata(t *testing.T) {
	for _, doppelOps := range []bool{false, true} {
		app, st := newApp(t, 1)
		e := occ.New(st, 1)
		bid := func(bidder, amt int64) engine.TxFunc {
			return func(tx engine.Tx) error {
				if doppelOps {
					return app.StoreBidDoppel(tx, 0, bidder, 7, amt, amt)
				}
				return app.StoreBidOriginal(tx, 0, bidder, 7, amt)
			}
		}
		commit(t, e, 0, bid(3, 100))
		commit(t, e, 0, bid(4, 300))
		commit(t, e, 0, bid(5, 200))
		commit(t, e, 0, func(tx engine.Tx) error {
			_, maxBid, numBids, err := app.ViewItem(tx, 7)
			if err != nil {
				return err
			}
			if maxBid != 300 {
				return fmt.Errorf("doppelOps=%v maxBid=%d", doppelOps, maxBid)
			}
			if numBids != 3 {
				return fmt.Errorf("doppelOps=%v numBids=%d", doppelOps, numBids)
			}
			return nil
		})
		if doppelOps {
			// The Doppel variant also maintains the winning bidder tuple
			// and the bid index.
			commit(t, e, 0, func(tx engine.Tx) error {
				tup, ok, err := tx.GetTuple(MaxBidderKey(7))
				if err != nil || !ok {
					return fmt.Errorf("maxBidder: %v %v", ok, err)
				}
				if string(tup.Data) != UserKey(4) {
					return fmt.Errorf("winner %q", tup.Data)
				}
				bids, err := app.ViewBidHistory(tx, 7)
				if err != nil {
					return err
				}
				if len(bids) != 3 || bids[0].Price != 300 {
					return fmt.Errorf("history %+v", bids)
				}
				return nil
			})
		}
	}
}

func TestStoreCommentUpdatesRating(t *testing.T) {
	app, st := newApp(t, 1)
	e := occ.New(st, 1)
	c := Comment{From: 1, To: 2, Item: 3, Rating: 5, Text: "great"}
	commit(t, e, 0, func(tx engine.Tx) error { return app.StoreCommentOriginal(tx, 0, c) })
	commit(t, e, 0, func(tx engine.Tx) error { return app.StoreCommentDoppel(tx, 0, c) })
	commit(t, e, 0, func(tx engine.Tx) error {
		_, rating, err := app.ViewUserInfo(tx, 2)
		if err != nil {
			return err
		}
		if rating != 10 {
			return fmt.Errorf("rating %d", rating)
		}
		return nil
	})
}

func TestStoreItemIndexesAndSearch(t *testing.T) {
	app, st := newApp(t, 1)
	e := occ.New(st, 1)
	it := Item{Seller: 1, Category: 4, Region: 9, Name: "lamp"}
	commit(t, e, 0, func(tx engine.Tx) error {
		_, err := app.StoreItem(tx, 0, it)
		return err
	})
	commit(t, e, 0, func(tx engine.Tx) error {
		items, err := app.SearchItemsByCategory(tx, 4)
		if err != nil {
			return err
		}
		if len(items) == 0 || items[0].Name != "lamp" {
			return fmt.Errorf("category search: %+v", items)
		}
		items, err = app.SearchItemsByRegion(tx, 9)
		if err != nil {
			return err
		}
		if len(items) == 0 {
			return fmt.Errorf("region search empty")
		}
		return nil
	})
}

func TestMiscTransactions(t *testing.T) {
	app, st := newApp(t, 1)
	e := occ.New(st, 1)
	commit(t, e, 0, func(tx engine.Tx) error { return app.RegisterUser(tx, 999, "bob") })
	commit(t, e, 0, func(tx engine.Tx) error { return app.StoreBuyNow(tx, 0, 1, 2, 1) })
	commit(t, e, 0, func(tx engine.Tx) error { return app.AboutMe(tx, 999) })
	commit(t, e, 0, func(tx engine.Tx) error { return app.BrowseCategories(tx) })
	commit(t, e, 0, func(tx engine.Tx) error { return app.BrowseRegions(tx) })
}

func TestFreshIDsUniqueAcrossWorkers(t *testing.T) {
	app := NewApp(10, 10, 4)
	seen := map[int64]bool{}
	for w := 0; w < 4; w++ {
		for i := 0; i < 100; i++ {
			id := app.fresh(app.nextBid, w)
			if seen[id] {
				t.Fatalf("duplicate fresh id %d", id)
			}
			seen[id] = true
		}
	}
}

func TestMixProportions(t *testing.T) {
	app, st := newApp(t, 1)
	e := occ.New(st, 1)
	mix := NewMixC(app, 1.0, true)
	r := rng.New(4)
	writes := 0
	const n = 4000
	for i := 0; i < n; i++ {
		fn, isWrite := mix.Next(0, r)
		if isWrite {
			writes++
		}
		commit(t, e, 0, fn)
	}
	frac := float64(writes) / n
	if frac < 0.48 || frac > 0.60 {
		t.Fatalf("RUBiS-C write fraction %.3f", frac)
	}
	b := NewMixB(app, false)
	writes = 0
	for i := 0; i < n; i++ {
		fn, isWrite := b.Next(0, r)
		if isWrite {
			writes++
		}
		commit(t, e, 0, fn)
	}
	frac = float64(writes) / n
	if frac < 0.04 || frac > 0.13 {
		t.Fatalf("RUBiS-B write fraction %.3f", frac)
	}
}

// TestBidConservationUnderDoppel drives concurrent RUBiS-C bidding
// through the real Doppel engine and checks numBids conservation and
// maxBid correctness after Close.
func TestBidConservationUnderDoppel(t *testing.T) {
	const workers = 4
	app := NewApp(100, 5, workers)
	st := store.New()
	app.Preload(st)
	cfg := core.DefaultConfig(workers)
	cfg.PhaseLength = 2 * time.Millisecond
	cfg.SplitMinConflicts = 2
	cfg.SplitFraction = 0.001
	db := core.Open(st, cfg)

	var wg, quota sync.WaitGroup
	var stop, maxSeen [workers]int64
	var bids [workers]int64
	var stopPolling sync.WaitGroup
	done := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		quota.Add(1)
		stopPolling.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rng.New(uint64(w) + 17)
			count := int64(0)
			for count < 3000 {
				item := int64(r.Intn(5))
				amt := int64(1 + r.Intn(1_000_000))
				ts := time.Now().UnixNano()
				out, err := db.Attempt(w, func(tx engine.Tx) error {
					return app.StoreBidDoppel(tx, w, int64(r.Intn(100)), item, amt, ts)
				}, ts)
				if err != nil {
					t.Error(err)
					break
				}
				if out == engine.Committed || out == engine.Stashed {
					count++
					if amt > maxSeen[w] {
						maxSeen[w] = amt
					}
				}
			}
			bids[w] = count
			quota.Done()
			stopPolling.Done()
			for {
				select {
				case <-done:
					return
				default:
					db.Poll(w)
				}
			}
		}(w)
	}
	quota.Wait()
	close(done)
	wg.Wait()
	db.Close()
	_ = stop

	var total int64
	var maxBid int64
	for i := int64(0); i < 5; i++ {
		n, _ := st.Get(NumBidsKey(i)).Value().AsInt()
		total += n
		m, _ := st.Get(MaxBidKey(i)).Value().AsInt()
		if m > maxBid {
			maxBid = m
		}
	}
	var want int64
	var wantMax int64
	for w := 0; w < workers; w++ {
		want += bids[w]
		if maxSeen[w] > wantMax {
			wantMax = maxSeen[w]
		}
	}
	if total != want {
		t.Fatalf("numBids %d != committed bids %d", total, want)
	}
	if maxBid != wantMax {
		t.Fatalf("maxBid %d != max committed amount %d", maxBid, wantMax)
	}
}

// TestMixRunsUnder2PL exercises the lock-order discipline: the full mix
// must complete under 2PL without deadlocking.
func TestMixRunsUnder2PL(t *testing.T) {
	const workers = 4
	app := NewApp(100, 10, workers)
	st := store.New()
	app.Preload(st)
	e := twopl.New(st, workers)
	mix := NewMixB(app, false)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rng.New(uint64(w) + 3)
			for i := 0; i < 2000; i++ {
				fn, _ := mix.Next(w, r)
				if _, err := e.Attempt(w, fn, time.Now().UnixNano()); err != nil {
					t.Errorf("2PL mix error: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}
