package rubis

import (
	"fmt"
	"sync/atomic"

	"doppel/internal/engine"
	"doppel/internal/store"
)

// App is one loaded RUBiS database: ID spaces plus per-worker fresh-row
// ID allocators (fresh rows never contend, like real inserts).
//
// Lock-order discipline (for the 2PL baseline): every transaction
// accesses per-item records in the fixed order
// item → maxBid → maxBidder → numBids → bidsIndex → fresh rows, and user
// records before item records, so no two transactions wait on each other
// in a cycle.
type App struct {
	Users   int64
	Items   int64
	workers int
	nextBid []atomic.Int64 // per-worker allocators (index = worker)
	nextCmt []atomic.Int64
	nextBuy []atomic.Int64
	nextItm []atomic.Int64
}

// NewApp returns a RUBiS application over the given ID spaces.
func NewApp(users, items int64, workers int) *App {
	if workers < 1 {
		workers = 1
	}
	a := &App{
		Users:   users,
		Items:   items,
		workers: workers,
		nextBid: make([]atomic.Int64, workers),
		nextCmt: make([]atomic.Int64, workers),
		nextBuy: make([]atomic.Int64, workers),
		nextItm: make([]atomic.Int64, workers),
	}
	for w := 0; w < workers; w++ {
		a.nextItm[w].Store(items) // fresh items start above the preload
	}
	return a
}

// fresh returns a globally unique ID for worker w from allocator ctr
// without cross-worker coordination.
func (a *App) fresh(ctr []atomic.Int64, w int) int64 {
	n := ctr[w%a.workers].Add(1)
	return n*int64(a.workers) + int64(w%a.workers)
}

// Preload creates the initial users, items and auction metadata directly
// in st (benchmark setup; not transactional).
func (a *App) Preload(st *store.Store) {
	for u := int64(0); u < a.Users; u++ {
		st.Preload(UserKey(u), store.BytesValue([]byte(fmt.Sprintf("user-%d", u))))
		st.Preload(RatingKey(u), store.IntValue(0))
	}
	for i := int64(0); i < a.Items; i++ {
		it := Item{Seller: i % a.Users, Category: i % NumCategories, Region: i % NumRegions}
		it.Name = fmt.Sprintf("item-%d", i)
		st.Preload(ItemKey(i), store.BytesValue(EncodeItem(it)))
		st.Preload(MaxBidKey(i), store.IntValue(0))
		st.Preload(NumBidsKey(i), store.IntValue(0))
	}
}

// RegisterUser inserts a new user with an empty rating.
func (a *App) RegisterUser(tx engine.Tx, user int64, name string) error {
	if err := tx.PutBytes(UserKey(user), []byte(name)); err != nil {
		return err
	}
	return tx.PutInt(RatingKey(user), 0)
}

// StoreItem inserts a new item and indexes it by category and region
// using top-K set records ("we modify StoreItem to insert new items into
// top-K set indexes on category and region", §7).
func (a *App) StoreItem(tx engine.Tx, worker int, it Item) (int64, error) {
	id := a.fresh(a.nextItm, worker)
	if err := tx.PutBytes(ItemKey(id), EncodeItem(it)); err != nil {
		return 0, err
	}
	if err := tx.PutInt(MaxBidKey(id), 0); err != nil {
		return 0, err
	}
	if err := tx.PutInt(NumBidsKey(id), 0); err != nil {
		return 0, err
	}
	ref := []byte(ItemKey(id))
	if err := tx.TopKInsert(CategoryIndexKey(it.Category), id, ref, IndexK); err != nil {
		return 0, err
	}
	if err := tx.TopKInsert(RegionIndexKey(it.Region), id, ref, IndexK); err != nil {
		return 0, err
	}
	return id, nil
}

// StoreBidOriginal is the paper's Figure 6: it reads the current maximum
// bid and bid count and writes them back, so every piece of auction
// metadata is a read-modify-write conflict under contention.
func (a *App) StoreBidOriginal(tx engine.Tx, worker int, bidder, item, amt int64) error {
	bidID := a.fresh(a.nextBid, worker)
	if err := tx.PutBytes(BidKey(bidID), EncodeBid(Bid{Item: item, Bidder: bidder, Price: amt})); err != nil {
		return err
	}
	highest, err := tx.GetIntForUpdate(MaxBidKey(item))
	if err != nil {
		return err
	}
	if amt > highest {
		if err := tx.PutInt(MaxBidKey(item), amt); err != nil {
			return err
		}
		if err := tx.PutBytes(MaxBidderKey(item), []byte(UserKey(bidder))); err != nil {
			return err
		}
	}
	numBids, err := tx.GetIntForUpdate(NumBidsKey(item))
	if err != nil {
		return err
	}
	return tx.PutInt(NumBidsKey(item), numBids+1)
}

// StoreBidDoppel is the paper's Figure 7: the same logical transaction
// re-cast onto commutative operations, so Doppel can run it in a split
// phase. ts is a coarse timestamp used as the OPut tiebreak order.
func (a *App) StoreBidDoppel(tx engine.Tx, worker int, bidder, item, amt, ts int64) error {
	bidID := a.fresh(a.nextBid, worker)
	bidKey := BidKey(bidID)
	if err := tx.PutBytes(bidKey, EncodeBid(Bid{Item: item, Bidder: bidder, Price: amt})); err != nil {
		return err
	}
	if err := tx.Max(MaxBidKey(item), amt); err != nil {
		return err
	}
	if err := tx.OPut(MaxBidderKey(item), store.Order{A: amt, B: ts}, []byte(UserKey(bidder))); err != nil {
		return err
	}
	if err := tx.Add(NumBidsKey(item), 1); err != nil {
		return err
	}
	return tx.TopKInsert(BidsPerItemIndexKey(item), amt, []byte(bidKey), IndexK)
}

// StoreCommentOriginal publishes a comment and updates the owner's
// rating with a read-modify-write.
func (a *App) StoreCommentOriginal(tx engine.Tx, worker int, c Comment) error {
	rating, err := tx.GetIntForUpdate(RatingKey(c.To))
	if err != nil {
		return err
	}
	id := a.fresh(a.nextCmt, worker)
	if err := tx.PutBytes(CommentKey(id), EncodeComment(c)); err != nil {
		return err
	}
	return tx.PutInt(RatingKey(c.To), rating+c.Rating)
}

// StoreCommentDoppel uses Add on the userRating (§7).
func (a *App) StoreCommentDoppel(tx engine.Tx, worker int, c Comment) error {
	if err := tx.Add(RatingKey(c.To), c.Rating); err != nil {
		return err
	}
	id := a.fresh(a.nextCmt, worker)
	return tx.PutBytes(CommentKey(id), EncodeComment(c))
}

// StoreBuyNow records an immediate purchase.
func (a *App) StoreBuyNow(tx engine.Tx, worker int, buyer, item, qty int64) error {
	id := a.fresh(a.nextBuy, worker)
	return tx.PutBytes(BuyNowKey(id), EncodeBid(Bid{Item: item, Bidder: buyer, Price: qty}))
}

// ViewItem reads an item row and its auction metadata.
func (a *App) ViewItem(tx engine.Tx, item int64) (Item, int64, int64, error) {
	raw, err := tx.GetBytes(ItemKey(item))
	if err != nil {
		return Item{}, 0, 0, err
	}
	it, err := DecodeItem(raw)
	if err != nil {
		return Item{}, 0, 0, err
	}
	maxBid, err := tx.GetInt(MaxBidKey(item))
	if err != nil {
		return Item{}, 0, 0, err
	}
	numBids, err := tx.GetInt(NumBidsKey(item))
	if err != nil {
		return Item{}, 0, 0, err
	}
	return it, maxBid, numBids, nil
}

// ViewUserInfo reads a user's profile and rating.
func (a *App) ViewUserInfo(tx engine.Tx, user int64) ([]byte, int64, error) {
	profile, err := tx.GetBytes(UserKey(user))
	if err != nil {
		return nil, 0, err
	}
	rating, err := tx.GetInt(RatingKey(user))
	if err != nil {
		return nil, 0, err
	}
	return profile, rating, nil
}

// ViewBidHistory reads the per-item bid index and the bid rows it
// references ("ViewBidHistory read[s] from these records", §7).
func (a *App) ViewBidHistory(tx engine.Tx, item int64) ([]Bid, error) {
	entries, err := tx.GetTopK(BidsPerItemIndexKey(item))
	if err != nil {
		return nil, err
	}
	bids := make([]Bid, 0, len(entries))
	for _, e := range entries {
		raw, err := tx.GetBytes(string(e.Data))
		if err != nil {
			return nil, err
		}
		if raw == nil {
			continue // bid row not visible yet (inserted this phase)
		}
		b, err := DecodeBid(raw)
		if err != nil {
			return nil, err
		}
		bids = append(bids, b)
	}
	return bids, nil
}

// SearchItemsByCategory reads the category index and the item rows it
// references.
func (a *App) SearchItemsByCategory(tx engine.Tx, cat int64) ([]Item, error) {
	return a.searchIndex(tx, CategoryIndexKey(cat))
}

// SearchItemsByRegion reads the region index and the item rows it
// references.
func (a *App) SearchItemsByRegion(tx engine.Tx, region int64) ([]Item, error) {
	return a.searchIndex(tx, RegionIndexKey(region))
}

func (a *App) searchIndex(tx engine.Tx, idxKey string) ([]Item, error) {
	entries, err := tx.GetTopK(idxKey)
	if err != nil {
		return nil, err
	}
	items := make([]Item, 0, len(entries))
	for _, e := range entries {
		raw, err := tx.GetBytes(string(e.Data))
		if err != nil {
			return nil, err
		}
		if raw == nil {
			continue
		}
		it, err := DecodeItem(raw)
		if err != nil {
			return nil, err
		}
		items = append(items, it)
	}
	return items, nil
}

// AboutMe summarizes a user: profile, rating and last bids are
// approximated by the profile and rating reads.
func (a *App) AboutMe(tx engine.Tx, user int64) error {
	_, _, err := a.ViewUserInfo(tx, user)
	return err
}

// BrowseCategories reads a handful of category index records.
func (a *App) BrowseCategories(tx engine.Tx) error {
	for c := int64(0); c < 3; c++ {
		if _, err := tx.GetTopK(CategoryIndexKey(c)); err != nil {
			return err
		}
	}
	return nil
}

// BrowseRegions reads a handful of region index records.
func (a *App) BrowseRegions(tx engine.Tx) error {
	for r := int64(0); r < 3; r++ {
		if _, err := tx.GetTopK(RegionIndexKey(r)); err != nil {
			return err
		}
	}
	return nil
}
