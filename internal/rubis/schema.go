// Package rubis is a from-scratch Go port of the RUBiS auction benchmark
// (§7, §8.8 of the paper): an eBay-style site with users, items,
// categories, regions, bids, buy-now orders and comments. Transactions
// come in two flavours where the paper distinguishes them: the original
// read-modify-write StoreBid (the paper's Figure 6) and the Doppel
// version that re-casts the auction-metadata updates as commutative
// operations (Figure 7).
//
// The port keeps only the database transactions; there are no web
// servers or browsers, exactly as in the paper's measurements.
package rubis

import (
	"encoding/binary"
	"fmt"
)

// Table key prefixes. Every RUBiS row is one record in the key/value
// store; multi-row queries go through the top-K index records.
const (
	prefUser       = 'U' // user profile (bytes)
	prefUserRating = 'R' // user rating counter (int)
	prefItem       = 'I' // item row (bytes)
	prefMaxBid     = 'M' // per-item maximum bid (int)
	prefMaxBidder  = 'W' // per-item winning bidder (ordered tuple)
	prefNumBids    = 'N' // per-item bid count (int)
	prefBidsIdx    = 'B' // per-item top-K bid index
	prefBid        = 'b' // bid rows (bytes)
	prefComment    = 'c' // comment rows (bytes)
	prefBuyNow     = 'y' // buy-now rows (bytes)
	prefCatIdx     = 'C' // per-category top-K item index
	prefRegIdx     = 'G' // per-region top-K item index
)

// NumCategories and NumRegions follow the RUBiS dataset defaults.
const (
	NumCategories = 20
	NumRegions    = 62
	// IndexK bounds the top-K index records used for browsing queries.
	IndexK = 20
)

func key(pref byte, id int64) string {
	return fmt.Sprintf("%c%015d", pref, id)
}

// UserKey returns user u's profile row key.
func UserKey(u int64) string { return key(prefUser, u) }

// RatingKey returns user u's rating counter key.
func RatingKey(u int64) string { return key(prefUserRating, u) }

// ItemKey returns item i's row key.
func ItemKey(i int64) string { return key(prefItem, i) }

// MaxBidKey returns item i's maximum-bid key.
func MaxBidKey(i int64) string { return key(prefMaxBid, i) }

// MaxBidderKey returns item i's winning-bidder key.
func MaxBidderKey(i int64) string { return key(prefMaxBidder, i) }

// NumBidsKey returns item i's bid-count key.
func NumBidsKey(i int64) string { return key(prefNumBids, i) }

// BidsPerItemIndexKey returns item i's bid index key.
func BidsPerItemIndexKey(i int64) string { return key(prefBidsIdx, i) }

// BidKey returns the row key for bid b.
func BidKey(b int64) string { return key(prefBid, b) }

// CommentKey returns the row key for comment c.
func CommentKey(c int64) string { return key(prefComment, c) }

// BuyNowKey returns the row key for buy-now order b.
func BuyNowKey(b int64) string { return key(prefBuyNow, b) }

// CategoryIndexKey returns category c's item index key.
func CategoryIndexKey(c int64) string { return key(prefCatIdx, c) }

// RegionIndexKey returns region r's item index key.
func RegionIndexKey(r int64) string { return key(prefRegIdx, r) }

// Bid is a bid row.
type Bid struct {
	Item   int64
	Bidder int64
	Price  int64
}

// EncodeBid serializes a bid row.
func EncodeBid(b Bid) []byte {
	out := make([]byte, 24)
	binary.LittleEndian.PutUint64(out[0:], uint64(b.Item))
	binary.LittleEndian.PutUint64(out[8:], uint64(b.Bidder))
	binary.LittleEndian.PutUint64(out[16:], uint64(b.Price))
	return out
}

// DecodeBid parses a bid row.
func DecodeBid(raw []byte) (Bid, error) {
	if len(raw) != 24 {
		return Bid{}, fmt.Errorf("rubis: bid row has %d bytes, want 24", len(raw))
	}
	return Bid{
		Item:   int64(binary.LittleEndian.Uint64(raw[0:])),
		Bidder: int64(binary.LittleEndian.Uint64(raw[8:])),
		Price:  int64(binary.LittleEndian.Uint64(raw[16:])),
	}, nil
}

// Item is an item row.
type Item struct {
	Seller   int64
	Category int64
	Region   int64
	Name     string
}

// EncodeItem serializes an item row.
func EncodeItem(it Item) []byte {
	out := make([]byte, 24+len(it.Name))
	binary.LittleEndian.PutUint64(out[0:], uint64(it.Seller))
	binary.LittleEndian.PutUint64(out[8:], uint64(it.Category))
	binary.LittleEndian.PutUint64(out[16:], uint64(it.Region))
	copy(out[24:], it.Name)
	return out
}

// DecodeItem parses an item row.
func DecodeItem(raw []byte) (Item, error) {
	if len(raw) < 24 {
		return Item{}, fmt.Errorf("rubis: item row has %d bytes, want >= 24", len(raw))
	}
	return Item{
		Seller:   int64(binary.LittleEndian.Uint64(raw[0:])),
		Category: int64(binary.LittleEndian.Uint64(raw[8:])),
		Region:   int64(binary.LittleEndian.Uint64(raw[16:])),
		Name:     string(raw[24:]),
	}, nil
}

// Comment is a comment row.
type Comment struct {
	From, To int64
	Item     int64
	Rating   int64
	Text     string
}

// EncodeComment serializes a comment row.
func EncodeComment(c Comment) []byte {
	out := make([]byte, 32+len(c.Text))
	binary.LittleEndian.PutUint64(out[0:], uint64(c.From))
	binary.LittleEndian.PutUint64(out[8:], uint64(c.To))
	binary.LittleEndian.PutUint64(out[16:], uint64(c.Item))
	binary.LittleEndian.PutUint64(out[24:], uint64(c.Rating))
	copy(out[32:], c.Text)
	return out
}

// DecodeComment parses a comment row.
func DecodeComment(raw []byte) (Comment, error) {
	if len(raw) < 32 {
		return Comment{}, fmt.Errorf("rubis: comment row has %d bytes, want >= 32", len(raw))
	}
	return Comment{
		From:   int64(binary.LittleEndian.Uint64(raw[0:])),
		To:     int64(binary.LittleEndian.Uint64(raw[8:])),
		Item:   int64(binary.LittleEndian.Uint64(raw[16:])),
		Rating: int64(binary.LittleEndian.Uint64(raw[24:])),
		Text:   string(raw[32:]),
	}, nil
}
