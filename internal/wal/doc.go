// Package wal implements a segmented, asynchronous, batched redo log —
// the durability design the paper defers to future work ("existing work
// suggests that asynchronous batched logging could be added to Doppel
// without becoming a bottleneck", §3, citing Silo and Hekaton).
//
// A log lives in a directory of numbered segment files
// (wal-00000001.log, wal-00000002.log, ...) plus a MANIFEST that names
// the newest durable snapshot, the first segment recovery must replay,
// and the TID range and record count of every live sealed segment.
// Writers pre-encode redo records (AppendRecord) into buffers they own
// and submit the bytes with Append, which assigns each record a
// monotonically increasing log sequence number (LSN) and returns
// without waiting for I/O. A single background goroutine batches
// everything that arrived since its last write, writes one group to the
// current segment, syncs once, and then advances the durability
// watermark to the batch's highest LSN — one atomic store and one
// condition broadcast per fsync, however many records the batch held.
// Durability is observed against the watermark: a record is durable
// once Durable() reaches its LSN, and WaitDurable(lsn) blocks until it
// does (AppendSync bundles encode + append + wait for callers off the
// hot path). Records carry a CRC so torn tails are detected and ignored
// at replay.
//
// Segments seal two ways: checkpoints call Rotate at a quiesced
// barrier, and Options.MaxSegmentBytes seals a segment as soon as its
// size crosses the threshold, between group commits. Either way the
// sealed segment's metadata is published in the manifest, Install
// publishes a snapshot and garbage-collects the segments (and
// metadata) the snapshot subsumes, and recovery replays only segments
// at or after the manifest's sequence number.
//
// # Invariants
//
//   - Append order per key follows commit order: a committer holds the
//     record's commit lock while submitting its redo record, so records
//     touching one key enter the log in strictly increasing TID order.
//     Recovery's highest-TID-wins replay depends on this.
//   - Segment boundaries fall on record boundaries: rotation (explicit
//     or size-based) happens only between group commits.
//   - Torn-tail trim rule: reopening an existing directory never
//     truncates acknowledged data. Only bytes past the last valid
//     record of the newest segment — bytes that were never part of a
//     completed group-commit acknowledgement — are trimmed, so any
//     number of crash → recover cycles preserve state. Corruption
//     anywhere else (a sealed segment, a gap in the sequence, the
//     manifest, a sealed segment disagreeing with its recorded
//     metadata) fails recovery loudly instead of dropping commits.
//   - Write failures are terminal: after any segment write, sync, seal
//     or manifest failure the logger refuses further appends and
//     reports the cause via Err, because records appended behind
//     unreplayable bytes would look durable but be unrecoverable. The
//     watermark freezes at the last synced batch: WaitDurable keeps
//     acknowledging LSNs at or below it (those records are on disk)
//     and reports the terminal error for everything later.
package wal
