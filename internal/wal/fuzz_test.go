package wal

import (
	"bytes"
	"testing"
)

// FuzzReplay feeds arbitrary bytes to the segment replayer. Replay must
// never panic, and it must never return wrong data: the records it
// returns, re-encoded canonically, must reproduce a byte prefix of the
// input. (Encoding is deterministic and decodeBody rejects trailing
// bytes, so any accepted record corresponds exactly to the bytes it was
// decoded from.)
func FuzzReplay(f *testing.F) {
	f.Add([]byte{})
	var valid []byte
	valid = AppendRecord(valid, Record{TID: 1, Ops: []Op{{Key: "a", Value: []byte("1")}}})
	valid = AppendRecord(valid, Record{TID: 2, Ops: []Op{{Key: "bb", Value: nil}, {Key: "c", Value: []byte("xyz")}}})
	f.Add(valid)
	f.Add(valid[:len(valid)-3]) // torn tail
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)-2] ^= 0xFF // corrupt body
	f.Add(flipped)
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0x7F, 0, 0, 0, 0}) // huge length

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, _, _, err := replayReader(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("in-memory replay cannot fail: %v", err)
		}
		var re []byte
		for _, r := range recs {
			re = AppendRecord(re, r)
		}
		if !bytes.HasPrefix(data, re) {
			t.Fatalf("replayed records re-encode to %x, not a prefix of input %x", re, data)
		}
	})
}
