// Package wal implements asynchronous batched redo logging — the
// durability design the paper defers to future work ("existing work
// suggests that asynchronous batched logging could be added to Doppel
// without becoming a bottleneck", §3, citing Silo and Hekaton).
//
// Writers append per-transaction redo records; a single background
// goroutine batches everything that arrived since the last write, writes
// one group to the log file, syncs once, and then releases every waiter
// in the group (group commit). Records carry a CRC so torn tails are
// detected and ignored at replay.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
)

// Op is one redo operation: set key to value. Doppel's commutative
// operations reduce to value installs at commit time, so redo needs only
// the final value per record per transaction.
type Op struct {
	Key   string
	Value []byte
}

// Record is one transaction's redo log entry.
type Record struct {
	TID uint64
	Ops []Op
}

// Logger is an asynchronous group-commit redo logger.
type Logger struct {
	mu      sync.Mutex
	cond    *sync.Cond
	pending []pendingRec
	closed  bool
	err     error

	f  *os.File
	wg sync.WaitGroup
}

type pendingRec struct {
	rec  Record
	done chan error
}

// Open creates (or truncates) a log file at path and starts the group
// committer.
func Open(path string) (*Logger, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	l := &Logger{f: f}
	l.cond = sync.NewCond(&l.mu)
	l.wg.Add(1)
	go l.committer()
	return l, nil
}

// Append submits rec for durable logging and returns a channel that
// yields the commit error (nil on success) once the record's group has
// been synced.
func (l *Logger) Append(rec Record) <-chan error {
	done := make(chan error, 1)
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		done <- errors.New("wal: logger closed")
		return done
	}
	l.pending = append(l.pending, pendingRec{rec, done})
	l.cond.Signal()
	l.mu.Unlock()
	return done
}

// AppendSync is Append plus waiting for durability.
func (l *Logger) AppendSync(rec Record) error { return <-l.Append(rec) }

// committer drains batches and group-commits them.
func (l *Logger) committer() {
	defer l.wg.Done()
	for {
		l.mu.Lock()
		for len(l.pending) == 0 && !l.closed {
			l.cond.Wait()
		}
		batch := l.pending
		l.pending = nil
		closed := l.closed
		l.mu.Unlock()

		if len(batch) > 0 {
			err := l.writeBatch(batch)
			for _, p := range batch {
				p.done <- err
			}
		}
		if closed {
			return
		}
	}
}

func (l *Logger) writeBatch(batch []pendingRec) error {
	var buf []byte
	for _, p := range batch {
		buf = appendRecord(buf, p.rec)
	}
	if _, err := l.f.Write(buf); err != nil {
		return err
	}
	return l.f.Sync()
}

// Close flushes outstanding records and closes the file.
func (l *Logger) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.cond.Signal()
	l.mu.Unlock()
	l.wg.Wait()
	return l.f.Close()
}

// --- encoding ---

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// appendRecord serializes rec as:
//
//	u32 bodyLen | u32 crc(body) | body
//	body = u64 tid | u32 nops | nops × (u32 keyLen | key | u32 valLen | val)
func appendRecord(buf []byte, rec Record) []byte {
	var body []byte
	body = binary.LittleEndian.AppendUint64(body, rec.TID)
	body = binary.LittleEndian.AppendUint32(body, uint32(len(rec.Ops)))
	for _, op := range rec.Ops {
		body = binary.LittleEndian.AppendUint32(body, uint32(len(op.Key)))
		body = append(body, op.Key...)
		body = binary.LittleEndian.AppendUint32(body, uint32(len(op.Value)))
		body = append(body, op.Value...)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(body)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(body, castagnoli))
	return append(buf, body...)
}

// Replay reads records from path in order, stopping cleanly at a torn or
// corrupt tail. It returns the decoded records.
func Replay(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []Record
	var hdr [8]byte
	for {
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return out, nil // clean end or torn header: stop
			}
			return out, err
		}
		bodyLen := binary.LittleEndian.Uint32(hdr[:4])
		wantCRC := binary.LittleEndian.Uint32(hdr[4:])
		if bodyLen > 1<<30 {
			return out, nil // corrupt length: treat as torn tail
		}
		body := make([]byte, bodyLen)
		if _, err := io.ReadFull(f, body); err != nil {
			return out, nil // torn body
		}
		if crc32.Checksum(body, castagnoli) != wantCRC {
			return out, nil // corrupt body: stop at last good record
		}
		rec, err := decodeBody(body)
		if err != nil {
			return out, nil
		}
		out = append(out, rec)
	}
}

func decodeBody(body []byte) (Record, error) {
	if len(body) < 12 {
		return Record{}, errors.New("wal: short body")
	}
	rec := Record{TID: binary.LittleEndian.Uint64(body)}
	n := binary.LittleEndian.Uint32(body[8:])
	body = body[12:]
	for i := uint32(0); i < n; i++ {
		if len(body) < 4 {
			return Record{}, errors.New("wal: short key length")
		}
		kl := binary.LittleEndian.Uint32(body)
		body = body[4:]
		if uint32(len(body)) < kl {
			return Record{}, errors.New("wal: short key")
		}
		key := string(body[:kl])
		body = body[kl:]
		if len(body) < 4 {
			return Record{}, errors.New("wal: short value length")
		}
		vl := binary.LittleEndian.Uint32(body)
		body = body[4:]
		if uint32(len(body)) < vl {
			return Record{}, errors.New("wal: short value")
		}
		val := make([]byte, vl)
		copy(val, body[:vl])
		body = body[vl:]
		rec.Ops = append(rec.Ops, Op{Key: key, Value: val})
	}
	if len(body) != 0 {
		return Record{}, fmt.Errorf("wal: %d trailing bytes", len(body))
	}
	return rec, nil
}
