package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
)

// Op is one redo operation: set key to value. Doppel's commutative
// operations reduce to value installs at commit time, so redo needs only
// the final value per record per transaction.
type Op struct {
	Key   string
	Value []byte
}

// Record is one transaction's redo log entry.
type Record struct {
	TID uint64
	Ops []Op
}

// segmentName returns the file name of segment seq.
func segmentName(seq uint64) string { return fmt.Sprintf("wal-%08d.log", seq) }

// parseSegmentName inverts segmentName.
func parseSegmentName(name string) (uint64, bool) {
	var seq uint64
	if n, err := fmt.Sscanf(name, "wal-%d.log", &seq); n != 1 || err != nil {
		return 0, false
	}
	return seq, true
}

// segFile is the subset of *os.File the logger writes through. Tests
// substitute a crash-injecting implementation.
type segFile interface {
	io.Writer
	Sync() error
	Close() error
}

// openSegFunc opens (creating if needed, never truncating) a segment
// file for appending. Tests override it to inject write crashes.
type openSegFunc func(path string) (segFile, error)

func osOpenSeg(path string) (segFile, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

// syncDir fsyncs a directory so a just-created file's directory entry is
// durable. Without it, records group-committed into a freshly rotated
// segment could be acknowledged and then lost with the whole file on
// power failure. Best effort: not every filesystem supports it.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
}

// Options tunes a Logger.
type Options struct {
	// MaxSegmentBytes, when positive, seals the active segment and opens
	// the next one as soon as appended records push it past this size —
	// independent of checkpoints, which also rotate the log. Small
	// segments bound how much any single file can hold and give parallel
	// recovery units of work; 0 disables size-based rotation (segments
	// then seal only at checkpoint rotations).
	MaxSegmentBytes int64
}

// Logger is an asynchronous group-commit redo logger over a segment
// directory. Appenders submit pre-encoded records and receive a log
// sequence number (LSN); a single committer goroutine writes and fsyncs
// everything that accumulated since its last write as one batch, then
// publishes the batch's highest LSN as the durability watermark
// (Durable) and wakes WaitDurable waiters with a single broadcast.
type Logger struct {
	mu      sync.Mutex
	cond    *sync.Cond // wakes the committer
	durCond *sync.Cond // wakes WaitDurable waiters, once per synced batch
	buf     []byte     // encoded records awaiting the committer
	spare   []byte     // recycled batch buffer (double buffering)
	bufLSN  uint64     // LSN of the last record in buf
	bufMeta SegmentMeta
	lastLSN uint64 // last assigned LSN
	// durPos is the durable byte position: everything before it has been
	// written and fsynced. It is the cross-process analogue of the
	// durable LSN watermark — LSNs are session-local counters, but a
	// Position names the same bytes to any reader of the directory, so a
	// follower's tail cursor can be compared against it directly.
	durPos   Position
	rot      *rotateReq
	closed   bool
	commDone bool  // the committer has exited; the watermark is final
	termErr  error // terminal failure: the logger can no longer write

	durable atomic.Uint64 // highest LSN known synced to disk
	failed  atomic.Bool   // mirrors termErr != nil; lock-free for hot-path checks

	dir     string
	opts    Options
	openSeg openSegFunc
	lock    *os.File // exclusive directory lock (see lockDir)
	f       segFile
	seq     uint64 // sequence number of the open segment
	wg      sync.WaitGroup

	// man is the authoritative in-memory copy of the directory's
	// manifest; every durable manifest write goes through updateManifest
	// under manMu (the committer seals segments, the checkpointer
	// installs snapshots — they race).
	manMu sync.Mutex
	man   Manifest

	// curBytes and curMeta describe the open segment. They are written
	// at open (before the committer starts) and by the committer only.
	curBytes int64
	curMeta  SegmentMeta
}

type rotateReq struct {
	seq  uint64 // new segment's sequence number (filled by committer)
	err  error
	done chan struct{}
}

// Open opens (or creates) the log directory at dir and starts the group
// committer. Existing segments are preserved: the newest one is opened
// for appending after trimming any torn tail a crash may have left.
func Open(dir string) (*Logger, error) {
	return OpenOptions(dir, Options{})
}

// OpenOptions is Open with tuning options.
func OpenOptions(dir string, opts Options) (*Logger, error) {
	return openWith(dir, osOpenSeg, opts)
}

func openWith(dir string, openSeg openSegFunc, opts Options) (*Logger, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	lock, err := lockDir(dir)
	if err != nil {
		return nil, err
	}
	fail := func(err error) (*Logger, error) {
		unlockDir(lock)
		return nil, err
	}
	// A corrupt manifest is refused here for the same reason recovery
	// refuses it: appending behind state we cannot interpret risks
	// making acknowledged commits unrecoverable.
	man, _, err := ReadManifest(dir)
	if err != nil {
		return fail(err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		return fail(err)
	}
	seq := uint64(1)
	var curBytes int64
	var curMeta SegmentMeta
	if n := len(segs); n > 0 {
		seq = segs[n-1].Seq
		// Trim a torn tail so that records appended after reopen follow
		// the last valid record (otherwise replay would stop at the torn
		// bytes and miss everything written after recovery), and rebuild
		// the open segment's size and TID-range metadata from the same
		// scan.
		curBytes, curMeta, err = trimAndScan(segs[n-1].Path, seq)
		if err != nil {
			return fail(err)
		}
	}
	curMeta.Seq = seq
	// A crash between sealing a segment and opening its successor leaves
	// the manifest recording the newest segment as sealed. We are about
	// to append to that segment, which would contradict its recorded
	// metadata (failing the next recovery's corruption check) and later
	// duplicate its manifest line when it seals again — so durably
	// retract the entry before any append.
	if man.SealedFor(seq) != nil {
		live := man.Sealed[:0]
		for _, s := range man.Sealed {
			if s.Seq != seq {
				live = append(live, s)
			}
		}
		man.Sealed = live
		if err := writeManifest(dir, man); err != nil {
			return fail(err)
		}
	}
	f, err := openSeg(filepath.Join(dir, segmentName(seq)))
	if err != nil {
		return fail(err)
	}
	syncDir(dir)
	l := &Logger{dir: dir, opts: opts, openSeg: openSeg, lock: lock, f: f, seq: seq,
		man: man, curBytes: curBytes, curMeta: curMeta,
		durPos: Position{Seq: seq, Offset: curBytes}}
	l.cond = sync.NewCond(&l.mu)
	l.durCond = sync.NewCond(&l.mu)
	l.wg.Add(1)
	go l.committer()
	return l, nil
}

// Dir returns the log directory.
func (l *Logger) Dir() string { return l.dir }

// SegmentSeq returns the sequence number of the segment currently being
// appended to.
func (l *Logger) SegmentSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Append submits one pre-encoded redo record (the output of
// AppendRecord or EncodeRecord) carrying transaction ID tid, and
// returns the record's log sequence number. The frame bytes are copied
// into the logger's batch buffer, so the caller may reuse its encode
// buffer immediately; in steady state Append allocates nothing and
// never blocks on I/O. Durability is observed separately: the record is
// durable once Durable() reaches the returned LSN, and WaitDurable
// blocks until it does. An error return means the record was refused
// (the logger is closed or terminally failed) and no LSN was assigned.
func (l *Logger) Append(frame []byte, tid uint64) (uint64, error) {
	l.mu.Lock()
	if l.closed {
		err := l.termErr
		l.mu.Unlock()
		if err != nil {
			return 0, err
		}
		return 0, errors.New("wal: logger closed")
	}
	l.lastLSN++
	lsn := l.lastLSN
	l.buf = append(l.buf, frame...)
	l.bufLSN = lsn
	l.bufMeta.extendTID(tid)
	l.cond.Signal()
	l.mu.Unlock()
	return lsn, nil
}

// Durable returns the durability watermark: every record whose LSN is
// at or below it has been written and fsynced. It is a single atomic
// load, advanced once per group-commit batch.
func (l *Logger) Durable() uint64 { return l.durable.Load() }

// DurablePosition returns the durable byte position: every byte of the
// log before it has been written and fsynced, and every record whose
// durability was ever acknowledged lies entirely before it. Unlike the
// LSN watermark — a session-local counter that restarts with each Open
// — a Position names concrete bytes in the directory, so a replication
// follower tailing the segments can compare its own progress against
// it. After a clean Close the final flush has run, so the value is the
// log's true end.
func (l *Logger) DurablePosition() Position {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.durPos
}

// WaitDurable blocks until the record with log sequence number lsn is
// durable, i.e. its group commit has been written and fsynced. A nil
// return is the durability acknowledgement: the record survives any
// subsequent crash and reopen. After a terminal logger failure,
// WaitDurable still returns nil for LSNs at or below the watermark
// (those batches reached disk before the failure) and the terminal
// error for everything later — records the dead logger will never
// write. Waiting on an LSN Append never assigned resolves once the
// logger closes or fails (a clean Close flushes every assigned LSN
// first, so only an unassigned one can see the closed error).
func (l *Logger) WaitDurable(lsn uint64) error {
	if l.durable.Load() >= lsn {
		return nil
	}
	l.mu.Lock()
	for l.durable.Load() < lsn && l.termErr == nil && !l.commDone {
		l.durCond.Wait()
	}
	err := l.termErr
	l.mu.Unlock()
	if l.durable.Load() >= lsn {
		return nil
	}
	if err == nil {
		err = errors.New("wal: logger closed before lsn became durable")
	}
	return err
}

// AppendSync encodes rec, appends it and waits for durability — the
// convenience path for callers outside the commit hot loop (tests,
// tools, compatibility). The hot path uses AppendRecord + Append with
// caller-owned buffers instead and observes durability through the
// watermark.
func (l *Logger) AppendSync(rec Record) error {
	lsn, err := l.Append(AppendRecord(nil, rec), rec.TID)
	if err != nil {
		return err
	}
	return l.WaitDurable(lsn)
}

// Rotate flushes everything appended so far to the current segment,
// seals it, and opens the next segment; it returns the new segment's
// sequence number. The caller must guarantee no Appends are in flight
// (the checkpoint barrier quiesces all workers before rotating):
// otherwise a record could land on the wrong side of the cut.
func (l *Logger) Rotate() (uint64, error) {
	req := &rotateReq{done: make(chan struct{})}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return 0, errors.New("wal: logger closed")
	}
	if l.rot != nil {
		l.mu.Unlock()
		return 0, errors.New("wal: rotation already in progress")
	}
	l.rot = req
	l.cond.Signal()
	l.mu.Unlock()
	<-req.done
	return req.seq, req.err
}

// committer drains batches and group-commits them; it also executes
// rotation requests after flushing the batch that preceded them. On
// exit — clean close or terminal failure — the watermark is final, so
// any remaining WaitDurable waiter is woken to observe its fate.
func (l *Logger) committer() {
	defer func() {
		l.mu.Lock()
		l.commDone = true
		l.durCond.Broadcast()
		l.mu.Unlock()
		l.wg.Done()
	}()
	for {
		l.mu.Lock()
		for len(l.buf) == 0 && l.rot == nil && !l.closed {
			l.cond.Wait()
		}
		// Swap the fill buffer for the recycled one so appenders keep
		// writing while this batch is on its way to disk; the pair is
		// reused forever, so the steady-state commit path allocates
		// nothing on either side.
		batch := l.buf
		batchLSN := l.bufLSN
		batchMeta := l.bufMeta
		l.buf = l.spare[:0]
		l.spare = nil
		l.bufMeta = SegmentMeta{}
		rot := l.rot
		l.rot = nil
		closed := l.closed
		f := l.f
		l.mu.Unlock()

		if len(batch) > 0 {
			err := writeBatch(f, batch)
			if err != nil {
				// A failed (possibly partial) batch write leaves junk at
				// the segment tail. Appending later batches after it
				// would strand them behind bytes replay cannot cross —
				// they would look durable but be unrecoverable, and the
				// next Open's torn-tail trim would even delete them. So
				// any write failure is terminal: fail fast and loudly.
				l.fail(err)
				if rot != nil {
					rot.err = err
					close(rot.done)
				}
				return
			}
			// Publish durability, recycle the batch buffer, and release
			// every waiter in the group with one broadcast. curBytes is
			// committer-owned, so reading it outside the lock is safe; the
			// durable position itself is published under mu alongside the
			// watermark broadcast.
			l.durable.Store(batchLSN)
			newOff := l.curBytes + int64(len(batch))
			l.mu.Lock()
			l.spare = batch[:0]
			l.durPos = Position{Seq: l.seq, Offset: newOff}
			l.durCond.Broadcast()
			l.mu.Unlock()
			l.curBytes += int64(len(batch))
			l.curMeta.merge(batchMeta)
		}
		if rot != nil {
			l.doRotate(rot)
		} else if l.opts.MaxSegmentBytes > 0 && l.curBytes >= l.opts.MaxSegmentBytes && !closed {
			// Size-based rotation: the segment reached its byte budget, so
			// seal it and move on, independent of any checkpoint. Sealing
			// happens between batches, so segment boundaries always fall
			// on record boundaries.
			if _, err := l.advance(); err != nil {
				l.fail(err)
				return
			}
		}
		if closed {
			return
		}
	}
}

// fail marks the logger terminally broken: appends error out
// immediately, buffered records are discarded (their waiters observe
// the terminal error through WaitDurable — the watermark never reaches
// their LSNs), a Rotate that queued while the committer was mid-write
// is released with the error (its caller is a checkpoint barrier
// holding every worker — stranding it would deadlock the database), and
// Err() reports the cause so operators can see that durability has
// stopped.
func (l *Logger) fail(err error) {
	l.mu.Lock()
	l.closed = true
	if l.termErr == nil {
		l.termErr = err
	}
	l.failed.Store(true)
	l.buf = nil
	l.bufMeta = SegmentMeta{}
	rot := l.rot
	l.rot = nil
	l.durCond.Broadcast()
	l.mu.Unlock()
	if rot != nil {
		rot.err = err
		close(rot.done)
	}
	_ = l.f.Close()
}

// doRotate seals the current segment and opens the next one on behalf
// of an explicit Rotate call. Every failure is terminal: a segment that
// cannot be synced or sealed cannot be trusted to hold further
// acknowledged records.
func (l *Logger) doRotate(rot *rotateReq) {
	seq, err := l.advance()
	if err != nil {
		l.fail(err)
		rot.err = err
		close(rot.done)
		return
	}
	rot.seq = seq
	close(rot.done)
}

// advance seals the current segment — sync, close, publish its
// metadata in the manifest — and opens the next one, returning the new
// sequence number. It runs on the committer goroutine only. On error
// the caller must fail the logger: the old segment is closed and the
// log cannot accept further records.
func (l *Logger) advance() (uint64, error) {
	if err := l.f.Sync(); err != nil {
		return 0, err
	}
	if err := l.f.Close(); err != nil {
		return 0, err
	}
	// Publish the sealed segment's metadata before opening the next
	// segment. If we crash in between, the just-sealed segment is the
	// newest on disk and recovery treats it like any append target —
	// metadata is a cross-check, never a prerequisite. A manifest that
	// cannot be written is treated like any other write failure:
	// terminal, because it signals the directory is no longer reliably
	// writable.
	sealed := l.curMeta
	if err := l.updateManifest(func(m *Manifest) {
		m.Sealed = append(m.Sealed, sealed)
	}); err != nil {
		return 0, err
	}
	next := l.seq + 1
	f, err := l.openSeg(filepath.Join(l.dir, segmentName(next)))
	if err != nil {
		return 0, err
	}
	syncDir(l.dir)
	l.mu.Lock()
	l.f = f
	l.seq = next
	// The sealed segment's end and the successor's start name the same
	// log point; publishing the successor form keeps the durable
	// position aligned with where the next batch will land.
	l.durPos = Position{Seq: next}
	l.mu.Unlock()
	l.curBytes = 0
	l.curMeta = SegmentMeta{Seq: next}
	return next, nil
}

// maxSealedMeta bounds how many sealed-segment metadata lines the
// manifest keeps. Install prunes the list at every checkpoint, but a
// log running with size-based rotation and no checkpoints would
// otherwise grow the manifest (and the cost of rewriting it at every
// seal) without bound. The metadata is advisory — recovery simply has
// nothing to cross-check for segments whose entries were dropped — so
// capping it trades a little corruption-detection coverage on the
// oldest segments for bounded seal cost.
const maxSealedMeta = 512

// trimSealed drops the oldest entries beyond maxSealedMeta.
func trimSealed(s []SegmentMeta) []SegmentMeta {
	if len(s) > maxSealedMeta {
		return s[len(s)-maxSealedMeta:]
	}
	return s
}

// updateManifest applies mut to a copy of the in-memory manifest,
// writes the result durably, and only then adopts it. Both the
// committer (sealing segments) and the checkpointer (installing
// snapshots) mutate the manifest; manMu serializes them.
func (l *Logger) updateManifest(mut func(*Manifest)) error {
	l.manMu.Lock()
	defer l.manMu.Unlock()
	m := l.man
	m.Sealed = append([]SegmentMeta(nil), l.man.Sealed...)
	mut(&m)
	m.Sealed = trimSealed(m.Sealed)
	if err := writeManifest(l.dir, m); err != nil {
		return err
	}
	l.man = m
	return nil
}

// writeBatch pushes one group commit — already encoded, record-aligned
// bytes — to the segment and syncs it.
func writeBatch(f segFile, batch []byte) error {
	if _, err := f.Write(batch); err != nil {
		return err
	}
	return f.Sync()
}

// countingWriter counts bytes on their way to the underlying writer.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// WriteFileAtomic durably publishes dir/name: write to a temporary
// file, fsync it, rename into place, fsync the directory. Readers never
// observe a partial file. It returns the bytes written. Both the
// manifest and the checkpointer's snapshots publish through this one
// sequence so the crash-safety-critical dance exists exactly once.
func WriteFileAtomic(dir, name string, write func(io.Writer) error) (int64, error) {
	tmp := filepath.Join(dir, name+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return 0, err
	}
	cw := &countingWriter{w: f}
	fail := func(err error) (int64, error) {
		f.Close()
		os.Remove(tmp)
		return 0, err
	}
	if err := write(cw); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	if err := os.Rename(tmp, filepath.Join(dir, name)); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	syncDir(dir)
	return cw.n, nil
}

// Install atomically publishes snapshot (a file name inside the log
// directory) as covering every segment before seq, then deletes the
// segments and snapshots it has subsumed (pruning their metadata from
// the manifest). Call it only after the snapshot file itself is
// durable.
func (l *Logger) Install(snapshot string, seq uint64) error {
	err := l.updateManifest(func(m *Manifest) {
		m.Snapshot = snapshot
		m.SnapshotSeq = seq
		live := m.Sealed[:0]
		for _, s := range m.Sealed {
			if s.Seq >= seq {
				live = append(live, s)
			}
		}
		m.Sealed = live
	})
	if err != nil {
		return err
	}
	return gc(l.dir, snapshot, seq)
}

// gc removes segments older than keepSeq and snapshot files other than
// keepSnap, plus any leftover temporary files.
func gc(dir, keepSnap string, keepSeq uint64) error {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	var firstErr error
	for _, ent := range ents {
		name := ent.Name()
		remove := false
		if seq, ok := parseSegmentName(name); ok && seq < keepSeq {
			remove = true
		}
		if isSnapshotName(name) && name != keepSnap {
			remove = true
		}
		if filepath.Ext(name) == ".tmp" {
			remove = true
		}
		if remove {
			if err := os.Remove(filepath.Join(dir, name)); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}

// SnapshotFileName returns the snapshot file name for a checkpoint whose
// first uncovered segment is seq. It is defined here, next to the GC
// that recognizes snapshot files, so the format has a single source of
// truth.
func SnapshotFileName(seq uint64) string {
	return fmt.Sprintf("snapshot-%08d.db", seq)
}

// isSnapshotName reports whether name matches SnapshotFileName's format.
func isSnapshotName(name string) bool {
	var seq uint64
	n, err := fmt.Sscanf(name, "snapshot-%d.db", &seq)
	return n == 1 && err == nil
}

// Err returns the logger's terminal failure, if any. A non-nil result
// means appends can no longer reach disk — transactions still commit in
// memory (logging is asynchronous by design), so operators must watch
// this to know durability has stopped.
func (l *Logger) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.termErr
}

// Failed reports whether the logger has failed terminally. It is a
// single atomic load, cheap enough for the engine to consult on every
// transaction (fail-stop mode); Err carries the cause.
func (l *Logger) Failed() bool { return l.failed.Load() }

// Close flushes outstanding records, closes the current segment and
// releases the directory lock. It is idempotent; after a terminal
// failure it only releases the lock (the committer already closed the
// segment).
func (l *Logger) Close() error {
	l.mu.Lock()
	already := l.closed
	l.closed = true
	l.cond.Signal()
	lock := l.lock
	l.lock = nil
	l.mu.Unlock()
	l.wg.Wait()
	defer unlockDir(lock)
	if already {
		return nil
	}
	if err := l.f.Sync(); err != nil {
		l.f.Close()
		return err
	}
	return l.f.Close()
}

// --- encoding ---

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// AppendRecord appends the wire encoding of rec to buf and returns the
// extended slice:
//
//	u32 bodyLen | u32 crc(body) | body
//	body = u64 tid | u32 nops | nops × (u32 keyLen | key | u32 valLen | val)
//
// It encodes in place — the header is reserved up front and backfilled
// once the body's length and checksum are known — so a caller that
// reuses its buffer (buf[:0]) encodes without allocating. This is the
// commit hot path's encoder: workers build each redo record into a
// per-worker scratch buffer and hand the finished frame to Append.
//
//doppel:hotpath
func AppendRecord(buf []byte, rec Record) []byte {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0) // bodyLen + crc, backfilled below
	buf = binary.LittleEndian.AppendUint64(buf, rec.TID)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(rec.Ops)))
	for _, op := range rec.Ops {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(op.Key)))
		buf = append(buf, op.Key...)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(op.Value)))
		buf = append(buf, op.Value...)
	}
	body := buf[start+8:]
	binary.LittleEndian.PutUint32(buf[start:], uint32(len(body)))
	binary.LittleEndian.PutUint32(buf[start+4:], crc32.Checksum(body, castagnoli))
	return buf
}

// EncodeRecord serializes rec exactly as the logger writes it. Exposed
// for tests and fuzzing (the canonical-prefix invariant: re-encoding
// replayed records must reproduce a byte prefix of the input).
func EncodeRecord(rec Record) []byte { return AppendRecord(nil, rec) }

// replayReader reads records from r, stopping cleanly at a torn or
// corrupt tail. It returns the decoded records, the byte offset of the
// end of the last valid record, and whether it stopped early (before a
// clean EOF) because of torn or corrupt data.
func replayReader(r io.Reader) (recs []Record, valid int64, torn bool, err error) {
	var hdr [8]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			if err == io.EOF {
				return recs, valid, false, nil // clean end
			}
			if err == io.ErrUnexpectedEOF {
				return recs, valid, true, nil // torn header
			}
			return recs, valid, false, err
		}
		bodyLen := binary.LittleEndian.Uint32(hdr[:4])
		wantCRC := binary.LittleEndian.Uint32(hdr[4:])
		if bodyLen > 1<<30 {
			return recs, valid, true, nil // corrupt length: treat as torn tail
		}
		body := make([]byte, bodyLen)
		if _, err := io.ReadFull(r, body); err != nil {
			return recs, valid, true, nil // torn body
		}
		if crc32.Checksum(body, castagnoli) != wantCRC {
			return recs, valid, true, nil // corrupt body: stop at last good record
		}
		rec, err := decodeBody(body)
		if err != nil {
			return recs, valid, true, nil
		}
		recs = append(recs, rec)
		valid += int64(8 + len(body))
	}
}

// ReplayFile reads records from a single segment file in order, stopping
// cleanly at a torn or corrupt tail.
func ReplayFile(path string) ([]Record, error) {
	recs, _, err := ReplaySegment(path)
	return recs, err
}

// ReplaySegment reads records from a single segment file in order and
// additionally reports whether the file ended in a torn or corrupt
// tail. Parallel recovery uses the torn flag to enforce the rule that
// only the newest segment may be torn.
func ReplaySegment(path string) ([]Record, bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, false, err
	}
	defer f.Close()
	recs, _, torn, err := replayReader(f)
	return recs, torn, err
}

// trimAndScan truncates path to the end of its last valid record and
// returns the resulting byte size along with the TID-range metadata of
// the records it holds. The discarded bytes were never synced as part
// of a completed group commit acknowledgement, so no committed
// transaction is lost.
func trimAndScan(path string, seq uint64) (int64, SegmentMeta, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, SegmentMeta{}, err
	}
	recs, valid, torn, err := replayReader(f)
	f.Close()
	if err != nil {
		return 0, SegmentMeta{}, err
	}
	meta := MetaFor(seq, recs)
	if torn {
		if err := os.Truncate(path, valid); err != nil {
			return 0, SegmentMeta{}, err
		}
	}
	return valid, meta, nil
}

// HasState reports whether dir holds durable state a fresh database
// must not append to: a manifest, or any non-empty segment. Opening
// such a directory with an empty store would mix a new low-TID
// generation behind the old high-TID records, and recovery's
// TID-monotonic filter would silently drop the new writes — callers
// must go through recovery instead.
func HasState(dir string) (bool, error) {
	_, ok, err := ReadManifest(dir)
	if err != nil {
		return true, nil // a corrupt manifest is damaged pre-existing state
	}
	if ok {
		return true, nil
	}
	segs, err := listSegments(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return false, nil
		}
		return false, err
	}
	for _, s := range segs {
		fi, err := os.Stat(s.Path)
		if err != nil {
			return false, err
		}
		if fi.Size() > 0 {
			return true, nil
		}
	}
	return false, nil
}

// SegmentInfo describes one replayed segment.
type SegmentInfo struct {
	Seq     uint64
	Path    string
	Records int
}

// listSegments returns the directory's segment files in sequence order.
func listSegments(dir string) ([]SegmentInfo, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []SegmentInfo
	for _, ent := range ents {
		if seq, ok := parseSegmentName(ent.Name()); ok {
			segs = append(segs, SegmentInfo{Seq: seq, Path: filepath.Join(dir, ent.Name())})
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].Seq < segs[j].Seq })
	return segs, nil
}

// LiveSegments reads the manifest at dir and returns the segments
// recovery must replay (at or after the manifest's snapshot sequence;
// all segments when no manifest exists), in ascending sequence order,
// after validating that none of them is missing.
func LiveSegments(dir string) (Manifest, []SegmentInfo, error) {
	man, _, err := ReadManifest(dir)
	if err != nil {
		return Manifest{}, nil, err
	}
	segs, err := listSegments(dir)
	if err != nil {
		return Manifest{}, nil, err
	}
	live := segs[:0]
	for _, s := range segs {
		if s.Seq >= man.SnapshotSeq {
			live = append(live, s)
		}
	}
	// The manifest's sequence number names a segment that existed when it
	// was installed (rotation precedes install); its absence is the same
	// damage as a gap between segments and must fail just as loudly.
	if man.SnapshotSeq > 0 && (len(live) == 0 || live[0].Seq != man.SnapshotSeq) {
		return Manifest{}, nil, fmt.Errorf(
			"wal: manifest expects segment %d but the first live segment is missing", man.SnapshotSeq)
	}
	for i := 1; i < len(live); i++ {
		if live[i].Seq != live[i-1].Seq+1 {
			return Manifest{}, nil, fmt.Errorf(
				"wal: segment gap: %d follows %d", live[i].Seq, live[i-1].Seq)
		}
	}
	return man, live, nil
}

// ReplayDir reads the manifest at dir and replays every live segment (at
// or after the manifest's snapshot sequence; all segments when no
// manifest exists). Only the newest segment may end in a torn tail — a
// crash can tear only the segment being appended to; corruption in an
// earlier, sealed segment means acknowledged commits are unrecoverable,
// which is reported as an error rather than silently dropped. Where the
// manifest recorded a sealed segment's metadata, the segment must replay
// to exactly that record count and TID range: this catches damage that
// still decodes cleanly, such as a dropped buffered write that happened
// to end on a record boundary.
func ReplayDir(dir string) (Manifest, []Record, []SegmentInfo, error) {
	man, live, err := LiveSegments(dir)
	if err != nil {
		return Manifest{}, nil, nil, err
	}
	var out []Record
	for i := range live {
		recs, torn, err := ReplaySegment(live[i].Path)
		if err != nil {
			return Manifest{}, nil, nil, err
		}
		if torn && i != len(live)-1 {
			return Manifest{}, nil, nil, fmt.Errorf(
				"wal: corrupt record in sealed segment %s", live[i].Path)
		}
		if meta := man.SealedFor(live[i].Seq); meta != nil {
			if check := MetaFor(live[i].Seq, recs); check != *meta {
				return Manifest{}, nil, nil, fmt.Errorf(
					"wal: sealed segment %s replays to %d records TIDs [%d,%d], manifest sealed it with %d records TIDs [%d,%d]",
					live[i].Path, check.Records, check.MinTID, check.MaxTID, meta.Records, meta.MinTID, meta.MaxTID)
			}
		}
		live[i].Records = len(recs)
		out = append(out, recs...)
	}
	return man, out, live, nil
}

func decodeBody(body []byte) (Record, error) {
	if len(body) < 12 {
		return Record{}, errors.New("wal: short body")
	}
	rec := Record{TID: binary.LittleEndian.Uint64(body)}
	n := binary.LittleEndian.Uint32(body[8:])
	body = body[12:]
	for i := uint32(0); i < n; i++ {
		if len(body) < 4 {
			return Record{}, errors.New("wal: short key length")
		}
		kl := binary.LittleEndian.Uint32(body)
		body = body[4:]
		if uint32(len(body)) < kl {
			return Record{}, errors.New("wal: short key")
		}
		key := string(body[:kl])
		body = body[kl:]
		if len(body) < 4 {
			return Record{}, errors.New("wal: short value length")
		}
		vl := binary.LittleEndian.Uint32(body)
		body = body[4:]
		if uint32(len(body)) < vl {
			return Record{}, errors.New("wal: short value")
		}
		val := make([]byte, vl)
		copy(val, body[:vl])
		body = body[vl:]
		rec.Ops = append(rec.Ops, Op{Key: key, Value: val})
	}
	if len(body) != 0 {
		return Record{}, fmt.Errorf("wal: %d trailing bytes", len(body))
	}
	return rec, nil
}
