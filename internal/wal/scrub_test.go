package wal

// Scrub tests: a clean log audits clean, and each class of sealed-
// segment decay — a flipped byte, a torn truncation, and clean-decoding
// damage only the manifest metadata can catch — is detected while the
// logger is still live.

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// scrubLog builds a live logger whose directory holds sealed segments:
// n records are appended with a rotation after each quarter, so the
// directory ends with several sealed segments plus an active tail.
func scrubLog(t *testing.T, n int) (string, *Logger) {
	t.Helper()
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	for i, r := range crashWorkload(n) {
		if err := l.AppendSync(r); err != nil {
			t.Fatal(err)
		}
		if (i+1)%(n/4) == 0 {
			if _, err := l.Rotate(); err != nil {
				t.Fatal(err)
			}
		}
	}
	return dir, l
}

// sealedSegment returns the path and record count of the first sealed
// segment in dir.
func sealedSegment(t *testing.T, dir string) (string, int) {
	t.Helper()
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("need a sealed segment, have %d segments", len(segs))
	}
	recs, torn, err := ReplaySegment(segs[0].Path)
	if err != nil || torn {
		t.Fatalf("sealed segment unreadable before the test tampered: torn=%v err=%v", torn, err)
	}
	return segs[0].Path, len(recs)
}

func TestScrubCleanDir(t *testing.T) {
	dir, _ := scrubLog(t, 16)
	stats, err := ScrubDir(dir)
	if err != nil {
		t.Fatalf("clean log failed scrub: %v", err)
	}
	if stats.Segments != 4 || stats.Records != 16 {
		t.Fatalf("scrubbed %d segments / %d records, want 4 / 16", stats.Segments, stats.Records)
	}
	if stats.Skipped != 1 {
		t.Fatalf("skipped %d segments, want 1 (the active tail)", stats.Skipped)
	}
}

func TestScrubEmptyAndMissingDir(t *testing.T) {
	if _, err := ScrubDir(t.TempDir()); err != nil {
		t.Fatalf("empty dir: %v", err)
	}
	if _, err := ScrubDir(filepath.Join(t.TempDir(), "never-created")); err != nil {
		t.Fatalf("missing dir: %v", err)
	}
}

func TestScrubDetectsFlippedByte(t *testing.T) {
	dir, _ := scrubLog(t, 16)
	path, _ := sealedSegment(t, dir)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = ScrubDir(dir)
	if err == nil {
		t.Fatal("scrub passed a sealed segment with a flipped byte")
	}
	if !strings.Contains(err.Error(), "torn or corrupt") {
		t.Fatalf("scrub error %q does not describe the corruption", err)
	}
}

func TestScrubDetectsTruncatedSealedSegment(t *testing.T) {
	dir, _ := scrubLog(t, 16)
	path, _ := sealedSegment(t, dir)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-3); err != nil {
		t.Fatal(err)
	}
	if _, err := ScrubDir(dir); err == nil {
		t.Fatal("scrub passed a truncated sealed segment")
	}
}

// TestScrubDetectsCleanDecodingDamage appends a well-formed extra record
// to a sealed segment: every checksum passes and nothing is torn, so
// only the manifest's sealed metadata (record count and TID range) can
// convict it — the damage class the metadata exists for.
func TestScrubDetectsCleanDecodingDamage(t *testing.T) {
	dir, _ := scrubLog(t, 16)
	path, n := sealedSegment(t, dir)
	extra := EncodeRecord(Record{TID: 9999, Ops: []Op{{Key: "ghost", Value: []byte("x")}}})
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(extra); err != nil {
		t.Fatal(err)
	}
	f.Close()
	// The tampered segment still replays without error on its own.
	recs, torn, err := ReplaySegment(path)
	if err != nil || torn || len(recs) != n+1 {
		t.Fatalf("tampered segment no longer decodes cleanly: %d recs torn=%v err=%v", len(recs), torn, err)
	}
	_, err = ScrubDir(dir)
	if err == nil {
		t.Fatal("scrub passed a sealed segment that contradicts its manifest metadata")
	}
	if !strings.Contains(err.Error(), "manifest metadata") {
		t.Fatalf("scrub error %q does not blame the metadata mismatch", err)
	}
}

// TestScrubSkipsCheckpointedSegments: segments below the manifest's
// snapshot sequence are covered by the checkpoint and eligible for GC;
// damage there is not damage recovery can meet.
func TestScrubSkipsCheckpointedSegments(t *testing.T) {
	dir, l := scrubLog(t, 16)
	path, _ := sealedSegment(t, dir)
	l.Close()
	// Advance the manifest's snapshot past the first two segments by
	// hand — a checkpoint that installed but whose GC has not deleted
	// the retired files yet (GC is best-effort and can lag a crash).
	man, ok, err := ReadManifest(dir)
	if err != nil || !ok {
		t.Fatalf("manifest: ok=%v err=%v", ok, err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	man.SnapshotSeq = segs[2].Seq
	live := man.Sealed[:0]
	for _, s := range man.Sealed {
		if s.Seq >= man.SnapshotSeq {
			live = append(live, s)
		}
	}
	man.Sealed = live
	if err := writeManifest(dir, man); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ScrubDir(dir); err != nil {
		t.Fatalf("scrub audited a segment the checkpoint retired: %v", err)
	}
}
