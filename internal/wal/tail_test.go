package wal

// Cursor tests: live tailing, sealed-segment handoff with manifest
// cross-checks, corruption detection, GC overruns, and the O(1)-per-poll
// regression guard (the cursor must never rescan sealed segments or
// re-read the manifest while idling on an unchanged segment).

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// collect returns a Next apply callback appending into recs.
func collect(recs *[]Record) func(Record) error {
	return func(r Record) error {
		*recs = append(*recs, r)
		return nil
	}
}

// TestCursorTailsLiveLog: records become visible to the cursor as each
// group commit lands, in order, and the cursor's position tracks the
// logger's durable position exactly.
func TestCursorTailsLiveLog(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	cur, man, err := OpenCursor(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	if man.Snapshot != "" {
		t.Fatalf("unexpected snapshot %q in fresh dir", man.Snapshot)
	}
	var got []Record
	recs := crashWorkload(8)
	for i, r := range recs {
		if err := l.AppendSync(r); err != nil {
			t.Fatal(err)
		}
		n, err := cur.Next(collect(&got))
		if err != nil {
			t.Fatal(err)
		}
		if n != 1 || len(got) != i+1 {
			t.Fatalf("after append %d: applied %d, total %d", i, n, len(got))
		}
		if got[i].TID != r.TID || got[i].Ops[0].Key != r.Ops[0].Key {
			t.Fatalf("record %d: got %+v want %+v", i, got[i], r)
		}
		if cur.Position() != l.DurablePosition() {
			t.Fatalf("cursor at %s, durable at %s", cur.Position(), l.DurablePosition())
		}
	}
}

// TestCursorCrossesRotation: a single Next drains the sealed segment,
// passes its manifest metadata check, and continues into the successor.
func TestCursorCrossesRotation(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	recs := crashWorkload(5)
	for _, r := range recs[:3] {
		if err := l.AppendSync(r); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := l.Rotate(); err != nil {
		t.Fatal(err)
	}
	for _, r := range recs[3:] {
		if err := l.AppendSync(r); err != nil {
			t.Fatal(err)
		}
	}
	cur, _, err := OpenCursor(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	var got []Record
	if _, err := cur.Next(collect(&got)); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("applied %d records across rotation, want %d", len(got), len(recs))
	}
	if p := cur.Position(); p.Seq != 2 {
		t.Fatalf("cursor position %s, want segment 2", p)
	}
	if p := cur.Position(); p != l.DurablePosition() {
		t.Fatalf("cursor at %s, durable at %s", p, l.DurablePosition())
	}
}

// TestCursorSealedSegmentCorruption: a flipped byte in a sealed segment
// (its successor exists) must fail the cursor loudly, exactly as
// ReplayDir refuses corrupt sealed segments — it is not a torn tail.
func TestCursorSealedSegmentCorruption(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range crashWorkload(3) {
		if err := l.AppendSync(r); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := l.Rotate(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the second record's frame.
	path := filepath.Join(dir, segmentName(1))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	first := len(EncodeRecord(crashWorkload(3)[0]))
	raw[first+10] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	cur, _, err := OpenCursor(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	var got []Record
	_, err = cur.Next(collect(&got))
	if err == nil || !strings.Contains(err.Error(), "sealed segment") {
		t.Fatalf("err = %v, want sealed-segment corruption", err)
	}
	if len(got) != 1 {
		t.Fatalf("applied %d records before detecting corruption, want 1", len(got))
	}
}

// TestCursorSealedMetadataMismatch: a sealed segment that lost a whole
// trailing record still decodes cleanly, but the manifest's recorded
// record count catches it at the handoff.
func TestCursorSealedMetadataMismatch(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	recs := crashWorkload(3)
	for _, r := range recs {
		if err := l.AppendSync(r); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := l.Rotate(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Drop the sealed segment's last record on its exact boundary.
	keep := int64(len(EncodeRecord(recs[0])) + len(EncodeRecord(recs[1])))
	if err := os.Truncate(filepath.Join(dir, segmentName(1)), keep); err != nil {
		t.Fatal(err)
	}
	cur, _, err := OpenCursor(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	var got []Record
	_, err = cur.Next(collect(&got))
	if err == nil || !strings.Contains(err.Error(), "manifest sealed it") {
		t.Fatalf("err = %v, want manifest metadata mismatch", err)
	}
}

// TestCursorO1IdlePolls is the ReplayDir-rescan regression test: once
// caught up, polling an unchanged log costs no manifest reads and no
// segment opens, no matter how many sealed segments exist — and the
// cursor keeps working even after already-consumed segments are deleted
// out from under it (which would break any rescan-from-scratch reader).
func TestCursorO1IdlePolls(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	recs := crashWorkload(9)
	for i, r := range recs {
		if err := l.AppendSync(r); err != nil {
			t.Fatal(err)
		}
		if i%3 == 2 && i < 8 {
			if _, err := l.Rotate(); err != nil {
				t.Fatal(err)
			}
		}
	}
	cur, _, err := OpenCursor(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	var got []Record
	if _, err := cur.Next(collect(&got)); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("caught up to %d records, want %d", len(got), len(recs))
	}
	base := cur.Stats()
	if base.SegmentOpens != 3 {
		t.Fatalf("opened %d segments for 3 segments of log", base.SegmentOpens)
	}
	for i := 0; i < 100; i++ {
		if n, err := cur.Next(collect(&got)); err != nil || n != 0 {
			t.Fatalf("idle poll %d: n=%d err=%v", i, n, err)
		}
	}
	idle := cur.Stats()
	if idle.ManifestReads != base.ManifestReads || idle.SegmentOpens != base.SegmentOpens {
		t.Fatalf("idle polling did I/O: manifest %d→%d, opens %d→%d",
			base.ManifestReads, idle.ManifestReads, base.SegmentOpens, idle.SegmentOpens)
	}
	if idle.Polls != base.Polls+100 {
		t.Fatalf("polls %d → %d, want +100", base.Polls, idle.Polls)
	}
	// Delete the segments the cursor has already consumed; incremental
	// tailing must not care, while a rescanning reader chokes on the gap
	// the first deletion leaves.
	if err := os.Remove(filepath.Join(dir, segmentName(2))); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := ReplayDir(dir); err == nil {
		t.Fatal("ReplayDir should fail on the segment gap; the cursor must not")
	}
	if err := os.Remove(filepath.Join(dir, segmentName(1))); err != nil {
		t.Fatal(err)
	}
	extra := Record{TID: 100, Ops: []Op{{Key: "late", Value: []byte("x")}}}
	if err := l.AppendSync(extra); err != nil {
		t.Fatal(err)
	}
	n, err := cur.Next(collect(&got))
	if err != nil || n != 1 {
		t.Fatalf("post-delete poll: n=%d err=%v", n, err)
	}
	if got[len(got)-1].TID != 100 {
		t.Fatalf("late record not applied: %+v", got[len(got)-1])
	}
}

// TestCursorWaitsForFirstSegment: a cursor over a directory the primary
// has not populated (or created) yet idles without error and picks up
// the first record when it arrives.
func TestCursorWaitsForFirstSegment(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "not-yet")
	cur, _, err := OpenCursor(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	var got []Record
	for i := 0; i < 3; i++ {
		if n, err := cur.Next(collect(&got)); err != nil || n != 0 {
			t.Fatalf("poll before primary: n=%d err=%v", n, err)
		}
	}
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.AppendSync(Record{TID: 1, Ops: []Op{{Key: "k", Value: []byte("v")}}}); err != nil {
		t.Fatal(err)
	}
	if n, err := cur.Next(collect(&got)); err != nil || n != 1 {
		t.Fatalf("first poll after primary: n=%d err=%v", n, err)
	}
}

// TestCursorGCOverrun: when a checkpoint garbage-collects the segment
// the cursor needs next, the cursor must fail terminally with
// ErrTailGCed — not wait forever for a file that will never return.
func TestCursorGCOverrun(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.AppendSync(Record{TID: 1, Ops: []Op{{Key: "k", Value: []byte("v")}}}); err != nil {
		t.Fatal(err)
	}
	cur, _, err := OpenCursor(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	// A checkpoint rotates and installs its snapshot before the cursor's
	// first poll ever opens segment 1; GC then deletes it.
	if _, err := l.Rotate(); err != nil {
		t.Fatal(err)
	}
	if err := l.Install(SnapshotFileName(2), 2); err != nil {
		t.Fatal(err)
	}
	var got []Record
	_, err = cur.Next(collect(&got))
	if !errors.Is(err, ErrTailGCed) {
		t.Fatalf("err = %v, want ErrTailGCed", err)
	}
}

// TestDurablePosition: the durable position starts at the log's end on
// open, advances with each synced batch, and steps to the successor's
// origin at rotation.
func TestDurablePosition(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if p := l.DurablePosition(); p != (Position{Seq: 1, Offset: 0}) {
		t.Fatalf("fresh logger at %s", p)
	}
	rec := Record{TID: 1, Ops: []Op{{Key: "k", Value: []byte("v")}}}
	if err := l.AppendSync(rec); err != nil {
		t.Fatal(err)
	}
	want := Position{Seq: 1, Offset: int64(len(EncodeRecord(rec)))}
	if p := l.DurablePosition(); p != want {
		t.Fatalf("after append at %s, want %s", p, want)
	}
	if _, err := l.Rotate(); err != nil {
		t.Fatal(err)
	}
	if p := l.DurablePosition(); p != (Position{Seq: 2, Offset: 0}) {
		t.Fatalf("after rotate at %s", p)
	}
	if (Position{Seq: 1, Offset: 5}).Less(Position{Seq: 1, Offset: 5}) {
		t.Fatal("Less must be strict")
	}
	if !(Position{}).Less(Position{Seq: 1}) || !(Position{Seq: 1, Offset: 9}).Less(Position{Seq: 2}) {
		t.Fatal("Less ordering broken")
	}
	// Reopening resumes the durable position from the on-disk state.
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l, err = Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if p := l.DurablePosition(); p != (Position{Seq: 2, Offset: 0}) {
		t.Fatalf("reopened logger at %s", p)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}
