//go:build !unix

package wal

import "os"

// Non-unix platforms get no advisory directory locking; double-open
// protection is a unix-only safety net.
func lockDir(dir string) (*os.File, error) { return nil, nil }

func unlockDir(f *os.File) {}
