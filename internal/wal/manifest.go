package wal

import (
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// manifestName is the manifest file inside a log directory.
const manifestName = "MANIFEST"

// Manifest names the durable snapshot recovery starts from and the
// first segment it must replay. A zero Manifest (no snapshot, sequence
// 0) means "replay everything".
type Manifest struct {
	// Snapshot is the snapshot file name (inside the log directory), or
	// "" when no checkpoint has completed yet.
	Snapshot string
	// SnapshotSeq is the first segment sequence number whose records are
	// not covered by the snapshot. Segments with a smaller sequence are
	// garbage.
	SnapshotSeq uint64
}

// manifestBody renders the checksummed portion of the manifest.
func manifestBody(m Manifest) string {
	return fmt.Sprintf("doppel-manifest-v1\nseq=%d\nsnapshot=%s\n", m.SnapshotSeq, m.Snapshot)
}

// writeManifest atomically replaces dir's manifest via WriteFileAtomic.
func writeManifest(dir string, m Manifest) error {
	body := manifestBody(m)
	content := body + fmt.Sprintf("crc=%08x\n", crc32.Checksum([]byte(body), castagnoli))
	_, err := WriteFileAtomic(dir, manifestName, func(w io.Writer) error {
		_, err := io.WriteString(w, content)
		return err
	})
	return err
}

// ReadManifest loads dir's manifest. ok is false (with a zero Manifest
// and nil error) when no manifest exists, i.e. no checkpoint has ever
// completed. A present-but-corrupt manifest is an error: segments named
// only by the manifest may already be garbage-collected, so guessing
// would risk silently wrong recovery.
func ReadManifest(dir string) (m Manifest, ok bool, err error) {
	raw, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		if os.IsNotExist(err) {
			return Manifest{}, false, nil
		}
		return Manifest{}, false, err
	}
	content := string(raw)
	i := strings.LastIndex(content, "crc=")
	if i < 0 || !strings.HasSuffix(content, "\n") {
		return Manifest{}, false, fmt.Errorf("wal: malformed manifest in %s", dir)
	}
	body, crcLine := content[:i], content[i:]
	var wantCRC uint32
	if n, err := fmt.Sscanf(crcLine, "crc=%08x\n", &wantCRC); n != 1 || err != nil {
		return Manifest{}, false, fmt.Errorf("wal: malformed manifest crc in %s", dir)
	}
	if crc32.Checksum([]byte(body), castagnoli) != wantCRC {
		return Manifest{}, false, fmt.Errorf("wal: manifest checksum mismatch in %s", dir)
	}
	lines := strings.Split(strings.TrimSuffix(body, "\n"), "\n")
	if len(lines) != 3 || lines[0] != "doppel-manifest-v1" {
		return Manifest{}, false, fmt.Errorf("wal: unsupported manifest version in %s", dir)
	}
	if n, err := fmt.Sscanf(lines[1], "seq=%d", &m.SnapshotSeq); n != 1 || err != nil {
		return Manifest{}, false, fmt.Errorf("wal: malformed manifest seq in %s", dir)
	}
	m.Snapshot = strings.TrimPrefix(lines[2], "snapshot=")
	if m.Snapshot == lines[2] {
		return Manifest{}, false, fmt.Errorf("wal: malformed manifest snapshot in %s", dir)
	}
	return m, true, nil
}
