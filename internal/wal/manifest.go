package wal

import (
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// manifestName is the manifest file inside a log directory.
const manifestName = "MANIFEST"

// SegmentMeta records a sealed segment's identity in the manifest: the
// range of transaction IDs it holds and how many records it sealed
// with. Recovery uses the metadata two ways: as a corruption check (a
// sealed segment must replay to exactly these counts and bounds — its
// file can no longer legitimately change) and as the ordering evidence
// for parallel replay (per-key TIDs are monotone in log order, so
// segments may be applied concurrently under the highest-TID-wins
// rule; the recorded ranges make that ordering auditable).
type SegmentMeta struct {
	// Seq is the segment's sequence number.
	Seq uint64
	// MinTID and MaxTID bound the TIDs of the segment's records; both
	// are zero when the segment sealed empty.
	MinTID uint64
	MaxTID uint64
	// Records is how many redo records the segment held when sealed.
	Records int
}

// extendTID folds one record's TID into the metadata of the segment (or
// pending batch) being written.
func (m *SegmentMeta) extendTID(tid uint64) {
	if m.Records == 0 || tid < m.MinTID {
		m.MinTID = tid
	}
	if tid > m.MaxTID {
		m.MaxTID = tid
	}
	m.Records++
}

// merge folds a whole batch's metadata into m; the committer uses it to
// roll each group commit's record count and TID range into the open
// segment's metadata.
func (m *SegmentMeta) merge(b SegmentMeta) {
	if b.Records == 0 {
		return
	}
	if m.Records == 0 || b.MinTID < m.MinTID {
		m.MinTID = b.MinTID
	}
	if b.MaxTID > m.MaxTID {
		m.MaxTID = b.MaxTID
	}
	m.Records += b.Records
}

// MetaFor computes the metadata segment seq would seal with if it held
// exactly recs. Recovery uses it to check a sealed segment's file
// against the manifest.
func MetaFor(seq uint64, recs []Record) SegmentMeta {
	m := SegmentMeta{Seq: seq}
	for _, rec := range recs {
		m.extendTID(rec.TID)
	}
	return m
}

// Manifest names the durable snapshot recovery starts from, the first
// segment it must replay, and the metadata of every live sealed
// segment. A zero Manifest (no snapshot, sequence 0, no sealed
// segments) means "replay everything, ranges unknown".
type Manifest struct {
	// Snapshot is the snapshot file name (inside the log directory), or
	// "" when no checkpoint has completed yet.
	Snapshot string
	// SnapshotSeq is the first segment sequence number whose records are
	// not covered by the snapshot. Segments with a smaller sequence are
	// garbage.
	SnapshotSeq uint64
	// Sealed holds the metadata of live sealed segments in ascending
	// sequence order. A live sealed segment may be absent (the process
	// crashed between sealing it and writing the manifest); recovery
	// then simply has no metadata to check that segment against.
	Sealed []SegmentMeta
}

// SealedFor returns the manifest's metadata for segment seq, or nil
// when none was recorded.
func (m *Manifest) SealedFor(seq uint64) *SegmentMeta {
	for i := range m.Sealed {
		if m.Sealed[i].Seq == seq {
			return &m.Sealed[i]
		}
	}
	return nil
}

// manifestBody renders the checksummed portion of the manifest.
func manifestBody(m Manifest) string {
	var b strings.Builder
	fmt.Fprintf(&b, "doppel-manifest-v2\nseq=%d\nsnapshot=%s\n", m.SnapshotSeq, m.Snapshot)
	for _, s := range m.Sealed {
		fmt.Fprintf(&b, "segment=%d %d %d %d\n", s.Seq, s.MinTID, s.MaxTID, s.Records)
	}
	return b.String()
}

// writeManifest atomically replaces dir's manifest via WriteFileAtomic.
func writeManifest(dir string, m Manifest) error {
	body := manifestBody(m)
	content := body + fmt.Sprintf("crc=%08x\n", crc32.Checksum([]byte(body), castagnoli))
	_, err := WriteFileAtomic(dir, manifestName, func(w io.Writer) error {
		_, err := io.WriteString(w, content)
		return err
	})
	return err
}

// ReadManifest loads dir's manifest. ok is false (with a zero Manifest
// and nil error) when no manifest exists, i.e. no checkpoint or sealing
// rotation has ever completed. Both the current v2 format and the
// segment-metadata-less v1 format are accepted. A present-but-corrupt
// manifest is an error: segments named only by the manifest may already
// be garbage-collected, so guessing would risk silently wrong recovery.
func ReadManifest(dir string) (m Manifest, ok bool, err error) {
	raw, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		if os.IsNotExist(err) {
			return Manifest{}, false, nil
		}
		return Manifest{}, false, err
	}
	content := string(raw)
	i := strings.LastIndex(content, "crc=")
	if i < 0 || !strings.HasSuffix(content, "\n") {
		return Manifest{}, false, fmt.Errorf("wal: malformed manifest in %s", dir)
	}
	body, crcLine := content[:i], content[i:]
	var wantCRC uint32
	if n, err := fmt.Sscanf(crcLine, "crc=%08x\n", &wantCRC); n != 1 || err != nil {
		return Manifest{}, false, fmt.Errorf("wal: malformed manifest crc in %s", dir)
	}
	if crc32.Checksum([]byte(body), castagnoli) != wantCRC {
		return Manifest{}, false, fmt.Errorf("wal: manifest checksum mismatch in %s", dir)
	}
	lines := strings.Split(strings.TrimSuffix(body, "\n"), "\n")
	if len(lines) < 3 || (lines[0] != "doppel-manifest-v1" && lines[0] != "doppel-manifest-v2") {
		return Manifest{}, false, fmt.Errorf("wal: unsupported manifest version in %s", dir)
	}
	if n, err := fmt.Sscanf(lines[1], "seq=%d", &m.SnapshotSeq); n != 1 || err != nil {
		return Manifest{}, false, fmt.Errorf("wal: malformed manifest seq in %s", dir)
	}
	m.Snapshot = strings.TrimPrefix(lines[2], "snapshot=")
	if m.Snapshot == lines[2] {
		return Manifest{}, false, fmt.Errorf("wal: malformed manifest snapshot in %s", dir)
	}
	for _, line := range lines[3:] {
		var sm SegmentMeta
		if n, err := fmt.Sscanf(line, "segment=%d %d %d %d", &sm.Seq, &sm.MinTID, &sm.MaxTID, &sm.Records); n != 4 || err != nil {
			return Manifest{}, false, fmt.Errorf("wal: malformed manifest segment line in %s", dir)
		}
		if k := len(m.Sealed); k > 0 && sm.Seq <= m.Sealed[k-1].Seq {
			return Manifest{}, false, fmt.Errorf("wal: manifest segment lines out of order in %s", dir)
		}
		m.Sealed = append(m.Sealed, sm)
	}
	return m, true, nil
}
