package wal

import (
	"errors"
	"fmt"
	"os"
)

// ScrubStats summarizes one scrub pass over a log directory.
type ScrubStats struct {
	// Segments is how many sealed segments the pass fully decoded and
	// audited; Records is the redo records decoded across them.
	Segments int
	Records  int
	// Skipped counts segments the pass deliberately did not audit: the
	// active tail (which may legitimately be torn mid-append), segments
	// below the manifest's snapshot sequence (already covered by the
	// checkpoint and eligible for GC), and segments a concurrent
	// checkpoint GC removed mid-pass.
	Skipped int
}

// ScrubDir audits the sealed segments of a log directory in place: every
// live sealed segment must decode end to end with no torn or corrupt
// tail, and where the manifest recorded the segment's sealed metadata,
// the segment must replay to exactly that record count and TID range.
// This is the same validation recovery performs (ReplayDir), run while
// the data is still cold storage — a scrub failure means recovery WOULD
// fail, caught while the primary is healthy and an operator can still
// act (re-checkpoint, restore the segment from a replica) instead of at
// the moment the data is needed.
//
// ScrubDir takes no lock and is safe against a live Logger: sealed
// segments are immutable, the active tail is skipped (only its
// predecessors are audited), and a segment deleted by a concurrent
// checkpoint GC counts as skipped rather than damaged. All damage found
// is reported joined into one error, alongside the stats for the pass.
func ScrubDir(dir string) (ScrubStats, error) {
	var stats ScrubStats
	man, _, err := ReadManifest(dir)
	if err != nil {
		return stats, fmt.Errorf("wal: scrub: %w", err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return stats, nil // no directory yet: nothing to audit
		}
		return stats, fmt.Errorf("wal: scrub: %w", err)
	}
	var damage []error
	for i, s := range segs {
		// The highest-sequence segment is (or was) the append target; a
		// torn tail there is normal operation, not damage.
		if i == len(segs)-1 || s.Seq < man.SnapshotSeq {
			stats.Skipped++
			continue
		}
		recs, torn, err := ReplaySegment(s.Path)
		if err != nil {
			if os.IsNotExist(err) {
				stats.Skipped++ // checkpoint GC won the race
				continue
			}
			damage = append(damage, fmt.Errorf("wal: scrub: segment %d: %w", s.Seq, err))
			continue
		}
		if torn {
			damage = append(damage, fmt.Errorf(
				"wal: scrub: sealed segment %d has a torn or corrupt tail after %d records", s.Seq, len(recs)))
			continue
		}
		if meta := man.SealedFor(s.Seq); meta != nil {
			if check := MetaFor(s.Seq, recs); check != *meta {
				damage = append(damage, fmt.Errorf(
					"wal: scrub: segment %d decodes cleanly but does not match its manifest metadata: got %d records TID [%d,%d], manifest says %d records TID [%d,%d]",
					s.Seq, check.Records, check.MinTID, check.MaxTID, meta.Records, meta.MinTID, meta.MaxTID))
				continue
			}
		}
		stats.Segments++
		stats.Records += len(recs)
	}
	return stats, errors.Join(damage...)
}
