//go:build unix

package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// lockDir takes an exclusive advisory lock on dir's LOCK file. Two
// loggers on one directory would interleave appends and, worse,
// garbage-collect each other's live segments at checkpoint install; the
// lock turns that operator error into a clean failure at Open. The lock
// is released by unlockDir and automatically when the process dies, so
// a crashed process never wedges recovery.
func lockDir(dir string) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, "LOCK"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: %s is in use by another process: %w", dir, err)
	}
	return f, nil
}

func unlockDir(f *os.File) {
	if f == nil {
		return
	}
	_ = syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
	f.Close()
}
