package wal

// Crash-injection harness: a segment-file wrapper that persists only the
// first N bytes ever handed to Write and fails everything after, as if
// the machine died mid-write. The table test drives a known workload
// through the logger at every possible cut point and checks the
// group-commit contract at each: what replay recovers is exactly a
// prefix of the submitted records, and every record whose AppendSync was
// acknowledged survives.

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

var errInjectedCrash = errors.New("wal: injected crash")

// cutFile writes through to an *os.File until the shared byte budget is
// exhausted; the write that crosses the budget persists only its prefix.
// After the cut, every Write and Sync fails, like a dead disk.
type cutFile struct {
	f         *os.File
	remaining *int64
}

func (c *cutFile) Write(p []byte) (int, error) {
	if *c.remaining <= 0 {
		return 0, errInjectedCrash
	}
	n := int64(len(p))
	if n > *c.remaining {
		n = *c.remaining
	}
	*c.remaining -= n
	if _, err := c.f.Write(p[:n]); err != nil {
		return int(n), err
	}
	if n < int64(len(p)) {
		return int(n), errInjectedCrash
	}
	return int(n), nil
}

func (c *cutFile) Sync() error {
	if *c.remaining <= 0 {
		return errInjectedCrash
	}
	return c.f.Sync()
}

func (c *cutFile) Close() error { return c.f.Close() }

// crashWorkload is the known workload: record i sets key "k<i>" to
// "v<i>" under TID i+1, so any replayed prefix is fully checkable.
func crashWorkload(n int) []Record {
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{
			TID: uint64(i + 1),
			Ops: []Op{{Key: fmt.Sprintf("k%d", i), Value: []byte(fmt.Sprintf("v%d", i))}},
		}
	}
	return recs
}

// TestCrashInjectionEveryTruncationPoint cuts the log at every byte
// offset of the workload's full encoding and verifies recovery at each.
func TestCrashInjectionEveryTruncationPoint(t *testing.T) {
	const n = 12
	recs := crashWorkload(n)
	var full []byte
	for _, r := range recs {
		full = append(full, EncodeRecord(r)...)
	}
	root := t.TempDir()

	for cut := int64(0); cut <= int64(len(full)); cut++ {
		cut := cut
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			dir := filepath.Join(root, fmt.Sprintf("cut-%d", cut))
			remaining := cut
			l, err := openWith(dir, func(path string) (segFile, error) {
				f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
				if err != nil {
					return nil, err
				}
				return &cutFile{f: f, remaining: &remaining}, nil
			}, Options{})
			if err != nil {
				t.Fatal(err)
			}
			acked := 0
			for _, r := range recs {
				if err := l.AppendSync(r); err != nil {
					break // crashed: no later record can be acknowledged
				}
				acked++
			}
			_ = l.Close() // post-crash close errors are expected

			got, err := ReplayFile(filepath.Join(dir, segmentName(1)))
			if err != nil {
				t.Fatal(err)
			}
			// Replay never invents or reorders: the result is a prefix of
			// what was submitted.
			if len(got) > len(recs) {
				t.Fatalf("replayed %d > submitted %d", len(got), len(recs))
			}
			for i, r := range got {
				want := recs[i]
				if r.TID != want.TID || len(r.Ops) != 1 ||
					r.Ops[0].Key != want.Ops[0].Key ||
					string(r.Ops[0].Value) != string(want.Ops[0].Value) {
					t.Fatalf("record %d: got %+v want %+v", i, r, want)
				}
			}
			// Group commit never lies: every acknowledged record survived
			// the crash.
			if len(got) < acked {
				t.Fatalf("acked %d records but replay recovered only %d", acked, len(got))
			}
			// A cut on a record boundary loses nothing before the cut.
			if wantFloor := recordsBelow(recs, cut); len(got) < wantFloor {
				t.Fatalf("cut=%d fully persisted %d records but replay got %d", cut, wantFloor, len(got))
			}
		})
	}
}

// recordsBelow counts how many whole records fit in the first n bytes of
// the workload's encoding — the replay floor for a cut at n.
func recordsBelow(recs []Record, n int64) int {
	var off int64
	for i, r := range recs {
		off += int64(len(EncodeRecord(r)))
		if off > n {
			return i
		}
	}
	return len(recs)
}

// TestCrashThenReopenAppends: after a mid-write crash, reopening the
// directory trims the torn tail and appends; a second crash-free run
// and replay must see both generations.
func TestCrashThenReopenAppends(t *testing.T) {
	recs := crashWorkload(6)
	var full []byte
	for _, r := range recs {
		full = append(full, EncodeRecord(r)...)
	}
	// Cut inside record 4 (0-based 3): 3 whole records survive.
	cut := int64(len(EncodeRecord(recs[0]))*3 + 5)
	dir := t.TempDir()
	remaining := cut
	l, err := openWith(dir, func(path string) (segFile, error) {
		f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, err
		}
		return &cutFile{f: f, remaining: &remaining}, nil
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := l.AppendSync(r); err != nil {
			break
		}
	}
	_ = l.Close()

	// "Reboot": reopen with a healthy disk and write the second
	// generation.
	l, err = Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.AppendSync(Record{TID: 100, Ops: []Op{{Key: "post", Value: []byte("crash")}}}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	_, got, _, err := ReplayDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("replayed %d records, want 3 survivors + 1 post-crash", len(got))
	}
	for i := 0; i < 3; i++ {
		if got[i].TID != recs[i].TID {
			t.Fatalf("survivor %d: %+v", i, got[i])
		}
	}
	if got[3].TID != 100 || got[3].Ops[0].Key != "post" {
		t.Fatalf("post-crash record: %+v", got[3])
	}
}

// TestWriteFailureIsTerminal: after any failed batch write the logger
// must refuse further appends (later batches would land behind
// unreplayable junk) and report the failure via Err.
func TestWriteFailureIsTerminal(t *testing.T) {
	dir := t.TempDir()
	remaining := int64(10) // fails inside the first record
	l, err := openWith(dir, func(path string) (segFile, error) {
		f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, err
		}
		return &cutFile{f: f, remaining: &remaining}, nil
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.AppendSync(Record{TID: 1, Ops: []Op{{Key: "k", Value: []byte("v")}}}); err == nil {
		t.Fatal("expected write failure")
	}
	if l.Err() == nil {
		t.Fatal("Err() must report the terminal failure")
	}
	remaining = 1 << 20 // even with a healthy disk again, the logger stays down
	if err := l.AppendSync(Record{TID: 2, Ops: []Op{{Key: "k", Value: []byte("w")}}}); err == nil {
		t.Fatal("append accepted after terminal failure")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}
