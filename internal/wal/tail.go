package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// Position identifies a byte boundary in a segmented log: the segment's
// sequence number and a byte offset within it. Because segments seal on
// record boundaries and group commits append whole frames, every
// Position a Logger or Cursor reports lies on a record boundary. A
// primary's durable position and a follower's applied position are
// directly comparable: replication lag is the distance between them.
//
// The zero Position is "before everything" — it compares less than any
// position inside a real segment (sequence numbers start at 1).
type Position struct {
	// Seq is the segment sequence number.
	Seq uint64
	// Offset is the byte offset within segment Seq.
	Offset int64
}

// Less reports whether p is strictly before q in log order.
func (p Position) Less(q Position) bool {
	if p.Seq != q.Seq {
		return p.Seq < q.Seq
	}
	return p.Offset < q.Offset
}

// IsZero reports whether p is the zero Position.
func (p Position) IsZero() bool { return p == Position{} }

// String renders p as "seq:offset".
func (p Position) String() string { return fmt.Sprintf("%d:%d", p.Seq, p.Offset) }

// ErrTailGCed reports that a cursor's next segment was deleted by a
// checkpoint's garbage collection before the cursor read it. The cursor
// can never catch up from segments alone; the caller must restart from
// the current snapshot.
var ErrTailGCed = errors.New("wal: tail position garbage-collected")

// TailStats counts the I/O a Cursor has performed. The interesting
// property is what does NOT grow: an idle poll on an unchanged segment
// costs one fstat and touches neither the manifest nor any sealed
// segment, so steady-state tailing is O(1) per poll regardless of how
// many segments the directory holds (unlike ReplayDir, which re-reads
// the manifest and rescans every live segment on each call).
type TailStats struct {
	// Polls counts Next calls.
	Polls uint64
	// Records counts records emitted to the apply callback.
	Records uint64
	// ManifestReads counts manifest loads: one at OpenCursor, one per
	// sealed-segment handoff, one per probe of a missing segment file.
	ManifestReads uint64
	// SegmentOpens counts segment file opens: one per segment, ever —
	// the cursor holds the open segment's descriptor across polls.
	SegmentOpens uint64
}

// Cursor is an incremental reader over a Logger's segment directory,
// built for tailing a live log that another process is appending to.
// It remembers the byte offset it has consumed and, on each Next call,
// applies only the complete records that appeared since — never
// rescanning sealed segments or re-reading the manifest on the idle
// path.
//
// Torn-tail tolerance: an undecodable frame at the tail of the open
// segment is indistinguishable from a group commit still being written,
// so the cursor stops before it without error and re-reads from the
// same offset next poll. If the primary crashed and its reopen trimmed
// those bytes, the re-read simply sees the trimmed file (possibly with
// new records appended); nothing stale is ever carried across polls.
// The same bytes at the tail of a sealed segment — one whose successor
// exists, which the primary creates only after the seal is durable —
// are real corruption and fail loudly, exactly as ReplayDir treats
// sealed segments. Where the manifest recorded a sealed segment's
// metadata, the cursor additionally checks its observed record count
// and TID range against it before moving on.
//
// A Cursor is not safe for concurrent use.
type Cursor struct {
	dir string
	seq uint64 // segment currently being consumed
	off int64  // bytes of seq consumed (always a record boundary)
	f   *os.File
	// meta accumulates the record count and TID range observed in the
	// current segment, checked against the manifest at the seal handoff.
	meta SegmentMeta
	// metaPartial suppresses the manifest metadata check for the current
	// segment only: a cursor resumed mid-segment (OpenCursorAt) did not
	// observe the records before its starting offset, so its counts
	// cannot match the manifest's. Structural checks still apply.
	metaPartial bool
	buf         []byte
	stats       TailStats
}

// OpenCursor positions a new cursor at the start of dir's live log: the
// first segment not covered by the manifest's snapshot. It returns the
// manifest it read so the caller can load the snapshot (the state the
// log's records build on) before tailing. A directory that does not
// exist yet, or holds no segments, yields a cursor that waits at the
// log's start for the primary's first append.
func OpenCursor(dir string) (*Cursor, Manifest, error) {
	c := &Cursor{dir: dir, seq: 1}
	c.stats.ManifestReads++
	man, live, err := LiveSegments(dir)
	if err != nil {
		if os.IsNotExist(err) {
			// The primary has not created the directory yet; start at
			// segment 1 and wait for it.
			c.meta = SegmentMeta{Seq: c.seq}
			return c, Manifest{}, nil
		}
		return nil, Manifest{}, err
	}
	if len(live) > 0 {
		c.seq = live[0].Seq
	} else if man.SnapshotSeq > 0 {
		c.seq = man.SnapshotSeq
	}
	c.meta = SegmentMeta{Seq: c.seq}
	return c, man, nil
}

// OpenCursorAt resumes tailing from a previously reported Position —
// the state a follower checkpoint saved — so a restart replays only the
// suffix after pos instead of the whole post-snapshot log. The caller
// must have applied everything before pos. If a checkpoint has already
// garbage-collected pos's segment the resume is impossible and the
// error matches ErrTailGCed; bootstrap fresh instead. A cursor resumed
// mid-segment skips the manifest metadata cross-check for that first
// segment only (it has not seen the records before pos).
func OpenCursorAt(dir string, pos Position) (*Cursor, error) {
	if pos.IsZero() {
		c, _, err := OpenCursor(dir)
		return c, err
	}
	c := &Cursor{dir: dir, seq: pos.Seq, off: pos.Offset, metaPartial: pos.Offset > 0}
	c.stats.ManifestReads++
	man, _, err := ReadManifest(dir)
	if err != nil {
		return nil, err
	}
	if man.SnapshotSeq > pos.Seq {
		return nil, fmt.Errorf("wal: resume position %s predates snapshot at segment %d: %w",
			pos, man.SnapshotSeq, ErrTailGCed)
	}
	c.meta = SegmentMeta{Seq: c.seq}
	return c, nil
}

// Position returns the cursor's current position: every record before
// it has been passed to apply, nothing at or after it has.
func (c *Cursor) Position() Position { return Position{Seq: c.seq, Offset: c.off} }

// Stats returns the cursor's cumulative I/O counters.
func (c *Cursor) Stats() TailStats { return c.stats }

// Close releases the cursor's open segment handle, if any.
func (c *Cursor) Close() error {
	if c.f != nil {
		err := c.f.Close()
		c.f = nil
		return err
	}
	return nil
}

// Next applies every record that has become visible since the previous
// call, crossing sealed-segment boundaries as needed, and returns how
// many records it applied. A nil error with a zero count means the log
// simply has nothing new. Errors are terminal for the cursor: sealed
// segment corruption, a manifest that fails its checksum, a segment
// garbage-collected out from under the cursor (ErrTailGCed), or a
// failure returned by apply itself.
func (c *Cursor) Next(apply func(Record) error) (int, error) {
	c.stats.Polls++
	n := 0
	for {
		// Order matters: observe the successor BEFORE draining. advance()
		// makes the seal durable before creating the successor file, so a
		// successor seen here proves every byte of the current segment was
		// final when the drain below read it — undecodable bytes are then
		// corruption, not an in-flight append. Probing in the other order
		// could see a mid-poll seal and misread an in-flight tail as
		// corrupt.
		sealed, err := c.successorExists()
		if err != nil {
			return n, err
		}
		k, err := c.drain(apply)
		n += k
		if err != nil {
			return n, err
		}
		if !sealed {
			return n, nil
		}
		if err := c.finishSegment(); err != nil {
			return n, err
		}
	}
}

// successorExists reports whether segment seq+1 exists, which is the
// durable evidence that segment seq is sealed.
func (c *Cursor) successorExists() (bool, error) {
	_, err := os.Stat(filepath.Join(c.dir, segmentName(c.seq+1)))
	if err == nil {
		return true, nil
	}
	if os.IsNotExist(err) {
		return false, nil
	}
	return false, err
}

// drain reads the current segment from the cursor's offset and applies
// every complete, valid record it finds, stopping without error at the
// first frame it cannot decode (an in-flight group commit or a torn
// tail — resolved by re-reading on a later poll).
func (c *Cursor) drain(apply func(Record) error) (int, error) {
	if c.f == nil {
		f, err := os.Open(filepath.Join(c.dir, segmentName(c.seq)))
		if err != nil {
			if os.IsNotExist(err) {
				return 0, c.missingSegment()
			}
			return 0, err
		}
		c.f = f
		c.stats.SegmentOpens++
	}
	fi, err := c.f.Stat()
	if err != nil {
		return 0, err
	}
	avail := fi.Size() - c.off
	if avail <= 0 {
		// Nothing new. (A size below our offset would mean the primary
		// trimmed bytes we already applied; that cannot happen for
		// records — only unacknowledged torn bytes are ever trimmed, and
		// the cursor never applies those.)
		return 0, nil
	}
	if int64(cap(c.buf)) < avail {
		c.buf = make([]byte, avail)
	}
	buf := c.buf[:avail]
	// A short read (the file shrank between Stat and ReadAt, e.g. a
	// primary reopen trimming its torn tail) just narrows this poll's
	// view; the scanner stops at the truncation like any torn frame.
	nr, err := c.f.ReadAt(buf, c.off)
	if err != nil && nr == 0 {
		return 0, nil
	}
	buf = buf[:nr]
	applied := 0
	for {
		rec, frameLen, ok := scanFrame(buf)
		if !ok {
			break
		}
		if err := apply(rec); err != nil {
			return applied, err
		}
		buf = buf[frameLen:]
		c.off += int64(frameLen)
		c.meta.extendTID(rec.TID)
		c.stats.Records++
		applied++
	}
	return applied, nil
}

// missingSegment distinguishes "the segment does not exist yet" (the
// primary has not created it — keep waiting) from "a checkpoint
// garbage-collected it" (the cursor fell irrecoverably behind).
func (c *Cursor) missingSegment() error {
	man, _, err := ReadManifest(c.dir)
	c.stats.ManifestReads++
	if err != nil {
		return err
	}
	if man.SnapshotSeq > c.seq {
		return fmt.Errorf("wal: segment %d gone, snapshot now starts at %d: %w",
			c.seq, man.SnapshotSeq, ErrTailGCed)
	}
	return nil
}

// finishSegment validates the fully-consumed sealed segment and steps
// the cursor to its successor. The successor's existence (checked by
// the caller) proves the seal, so a trailing byte the scanner could not
// consume is corruption — the same rule ReplayDir applies to all but
// the newest segment. Where the manifest recorded the sealed segment's
// metadata, the cursor's observed record count and TID range must match
// it exactly; this catches damage that still decodes cleanly, such as a
// dropped buffered write ending on a record boundary.
func (c *Cursor) finishSegment() error {
	if c.f == nil {
		// The segment vanished while its successor exists: GC claimed it
		// before we read it.
		return c.missingSegment()
	}
	fi, err := c.f.Stat()
	if err != nil {
		return err
	}
	if fi.Size() != c.off {
		return fmt.Errorf("wal: corrupt record in sealed segment %s: %d of %d bytes decode",
			filepath.Join(c.dir, segmentName(c.seq)), c.off, fi.Size())
	}
	man, _, err := ReadManifest(c.dir)
	c.stats.ManifestReads++
	if err != nil {
		return err
	}
	if meta := man.SealedFor(c.seq); !c.metaPartial && meta != nil && *meta != c.meta {
		return fmt.Errorf(
			"wal: sealed segment %s tailed to %d records TIDs [%d,%d], manifest sealed it with %d records TIDs [%d,%d]",
			filepath.Join(c.dir, segmentName(c.seq)),
			c.meta.Records, c.meta.MinTID, c.meta.MaxTID,
			meta.Records, meta.MinTID, meta.MaxTID)
	}
	if err := c.f.Close(); err != nil {
		return err
	}
	c.f = nil
	c.seq++
	c.off = 0
	c.meta = SegmentMeta{Seq: c.seq}
	c.metaPartial = false
	return nil
}

// scanFrame decodes one record frame from the head of b. ok is false
// when the frame is incomplete or fails its checksum or structural
// checks — states a tailing reader cannot distinguish from a write that
// has not finished, so the caller treats them all as "stop here, retry
// later".
func scanFrame(b []byte) (rec Record, frameLen int, ok bool) {
	if len(b) < 8 {
		return Record{}, 0, false
	}
	bodyLen := binary.LittleEndian.Uint32(b)
	if bodyLen > 1<<30 {
		return Record{}, 0, false
	}
	total := 8 + int(bodyLen)
	if len(b) < total {
		return Record{}, 0, false
	}
	body := b[8:total]
	if crc32.Checksum(body, castagnoli) != binary.LittleEndian.Uint32(b[4:]) {
		return Record{}, 0, false
	}
	rec, err := decodeBody(body)
	if err != nil {
		return Record{}, 0, false
	}
	return rec, total, true
}

// DirLock is an exclusive lock on a log directory held without opening
// a Logger. Promotion uses it to fence the primary: once acquired, no
// Logger can open the directory, so a final drain of the log observes
// its true end.
type DirLock struct{ f *os.File }

// AcquireDirLock takes dir's exclusive lock — the same LOCK file a
// Logger holds while open — failing immediately if another process (a
// live primary) holds it.
func AcquireDirLock(dir string) (*DirLock, error) {
	f, err := lockDir(dir)
	if err != nil {
		return nil, err
	}
	return &DirLock{f: f}, nil
}

// Release drops the lock. It is safe to call on a nil receiver.
func (d *DirLock) Release() {
	if d == nil {
		return
	}
	unlockDir(d.f)
	d.f = nil
}
