package wal

// Tests of the LSN/watermark durability contract: Append assigns
// strictly monotone LSNs under concurrency, Durable() only ever
// advances, and a WaitDurable(lsn) that returns nil is a promise the
// record survives any subsequent crash and reopen (ack-after-fsync).

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// TestWaitDurableAckSurvivesCrash drives the known workload through the
// raw LSN API against a crash-injecting segment file at every possible
// byte cut, recording which WaitDurable calls returned nil. Every
// record acknowledged that way must replay after the "reboot"; records
// whose WaitDurable reported the injected failure may or may not have
// reached disk (the crash hit between their write and their ack), which
// is exactly the ambiguity the watermark resolves for operators.
func TestWaitDurableAckSurvivesCrash(t *testing.T) {
	const n = 10
	recs := crashWorkload(n)
	var full []byte
	for _, r := range recs {
		full = append(full, EncodeRecord(r)...)
	}
	root := t.TempDir()

	for cut := int64(0); cut <= int64(len(full)); cut += 7 {
		cut := cut
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			dir := filepath.Join(root, fmt.Sprintf("cut-%d", cut))
			remaining := cut
			l, err := openWith(dir, func(path string) (segFile, error) {
				f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
				if err != nil {
					return nil, err
				}
				return &cutFile{f: f, remaining: &remaining}, nil
			}, Options{})
			if err != nil {
				t.Fatal(err)
			}
			acked := 0
			var enc []byte
			for i, r := range recs {
				enc = AppendRecord(enc[:0], r)
				lsn, err := l.Append(enc, r.TID)
				if err != nil {
					break // logger already failed terminally
				}
				if want := uint64(i + 1); lsn != want {
					t.Fatalf("record %d assigned LSN %d, want %d", i, lsn, want)
				}
				if err := l.WaitDurable(lsn); err != nil {
					break // crash before this record's ack
				}
				if got := l.Durable(); got < lsn {
					t.Fatalf("WaitDurable(%d) returned nil but Durable()=%d", lsn, got)
				}
				acked++
			}
			// Acks already granted must survive the terminal failure: the
			// watermark covers them, so WaitDurable keeps returning nil.
			for lsn := uint64(1); lsn <= uint64(acked); lsn++ {
				if err := l.WaitDurable(lsn); err != nil {
					t.Fatalf("durable LSN %d reported %v after the crash", lsn, err)
				}
			}
			_ = l.Close() // post-crash close errors are expected

			got, err := ReplayFile(filepath.Join(dir, segmentName(1)))
			if err != nil {
				t.Fatal(err)
			}
			if len(got) < acked {
				t.Fatalf("WaitDurable acked %d records but replay recovered only %d", acked, len(got))
			}
			for i := 0; i < acked; i++ {
				if got[i].TID != recs[i].TID {
					t.Fatalf("acked record %d replayed as TID %d, want %d", i, got[i].TID, recs[i].TID)
				}
			}
		})
	}
}

// TestLSNMonotonicUnderConcurrentAppenders hammers Append from many
// goroutines and checks the LSN contract: every assigned LSN is unique,
// the set is dense (1..total, no gaps — each batch's watermark then
// covers exactly the records before it), each goroutine observes
// strictly increasing LSNs in call order, and the final watermark
// reaches the maximum after WaitDurable. The whole log must then replay
// to exactly one record per append.
func TestLSNMonotonicUnderConcurrentAppenders(t *testing.T) {
	const (
		appenders = 8
		perApp    = 200
	)
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	lsns := make([][]uint64, appenders)
	var wg sync.WaitGroup
	for a := 0; a < appenders; a++ {
		a := a
		wg.Add(1)
		go func() {
			defer wg.Done()
			var enc []byte
			for i := 0; i < perApp; i++ {
				tid := uint64(a*perApp + i + 1)
				enc = AppendRecord(enc[:0], Record{TID: tid, Ops: []Op{{Key: "k", Value: []byte("v")}}})
				lsn, err := l.Append(enc, tid)
				if err != nil {
					t.Errorf("appender %d: %v", a, err)
					return
				}
				lsns[a] = append(lsns[a], lsn)
				// The watermark may trail this append but must never
				// pass the newest assigned LSN overall; checking against
				// our own lsn is the race-free lower-bound statement.
				if d := l.Durable(); d >= lsn && l.WaitDurable(lsn) != nil {
					t.Errorf("appender %d: watermark %d covers %d but WaitDurable failed", a, d, lsn)
				}
			}
		}()
	}
	wg.Wait()
	seen := make(map[uint64]bool, appenders*perApp)
	var max uint64
	for a := range lsns {
		if len(lsns[a]) != perApp {
			t.Fatalf("appender %d assigned %d LSNs, want %d", a, len(lsns[a]), perApp)
		}
		for i, lsn := range lsns[a] {
			if i > 0 && lsn <= lsns[a][i-1] {
				t.Fatalf("appender %d: LSN %d after %d — not monotone in call order", a, lsn, lsns[a][i-1])
			}
			if seen[lsn] {
				t.Fatalf("LSN %d assigned twice", lsn)
			}
			seen[lsn] = true
			if lsn > max {
				max = lsn
			}
		}
	}
	if want := uint64(appenders * perApp); max != want {
		t.Fatalf("max LSN %d, want dense 1..%d", max, want)
	}
	if err := l.WaitDurable(max); err != nil {
		t.Fatal(err)
	}
	if d := l.Durable(); d < max {
		t.Fatalf("watermark %d below max assigned LSN %d after WaitDurable", d, max)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, recs, _, err := ReplayDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != appenders*perApp {
		t.Fatalf("replayed %d records, want %d", len(recs), appenders*perApp)
	}
}

// TestDurableWatermarkAfterClose: a clean Close flushes everything, so
// the watermark covers every assigned LSN and late WaitDurable calls
// return instantly; appends after Close are refused without assigning
// an LSN.
func TestDurableWatermarkAfterClose(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var last uint64
	for i := 0; i < 10; i++ {
		enc := EncodeRecord(Record{TID: uint64(i + 1), Ops: []Op{{Key: "k", Value: []byte("v")}}})
		if last, err = l.Append(enc, uint64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if d := l.Durable(); d != last {
		t.Fatalf("watermark %d after close, want %d", d, last)
	}
	if err := l.WaitDurable(last); err != nil {
		t.Fatalf("WaitDurable after clean close: %v", err)
	}
	if _, err := l.Append(EncodeRecord(Record{TID: 99}), 99); err == nil {
		t.Fatal("append accepted after Close")
	}
	// Waiting on an LSN that was never assigned must resolve with the
	// closed error, not hang: the committer's exit broadcast is the
	// last wakeup.
	done := make(chan error, 1)
	go func() { done <- l.WaitDurable(last + 5) }()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("WaitDurable(unassigned) returned nil after Close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WaitDurable(unassigned) hung after clean Close")
	}
}
