package wal

// Reordered-write crash harness: cutFile (crash_test.go) models a disk
// that persists a clean prefix of everything written. Real disks are
// worse: bytes buffered between fsync barriers reach the platter in
// sector units and in any order, so a crash can persist a LATER sector
// of an unsynced write while dropping an EARLIER one. reorderFile
// models that — writes buffer in memory, Sync is the only durability
// barrier, and at the injected crash point an arbitrary subset of the
// pending sectors lands at its true offset (holes read back as zeros).
//
// The properties under test: group commit never lies (every record
// whose AppendSync was acknowledged survives any subset persistence of
// later writes), replay never invents or reorders records (the result
// is always a prefix of what was submitted), and damage to a sealed
// segment — even damage that still decodes cleanly, like a dropped
// tail that ends exactly on a record boundary — fails recovery loudly
// via the manifest's sealed-segment metadata.

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// reorderSectorSize is small relative to a record (~32 bytes) so a
// single record spans several sectors and can be torn mid-record in
// non-prefix ways.
const reorderSectorSize = 8

// reorderFile is a segFile whose writes stay buffered until Sync. At
// the crashAtSync-th Sync call, instead of flushing, it persists only
// the pending sectors selected by keep — at their true offsets, leaving
// zero holes — and fails that Sync and every later operation.
type reorderFile struct {
	f           *os.File
	synced      int64 // durable bytes (all earlier syncs flushed fully)
	pending     []byte
	syncs       int
	crashAtSync int
	keep        func(sector int) bool
	crashed     bool
}

func (r *reorderFile) Write(p []byte) (int, error) {
	if r.crashed {
		return 0, errInjectedCrash
	}
	r.pending = append(r.pending, p...)
	return len(p), nil
}

func (r *reorderFile) Sync() error {
	if r.crashed {
		return errInjectedCrash
	}
	r.syncs++
	if r.syncs == r.crashAtSync {
		r.crashed = true
		for off := 0; off < len(r.pending); off += reorderSectorSize {
			end := off + reorderSectorSize
			if end > len(r.pending) {
				end = len(r.pending)
			}
			if r.keep(off / reorderSectorSize) {
				if _, err := r.f.WriteAt(r.pending[off:end], r.synced+int64(off)); err != nil {
					return err
				}
			}
		}
		_ = r.f.Sync()
		return errInjectedCrash
	}
	if _, err := r.f.WriteAt(r.pending, r.synced); err != nil {
		return err
	}
	r.synced += int64(len(r.pending))
	r.pending = nil
	return r.f.Sync()
}

func (r *reorderFile) Close() error { return r.f.Close() }

func openReorder(t *testing.T, dir string, crashAtSync int, keep func(int) bool) *Logger {
	t.Helper()
	l, err := openWith(dir, func(path string) (segFile, error) {
		f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			return nil, err
		}
		return &reorderFile{f: f, crashAtSync: crashAtSync, keep: keep}, nil
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// TestCrashReorderedSectorWrites drives a known workload into a crash
// whose unsynced sectors persist in assorted non-prefix subsets, and
// checks the group-commit contract at each: acknowledged records all
// survive, and replay returns a prefix of the submitted records — never
// reordered or invented data.
func TestCrashReorderedSectorWrites(t *testing.T) {
	const n = 8
	const crashAt = 6 // records 1..5 acked; record 6's sectors get scrambled
	recs := crashWorkload(n)
	scenarios := []struct {
		name string
		keep func(sector int) bool
		// exact replay count when known, -1 when only bounds apply
		want int
	}{
		// The classic reordering: a later sector reached the disk, the
		// earlier one did not. A truncation model cannot produce this.
		{"drop first sector, keep rest", func(s int) bool { return s != 0 }, crashAt - 1},
		{"keep odd sectors only", func(s int) bool { return s%2 == 1 }, crashAt - 1},
		{"drop all pending", func(s int) bool { return false }, crashAt - 1},
		// Everything reached the disk but the barrier failed: the record
		// was never acknowledged, yet replay may legitimately return it.
		{"keep all pending", func(s int) bool { return true }, crashAt},
	}
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			dir := t.TempDir()
			l := openReorder(t, dir, crashAt, sc.keep)
			acked := 0
			for _, r := range recs {
				if err := l.AppendSync(r); err != nil {
					break // crashed: no later record can be acknowledged
				}
				acked++
			}
			_ = l.Close() // post-crash close errors are expected
			if acked != crashAt-1 {
				t.Fatalf("acked %d records, expected the %d pre-crash ones", acked, crashAt-1)
			}

			got, err := ReplayFile(filepath.Join(dir, segmentName(1)))
			if err != nil {
				t.Fatal(err)
			}
			if len(got) < acked {
				t.Fatalf("acked %d records but replay recovered only %d", acked, len(got))
			}
			if len(got) > len(recs) {
				t.Fatalf("replayed %d > submitted %d", len(got), len(recs))
			}
			if sc.want >= 0 && len(got) != sc.want {
				t.Fatalf("replayed %d records, want %d", len(got), sc.want)
			}
			for i, r := range got {
				want := recs[i]
				if r.TID != want.TID || len(r.Ops) != 1 ||
					r.Ops[0].Key != want.Ops[0].Key ||
					string(r.Ops[0].Value) != string(want.Ops[0].Value) {
					t.Fatalf("record %d: got %+v want %+v", i, r, want)
				}
			}
		})
	}
}

// TestReorderedSealedSegmentFailsReplay: an interior sector of a sealed
// segment goes missing (storage that lied about an fsync). The damaged
// record no longer decodes, and because the segment is sealed — not the
// newest — recovery must refuse rather than treat it as a torn tail.
func TestReorderedSealedSegmentFailsReplay(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range crashWorkload(5) {
		if err := l.AppendSync(r); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := l.Rotate(); err != nil { // seals segment 1, records its metadata
		t.Fatal(err)
	}
	if err := l.AppendSync(Record{TID: 100, Ops: []Op{{Key: "post", Value: []byte("rotate")}}}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	seg1 := filepath.Join(dir, segmentName(1))
	f, err := os.OpenFile(seg1, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Zero one sector in the middle of the sealed segment.
	if _, err := f.WriteAt(make([]byte, reorderSectorSize), 40); err != nil {
		t.Fatal(err)
	}
	f.Close()

	if _, _, _, err := ReplayDir(dir); err == nil ||
		!strings.Contains(err.Error(), "sealed segment") {
		t.Fatalf("replay of a damaged sealed segment: err = %v, want sealed-segment corruption", err)
	}
}

// TestSealedSegmentRecordBoundaryDropCaughtByManifest: the nastiest
// reordering outcome — a dropped buffered write at the END of a sealed
// segment that lands exactly on a record boundary. The file still
// decodes cleanly (no torn tail, no CRC failure), so only the
// manifest's sealed-segment metadata can notice the missing records.
func TestSealedSegmentRecordBoundaryDropCaughtByManifest(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	recs := crashWorkload(5)
	for _, r := range recs {
		if err := l.AppendSync(r); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := l.Rotate(); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendSync(Record{TID: 100, Ops: []Op{{Key: "post", Value: []byte("rotate")}}}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Drop segment 1's last record exactly.
	var keep int64
	for _, r := range recs[:len(recs)-1] {
		keep += int64(len(EncodeRecord(r)))
	}
	seg1 := filepath.Join(dir, segmentName(1))
	if err := os.Truncate(seg1, keep); err != nil {
		t.Fatal(err)
	}
	// Sanity: the damaged file itself still replays cleanly.
	if got, torn, err := ReplaySegment(seg1); err != nil || torn || len(got) != len(recs)-1 {
		t.Fatalf("boundary drop should decode cleanly: %d records, torn=%v, err=%v", len(got), torn, err)
	}

	if _, _, _, err := ReplayDir(dir); err == nil ||
		!strings.Contains(err.Error(), "manifest sealed it with") {
		t.Fatalf("ReplayDir: err = %v, want manifest metadata mismatch", err)
	}
}
