package wal

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func openT(t *testing.T, dir string) *Logger {
	t.Helper()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func replayAllT(t *testing.T, dir string) []Record {
	t.Helper()
	_, recs, _, err := ReplayDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	return recs
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir)
	recs := []Record{
		{TID: 1, Ops: []Op{{Key: "a", Value: []byte("1")}}},
		{TID: 2, Ops: []Op{{Key: "b", Value: []byte("22")}, {Key: "c", Value: nil}}},
		{TID: 3, Ops: nil},
	}
	for _, r := range recs {
		if err := l.AppendSync(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got := replayAllT(t, dir)
	if len(got) != 3 {
		t.Fatalf("replayed %d records", len(got))
	}
	if got[1].TID != 2 || len(got[1].Ops) != 2 || got[1].Ops[0].Key != "b" ||
		string(got[1].Ops[0].Value) != "22" {
		t.Fatalf("record 1: %+v", got[1])
	}
	if len(got[2].Ops) != 0 {
		t.Fatalf("record 2: %+v", got[2])
	}
}

func TestGroupCommitConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir)
	const writers = 8
	const perWriter = 200
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				rec := Record{TID: uint64(w*perWriter + i + 1),
					Ops: []Op{{Key: "k", Value: []byte{byte(w)}}}}
				if err := l.AppendSync(rec); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got := replayAllT(t, dir)
	if len(got) != writers*perWriter {
		t.Fatalf("replayed %d, want %d", len(got), writers*perWriter)
	}
	seen := map[uint64]bool{}
	for _, r := range got {
		if seen[r.TID] {
			t.Fatalf("duplicate TID %d", r.TID)
		}
		seen[r.TID] = true
	}
}

func TestAppendAfterClose(t *testing.T) {
	l := openT(t, t.TempDir())
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendSync(Record{TID: 1}); err == nil {
		t.Fatal("expected error after close")
	}
	if err := l.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
}

// TestReopenAppends is the regression test for the seed's truncate-on-
// open bug: opening an existing log must append, never discard.
func TestReopenAppends(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir)
	if err := l.AppendSync(Record{TID: 1, Ops: []Op{{Key: "a", Value: []byte("1")}}}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l = openT(t, dir)
	if got := l.SegmentSeq(); got != 1 {
		t.Fatalf("reopen segment seq %d, want 1", got)
	}
	if err := l.AppendSync(Record{TID: 2, Ops: []Op{{Key: "b", Value: []byte("2")}}}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got := replayAllT(t, dir)
	if len(got) != 2 || got[0].TID != 1 || got[1].TID != 2 {
		t.Fatalf("after reopen: %+v", got)
	}
}

func tornTail(t *testing.T, dir string, cut int64) string {
	t.Helper()
	seg := filepath.Join(dir, segmentName(1))
	fi, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, fi.Size()-cut); err != nil {
		t.Fatal(err)
	}
	return seg
}

func TestReplayTornTail(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir)
	for tid := uint64(1); tid <= 5; tid++ {
		if err := l.AppendSync(Record{TID: tid, Ops: []Op{{Key: "k", Value: []byte("v")}}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Truncate mid-record to simulate a crash during a write.
	tornTail(t, dir, 3)
	got := replayAllT(t, dir)
	if len(got) != 4 {
		t.Fatalf("torn tail: replayed %d, want 4", len(got))
	}
}

// TestReopenAfterTornTail: a crash mid-write leaves a torn tail; reopen
// must trim it so records appended after recovery are replayable.
func TestReopenAfterTornTail(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir)
	for tid := uint64(1); tid <= 5; tid++ {
		if err := l.AppendSync(Record{TID: tid, Ops: []Op{{Key: "k", Value: []byte("v")}}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	tornTail(t, dir, 3)
	l = openT(t, dir)
	if err := l.AppendSync(Record{TID: 6, Ops: []Op{{Key: "k", Value: []byte("w")}}}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got := replayAllT(t, dir)
	if len(got) != 5 {
		t.Fatalf("replayed %d, want 5 (4 survivors + 1 new)", len(got))
	}
	if got[4].TID != 6 || string(got[4].Ops[0].Value) != "w" {
		t.Fatalf("post-reopen record: %+v", got[4])
	}
}

func TestReplayCorruptBody(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir)
	for tid := uint64(1); tid <= 3; tid++ {
		if err := l.AppendSync(Record{TID: tid, Ops: []Op{{Key: "key", Value: []byte("value")}}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the last record's body.
	seg := filepath.Join(dir, segmentName(1))
	raw, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-2] ^= 0xFF
	if err := os.WriteFile(seg, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	got := replayAllT(t, dir)
	if len(got) != 2 {
		t.Fatalf("corrupt body: replayed %d, want 2", len(got))
	}
}

func TestReplayMissingDir(t *testing.T) {
	if _, _, _, err := ReplayDir(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("expected error")
	}
	if _, err := ReplayFile(filepath.Join(t.TempDir(), "nope.log")); err == nil {
		t.Fatal("expected error")
	}
}

func TestRotateSplitsSegments(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir)
	if err := l.AppendSync(Record{TID: 1, Ops: []Op{{Key: "a", Value: []byte("1")}}}); err != nil {
		t.Fatal(err)
	}
	seq, err := l.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if seq != 2 || l.SegmentSeq() != 2 {
		t.Fatalf("rotate seq %d (logger %d), want 2", seq, l.SegmentSeq())
	}
	if err := l.AppendSync(Record{TID: 2, Ops: []Op{{Key: "b", Value: []byte("2")}}}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, recs, segs, err := ReplayDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 2 || segs[0].Records != 1 || segs[1].Records != 1 {
		t.Fatalf("segments: %+v", segs)
	}
	if len(recs) != 2 || recs[0].TID != 1 || recs[1].TID != 2 {
		t.Fatalf("records: %+v", recs)
	}
}

// TestInstallGarbageCollects checks manifest install plus GC: after a
// snapshot covering segment 1 is installed, replay starts at segment 2
// and the subsumed files are gone.
func TestInstallGarbageCollects(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir)
	if err := l.AppendSync(Record{TID: 1, Ops: []Op{{Key: "a", Value: []byte("old")}}}); err != nil {
		t.Fatal(err)
	}
	seq, err := l.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	// A stand-in snapshot file (contents are the checkpointer's business)
	// and a stale one that Install must collect.
	snap := "snapshot-00000002.db"
	if err := os.WriteFile(filepath.Join(dir, snap), []byte("snap"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "snapshot-00000001.db"), []byte("stale"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := l.Install(snap, seq); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendSync(Record{TID: 2, Ops: []Op{{Key: "b", Value: []byte("new")}}}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	if _, err := os.Stat(filepath.Join(dir, segmentName(1))); !os.IsNotExist(err) {
		t.Fatalf("segment 1 not collected: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "snapshot-00000001.db")); !os.IsNotExist(err) {
		t.Fatalf("stale snapshot not collected: %v", err)
	}
	man, recs, segs, err := ReplayDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if man.Snapshot != snap || man.SnapshotSeq != seq {
		t.Fatalf("manifest: %+v", man)
	}
	if len(segs) != 1 || segs[0].Seq != 2 {
		t.Fatalf("live segments: %+v", segs)
	}
	if len(recs) != 1 || recs[0].TID != 2 {
		t.Fatalf("live records: %+v", recs)
	}
}

func TestManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	if _, ok, err := ReadManifest(dir); ok || err != nil {
		t.Fatalf("empty dir: ok=%v err=%v", ok, err)
	}
	want := Manifest{Snapshot: "snapshot-00000007.db", SnapshotSeq: 7}
	if err := writeManifest(dir, want); err != nil {
		t.Fatal(err)
	}
	got, ok, err := ReadManifest(dir)
	if err != nil || !ok || got != want {
		t.Fatalf("got %+v ok=%v err=%v", got, ok, err)
	}
}

func TestManifestCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	if err := writeManifest(dir, Manifest{Snapshot: "s.db", SnapshotSeq: 3}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, manifestName)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[4] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadManifest(dir); err == nil {
		t.Fatal("expected checksum error")
	}
}

// TestSegmentGapDetected: a missing middle segment means acknowledged
// commits are unrecoverable; replay must say so, not skip silently.
func TestSegmentGapDetected(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir)
	if err := l.AppendSync(Record{TID: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Rotate(); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendSync(Record{TID: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Rotate(); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendSync(Record{TID: 3}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, segmentName(2))); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := ReplayDir(dir); err == nil {
		t.Fatal("expected segment-gap error")
	}
}

// TestCorruptSealedSegmentDetected: corruption before the newest segment
// cannot be a crash artifact; replay must fail loudly.
func TestCorruptSealedSegmentDetected(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir)
	if err := l.AppendSync(Record{TID: 1, Ops: []Op{{Key: "k", Value: []byte("v")}}}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Rotate(); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendSync(Record{TID: 2, Ops: []Op{{Key: "k", Value: []byte("w")}}}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	seg1 := filepath.Join(dir, segmentName(1))
	raw, err := os.ReadFile(seg1)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-2] ^= 0xFF
	if err := os.WriteFile(seg1, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := ReplayDir(dir); err == nil {
		t.Fatal("expected sealed-segment corruption error")
	}
}

func TestSnapshotNameRecognizedByGC(t *testing.T) {
	if !isSnapshotName(SnapshotFileName(7)) {
		t.Fatal("GC does not recognize the checkpointer's snapshot file name")
	}
	if isSnapshotName("wal-00000001.log") || isSnapshotName("MANIFEST") {
		t.Fatal("GC misclassifies non-snapshot files")
	}
}

// TestDoubleOpenRefused: two loggers on one directory would interleave
// appends and GC each other's segments; the second Open must fail.
func TestDoubleOpenRefused(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir)
	defer l.Close()
	if l2, err := Open(dir); err == nil {
		l2.Close()
		t.Fatal("second Open of a locked directory succeeded")
	}
	// After Close the directory is free again.
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l3 := openT(t, dir)
	if err := l3.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestMissingFirstLiveSegmentDetected: if the segment the manifest
// points at is gone, acknowledged commits are unrecoverable and replay
// must fail, not silently skip to the next segment.
func TestMissingFirstLiveSegmentDetected(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir)
	if err := l.AppendSync(Record{TID: 1}); err != nil {
		t.Fatal(err)
	}
	seq, err := l.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	snap := SnapshotFileName(seq)
	if err := os.WriteFile(filepath.Join(dir, snap), []byte("snap"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := l.Install(snap, seq); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Rotate(); err != nil { // segment seq+1 now exists
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, segmentName(seq))); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := ReplayDir(dir); err == nil {
		t.Fatal("expected error for missing manifest segment")
	}
}
