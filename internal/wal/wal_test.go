package wal

import (
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"
)

func openT(t *testing.T, dir string) *Logger {
	t.Helper()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func replayAllT(t *testing.T, dir string) []Record {
	t.Helper()
	_, recs, _, err := ReplayDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	return recs
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir)
	recs := []Record{
		{TID: 1, Ops: []Op{{Key: "a", Value: []byte("1")}}},
		{TID: 2, Ops: []Op{{Key: "b", Value: []byte("22")}, {Key: "c", Value: nil}}},
		{TID: 3, Ops: nil},
	}
	for _, r := range recs {
		if err := l.AppendSync(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got := replayAllT(t, dir)
	if len(got) != 3 {
		t.Fatalf("replayed %d records", len(got))
	}
	if got[1].TID != 2 || len(got[1].Ops) != 2 || got[1].Ops[0].Key != "b" ||
		string(got[1].Ops[0].Value) != "22" {
		t.Fatalf("record 1: %+v", got[1])
	}
	if len(got[2].Ops) != 0 {
		t.Fatalf("record 2: %+v", got[2])
	}
}

func TestGroupCommitConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir)
	const writers = 8
	const perWriter = 200
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				rec := Record{TID: uint64(w*perWriter + i + 1),
					Ops: []Op{{Key: "k", Value: []byte{byte(w)}}}}
				if err := l.AppendSync(rec); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got := replayAllT(t, dir)
	if len(got) != writers*perWriter {
		t.Fatalf("replayed %d, want %d", len(got), writers*perWriter)
	}
	seen := map[uint64]bool{}
	for _, r := range got {
		if seen[r.TID] {
			t.Fatalf("duplicate TID %d", r.TID)
		}
		seen[r.TID] = true
	}
}

func TestAppendAfterClose(t *testing.T) {
	l := openT(t, t.TempDir())
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendSync(Record{TID: 1}); err == nil {
		t.Fatal("expected error after close")
	}
	if err := l.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
}

// TestReopenAppends is the regression test for the seed's truncate-on-
// open bug: opening an existing log must append, never discard.
func TestReopenAppends(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir)
	if err := l.AppendSync(Record{TID: 1, Ops: []Op{{Key: "a", Value: []byte("1")}}}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l = openT(t, dir)
	if got := l.SegmentSeq(); got != 1 {
		t.Fatalf("reopen segment seq %d, want 1", got)
	}
	if err := l.AppendSync(Record{TID: 2, Ops: []Op{{Key: "b", Value: []byte("2")}}}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got := replayAllT(t, dir)
	if len(got) != 2 || got[0].TID != 1 || got[1].TID != 2 {
		t.Fatalf("after reopen: %+v", got)
	}
}

func tornTail(t *testing.T, dir string, cut int64) string {
	t.Helper()
	seg := filepath.Join(dir, segmentName(1))
	fi, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, fi.Size()-cut); err != nil {
		t.Fatal(err)
	}
	return seg
}

func TestReplayTornTail(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir)
	for tid := uint64(1); tid <= 5; tid++ {
		if err := l.AppendSync(Record{TID: tid, Ops: []Op{{Key: "k", Value: []byte("v")}}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Truncate mid-record to simulate a crash during a write.
	tornTail(t, dir, 3)
	got := replayAllT(t, dir)
	if len(got) != 4 {
		t.Fatalf("torn tail: replayed %d, want 4", len(got))
	}
}

// TestReopenAfterTornTail: a crash mid-write leaves a torn tail; reopen
// must trim it so records appended after recovery are replayable.
func TestReopenAfterTornTail(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir)
	for tid := uint64(1); tid <= 5; tid++ {
		if err := l.AppendSync(Record{TID: tid, Ops: []Op{{Key: "k", Value: []byte("v")}}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	tornTail(t, dir, 3)
	l = openT(t, dir)
	if err := l.AppendSync(Record{TID: 6, Ops: []Op{{Key: "k", Value: []byte("w")}}}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got := replayAllT(t, dir)
	if len(got) != 5 {
		t.Fatalf("replayed %d, want 5 (4 survivors + 1 new)", len(got))
	}
	if got[4].TID != 6 || string(got[4].Ops[0].Value) != "w" {
		t.Fatalf("post-reopen record: %+v", got[4])
	}
}

func TestReplayCorruptBody(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir)
	for tid := uint64(1); tid <= 3; tid++ {
		if err := l.AppendSync(Record{TID: tid, Ops: []Op{{Key: "key", Value: []byte("value")}}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the last record's body.
	seg := filepath.Join(dir, segmentName(1))
	raw, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-2] ^= 0xFF
	if err := os.WriteFile(seg, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	got := replayAllT(t, dir)
	if len(got) != 2 {
		t.Fatalf("corrupt body: replayed %d, want 2", len(got))
	}
}

func TestReplayMissingDir(t *testing.T) {
	if _, _, _, err := ReplayDir(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("expected error")
	}
	if _, err := ReplayFile(filepath.Join(t.TempDir(), "nope.log")); err == nil {
		t.Fatal("expected error")
	}
}

func TestRotateSplitsSegments(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir)
	if err := l.AppendSync(Record{TID: 1, Ops: []Op{{Key: "a", Value: []byte("1")}}}); err != nil {
		t.Fatal(err)
	}
	seq, err := l.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if seq != 2 || l.SegmentSeq() != 2 {
		t.Fatalf("rotate seq %d (logger %d), want 2", seq, l.SegmentSeq())
	}
	if err := l.AppendSync(Record{TID: 2, Ops: []Op{{Key: "b", Value: []byte("2")}}}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, recs, segs, err := ReplayDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 2 || segs[0].Records != 1 || segs[1].Records != 1 {
		t.Fatalf("segments: %+v", segs)
	}
	if len(recs) != 2 || recs[0].TID != 1 || recs[1].TID != 2 {
		t.Fatalf("records: %+v", recs)
	}
}

// TestInstallGarbageCollects checks manifest install plus GC: after a
// snapshot covering segment 1 is installed, replay starts at segment 2
// and the subsumed files are gone.
func TestInstallGarbageCollects(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir)
	if err := l.AppendSync(Record{TID: 1, Ops: []Op{{Key: "a", Value: []byte("old")}}}); err != nil {
		t.Fatal(err)
	}
	seq, err := l.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	// A stand-in snapshot file (contents are the checkpointer's business)
	// and a stale one that Install must collect.
	snap := "snapshot-00000002.db"
	if err := os.WriteFile(filepath.Join(dir, snap), []byte("snap"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "snapshot-00000001.db"), []byte("stale"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := l.Install(snap, seq); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendSync(Record{TID: 2, Ops: []Op{{Key: "b", Value: []byte("new")}}}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	if _, err := os.Stat(filepath.Join(dir, segmentName(1))); !os.IsNotExist(err) {
		t.Fatalf("segment 1 not collected: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "snapshot-00000001.db")); !os.IsNotExist(err) {
		t.Fatalf("stale snapshot not collected: %v", err)
	}
	man, recs, segs, err := ReplayDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if man.Snapshot != snap || man.SnapshotSeq != seq {
		t.Fatalf("manifest: %+v", man)
	}
	if len(segs) != 1 || segs[0].Seq != 2 {
		t.Fatalf("live segments: %+v", segs)
	}
	if len(recs) != 1 || recs[0].TID != 2 {
		t.Fatalf("live records: %+v", recs)
	}
}

func TestManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	if _, ok, err := ReadManifest(dir); ok || err != nil {
		t.Fatalf("empty dir: ok=%v err=%v", ok, err)
	}
	want := Manifest{Snapshot: "snapshot-00000007.db", SnapshotSeq: 7, Sealed: []SegmentMeta{
		{Seq: 7, MinTID: 100, MaxTID: 250, Records: 12},
		{Seq: 8, MinTID: 251, MaxTID: 260, Records: 3},
	}}
	if err := writeManifest(dir, want); err != nil {
		t.Fatal(err)
	}
	got, ok, err := ReadManifest(dir)
	if err != nil || !ok || !reflect.DeepEqual(got, want) {
		t.Fatalf("got %+v ok=%v err=%v", got, ok, err)
	}
}

// TestManifestV1Compat: manifests written before segment metadata
// existed (format v1) must still load, with no sealed-segment ranges.
func TestManifestV1Compat(t *testing.T) {
	dir := t.TempDir()
	body := "doppel-manifest-v1\nseq=3\nsnapshot=snapshot-00000003.db\n"
	content := body + fmt.Sprintf("crc=%08x\n", crc32.Checksum([]byte(body), castagnoli))
	if err := os.WriteFile(filepath.Join(dir, manifestName), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	got, ok, err := ReadManifest(dir)
	if err != nil || !ok {
		t.Fatalf("v1 manifest rejected: ok=%v err=%v", ok, err)
	}
	if got.Snapshot != "snapshot-00000003.db" || got.SnapshotSeq != 3 || len(got.Sealed) != 0 {
		t.Fatalf("v1 manifest parsed as %+v", got)
	}
}

func TestManifestCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	if err := writeManifest(dir, Manifest{Snapshot: "s.db", SnapshotSeq: 3}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, manifestName)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[4] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadManifest(dir); err == nil {
		t.Fatal("expected checksum error")
	}
}

// TestSegmentGapDetected: a missing middle segment means acknowledged
// commits are unrecoverable; replay must say so, not skip silently.
func TestSegmentGapDetected(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir)
	if err := l.AppendSync(Record{TID: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Rotate(); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendSync(Record{TID: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Rotate(); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendSync(Record{TID: 3}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, segmentName(2))); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := ReplayDir(dir); err == nil {
		t.Fatal("expected segment-gap error")
	}
}

// TestCorruptSealedSegmentDetected: corruption before the newest segment
// cannot be a crash artifact; replay must fail loudly.
func TestCorruptSealedSegmentDetected(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir)
	if err := l.AppendSync(Record{TID: 1, Ops: []Op{{Key: "k", Value: []byte("v")}}}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Rotate(); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendSync(Record{TID: 2, Ops: []Op{{Key: "k", Value: []byte("w")}}}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	seg1 := filepath.Join(dir, segmentName(1))
	raw, err := os.ReadFile(seg1)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-2] ^= 0xFF
	if err := os.WriteFile(seg1, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := ReplayDir(dir); err == nil {
		t.Fatal("expected sealed-segment corruption error")
	}
}

func TestSnapshotNameRecognizedByGC(t *testing.T) {
	if !isSnapshotName(SnapshotFileName(7)) {
		t.Fatal("GC does not recognize the checkpointer's snapshot file name")
	}
	if isSnapshotName("wal-00000001.log") || isSnapshotName("MANIFEST") {
		t.Fatal("GC misclassifies non-snapshot files")
	}
}

// TestFailReleasesQueuedRotate is the regression test for the
// stranded-rotate deadlock: a Rotate that queues while the committer is
// mid-write must be released with the terminal error when the write
// fails, because its caller is a checkpoint barrier holding every
// worker quiesced — stranding it would deadlock the whole database.
func TestFailReleasesQueuedRotate(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir)
	// Queue a rotate request directly, simulating one that registered
	// after the committer captured l.rot for its current iteration.
	req := &rotateReq{done: make(chan struct{})}
	l.mu.Lock()
	l.rot = req
	l.mu.Unlock()
	l.fail(errors.New("injected write failure"))
	select {
	case <-req.done:
		if req.err == nil {
			t.Fatal("queued rotate released without the terminal error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("queued rotate stranded after terminal failure")
	}
	if l.Err() == nil {
		t.Fatal("terminal failure not recorded")
	}
	_ = l.Close()
}

// TestSizeBasedRotation: with MaxSegmentBytes set, segments seal on
// byte thresholds with no Rotate calls, the manifest records each
// sealed segment's TID range, and replay still sees every record in
// order.
func TestSizeBasedRotation(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenOptions(dir, Options{MaxSegmentBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	const n = 5
	for tid := uint64(1); tid <= n; tid++ {
		if err := l.AppendSync(Record{TID: tid, Ops: []Op{{Key: "k", Value: []byte("v")}}}); err != nil {
			t.Fatal(err)
		}
	}
	// Wait for the committer to finish any rotation triggered by the last
	// batch: Close drains the committer loop.
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	man, recs, segs, err := ReplayDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != n {
		t.Fatalf("replayed %d records, want %d", len(recs), n)
	}
	for i, r := range recs {
		if r.TID != uint64(i+1) {
			t.Fatalf("record %d has TID %d: order lost across size rotations", i, r.TID)
		}
	}
	// Every AppendSync is its own batch, and a 1-byte budget seals the
	// segment after each batch, so there must be n sealed segments plus
	// the open one.
	if len(segs) != n+1 {
		t.Fatalf("got %d segments, want %d", len(segs), n+1)
	}
	if len(man.Sealed) != n {
		t.Fatalf("manifest records %d sealed segments, want %d: %+v", len(man.Sealed), n, man.Sealed)
	}
	for i, sm := range man.Sealed {
		want := SegmentMeta{Seq: uint64(i + 1), MinTID: uint64(i + 1), MaxTID: uint64(i + 1), Records: 1}
		if sm != want {
			t.Fatalf("sealed[%d] = %+v, want %+v", i, sm, want)
		}
	}
}

// TestSizeRotationMetaSurvivesReopen: the open segment's TID-range
// metadata is rebuilt from the file on reopen, so a seal after a
// crash-restart still publishes a correct range.
func TestSizeRotationMetaSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir)
	if err := l.AppendSync(Record{TID: 7, Ops: []Op{{Key: "k", Value: []byte("v")}}}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l = openT(t, dir)
	if err := l.AppendSync(Record{TID: 9, Ops: []Op{{Key: "k", Value: []byte("w")}}}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Rotate(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	man, _, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	sm := man.SealedFor(1)
	if sm == nil || sm.MinTID != 7 || sm.MaxTID != 9 || sm.Records != 2 {
		t.Fatalf("sealed segment 1 metadata %+v, want range [7,9] with 2 records", sm)
	}
}

// TestReopenRetractsSealedMetaOfAppendTarget is the regression test
// for the crash window between sealing a segment and opening its
// successor: the manifest records the newest segment as sealed, but
// reopen must append to that segment. Without durably retracting the
// metadata, post-reopen commits would contradict it and the next
// recovery would reject the log as corrupt.
func TestReopenRetractsSealedMetaOfAppendTarget(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir)
	if err := l.AppendSync(Record{TID: 1, Ops: []Op{{Key: "a", Value: []byte("1")}}}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Rotate(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate the crash: segment 2 was never durably created, so the
	// sealed segment 1 is the newest file on disk.
	if err := os.Remove(filepath.Join(dir, segmentName(2))); err != nil {
		t.Fatal(err)
	}

	l = openT(t, dir)
	if man, _, err := ReadManifest(dir); err != nil || man.SealedFor(1) != nil {
		t.Fatalf("reopen left sealed metadata for the append target: %+v (err %v)", man.Sealed, err)
	}
	if err := l.AppendSync(Record{TID: 2, Ops: []Op{{Key: "b", Value: []byte("2")}}}); err != nil {
		t.Fatal(err)
	}
	// Crash again without any further manifest write: recovery must not
	// reject segment 1 for having grown past retracted metadata.
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, recs, _, err := ReplayDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].TID != 1 || recs[1].TID != 2 {
		t.Fatalf("records after reopen-append: %+v", recs)
	}

	// And when the reopened segment seals again, its manifest line must
	// not duplicate (ReadManifest rejects out-of-order lines).
	l = openT(t, dir)
	if _, err := l.Rotate(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	man, _, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	sm := man.SealedFor(1)
	if sm == nil || sm.Records != 2 || sm.MinTID != 1 || sm.MaxTID != 2 {
		t.Fatalf("re-sealed segment 1 metadata: %+v", man.Sealed)
	}
}

// TestSealedMetaBounded: without checkpoints to prune it, the sealed
// metadata list must still stay bounded so per-seal manifest rewrites
// do not grow without limit.
func TestSealedMetaBounded(t *testing.T) {
	var s []SegmentMeta
	for seq := uint64(1); seq <= maxSealedMeta+100; seq++ {
		s = trimSealed(append(s, SegmentMeta{Seq: seq}))
	}
	if len(s) != maxSealedMeta {
		t.Fatalf("sealed metadata grew to %d entries, cap is %d", len(s), maxSealedMeta)
	}
	if s[0].Seq != 101 || s[len(s)-1].Seq != maxSealedMeta+100 {
		t.Fatalf("trim kept the wrong window: [%d, %d]", s[0].Seq, s[len(s)-1].Seq)
	}
}

// TestInstallPrunesSealedMeta: installing a snapshot drops manifest
// metadata for the segments the snapshot subsumed.
func TestInstallPrunesSealedMeta(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir)
	if err := l.AppendSync(Record{TID: 1, Ops: []Op{{Key: "a", Value: []byte("1")}}}); err != nil {
		t.Fatal(err)
	}
	seq, err := l.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	snap := SnapshotFileName(seq)
	if err := os.WriteFile(filepath.Join(dir, snap), []byte("snap"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := l.Install(snap, seq); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	man, _, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(man.Sealed) != 0 {
		t.Fatalf("subsumed segment metadata not pruned: %+v", man.Sealed)
	}
}

// TestDoubleOpenRefused: two loggers on one directory would interleave
// appends and GC each other's segments; the second Open must fail.
func TestDoubleOpenRefused(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir)
	defer l.Close()
	if l2, err := Open(dir); err == nil {
		l2.Close()
		t.Fatal("second Open of a locked directory succeeded")
	}
	// After Close the directory is free again.
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l3 := openT(t, dir)
	if err := l3.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestMissingFirstLiveSegmentDetected: if the segment the manifest
// points at is gone, acknowledged commits are unrecoverable and replay
// must fail, not silently skip to the next segment.
func TestMissingFirstLiveSegmentDetected(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir)
	if err := l.AppendSync(Record{TID: 1}); err != nil {
		t.Fatal(err)
	}
	seq, err := l.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	snap := SnapshotFileName(seq)
	if err := os.WriteFile(filepath.Join(dir, snap), []byte("snap"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := l.Install(snap, seq); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Rotate(); err != nil { // segment seq+1 now exists
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, segmentName(seq))); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := ReplayDir(dir); err == nil {
		t.Fatal("expected error for missing manifest segment")
	}
}
