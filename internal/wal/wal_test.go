package wal

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func tmpLog(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "doppel.wal")
}

func TestAppendReplayRoundTrip(t *testing.T) {
	path := tmpLog(t)
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	recs := []Record{
		{TID: 1, Ops: []Op{{Key: "a", Value: []byte("1")}}},
		{TID: 2, Ops: []Op{{Key: "b", Value: []byte("22")}, {Key: "c", Value: nil}}},
		{TID: 3, Ops: nil},
	}
	for _, r := range recs {
		if err := l.AppendSync(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := Replay(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("replayed %d records", len(got))
	}
	if got[1].TID != 2 || len(got[1].Ops) != 2 || got[1].Ops[0].Key != "b" ||
		string(got[1].Ops[0].Value) != "22" {
		t.Fatalf("record 1: %+v", got[1])
	}
	if len(got[2].Ops) != 0 {
		t.Fatalf("record 2: %+v", got[2])
	}
}

func TestGroupCommitConcurrentAppends(t *testing.T) {
	path := tmpLog(t)
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	const writers = 8
	const perWriter = 200
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				rec := Record{TID: uint64(w*perWriter + i + 1),
					Ops: []Op{{Key: "k", Value: []byte{byte(w)}}}}
				if err := l.AppendSync(rec); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := Replay(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != writers*perWriter {
		t.Fatalf("replayed %d, want %d", len(got), writers*perWriter)
	}
	seen := map[uint64]bool{}
	for _, r := range got {
		if seen[r.TID] {
			t.Fatalf("duplicate TID %d", r.TID)
		}
		seen[r.TID] = true
	}
}

func TestAppendAfterClose(t *testing.T) {
	l, err := Open(tmpLog(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendSync(Record{TID: 1}); err == nil {
		t.Fatal("expected error after close")
	}
	if err := l.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
}

func TestReplayTornTail(t *testing.T) {
	path := tmpLog(t)
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for tid := uint64(1); tid <= 5; tid++ {
		if err := l.AppendSync(Record{TID: tid, Ops: []Op{{Key: "k", Value: []byte("v")}}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Truncate mid-record to simulate a crash during a write.
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-3); err != nil {
		t.Fatal(err)
	}
	got, err := Replay(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("torn tail: replayed %d, want 4", len(got))
	}
}

func TestReplayCorruptBody(t *testing.T) {
	path := tmpLog(t)
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for tid := uint64(1); tid <= 3; tid++ {
		if err := l.AppendSync(Record{TID: tid, Ops: []Op{{Key: "key", Value: []byte("value")}}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the last record's body.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-2] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := Replay(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("corrupt body: replayed %d, want 2", len(got))
	}
}

func TestReplayMissingFile(t *testing.T) {
	if _, err := Replay(filepath.Join(t.TempDir(), "nope.wal")); err == nil {
		t.Fatal("expected error")
	}
}
