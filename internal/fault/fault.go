package fault

import (
	"errors"
	"math/rand/v2"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected reports an I/O operation the injector failed on purpose:
// the connection was cut by its script, severed by KillConns, or closed
// while an operation was hung. Peers never see this error — they see a
// closed connection — it exists so tests can tell injected failures
// from real ones on the faulted side.
var ErrInjected = errors.New("fault: injected connection failure")

// Script is one connection's deterministic fault schedule. The zero
// Script injects nothing and costs one atomic load per I/O call.
type Script struct {
	// CutAfterBytes severs the connection once this many bytes (reads
	// plus writes combined) have crossed it. A write in progress is
	// delivered up to the boundary (a half-written frame), then the
	// underlying connection closes. 0 never cuts.
	CutAfterBytes int64
	// HangAfterBytes blocks every I/O operation once this many bytes
	// have crossed the connection, until the connection is closed or
	// killed — a stalled peer, as opposed to a dead one. 0 never hangs.
	HangAfterBytes int64
	// ReadChunk caps the bytes one Read may return, forcing short
	// reads. 0 leaves reads alone.
	ReadChunk int
	// WriteChunk splits writes into chunks of at most this many bytes,
	// so cut and partition boundaries land mid-message. 0 leaves
	// writes alone.
	WriteChunk int
	// Delay is slept before every read and write.
	Delay time.Duration
	// RejectAccept makes the listener accept and immediately close the
	// connection — the classic crash-just-after-accept.
	RejectAccept bool
}

// ScriptFunc derives the fault schedule for the i-th connection (accept
// or dial order, starting at 0). rng is seeded from the Network's seed
// and i, so the schedule is a pure function of (seed, i).
type ScriptFunc func(i uint64, rng *rand.Rand) Script

// Stats counts what a Network has done to its connections.
type Stats struct {
	// Conns is how many connections were wrapped (accepted or dialed).
	Conns uint64
	// Rejected is how many connections a script closed at accept.
	Rejected uint64
	// Cut is how many connections a script's byte budget severed.
	Cut uint64
	// Killed is how many connections KillConns severed.
	Killed uint64
}

// Network is the switchboard every wrapped connection shares: it
// assigns scripts deterministically and carries the live partition
// state. All methods are safe for concurrent use.
type Network struct {
	seed   uint64
	script ScriptFunc

	mu       sync.Mutex
	conns    map[*Conn]struct{}
	next     uint64
	healCh   chan struct{} // replaced on partition, closed on heal
	inbound  bool          // reads blocked
	outbound bool          // writes blackholed
	stats    Stats
}

// NewNetwork returns a healthy Network whose scripts derive from seed.
// With a nil ScriptFunc every connection gets the zero Script; set one
// with SetScript.
func NewNetwork(seed uint64) *Network {
	return &Network{
		seed:   seed,
		conns:  map[*Conn]struct{}{},
		healCh: make(chan struct{}),
	}
}

// SetScript installs the per-connection schedule generator. It applies
// to connections wrapped after the call.
func (n *Network) SetScript(f ScriptFunc) {
	n.mu.Lock()
	n.script = f
	n.mu.Unlock()
}

// Stats returns a snapshot of the network's fault counters.
func (n *Network) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// admit assigns the next connection index and its script.
func (n *Network) admit() Script {
	n.mu.Lock()
	defer n.mu.Unlock()
	i := n.next
	n.next++
	n.stats.Conns++
	if n.script == nil {
		return Script{}
	}
	return n.script(i, rand.New(rand.NewPCG(n.seed, i)))
}

// Wrap places c under the network's fault control with the next
// scripted schedule. The returned connection implements net.Conn;
// deadlines pass through to c.
func (n *Network) Wrap(c net.Conn) net.Conn {
	return n.wrap(c, n.admit())
}

func (n *Network) wrap(c net.Conn, s Script) *Conn {
	fc := &Conn{inner: c, n: n, script: s, closed: make(chan struct{})}
	n.mu.Lock()
	n.conns[fc] = struct{}{}
	n.mu.Unlock()
	return fc
}

// Listener wraps l so every accepted connection comes under the
// network's control.
func (n *Network) Listener(l net.Listener) net.Listener {
	return &listener{Listener: l, n: n}
}

// Dial opens a connection and places it under the network's control.
func (n *Network) Dial(network, addr string) (net.Conn, error) {
	c, err := net.Dial(network, addr)
	if err != nil {
		return nil, err
	}
	s := n.admit()
	if s.RejectAccept {
		c.Close()
		n.mu.Lock()
		n.stats.Rejected++
		n.mu.Unlock()
		return nil, ErrInjected
	}
	return n.wrap(c, s), nil
}

// Partition blackholes both directions: writes report success and
// vanish, reads block until Heal or the connection closes. Bytes
// dropped mid-frame stay dropped — after Heal the stream resumes torn,
// and peers are expected to detect the corruption and reconnect.
func (n *Network) Partition() { n.setPartition(true, true) }

// PartitionInbound blocks only reads (traffic toward the wrapped side
// is lost); writes still flow.
func (n *Network) PartitionInbound() { n.setPartition(true, false) }

// PartitionOutbound blackholes only writes (traffic from the wrapped
// side is lost); reads still flow.
func (n *Network) PartitionOutbound() { n.setPartition(false, true) }

// Heal ends any partition and wakes blocked readers.
func (n *Network) Heal() { n.setPartition(false, false) }

func (n *Network) setPartition(inbound, outbound bool) {
	n.mu.Lock()
	old := n.healCh
	n.healCh = make(chan struct{})
	n.inbound, n.outbound = inbound, outbound
	n.mu.Unlock()
	// Wake every blocked reader; each re-checks the new state and goes
	// back to sleep on the fresh channel if its direction is still down.
	close(old)
}

// KillConns severs every open connection at once — the network-plane
// equivalent of kill -9 on the peer. New connections are unaffected.
func (n *Network) KillConns() int {
	n.mu.Lock()
	conns := make([]*Conn, 0, len(n.conns))
	for c := range n.conns {
		conns = append(conns, c)
	}
	n.stats.Killed += uint64(len(conns))
	n.mu.Unlock()
	for _, c := range conns {
		c.sever()
	}
	return len(conns)
}

// state snapshots the partition gates and the channel a blocked reader
// must wait on.
func (n *Network) state() (inbound, outbound bool, heal <-chan struct{}) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.inbound, n.outbound, n.healCh
}

func (n *Network) drop(c *Conn) {
	n.mu.Lock()
	delete(n.conns, c)
	n.mu.Unlock()
}

func (n *Network) countCut() {
	n.mu.Lock()
	n.stats.Cut++
	n.mu.Unlock()
}

type listener struct {
	net.Listener
	n *Network
}

// Accept wraps the next connection in its scripted faults. Connections
// whose script rejects them are closed immediately and the accept loop
// continues — the dialing peer sees an instant EOF.
func (l *listener) Accept() (net.Conn, error) {
	for {
		c, err := l.Listener.Accept()
		if err != nil {
			return nil, err
		}
		s := l.n.admit()
		if s.RejectAccept {
			c.Close()
			l.n.mu.Lock()
			l.n.stats.Rejected++
			l.n.mu.Unlock()
			continue
		}
		return l.n.wrap(c, s), nil
	}
}

// Conn is a net.Conn under fault control. It is safe for the usual
// net.Conn concurrency (one reader plus one writer, any closers).
type Conn struct {
	inner  net.Conn
	n      *Network
	script Script

	total     atomic.Int64 // bytes crossed, both directions
	severed   atomic.Bool
	closed    chan struct{}
	closeOnce sync.Once
}

// pre applies the script's delay and byte-budget faults that precede an
// I/O operation.
func (c *Conn) pre() error {
	if c.severed.Load() {
		return ErrInjected
	}
	if d := c.script.Delay; d > 0 {
		time.Sleep(d)
	}
	t := c.total.Load()
	if h := c.script.HangAfterBytes; h > 0 && t >= h {
		// Stalled peer: block until the connection is torn down.
		<-c.closed
		return ErrInjected
	}
	if cut := c.script.CutAfterBytes; cut > 0 && t >= cut {
		c.n.countCut()
		c.sever()
		return ErrInjected
	}
	return nil
}

// account adds n crossed bytes and reports whether the cut budget was
// just exhausted (the caller severs and stops).
func (c *Conn) account(n int) bool {
	t := c.total.Add(int64(n))
	cut := c.script.CutAfterBytes
	return cut > 0 && t >= cut
}

// Read applies the connection's script — chunking, inbound partition
// stalls, and byte-budget cuts — around the inner connection's Read.
func (c *Conn) Read(b []byte) (int, error) {
	if err := c.pre(); err != nil {
		return 0, err
	}
	// A partitioned inbound path delivers nothing until Heal; honor
	// teardown so a killed connection does not strand its reader.
	for {
		inbound, _, heal := c.n.state()
		if !inbound {
			break
		}
		select {
		case <-heal:
		case <-c.closed:
			return 0, ErrInjected
		}
	}
	if ch := c.script.ReadChunk; ch > 0 && len(b) > ch {
		b = b[:ch]
	}
	nr, err := c.inner.Read(b)
	if nr > 0 && c.account(nr) {
		c.n.countCut()
		c.sever()
		if err == nil {
			// Deliver what was read; the next call fails.
			return nr, nil
		}
	}
	return nr, err
}

// Write applies the connection's script — chunking, outbound blackholes,
// and byte-budget cuts — around the inner connection's Write.
func (c *Conn) Write(b []byte) (int, error) {
	if err := c.pre(); err != nil {
		return 0, err
	}
	written := 0
	for len(b) > 0 {
		if _, outbound, _ := c.n.state(); outbound {
			// Blackholed: the bytes vanish but the writer sees success,
			// exactly like packets dropped past the local buffer.
			return written + len(b), nil
		}
		chunk := b
		if ch := c.script.WriteChunk; ch > 0 && len(chunk) > ch {
			chunk = chunk[:ch]
		}
		nw, err := c.inner.Write(chunk)
		written += nw
		cutNow := nw > 0 && c.account(nw)
		if err != nil {
			return written, err
		}
		if cutNow {
			c.n.countCut()
			c.sever()
			return written, ErrInjected
		}
		b = b[nw:]
	}
	return written, nil
}

// sever tears the connection down abruptly (no FIN handshake ordering
// guarantees): the underlying conn closes and hung operations wake.
func (c *Conn) sever() {
	c.severed.Store(true)
	c.closeOnce.Do(func() {
		close(c.closed)
		_ = c.inner.Close()
		c.n.drop(c)
	})
}

// Close closes the connection normally.
func (c *Conn) Close() error {
	var err error
	c.closeOnce.Do(func() {
		close(c.closed)
		err = c.inner.Close()
		c.n.drop(c)
	})
	return err
}

// LocalAddr returns the underlying connection's local address.
func (c *Conn) LocalAddr() net.Addr { return c.inner.LocalAddr() }

// RemoteAddr returns the underlying connection's remote address.
func (c *Conn) RemoteAddr() net.Addr { return c.inner.RemoteAddr() }

// SetDeadline passes through to the underlying connection.
func (c *Conn) SetDeadline(t time.Time) error { return c.inner.SetDeadline(t) }

// SetReadDeadline passes through to the underlying connection.
func (c *Conn) SetReadDeadline(t time.Time) error { return c.inner.SetReadDeadline(t) }

// SetWriteDeadline passes through to the underlying connection.
func (c *Conn) SetWriteDeadline(t time.Time) error { return c.inner.SetWriteDeadline(t) }
