// Package fault is a deterministic, seeded fault injector for the
// network plane — the wire-protocol counterpart of the WAL's
// crash-injection harness (internal/wal's every-7th-byte cut tests).
// It wraps net.Conn and net.Listener so tests can schedule connection
// drops, delays, partial reads and writes, hangs and one-way
// partitions without touching production code paths.
//
// The injector has two layers:
//
//   - A Script is the per-connection fault schedule: cut the
//     connection after N bytes, chunk reads or writes, delay each I/O
//     operation, hang after a byte budget. Scripts are derived
//     deterministically from the Network's seed and the connection's
//     accept index, so a failing schedule is reproducible from the
//     seed alone — the same property the WAL crash tests get from
//     cutting at every 7th byte.
//
//   - A Network is the live switchboard shared by every wrapped
//     connection: Partition blackholes traffic (writes report success
//     and vanish; reads block until Heal), PartitionInbound and
//     PartitionOutbound do one direction only, KillConns severs every
//     open connection at once, and Heal restores service. The chaos
//     harness drives these from a seeded schedule.
//
// A partition deliberately drops bytes mid-frame: after Heal the
// stream resumes at an arbitrary byte boundary, so the peer decodes
// garbage and must drop the connection — exactly the corruption a
// real half-open TCP session produces. Self-healing layers are
// expected to treat the connection as lost and reconnect; nothing in
// this package hides that from them.
package fault
