package fault

import (
	"errors"
	"io"
	"math/rand/v2"
	"net"
	"testing"
	"time"
)

// pair returns a faulted server-side conn (accepted through n's
// listener) and the raw client side talking to it.
func pair(t *testing.T, n *Network) (server net.Conn, client net.Conn) {
	t.Helper()
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	lis := n.Listener(inner)
	t.Cleanup(func() { lis.Close() })
	done := make(chan net.Conn, 1)
	go func() {
		c, err := lis.Accept()
		if err != nil {
			close(done)
			return
		}
		done <- c
	}()
	client, err = net.Dial("tcp", inner.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	server, ok := <-done
	if !ok {
		t.Fatal("accept failed")
	}
	t.Cleanup(func() { server.Close() })
	return server, client
}

func TestScriptsAreDeterministic(t *testing.T) {
	gen := func(i uint64, rng *rand.Rand) Script {
		return Script{
			CutAfterBytes: int64(rng.IntN(1000)),
			ReadChunk:     rng.IntN(64),
			RejectAccept:  rng.IntN(4) == 0,
		}
	}
	a, b := NewNetwork(42), NewNetwork(42)
	a.SetScript(gen)
	b.SetScript(gen)
	for i := 0; i < 50; i++ {
		if sa, sb := a.admit(), b.admit(); sa != sb {
			t.Fatalf("conn %d: scripts diverge: %+v vs %+v", i, sa, sb)
		}
	}
	c := NewNetwork(43)
	c.SetScript(gen)
	same := true
	d := NewNetwork(42)
	d.SetScript(gen)
	for i := 0; i < 50; i++ {
		if c.admit() != d.admit() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestCutAfterBytesSeversMidWrite(t *testing.T) {
	n := NewNetwork(1)
	n.SetScript(func(i uint64, _ *rand.Rand) Script {
		return Script{CutAfterBytes: 10, WriteChunk: 4}
	})
	server, client := pair(t, n)

	// 16-byte write: chunks of 4 cross the 10-byte budget on the third
	// chunk — the peer receives a half-written message, then EOF.
	nw, err := server.Write(make([]byte, 16))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("Write err = %v, want ErrInjected", err)
	}
	if nw != 12 {
		t.Fatalf("wrote %d bytes before the cut, want 12", nw)
	}
	got, err := io.ReadAll(client)
	if err != nil && !errors.Is(err, io.EOF) {
		// A severed TCP conn may surface as ECONNRESET instead of EOF.
		var ne net.Error
		if !errors.As(err, &ne) && !errors.Is(err, net.ErrClosed) {
			t.Logf("read error after cut: %v", err)
		}
	}
	if len(got) > 12 {
		t.Fatalf("peer received %d bytes, want <= 12", len(got))
	}
	if s := n.Stats(); s.Cut != 1 {
		t.Fatalf("Stats.Cut = %d, want 1", s.Cut)
	}
}

func TestReadChunkForcesShortReads(t *testing.T) {
	n := NewNetwork(1)
	n.SetScript(func(i uint64, _ *rand.Rand) Script { return Script{ReadChunk: 3} })
	server, client := pair(t, n)
	if _, err := client.Write([]byte("abcdefgh")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	nr, err := server.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if nr != 3 {
		t.Fatalf("short read returned %d bytes, want 3", nr)
	}
}

func TestPartitionBlackholesAndHeals(t *testing.T) {
	n := NewNetwork(1)
	server, client := pair(t, n)

	n.Partition()
	// Outbound vanishes: the write "succeeds" but the peer never sees
	// the bytes.
	if _, err := server.Write([]byte("lost")); err != nil {
		t.Fatalf("blackholed write errored: %v", err)
	}
	// Inbound blocks: a read started during the partition must not
	// return even though the peer wrote.
	if _, err := client.Write([]byte("queued")); err != nil {
		t.Fatal(err)
	}
	readDone := make(chan int, 1)
	go func() {
		buf := make([]byte, 64)
		nr, _ := server.Read(buf)
		readDone <- nr
	}()
	select {
	case nr := <-readDone:
		t.Fatalf("read returned %d bytes during partition", nr)
	case <-time.After(50 * time.Millisecond):
	}

	n.Heal()
	select {
	case nr := <-readDone:
		if nr == 0 {
			t.Fatal("read returned no bytes after heal")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("read still blocked after heal")
	}
	// The blackholed bytes stayed lost.
	client.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	buf := make([]byte, 64)
	if nr, _ := client.Read(buf); nr != 0 {
		t.Fatalf("peer received %d blackholed bytes", nr)
	}
}

func TestKillConnsUnblocksPartitionedReader(t *testing.T) {
	n := NewNetwork(1)
	server, _ := pair(t, n)
	n.PartitionInbound()
	errCh := make(chan error, 1)
	go func() {
		_, err := server.Read(make([]byte, 16))
		errCh <- err
	}()
	time.Sleep(20 * time.Millisecond)
	if killed := n.KillConns(); killed != 1 {
		t.Fatalf("KillConns severed %d conns, want 1", killed)
	}
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("killed read err = %v, want ErrInjected", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("reader still blocked after KillConns")
	}
}

func TestHangAfterBytesStalls(t *testing.T) {
	n := NewNetwork(1)
	n.SetScript(func(i uint64, _ *rand.Rand) Script { return Script{HangAfterBytes: 4} })
	server, client := pair(t, n)
	if _, err := client.Write([]byte("abcd")); err != nil {
		t.Fatal(err)
	}
	if _, err := server.Read(make([]byte, 8)); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := server.Write([]byte("x"))
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("write past the hang budget returned (%v)", err)
	case <-time.After(50 * time.Millisecond):
	}
	server.Close()
	if err := <-done; !errors.Is(err, ErrInjected) {
		t.Fatalf("hung write err = %v, want ErrInjected", err)
	}
}

func TestRejectAcceptDropsOnlyScriptedConns(t *testing.T) {
	n := NewNetwork(1)
	n.SetScript(func(i uint64, _ *rand.Rand) Script {
		return Script{RejectAccept: i == 0}
	})
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	lis := n.Listener(inner)
	defer lis.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := lis.Accept()
		if err == nil {
			accepted <- c
		}
	}()

	// First dial is rejected: the connection closes immediately.
	c1, err := net.Dial("tcp", inner.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c1.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := c1.Read(make([]byte, 1)); err == nil {
		t.Fatal("rejected conn delivered data")
	}

	// Second dial is served.
	c2, err := net.Dial("tcp", inner.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	srv := <-accepted
	defer srv.Close()
	if _, err := c2.Write([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 2)
	if _, err := io.ReadFull(srv, buf); err != nil || string(buf) != "ok" {
		t.Fatalf("served conn read %q, %v", buf, err)
	}
	if s := n.Stats(); s.Rejected != 1 {
		t.Fatalf("Stats.Rejected = %d, want 1", s.Rejected)
	}
}
