// Package twopl implements the paper's 2PL baseline: strict two-phase
// locking over per-record Go read-write mutexes (§8.1: "2PL uses Go's
// read-write mutexes", "2PL never aborts").
//
// Transactions acquire locks as they access records and hold them until
// commit. Because the engine never aborts on conflict, callers are
// responsible for two disciplines, both satisfied by every workload in
// this repository and checked by tests:
//
//   - records must be accessed in a consistent global order across
//     transaction types, so lock waits cannot form cycles;
//   - a transaction that reads a record it will later write must use
//     GetForUpdate for the read. A plain Get followed by a write to the
//     same key would require a read→write lock upgrade, which can
//     deadlock two upgraders; the engine rejects it with ErrUnsupported
//     instead.
package twopl

import (
	"fmt"
	"time"

	"doppel/internal/engine"
	"doppel/internal/metrics"
	"doppel/internal/store"
)

// Engine is a strict 2PL engine over a shared store.
type Engine struct {
	st      *store.Store
	workers []workerState
}

type workerState struct {
	stats *metrics.TxnStats
	tx    Tx
	_     [32]byte // avoid false sharing
}

// New returns a 2PL engine with the given worker count over st.
func New(st *store.Store, workers int) *Engine {
	if workers < 1 {
		workers = 1
	}
	e := &Engine{st: st, workers: make([]workerState, workers)}
	for i := range e.workers {
		e.workers[i].stats = metrics.NewTxnStats()
	}
	return e
}

// Name implements engine.Engine.
func (e *Engine) Name() string { return "2pl" }

// Workers implements engine.Engine.
func (e *Engine) Workers() int { return len(e.workers) }

// Poll implements engine.Engine; 2PL has no background duties.
func (e *Engine) Poll(w int) {}

// Stop implements engine.Engine.
func (e *Engine) Stop() {}

// WorkerStats implements engine.Engine.
func (e *Engine) WorkerStats(w int) *metrics.TxnStats { return e.workers[w].stats }

// Store returns the engine's backing store (for preloading).
func (e *Engine) Store() *store.Store { return e.st }

// Attempt implements engine.Engine. 2PL transactions never abort on
// conflict; the only non-committed outcome is a user error, which
// releases all locks with no effects applied.
func (e *Engine) Attempt(w int, fn engine.TxFunc, submitNanos int64) (engine.Outcome, error) {
	ws := &e.workers[w]
	tx := &ws.tx
	tx.reset(e, w)
	err := fn(tx)
	if err != nil {
		tx.releaseAll()
		ws.stats.Aborted++
		return engine.UserAbort, err
	}
	if err := tx.commit(); err != nil {
		ws.stats.Aborted++
		return engine.UserAbort, err
	}
	ws.stats.Committed++
	lat := time.Now().UnixNano() - submitNanos
	if tx.wrote {
		ws.stats.WriteLatency.Record(lat)
	} else {
		ws.stats.ReadLatency.Record(lat)
	}
	return engine.Committed, nil
}

// lockMode records how a transaction holds a record.
type lockMode uint8

const (
	lockRead lockMode = iota
	lockWrite
)

// heldLock is one lock owned by an in-flight transaction.
type heldLock struct {
	rec  *store.Record
	mode lockMode
}

// Tx is one 2PL transaction execution.
type Tx struct {
	eng   *Engine
	w     int
	held  []heldLock
	wset  []writeEnt
	wrote bool
}

type writeEnt struct {
	rec *store.Record
	op  store.Op
}

func (t *Tx) reset(e *Engine, w int) {
	t.eng = e
	t.w = w
	t.held = t.held[:0]
	t.wset = t.wset[:0]
	t.wrote = false
}

// WorkerID implements engine.Tx.
func (t *Tx) WorkerID() int { return t.w }

// holding returns the lock entry for rec, or -1.
func (t *Tx) holding(rec *store.Record) int {
	for i := range t.held {
		if t.held[i].rec == rec {
			return i
		}
	}
	return -1
}

// acquire takes rec in the requested mode, growing the transaction's lock
// set. It reports ErrUnsupported on a read→write upgrade.
func (t *Tx) acquire(rec *store.Record, mode lockMode) error {
	if i := t.holding(rec); i >= 0 {
		if t.held[i].mode == lockWrite || mode == lockRead {
			return nil // already held strongly enough
		}
		return fmt.Errorf("%w: 2PL read-to-write lock upgrade; use GetForUpdate", engine.ErrUnsupported)
	}
	if mode == lockWrite {
		rec.RWMutex().Lock()
	} else {
		rec.RWMutex().RLock()
	}
	t.held = append(t.held, heldLock{rec, mode})
	return nil
}

// releaseAll drops every held lock (end of the shrink phase).
func (t *Tx) releaseAll() {
	for i := range t.held {
		if t.held[i].mode == lockWrite {
			t.held[i].rec.RWMutex().Unlock()
		} else {
			t.held[i].rec.RWMutex().RUnlock()
		}
	}
	t.held = t.held[:0]
}

// load reads a record under the requested lock mode and overlays the
// transaction's buffered writes.
func (t *Tx) load(key string, mode lockMode) (*store.Value, error) {
	rec, _ := t.eng.st.GetOrCreate(key)
	if err := t.acquire(rec, mode); err != nil {
		return nil, err
	}
	v := rec.Value()
	for i := range t.wset {
		if t.wset[i].rec == rec {
			var err error
			v, err = store.Apply(v, t.wset[i].op)
			if err != nil {
				return nil, err
			}
		}
	}
	return v, nil
}

// Get implements engine.Tx.
func (t *Tx) Get(key string) (*store.Value, error) { return t.load(key, lockRead) }

// GetForUpdate implements engine.Tx: it takes the write lock immediately.
func (t *Tx) GetForUpdate(key string) (*store.Value, error) { return t.load(key, lockWrite) }

// GetInt implements engine.Tx.
func (t *Tx) GetInt(key string) (int64, error) {
	v, err := t.load(key, lockRead)
	if err != nil {
		return 0, err
	}
	return v.AsInt()
}

// GetIntForUpdate implements engine.Tx.
func (t *Tx) GetIntForUpdate(key string) (int64, error) {
	v, err := t.load(key, lockWrite)
	if err != nil {
		return 0, err
	}
	return v.AsInt()
}

// GetBytes implements engine.Tx.
func (t *Tx) GetBytes(key string) ([]byte, error) {
	v, err := t.load(key, lockRead)
	if err != nil {
		return nil, err
	}
	return v.AsBytes()
}

// GetTuple implements engine.Tx.
func (t *Tx) GetTuple(key string) (store.Tuple, bool, error) {
	v, err := t.load(key, lockRead)
	if err != nil {
		return store.Tuple{}, false, err
	}
	return v.AsTuple()
}

// GetTopK implements engine.Tx.
func (t *Tx) GetTopK(key string) ([]store.TopKEntry, error) {
	v, err := t.load(key, lockRead)
	if err != nil {
		return nil, err
	}
	tk, err := v.AsTopK()
	if err != nil {
		return nil, err
	}
	return tk.Entries(), nil
}

// write acquires the write lock and buffers op for commit time.
func (t *Tx) write(key string, op store.Op) error {
	rec, _ := t.eng.st.GetOrCreate(key)
	if err := t.acquire(rec, lockWrite); err != nil {
		return err
	}
	t.wrote = true
	t.wset = append(t.wset, writeEnt{rec, op})
	return nil
}

// Put implements engine.Tx.
func (t *Tx) Put(key string, v *store.Value) error {
	return t.write(key, store.Op{Kind: store.OpPut, Val: v})
}

// PutInt implements engine.Tx.
func (t *Tx) PutInt(key string, n int64) error { return t.Put(key, store.IntValue(n)) }

// PutBytes implements engine.Tx.
func (t *Tx) PutBytes(key string, b []byte) error { return t.Put(key, store.BytesValue(b)) }

// Add implements engine.Tx.
func (t *Tx) Add(key string, n int64) error {
	return t.write(key, store.Op{Kind: store.OpAdd, Int: n})
}

// Max implements engine.Tx.
func (t *Tx) Max(key string, n int64) error {
	return t.write(key, store.Op{Kind: store.OpMax, Int: n})
}

// Min implements engine.Tx.
func (t *Tx) Min(key string, n int64) error {
	return t.write(key, store.Op{Kind: store.OpMin, Int: n})
}

// Mult implements engine.Tx.
func (t *Tx) Mult(key string, n int64) error {
	return t.write(key, store.Op{Kind: store.OpMult, Int: n})
}

// OPut implements engine.Tx.
func (t *Tx) OPut(key string, order store.Order, data []byte) error {
	return t.write(key, store.Op{Kind: store.OpOPut, Tuple: store.Tuple{
		Order: order, CoreID: int32(t.w), Data: data,
	}})
}

// TopKInsert implements engine.Tx.
func (t *Tx) TopKInsert(key string, order int64, data []byte, k int) error {
	return t.write(key, store.Op{Kind: store.OpTopKInsert, K: k, Entry: store.TopKEntry{
		Order: order, CoreID: int32(t.w), Data: data,
	}})
}

// commit applies the buffered writes under the held write locks and
// releases everything. New values are fully computed before any is
// installed, so apply-time type errors leave no partial effects.
func (t *Tx) commit() error {
	defer t.releaseAll()
	type pending struct {
		rec *store.Record
		val *store.Value
	}
	pend := make([]pending, 0, len(t.wset))
	for i := range t.wset {
		rec := t.wset[i].rec
		// Start from the latest pending value for this record, if any.
		v := rec.Value()
		for j := range pend {
			if pend[j].rec == rec {
				v = pend[j].val
			}
		}
		nv, err := store.Apply(v, t.wset[i].op)
		if err != nil {
			return err
		}
		replaced := false
		for j := range pend {
			if pend[j].rec == rec {
				pend[j].val = nv
				replaced = true
				break
			}
		}
		if !replaced {
			pend = append(pend, pending{rec, nv})
		}
	}
	for _, p := range pend {
		p.rec.SetValue(p.val)
	}
	return nil
}

var _ engine.Tx = (*Tx)(nil)
var _ engine.Engine = (*Engine)(nil)
