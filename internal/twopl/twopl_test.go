package twopl

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"doppel/internal/engine"
	"doppel/internal/rng"
	"doppel/internal/store"
)

func commit(t *testing.T, e *Engine, w int, fn engine.TxFunc) {
	t.Helper()
	out, err := e.Attempt(w, fn, time.Now().UnixNano())
	if err != nil {
		t.Fatalf("attempt error: %v", err)
	}
	if out != engine.Committed {
		t.Fatalf("outcome %v", out)
	}
}

func TestBasicOps(t *testing.T) {
	e := New(store.New(), 1)
	commit(t, e, 0, func(tx engine.Tx) error {
		if err := tx.PutInt("a", 1); err != nil {
			return err
		}
		if err := tx.Add("a", 2); err != nil {
			return err
		}
		if err := tx.Max("b", 9); err != nil {
			return err
		}
		if err := tx.Min("c", -4); err != nil {
			return err
		}
		if err := tx.Mult("d", 6); err != nil {
			return err
		}
		if err := tx.PutBytes("e", []byte("x")); err != nil {
			return err
		}
		if err := tx.OPut("f", store.Order{A: 2}, []byte("f")); err != nil {
			return err
		}
		return tx.TopKInsert("g", 1, []byte("g"), 2)
	})
	commit(t, e, 0, func(tx engine.Tx) error {
		checks := []struct {
			key  string
			want int64
		}{{"a", 3}, {"b", 9}, {"c", -4}, {"d", 6}}
		for _, c := range checks {
			if n, err := tx.GetInt(c.key); err != nil || n != c.want {
				return fmt.Errorf("%s = %d (%v), want %d", c.key, n, err, c.want)
			}
		}
		if b, _ := tx.GetBytes("e"); string(b) != "x" {
			return fmt.Errorf("bytes %q", b)
		}
		if tp, ok, _ := tx.GetTuple("f"); !ok || tp.Order.A != 2 {
			return fmt.Errorf("tuple %v %v", tp, ok)
		}
		if es, _ := tx.GetTopK("g"); len(es) != 1 {
			return fmt.Errorf("topk %v", es)
		}
		if v, _ := tx.Get("a"); v == nil {
			return errors.New("Get nil")
		}
		if tx.WorkerID() != 0 {
			return errors.New("worker id")
		}
		return nil
	})
	if e.Name() != "2pl" || e.Workers() != 1 {
		t.Fatal("metadata")
	}
	e.Poll(0)
	e.Stop()
}

func TestReadYourWrites(t *testing.T) {
	e := New(store.New(), 1)
	commit(t, e, 0, func(tx engine.Tx) error {
		if err := tx.Add("k", 7); err != nil {
			return err
		}
		n, err := tx.GetInt("k") // already write-locked; must see buffered add
		if err != nil {
			return err
		}
		if n != 7 {
			return fmt.Errorf("read-your-writes got %d", n)
		}
		return nil
	})
}

func TestLockUpgradeRejected(t *testing.T) {
	e := New(store.New(), 1)
	out, err := e.Attempt(0, func(tx engine.Tx) error {
		if _, err := tx.GetInt("k"); err != nil {
			return err
		}
		return tx.Add("k", 1) // read→write upgrade
	}, time.Now().UnixNano())
	if out != engine.UserAbort || !errors.Is(err, engine.ErrUnsupported) {
		t.Fatalf("out=%v err=%v", out, err)
	}
	// GetForUpdate avoids the problem.
	commit(t, e, 0, func(tx engine.Tx) error {
		n, err := tx.GetIntForUpdate("k")
		if err != nil {
			return err
		}
		return tx.PutInt("k", n+1)
	})
	commit(t, e, 0, func(tx engine.Tx) error {
		if n, _ := tx.GetInt("k"); n != 1 {
			return fmt.Errorf("got %d", n)
		}
		return nil
	})
}

func TestGetForUpdateValueForm(t *testing.T) {
	e := New(store.New(), 1)
	commit(t, e, 0, func(tx engine.Tx) error {
		v, err := tx.GetForUpdate("gv")
		if err != nil || v != nil {
			return fmt.Errorf("absent GetForUpdate: %v %v", v, err)
		}
		return tx.PutInt("gv", 5)
	})
}

func TestUserAbortReleasesLocksNoEffects(t *testing.T) {
	e := New(store.New(), 2)
	boom := errors.New("boom")
	out, err := e.Attempt(0, func(tx engine.Tx) error {
		_ = tx.PutInt("x", 99)
		return boom
	}, time.Now().UnixNano())
	if out != engine.UserAbort || !errors.Is(err, boom) {
		t.Fatalf("out=%v err=%v", out, err)
	}
	// Locks must be free and the write must not have applied.
	commit(t, e, 1, func(tx engine.Tx) error {
		if n, _ := tx.GetInt("x"); n != 0 {
			return fmt.Errorf("leak: %d", n)
		}
		return nil
	})
}

func TestTypeErrorAtCommitNoPartialEffects(t *testing.T) {
	e := New(store.New(), 1)
	commit(t, e, 0, func(tx engine.Tx) error { return tx.PutBytes("s", []byte("b")) })
	out, err := e.Attempt(0, func(tx engine.Tx) error {
		if err := tx.PutInt("y", 1); err != nil {
			return err
		}
		return tx.Add("s", 1) // type error surfaces at commit
	}, time.Now().UnixNano())
	if out != engine.UserAbort || err == nil {
		t.Fatalf("out=%v err=%v", out, err)
	}
	commit(t, e, 0, func(tx engine.Tx) error {
		if n, _ := tx.GetInt("y"); n != 0 {
			return fmt.Errorf("partial commit: %d", n)
		}
		return nil
	})
}

func TestNeverAbortsUnderContention(t *testing.T) {
	e := New(store.New(), 4)
	e.Store().Preload("ctr", store.IntValue(0))
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				out, err := e.Attempt(w, func(tx engine.Tx) error {
					return tx.Add("ctr", 1)
				}, time.Now().UnixNano())
				if err != nil || out != engine.Committed {
					t.Errorf("2PL should never abort: %v %v", out, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	var total uint64
	for w := 0; w < 4; w++ {
		if e.WorkerStats(w).Aborted != 0 {
			t.Fatal("2PL recorded aborts")
		}
		total += e.WorkerStats(w).Committed
	}
	if total != 4*perWorker {
		t.Fatalf("commit count %d", total)
	}
	commit(t, e, 0, func(tx engine.Tx) error {
		n, err := tx.GetInt("ctr")
		if err != nil {
			return err
		}
		if n != 4*perWorker {
			return fmt.Errorf("lost updates: %d", n)
		}
		return nil
	})
}

func TestTransferInvariantOrderedAccess(t *testing.T) {
	// Transfers always lock the lower-numbered account first, so no
	// deadlock; balances must be conserved.
	const accounts = 8
	const workers = 4
	e := New(store.New(), workers)
	for i := 0; i < accounts; i++ {
		e.Store().Preload(fmt.Sprintf("a%d", i), store.IntValue(100))
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rng.New(uint64(w) + 5)
			for i := 0; i < 1500; i++ {
				i1, i2 := r.Intn(accounts), r.Intn(accounts)
				if i1 == i2 {
					continue
				}
				if i1 > i2 {
					i1, i2 = i2, i1
				}
				lo, hi := fmt.Sprintf("a%d", i1), fmt.Sprintf("a%d", i2)
				out, err := e.Attempt(w, func(tx engine.Tx) error {
					b1, err := tx.GetIntForUpdate(lo)
					if err != nil {
						return err
					}
					b2, err := tx.GetIntForUpdate(hi)
					if err != nil {
						return err
					}
					if err := tx.PutInt(lo, b1-1); err != nil {
						return err
					}
					return tx.PutInt(hi, b2+1)
				}, time.Now().UnixNano())
				if err != nil || out != engine.Committed {
					t.Errorf("transfer failed: %v %v", out, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	commit(t, e, 0, func(tx engine.Tx) error {
		var sum int64
		for i := 0; i < accounts; i++ {
			n, err := tx.GetInt(fmt.Sprintf("a%d", i))
			if err != nil {
				return err
			}
			sum += n
		}
		if sum != accounts*100 {
			return fmt.Errorf("sum %d", sum)
		}
		return nil
	})
}

func TestConcurrentReadersShareLock(t *testing.T) {
	e := New(store.New(), 2)
	e.Store().Preload("r", store.IntValue(7))
	// Two simultaneous read transactions must both proceed (RLock).
	started := make(chan struct{})
	release := make(chan struct{})
	go func() {
		_, _ = e.Attempt(1, func(tx engine.Tx) error {
			if _, err := tx.GetInt("r"); err != nil {
				return err
			}
			close(started)
			<-release
			return nil
		}, time.Now().UnixNano())
	}()
	<-started
	done := make(chan struct{})
	go func() {
		commit(t, e, 0, func(tx engine.Tx) error {
			_, err := tx.GetInt("r")
			return err
		})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("concurrent reader blocked")
	}
	close(release)
}

func TestLatencyStatsRecorded(t *testing.T) {
	e := New(store.New(), 1)
	commit(t, e, 0, func(tx engine.Tx) error { return tx.PutInt("k", 1) })
	commit(t, e, 0, func(tx engine.Tx) error { _, err := tx.GetInt("k"); return err })
	s := e.WorkerStats(0)
	if s.WriteLatency.Count() != 1 || s.ReadLatency.Count() != 1 {
		t.Fatalf("latency counts %d/%d", s.WriteLatency.Count(), s.ReadLatency.Count())
	}
}
