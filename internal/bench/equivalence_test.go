package bench

// Cross-engine equivalence: the same deterministic transaction script,
// executed serially, must leave identical database state under Doppel,
// OCC, 2PL and Atomic. This pins down the shared operation semantics
// (store.Apply) across all four commit protocols, including Doppel with
// forced phase cycling in the middle of the script.

import (
	"fmt"
	"testing"
	"time"

	"doppel/internal/atomiceng"
	"doppel/internal/core"
	"doppel/internal/engine"
	"doppel/internal/occ"
	"doppel/internal/rng"
	"doppel/internal/store"
	"doppel/internal/twopl"
)

// scriptStep is one deterministic transaction in the script.
type scriptStep struct {
	fn engine.TxFunc
}

// buildScript produces a deterministic sequence of single- and
// multi-record transactions across every operation type.
func buildScript(seed uint64, n int) []scriptStep {
	r := rng.New(seed)
	keys := make([]string, 12)
	for i := range keys {
		keys[i] = fmt.Sprintf("eq-key-%02d", i)
	}
	steps := make([]scriptStep, 0, n)
	for i := 0; i < n; i++ {
		k := keys[r.Intn(len(keys)/2)] // int keys in the first half
		tup := keys[6+r.Intn(2)]
		topk := keys[8+r.Intn(2)]
		blob := keys[10+r.Intn(2)]
		op := r.Intn(8)
		amt := int64(r.Intn(100))
		w := int32(r.Intn(4))
		steps = append(steps, scriptStep{fn: func(tx engine.Tx) error {
			switch op {
			case 0:
				return tx.Add(k, amt)
			case 1:
				return tx.Max(k, amt)
			case 2:
				return tx.Min(k, amt-50)
			case 3:
				// Multi-record: transfer-style read-then-write plus an add.
				n, err := tx.GetIntForUpdate(k)
				if err != nil {
					return err
				}
				if err := tx.PutInt(k, n+1); err != nil {
					return err
				}
				return tx.Add(keys[5], 1)
			case 4:
				return tx.OPut(tup, store.Order{A: amt, B: int64(w)}, []byte(fmt.Sprintf("v%d", amt)))
			case 5:
				return tx.TopKInsert(topk, amt, []byte(fmt.Sprintf("e%d", amt%7)), 5)
			case 6:
				return tx.PutBytes(blob, []byte(fmt.Sprintf("blob-%d", amt)))
			default:
				// Read-only transaction.
				if _, err := tx.GetInt(k); err != nil {
					return err
				}
				_, err := tx.GetTopK(topk)
				return err
			}
		}})
	}
	return steps
}

// snapshot captures the final state of the script's key space.
func snapshot(t *testing.T, st *store.Store) map[string]string {
	t.Helper()
	out := map[string]string{}
	st.Range(func(k string, rec *store.Record) bool {
		v := rec.Value()
		if v != nil {
			out[k] = v.String()
		}
		return true
	})
	return out
}

func runScript(t *testing.T, e engine.Engine, steps []scriptStep, cyclePhases *core.DB) {
	t.Helper()
	for i, s := range steps {
		for attempt := 0; ; attempt++ {
			out, err := e.Attempt(0, s.fn, time.Now().UnixNano())
			if err != nil {
				t.Fatalf("step %d: %v", i, err)
			}
			if out == engine.Committed {
				break
			}
			if out == engine.Stashed {
				// Drain immediately so the stashed transaction commits
				// before the next script step; otherwise the engines
				// would execute different serial orders and the final
				// states could legitimately diverge (Max and Add do not
				// commute with each other).
				if cyclePhases == nil {
					t.Fatalf("step %d stashed on a non-Doppel engine", i)
				}
				cyclePhases.RequestJoinedPhase()
				for cyclePhases.StashLen(0) > 0 {
					e.Poll(0)
				}
				break
			}
			if out == engine.Paused {
				e.Poll(0)
			}
			if attempt > 100000 {
				t.Fatalf("step %d never committed", i)
			}
		}
		// With Doppel, cycle phases mid-script so some operations run
		// against slices and reconcile.
		if cyclePhases != nil && i%25 == 24 {
			if cyclePhases.Phase() == core.PhaseJoined {
				cyclePhases.RequestSplitPhase()
			} else {
				cyclePhases.RequestJoinedPhase()
			}
			e.Poll(0)
		}
	}
}

func TestCrossEngineEquivalence(t *testing.T) {
	const steps = 400
	for _, seed := range []uint64{1, 7, 1234} {
		var reference map[string]string
		// Doppel with manual phases and hints so split execution really
		// happens mid-script.
		{
			st := store.New()
			cfg := core.DefaultConfig(1)
			cfg.PhaseLength = 0
			db := core.Open(st, cfg)
			db.SplitHint("eq-key-00", store.OpAdd)
			db.SplitHint("eq-key-08", store.OpTopKInsert)
			runScript(t, db, buildScript(seed, steps), db)
			db.Close()
			reference = snapshot(t, st)
			if len(reference) == 0 {
				t.Fatal("empty reference state")
			}
		}
		engines := map[string]func() (engine.Engine, *store.Store){
			"occ": func() (engine.Engine, *store.Store) {
				st := store.New()
				return occ.New(st, 1), st
			},
			"2pl": func() (engine.Engine, *store.Store) {
				st := store.New()
				return twopl.New(st, 1), st
			},
			"atomic": func() (engine.Engine, *store.Store) {
				st := store.New()
				return atomiceng.New(st, 1), st
			},
			"doppel-nosplit": func() (engine.Engine, *store.Store) {
				st := store.New()
				cfg := core.DefaultConfig(1)
				cfg.PhaseLength = 0
				return core.Open(st, cfg), st
			},
		}
		for name, mk := range engines {
			e, st := mk()
			runScript(t, e, buildScript(seed, steps), nil)
			e.Stop()
			got := snapshot(t, st)
			if len(got) != len(reference) {
				t.Fatalf("seed %d %s: %d keys vs reference %d", seed, name, len(got), len(reference))
			}
			for k, want := range reference {
				if got[k] != want {
					t.Fatalf("seed %d %s: key %s = %s, reference %s", seed, name, k, got[k], want)
				}
			}
		}
	}
}
