// Package bench is the measurement harness: it drives the real engines
// with workload generators under the paper's §8.1 methodology (each
// worker generates transactions as if it were a client; aborted
// transactions are saved and retried later with exponential backoff),
// and it hosts the per-table/per-figure experiment drivers that
// regenerate the paper's evaluation via the multicore simulator.
package bench

import (
	"container/heap"
	"sync"
	"time"

	"doppel/internal/engine"
	"doppel/internal/metrics"
	"doppel/internal/rng"
	"doppel/internal/workload"
)

// Options configures a real-engine load run.
type Options struct {
	Duration time.Duration
	Seed     uint64
}

// Result reports one real-engine load run.
type Result struct {
	Stats      *metrics.TxnStats
	Elapsed    time.Duration
	Throughput float64 // committed transactions per second
}

// retryEnt is an aborted transaction waiting out its backoff.
type retryEnt struct {
	fn      engine.TxFunc
	submit  int64
	due     int64
	attempt int
}

type retryHeap []retryEnt

func (h retryHeap) Len() int           { return len(h) }
func (h retryHeap) Less(i, j int) bool { return h[i].due < h[j].due }
func (h retryHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *retryHeap) Push(x any)        { *h = append(*h, x.(retryEnt)) }
func (h *retryHeap) Pop() any          { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h retryHeap) peekDue() int64     { return h[0].due }

// RunLoad drives every worker of e with transactions from gen for
// opt.Duration, then merges the workers' statistics. Workers keep
// participating in phase transitions until all of them finish, which the
// Doppel engine requires.
func RunLoad(e engine.Engine, gen workload.Generator, opt Options) Result {
	if opt.Duration <= 0 {
		opt.Duration = time.Second
	}
	workers := e.Workers()
	var wg sync.WaitGroup
	var quota sync.WaitGroup
	stopPolling := make(chan struct{})
	start := time.Now()
	deadline := start.Add(opt.Duration)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		quota.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rng.New(opt.Seed + uint64(w)*104729 + 11)
			var retries retryHeap
			for time.Now().Before(deadline) {
				now := time.Now().UnixNano()
				var fn engine.TxFunc
				var submit int64
				attempt := 0
				fromRetry := false
				if len(retries) > 0 && retries.peekDue() <= now {
					ent := heap.Pop(&retries).(retryEnt)
					fn, submit, attempt, fromRetry = ent.fn, ent.submit, ent.attempt, true
				} else {
					fn, _ = gen.Next(w, r)
					submit = now
				}
				out, _ := e.Attempt(w, fn, submit)
				switch out {
				case engine.Aborted:
					backoff := int64(r.ExpBackoff(2000, 2_000_000, attempt))
					heap.Push(&retries, retryEnt{fn, submit, now + backoff, attempt + 1})
				case engine.Paused:
					if fromRetry {
						heap.Push(&retries, retryEnt{fn, submit, now, attempt})
					}
					e.Poll(w)
				}
				// Committed, Stashed and UserAbort need no harness action
				// (the engine retries stashes itself).
			}
			quota.Done()
			for {
				select {
				case <-stopPolling:
					return
				default:
					e.Poll(w)
				}
			}
		}(w)
	}
	quota.Wait()
	close(stopPolling)
	wg.Wait()
	elapsed := time.Since(start)

	agg := metrics.NewTxnStats()
	for w := 0; w < workers; w++ {
		agg.Merge(e.WorkerStats(w))
	}
	return Result{
		Stats:      agg,
		Elapsed:    elapsed,
		Throughput: agg.Throughput(elapsed.Nanoseconds()),
	}
}
