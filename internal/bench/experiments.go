package bench

import (
	"fmt"
	"io"
	"sort"

	"doppel/internal/sim"
	"doppel/internal/workload"
)

// ExpConfig scales the simulator-driven experiment suite. The zero value
// is filled with paper-like defaults (20 cores, 1M keys) at quick
// durations; Full lengthens every run for smoother curves.
type ExpConfig struct {
	Cores   int
	Records int
	Seed    uint64
	Full    bool
}

func (c ExpConfig) norm() ExpConfig {
	if c.Cores <= 0 {
		c.Cores = 20
	}
	if c.Records <= 0 {
		c.Records = 1_000_000
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	return c
}

func (c ExpConfig) durations() (warmup, dur int64) {
	if c.Full {
		return 100_000_000, 400_000_000
	}
	return 60_000_000, 150_000_000
}

func (c ExpConfig) simConfig(e sim.Kind) sim.Config {
	w, d := c.durations()
	return sim.Config{
		Engine:   e,
		Cores:    c.Cores,
		Records:  c.Records,
		Warmup:   w,
		Duration: d,
		Seed:     c.Seed,
	}
}

var allEngines = []sim.Kind{sim.Doppel, sim.OCC, sim.TwoPL, sim.Atomic}
var threeEngines = []sim.Kind{sim.Doppel, sim.OCC, sim.TwoPL}

// Fig8 regenerates Figure 8: INCR1 total throughput vs. the percentage
// of transactions writing the single hot key.
func Fig8(w io.Writer, cfg ExpConfig) {
	cfg = cfg.norm()
	fmt.Fprintf(w, "# Figure 8: INCR1 throughput (Mtxns/sec) vs %% hot-key txns; %d cores, %d keys\n", cfg.Cores, cfg.Records)
	fmt.Fprintf(w, "%-8s %10s %10s %10s %10s %12s\n", "hot%", "doppel", "occ", "2pl", "atomic", "doppel-split")
	for _, hot := range []float64{0, 0.02, 0.05, 0.10, 0.20, 0.30, 0.40, 0.50, 0.60, 0.80, 1.00} {
		fmt.Fprintf(w, "%-8.0f", hot*100)
		var split int
		for _, e := range allEngines {
			res := sim.Run(cfg.simConfig(e), sim.IncrGen(cfg.Records, hot, 0))
			fmt.Fprintf(w, " %10.2f", res.Throughput/1e6)
			if e == sim.Doppel {
				split = len(res.SplitKeys)
			}
		}
		fmt.Fprintf(w, " %12d\n", split)
	}
}

// Fig9 regenerates Figure 9: INCR1 per-core throughput at 100% hot-key
// writes as a function of core count.
func Fig9(w io.Writer, cfg ExpConfig) {
	cfg = cfg.norm()
	fmt.Fprintf(w, "# Figure 9: INCR1 per-core throughput (Mtxns/sec/core), 100%% hot key\n")
	fmt.Fprintf(w, "%-8s %10s %10s %10s %10s\n", "cores", "doppel", "occ", "2pl", "atomic")
	for _, cores := range []int{1, 2, 4, 8, 10, 20, 30, 40, 60, 80} {
		c2 := cfg
		c2.Cores = cores
		fmt.Fprintf(w, "%-8d", cores)
		for _, e := range allEngines {
			res := sim.Run(c2.simConfig(e), sim.IncrGen(cfg.Records, 1.0, 0))
			fmt.Fprintf(w, " %10.3f", res.Throughput/1e6/float64(cores))
		}
		fmt.Fprintln(w)
	}
}

// Fig10 regenerates Figure 10: throughput over time while the identity
// of the hot key changes. The paper changes the key every 5 s over 90 s;
// the simulated horizon compresses time 10× (every 0.5 s over 3 s),
// which preserves the shape because Doppel's adaptation time is a small
// number of 20 ms phases in both cases.
func Fig10(w io.Writer, cfg ExpConfig) {
	cfg = cfg.norm()
	if cfg.Records > 100_000 {
		cfg.Records = 100_000
	}
	const changeEvery = 500_000_000 // 0.5 s
	const horizon = 3_000_000_000   // 3 s
	const bucket = 100_000_000      // 0.1 s
	fmt.Fprintf(w, "# Figure 10: INCR1 throughput over time (Mtxns/sec); 10%% hot, hot key changes every 0.5s\n")
	fmt.Fprintf(w, "%-8s %10s %10s %10s\n", "t(s)", "doppel", "occ", "2pl")
	series := make([][]float64, 3)
	for i, e := range threeEngines {
		c := sim.Config{
			Engine: e, Cores: cfg.Cores, Records: cfg.Records,
			Warmup: 0, Duration: horizon, Seed: cfg.Seed,
			TimelineBucket: bucket,
		}
		res := sim.Run(c, sim.IncrGen(cfg.Records, 0.10, changeEvery))
		series[i] = res.Timeline
	}
	n := len(series[0])
	for b := 0; b < n; b++ {
		fmt.Fprintf(w, "%-8.1f", float64(b)*bucket/1e9)
		for i := range threeEngines {
			v := 0.0
			if b < len(series[i]) {
				v = series[i][b]
			}
			fmt.Fprintf(w, " %10.2f", v/1e6)
		}
		fmt.Fprintln(w)
	}
}

// Fig11 regenerates Figure 11: INCRZ total throughput vs. the Zipfian
// exponent alpha.
func Fig11(w io.Writer, cfg ExpConfig) {
	cfg = cfg.norm()
	fmt.Fprintf(w, "# Figure 11: INCRZ throughput (Mtxns/sec) vs alpha; %d cores, %d keys\n", cfg.Cores, cfg.Records)
	fmt.Fprintf(w, "%-8s %10s %10s %10s %10s %12s\n", "alpha", "doppel", "occ", "2pl", "atomic", "doppel-split")
	for _, alpha := range []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0, 1.2, 1.4, 1.6, 1.8, 2.0} {
		z := workload.NewZipf(cfg.Records, alpha)
		fmt.Fprintf(w, "%-8.1f", alpha)
		var split int
		for _, e := range allEngines {
			res := sim.Run(cfg.simConfig(e), sim.IncrZGen(z))
			fmt.Fprintf(w, " %10.2f", res.Throughput/1e6)
			if e == sim.Doppel {
				split = len(res.SplitKeys)
			}
		}
		fmt.Fprintf(w, " %12d\n", split)
	}
}

// Table1 regenerates Table 1 exactly: the percentage of writes to the
// 1st, 2nd, 10th and 100th most popular keys under Zipfian popularity
// with 1M keys. This is analytic, not simulated.
func Table1(w io.Writer, cfg ExpConfig) {
	fmt.Fprintf(w, "# Table 1: %% of writes to the kth most popular key (1M keys)\n")
	fmt.Fprintf(w, "%-6s %9s %9s %9s %9s\n", "alpha", "1st", "2nd", "10th", "100th")
	for _, alpha := range []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0, 1.2, 1.4, 1.6, 1.8, 2.0} {
		z := workload.NewZipf(1_000_000, alpha)
		fmt.Fprintf(w, "%-6.1f %9.4f %9.4f %9.4f %9.4f\n",
			alpha, z.Prob(0)*100, z.Prob(1)*100, z.Prob(9)*100, z.Prob(99)*100)
	}
}

// Table2 regenerates Table 2: the number of keys Doppel moves to split
// data and the percentage of requests they cover, per alpha.
func Table2(w io.Writer, cfg ExpConfig) {
	cfg = cfg.norm()
	fmt.Fprintf(w, "# Table 2: keys moved to split data (INCRZ); %d cores, %d keys\n", cfg.Cores, cfg.Records)
	fmt.Fprintf(w, "%-8s %8s %8s\n", "alpha", "#moved", "%reqs")
	for _, alpha := range []float64{0.6, 0.8, 1.0, 1.2, 1.4, 1.6, 1.8, 2.0} {
		z := workload.NewZipf(cfg.Records, alpha)
		res := sim.Run(cfg.simConfig(sim.Doppel), sim.IncrZGen(z))
		fmt.Fprintf(w, "%-8.1f %8d %8.1f\n", alpha, len(res.SplitKeys), res.SplitCoverage*100)
	}
}

// likeCfg builds the LIKE simulation over users+pages record spaces.
func likeCfg(cfg ExpConfig, e sim.Kind) (sim.Config, int) {
	users := cfg.Records / 2
	pages := cfg.Records / 2
	c := cfg.simConfig(e)
	c.Records = users + pages
	return c, users
}

// Fig12 regenerates Figure 12: LIKE throughput vs. the percentage of
// transactions that write, alpha = 1.4.
func Fig12(w io.Writer, cfg ExpConfig) {
	cfg = cfg.norm()
	fmt.Fprintf(w, "# Figure 12: LIKE throughput (Mtxns/sec) vs %% writes; alpha=1.4, %d cores\n", cfg.Cores)
	fmt.Fprintf(w, "%-8s %10s %10s %10s %12s\n", "write%", "doppel", "occ", "2pl", "doppel-split")
	for _, wf := range []float64{0.0, 0.10, 0.20, 0.30, 0.40, 0.50, 0.60, 0.80, 1.00} {
		fmt.Fprintf(w, "%-8.0f", wf*100)
		var split int
		for _, e := range threeEngines {
			c, users := likeCfg(cfg, e)
			z := workload.NewZipf(users, 1.4)
			res := sim.Run(c, sim.LikeGen(users, users, z, wf))
			fmt.Fprintf(w, " %10.2f", res.Throughput/1e6)
			if e == sim.Doppel {
				split = len(res.SplitKeys)
			}
		}
		fmt.Fprintf(w, " %12d\n", split)
	}
}

// Table3 regenerates Table 3: mean and 99th percentile read/write
// latency plus throughput for the LIKE benchmark, uniform and skewed
// (alpha = 1.4), 50% reads.
func Table3(w io.Writer, cfg ExpConfig) {
	cfg = cfg.norm()
	fmt.Fprintf(w, "# Table 3: LIKE latencies (microseconds) and throughput; 50%% reads, %d cores\n", cfg.Cores)
	fmt.Fprintf(w, "%-22s %10s %10s %10s %10s %10s\n", "workload/engine", "meanR", "meanW", "p99R", "p99W", "Mtxn/s")
	for _, skew := range []struct {
		name  string
		alpha float64
	}{{"uniform", 0}, {"skewed(a=1.4)", 1.4}} {
		for _, e := range threeEngines {
			c, users := likeCfg(cfg, e)
			z := workload.NewZipf(users, skew.alpha)
			res := sim.Run(c, sim.LikeGen(users, users, z, 0.5))
			fmt.Fprintf(w, "%-22s %10.1f %10.1f %10.1f %10.1f %10.2f\n",
				skew.name+"/"+e.String(),
				res.ReadLat.Mean()/1000, res.WriteLat.Mean()/1000,
				float64(res.ReadLat.Quantile(0.99))/1000,
				float64(res.WriteLat.Quantile(0.99))/1000,
				res.Throughput/1e6)
		}
	}
}

// phaseSweep runs the LIKE benchmark across phase lengths for Figures 13
// and 14's three workloads.
func phaseSweep(cfg ExpConfig, phaseMs int, alpha, writeFrac float64) sim.Result {
	c, users := likeCfg(cfg, sim.Doppel)
	c.Doppel = sim.DefaultParams()
	c.Doppel.PhaseLen = int64(phaseMs) * 1_000_000
	// Give every phase length enough cycles to reach steady state.
	if min := c.Doppel.PhaseLen * 12; c.Duration < min {
		c.Duration = min
	}
	z := workload.NewZipf(users, alpha)
	return sim.Run(c, sim.LikeGen(users, users, z, writeFrac))
}

var phasePoints = []int{1, 2, 5, 10, 20, 40, 60, 80, 100}

// Fig13 regenerates Figure 13: average read latency vs. phase length for
// a uniform workload, a skewed 50/50 workload and a skewed write-heavy
// workload.
func Fig13(w io.Writer, cfg ExpConfig) {
	cfg = cfg.norm()
	fmt.Fprintf(w, "# Figure 13: LIKE average read latency (microseconds) vs phase length (ms); %d cores\n", cfg.Cores)
	fmt.Fprintf(w, "%-10s %12s %12s %14s\n", "phase(ms)", "uniform", "skewed", "skewed-wheavy")
	for _, ms := range phasePoints {
		u := phaseSweep(cfg, ms, 0, 0.5)
		s := phaseSweep(cfg, ms, 1.4, 0.5)
		h := phaseSweep(cfg, ms, 1.4, 0.9)
		fmt.Fprintf(w, "%-10d %12.1f %12.1f %14.1f\n",
			ms, u.ReadLat.Mean()/1000, s.ReadLat.Mean()/1000, h.ReadLat.Mean()/1000)
	}
}

// Fig14 regenerates Figure 14: throughput vs. phase length for the same
// three workloads.
func Fig14(w io.Writer, cfg ExpConfig) {
	cfg = cfg.norm()
	fmt.Fprintf(w, "# Figure 14: LIKE throughput (Mtxns/sec) vs phase length (ms); %d cores\n", cfg.Cores)
	fmt.Fprintf(w, "%-10s %12s %12s %14s\n", "phase(ms)", "uniform", "skewed", "skewed-wheavy")
	for _, ms := range phasePoints {
		u := phaseSweep(cfg, ms, 0, 0.5)
		s := phaseSweep(cfg, ms, 1.4, 0.5)
		h := phaseSweep(cfg, ms, 1.4, 0.9)
		fmt.Fprintf(w, "%-10d %12.2f %12.2f %14.2f\n",
			ms, u.Throughput/1e6, s.Throughput/1e6, h.Throughput/1e6)
	}
}

// rubisRun simulates one RUBiS mix.
func rubisRun(cfg ExpConfig, e sim.Kind, users, items int, alpha, bidFrac float64) sim.Result {
	c := cfg.simConfig(e)
	c.Records = sim.RUBiSRecords(users, items)
	z := workload.NewZipf(items, alpha)
	return sim.Run(c, sim.RUBiSGen(users, items, z, bidFrac))
}

// Table4 regenerates Table 4: RUBiS-B and RUBiS-C (alpha = 1.8)
// throughput in millions of transactions per second.
func Table4(w io.Writer, cfg ExpConfig) {
	cfg = cfg.norm()
	users, items := 1_000_000, 33_000
	if !cfg.Full {
		users = 200_000
	}
	fmt.Fprintf(w, "# Table 4: RUBiS throughput (Mtxns/sec); %d cores, %d users, %d auctions\n", cfg.Cores, users, items)
	fmt.Fprintf(w, "%-8s %10s %10s\n", "engine", "RUBiS-B", "RUBiS-C")
	for _, e := range threeEngines {
		b := rubisRun(cfg, e, users, items, 0, 0.07)
		c := rubisRun(cfg, e, users, items, 1.8, 0.5)
		fmt.Fprintf(w, "%-8s %10.2f %10.2f\n", e, b.Throughput/1e6, c.Throughput/1e6)
	}
}

// Fig15 regenerates Figure 15: RUBiS-C throughput vs. alpha.
func Fig15(w io.Writer, cfg ExpConfig) {
	cfg = cfg.norm()
	users, items := 1_000_000, 33_000
	if !cfg.Full {
		users = 200_000
	}
	fmt.Fprintf(w, "# Figure 15: RUBiS-C throughput (Mtxns/sec) vs alpha; %d cores\n", cfg.Cores)
	fmt.Fprintf(w, "%-8s %10s %10s %10s\n", "alpha", "doppel", "occ", "2pl")
	for _, alpha := range []float64{0, 0.4, 0.8, 1.0, 1.2, 1.4, 1.6, 1.8, 2.0} {
		fmt.Fprintf(w, "%-8.1f", alpha)
		for _, e := range threeEngines {
			res := rubisRun(cfg, e, users, items, alpha, 0.5)
			fmt.Fprintf(w, " %10.2f", res.Throughput/1e6)
		}
		fmt.Fprintln(w)
	}
}

// Experiments maps experiment names to drivers, for the CLI.
var Experiments = map[string]func(io.Writer, ExpConfig){
	"fig8":   Fig8,
	"fig9":   Fig9,
	"fig10":  Fig10,
	"fig11":  Fig11,
	"table1": Table1,
	"table2": Table2,
	"fig12":  Fig12,
	"table3": Table3,
	"fig13":  Fig13,
	"fig14":  Fig14,
	"table4": Table4,
	"fig15":  Fig15,
}

// ExperimentNames lists the experiments in paper order.
func ExperimentNames() []string {
	names := make([]string, 0, len(Experiments))
	for n := range Experiments {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
