package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"doppel/internal/core"
	"doppel/internal/occ"
	"doppel/internal/store"
	"doppel/internal/workload"
)

func TestRunLoadOCC(t *testing.T) {
	st := store.New()
	e := occ.New(st, 2)
	ks := workload.NewKeySpace('k', 1000)
	for i := 0; i < ks.N(); i++ {
		st.Preload(ks.Key(i), store.IntValue(0))
	}
	gen := &workload.Incr1{Keys: ks, HotKey: 0, HotFrac: 0.2}
	res := RunLoad(e, gen, Options{Duration: 100 * time.Millisecond, Seed: 1})
	if res.Stats.Committed == 0 {
		t.Fatal("no commits")
	}
	if res.Throughput <= 0 {
		t.Fatal("no throughput")
	}
	// Conservation: the sum of all counters equals committed increments.
	var total int64
	st.Range(func(k string, rec *store.Record) bool {
		n, _ := rec.Value().AsInt()
		total += n
		return true
	})
	if total != int64(res.Stats.Committed) {
		t.Fatalf("total %d != commits %d", total, res.Stats.Committed)
	}
}

func TestRunLoadDoppel(t *testing.T) {
	st := store.New()
	cfg := core.DefaultConfig(2)
	cfg.PhaseLength = 2 * time.Millisecond
	cfg.SplitMinConflicts = 2
	cfg.SplitFraction = 0.0001
	db := core.Open(st, cfg)
	ks := workload.NewKeySpace('k', 100)
	for i := 0; i < ks.N(); i++ {
		st.Preload(ks.Key(i), store.IntValue(0))
	}
	gen := &workload.Incr1{Keys: ks, HotKey: 0, HotFrac: 0.9}
	res := RunLoad(db, gen, Options{Duration: 150 * time.Millisecond, Seed: 7})
	db.Close()
	if res.Stats.Committed == 0 {
		t.Fatal("no commits")
	}
	var total int64
	st.Range(func(k string, rec *store.Record) bool {
		n, _ := rec.Value().AsInt()
		total += n
		return true
	})
	// Every committed or stashed-then-committed increment must be
	// reflected exactly once after Close.
	if total != int64(res.Stats.Committed) {
		t.Fatalf("total %d != commits %d (stashed %d)", total, res.Stats.Committed, res.Stats.Stashed)
	}
}

func TestExperimentRegistryComplete(t *testing.T) {
	want := []string{"fig8", "fig9", "fig10", "fig11", "fig12", "fig13",
		"fig14", "fig15", "table1", "table2", "table3", "table4",
		"ablation-extend", "ablation-hurry", "ablation-dominance",
		"ablation-maxkeys", "ablation-barrier"}
	names := ExperimentNames()
	if len(names) != len(want) {
		t.Fatalf("experiments: %v", names)
	}
	for _, n := range want {
		if Experiments[n] == nil {
			t.Fatalf("missing experiment %s", n)
		}
	}
}

func TestTable1MatchesPaperDigits(t *testing.T) {
	var buf bytes.Buffer
	Table1(&buf, ExpConfig{})
	out := buf.String()
	// Spot-check against the paper's printed values. The paper rounds to
	// 6.953 / 32.30 / 60.80; the analytic values land within 0.1%.
	for _, want := range []string{"6.94", "32.30", "60.79"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table 1 output missing %q:\n%s", want, out)
		}
	}
}

func TestSmallExperimentRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment drivers are slow")
	}
	// A tiny configuration exercises the driver plumbing end to end.
	cfg := ExpConfig{Cores: 4, Records: 10_000, Seed: 3}
	var buf bytes.Buffer
	Table2(&buf, cfg)
	if !strings.Contains(buf.String(), "alpha") {
		t.Fatalf("table2 output:\n%s", buf.String())
	}
}
