package bench

import (
	"fmt"
	"io"

	"doppel/internal/sim"
	"doppel/internal/workload"
)

// Ablations isolate the contribution of individual design decisions in
// the phase reconciliation machinery. They are not experiments from the
// paper; they justify the choices DESIGN.md documents.

// AblationExtend measures the split-phase extension feedback (skip the
// barrier back to a joined phase while nothing is stashed): without it,
// a pure-write hot workload spends half its time in collapsed joined
// phases.
func AblationExtend(w io.Writer, cfg ExpConfig) {
	cfg = cfg.norm()
	fmt.Fprintf(w, "# Ablation: split-phase extension (INCR1 100%% hot, %d cores)\n", cfg.Cores)
	fmt.Fprintf(w, "%-16s %12s %14s\n", "max-extends", "Mtxn/s", "phase-changes")
	for _, ext := range []int{0, 1, 2, 4, 8, 16} {
		c := cfg.simConfig(sim.Doppel)
		c.Doppel = sim.DefaultParams()
		c.Doppel.MaxSplitExtend = ext
		res := sim.Run(c, sim.IncrGen(cfg.Records, 1.0, 0))
		fmt.Fprintf(w, "%-16d %12.2f %14d\n", ext, res.Throughput/1e6, res.PhaseChanges)
	}
}

// AblationHurry measures hurrying the joined phase when stashes pile up:
// it trades split-phase batching for read latency.
func AblationHurry(w io.Writer, cfg ExpConfig) {
	cfg = cfg.norm()
	fmt.Fprintf(w, "# Ablation: hurry fraction (LIKE 50/50, alpha=1.4, %d cores)\n", cfg.Cores)
	fmt.Fprintf(w, "%-16s %12s %16s %14s\n", "hurry-frac", "Mtxn/s", "mean-read(us)", "p99-read(us)")
	for _, hf := range []float64{0.25, 0.5, 0.75, 1.0} {
		c, users := likeCfg(cfg, sim.Doppel)
		c.Doppel = sim.DefaultParams()
		c.Doppel.HurryFraction = hf
		z := workload.NewZipf(users, 1.4)
		res := sim.Run(c, sim.LikeGen(users, users, z, 0.5))
		fmt.Fprintf(w, "%-16.2f %12.2f %16.1f %14.1f\n", hf,
			res.Throughput/1e6, res.ReadLat.Mean()/1000,
			float64(res.ReadLat.Quantile(0.99))/1000)
	}
}

// AblationDominance measures the read-dominance veto that keeps
// read-mostly keys reconciled: with it disabled (huge threshold), Doppel
// splits keys whose readers then stash constantly.
func AblationDominance(w io.Writer, cfg ExpConfig) {
	cfg = cfg.norm()
	fmt.Fprintf(w, "# Ablation: read-dominance veto (LIKE 20%% writes, alpha=1.4, %d cores)\n", cfg.Cores)
	fmt.Fprintf(w, "%-16s %12s %12s %12s\n", "dominance", "Mtxn/s", "split-keys", "stashes")
	for _, dom := range []float64{1, 3, 10, 1e9} {
		c, users := likeCfg(cfg, sim.Doppel)
		c.Doppel = sim.DefaultParams()
		c.Doppel.ReadDominance = dom
		z := workload.NewZipf(users, 1.4)
		res := sim.Run(c, sim.LikeGen(users, users, z, 0.2))
		fmt.Fprintf(w, "%-16.0f %12.2f %12d %12d\n", dom,
			res.Throughput/1e6, len(res.SplitKeys), res.Stashes)
	}
}

// AblationMaxKeys bounds how many records may be split at once: too few
// leaves contended keys under OCC; extra capacity is free when the
// workload does not need it.
func AblationMaxKeys(w io.Writer, cfg ExpConfig) {
	cfg = cfg.norm()
	fmt.Fprintf(w, "# Ablation: MaxSplitKeys (INCRZ alpha=1.4, %d cores)\n", cfg.Cores)
	fmt.Fprintf(w, "%-16s %12s %12s\n", "max-keys", "Mtxn/s", "split-keys")
	z := workload.NewZipf(cfg.Records, 1.4)
	for _, mk := range []int{1, 2, 4, 8, 64} {
		c := cfg.simConfig(sim.Doppel)
		c.Doppel = sim.DefaultParams()
		c.Doppel.MaxSplitKeys = mk
		res := sim.Run(c, sim.IncrZGen(z))
		fmt.Fprintf(w, "%-16d %12.2f %12d\n", mk, res.Throughput/1e6, len(res.SplitKeys))
	}
}

// AblationBarrier measures sensitivity to the phase-change barrier cost,
// which is what bends Figure 9's per-core line downward at high core
// counts.
func AblationBarrier(w io.Writer, cfg ExpConfig) {
	cfg = cfg.norm()
	fmt.Fprintf(w, "# Ablation: barrier cost per core (INCR1 100%% hot, 80 cores)\n")
	fmt.Fprintf(w, "%-20s %14s\n", "barrier/core(us)", "Mtxn/s/core")
	for _, us := range []int64{0, 5, 20, 50, 100} {
		c := cfg.simConfig(sim.Doppel)
		c.Cores = 80
		c.Cost = sim.DefaultCosts()
		c.Cost.BarrierPerCore = us * 1000
		res := sim.Run(c, sim.IncrGen(cfg.Records, 1.0, 0))
		fmt.Fprintf(w, "%-20d %14.3f\n", us, res.Throughput/1e6/80)
	}
}

func init() {
	Experiments["ablation-extend"] = AblationExtend
	Experiments["ablation-hurry"] = AblationHurry
	Experiments["ablation-dominance"] = AblationDominance
	Experiments["ablation-maxkeys"] = AblationMaxKeys
	Experiments["ablation-barrier"] = AblationBarrier
}
