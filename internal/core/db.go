package core

import (
	"sync"
	"sync/atomic"
	"time"

	"doppel/internal/engine"
	"doppel/internal/metrics"
	"doppel/internal/store"
)

// Phase identifies the database's current global phase. Reconciliation is
// not a steady state: it happens inside the split→joined transition, per
// worker, between noticing the transition and acknowledging it (§5.3).
type Phase int32

// Phases.
const (
	PhaseJoined Phase = iota
	PhaseSplit
)

// String implements fmt.Stringer.
func (p Phase) String() string {
	if p == PhaseSplit {
		return "split"
	}
	return "joined"
}

// transition is one in-flight phase change. The coordinator publishes it;
// workers notice it between transactions, perform their pre-transition
// duty (reconcile slices when leaving a split phase), and acknowledge.
// The last acknowledger installs the new phase and releases everyone
// (§5.4).
type transition struct {
	target   Phase
	epoch    uint64
	nextSet  *splitSet // split set to install when target == PhaseSplit
	barrier  func()    // checkpoint cut, run by the last acknowledger
	acks     atomic.Int32
	total    int32
	released chan struct{}
}

// DB is a Doppel database instance.
type DB struct {
	st  *store.Store
	cfg Config

	phase      atomic.Int32
	phaseEpoch atomic.Uint64
	inflight   atomic.Pointer[transition]
	split      atomic.Pointer[splitSet]
	// pubMu serializes transition publication (coordinator, test hooks
	// and checkpoint barriers). While it is held and inflight is nil, no
	// transition can complete, so phaseEpoch cannot move between reading
	// it and CASing the new transition in — without this, a second
	// publisher could install a transition whose epoch the workers have
	// already acknowledged, which would never complete.
	pubMu sync.Mutex

	workers []*Worker

	// classifier state (coordinator-side master copy)
	classMu   sync.Mutex
	curAssign map[string]store.OpKind // current split assignment
	hints     map[string]store.OpKind // manual labels (§5.5)
	lastSplit map[string]bool         // keys that went through the last split phase

	// phase accounting
	extends      int // consecutive split-phase extensions (coordinator only)
	phaseChanges atomic.Uint64
	splitPhases  atomic.Uint64
	phaseStartNs atomic.Int64

	stop    chan struct{}
	coordWG sync.WaitGroup
	closed  bool
}

// Open returns a running Doppel instance over st. If cfg.PhaseLength is
// non-zero a coordinator goroutine cycles phases; otherwise phases move
// only via test hooks and Close.
func Open(st *store.Store, cfg Config) *DB {
	cfg = cfg.withDefaults()
	db := &DB{
		st:        st,
		cfg:       cfg,
		curAssign: map[string]store.OpKind{},
		hints:     map[string]store.OpKind{},
		lastSplit: map[string]bool{},
		stop:      make(chan struct{}),
	}
	db.split.Store(emptySplitSet)
	db.workers = make([]*Worker, cfg.Workers)
	for i := range db.workers {
		db.workers[i] = newWorker(db, i)
	}
	db.phaseStartNs.Store(time.Now().UnixNano())
	if cfg.PhaseLength > 0 {
		db.coordWG.Add(1)
		go db.coordinate()
	}
	return db
}

// Store returns the backing store.
func (db *DB) Store() *store.Store { return db.st }

// Name implements engine.Engine.
func (db *DB) Name() string { return "doppel" }

// Workers implements engine.Engine.
func (db *DB) Workers() int { return len(db.workers) }

// WorkerStats implements engine.Engine.
func (db *DB) WorkerStats(w int) *metrics.TxnStats { return db.workers[w].stats }

// Attempt implements engine.Engine.
func (db *DB) Attempt(w int, fn engine.TxFunc, submitNanos int64) (engine.Outcome, error) {
	return db.workers[w].attempt(fn, submitNanos)
}

// Poll implements engine.Engine: the worker participates in any pending
// phase transition and retries stashed transactions if a joined phase
// has begun.
func (db *DB) Poll(w int) { db.workers[w].poll() }

// Phase returns the current global phase.
func (db *DB) Phase() Phase { return Phase(db.phase.Load()) }

// SplitActive reports whether key is split data in the phase running
// right now: during a split phase, workers apply the key's selected
// operation to invisible per-core slices, so the global record does not
// reflect committed state. The cluster router's cross-shard prepare
// checks this after fencing — a fenced-but-split key must be treated as
// stale and retried, because reconciliation merges slices without fence
// checks.
//
// The read takes pubMu, making it atomic against split-set publication
// in completeTransition. Combined with the publication-time fence
// filter there, a prepare that fenced its keys before calling this is
// guaranteed one of two outcomes: the publisher saw the fence and kept
// the key out of the split set, or this check sees the key split and
// the prepare retries. Only the cross-shard path calls this, so the
// lock is off the single-shard fast path entirely.
func (db *DB) SplitActive(key string) bool {
	db.pubMu.Lock()
	defer db.pubMu.Unlock()
	return db.Phase() == PhaseSplit && db.split.Load().lookup(key) != nil
}

// SplitKeys returns the keys currently assigned as split data (the
// paper's Table 2 reports this count). The assignment persists across
// phase cycles until the classifier demotes a key.
func (db *DB) SplitKeys() []string {
	db.classMu.Lock()
	defer db.classMu.Unlock()
	out := make([]string, 0, len(db.curAssign))
	for k := range db.curAssign {
		out = append(out, k)
	}
	return out
}

// PhaseChanges returns how many phase transitions have completed.
func (db *DB) PhaseChanges() uint64 { return db.phaseChanges.Load() }

// StashLen reports how many transactions worker w currently has stashed
// awaiting the next joined phase. It must be called from the goroutine
// that drives worker w.
func (db *DB) StashLen(w int) int { return len(db.workers[w].stash) }

// RedoLSN reports the log sequence number of worker w's newest redo
// append — what a caller that wants commit-then-durable semantics must
// WaitDurable on after Attempt returns Committed. It is the max-LSN
// sentinel when the worker's last append was refused by a terminally
// failed logger (waiting on it reports the terminal error), and 0 when
// the worker has never logged. Like StashLen it must be called from
// the goroutine that drives worker w.
func (db *DB) RedoLSN(w int) uint64 { return db.workers[w].redoLSN }

// SliceRedoPending reports whether worker w has committed split-phase
// slice writes whose redo records have not been appended yet (they are
// logged when the worker reconciles its slices at the next phase
// transition). While it is true, RedoLSN does not cover the worker's
// newest commit; durability-synchronous callers poll the worker until
// it clears. Must be called from the goroutine that drives worker w.
func (db *DB) SliceRedoPending(w int) bool { return db.workers[w].slicedRedo }

// SplitHint manually labels key as split data for op ("this record should
// be split for this operation", §5.5). It takes effect at the next
// joined→split transition. Non-splittable operations are ignored.
func (db *DB) SplitHint(key string, op store.OpKind) {
	if !op.Splittable() {
		return
	}
	db.classMu.Lock()
	db.hints[key] = op
	db.classMu.Unlock()
}

// ClearSplitHint removes a manual label.
func (db *DB) ClearSplitHint(key string) {
	db.classMu.Lock()
	delete(db.hints, key)
	db.classMu.Unlock()
}

// beginTransition publishes a transition toward target. It returns false
// when one is already in flight or the database is already in target.
func (db *DB) beginTransition(target Phase, nextSet *splitSet) bool {
	db.pubMu.Lock()
	defer db.pubMu.Unlock()
	if db.inflight.Load() != nil || db.Phase() == target {
		return false
	}
	tr := &transition{
		target:   target,
		epoch:    db.phaseEpoch.Load() + 1,
		nextSet:  nextSet,
		total:    int32(len(db.workers)),
		released: make(chan struct{}),
	}
	// Publish; workers observe it in checkPhase.
	if !db.inflight.CompareAndSwap(nil, tr) {
		return false
	}
	return true
}

// completeTransition is called by the final acknowledging worker: it
// installs the new phase and split set, clears the in-flight pointer and
// releases all waiting workers. If the transition carries a barrier
// function it runs first, at the one point where every worker is paused
// between transactions and all reconciliation duties have completed —
// the quiesced boundary checkpoints cut at.
func (db *DB) completeTransition(tr *transition) {
	if tr.barrier != nil {
		tr.barrier()
	}
	// Publication happens under pubMu so it is atomic against the
	// router's SplitActive check: a cross-shard prepare installs its
	// fences and then reads phase+split inside one pubMu critical
	// section, so the fence re-check below (withoutFenced) either sees
	// the fence and drops the key, or the prepare's check runs after
	// this store and sees the key split — never neither. The barrier
	// runs outside the lock: it is a checkpoint cut that may take WAL
	// locks, and publication order does not depend on it.
	db.pubMu.Lock()
	defer db.pubMu.Unlock()
	// A joined→joined barrier is a checkpoint cut, not a phase change:
	// leave the phase clock and change counter alone, or frequent
	// checkpoints would keep resetting the coordinator's "joined phase
	// long enough?" timer and starve split phases entirely.
	noop := tr.target == Phase(db.phase.Load())
	if tr.target == PhaseSplit {
		db.split.Store(tr.nextSet.withoutFenced())
		db.splitPhases.Add(1)
	} else {
		db.split.Store(emptySplitSet)
	}
	db.phase.Store(int32(tr.target))
	db.phaseEpoch.Store(tr.epoch)
	if !noop {
		db.phaseChanges.Add(1)
		db.phaseStartNs.Store(time.Now().UnixNano())
	}
	db.inflight.Store(nil)
	close(tr.released)
}

// coordinate is the coordinator loop: it proposes a phase change every
// PhaseLength, skips split phases with no candidates ("the coordinator
// delays the next split phase", §5.4), and hurries the joined phase when
// stashes pile up.
func (db *DB) coordinate() {
	defer db.coordWG.Done()
	tick := db.cfg.PhaseLength / 4
	if tick <= 0 {
		tick = time.Millisecond
	}
	timer := time.NewTicker(tick)
	defer timer.Stop()
	for {
		select {
		case <-db.stop:
			return
		case <-timer.C:
		}
		if db.inflight.Load() != nil {
			continue
		}
		elapsed := time.Duration(time.Now().UnixNano() - db.phaseStartNs.Load())
		switch db.Phase() {
		case PhaseJoined:
			if elapsed < db.cfg.PhaseLength {
				continue
			}
			set := db.decideNextSplit()
			if set.size() == 0 {
				// Nothing worth splitting: stay joined, reset the timer
				// so classifier windows stay one phase long.
				db.phaseStartNs.Store(time.Now().UnixNano())
				continue
			}
			db.beginTransition(PhaseSplit, set)
		case PhaseSplit:
			var commits, stashes, sliceWrites uint64
			for _, w := range db.workers {
				commits += w.commitsPhase.Load()
				stashes += w.stashedPhase.Load()
				sliceWrites += w.sliceWritesPhase.Load()
			}
			hurry := commits+stashes > 0 &&
				float64(stashes) > db.cfg.HurryFraction*float64(commits+stashes)
			if elapsed < db.cfg.PhaseLength && !hurry {
				continue
			}
			// A split phase with no stashed transactions has nothing
			// waiting on a joined phase; extend it rather than pay a
			// barrier, up to MaxSplitExtend times.
			if stashes == 0 && sliceWrites > uint64(db.cfg.KeepMinWrites) &&
				db.extends < db.cfg.MaxSplitExtend {
				db.extends++
				for _, w := range db.workers {
					w.sliceWritesPhase.Store(0)
				}
				db.phaseStartNs.Store(time.Now().UnixNano())
				continue
			}
			db.extends = 0
			db.beginTransition(PhaseJoined, nil)
		}
	}
}

// RequestSplitPhase runs the classifier and proposes a transition to a
// split phase, exactly as the coordinator would. It returns false when a
// transition is already in flight, the database is already split, or the
// classifier found nothing to split. Workers complete the transition as
// they poll. Intended for tests and deterministic benchmarks
// (cfg.PhaseLength == 0 disables the coordinator).
func (db *DB) RequestSplitPhase() bool {
	if db.inflight.Load() != nil || db.Phase() == PhaseSplit {
		return false
	}
	set := db.decideNextSplit()
	if set.size() == 0 {
		return false
	}
	return db.beginTransition(PhaseSplit, set)
}

// RequestJoinedPhase proposes a transition back to a joined phase; see
// RequestSplitPhase.
func (db *DB) RequestJoinedPhase() bool {
	return db.beginTransition(PhaseJoined, nil)
}

// RequestBarrier proposes a transition to a joined phase that runs fn at
// the quiesced boundary: after every worker has stopped between
// transactions and reconciled its slices (when leaving a split phase),
// and before any worker resumes. fn runs exactly once, on the last
// acknowledging worker's goroutine (or inside Close's quiesce), and must
// be brief — every worker is stalled until it returns.
//
// Unlike beginTransition this may target the phase the database is
// already in: a joined→joined barrier is the checkpoint cut for an
// uncontended database. It returns false when another transition is in
// flight; the caller should retry. Workers must be polled for the
// barrier to complete.
func (db *DB) RequestBarrier(fn func()) bool {
	db.pubMu.Lock()
	defer db.pubMu.Unlock()
	if db.inflight.Load() != nil {
		return false
	}
	tr := &transition{
		target:   PhaseJoined,
		epoch:    db.phaseEpoch.Load() + 1,
		barrier:  fn,
		total:    int32(len(db.workers)),
		released: make(chan struct{}),
	}
	return db.inflight.CompareAndSwap(nil, tr)
}

// Close stops the coordinator, completes any in-flight transition on
// behalf of stopped workers, reconciles all outstanding per-core slices
// into the global store, and retries stashed transactions so their
// effects are not lost. After Close the store reflects every committed
// transaction. Workers' driving goroutines must have stopped before
// Close is called.
func (db *DB) Close() {
	if db.closed {
		return
	}
	db.closed = true
	close(db.stop)
	db.coordWG.Wait()
	db.quiesce()
}

// Stop implements engine.Engine.
func (db *DB) Stop() { db.Close() }

// quiesce drives the database to a fully reconciled joined phase, acting
// on behalf of the (stopped) workers.
func (db *DB) quiesce() {
	// Complete an in-flight transition.
	if tr := db.inflight.Load(); tr != nil {
		for _, w := range db.workers {
			if w.ackedEpoch < tr.epoch {
				w.transitionDuty(tr)
				w.ackedEpoch = tr.epoch
				if tr.acks.Add(1) == tr.total {
					db.completeTransition(tr)
				}
			}
		}
	}
	// If we ended up in (or already were in) a split phase, reconcile
	// everything back.
	if db.Phase() == PhaseSplit {
		if db.beginTransition(PhaseJoined, nil) {
			tr := db.inflight.Load()
			for _, w := range db.workers {
				w.transitionDuty(tr)
				w.ackedEpoch = tr.epoch
				if tr.acks.Add(1) == tr.total {
					db.completeTransition(tr)
				}
			}
		}
	}
	// Joined phase now: drain every worker's stash.
	for _, w := range db.workers {
		w.drainStash()
	}
}

var _ engine.Engine = (*DB)(nil)
