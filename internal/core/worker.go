package core

import (
	"errors"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"doppel/internal/engine"
	"doppel/internal/metrics"
	"doppel/internal/store"
	"doppel/internal/wal"
)

// opKindCount sizes per-operation counter arrays.
const opKindCount = int(store.OpTopKInsert) + 1

// workerIDMask extracts the worker-ID byte of a commit TID; see the TID
// layout in doc.go. Config.Workers is capped at MaxWorkers so the mask
// never aliases two workers.
const workerIDMask = 0xff

// opCounts is a per-key, per-operation conflict/stash counter.
type opCounts [opKindCount]uint32

// stashedTxn is a transaction saved during a split phase for re-execution
// in the next joined phase (§5.2).
type stashedTxn struct {
	fn     engine.TxFunc
	submit int64
}

// sliceState is one per-core slice: the accumulated value for one split
// record on one worker (§4). val == nil is the operation's identity.
type sliceState struct {
	val    *store.Value
	writes uint64
}

// Worker is one per-core execution context. All methods except the
// coordinator-side aggregation helpers must be called from the single
// goroutine that drives this worker.
type Worker struct {
	db    *DB
	id    int
	tidID int // id + Config.WorkerIDBase: the ID embedded in commit TIDs
	stats *metrics.TxnStats

	lastSeq         uint64 // TID sequence generator state
	ackedEpoch      uint64 // highest transition epoch acknowledged
	seenEpoch       uint64 // highest completed epoch whose entry work ran
	slices          []sliceState
	stash           []stashedTxn
	tx              Tx
	sampleTick      int
	stashTick       int
	maxStashLen     int
	loggedMergeFail bool // first reconcile merge failure already logged
	loggedStashDrop bool // first dropped stashed transaction already logged

	// Redo-record encode scratch, reused across commits and reconcile
	// merges. All four are written only on this worker's goroutine; the
	// logger copies the finished frame, so reuse is safe the moment
	// Append returns.
	redoVal  []byte   // encoded values, back to back
	redoOffs []int    // redoVal offsets, one per op plus the tail
	redoOps  []wal.Op // assembled op list
	redoEnc  []byte   // the encoded record frame handed to the logger
	redoLSN  uint64   // LSN of this worker's newest redo append; see noteRedoLSN

	// slicedRedo is set when a commit buffered split (slice) writes
	// while redo logging is on: those writes have no redo record yet —
	// they are logged when reconcile merges the slices — so a
	// durability-synchronous caller must not acknowledge until this
	// flag clears. Touched only on the worker goroutine (and by quiesce
	// after the workers have stopped).
	slicedRedo bool

	// Cross-thread counters read by the coordinator.
	attemptsWindow   atomic.Uint64 // attempts since the classifier last looked
	commitsPhase     atomic.Uint64 // commits in the current phase
	stashedPhase     atomic.Uint64 // stashes in the current phase
	sliceWritesPhase atomic.Uint64 // slice writes in the current phase

	// Classifier samples, guarded by statsMu (worker writes, coordinator
	// aggregates and resets).
	statsMu      sync.Mutex
	conflicts    map[string]*opCounts // joined-phase conflict samples
	splitWrites  map[string]uint64    // split-phase slice write counts
	splitStashes map[string]*opCounts // split-phase stash samples by op
}

func newWorker(db *DB, id int) *Worker {
	return &Worker{
		db:           db,
		id:           id,
		tidID:        db.cfg.WorkerIDBase + id,
		stats:        metrics.NewTxnStats(),
		conflicts:    map[string]*opCounts{},
		splitWrites:  map[string]uint64{},
		splitStashes: map[string]*opCounts{},
	}
}

// checkPhase participates in the phase-change protocol (§5.4). It
// returns false when the worker must not execute transactions yet (a
// transition is in flight and not all workers have acknowledged it).
func (w *Worker) checkPhase() bool {
	db := w.db
	if tr := db.inflight.Load(); tr != nil {
		if w.ackedEpoch < tr.epoch {
			w.transitionDuty(tr)
			w.ackedEpoch = tr.epoch
			if tr.acks.Add(1) == tr.total {
				db.completeTransition(tr)
			} else {
				return false
			}
		} else {
			select {
			case <-tr.released:
			default:
				return false
			}
		}
	}
	// Entry work for a newly completed phase. Safe without locks: the
	// phase cannot advance again until this worker acknowledges the next
	// transition.
	if ep := db.phaseEpoch.Load(); w.seenEpoch < ep {
		w.seenEpoch = ep
		w.commitsPhase.Store(0)
		w.stashedPhase.Store(0)
		w.sliceWritesPhase.Store(0)
		if db.Phase() == PhaseSplit {
			w.resetSlices(db.split.Load())
		} else {
			// Entering a joined phase: restart stashed transactions
			// ("each worker restarts any transactions it stashed in the
			// split phase", §5.4).
			w.drainStash()
		}
	}
	return true
}

// transitionDuty performs this worker's obligation before acknowledging
// tr: when leaving a split phase, merge the per-core slices into the
// global store (the reconciliation phase, §5.3, Figure 4).
func (w *Worker) transitionDuty(tr *transition) {
	if tr.target == PhaseJoined && Phase(w.db.phase.Load()) == PhaseSplit {
		w.reconcile()
	}
}

// reconcile merges this worker's slices into the global store: for each
// split record, lock, merge-apply, unlock with a fresh TID (Figure 4).
// Cost is O(split records), independent of how many operations the slices
// absorbed.
func (w *Worker) reconcile() {
	set := w.db.split.Load()
	for _, sk := range set.list {
		if sk.idx >= len(w.slices) {
			continue
		}
		sl := &w.slices[sk.idx]
		if sl.writes == 0 {
			continue
		}
		rec := sk.rec
		rec.Lock()
		// Copy-on-write hook for incremental checkpoints: the merge below
		// installs a new value and TID, so the pre-merge state must be
		// saved first if an active capture has not claimed this record.
		// (Harmless on the merge-failure path: the saved state is then
		// simply the record's unchanged state.)
		w.db.st.SaveBeforeWrite(sk.key, rec)
		merged, err := store.MergeValues(sk.op, rec.Value(), sl.val)
		if err != nil {
			// The slice's absorbed writes cannot merge (the global value
			// and the slice value have incompatible types). Keep the old
			// value AND the old TID: a fresh TID would invalidate readers
			// for a write that never happened, and recovery would diverge
			// from memory since no redo record is logged. Count the loss
			// and log it once per worker rather than once per phase.
			rec.Unlock()
			w.stats.MergeFailures++
			if !w.loggedMergeFail {
				w.loggedMergeFail = true
				log.Printf("doppel: worker %d: reconcile dropped %d absorbed %v writes for %q: %v",
					w.id, sl.writes, sk.op, sk.key, err)
			}
			continue
		}
		rec.SetValue(merged)
		tid, _ := rec.TIDWord()
		seq := tid >> 8
		if w.lastSeq > seq {
			seq = w.lastSeq
		}
		seq++
		w.lastSeq = seq
		newTID := seq<<8 | uint64(w.tidID)&workerIDMask
		if redo := w.db.cfg.Redo; redo != nil {
			// Same reusable encode scratch as the commit path: one redo
			// record per merged slice, no per-slice allocations.
			w.redoVal = store.AppendValue(w.redoVal[:0], merged)
			w.redoOps = append(w.redoOps[:0], wal.Op{Key: sk.key, Value: w.redoVal})
			w.redoEnc = wal.AppendRecord(w.redoEnc[:0], wal.Record{TID: newTID, Ops: w.redoOps})
			w.noteRedoLSN(redo.Append(w.redoEnc, newTID))
		}
		rec.UnlockWithTID(newTID)

		// Write sampling feeds the keep/demote decision (§5.5).
		w.statsMu.Lock()
		w.splitWrites[sk.key] += sl.writes
		w.statsMu.Unlock()
	}
	w.slices = nil
	// Every absorbed slice write is now merged and its redo record (if
	// any) appended — redoLSN covers them, so durability-synchronous
	// waiters may proceed to the watermark.
	w.slicedRedo = false
}

// resetSlices prepares empty per-core slices for a new split phase.
func (w *Worker) resetSlices(set *splitSet) {
	w.slices = make([]sliceState, set.size())
}

// drainStash re-executes stashed transactions during a joined phase.
// The phase cannot change underneath the drain because this worker has
// not acknowledged any new transition.
func (w *Worker) drainStash() {
	if len(w.stash) == 0 {
		return
	}
	pending := w.stash
	w.stash = nil
	for _, s := range pending {
		for attempt := 0; ; attempt++ {
			// The stash itself was already counted (Stashed); the first
			// replay is the transaction's normal completion, so only
			// attempts beyond it count as retries — otherwise a stashed
			// transaction that commits immediately would still report one.
			if attempt > 0 {
				w.stats.Retries++
			}
			out, _ := w.execOnce(s.fn, s.submit)
			if out == engine.Committed || out == engine.UserAbort {
				break
			}
			if out == engine.AbortedFenced {
				// The fence's owner — a cross-shard apply transaction — may
				// be queued behind this very drain on this worker, so
				// spinning here could wait forever for a fence only we can
				// release. Put the transaction back in the stash and move
				// on; a later drain retries it after the fence clears.
				w.stash = append(w.stash, s)
				break
			}
			if attempt > 1<<20 {
				// Pathological livelock: drop the transaction after
				// counting its aborts, but never silently — the loss is
				// visible in Stats and logged once per worker.
				w.stats.StashDropped++
				if !w.loggedStashDrop {
					w.loggedStashDrop = true
					log.Printf("doppel: worker %d: dropped a stashed transaction after %d failed replays (livelock); counting further drops in stats only", w.id, attempt)
				}
				break
			}
		}
	}
}

// attempt implements one engine.Attempt call for this worker.
func (w *Worker) attempt(fn engine.TxFunc, submitNanos int64) (engine.Outcome, error) {
	if !w.checkPhase() {
		return engine.Paused, nil
	}
	w.attemptsWindow.Add(1)
	return w.execOnce(fn, submitNanos)
}

// poll participates in phase transitions without running a transaction.
func (w *Worker) poll() { w.checkPhase() }

// execOnce runs fn once in the current phase and classifies the outcome.
func (w *Worker) execOnce(fn engine.TxFunc, submitNanos int64) (engine.Outcome, error) {
	// Fail-stop: once the redo logger is terminally dead, new
	// transactions must not keep acknowledging as durable. Failed() is
	// one atomic load, so the healthy path pays nothing.
	if cfg := &w.db.cfg; cfg.WALFailStop && cfg.Redo != nil && cfg.Redo.Failed() {
		return engine.UserAbort, fmt.Errorf("core: redo log failed, refusing new transactions: %w", cfg.Redo.Err())
	}
	tx := &w.tx
	tx.reset(w)
	err := fn(tx)
	switch {
	case errors.Is(err, engine.ErrStash):
		w.stash = append(w.stash, stashedTxn{fn, submitNanos})
		if len(w.stash) > w.maxStashLen {
			w.maxStashLen = len(w.stash)
		}
		w.stats.Stashed++
		w.stashedPhase.Add(1)
		return engine.Stashed, nil
	case errors.Is(err, engine.ErrFenced):
		w.stats.FenceAborts++
		return engine.AbortedFenced, nil
	case errors.Is(err, engine.ErrAbort):
		w.stats.Aborted++
		return engine.Aborted, nil
	case err != nil:
		return engine.UserAbort, err
	}
	out, cerr := tx.commit()
	if cerr != nil {
		return engine.UserAbort, cerr
	}
	switch out {
	case engine.Committed:
		w.stats.Committed++
		w.commitsPhase.Add(1)
		lat := time.Now().UnixNano() - submitNanos
		if tx.wrote {
			w.stats.WriteLatency.Record(lat)
		} else {
			w.stats.ReadLatency.Record(lat)
		}
	case engine.Aborted:
		w.stats.Aborted++
	case engine.AbortedFenced:
		w.stats.FenceAborts++
	}
	return out, nil
}

// noteRedoLSN records the outcome of a redo append so RedoLSN can
// report what a durability-synchronous caller must wait for. A refused
// append (the logger failed terminally) stores the max LSN sentinel:
// waiting on it surfaces the terminal error instead of acknowledging a
// commit whose redo record was never accepted.
func (w *Worker) noteRedoLSN(lsn uint64, err error) {
	if err != nil {
		lsn = ^uint64(0)
	}
	w.redoLSN = lsn
}

// sampleConflict records a conflicting access to key by op for the
// classifier, subject to the configured sampling rate (§5.5).
func (w *Worker) sampleConflict(key string, op store.OpKind) {
	w.sampleTick++
	if w.sampleTick%w.db.cfg.SampleRate != 0 {
		return
	}
	w.statsMu.Lock()
	oc := w.conflicts[key]
	if oc == nil {
		oc = &opCounts{}
		w.conflicts[key] = oc
	}
	oc[op]++
	w.statsMu.Unlock()
}

// sampleStash records that a transaction had to be stashed because it
// accessed split record key with op (§5.5: stash sampling). Like
// sampleConflict it honors Config.SampleRate, so a split-phase stash
// storm touches the stats mutex only once per SampleRate stashes
// instead of serializing every worker on it.
func (w *Worker) sampleStash(key string, op store.OpKind) {
	w.stashTick++
	if w.stashTick%w.db.cfg.SampleRate != 0 {
		return
	}
	w.statsMu.Lock()
	oc := w.splitStashes[key]
	if oc == nil {
		oc = &opCounts{}
		w.splitStashes[key] = oc
	}
	oc[op]++
	w.statsMu.Unlock()
}
