package core

import (
	"fmt"
	"testing"
	"time"

	"doppel/internal/engine"
	"doppel/internal/store"
)

// feedConflicts injects sampled conflicts as if worker w had observed
// them during a joined phase.
func feedConflicts(db *DB, w int, key string, op store.OpKind, n int) {
	for i := 0; i < n; i++ {
		db.workers[w].sampleConflict(key, op)
	}
}

func setAttempts(db *DB, w int, n uint64) {
	db.workers[w].attemptsWindow.Store(n)
}

func TestClassifierPromotesContendedKey(t *testing.T) {
	db := manualDB(2)
	defer db.Close()
	feedConflicts(db, 0, "hot", store.OpAdd, 50)
	feedConflicts(db, 1, "hot", store.OpAdd, 50)
	feedConflicts(db, 0, "cool", store.OpAdd, 1)
	setAttempts(db, 0, 500)
	setAttempts(db, 1, 500)
	set := db.decideNextSplit()
	if set.size() != 1 || set.lookup("hot") == nil {
		t.Fatalf("split set %v", set.keyNames())
	}
	if set.lookup("hot").op != store.OpAdd {
		t.Fatalf("selected op %v", set.lookup("hot").op)
	}
}

func TestClassifierIgnoresBelowMinConflicts(t *testing.T) {
	db := manualDB(1)
	defer db.Close()
	feedConflicts(db, 0, "k", store.OpAdd, db.cfg.SplitMinConflicts-1)
	setAttempts(db, 0, 10)
	if set := db.decideNextSplit(); set.size() != 0 {
		t.Fatalf("split set %v", set.keyNames())
	}
}

func TestClassifierIgnoresBelowFraction(t *testing.T) {
	db := manualDB(1)
	defer db.Close()
	// 20 conflicts out of a million attempts: real but negligible.
	feedConflicts(db, 0, "k", store.OpAdd, 20)
	setAttempts(db, 0, 1_000_000)
	if set := db.decideNextSplit(); set.size() != 0 {
		t.Fatalf("split set %v", set.keyNames())
	}
}

func TestClassifierRefusesReadDominatedKey(t *testing.T) {
	db := manualDB(1)
	defer db.Close()
	feedConflicts(db, 0, "k", store.OpAdd, 20)
	feedConflicts(db, 0, "k", store.OpGet, 100) // reads conflict 5x more
	setAttempts(db, 0, 400)
	if set := db.decideNextSplit(); set.size() != 0 {
		t.Fatalf("read-dominated key split: %v", set.keyNames())
	}
}

func TestClassifierRefusesUnsplittableConflicts(t *testing.T) {
	db := manualDB(1)
	defer db.Close()
	feedConflicts(db, 0, "k", store.OpPut, 200)
	setAttempts(db, 0, 400)
	if set := db.decideNextSplit(); set.size() != 0 {
		t.Fatalf("Put-contended key split: %v", set.keyNames())
	}
}

func TestClassifierMaxSplitKeysCap(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.PhaseLength = 0
	cfg.MaxSplitKeys = 3
	db := Open(store.New(), cfg)
	defer db.Close()
	for i := 0; i < 10; i++ {
		feedConflicts(db, 0, fmt.Sprintf("k%d", i), store.OpAdd, 20+i)
	}
	setAttempts(db, 0, 100)
	set := db.decideNextSplit()
	if set.size() != 3 {
		t.Fatalf("cap not applied: %v", set.keyNames())
	}
	// The most conflicted keys win.
	for _, k := range []string{"k9", "k8", "k7"} {
		if set.lookup(k) == nil {
			t.Fatalf("expected %s in %v", k, set.keyNames())
		}
	}
}

func TestClassifierDemotesColdKey(t *testing.T) {
	db := manualDB(1)
	defer db.Close()
	// Promote.
	feedConflicts(db, 0, "k", store.OpAdd, 100)
	setAttempts(db, 0, 200)
	if set := db.decideNextSplit(); set.size() != 1 {
		t.Fatal("promotion failed")
	}
	// One split phase passes with almost no writes: demote.
	db.workers[0].statsMu.Lock()
	db.workers[0].splitWrites["k"] = 1
	db.workers[0].statsMu.Unlock()
	setAttempts(db, 0, 200)
	if set := db.decideNextSplit(); set.size() != 0 {
		t.Fatalf("cold key kept split: %v", set.keyNames())
	}
}

func TestClassifierKeepsHotKey(t *testing.T) {
	db := manualDB(1)
	defer db.Close()
	feedConflicts(db, 0, "k", store.OpAdd, 100)
	setAttempts(db, 0, 200)
	if set := db.decideNextSplit(); set.size() != 1 {
		t.Fatal("promotion failed")
	}
	// Heavy split-phase writes, few stashes: stays split even with no
	// new joined-phase conflicts (split keys cannot conflict, §5.5).
	db.workers[0].statsMu.Lock()
	db.workers[0].splitWrites["k"] = 5000
	db.workers[0].statsMu.Unlock()
	setAttempts(db, 0, 200)
	if set := db.decideNextSplit(); set.size() != 1 {
		t.Fatal("hot key demoted")
	}
}

func TestClassifierDemotesStashDominatedKey(t *testing.T) {
	db := manualDB(1)
	defer db.Close()
	feedConflicts(db, 0, "k", store.OpAdd, 100)
	setAttempts(db, 0, 200)
	if set := db.decideNextSplit(); set.size() != 1 {
		t.Fatal("promotion failed")
	}
	w := db.workers[0]
	w.statsMu.Lock()
	w.splitWrites["k"] = 100
	oc := &opCounts{}
	oc[store.OpGet] = 500 // reads stashed 5x the writes
	w.splitStashes["k"] = oc
	w.statsMu.Unlock()
	setAttempts(db, 0, 200)
	if set := db.decideNextSplit(); set.size() != 0 {
		t.Fatalf("stash-dominated key kept: %v", set.keyNames())
	}
}

func TestClassifierSwitchesSelectedOp(t *testing.T) {
	db := manualDB(1)
	defer db.Close()
	feedConflicts(db, 0, "k", store.OpAdd, 100)
	setAttempts(db, 0, 200)
	set := db.decideNextSplit()
	if set.lookup("k").op != store.OpAdd {
		t.Fatal("initial op")
	}
	// During the split phase most traffic wanted Max, not Add.
	w := db.workers[0]
	w.statsMu.Lock()
	w.splitWrites["k"] = 50
	oc := &opCounts{}
	oc[store.OpMax] = 120
	w.splitStashes["k"] = oc
	w.statsMu.Unlock()
	setAttempts(db, 0, 200)
	set = db.decideNextSplit()
	if set.size() != 1 || set.lookup("k").op != store.OpMax {
		t.Fatalf("op not switched: %v", set.keyNames())
	}
}

func TestClassifierDisableAutoSplit(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.PhaseLength = 0
	cfg.DisableAutoSplit = true
	db := Open(store.New(), cfg)
	defer db.Close()
	feedConflicts(db, 0, "k", store.OpAdd, 1000)
	setAttempts(db, 0, 1000)
	if set := db.decideNextSplit(); set.size() != 0 {
		t.Fatal("auto split despite disable")
	}
	db.SplitHint("m", store.OpMax)
	if set := db.decideNextSplit(); set.size() != 1 || set.lookup("m") == nil {
		t.Fatal("hint ignored")
	}
}

func TestClassifierNewPromotionNotInstantlyDemoted(t *testing.T) {
	// A key promoted in this decision round has no split-phase write
	// data yet; it must survive the next decision round's demotion scan
	// only if it went through a split phase. Simulate: promote, then
	// decide again with no split-phase data at all (no split phase ran).
	db := manualDB(1)
	defer db.Close()
	feedConflicts(db, 0, "k", store.OpAdd, 100)
	setAttempts(db, 0, 200)
	if set := db.decideNextSplit(); set.size() != 1 {
		t.Fatal("promotion failed")
	}
	// lastSplit now records k; a second decide with zero split write
	// data should demote (the split phase happened, nothing was
	// written). That is correct cold-key behaviour. But if the split
	// phase never ran (lastSplit cleared), the key must be kept.
	db.classMu.Lock()
	db.lastSplit = map[string]bool{}
	db.classMu.Unlock()
	setAttempts(db, 0, 10)
	if set := db.decideNextSplit(); set.size() != 1 {
		t.Fatal("promotion demoted without split-phase evidence")
	}
}

// TestEndToEndAutoSplitUnderContention drives real contention through
// the engine with the classifier in control: two workers, interleaved at
// the transaction level by running on the same goroutine, cannot
// conflict, so we inject conflicts via a read-modify-write race pattern:
// worker 1 commits writes between worker 0's read and commit.
func TestEndToEndAutoSplitUnderContention(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.PhaseLength = 0
	cfg.SplitMinConflicts = 5
	cfg.SplitFraction = 0.001
	db := Open(store.New(), cfg)
	defer db.Close()
	db.Store().Preload("hot", store.IntValue(0))

	// Manufacture real OCC conflicts on "hot".
	for i := 0; i < 20; i++ {
		out, err := db.Attempt(0, func(tx engine.Tx) error {
			if err := tx.Add("hot", 1); err != nil {
				return err
			}
			// Interleaved committer.
			mustCommit(t, db, 1, func(tx2 engine.Tx) error { return tx2.Add("hot", 1) })
			return nil
		}, time.Now().UnixNano())
		if err != nil {
			t.Fatal(err)
		}
		if out != engine.Aborted {
			t.Fatalf("iteration %d: expected abort, got %v", i, out)
		}
	}
	if !db.RequestSplitPhase() {
		t.Fatal("classifier did not split the contended key")
	}
	db.Poll(0)
	db.Poll(1)
	if db.Phase() != PhaseSplit {
		t.Fatal("not split")
	}
	keys := db.SplitKeys()
	if len(keys) != 1 || keys[0] != "hot" {
		t.Fatalf("split keys %v", keys)
	}
}
