package core

// Commit-fence behavior of the core commit path: a record fenced by an
// in-flight cross-shard commit aborts every transaction that touches it
// with AbortedFenced — writers at lock time, readers at validation —
// except the fence's owner, which declares its token via engine.FenceTx.

import (
	"testing"

	"doppel/internal/engine"
	"doppel/internal/store"
)

func openFenceDB(t *testing.T) (*DB, *store.Store) {
	t.Helper()
	st := store.New()
	st.Preload("fenced", store.IntValue(10))
	st.Preload("free", store.IntValue(0))
	cfg := DefaultConfig(1)
	cfg.PhaseLength = 0
	db := Open(st, cfg)
	t.Cleanup(db.Close)
	return db, st
}

func TestFencedRecordAbortsWriters(t *testing.T) {
	db, st := openFenceDB(t)
	rec := st.Get("fenced")
	if !rec.Fence(99) {
		t.Fatal("Fence failed")
	}
	defer rec.Unfence(99)

	out, err := db.Attempt(0, func(tx engine.Tx) error {
		return tx.PutInt("fenced", 1)
	}, 0)
	if err != nil || out != engine.AbortedFenced {
		t.Fatalf("write to fenced record: outcome %v err %v, want AbortedFenced", out, err)
	}
	// An unfenced key on the same shard is unaffected.
	out, err = db.Attempt(0, func(tx engine.Tx) error {
		return tx.PutInt("free", 1)
	}, 0)
	if err != nil || out != engine.Committed {
		t.Fatalf("write to free record: outcome %v err %v, want Committed", out, err)
	}
	// The abort is counted as a fence abort, not a conflict.
	if s := db.WorkerStats(0); s.FenceAborts == 0 || s.Aborted != 0 {
		t.Fatalf("stats fence_aborts=%d aborted=%d, want >0 and 0", s.FenceAborts, s.Aborted)
	}
}

func TestFencedRecordAbortsReaders(t *testing.T) {
	db, st := openFenceDB(t)
	rec := st.Get("fenced")
	if !rec.Fence(99) {
		t.Fatal("Fence failed")
	}
	defer rec.Unfence(99)

	out, err := db.Attempt(0, func(tx engine.Tx) error {
		_, gerr := tx.GetInt("fenced")
		return gerr
	}, 0)
	if err != nil || out != engine.AbortedFenced {
		t.Fatalf("read of fenced record: outcome %v err %v, want AbortedFenced", out, err)
	}
}

func TestFenceOwnerPasses(t *testing.T) {
	db, st := openFenceDB(t)
	rec := st.Get("fenced")
	if !rec.Fence(99) {
		t.Fatal("Fence failed")
	}
	defer rec.Unfence(99)

	// The owner — the cross-shard apply transaction — reads and writes
	// its own fenced record through the normal commit protocol.
	out, err := db.Attempt(0, func(tx engine.Tx) error {
		tx.(engine.FenceTx).SetFenceToken(99)
		n, gerr := tx.GetInt("fenced")
		if gerr != nil {
			return gerr
		}
		return tx.PutInt("fenced", n+5)
	}, 0)
	if err != nil || out != engine.Committed {
		t.Fatalf("owner commit: outcome %v err %v, want Committed", out, err)
	}
	var got int64
	rec.Unfence(99)
	out, err = db.Attempt(0, func(tx engine.Tx) error {
		n, gerr := tx.GetInt("fenced")
		got = n
		return gerr
	}, 0)
	if err != nil || out != engine.Committed || got != 15 {
		t.Fatalf("post-release read: outcome %v err %v got %d, want Committed 15", out, err, got)
	}
}

func TestFenceTokenClearsBetweenTransactions(t *testing.T) {
	db, st := openFenceDB(t)
	rec := st.Get("fenced")
	if !rec.Fence(99) {
		t.Fatal("Fence failed")
	}
	defer rec.Unfence(99)

	out, err := db.Attempt(0, func(tx engine.Tx) error {
		tx.(engine.FenceTx).SetFenceToken(99)
		return tx.PutInt("fenced", 1)
	}, 0)
	if err != nil || out != engine.Committed {
		t.Fatalf("owner commit: outcome %v err %v", out, err)
	}
	// The next transaction on the same worker must NOT inherit the
	// token: tx.reset clears it, or every later transaction on this
	// worker would sail through foreign fences.
	out, err = db.Attempt(0, func(tx engine.Tx) error {
		return tx.PutInt("fenced", 2)
	}, 0)
	if err != nil || out != engine.AbortedFenced {
		t.Fatalf("token leaked across transactions: outcome %v err %v, want AbortedFenced", out, err)
	}
}
