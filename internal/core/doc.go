// Package core implements Doppel, the phase reconciliation engine of
// the paper (§5): a serializable in-memory transaction system that
// cycles through joined, split and reconciliation phases. Joined phases
// run Silo-style OCC for all records; split phases route the selected
// commutative operation on contended records to per-core slices; short
// reconciliation phases merge the slices back into the global store.
// The classifier (classifier.go, §5.5) decides which records split.
//
// # The phase-transition protocol
//
// The engine is driven through the engine.Engine interface: worker w
// must be driven from a single goroutine that calls Attempt/Poll
// regularly so the worker can participate in phase transitions. The
// coordinator goroutine only proposes transitions (publishing one
// in-flight *transition at a time); workers notice it between
// transactions, perform their pre-transition duty — reconciling their
// slices when leaving a split phase — and acknowledge. The last
// acknowledger installs the new phase and releases everyone (§5.4).
// Consequently every transaction executes entirely within one phase,
// and no commit is ever in flight while a transition completes.
//
// # Barriers and durability
//
// RequestBarrier reuses this machinery to run a function at the
// quiesced boundary (all workers paused, slices reconciled, no commit
// in flight) — the point checkpoints cut at. The barrier body is O(1):
// it rotates the redo log and starts a copy-on-write capture; the
// store walk happens after workers resume. To keep captures exact,
// every value/TID install on the global store goes through
// store.SaveBeforeWrite while the record's commit lock is held (see
// Tx.commit and Worker.reconcile).
//
// # TID invariant
//
// Commit TIDs are per-key monotone: genTID produces a TID above every
// TID the transaction observed, and reconciliation merges bump the
// record's TID the same way. Redo records are submitted to the logger
// while the commit lock is held, so the log's per-key order matches
// commit order — the property recovery's highest-TID-wins replay
// depends on.
package core
