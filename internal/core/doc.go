// Package core implements Doppel, the phase reconciliation engine of
// the paper (§5): a serializable in-memory transaction system that
// cycles through joined, split and reconciliation phases. Joined phases
// run Silo-style OCC for all records; split phases route the selected
// commutative operation on contended records to per-core slices; short
// reconciliation phases merge the slices back into the global store.
// The classifier (classifier.go, §5.5) decides which records split.
//
// # The phase-transition protocol
//
// The engine is driven through the engine.Engine interface: worker w
// must be driven from a single goroutine that calls Attempt/Poll
// regularly so the worker can participate in phase transitions. The
// coordinator goroutine only proposes transitions (publishing one
// in-flight *transition at a time); workers notice it between
// transactions, perform their pre-transition duty — reconciling their
// slices when leaving a split phase — and acknowledge. The last
// acknowledger installs the new phase and releases everyone (§5.4).
// Consequently every transaction executes entirely within one phase,
// and no commit is ever in flight while a transition completes.
//
// # Barriers and durability
//
// RequestBarrier reuses this machinery to run a function at the
// quiesced boundary (all workers paused, slices reconciled, no commit
// in flight) — the point checkpoints cut at. The barrier body is O(1):
// it rotates the redo log and starts a copy-on-write capture; the
// store walk happens after workers resume. To keep captures exact,
// every value/TID install on the global store goes through
// store.SaveBeforeWrite while the record's commit lock is held (see
// Tx.commit and Worker.reconcile).
//
// # TID layout and invariant
//
// A commit TID is one 64-bit word:
//
//	bits 63..8   sequence number (strictly increasing per worker,
//	             bumped past every TID the transaction observed)
//	bits  7..0   worker ID
//
// (store.Record additionally shifts the whole TID left one bit to make
// room for its commit-lock bit; that is the record's concern, not this
// package's.) The 8-bit worker field is why Config.Workers is capped at
// MaxWorkers (256): a 257th worker would alias worker 0 and could mint
// a TID another worker already used, breaking the uniqueness that
// recovery's highest-TID-wins replay assumes. The worker field holds
// Config.WorkerIDBase + the local worker index: a sharded deployment
// assigns each shard instance a disjoint base so every shard shares one
// TID clock domain — the cap then applies to the cluster's total worker
// count, not each instance's.
//
// Commit TIDs are per-key monotone: genTID produces a TID above every
// TID the transaction observed, and reconciliation merges bump the
// record's TID the same way (a merge that fails — incompatible types —
// installs nothing and keeps the old TID, so readers are not
// invalidated for a write that never happened). Redo records are
// submitted to the logger while the commit lock is held, so the log's
// per-key order matches commit order — the property recovery's
// highest-TID-wins replay depends on.
//
// # Durability failure semantics
//
// Logging is asynchronous: commits acknowledge before their redo
// records are durable. Workers encode each record into per-worker
// scratch buffers (no allocation in steady state) and the logger's
// LSN/watermark contract (wal.Logger.Durable) is how durability is
// observed after the fact. When the logger fails terminally it refuses
// all further records; with Config.WALFailStop the engine then also
// refuses to execute new transactions (fail-stop), otherwise commits
// continue in memory and the gap is visible only through the logger's
// Err.
package core
