package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"doppel/internal/engine"
	"doppel/internal/rng"
	"doppel/internal/store"
)

// manualDB opens a DB with the coordinator disabled so tests control
// phases deterministically.
func manualDB(workers int) *DB {
	cfg := DefaultConfig(workers)
	cfg.PhaseLength = 0
	return Open(store.New(), cfg)
}

// run executes fn on worker w, stepping through Paused outcomes.
func run(t *testing.T, db *DB, w int, fn engine.TxFunc) engine.Outcome {
	t.Helper()
	for i := 0; i < 1000; i++ {
		out, err := db.Attempt(w, fn, time.Now().UnixNano())
		if err != nil {
			t.Fatalf("attempt: %v", err)
		}
		if out != engine.Paused {
			return out
		}
	}
	t.Fatal("worker paused forever")
	return engine.Paused
}

func mustCommit(t *testing.T, db *DB, w int, fn engine.TxFunc) {
	t.Helper()
	for i := 0; i < 10000; i++ {
		if run(t, db, w, fn) == engine.Committed {
			return
		}
	}
	t.Fatal("never committed")
}

func TestJoinedPhaseBasics(t *testing.T) {
	db := manualDB(1)
	defer db.Close()
	if db.Phase() != PhaseJoined {
		t.Fatal("must start joined")
	}
	mustCommit(t, db, 0, func(tx engine.Tx) error {
		if err := tx.PutInt("a", 5); err != nil {
			return err
		}
		return tx.Add("a", 2)
	})
	mustCommit(t, db, 0, func(tx engine.Tx) error {
		n, err := tx.GetInt("a")
		if err != nil {
			return err
		}
		if n != 7 {
			return fmt.Errorf("got %d", n)
		}
		return nil
	})
	if db.Name() != "doppel" || db.Workers() != 1 {
		t.Fatal("metadata")
	}
}

func TestManualSplitAddAndStash(t *testing.T) {
	db := manualDB(1)
	defer db.Close()
	db.Store().Preload("hot", store.IntValue(100))
	db.SplitHint("hot", store.OpAdd)

	if !db.RequestSplitPhase() {
		t.Fatal("split phase refused")
	}
	db.Poll(0) // single worker completes the transition itself
	if db.Phase() != PhaseSplit {
		t.Fatalf("phase %v", db.Phase())
	}

	// Adds go to the per-core slice.
	for i := 0; i < 10; i++ {
		if out := run(t, db, 0, func(tx engine.Tx) error { return tx.Add("hot", 1) }); out != engine.Committed {
			t.Fatalf("split add outcome %v", out)
		}
	}
	// The global store must NOT have changed yet.
	if n, _ := db.Store().Get("hot").Value().AsInt(); n != 100 {
		t.Fatalf("global changed during split phase: %d", n)
	}

	// A read of split data stashes.
	sawRead := int64(-1)
	out := run(t, db, 0, func(tx engine.Tx) error {
		n, err := tx.GetInt("hot")
		if err != nil {
			return err
		}
		sawRead = n
		return nil
	})
	if out != engine.Stashed {
		t.Fatalf("read of split data: %v", out)
	}
	// A Put to split data stashes.
	if out := run(t, db, 0, func(tx engine.Tx) error { return tx.PutInt("hot", 0) }); out != engine.Stashed {
		t.Fatalf("put to split data: %v", out)
	}
	// A different splittable op stashes too (only one selected op).
	if out := run(t, db, 0, func(tx engine.Tx) error { return tx.Max("hot", 5) }); out != engine.Stashed {
		t.Fatalf("max on add-split data: %v", out)
	}

	// Back to joined: reconciliation merges the slice, then the stash
	// drains (read sees merged value, put applies, max applies).
	if !db.RequestJoinedPhase() {
		t.Fatal("joined phase refused")
	}
	db.Poll(0)
	if db.Phase() != PhaseJoined {
		t.Fatalf("phase %v", db.Phase())
	}
	// Stashed read ran during drain and saw the reconciled value 110.
	if sawRead != 110 {
		t.Fatalf("stashed read saw %d, want 110", sawRead)
	}
	// Stashed Put(0) then Max(5) applied in order.
	mustCommit(t, db, 0, func(tx engine.Tx) error {
		n, err := tx.GetInt("hot")
		if err != nil {
			return err
		}
		if n != 5 {
			return fmt.Errorf("final %d, want 5", n)
		}
		return nil
	})
	st := db.WorkerStats(0)
	// Each stashed transaction committed on its first replay, which is
	// its normal completion — not a retry.
	if st.Stashed != 3 || st.Retries != 0 {
		t.Fatalf("stash accounting: stashed=%d retries=%d", st.Stashed, st.Retries)
	}
}

func TestSplitPhaseMaxMinMultOPutTopK(t *testing.T) {
	db := manualDB(2)
	defer db.Close()
	for _, k := range []string{"mx", "mn", "ml"} {
		db.Store().Preload(k, store.IntValue(10))
	}
	db.SplitHint("mx", store.OpMax)
	db.SplitHint("mn", store.OpMin)
	db.SplitHint("ml", store.OpMult)
	db.SplitHint("op", store.OpOPut)
	db.SplitHint("tk", store.OpTopKInsert)

	if !db.RequestSplitPhase() {
		t.Fatal("split refused")
	}
	db.Poll(0)
	db.Poll(1)
	if db.Phase() != PhaseSplit {
		t.Fatal("not split")
	}
	for w := 0; w < 2; w++ {
		w := w
		mustCommit(t, db, w, func(tx engine.Tx) error {
			if err := tx.Max("mx", int64(20+w)); err != nil {
				return err
			}
			if err := tx.Min("mn", int64(3-w)); err != nil {
				return err
			}
			if err := tx.Mult("ml", int64(2+w)); err != nil {
				return err
			}
			if err := tx.OPut("op", store.Order{A: int64(w)}, []byte(fmt.Sprintf("w%d", w))); err != nil {
				return err
			}
			return tx.TopKInsert("tk", int64(w), []byte(fmt.Sprintf("t%d", w)), 3)
		})
	}
	db.RequestJoinedPhase()
	db.Poll(0)
	db.Poll(1)
	mustCommit(t, db, 0, func(tx engine.Tx) error {
		if n, _ := tx.GetInt("mx"); n != 21 {
			return fmt.Errorf("max %d", n)
		}
		if n, _ := tx.GetInt("mn"); n != 2 {
			return fmt.Errorf("min %d", n)
		}
		if n, _ := tx.GetInt("ml"); n != 60 {
			return fmt.Errorf("mult %d", n)
		}
		tp, ok, _ := tx.GetTuple("op")
		if !ok || string(tp.Data) != "w1" {
			return fmt.Errorf("oput %v %v", tp, ok)
		}
		es, _ := tx.GetTopK("tk")
		if len(es) != 2 || es[0].Order != 1 {
			return fmt.Errorf("topk %v", es)
		}
		return nil
	})
}

func TestNonSplitKeysNormalDuringSplitPhase(t *testing.T) {
	db := manualDB(1)
	defer db.Close()
	db.SplitHint("hot", store.OpAdd)
	db.RequestSplitPhase()
	db.Poll(0)
	// Ordinary records still work with full OCC semantics in the split
	// phase.
	mustCommit(t, db, 0, func(tx engine.Tx) error {
		if err := tx.PutInt("cold", 9); err != nil {
			return err
		}
		n, err := tx.GetInt("cold")
		if err != nil {
			return err
		}
		if n != 9 {
			return fmt.Errorf("cold %d", n)
		}
		return tx.Add("hot", 1) // split write alongside normal writes
	})
	db.RequestJoinedPhase()
	db.Poll(0)
	mustCommit(t, db, 0, func(tx engine.Tx) error {
		if n, _ := tx.GetInt("hot"); n != 1 {
			return fmt.Errorf("hot %d", n)
		}
		if n, _ := tx.GetInt("cold"); n != 9 {
			return fmt.Errorf("cold %d", n)
		}
		return nil
	})
}

func TestAbortedSplitTxnHasNoSliceEffects(t *testing.T) {
	db := manualDB(2)
	defer db.Close()
	db.Store().Preload("cold", store.IntValue(0))
	db.SplitHint("hot", store.OpAdd)
	db.RequestSplitPhase()
	db.Poll(0)
	db.Poll(1)

	// Worker 0 reads "cold" then writes split "hot"; between its read and
	// commit, worker 1 updates "cold", forcing worker 0 to abort. The
	// slice write must not survive the abort.
	out := run(t, db, 0, func(tx engine.Tx) error {
		if _, err := tx.GetInt("cold"); err != nil {
			return err
		}
		if err := tx.Add("hot", 100); err != nil {
			return err
		}
		mustCommit(t, db, 1, func(tx2 engine.Tx) error { return tx2.PutInt("cold", 1) })
		return nil
	})
	if out != engine.Aborted {
		t.Fatalf("expected abort, got %v", out)
	}
	db.RequestJoinedPhase()
	db.Poll(0)
	db.Poll(1)
	mustCommit(t, db, 0, func(tx engine.Tx) error {
		if n, _ := tx.GetInt("hot"); n != 0 {
			return fmt.Errorf("aborted slice write leaked: %d", n)
		}
		return nil
	})
}

func TestUserAbortInSplitPhase(t *testing.T) {
	db := manualDB(1)
	defer db.Close()
	db.SplitHint("hot", store.OpAdd)
	db.RequestSplitPhase()
	db.Poll(0)
	boom := errors.New("boom")
	out, err := db.Attempt(0, func(tx engine.Tx) error {
		_ = tx.Add("hot", 7)
		return boom
	}, time.Now().UnixNano())
	if out != engine.UserAbort || !errors.Is(err, boom) {
		t.Fatalf("%v %v", out, err)
	}
	db.RequestJoinedPhase()
	db.Poll(0)
	mustCommit(t, db, 0, func(tx engine.Tx) error {
		if n, _ := tx.GetInt("hot"); n != 0 {
			return fmt.Errorf("user-aborted slice write leaked: %d", n)
		}
		return nil
	})
}

func TestCloseReconcilesAndDrains(t *testing.T) {
	db := manualDB(1)
	db.Store().Preload("hot", store.IntValue(0))
	db.SplitHint("hot", store.OpAdd)
	db.RequestSplitPhase()
	db.Poll(0)
	mustCommit(t, db, 0, func(tx engine.Tx) error { return tx.Add("hot", 5) })
	var stashedRead int64 = -1
	out := run(t, db, 0, func(tx engine.Tx) error {
		n, err := tx.GetInt("hot")
		stashedRead = n
		return err
	})
	if out != engine.Stashed {
		t.Fatalf("outcome %v", out)
	}
	// Close while still in the split phase: it must reconcile the slice
	// and run the stashed read.
	db.Close()
	if n, _ := db.Store().Get("hot").Value().AsInt(); n != 5 {
		t.Fatalf("close did not reconcile: %d", n)
	}
	if stashedRead != 5 {
		t.Fatalf("stashed read not drained: %d", stashedRead)
	}
	if db.Phase() != PhaseJoined {
		t.Fatal("close should end joined")
	}
	db.Close() // idempotent
}

func TestCloseCompletesInflightTransition(t *testing.T) {
	db := manualDB(2)
	db.SplitHint("hot", store.OpAdd)
	db.RequestSplitPhase()
	db.Poll(0) // worker 0 acks; worker 1 never does
	if db.Phase() != PhaseJoined {
		t.Fatal("transition should be incomplete")
	}
	db.Close()
	if db.Phase() != PhaseJoined {
		t.Fatal("close must settle in joined phase")
	}
}

func TestPausedWhileTransitionPending(t *testing.T) {
	db := manualDB(2)
	defer db.Close()
	db.SplitHint("h", store.OpAdd)
	db.RequestSplitPhase()
	// Worker 0 acks; transition still pending (worker 1 silent), so
	// worker 0 must observe Paused rather than executing.
	out, err := db.Attempt(0, func(tx engine.Tx) error { return nil }, time.Now().UnixNano())
	if err != nil || out != engine.Paused {
		t.Fatalf("%v %v", out, err)
	}
	// Worker 1 acks and completes; both can run now.
	db.Poll(1)
	if db.Phase() != PhaseSplit {
		t.Fatal("transition incomplete after all acks")
	}
	if out := run(t, db, 0, func(tx engine.Tx) error { return tx.Add("h", 1) }); out != engine.Committed {
		t.Fatalf("after release: %v", out)
	}
}

// TestConcurrentHotAddNoLostUpdates is the headline invariant: with the
// coordinator cycling phases, concurrent increments of one hot key from
// many workers must all be reflected after Close (no updates lost across
// split/reconcile cycles).
func TestConcurrentHotAddNoLostUpdates(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.PhaseLength = 2 * time.Millisecond
	cfg.SplitMinConflicts = 2
	cfg.SplitFraction = 0.001
	db := Open(store.New(), cfg)
	db.Store().Preload("hot", store.IntValue(0))

	const perWorker = 20000
	var wg sync.WaitGroup
	var quota sync.WaitGroup
	var stopPolling atomic.Bool
	var committed atomic.Int64
	for w := 0; w < 4; w++ {
		wg.Add(1)
		quota.Add(1)
		go func(w int) {
			defer wg.Done()
			done := 0
			for done < perWorker {
				out, err := db.Attempt(w, func(tx engine.Tx) error {
					return tx.Add("hot", 1)
				}, time.Now().UnixNano())
				if err != nil {
					t.Error(err)
					break
				}
				switch out {
				case engine.Committed, engine.Stashed:
					// Stashed adds will commit during a later drain;
					// count them as submitted work.
					done++
					committed.Add(1)
				}
			}
			// Keep participating in phase transitions until every
			// worker finishes, else the others stall.
			quota.Done()
			for !stopPolling.Load() {
				db.Poll(w)
			}
		}(w)
	}
	quota.Wait()
	stopPolling.Store(true)
	wg.Wait()
	db.Close()
	final, _ := db.Store().Get("hot").Value().AsInt()
	if final != committed.Load() {
		t.Fatalf("lost updates: final=%d committed=%d", final, committed.Load())
	}
	if final != 4*perWorker {
		t.Fatalf("final=%d want %d", final, 4*perWorker)
	}
}

// TestConcurrentMixedWorkloadWithCoordinator mixes reads and writes of a
// hot key under automatic phase cycling and checks conservation.
func TestConcurrentMixedWorkloadWithCoordinator(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.PhaseLength = 2 * time.Millisecond
	cfg.SplitMinConflicts = 2
	cfg.SplitFraction = 0.001
	db := Open(store.New(), cfg)
	db.Store().Preload("page", store.IntValue(0))
	for u := 0; u < 100; u++ {
		db.Store().Preload(fmt.Sprintf("user%d", u), store.IntValue(0))
	}

	var adds atomic.Int64
	var wg sync.WaitGroup
	var quota sync.WaitGroup
	var stopPolling atomic.Bool
	for w := 0; w < 4; w++ {
		wg.Add(1)
		quota.Add(1)
		go func(w int) {
			defer wg.Done()
			defer func() {
				quota.Done()
				for !stopPolling.Load() {
					db.Poll(w)
				}
			}()
			r := rng.New(uint64(w) + 31)
			for i := 0; i < 8000; i++ {
				user := fmt.Sprintf("user%d", r.Intn(100))
				if r.Bool(0.5) {
					out, err := db.Attempt(w, func(tx engine.Tx) error {
						if err := tx.PutInt(user, int64(i)); err != nil {
							return err
						}
						return tx.Add("page", 1)
					}, time.Now().UnixNano())
					if err != nil {
						t.Error(err)
						return
					}
					if out == engine.Committed || out == engine.Stashed {
						adds.Add(1)
					}
				} else {
					// Read transaction; may stash or abort, both fine.
					_, err := db.Attempt(w, func(tx engine.Tx) error {
						if _, err := tx.GetInt("page"); err != nil {
							return err
						}
						_, err := tx.GetInt(user)
						return err
					}, time.Now().UnixNano())
					if err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	quota.Wait()
	stopPolling.Store(true)
	wg.Wait()
	db.Close()
	final, _ := db.Store().Get("page").Value().AsInt()
	if final != adds.Load() {
		t.Fatalf("page count %d != committed adds %d", final, adds.Load())
	}
}

func TestPhaseStringAndOutcomeString(t *testing.T) {
	if PhaseJoined.String() != "joined" || PhaseSplit.String() != "split" {
		t.Fatal("phase strings")
	}
	for o := engine.Committed; o <= engine.Paused+1; o++ {
		if o.String() == "" {
			t.Fatal("outcome string")
		}
	}
}

func TestSplitHintValidation(t *testing.T) {
	db := manualDB(1)
	defer db.Close()
	db.SplitHint("k", store.OpPut) // not splittable; ignored
	if db.RequestSplitPhase() {
		t.Fatal("split phase with no valid hints should be refused")
	}
	db.SplitHint("k", store.OpAdd)
	db.ClearSplitHint("k")
	if db.RequestSplitPhase() {
		t.Fatal("cleared hint should not split")
	}
}

func TestSplitKeysReporting(t *testing.T) {
	db := manualDB(1)
	defer db.Close()
	db.SplitHint("a", store.OpAdd)
	db.SplitHint("b", store.OpMax)
	db.RequestSplitPhase()
	db.Poll(0)
	keys := db.SplitKeys()
	if len(keys) != 2 {
		t.Fatalf("split keys %v", keys)
	}
	if db.PhaseChanges() == 0 {
		t.Fatal("phase changes not counted")
	}
}

func TestReconcileBumpsTIDForValidation(t *testing.T) {
	// A joined-phase reader that read a key before it was split must
	// fail validation if reconciliation changed the value.
	db := manualDB(2)
	defer db.Close()
	db.Store().Preload("k", store.IntValue(0))
	rec := db.Store().Get("k")
	tidBefore, _ := rec.TIDWord()

	db.SplitHint("k", store.OpAdd)
	db.RequestSplitPhase()
	db.Poll(0)
	db.Poll(1)
	mustCommit(t, db, 0, func(tx engine.Tx) error { return tx.Add("k", 3) })
	db.RequestJoinedPhase()
	db.Poll(0)
	db.Poll(1)

	tidAfter, _ := rec.TIDWord()
	if tidAfter <= tidBefore {
		t.Fatalf("reconcile did not advance TID: %d -> %d", tidBefore, tidAfter)
	}
	if n, _ := rec.Value().AsInt(); n != 3 {
		t.Fatalf("reconcile value %d", n)
	}
}

// TestRequestBarrier: the barrier function runs exactly once, at a point
// where every worker is paused, and the database continues normally
// afterwards — including a joined→joined barrier, which is not a normal
// phase transition.
func TestRequestBarrier(t *testing.T) {
	db := manualDB(2)
	defer db.Close()
	mustCommit(t, db, 0, func(tx engine.Tx) error { return tx.PutInt("a", 1) })

	var calls atomic.Int32
	if !db.RequestBarrier(func() { calls.Add(1) }) {
		t.Fatal("barrier refused")
	}
	if db.RequestBarrier(func() {}) {
		t.Fatal("second barrier accepted while one is in flight")
	}
	for i := 0; i < 1000 && calls.Load() == 0; i++ {
		db.Poll(0)
		db.Poll(1)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("barrier ran %d times, want 1", got)
	}
	if db.Phase() != PhaseJoined {
		t.Fatalf("phase %v after barrier", db.Phase())
	}
	mustCommit(t, db, 0, func(tx engine.Tx) error { return tx.PutInt("a", 2) })
}

// TestRequestBarrierDuringSplitReconciles: a barrier cut during a split
// phase must observe fully reconciled state — the per-core slices merge
// before the barrier function runs.
func TestRequestBarrierDuringSplitReconciles(t *testing.T) {
	db := manualDB(2)
	defer db.Close()
	db.Store().Preload("hot", store.IntValue(0))
	db.SplitHint("hot", store.OpAdd)
	if !db.RequestSplitPhase() {
		t.Fatal("split refused")
	}
	db.Poll(0)
	db.Poll(1)
	if db.Phase() != PhaseSplit {
		t.Fatal("not split")
	}
	for w := 0; w < 2; w++ {
		for i := 0; i < 10; i++ {
			mustCommit(t, db, w, func(tx engine.Tx) error { return tx.Add("hot", 1) })
		}
	}
	var atBarrier int64 = -1
	if !db.RequestBarrier(func() {
		atBarrier, _ = db.Store().Get("hot").Value().AsInt()
	}) {
		t.Fatal("barrier refused")
	}
	for i := 0; i < 1000 && atBarrier < 0; i++ {
		db.Poll(0)
		db.Poll(1)
	}
	if atBarrier != 20 {
		t.Fatalf("barrier saw %d, want 20 (slices reconciled)", atBarrier)
	}
	if db.Phase() != PhaseJoined {
		t.Fatal("barrier must land in a joined phase")
	}
}

// TestBarrierCompletedByClose: a published barrier whose workers are
// never polled still runs during Close's quiesce.
func TestBarrierCompletedByClose(t *testing.T) {
	db := manualDB(2)
	var calls atomic.Int32
	if !db.RequestBarrier(func() { calls.Add(1) }) {
		t.Fatal("barrier refused")
	}
	db.Close()
	if got := calls.Load(); got != 1 {
		t.Fatalf("barrier ran %d times, want 1", got)
	}
}

// TestBarrierDoesNotPerturbPhaseAccounting: a joined→joined checkpoint
// barrier is not a phase change — it must not bump PhaseChanges or
// reset the phase clock, or frequent checkpoints would starve split
// phases by keeping the joined phase perpetually "young".
func TestBarrierDoesNotPerturbPhaseAccounting(t *testing.T) {
	db := manualDB(1)
	defer db.Close()
	before := db.PhaseChanges()
	startNs := db.phaseStartNs.Load()
	ran := false
	if !db.RequestBarrier(func() { ran = true }) {
		t.Fatal("barrier refused")
	}
	for i := 0; i < 1000 && !ran; i++ {
		db.Poll(0)
	}
	if !ran {
		t.Fatal("barrier never ran")
	}
	if got := db.PhaseChanges(); got != before {
		t.Fatalf("PhaseChanges %d → %d across a joined→joined barrier", before, got)
	}
	if db.phaseStartNs.Load() != startNs {
		t.Fatal("phase clock reset by a joined→joined barrier")
	}
}
