package core

import (
	"sort"

	"doppel/internal/store"
)

// candidate is a key the classifier is considering splitting.
type candidate struct {
	key       string
	op        store.OpKind
	conflicts uint64
}

// decideNextSplit implements §5.5: it aggregates the workers' conflict
// samples from the elapsed joined phase(s) and the write/stash samples
// from the last split phase, demotes split records that cooled off or are
// read-dominated, promotes the most-conflicted records whose conflicts
// come from a splittable operation, folds in manual hints, and returns
// the split set for the next split phase.
func (db *DB) decideNextSplit() *splitSet {
	cfg := &db.cfg

	// Aggregate and reset per-worker samples.
	agg := map[string]*opCounts{}
	splitWrites := map[string]uint64{}
	splitStashes := map[string]*opCounts{}
	var attempts uint64
	for _, w := range db.workers {
		attempts += w.attemptsWindow.Swap(0)
		w.statsMu.Lock()
		for k, oc := range w.conflicts {
			dst := agg[k]
			if dst == nil {
				dst = &opCounts{}
				agg[k] = dst
			}
			for i := range oc {
				dst[i] += oc[i]
			}
		}
		if len(w.conflicts) > 0 {
			w.conflicts = map[string]*opCounts{}
		}
		for k, n := range w.splitWrites {
			splitWrites[k] += n
		}
		if len(w.splitWrites) > 0 {
			w.splitWrites = map[string]uint64{}
		}
		for k, oc := range w.splitStashes {
			dst := splitStashes[k]
			if dst == nil {
				dst = &opCounts{}
				splitStashes[k] = dst
			}
			for i := range oc {
				dst[i] += oc[i]
			}
		}
		if len(w.splitStashes) > 0 {
			w.splitStashes = map[string]*opCounts{}
		}
		w.statsMu.Unlock()
	}

	db.classMu.Lock()
	defer db.classMu.Unlock()

	if !cfg.DisableAutoSplit {
		// Demotions: only keys that actually went through the last split
		// phase are judged, so a fresh promotion is not instantly
		// demoted for lack of data.
		for k := range db.curAssign {
			if _, hinted := db.hints[k]; hinted {
				continue
			}
			if !db.lastSplit[k] {
				continue
			}
			writes := splitWrites[k]
			stashes := total(splitStashes[k])
			keepFloor := uint64(cfg.KeepMinWrites)
			if rel := uint64(cfg.KeepWriteFraction * float64(attempts)); rel > keepFloor {
				keepFloor = rel
			}
			if writes < keepFloor ||
				float64(stashes) > cfg.ReadDominance*float64(writes) {
				delete(db.curAssign, k)
				continue
			}
			// Operation switching: if stashes are dominated by a single
			// splittable operation that outweighs the current one's
			// writes, reassign (§5.5: "or change its assigned
			// operation").
			if op, n := dominantSplittable(splitStashes[k]); op != store.OpNone && n > writes {
				db.curAssign[k] = op
			}
		}

		// Promotions from joined-phase conflict samples.
		scale := uint64(cfg.SampleRate)
		var cands []candidate
		for k, oc := range agg {
			if _, already := db.curAssign[k]; already {
				continue
			}
			op, splitConf := dominantSplittable(oc)
			if op == store.OpNone {
				continue
			}
			incompat := uint64(oc[store.OpGet]) + uint64(oc[store.OpPut])
			if splitConf < uint64(cfg.SplitMinConflicts) {
				continue
			}
			if float64(splitConf*scale) < cfg.SplitFraction*float64(attempts) {
				continue
			}
			if float64(incompat) > cfg.ReadDominance*float64(splitConf) {
				continue
			}
			cands = append(cands, candidate{k, op, splitConf})
		}
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].conflicts != cands[j].conflicts {
				return cands[i].conflicts > cands[j].conflicts
			}
			return cands[i].key < cands[j].key
		})
		for _, c := range cands {
			if len(db.curAssign) >= cfg.MaxSplitKeys {
				break
			}
			db.curAssign[c.key] = c.op
		}
	}

	// Manual hints always apply.
	for k, op := range db.hints {
		db.curAssign[k] = op
	}

	if len(db.curAssign) == 0 {
		db.lastSplit = map[string]bool{}
		return emptySplitSet
	}
	assign := make(map[string]store.OpKind, len(db.curAssign))
	db.lastSplit = make(map[string]bool, len(db.curAssign))
	for k, op := range db.curAssign {
		// Never split a key that currently carries a commit fence: an
		// in-flight cross-shard commit has validated the record, and
		// reconciliation merges slices without fence checks, so splitting
		// now could change the record inside the commit's prepare→apply
		// window. The assignment stays; the key is reconsidered at the
		// next phase change (fences live for microseconds). This early
		// skip is advisory — a fence can still land between here and
		// publication — so completeTransition re-filters the set under
		// the publication lock, which is the authoritative check.
		if rec := db.st.Get(k); rec != nil && rec.FenceToken() != 0 {
			continue
		}
		assign[k] = op
		db.lastSplit[k] = true
	}
	if len(assign) == 0 {
		return emptySplitSet
	}
	return newSplitSet(db.st, assign)
}

// total sums an opCounts; nil counts as zero.
func total(oc *opCounts) uint64 {
	if oc == nil {
		return 0
	}
	var n uint64
	for _, c := range oc {
		n += uint64(c)
	}
	return n
}

// dominantSplittable returns the splittable operation with the highest
// count and the total count across all splittable operations, or OpNone
// when there are none.
func dominantSplittable(oc *opCounts) (store.OpKind, uint64) {
	if oc == nil {
		return store.OpNone, 0
	}
	best := store.OpNone
	var bestN uint32
	var totalN uint64
	for i := range oc {
		k := store.OpKind(i)
		if !k.Splittable() || oc[i] == 0 {
			continue
		}
		totalN += uint64(oc[i])
		if oc[i] > bestN {
			bestN = oc[i]
			best = k
		}
	}
	return best, totalN
}
