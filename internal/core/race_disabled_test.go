//go:build !race

package core

// raceEnabled is false in a normal build; see race_enabled_test.go.
const raceEnabled = false
