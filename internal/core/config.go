package core

import (
	"time"

	"doppel/internal/wal"
)

// MaxWorkers is the largest worker count a Config may carry. Commit
// TIDs embed the worker ID in their low 8 bits (see the TID layout in
// this package's doc.go), so more than 256 workers would let two
// workers mint the same TID for different transactions — and recovery's
// highest-TID-wins replay could then pick the wrong value. withDefaults
// caps Config.Workers here.
const MaxWorkers = 256

// Config tunes a Doppel instance. The zero value is not valid; use
// DefaultConfig as a base.
type Config struct {
	// Workers is the number of worker contexts ("one worker thread per
	// core", §3). Values above MaxWorkers are capped: the TID layout
	// reserves only 8 bits for the worker ID.
	Workers int

	// WorkerIDBase offsets the worker IDs embedded in commit TIDs:
	// worker w mints TIDs tagged WorkerIDBase+w. A standalone instance
	// leaves it 0. A sharded deployment gives each shard a disjoint
	// range of the 8-bit ID space so all shards share one TID clock
	// domain — no two shards can ever mint the same TID, which keeps
	// TIDs globally unique for cross-shard ordering and debugging.
	// WorkerIDBase+Workers is capped at MaxWorkers.
	WorkerIDBase int

	// PhaseLength is how often the coordinator changes phase ("usually
	// starts a phase change every 20 milliseconds", §5.4). Zero disables
	// the coordinator: phases advance only via test hooks or Close.
	PhaseLength time.Duration

	// HurryFraction hurries the next joined phase when stashed
	// transactions in the current split phase exceed this fraction of
	// commits (§5.4: "if, in a split phase, workers have to abort and
	// stash too many transactions, the coordinator hurries the next
	// joined phase"). Zero uses the default.
	HurryFraction float64

	// SampleRate samples one in SampleRate conflicts for the classifier
	// (§5.5: "Doppel samples transactions' conflicting record
	// accesses"). 1 records every conflict.
	SampleRate int

	// SplitMinConflicts is the minimum sampled splittable-operation
	// conflict count a key must accumulate during a joined phase to
	// become split data.
	SplitMinConflicts int

	// SplitFraction is the minimum fraction of a joined phase's
	// transaction attempts that must have conflicted on a key (with a
	// splittable operation) for the key to be split.
	SplitFraction float64

	// MaxSplitKeys bounds how many records may be split at once.
	MaxSplitKeys int

	// ReadDominance demotes (or refuses to promote) a key when
	// incompatible accesses dominate: a key is not split if sampled
	// read/Put conflicts exceed ReadDominance times its splittable
	// conflicts, and a split key is demoted when its stashes exceed
	// ReadDominance times its slice writes. This is what keeps
	// read-mostly keys reconciled (the paper's LIKE benchmark does not
	// split below 30% writes, §8.5).
	ReadDominance float64

	// KeepMinWrites demotes a split key whose slice writes during the
	// previous split phase fell below this count (§5.5: "Doppel uses
	// write sampling to estimate if a split record might still be
	// contended").
	KeepMinWrites int

	// KeepWriteFraction demotes a split key whose slice writes fall
	// below this fraction of the decision window's transaction
	// attempts, so residual background traffic cannot keep a cooled key
	// split.
	KeepWriteFraction float64

	// MaxSplitExtend is how many times in a row the coordinator may
	// extend a split phase during which nothing was stashed: no
	// transaction is waiting for a joined phase, so a phase change
	// would only cost barrier time.
	MaxSplitExtend int

	// DisableAutoSplit turns the classifier off; only SplitHint-labelled
	// records are split ("Doppel also supports manual data labeling",
	// §5.5).
	DisableAutoSplit bool

	// Redo, when non-nil, receives an asynchronous redo record for every
	// committed global-store write and every reconciliation merge (the
	// paper's §3: "asynchronous batched logging could be added to Doppel
	// without becoming a bottleneck"). Commits do not wait for
	// durability; the caller owns the logger's lifecycle.
	Redo *wal.Logger

	// WALFailStop, with Redo set, refuses to execute new transactions
	// once the logger has failed terminally: every attempt returns an
	// error naming the logger's failure instead of committing in memory
	// only. Without it (the default) commits continue and the failure
	// is visible solely through the logger's Err — acknowledged commits
	// after the failure are then never durable.
	WALFailStop bool
}

// DefaultConfig returns the paper's configuration for w workers: 20 ms
// phases and automatic classification.
func DefaultConfig(w int) Config {
	return Config{
		Workers:           w,
		PhaseLength:       20 * time.Millisecond,
		HurryFraction:     0.5,
		SampleRate:        1,
		SplitMinConflicts: 8,
		SplitFraction:     0.02,
		MaxSplitKeys:      64,
		ReadDominance:     3.0,
		KeepMinWrites:     4,
		KeepWriteFraction: 0.005,
		MaxSplitExtend:    8,
	}
}

// withDefaults fills zero fields with defaults.
func (c Config) withDefaults() Config {
	d := DefaultConfig(c.Workers)
	if c.Workers < 1 {
		c.Workers = 1
	}
	if c.Workers > MaxWorkers {
		c.Workers = MaxWorkers // the TID layout has 8 bits of worker ID
	}
	if c.WorkerIDBase < 0 {
		c.WorkerIDBase = 0
	}
	if c.WorkerIDBase+c.Workers > MaxWorkers {
		// The shared TID clock domain has only 8 bits of worker ID; a
		// shard whose slice would overflow it keeps its base and loses
		// workers (callers validate earlier for a real error).
		c.Workers = MaxWorkers - c.WorkerIDBase
		if c.Workers < 1 {
			c.WorkerIDBase, c.Workers = MaxWorkers-1, 1
		}
	}
	if c.HurryFraction <= 0 {
		c.HurryFraction = d.HurryFraction
	}
	if c.SampleRate < 1 {
		c.SampleRate = d.SampleRate
	}
	if c.SplitMinConflicts < 1 {
		c.SplitMinConflicts = d.SplitMinConflicts
	}
	if c.SplitFraction <= 0 {
		c.SplitFraction = d.SplitFraction
	}
	if c.MaxSplitKeys < 1 {
		c.MaxSplitKeys = d.MaxSplitKeys
	}
	if c.ReadDominance <= 0 {
		c.ReadDominance = d.ReadDominance
	}
	if c.KeepMinWrites < 1 {
		c.KeepMinWrites = d.KeepMinWrites
	}
	if c.KeepWriteFraction <= 0 {
		c.KeepWriteFraction = d.KeepWriteFraction
	}
	if c.MaxSplitExtend == 0 {
		c.MaxSplitExtend = d.MaxSplitExtend
	} else if c.MaxSplitExtend < 0 {
		c.MaxSplitExtend = 0 // negative disables split-phase extension
	}
	return c
}
