package core

// Allocation regression tests for the commit hot path. The acceptance
// bar, enforced here with testing.AllocsPerRun: with redo logging
// enabled, a committed read-modify-write transaction allocates at most
// 2 heap objects (in practice just the new immutable Value — the redo
// record encodes into per-worker scratch buffers and the logger copies
// it into a recycled batch buffer), and a read-only commit allocates
// nothing at all.

import (
	"testing"
	"time"

	"doppel/internal/engine"
	"doppel/internal/store"
	"doppel/internal/wal"
)

// openRedoDB builds a single-worker engine with redo logging into a
// fresh directory and no coordinator, so Attempt(0, ...) runs the
// joined-phase commit protocol and nothing else.
func openRedoDB(tb testing.TB) (*DB, *wal.Logger) {
	tb.Helper()
	l, err := wal.Open(tb.TempDir())
	if err != nil {
		tb.Fatal(err)
	}
	st := store.New()
	st.Preload("k", store.IntValue(0))
	cfg := DefaultConfig(1)
	cfg.PhaseLength = 0
	cfg.Redo = l
	db := Open(st, cfg)
	tb.Cleanup(func() {
		db.Close()
		_ = l.Close()
	})
	return db, l
}

func attemptCommit(tb testing.TB, db *DB, fn engine.TxFunc) {
	if out, err := db.Attempt(0, fn, 0); err != nil || out != engine.Committed {
		tb.Fatalf("outcome %v err %v", out, err)
	}
}

// TestCommitPathAllocs asserts the steady-state allocation budget of
// the two hot commit shapes with redo logging enabled.
func TestCommitPathAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated by race instrumentation")
	}
	db, _ := openRedoDB(t)
	read := func(tx engine.Tx) error { _, err := tx.GetInt("k"); return err }
	write := func(tx engine.Tx) error { return tx.Add("k", 1) }
	// Warm up: grow the transaction's read/write-set slices, the
	// worker's redo scratch buffers and the logger's batch buffers to
	// their steady-state capacities.
	for i := 0; i < 2000; i++ {
		attemptCommit(t, db, write)
		attemptCommit(t, db, read)
	}
	if n := testing.AllocsPerRun(1000, func() { attemptCommit(t, db, read) }); n > 0 {
		t.Errorf("read-only commit path allocates %.2f objects/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { attemptCommit(t, db, write) }); n > 2 {
		t.Errorf("committed read-modify-write path allocates %.2f objects/op, want <= 2", n)
	}
}

// TestCommitPathAllocsMultiWrite covers the multi-op record shape: the
// insertion sort, per-record grouping and one redo record with several
// ops must stay within one Value allocation per written record.
func TestCommitPathAllocsMultiWrite(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated by race instrumentation")
	}
	db, _ := openRedoDB(t)
	db.st.Preload("a", store.IntValue(0))
	db.st.Preload("b", store.IntValue(0))
	write := func(tx engine.Tx) error {
		if err := tx.Add("b", 1); err != nil {
			return err
		}
		if err := tx.Add("a", 2); err != nil {
			return err
		}
		return tx.Add("k", 3)
	}
	for i := 0; i < 2000; i++ {
		attemptCommit(t, db, write)
	}
	// One new Value per written record plus slack for amortized growth.
	if n := testing.AllocsPerRun(1000, func() { attemptCommit(t, db, write) }); n > 4 {
		t.Errorf("3-write commit allocates %.2f objects/op, want <= 4", n)
	}
}

// BenchmarkCommitReadOnlyRedo reports the read-only commit path's
// time and allocs/op with redo logging configured (which it never
// touches — reads log nothing).
func BenchmarkCommitReadOnlyRedo(b *testing.B) {
	db, _ := openRedoDB(b)
	fn := func(tx engine.Tx) error { _, err := tx.GetInt("k"); return err }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		attemptCommit(b, db, fn)
	}
}

// BenchmarkCommitSingleWriteRedo reports the committed single-write
// path end to end: OCC commit, redo record encode, logger append.
func BenchmarkCommitSingleWriteRedo(b *testing.B) {
	db, l := openRedoDB(b)
	fn := func(tx engine.Tx) error { return tx.Add("k", 1) }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		attemptCommit(b, db, fn)
	}
	b.StopTimer()
	// Wait out the logger's backlog so Close time is not billed to the
	// last iteration of a subsequent benchmark.
	deadline := time.Now().Add(10 * time.Second)
	for l.Durable() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
}
