package core

import (
	"io"
	"log"
	"os"
	"path/filepath"
	"testing"

	"doppel/internal/engine"
	"doppel/internal/store"
	"doppel/internal/wal"
)

// TestReconcileMergeFailureKeepsTID: when a split record's slice cannot
// merge into its global value (type mismatch), reconciliation must keep
// BOTH the old value and the old TID — a fresh TID would invalidate
// readers for a write that never happened and desynchronize recovery
// (no redo record is logged) — and must count the loss.
func TestReconcileMergeFailureKeepsTID(t *testing.T) {
	defer log.SetOutput(log.Writer())
	log.SetOutput(io.Discard) // silence the (intentional) one-shot warning

	db := manualDB(1)
	defer db.Close()
	// The global value is bytes; an Add slice can never merge into it.
	mustCommit(t, db, 0, func(tx engine.Tx) error { return tx.PutBytes("bad", []byte("x")) })
	rec := db.Store().Get("bad")
	tidBefore, _ := rec.TIDWord()
	valBefore := rec.Value()

	db.SplitHint("bad", store.OpAdd)
	if !db.RequestSplitPhase() {
		t.Fatal("split refused")
	}
	db.Poll(0)
	if db.Phase() != PhaseSplit {
		t.Fatal("not split")
	}
	mustCommit(t, db, 0, func(tx engine.Tx) error { return tx.Add("bad", 5) })

	if !db.RequestJoinedPhase() {
		t.Fatal("joined refused")
	}
	db.Poll(0) // runs reconcile

	tidAfter, _ := rec.TIDWord()
	if tidAfter != tidBefore {
		t.Fatalf("merge failure minted a fresh TID: %d -> %d", tidBefore, tidAfter)
	}
	if rec.Value() != valBefore {
		t.Fatalf("merge failure replaced the value: %v", rec.Value())
	}
	if got := db.WorkerStats(0).MergeFailures; got != 1 {
		t.Fatalf("MergeFailures = %d, want 1", got)
	}
	// The record still works for compatible transactions afterwards.
	mustCommit(t, db, 0, func(tx engine.Tx) error {
		b, err := tx.GetBytes("bad")
		if err != nil {
			return err
		}
		if string(b) != "x" {
			t.Errorf("value after failed merge: %q", b)
		}
		return nil
	})
}

// TestWorkersCappedAtTIDLimit: commit TIDs carry an 8-bit worker ID, so
// Config.Workers beyond MaxWorkers must be capped — two workers sharing
// an ID could mint colliding TIDs and recovery could resurrect the
// wrong value.
func TestWorkersCappedAtTIDLimit(t *testing.T) {
	cfg := DefaultConfig(1000)
	cfg.PhaseLength = 0
	db := Open(store.New(), cfg)
	defer db.Close()
	if db.Workers() != MaxWorkers {
		t.Fatalf("Workers() = %d, want capped at %d", db.Workers(), MaxWorkers)
	}
}

// TestWALFailStopRefusesAfterLoggerDeath: with Config.WALFailStop, the
// engine must refuse every transaction attempt — returning the logger's
// terminal error — once the redo logger is dead.
func TestWALFailStopRefusesAfterLoggerDeath(t *testing.T) {
	dir := t.TempDir()
	lg, err := wal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer lg.Close()
	cfg := DefaultConfig(1)
	cfg.PhaseLength = 0
	cfg.Redo = lg
	cfg.WALFailStop = true
	db := Open(store.New(), cfg)
	defer db.Close()
	mustCommit(t, db, 0, func(tx engine.Tx) error { return tx.PutInt("k", 1) })

	// Kill the logger: the next segment's path is occupied by a
	// directory, so rotation fails terminally.
	if err := os.Mkdir(filepath.Join(dir, "wal-00000002.log"), 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := lg.Rotate(); err == nil {
		t.Fatal("rotate succeeded over a dead segment path")
	}
	if !lg.Failed() {
		t.Fatal("logger not marked failed")
	}
	out, err := db.Attempt(0, func(tx engine.Tx) error { return tx.PutInt("k", 2) }, 0)
	if out != engine.UserAbort || err == nil {
		t.Fatalf("attempt after logger death: outcome %v err %v, want UserAbort with error", out, err)
	}
}

// TestStashedFirstReplayIsNotARetry: a stashed transaction that commits
// on its first joined-phase replay contributes Stashed=1, Retries=0;
// only additional attempts beyond that replay count as retries.
func TestStashedFirstReplayIsNotARetry(t *testing.T) {
	db := manualDB(1)
	defer db.Close()
	db.Store().Preload("hot", store.IntValue(0))
	db.SplitHint("hot", store.OpAdd)
	if !db.RequestSplitPhase() {
		t.Fatal("split refused")
	}
	db.Poll(0)
	// A read of split data stashes.
	if out := run(t, db, 0, func(tx engine.Tx) error {
		_, err := tx.GetInt("hot")
		return err
	}); out != engine.Stashed {
		t.Fatalf("read of split data: %v", out)
	}
	if !db.RequestJoinedPhase() {
		t.Fatal("joined refused")
	}
	db.Poll(0) // drains the stash; the replay commits immediately
	st := db.WorkerStats(0)
	if st.Stashed != 1 || st.Retries != 0 {
		t.Fatalf("stashed=%d retries=%d, want 1/0", st.Stashed, st.Retries)
	}
}
