package core

import (
	"sort"

	"doppel/internal/store"
)

// splitKey is one record marked as split data for the current split
// phase, with its single selected operation (§4 guideline 3).
type splitKey struct {
	key string
	op  store.OpKind
	rec *store.Record
	idx int // dense index into each worker's slice array
}

// splitSet is the immutable set of split records for one split phase. It
// is built by the classifier during the joined→split transition and
// published atomically; workers index their per-core slices by the dense
// idx assigned here.
type splitSet struct {
	keys map[string]*splitKey
	list []*splitKey // ordered by idx
}

// emptySplitSet is the canonical empty set.
var emptySplitSet = &splitSet{keys: map[string]*splitKey{}}

// newSplitSet builds a split set from key→operation assignments,
// resolving records in st. Keys are indexed in sorted order so the set is
// deterministic for a given assignment.
func newSplitSet(st *store.Store, assign map[string]store.OpKind) *splitSet {
	if len(assign) == 0 {
		return emptySplitSet
	}
	keys := make([]string, 0, len(assign))
	for k := range assign {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	set := &splitSet{
		keys: make(map[string]*splitKey, len(assign)),
		list: make([]*splitKey, 0, len(assign)),
	}
	for i, k := range keys {
		rec, _ := st.GetOrCreate(k)
		sk := &splitKey{key: k, op: assign[k], rec: rec, idx: i}
		set.keys[k] = sk
		set.list = append(set.list, sk)
	}
	return set
}

// withoutFenced returns s minus every key whose record currently
// carries a commit fence, re-indexed densely. It is called at
// publication time, under the transition publication lock: a
// cross-shard prepare installs its fences before checking SplitActive
// under that same lock, so a fence invisible here implies the prepare
// will see the published set and retry. The common case — no fenced
// keys — returns s unchanged.
func (s *splitSet) withoutFenced() *splitSet {
	if s.size() == 0 {
		return s
	}
	fenced := 0
	for _, sk := range s.list {
		if sk.rec.FenceToken() != 0 {
			fenced++
		}
	}
	if fenced == 0 {
		return s
	}
	if fenced == len(s.list) {
		return emptySplitSet
	}
	out := &splitSet{
		keys: make(map[string]*splitKey, len(s.list)-fenced),
		list: make([]*splitKey, 0, len(s.list)-fenced),
	}
	for _, sk := range s.list {
		if sk.rec.FenceToken() != 0 {
			continue
		}
		nsk := &splitKey{key: sk.key, op: sk.op, rec: sk.rec, idx: len(out.list)}
		out.keys[nsk.key] = nsk
		out.list = append(out.list, nsk)
	}
	return out
}

// lookup returns the split entry for key, or nil.
func (s *splitSet) lookup(key string) *splitKey {
	if s == nil || len(s.keys) == 0 {
		return nil
	}
	return s.keys[key]
}

// size returns the number of split records.
func (s *splitSet) size() int {
	if s == nil {
		return 0
	}
	return len(s.list)
}

// keyNames returns the split keys in index order (for stats and tests).
func (s *splitSet) keyNames() []string {
	out := make([]string, 0, s.size())
	for _, sk := range s.list {
		out = append(out, sk.key)
	}
	return out
}
