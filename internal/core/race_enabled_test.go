//go:build race

package core

// raceEnabled reports that this test binary was built with the race
// detector, whose instrumentation changes allocation counts; the
// allocation-regression assertions skip themselves under it.
const raceEnabled = true
