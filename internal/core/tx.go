package core

import (
	"doppel/internal/engine"
	"doppel/internal/store"
	"doppel/internal/wal"
)

// readSpins bounds how long a read waits for a locked record before
// aborting the transaction.
const readSpins = 128

// Tx is one Doppel transaction execution. Each transaction executes
// entirely within one phase (§5.1): the phase and split set are
// snapshotted at reset time and cannot change during execution, because
// phase transitions require this worker's acknowledgement, which happens
// only between transactions.
type Tx struct {
	w     *Worker
	phase Phase
	set   *splitSet

	reads  []readEnt
	wset   []writeEnt
	sw     []sliceWrite // buffered split writes (the paper's SW, Figure 3)
	pend   []pending
	swPend []pending // scratch for pre-computed slice values
	wrote  bool
	// fence is the commit-fence token this transaction owns, zero for
	// ordinary transactions. The router's cross-shard apply sets it (via
	// engine.FenceTx) so the apply transaction passes the fence checks on
	// its own fenced records while everyone else aborts on them.
	fence uint64
}

type readEnt struct {
	rec *store.Record
	key string
	tid uint64
	op  store.OpKind // operation that motivated this read (OpGet for reads)
}

type writeEnt struct {
	key string
	rec *store.Record
	op  store.Op
}

type sliceWrite struct {
	sk *splitKey
	op store.Op
}

type pending struct {
	rec *store.Record
	val *store.Value
	key string // the record's key, carried so logRedo need not re-match
}

func (t *Tx) reset(w *Worker) {
	t.w = w
	t.phase = w.db.Phase()
	t.set = w.db.split.Load()
	t.reads = t.reads[:0]
	t.wset = t.wset[:0]
	t.sw = t.sw[:0]
	t.wrote = false
	t.fence = 0
}

// SetFenceToken implements engine.FenceTx.
func (t *Tx) SetFenceToken(token uint64) { t.fence = token }

// fencedBy reports whether rec carries a foreign commit fence — one this
// transaction does not own. A fenced record belongs to an in-flight
// cross-shard commit; interleaving with it would lose a write, so the
// caller aborts with AbortedFenced/ErrFenced.
func (t *Tx) fencedBy(rec *store.Record) bool {
	ft := rec.FenceToken()
	return ft != 0 && ft != t.fence
}

// WorkerID implements engine.Tx.
func (t *Tx) WorkerID() int { return t.w.id }

// splitLookup reports how an access to key interacts with split data.
// During a split phase, an access to a split record with the selected
// operation goes to the per-core slice; any other access (a read, a Put,
// or a different operation) stashes the transaction until the next
// joined phase (§5.2).
func (t *Tx) splitLookup(key string, op store.OpKind) (*splitKey, error) {
	if t.phase != PhaseSplit {
		return nil, nil
	}
	sk := t.set.lookup(key)
	if sk == nil {
		return nil, nil
	}
	if sk.op == op {
		return sk, nil
	}
	t.w.sampleStash(key, op)
	return nil, engine.ErrStash
}

// load performs a Silo consistent read with split-data checking and
// read-your-writes overlay.
func (t *Tx) load(key string) (*store.Value, error) {
	if _, err := t.splitLookup(key, store.OpGet); err != nil {
		return nil, err
	}
	rec, _ := t.w.db.st.GetOrCreate(key)
	if t.fencedBy(rec) {
		return nil, engine.ErrFenced
	}
	v, tid, ok := rec.ReadConsistent(readSpins)
	if !ok {
		t.w.sampleConflict(key, store.OpGet)
		return nil, engine.ErrAbort
	}
	t.reads = append(t.reads, readEnt{rec, key, tid, store.OpGet})
	for i := range t.wset {
		if t.wset[i].rec == rec {
			var err error
			v, err = store.Apply(v, t.wset[i].op)
			if err != nil {
				return nil, err
			}
		}
	}
	return v, nil
}

// Get implements engine.Tx.
func (t *Tx) Get(key string) (*store.Value, error) { return t.load(key) }

// GetForUpdate implements engine.Tx; identical to Get under OCC.
func (t *Tx) GetForUpdate(key string) (*store.Value, error) { return t.load(key) }

// GetInt implements engine.Tx.
func (t *Tx) GetInt(key string) (int64, error) {
	v, err := t.load(key)
	if err != nil {
		return 0, err
	}
	return v.AsInt()
}

// GetIntForUpdate implements engine.Tx.
func (t *Tx) GetIntForUpdate(key string) (int64, error) { return t.GetInt(key) }

// GetBytes implements engine.Tx.
func (t *Tx) GetBytes(key string) ([]byte, error) {
	v, err := t.load(key)
	if err != nil {
		return nil, err
	}
	return v.AsBytes()
}

// GetTuple implements engine.Tx.
func (t *Tx) GetTuple(key string) (store.Tuple, bool, error) {
	v, err := t.load(key)
	if err != nil {
		return store.Tuple{}, false, err
	}
	return v.AsTuple()
}

// GetTopK implements engine.Tx.
func (t *Tx) GetTopK(key string) ([]store.TopKEntry, error) {
	v, err := t.load(key)
	if err != nil {
		return nil, err
	}
	tk, err := v.AsTopK()
	if err != nil {
		return nil, err
	}
	return tk.Entries(), nil
}

// Put implements engine.Tx. Put never splits (it does not commute); a Put
// to a split record during a split phase stashes the transaction.
func (t *Tx) Put(key string, v *store.Value) error {
	if _, err := t.splitLookup(key, store.OpPut); err != nil {
		return err
	}
	rec, _ := t.w.db.st.GetOrCreate(key)
	t.wrote = true
	t.wset = append(t.wset, writeEnt{key, rec, store.Op{Kind: store.OpPut, Val: v}})
	return nil
}

// PutInt implements engine.Tx.
func (t *Tx) PutInt(key string, n int64) error { return t.Put(key, store.IntValue(n)) }

// PutBytes implements engine.Tx.
func (t *Tx) PutBytes(key string, b []byte) error { return t.Put(key, store.BytesValue(b)) }

// update routes a splittable operation: to the per-core slice when the
// record is split with this operation selected, otherwise through the
// joined-phase read-validate-write path.
func (t *Tx) update(key string, op store.Op) error {
	sk, err := t.splitLookup(key, op.Kind)
	if err != nil {
		return err
	}
	t.wrote = true
	if sk != nil {
		// Split write: buffered, applied to the local slice at commit
		// with no locks and no read validation (Figure 3).
		t.sw = append(t.sw, sliceWrite{sk, op})
		return nil
	}
	// Joined path (or unsplit record in a split phase): read-validate +
	// buffered write, which is what makes contention observable to the
	// classifier.
	rec, _ := t.w.db.st.GetOrCreate(key)
	if t.fencedBy(rec) {
		return engine.ErrFenced
	}
	_, tid, ok := rec.ReadConsistent(readSpins)
	if !ok {
		t.w.sampleConflict(key, op.Kind)
		return engine.ErrAbort
	}
	t.reads = append(t.reads, readEnt{rec, key, tid, op.Kind})
	t.wset = append(t.wset, writeEnt{key, rec, op})
	return nil
}

// Add implements engine.Tx.
func (t *Tx) Add(key string, n int64) error {
	return t.update(key, store.Op{Kind: store.OpAdd, Int: n})
}

// Max implements engine.Tx.
func (t *Tx) Max(key string, n int64) error {
	return t.update(key, store.Op{Kind: store.OpMax, Int: n})
}

// Min implements engine.Tx.
func (t *Tx) Min(key string, n int64) error {
	return t.update(key, store.Op{Kind: store.OpMin, Int: n})
}

// Mult implements engine.Tx.
func (t *Tx) Mult(key string, n int64) error {
	return t.update(key, store.Op{Kind: store.OpMult, Int: n})
}

// OPut implements engine.Tx. The tuple's core ID is the worker's
// TID-domain ID so ordered-put tie-breaking stays deterministic across
// the shards of a cluster, not just within one instance.
func (t *Tx) OPut(key string, order store.Order, data []byte) error {
	return t.update(key, store.Op{Kind: store.OpOPut, Tuple: store.Tuple{
		Order: order, CoreID: int32(t.w.tidID), Data: data,
	}})
}

// TopKInsert implements engine.Tx.
func (t *Tx) TopKInsert(key string, order int64, data []byte, k int) error {
	return t.update(key, store.Op{Kind: store.OpTopKInsert, K: k, Entry: store.TopKEntry{
		Order: order, CoreID: int32(t.w.tidID), Data: data,
	}})
}

// inWrites reports whether rec is locked by this transaction's write set.
func (t *Tx) inWrites(rec *store.Record) bool {
	for i := range t.wset {
		if t.wset[i].rec == rec {
			return true
		}
	}
	return false
}

// genTID produces a commit TID greater than every observed TID, tagged
// with the worker ID (§5.1).
func (t *Tx) genTID() uint64 {
	w := t.w
	seq := w.lastSeq
	for i := range t.reads {
		if s := t.reads[i].tid >> 8; s > seq {
			seq = s
		}
	}
	for i := range t.wset {
		tid, _ := t.wset[i].rec.TIDWord()
		if s := tid >> 8; s > seq {
			seq = s
		}
	}
	seq++
	w.lastSeq = seq
	return seq<<8 | uint64(w.tidID)&workerIDMask
}

// commit runs the joined-phase protocol (Figure 2) extended with split
// writes (Figure 3): after the OCC part succeeds, buffered split writes
// apply to this worker's slices, which need no locks or version checks
// because they are invisible to other cores.
//
//doppel:hotpath
func (t *Tx) commit() (engine.Outcome, error) {
	// Pre-compute slice values so a type error aborts with no effects.
	// The scratch slice persists across transactions, so the split-phase
	// fast path allocates only the new values themselves.
	swVals := t.swPend[:0] // reuse of pending shape: rec unused, val holds new slice value
	if len(t.sw) > 0 {
		slices := t.w.slices
		// Track the latest pending value per slice index for correct
		// composition of multiple ops on one slice within this txn.
		for i, sw := range t.sw {
			cur := slices[sw.sk.idx].val
			for j := 0; j < i; j++ {
				if t.sw[j].sk == sw.sk {
					cur = swVals[j].val
				}
			}
			nv, err := store.Apply(cur, sw.op)
			if err != nil {
				t.swPend = swVals
				return engine.UserAbort, err
			}
			swVals = append(swVals, pending{val: nv})
		}
		t.swPend = swVals
	}

	// Read-only (and slice-only) fast path. The fence check closes the
	// readers-see-partial-state window: a snapshot that validates with
	// every fence clear was taken either wholly before the cross-shard
	// prepare (fences install before any apply) or wholly after its last
	// apply (applies bump TIDs, so an in-between snapshot fails the TID
	// check instead).
	if len(t.wset) == 0 {
		for i := range t.reads {
			tid, locked := t.reads[i].rec.TIDWord()
			if locked || tid != t.reads[i].tid {
				t.sampleReadConflicts()
				return engine.Aborted, nil
			}
			if t.fencedBy(t.reads[i].rec) {
				return engine.AbortedFenced, nil
			}
		}
		t.applySliceWrites(swVals)
		return engine.Committed, nil
	}

	// Part 1: lock the write set in key order. Write sets are almost
	// always tiny (one to a handful of entries), so an inline insertion
	// sort beats sort.SliceStable — which costs a closure allocation and
	// reflection-based swaps on every commit. Shifting only on strict
	// inequality keeps the sort stable: entries for the same key stay in
	// buffered order, which the per-record Apply loop below relies on.
	for i := 1; i < len(t.wset); i++ {
		for j := i; j > 0 && t.wset[j].key < t.wset[j-1].key; j-- {
			t.wset[j], t.wset[j-1] = t.wset[j-1], t.wset[j]
		}
	}
	locked := 0
	for i := range t.wset {
		if i > 0 && t.wset[i].rec == t.wset[i-1].rec {
			continue
		}
		if !t.wset[i].rec.TryLock() {
			t.unlockPrefix(locked)
			t.w.sampleConflict(t.wset[i].key, t.wset[i].op.Kind)
			return engine.Aborted, nil
		}
		locked = i + 1
		// Fence check under the record lock: the cross-shard prepare
		// reads its validation snapshot inside this same lock after
		// fencing, so either that read sees our installed value (stale →
		// the prepare retries) or we see its fence here and yield.
		if t.fencedBy(t.wset[i].rec) {
			t.unlockPrefix(locked)
			return engine.AbortedFenced, nil
		}
	}
	commitTID := t.genTID()

	// Part 2: validate the read set.
	for i := range t.reads {
		rd := &t.reads[i]
		tid, isLocked := rd.rec.TIDWord()
		if tid != rd.tid || (isLocked && !t.inWrites(rd.rec)) {
			t.unlockPrefix(locked)
			t.w.sampleConflict(rd.key, rd.op)
			return engine.Aborted, nil
		}
		if t.fencedBy(rd.rec) {
			t.unlockPrefix(locked)
			return engine.AbortedFenced, nil
		}
	}

	// Part 3: compute new values, install, release locks with the new
	// TID, then apply split writes to the local slices.
	newVals := t.pend[:0]
	for i := 0; i < len(t.wset); {
		rec := t.wset[i].rec
		// Copy-on-write hook for incremental checkpoints: holding the
		// commit lock, save the record's pre-write state if an active
		// capture has not claimed it yet.
		t.w.db.st.SaveBeforeWrite(t.wset[i].key, rec)
		v := rec.Value()
		var err error
		j := i
		for ; j < len(t.wset) && t.wset[j].rec == rec; j++ {
			v, err = store.Apply(v, t.wset[j].op)
			if err != nil {
				t.unlockPrefix(len(t.wset))
				return engine.UserAbort, err
			}
		}
		newVals = append(newVals, pending{rec, v, t.wset[i].key})
		i = j
	}
	t.pend = newVals
	// Log before releasing locks so redo records for one record appear
	// in commit order.
	t.logRedo(commitTID, newVals)
	for _, p := range newVals {
		p.rec.SetValue(p.val)
		p.rec.UnlockWithTID(commitTID)
	}
	t.applySliceWrites(swVals)
	return engine.Committed, nil
}

// logRedo emits an asynchronous redo record for the installed values.
// Split (slice) writes are not globally visible yet; they are logged by
// reconcile when they merge. Each pending entry carries its key, so the
// record is assembled in one pass; values encode into the worker's
// reusable scratch buffers and the finished frame is handed to the
// logger, which copies it — the steady-state path allocates nothing.
//
//doppel:hotpath
func (t *Tx) logRedo(commitTID uint64, newVals []pending) {
	redo := t.w.db.cfg.Redo
	if redo == nil || len(newVals) == 0 {
		return
	}
	w := t.w
	// Encode all values first, recording offsets: appending can grow
	// (and move) the buffer, so slices are taken only after the last
	// append.
	val := w.redoVal[:0]
	offs := w.redoOffs[:0]
	for i := range newVals {
		offs = append(offs, len(val))
		val = store.AppendValue(val, newVals[i].val)
	}
	offs = append(offs, len(val))
	ops := w.redoOps[:0]
	for i := range newVals {
		ops = append(ops, wal.Op{Key: newVals[i].key, Value: val[offs[i]:offs[i+1]]})
	}
	enc := wal.AppendRecord(w.redoEnc[:0], wal.Record{TID: commitTID, Ops: ops})
	w.redoVal, w.redoOffs, w.redoOps, w.redoEnc = val, offs, ops, enc
	// Commits do not wait for durability (asynchronous batched logging,
	// §3); a refused append means the logger failed terminally, which
	// surfaces through Failed()/Err() and WALFailStop. The assigned LSN
	// is noted so durability-synchronous callers can wait on it.
	w.noteRedoLSN(redo.Append(enc, commitTID))
}

// applySliceWrites installs pre-computed slice values and bumps write
// counts for the classifier's write sampling.
func (t *Tx) applySliceWrites(swVals []pending) {
	for i, sw := range t.sw {
		sl := &t.w.slices[sw.sk.idx]
		sl.val = swVals[i].val
		sl.writes++
	}
	if len(t.sw) > 0 {
		t.w.sliceWritesPhase.Add(uint64(len(t.sw)))
		if t.w.db.cfg.Redo != nil {
			// Slice writes are logged at reconciliation, not here; flag
			// the gap for durability-synchronous callers (DB.RedoLSN's
			// value does not cover this commit until reconcile runs).
			t.w.slicedRedo = true
		}
	}
}

// sampleReadConflicts attributes a read-only validation failure to the
// records that changed.
func (t *Tx) sampleReadConflicts() {
	for i := range t.reads {
		tid, locked := t.reads[i].rec.TIDWord()
		if locked || tid != t.reads[i].tid {
			t.w.sampleConflict(t.reads[i].key, t.reads[i].op)
		}
	}
}

// unlockPrefix releases locks acquired on the first n write-set entries.
func (t *Tx) unlockPrefix(n int) {
	for i := 0; i < n; i++ {
		if i > 0 && t.wset[i].rec == t.wset[i-1].rec {
			continue
		}
		t.wset[i].rec.Unlock()
	}
}

var (
	_ engine.Tx      = (*Tx)(nil)
	_ engine.FenceTx = (*Tx)(nil)
)
