package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplitMix64Deterministic(t *testing.T) {
	s1 := NewSplitMix64(1234567)
	s2 := NewSplitMix64(1234567)
	for i := 0; i < 1000; i++ {
		if a, b := s1.Next(), s2.Next(); a != b {
			t.Fatalf("determinism violated at %d: %x != %x", i, a, b)
		}
	}
	// Distinct seeds must produce distinct streams.
	s3 := NewSplitMix64(1234568)
	s1 = NewSplitMix64(1234567)
	if s1.Next() == s3.Next() {
		t.Fatal("adjacent seeds produced identical first output")
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
	c := New(43)
	same := 0
	a = New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds collided %d/1000 times", same)
	}
}

func TestUint64nBounds(t *testing.T) {
	r := New(7)
	for _, n := range []uint64{1, 2, 3, 7, 100, 1 << 40} {
		for i := 0; i < 2000; i++ {
			if v := r.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) returned %d", n, v)
			}
		}
	}
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nUniformity(t *testing.T) {
	// Chi-squared test over 10 buckets; 100k samples. The 99.9% critical
	// value for 9 degrees of freedom is 27.88.
	r := New(99)
	const buckets = 10
	const samples = 100000
	var counts [buckets]int
	for i := 0; i < samples; i++ {
		counts[r.Uint64n(buckets)]++
	}
	expected := float64(samples) / buckets
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	if chi2 > 27.88 {
		t.Fatalf("chi-squared %.2f exceeds 27.88; counts=%v", chi2, counts)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
		sum += f
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean %.4f too far from 0.5", mean)
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(11)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.25) > 0.01 {
		t.Fatalf("Bool(0.25) hit fraction %.4f", frac)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(3)
	out := make([]int, 50)
	r.Perm(out)
	seen := make(map[int]bool)
	for _, v := range out {
		if v < 0 || v >= len(out) || seen[v] {
			t.Fatalf("not a permutation: %v", out)
		}
		seen[v] = true
	}
}

func TestExpBackoffWindowGrowth(t *testing.T) {
	r := New(17)
	for attempt := 0; attempt < 10; attempt++ {
		limit := uint64(8) << uint(attempt)
		if limit > 1024 {
			limit = 1024
		}
		for i := 0; i < 200; i++ {
			v := r.ExpBackoff(8, 1024, attempt)
			if v >= limit {
				t.Fatalf("attempt %d backoff %d >= window %d", attempt, v, limit)
			}
		}
	}
}

func TestExpBackoffHugeAttemptClamped(t *testing.T) {
	r := New(17)
	for i := 0; i < 100; i++ {
		if v := r.ExpBackoff(8, 1024, 500); v >= 1024 {
			t.Fatalf("backoff %d not clamped to cap", v)
		}
	}
	if v := r.ExpBackoff(8, 0, 3); v != 0 {
		t.Fatalf("zero cap should yield 0, got %d", v)
	}
}

func TestUint64nQuickProperty(t *testing.T) {
	r := New(123)
	f := func(n uint64) bool {
		if n == 0 {
			n = 1
		}
		return r.Uint64n(n) < n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
