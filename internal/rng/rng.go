// Package rng provides small, fast, allocation-free pseudo-random number
// generators for per-worker use. Workers in the benchmark harness and the
// simulator each own an independent generator so no locks are taken on the
// random-number path (a lock there would itself become the contended record
// the system is trying to measure).
package rng

import "math/bits"

// SplitMix64 is the splitmix64 generator of Steele, Lea and Flood. It is
// used both directly and to seed Rand.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a SplitMix64 seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Next returns the next value in the sequence.
func (s *SplitMix64) Next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Rand is a xoshiro256** generator. The zero value is not valid; use New.
type Rand struct {
	s [4]uint64
}

// New returns a Rand seeded from seed via splitmix64, per the xoshiro
// authors' recommendation. Distinct seeds give independent streams for
// practical purposes.
func New(seed uint64) *Rand {
	sm := NewSplitMix64(seed)
	r := &Rand{}
	for i := range r.s {
		r.s[i] = sm.Next()
	}
	// A xoshiro state of all zeros is a fixed point; splitmix64 cannot
	// produce four zero outputs in a row, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

// Uint64 returns a uniformly distributed 64-bit value.
func (r *Rand) Uint64() uint64 {
	s := &r.s
	result := bits.RotateLeft64(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = bits.RotateLeft64(s[3], 45)
	return result
}

// Uint64n returns a uniform value in [0, n). It panics if n == 0.
// It uses Lemire's multiply-shift rejection method.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with n == 0")
	}
	hi, lo := bits.Mul64(r.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), n)
		}
	}
	return hi
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool {
	return r.Float64() < p
}

// Perm fills out with a random permutation of [0, len(out)).
func (r *Rand) Perm(out []int) {
	for i := range out {
		out[i] = i
	}
	for i := len(out) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		out[i], out[j] = out[j], out[i]
	}
}

// ExpBackoff returns a randomized backoff duration (in abstract units) for
// the attempt-th retry: uniform in [0, min(cap, base<<attempt)).
func (r *Rand) ExpBackoff(base, capUnits uint64, attempt int) uint64 {
	if attempt > 62 {
		attempt = 62
	}
	window := base << uint(attempt)
	if window > capUnits || window == 0 {
		window = capUnits
	}
	if window == 0 {
		return 0
	}
	return r.Uint64n(window)
}
