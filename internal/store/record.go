package store

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Record is one database record. It carries:
//
//   - a Silo-style TID word: the transaction ID of the last writer shifted
//     left one bit, with the low bit serving as a spinlock (used by the OCC
//     engines and by Doppel's joined/split/reconciliation protocols);
//   - an atomically published pointer to the current immutable value;
//   - a read-write mutex used only by the 2PL engine.
//
// Values are never mutated in place, so a reader that observes the same
// unlocked TID word before and after loading the value pointer has a
// consistent snapshot (the Silo read protocol).
type Record struct {
	tid atomic.Uint64
	val atomic.Pointer[Value]
	// capGen is the copy-on-write capture generation that has already
	// saved this record's pre-barrier state; see cow.go. A record whose
	// capGen differs from the active Capture's generation has not been
	// captured yet.
	capGen atomic.Uint64
	// fence is the commit-fence word: zero when unfenced, otherwise the
	// token of the cross-shard two-phase commit that has validated this
	// record and not yet applied. Committers and validating readers that
	// observe a foreign token abort and retry; the token's owner (and
	// only the owner) passes. See internal/router/doc.go for the
	// protocol.
	fence atomic.Uint64
	mu    sync.RWMutex
}

const lockBit = 1

// TIDWord returns the record's current TID and whether it is locked.
func (r *Record) TIDWord() (tid uint64, locked bool) {
	w := r.tid.Load()
	return w >> 1, w&lockBit != 0
}

// TryLock attempts to acquire the record's commit lock without spinning.
func (r *Record) TryLock() bool {
	w := r.tid.Load()
	if w&lockBit != 0 {
		return false
	}
	return r.tid.CompareAndSwap(w, w|lockBit)
}

// Lock spins until the record's commit lock is acquired. Used by the
// reconciliation protocol and by writers that must not abort.
func (r *Record) Lock() {
	for i := 0; ; i++ {
		if r.TryLock() {
			return
		}
		if i%64 == 63 {
			runtime.Gosched()
		}
	}
}

// Unlock releases the commit lock without changing the TID. The caller
// must hold the lock.
func (r *Record) Unlock() {
	w := r.tid.Load()
	r.tid.Store(w &^ lockBit)
}

// UnlockWithTID installs a new TID and releases the commit lock in one
// store. The caller must hold the lock.
func (r *Record) UnlockWithTID(tid uint64) {
	r.tid.Store(tid << 1)
}

// SetTID installs tid with the lock released, without going through the
// commit protocol. It exists for recovery preloading, where there is no
// concurrency: replayed records must keep their pre-crash TIDs so that
// post-recovery commits generate strictly larger ones per key.
func (r *Record) SetTID(tid uint64) {
	r.tid.Store(tid << 1)
}

// Locked reports whether the commit lock is currently held.
func (r *Record) Locked() bool {
	return r.tid.Load()&lockBit != 0
}

// Value returns the current value pointer without consistency checking.
// Use ReadConsistent for OCC reads.
func (r *Record) Value() *Value { return r.val.Load() }

// SetValue publishes a new value. The caller must hold the commit lock
// (or otherwise have exclusive write access, as the 2PL engine does).
func (r *Record) SetValue(v *Value) { r.val.Store(v) }

// ReadConsistent performs the Silo read protocol: it returns a value and
// the TID that produced it such that the pair is a consistent snapshot.
// If the record stays locked for the duration of maxSpins attempts, it
// returns ok == false and the caller should abort (the paper's OCC
// "aborts and saves the transaction to try again later" when it sees a
// locked item).
func (r *Record) ReadConsistent(maxSpins int) (v *Value, tid uint64, ok bool) {
	for i := 0; i <= maxSpins; i++ {
		w1 := r.tid.Load()
		if w1&lockBit != 0 {
			continue
		}
		val := r.val.Load()
		w2 := r.tid.Load()
		if w1 == w2 {
			return val, w1 >> 1, true
		}
	}
	return nil, 0, false
}

// CasValue atomically replaces the value pointer if it still equals old.
// The Atomic baseline engine uses it to implement lock-free
// read-modify-write operations ("an atomic increment instruction with no
// other concurrency control", §8.2).
func (r *Record) CasValue(old, new *Value) bool {
	return r.val.CompareAndSwap(old, new)
}

// InstallIfNewer atomically installs (v, tid) when tid is strictly
// greater than the record's current TID, taking the commit lock for the
// duration of the check-and-set. It returns whether it installed.
// Parallel recovery uses it to apply redo records concurrently: per-key
// TIDs are unique and monotone in commit order, so "highest TID wins"
// applied atomically in any order converges to the sequential-replay
// state.
func (r *Record) InstallIfNewer(v *Value, tid uint64) bool {
	r.Lock()
	cur, _ := r.TIDWord()
	if cur >= tid {
		r.Unlock()
		return false
	}
	r.SetValue(v)
	r.UnlockWithTID(tid)
	return true
}

// InstallRecovered installs a snapshot entry (v, tid) during overlapped
// recovery, when segment replay may already have written the record. It
// installs unless the record holds state from a strictly newer TID, and
// — unlike InstallIfNewer — also installs at equal TIDs while the
// record is still empty: snapshot entries captured before any commit
// carry TID 0, and a freshly created record is also TID 0, so the
// strict rule would drop them. Redo records always carry TIDs above the
// snapshot's for the same key (they post-date the checkpoint barrier),
// so the highest-TID-wins merge stays order-independent.
func (r *Record) InstallRecovered(v *Value, tid uint64) bool {
	r.Lock()
	cur, _ := r.TIDWord()
	if cur > tid || (cur == tid && r.Value() != nil) {
		r.Unlock()
		return false
	}
	r.SetValue(v)
	r.UnlockWithTID(tid)
	return true
}

// RWMutex exposes the record's 2PL mutex. Only the 2PL engine uses it;
// keeping it on the record mirrors the paper's "per-key locks".
func (r *Record) RWMutex() *sync.RWMutex { return &r.mu }

// Fence installs tok as the record's commit fence. It succeeds when the
// record is unfenced or already fenced with the same token (re-fencing
// by the owner is idempotent, so a cross-shard transaction touching a
// key as both read and write fences it once). tok must be non-zero.
func (r *Record) Fence(tok uint64) bool {
	return r.fence.CompareAndSwap(0, tok) || r.fence.Load() == tok
}

// FenceToken returns the current fence token, zero if unfenced.
func (r *Record) FenceToken() uint64 { return r.fence.Load() }

// Unfence releases the fence if it is held with tok. Releasing an
// already-released or foreign fence is a no-op, so failure-path cleanup
// can release unconditionally.
func (r *Record) Unfence(tok uint64) {
	r.fence.CompareAndSwap(tok, 0)
}
