package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"testing"
)

// writeV2 streams entries through a SnapshotWriter and returns the raw
// v2 stream.
func writeV2(t *testing.T, entries []SnapshotEntry) []byte {
	t.Helper()
	var buf bytes.Buffer
	sw, err := NewSnapshotWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if err := sw.Write(e); err != nil {
			t.Fatal(err)
		}
	}
	if sw.Count() != len(entries) {
		t.Fatalf("Count() = %d, want %d", sw.Count(), len(entries))
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSnapshotWriterRoundTrip: the streamed v2 format round-trips
// through both readers, preserving order, keys, TIDs and values.
func TestSnapshotWriterRoundTrip(t *testing.T) {
	entries := snapshotFixture()
	raw := writeV2(t, entries)

	got, err := ReadSnapshot(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(entries) {
		t.Fatalf("got %d entries, want %d", len(got), len(entries))
	}
	for i, e := range entries {
		g := got[i]
		if g.Key != e.Key || g.TID != e.TID ||
			!bytes.Equal(EncodeValue(g.Value), EncodeValue(e.Value)) {
			t.Fatalf("entry %d mismatch: %+v vs %+v", i, g, e)
		}
	}
	for _, par := range []int{1, 4} {
		st := New()
		n, err := ReadSnapshotInto(bytes.NewReader(raw), st, par, false)
		if err != nil {
			t.Fatal(err)
		}
		if n != len(entries) {
			t.Fatalf("par=%d loaded %d entries, want %d", par, n, len(entries))
		}
		for _, e := range entries {
			r := st.Get(e.Key)
			if r == nil {
				t.Fatalf("par=%d: %s missing", par, e.Key)
			}
			if tid, _ := r.TIDWord(); tid != e.TID {
				t.Fatalf("par=%d: %s TID %d, want %d", par, e.Key, tid, e.TID)
			}
			if !bytes.Equal(EncodeValue(r.Value()), EncodeValue(e.Value)) {
				t.Fatalf("par=%d: %s value mismatch", par, e.Key)
			}
		}
	}
}

// TestSnapshotV2EmptyRoundTrip: a stream with zero entries is valid.
func TestSnapshotV2EmptyRoundTrip(t *testing.T) {
	raw := writeV2(t, nil)
	got, err := ReadSnapshot(bytes.NewReader(raw))
	if err != nil || len(got) != 0 {
		t.Fatalf("empty v2 snapshot: %d entries, err=%v", len(got), err)
	}
}

// TestSnapshotV2CorruptionDetected: the all-or-nothing policy holds for
// the streamed format, including its terminator-specific failure modes
// (missing terminator, wrong terminator count, trailing bytes).
func TestSnapshotV2CorruptionDetected(t *testing.T) {
	raw := writeV2(t, snapshotFixture())
	for _, tc := range []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"bad magic", func(b []byte) []byte { c := clone(b); c[0] ^= 0xFF; return c }},
		{"bit flip", func(b []byte) []byte { c := clone(b); c[20] ^= 0x10; return c }},
		{"truncated mid-frame", func(b []byte) []byte { return b[:30] }},
		{"missing terminator", func(b []byte) []byte { return b[:len(b)-16] }},
		{"truncated terminator", func(b []byte) []byte { return b[:len(b)-7] }},
		{"trailing bytes", func(b []byte) []byte { return append(clone(b), 0xAB) }},
		{"terminator count lies", func(b []byte) []byte {
			c := clone(b)
			// The count occupies the final 8 bytes; bump it and fix its CRC
			// so only the count check can object.
			binary.LittleEndian.PutUint64(c[len(c)-8:], 99)
			binary.LittleEndian.PutUint32(c[len(c)-12:], crc32.Checksum(c[len(c)-8:], snapCastagnoli))
			return c
		}},
		{"dropped last frame keeps terminator", func(b []byte) []byte {
			// Cut one whole frame out before the terminator: every frame
			// still decodes, only the terminator count can notice.
			c := clone(b)
			term := c[len(c)-16:]
			body := c[len(snapshotMagic2) : len(c)-16]
			// Walk frames to find the last one's start.
			off, last := 0, 0
			for off < len(body) {
				last = off
				bl := int(binary.LittleEndian.Uint32(body[off:]))
				off += 8 + bl
			}
			out := append([]byte{}, c[:len(snapshotMagic2)]...)
			out = append(out, body[:last]...)
			return append(out, term...)
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			mutated := tc.mutate(raw)
			if _, err := ReadSnapshot(bytes.NewReader(mutated)); err == nil {
				t.Fatal("sequential reader accepted corruption")
			}
			for _, par := range []int{1, 4} {
				if _, err := ReadSnapshotInto(bytes.NewReader(mutated), New(), par, false); err == nil {
					t.Fatalf("parallel reader accepted corruption at parallelism %d", par)
				}
			}
		})
	}
}

// TestReadSnapshotIntoTIDFiltered: with the per-key TID filter on,
// snapshot entries must lose to newer state already installed by
// concurrent segment replay, win over older state, and still install
// TID-0 entries into untouched records.
func TestReadSnapshotIntoTIDFiltered(t *testing.T) {
	entries := []SnapshotEntry{
		{Key: "stale", TID: 100, Value: IntValue(1)}, // replay already wrote TID 500
		{Key: "fresh", TID: 100, Value: IntValue(2)}, // store untouched
		{Key: "old", TID: 100, Value: IntValue(3)},   // replay wrote an older... impossible in practice, but filter must be safe
		{Key: "zero", TID: 0, Value: IntValue(4)},    // preloaded-before-crash record
		{Key: "zerohit", TID: 0, Value: IntValue(5)}, // replay beat the zero entry
	}
	raw := writeV2(t, entries)
	for _, par := range []int{1, 4} {
		st := New()
		// Simulate what concurrent segment replay may already have done.
		r, _ := st.GetOrCreate("stale")
		r.InstallIfNewer(IntValue(100), 500)
		r, _ = st.GetOrCreate("old")
		r.InstallIfNewer(IntValue(300), 50)
		r, _ = st.GetOrCreate("zerohit")
		r.InstallIfNewer(IntValue(500), 700)

		if _, err := ReadSnapshotInto(bytes.NewReader(raw), st, par, true); err != nil {
			t.Fatal(err)
		}
		wantVal := func(key string, want int64, wantTID uint64) {
			t.Helper()
			rec := st.Get(key)
			if rec == nil {
				t.Fatalf("par=%d: %s missing", par, key)
			}
			n, err := rec.Value().AsInt()
			if err != nil || n != want {
				t.Fatalf("par=%d: %s = %d (%v), want %d", par, key, n, err, want)
			}
			if tid, _ := rec.TIDWord(); tid != wantTID {
				t.Fatalf("par=%d: %s TID %d, want %d", par, key, tid, wantTID)
			}
		}
		wantVal("stale", 100, 500) // newer replay state survives the snapshot
		wantVal("fresh", 2, 100)   // snapshot installs into an untouched store
		wantVal("old", 3, 100)     // snapshot wins over lower-TID state
		wantVal("zero", 4, 0)      // TID-0 snapshot entry installs when the record is empty
		wantVal("zerohit", 500, 700)
	}
}

// TestStreamCaptureEmitErrorDeactivates: an emit failure mid-walk must
// still run the capture protocol to completion (drain, seal,
// deactivate) so writers stop paying the copy-on-write hook and a later
// capture works normally.
func TestStreamCaptureEmitErrorDeactivates(t *testing.T) {
	st := New()
	for i := 0; i < 50; i++ {
		st.PreloadTID(fmt.Sprintf("k%d", i), IntValue(int64(i)), uint64(i+1))
	}
	boom := errors.New("writer died")
	c := st.StartCapture()
	emitted := 0
	if _, err := st.StreamCapture(c, func(SnapshotEntry) error {
		emitted++
		if emitted > 3 {
			return boom
		}
		return nil
	}); !errors.Is(err, boom) {
		t.Fatalf("StreamCapture error = %v, want %v", err, boom)
	}
	// A fresh capture must still see the whole store.
	entries, _ := st.CollectCapture(st.StartCapture())
	if len(entries) != 50 {
		t.Fatalf("capture after emit failure: %d entries, want 50", len(entries))
	}
}
