// Package store is the shared-memory substrate every engine in this
// repository builds on: immutable typed values, the semantics of the
// paper's splittable operations (§4, implemented in ops.go), records
// with Silo-style TID words (record.go), and a sharded hash-map
// key/value store with per-key locks (§6, store.go).
//
// # Invariants
//
// Values are immutable: applying an operation produces a fresh *Value,
// never a mutation. Records publish values through an atomic pointer,
// which makes the Silo read protocol (read TID word, read value,
// re-check TID word) race-free under the Go memory model.
//
// Per-key TID monotonicity: every install of a (value, TID) pair on a
// record carries a TID strictly greater than the record's previous one.
// The commit protocols guarantee this during normal operation (commit
// TIDs exceed every observed TID), recovery preserves it by restoring
// pre-crash TIDs (PreloadTID) and applying redo records under the
// highest-TID-wins rule (Record.InstallIfNewer). Everything downstream
// leans on it: OCC validation, snapshot/replay deduplication, and the
// order-independence of parallel recovery.
//
// # Durability hooks
//
// snapshot.go defines the checkpoint snapshot codec (canonical,
// CRC-framed, loadable in parallel with ReadSnapshotInto); cow.go
// implements the incremental copy-on-write capture protocol that lets a
// checkpoint collect a consistent snapshot concurrently with writers
// after an O(1) barrier. Engines that install values while a capture
// may be active must call SaveBeforeWrite under the record's commit
// lock first.
package store
