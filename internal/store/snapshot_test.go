package store

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"testing"
)

func snapshotFixture() []SnapshotEntry {
	tk := NewTopK(3)
	tk = tk.Insert(TopKEntry{Order: 9, CoreID: 1, Data: []byte("gold")})
	tk = tk.Insert(TopKEntry{Order: 4, CoreID: 0, Data: []byte("silver")})
	return []SnapshotEntry{
		{Key: "int", TID: 0x100, Value: IntValue(-7)},
		{Key: "bytes", TID: 0x200, Value: BytesValue([]byte("hello"))},
		{Key: "tuple", TID: 0x300, Value: TupleValue(Tuple{Order: Order{A: 1, B: 2}, CoreID: 3, Data: []byte("t")})},
		{Key: "topk", TID: 0x400, Value: TopKValue(tk)},
		{Key: "absent", TID: 0x500, Value: nil},
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	entries := snapshotFixture()
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, entries); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(entries) {
		t.Fatalf("got %d entries, want %d", len(got), len(entries))
	}
	for i, e := range entries {
		g := got[i]
		if g.Key != e.Key || g.TID != e.TID {
			t.Fatalf("entry %d: got %q/%d want %q/%d", i, g.Key, g.TID, e.Key, e.TID)
		}
		if !bytes.Equal(EncodeValue(g.Value), EncodeValue(e.Value)) {
			t.Fatalf("entry %d value mismatch", i)
		}
	}
}

func TestSnapshotEntriesCaptureState(t *testing.T) {
	s := New()
	s.PreloadTID("b", IntValue(2), 0x200)
	s.PreloadTID("a", IntValue(1), 0x100)
	s.PreloadTID("c", BytesValue([]byte("x")), 0x300)
	es := s.SnapshotEntries() // order unspecified: sorting happens in WriteSnapshot
	if len(es) != 3 {
		t.Fatalf("entries: %+v", es)
	}
	byKey := map[string]SnapshotEntry{}
	for _, e := range es {
		byKey[e.Key] = e
	}
	a, ok := byKey["a"]
	if !ok || a.TID != 0x100 {
		t.Fatalf("TID not preserved: %+v", byKey)
	}
	if n, err := a.Value.AsInt(); err != nil || n != 1 {
		t.Fatalf("value: %v %v", n, err)
	}
	// Canonical order is the codec's job.
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, es); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Key != "a" || got[1].Key != "b" || got[2].Key != "c" {
		t.Fatalf("snapshot not sorted: %+v", got)
	}
	// PreloadTID must leave the record unlocked and readable.
	r := s.Get("a")
	if _, tid, ok := r.ReadConsistent(1); !ok || tid != 0x100 {
		t.Fatalf("record state: tid=%d ok=%v", tid, ok)
	}
}

func TestSnapshotCorruptionDetected(t *testing.T) {
	entries := snapshotFixture()
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, entries); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for _, tc := range []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"empty", func(b []byte) []byte { return nil }},
		{"bad magic", func(b []byte) []byte { c := clone(b); c[0] ^= 0xFF; return c }},
		{"truncated", func(b []byte) []byte { return b[:len(b)-5] }},
		{"bit flip", func(b []byte) []byte { c := clone(b); c[len(c)-3] ^= 0x10; return c }},
		{"trailing bytes", func(b []byte) []byte { return append(clone(b), 0xAB) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadSnapshot(bytes.NewReader(tc.mutate(raw))); err == nil {
				t.Fatal("corruption accepted")
			}
		})
	}
}

func clone(b []byte) []byte { return append([]byte(nil), b...) }

// TestReadSnapshotIntoMatchesReadSnapshot: the parallel loader must
// install exactly what the sequential reader decodes, at every
// parallelism level.
func TestReadSnapshotIntoMatchesReadSnapshot(t *testing.T) {
	var entries []SnapshotEntry
	for i := 0; i < 500; i++ {
		entries = append(entries, SnapshotEntry{
			Key: fmt.Sprintf("key-%04d", i), TID: uint64(i + 1), Value: IntValue(int64(i * 3)),
		})
	}
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, entries); err != nil {
		t.Fatal(err)
	}
	want, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{0, 1, 3, 8} {
		t.Run(fmt.Sprintf("par=%d", par), func(t *testing.T) {
			st := New()
			n, err := ReadSnapshotInto(bytes.NewReader(buf.Bytes()), st, par, false)
			if err != nil {
				t.Fatal(err)
			}
			if n != len(want) || st.Len() != len(want) {
				t.Fatalf("loaded %d entries into %d records, want %d", n, st.Len(), len(want))
			}
			for _, e := range want {
				r := st.Get(e.Key)
				if r == nil {
					t.Fatalf("%s missing", e.Key)
				}
				tid, _ := r.TIDWord()
				if tid != e.TID {
					t.Fatalf("%s TID %d, want %d", e.Key, tid, e.TID)
				}
				if !bytes.Equal(EncodeValue(r.Value()), EncodeValue(e.Value)) {
					t.Fatalf("%s value mismatch", e.Key)
				}
			}
		})
	}
}

// TestReadSnapshotIntoCorruptionDetected: the parallel loader keeps the
// sequential reader's all-or-nothing corruption policy.
func TestReadSnapshotIntoCorruptionDetected(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, snapshotFixture()); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for _, tc := range []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"bad magic", func(b []byte) []byte { c := clone(b); c[0] ^= 0xFF; return c }},
		{"truncated", func(b []byte) []byte { return b[:len(b)-5] }},
		{"bit flip", func(b []byte) []byte { c := clone(b); c[len(c)-3] ^= 0x10; return c }},
		{"trailing bytes", func(b []byte) []byte { return append(clone(b), 0xAB) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			for _, par := range []int{1, 4} {
				if _, err := ReadSnapshotInto(bytes.NewReader(tc.mutate(raw)), New(), par, false); err == nil {
					t.Fatalf("corruption accepted at parallelism %d", par)
				}
			}
		})
	}
}

// TestReadSnapshotIntoShortBody: a frame whose declared body is too
// short to hold even a key length must error, not panic in the
// key-sharding dispatch (regression: index out of range).
func TestReadSnapshotIntoShortBody(t *testing.T) {
	for _, bodyLen := range []int{0, 1, 2, 3} {
		var raw []byte
		raw = append(raw, snapshotMagic...)
		var hdr [8]byte
		binary.LittleEndian.PutUint64(hdr[:], 1) // one entry
		raw = append(raw, hdr[:]...)
		body := make([]byte, bodyLen)
		binary.LittleEndian.PutUint32(hdr[:4], uint32(bodyLen))
		binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(body, snapCastagnoli))
		raw = append(raw, hdr[:]...)
		raw = append(raw, body...)
		for _, par := range []int{1, 4} {
			if _, err := ReadSnapshotInto(bytes.NewReader(raw), New(), par, false); err == nil {
				t.Fatalf("bodyLen=%d accepted at parallelism %d", bodyLen, par)
			}
		}
		if _, err := ReadSnapshot(bytes.NewReader(raw)); err == nil {
			t.Fatalf("bodyLen=%d accepted by sequential reader", bodyLen)
		}
	}
}

// FuzzReadSnapshot: arbitrary bytes must never panic the reader, and
// anything it accepts must survive a write/read round trip unchanged
// (no wrong data).
func FuzzReadSnapshot(f *testing.F) {
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, snapshotFixture()); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	var v2 bytes.Buffer
	sw, err := NewSnapshotWriter(&v2)
	if err != nil {
		f.Fatal(err)
	}
	for _, e := range snapshotFixture() {
		if err := sw.Write(e); err != nil {
			f.Fatal(err)
		}
	}
	if err := sw.Close(); err != nil {
		f.Fatal(err)
	}
	f.Add(v2.Bytes())
	f.Add([]byte("DOPSNAP1"))
	f.Add([]byte("DOPSNAP2"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		entries, err := ReadSnapshot(bytes.NewReader(data))
		if err != nil {
			return
		}
		var re bytes.Buffer
		if err := WriteSnapshot(&re, entries); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		back, err := ReadSnapshot(bytes.NewReader(re.Bytes()))
		if err != nil {
			t.Fatalf("re-read failed: %v", err)
		}
		if len(back) != len(entries) {
			t.Fatalf("round trip changed entry count: %d != %d", len(back), len(entries))
		}
		for i := range back {
			if back[i].Key != entries[i].Key || back[i].TID != entries[i].TID ||
				!bytes.Equal(EncodeValue(back[i].Value), EncodeValue(entries[i].Value)) {
				t.Fatalf("round trip changed entry %d", i)
			}
		}
	})
}
