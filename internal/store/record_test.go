package store

import (
	"sync"
	"testing"
)

func TestRecordLockBasics(t *testing.T) {
	r := &Record{}
	if r.Locked() {
		t.Fatal("new record locked")
	}
	if !r.TryLock() {
		t.Fatal("TryLock on unlocked record failed")
	}
	if !r.Locked() {
		t.Fatal("record should be locked")
	}
	if r.TryLock() {
		t.Fatal("TryLock on locked record succeeded")
	}
	r.Unlock()
	if r.Locked() {
		t.Fatal("record should be unlocked")
	}
}

func TestRecordUnlockWithTID(t *testing.T) {
	r := &Record{}
	r.Lock()
	r.UnlockWithTID(42)
	tid, locked := r.TIDWord()
	if locked || tid != 42 {
		t.Fatalf("tid=%d locked=%v", tid, locked)
	}
	// Unlock preserves the TID.
	r.Lock()
	r.Unlock()
	tid, locked = r.TIDWord()
	if locked || tid != 42 {
		t.Fatalf("after plain unlock: tid=%d locked=%v", tid, locked)
	}
}

func TestRecordValueRoundTrip(t *testing.T) {
	r := &Record{}
	if r.Value() != nil {
		t.Fatal("new record should have absent value")
	}
	v := IntValue(9)
	r.SetValue(v)
	if r.Value() != v {
		t.Fatal("value not stored")
	}
}

func TestReadConsistentUnlocked(t *testing.T) {
	r := &Record{}
	r.SetValue(IntValue(5))
	r.Lock()
	r.UnlockWithTID(3)
	v, tid, ok := r.ReadConsistent(10)
	if !ok || tid != 3 {
		t.Fatalf("ok=%v tid=%d", ok, tid)
	}
	if n, _ := v.AsInt(); n != 5 {
		t.Fatalf("value = %d", n)
	}
}

func TestReadConsistentFailsWhileLocked(t *testing.T) {
	r := &Record{}
	r.SetValue(IntValue(5))
	r.Lock()
	if _, _, ok := r.ReadConsistent(5); ok {
		t.Fatal("read of locked record should fail")
	}
	r.Unlock()
	if _, _, ok := r.ReadConsistent(5); !ok {
		t.Fatal("read after unlock should succeed")
	}
}

func TestRecordLockSpins(t *testing.T) {
	r := &Record{}
	r.Lock()
	done := make(chan struct{})
	go func() {
		r.Lock() // must block until main unlocks
		r.Unlock()
		close(done)
	}()
	r.Unlock()
	<-done
}

// TestRecordConcurrentSiloProtocol hammers a record with writers that
// follow the commit protocol (lock, set value, unlock-with-tid) and
// readers that use ReadConsistent, verifying every successful read
// observed a (value, tid) pair installed together.
func TestRecordConcurrentSiloProtocol(t *testing.T) {
	r := &Record{}
	r.SetValue(IntValue(0))
	const writers = 4
	const perWriter = 2000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 1; i <= perWriter; i++ {
				tid := uint64(w*perWriter + i)
				r.Lock()
				r.SetValue(IntValue(int64(tid)))
				r.UnlockWithTID(tid)
			}
		}(w)
	}
	stop := make(chan struct{})
	var readerErr error
	var rwg sync.WaitGroup
	for g := 0; g < 2; g++ {
		rwg.Add(1)
		go func() {
			defer rwg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				v, tid, ok := r.ReadConsistent(100)
				if !ok {
					continue
				}
				n, err := v.AsInt()
				if err != nil {
					readerErr = err
					return
				}
				// The invariant installed by writers: value == tid.
				if tid != 0 && uint64(n) != tid {
					readerErr = errMismatch(n, tid)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	rwg.Wait()
	if readerErr != nil {
		t.Fatal(readerErr)
	}
}

type mismatchError struct {
	n   int64
	tid uint64
}

func errMismatch(n int64, tid uint64) error { return &mismatchError{n, tid} }

func (e *mismatchError) Error() string {
	return "torn read: value and tid do not match"
}

func TestRecordRWMutexDistinct(t *testing.T) {
	r := &Record{}
	r.RWMutex().Lock()
	// The 2PL mutex is independent of the OCC lock bit.
	if r.Locked() {
		t.Fatal("2PL mutex should not set the OCC lock bit")
	}
	if !r.TryLock() {
		t.Fatal("OCC lock should be acquirable while 2PL mutex held")
	}
	r.Unlock()
	r.RWMutex().Unlock()
}

func TestRecordFence(t *testing.T) {
	r := &Record{}
	if tok := r.FenceToken(); tok != 0 {
		t.Fatalf("new record fenced with token %d", tok)
	}
	if !r.Fence(7) {
		t.Fatal("Fence on unfenced record failed")
	}
	if tok := r.FenceToken(); tok != 7 {
		t.Fatalf("FenceToken = %d, want 7", tok)
	}
	// Re-fencing by the owner is idempotent (a key touched as both read
	// and write fences twice).
	if !r.Fence(7) {
		t.Fatal("owner re-fence failed")
	}
	// A foreign token must not steal the fence.
	if r.Fence(9) {
		t.Fatal("foreign fence succeeded over a held fence")
	}
	// Foreign release is a no-op.
	r.Unfence(9)
	if tok := r.FenceToken(); tok != 7 {
		t.Fatalf("foreign Unfence changed token to %d", tok)
	}
	r.Unfence(7)
	if tok := r.FenceToken(); tok != 0 {
		t.Fatalf("token %d after owner release, want 0", tok)
	}
	// Double release is a no-op; the record is reusable.
	r.Unfence(7)
	if !r.Fence(9) {
		t.Fatal("Fence after release failed")
	}
	r.Unfence(9)
}

func TestRecordFenceIndependentOfLock(t *testing.T) {
	// The fence word is separate from the TID/lock word: fencing does
	// not lock, and locking does not fence.
	r := &Record{}
	if !r.Fence(3) {
		t.Fatal("Fence failed")
	}
	if r.Locked() {
		t.Fatal("fenced record reports locked")
	}
	if !r.TryLock() {
		t.Fatal("TryLock on fenced record failed (fences must not block the lock word)")
	}
	if tok := r.FenceToken(); tok != 3 {
		t.Fatalf("lock cleared fence token: %d", tok)
	}
	r.UnlockWithTID(5)
	if tok := r.FenceToken(); tok != 3 {
		t.Fatalf("UnlockWithTID cleared fence token: %d", tok)
	}
	r.Unfence(3)
}
