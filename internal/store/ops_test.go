package store

import (
	"fmt"
	"testing"

	"doppel/internal/rng"
)

func TestOpKindStringAndClassification(t *testing.T) {
	split := map[OpKind]bool{
		OpAdd: true, OpMax: true, OpMin: true, OpMult: true,
		OpOPut: true, OpTopKInsert: true,
		OpGet: false, OpPut: false, OpNone: false,
	}
	for k, want := range split {
		if k.Splittable() != want {
			t.Errorf("%v splittable = %v, want %v", k, k.Splittable(), want)
		}
		if k.String() == "" {
			t.Errorf("empty String for %d", k)
		}
	}
	if OpKind(200).String() == "" {
		t.Error("unknown op kind String empty")
	}
	if OpGet.Write() || OpNone.Write() {
		t.Error("reads classified as writes")
	}
	if !OpPut.Write() || !OpAdd.Write() {
		t.Error("writes not classified")
	}
}

func TestApplyPut(t *testing.T) {
	v, err := Apply(IntValue(1), Op{Kind: OpPut, Val: BytesValue([]byte("x"))})
	if err != nil || v.Kind != KindBytes {
		t.Fatalf("put: %v %v", v, err)
	}
}

func TestApplyIntOps(t *testing.T) {
	cases := []struct {
		op   OpKind
		base *Value
		n    int64
		want int64
	}{
		{OpAdd, nil, 7, 7},
		{OpAdd, IntValue(10), 7, 17},
		{OpAdd, IntValue(10), -3, 7},
		{OpMult, nil, 7, 7},
		{OpMult, IntValue(10), 7, 70},
		{OpMax, nil, 7, 7},
		{OpMax, IntValue(10), 7, 10},
		{OpMax, IntValue(3), 7, 7},
		{OpMin, nil, 7, 7},
		{OpMin, IntValue(10), 7, 7},
		{OpMin, IntValue(3), 7, 3},
	}
	for _, c := range cases {
		v, err := Apply(c.base, Op{Kind: c.op, Int: c.n})
		if err != nil {
			t.Fatalf("%v: %v", c.op, err)
		}
		if got, _ := v.AsInt(); got != c.want {
			t.Errorf("%v(%v, %d) = %d, want %d", c.op, c.base, c.n, got, c.want)
		}
	}
}

func TestApplyTypeErrors(t *testing.T) {
	bad := BytesValue([]byte("s"))
	for _, k := range []OpKind{OpAdd, OpMax, OpMin, OpMult} {
		if _, err := Apply(bad, Op{Kind: k, Int: 1}); err == nil {
			t.Errorf("%v on bytes should fail", k)
		}
	}
	if _, err := Apply(IntValue(1), Op{Kind: OpOPut}); err == nil {
		t.Error("oput on int should fail")
	}
	if _, err := Apply(IntValue(1), Op{Kind: OpTopKInsert}); err == nil {
		t.Error("topk-insert on int should fail")
	}
	if _, err := Apply(IntValue(1), Op{Kind: OpGet}); err == nil {
		t.Error("apply of a read should fail")
	}
	if _, err := Apply(IntValue(1), Op{Kind: OpKind(77)}); err == nil {
		t.Error("apply of unknown op should fail")
	}
}

func TestApplyOPut(t *testing.T) {
	t1 := Tuple{Order: Order{5, 0}, CoreID: 1, Data: []byte("a")}
	t2 := Tuple{Order: Order{6, 0}, CoreID: 0, Data: []byte("b")}
	v, err := Apply(nil, Op{Kind: OpOPut, Tuple: t1})
	if err != nil {
		t.Fatal(err)
	}
	v, err = Apply(v, Op{Kind: OpOPut, Tuple: t2})
	if err != nil {
		t.Fatal(err)
	}
	tp, _, _ := v.AsTuple()
	if string(tp.Data) != "b" {
		t.Fatalf("higher order should win: %+v", tp)
	}
	// Lower order does not replace.
	v, _ = Apply(v, Op{Kind: OpOPut, Tuple: t1})
	tp, _, _ = v.AsTuple()
	if string(tp.Data) != "b" {
		t.Fatalf("lower order replaced: %+v", tp)
	}
}

func TestApplyTopKCreatesWithK(t *testing.T) {
	v, err := Apply(nil, Op{Kind: OpTopKInsert, Entry: TopKEntry{Order: 1}, K: 7})
	if err != nil {
		t.Fatal(err)
	}
	tk, _ := v.AsTopK()
	if tk.K() != 7 || tk.Len() != 1 {
		t.Fatalf("topk create: %v", tk)
	}
}

func TestMergeValuesIdentity(t *testing.T) {
	g := IntValue(5)
	if got, err := MergeValues(OpAdd, g, nil); err != nil || got != g {
		t.Fatal("nil slice should be identity")
	}
	s := IntValue(3)
	if got, err := MergeValues(OpAdd, nil, s); err != nil || got != s {
		t.Fatal("nil global should return slice")
	}
}

func TestMergeValuesPerOp(t *testing.T) {
	check := func(op OpKind, g, s *Value, want int64) {
		t.Helper()
		v, err := MergeValues(op, g, s)
		if err != nil {
			t.Fatalf("%v: %v", op, err)
		}
		if got, _ := v.AsInt(); got != want {
			t.Fatalf("%v merge(%v,%v) = %d, want %d", op, g, s, got, want)
		}
	}
	check(OpAdd, IntValue(5), IntValue(3), 8)
	check(OpMult, IntValue(5), IntValue(3), 15)
	check(OpMax, IntValue(5), IntValue(3), 5)
	check(OpMax, IntValue(2), IntValue(3), 3)
	check(OpMin, IntValue(5), IntValue(3), 3)
	check(OpMin, IntValue(2), IntValue(3), 2)

	if _, err := MergeValues(OpPut, IntValue(1), IntValue(2)); err == nil {
		t.Fatal("merging a non-splittable op should fail")
	}
	if _, err := MergeValues(OpAdd, IntValue(1), BytesValue(nil)); err == nil {
		t.Fatal("type mismatch should fail")
	}
	if _, err := MergeValues(OpOPut, IntValue(1), TupleValue(Tuple{})); err == nil {
		t.Fatal("type mismatch should fail")
	}
}

func TestMergeValuesOPut(t *testing.T) {
	g := TupleValue(Tuple{Order: Order{5, 0}, CoreID: 1})
	s := TupleValue(Tuple{Order: Order{7, 0}, CoreID: 0})
	v, err := MergeValues(OpOPut, g, s)
	if err != nil {
		t.Fatal(err)
	}
	tp, _, _ := v.AsTuple()
	if tp.Order.A != 7 {
		t.Fatalf("slice should win: %+v", tp)
	}
	v, err = MergeValues(OpOPut, s, g)
	if err != nil {
		t.Fatal(err)
	}
	tp, _, _ = v.AsTuple()
	if tp.Order.A != 7 {
		t.Fatalf("global should win: %+v", tp)
	}
}

// randomOp generates a random splittable op for the given kind family.
func randomOp(r *rng.Rand, family OpKind, cores int) Op {
	switch family {
	case OpAdd, OpMax, OpMin:
		return Op{Kind: family, Int: int64(r.Intn(100)) - 50}
	case OpMult:
		// Small positive operands to avoid overflow in long products.
		return Op{Kind: OpMult, Int: int64(1 + r.Intn(3))}
	case OpOPut:
		return Op{Kind: OpOPut, Tuple: Tuple{
			Order:  Order{int64(r.Intn(20)), int64(r.Intn(5))},
			CoreID: int32(r.Intn(cores)),
			Data:   []byte(fmt.Sprintf("v%d", r.Intn(10))),
		}}
	case OpTopKInsert:
		return Op{Kind: OpTopKInsert, K: 4, Entry: TopKEntry{
			Order:  int64(r.Intn(20)),
			CoreID: int32(r.Intn(cores)),
			Data:   []byte(fmt.Sprintf("v%d", r.Intn(10))),
		}}
	}
	panic("unreachable")
}

// TestSplitMergeEquivalence is the central §5.6 correctness property:
// for every splittable operation, partitioning a stream of ops across
// per-core slices (each starting from the absent identity) and merging the
// slices into the global value in ANY order must equal applying the whole
// stream serially against the global store.
//
// For OPut and TopKInsert the op carries the core ID that executes it, so
// the partition assignment must follow the op's CoreID, exactly as Doppel
// executes them.
func TestSplitMergeEquivalence(t *testing.T) {
	families := []OpKind{OpAdd, OpMax, OpMin, OpMult, OpOPut, OpTopKInsert}
	r := rng.New(777)
	for _, family := range families {
		for trial := 0; trial < 200; trial++ {
			cores := 1 + r.Intn(5)
			n := r.Intn(30)
			ops := make([]Op, n)
			for i := range ops {
				ops[i] = randomOp(r, family, cores)
			}
			var initial *Value
			if r.Bool(0.5) && family != OpOPut && family != OpTopKInsert {
				initial = IntValue(int64(r.Intn(40)) - 20)
			}

			// Serial execution against the global store.
			serial := initial
			var err error
			for _, op := range ops {
				serial, err = Apply(serial, op)
				if err != nil {
					t.Fatal(err)
				}
			}

			// Split execution: per-core slices from identity, assigned by
			// the op's core (round-robin for integer ops, which carry no
			// core ID).
			slices := make([]*Value, cores)
			for i, op := range ops {
				c := i % cores
				if family == OpOPut {
					c = int(op.Tuple.CoreID)
				} else if family == OpTopKInsert {
					c = int(op.Entry.CoreID)
				}
				slices[c], err = Apply(slices[c], op)
				if err != nil {
					t.Fatal(err)
				}
			}
			perm := make([]int, cores)
			r.Perm(perm)
			merged := initial
			for _, c := range perm {
				merged, err = MergeValues(family, merged, slices[c])
				if err != nil {
					t.Fatal(err)
				}
			}
			if !merged.Equal(serial) {
				t.Fatalf("%v trial %d: split/merge %v != serial %v (init %v, ops %+v)",
					family, trial, merged, serial, initial, ops)
			}
		}
	}
}
