package store

import (
	"strings"
	"testing"
)

func TestKindString(t *testing.T) {
	kinds := []Kind{KindNone, KindInt64, KindBytes, KindTuple, KindTopK, Kind(99)}
	for _, k := range kinds {
		if k.String() == "" {
			t.Fatalf("empty string for kind %d", k)
		}
	}
}

func TestOrderLess(t *testing.T) {
	cases := []struct {
		a, b Order
		want bool
	}{
		{Order{1, 0}, Order{2, 0}, true},
		{Order{2, 0}, Order{1, 0}, false},
		{Order{1, 1}, Order{1, 2}, true},
		{Order{1, 2}, Order{1, 1}, false},
		{Order{1, 1}, Order{1, 1}, false},
		{Order{-5, 100}, Order{0, -100}, true},
	}
	for _, c := range cases {
		if got := c.a.Less(c.b); got != c.want {
			t.Errorf("%v < %v = %v, want %v", c.a, c.b, got, c.want)
		}
	}
	if !(Order{3, 4}).Equal(Order{3, 4}) {
		t.Error("Equal failed")
	}
}

func TestTupleWins(t *testing.T) {
	base := Tuple{Order: Order{10, 0}, CoreID: 3, Data: []byte("x")}
	cases := []struct {
		t    Tuple
		want bool
	}{
		{Tuple{Order: Order{11, 0}, CoreID: 0}, true},                     // higher order wins
		{Tuple{Order: Order{9, 0}, CoreID: 9}, false},                     // lower order loses
		{Tuple{Order: Order{10, 0}, CoreID: 4}, true},                     // tie: higher core wins
		{Tuple{Order: Order{10, 0}, CoreID: 2}, false},                    // tie: lower core loses
		{Tuple{Order: Order{10, 0}, CoreID: 3, Data: []byte("y")}, true},  // full tie: larger data
		{Tuple{Order: Order{10, 0}, CoreID: 3, Data: []byte("w")}, false}, // full tie: smaller data
		{base, false}, // identical: no replacement
	}
	for i, c := range cases {
		if got := c.t.wins(base); got != c.want {
			t.Errorf("case %d: wins=%v want %v", i, got, c.want)
		}
	}
}

func TestValueAccessors(t *testing.T) {
	iv := IntValue(42)
	if n, err := iv.AsInt(); err != nil || n != 42 {
		t.Fatalf("AsInt: %d, %v", n, err)
	}
	if _, err := iv.AsBytes(); err == nil {
		t.Fatal("expected type error")
	}
	if _, _, err := iv.AsTuple(); err == nil {
		t.Fatal("expected type error")
	}
	if _, err := iv.AsTopK(); err == nil {
		t.Fatal("expected type error")
	}

	bv := BytesValue([]byte("hi"))
	if b, err := bv.AsBytes(); err != nil || string(b) != "hi" {
		t.Fatalf("AsBytes: %q, %v", b, err)
	}
	if _, err := bv.AsInt(); err == nil {
		t.Fatal("expected type error")
	}

	tv := TupleValue(Tuple{Order: Order{1, 2}, CoreID: 7, Data: []byte("d")})
	tp, ok, err := tv.AsTuple()
	if err != nil || !ok || tp.CoreID != 7 {
		t.Fatalf("AsTuple: %+v %v %v", tp, ok, err)
	}

	kv := TopKValue(NewTopK(3))
	if tk, err := kv.AsTopK(); err != nil || tk.K() != 3 {
		t.Fatalf("AsTopK: %v %v", tk, err)
	}
}

func TestNilValueAccessors(t *testing.T) {
	var v *Value
	if n, err := v.AsInt(); err != nil || n != 0 {
		t.Fatal("nil AsInt should be 0")
	}
	if b, err := v.AsBytes(); err != nil || b != nil {
		t.Fatal("nil AsBytes should be nil")
	}
	if _, ok, err := v.AsTuple(); err != nil || ok {
		t.Fatal("nil AsTuple should be absent")
	}
	if tk, err := v.AsTopK(); err != nil || tk != nil {
		t.Fatal("nil AsTopK should be nil")
	}
}

func TestValueEqual(t *testing.T) {
	var nilV *Value
	if !nilV.Equal(nil) {
		t.Fatal("nil == nil")
	}
	if IntValue(1).Equal(nil) || nilV.Equal(IntValue(1)) {
		t.Fatal("nil != non-nil")
	}
	if !IntValue(5).Equal(IntValue(5)) || IntValue(5).Equal(IntValue(6)) {
		t.Fatal("int equality")
	}
	if IntValue(5).Equal(BytesValue([]byte("5"))) {
		t.Fatal("cross-kind equality")
	}
	if !BytesValue([]byte("a")).Equal(BytesValue([]byte("a"))) {
		t.Fatal("bytes equality")
	}
	tup := Tuple{Order: Order{1, 2}, CoreID: 3, Data: []byte("z")}
	if !TupleValue(tup).Equal(TupleValue(tup)) {
		t.Fatal("tuple equality")
	}
	tup2 := tup
	tup2.CoreID = 4
	if TupleValue(tup).Equal(TupleValue(tup2)) {
		t.Fatal("tuple inequality")
	}
	a := NewTopK(2).Insert(TopKEntry{Order: 1, Data: []byte("a")})
	b := NewTopK(2).Insert(TopKEntry{Order: 1, Data: []byte("a")})
	if !TopKValue(a).Equal(TopKValue(b)) {
		t.Fatal("topk equality")
	}
}

func TestValueString(t *testing.T) {
	var nilV *Value
	vals := []*Value{nilV, IntValue(1), BytesValue([]byte("b")),
		TupleValue(Tuple{}), TopKValue(NewTopK(1)), {Kind: KindNone}}
	for _, v := range vals {
		if v.String() == "" {
			t.Fatalf("empty String for %#v", v)
		}
	}
	if !strings.Contains(IntValue(7).String(), "7") {
		t.Fatal("int string should contain the value")
	}
}
