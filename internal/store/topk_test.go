package store

import (
	"fmt"
	"testing"
	"testing/quick"

	"doppel/internal/rng"
)

func TestTopKBasicInsert(t *testing.T) {
	s := NewTopK(3)
	s = s.Insert(TopKEntry{Order: 5, CoreID: 0, Data: []byte("e")})
	s = s.Insert(TopKEntry{Order: 9, CoreID: 0, Data: []byte("i")})
	s = s.Insert(TopKEntry{Order: 7, CoreID: 0, Data: []byte("g")})
	got := s.Entries()
	if len(got) != 3 || got[0].Order != 9 || got[1].Order != 7 || got[2].Order != 5 {
		t.Fatalf("bad order: %+v", got)
	}
}

func TestTopKBound(t *testing.T) {
	s := NewTopK(2)
	for i := int64(0); i < 10; i++ {
		s = s.Insert(TopKEntry{Order: i})
	}
	if s.Len() != 2 {
		t.Fatalf("len = %d", s.Len())
	}
	if s.Entries()[0].Order != 9 || s.Entries()[1].Order != 8 {
		t.Fatalf("kept wrong entries: %+v", s.Entries())
	}
	if min, ok := s.Min(); !ok || min != 8 {
		t.Fatalf("min = %d, %v", min, ok)
	}
}

func TestTopKDuplicateOrderHighestCoreWins(t *testing.T) {
	s := NewTopK(5)
	s = s.Insert(TopKEntry{Order: 3, CoreID: 1, Data: []byte("one")})
	s = s.Insert(TopKEntry{Order: 3, CoreID: 4, Data: []byte("four")})
	s = s.Insert(TopKEntry{Order: 3, CoreID: 2, Data: []byte("two")})
	if s.Len() != 1 {
		t.Fatalf("dup orders not collapsed: %+v", s.Entries())
	}
	if e := s.Entries()[0]; e.CoreID != 4 || string(e.Data) != "four" {
		t.Fatalf("wrong winner: %+v", e)
	}
}

func TestTopKInsertImmutable(t *testing.T) {
	a := NewTopK(3).Insert(TopKEntry{Order: 1})
	b := a.Insert(TopKEntry{Order: 2})
	if a.Len() != 1 {
		t.Fatalf("insert mutated receiver: %+v", a.Entries())
	}
	if b.Len() != 2 {
		t.Fatalf("insert result wrong: %+v", b.Entries())
	}
}

func TestTopKMergeEmptyAndNil(t *testing.T) {
	a := NewTopK(3).Insert(TopKEntry{Order: 1})
	if m := a.Merge(nil); !m.Equal(a) {
		t.Fatal("merge with nil should be identity")
	}
	var nilT *TopK
	if m := nilT.Merge(a); !m.Equal(a) {
		t.Fatal("merge into nil should return other")
	}
	if nilT.Len() != 0 || nilT.K() != 0 {
		t.Fatal("nil set should be empty")
	}
	if _, ok := nilT.Min(); ok {
		t.Fatal("nil Min should report empty")
	}
}

func TestTopKMergeDedup(t *testing.T) {
	a := NewTopK(4).
		Insert(TopKEntry{Order: 10, CoreID: 1}).
		Insert(TopKEntry{Order: 8, CoreID: 1})
	b := NewTopK(4).
		Insert(TopKEntry{Order: 10, CoreID: 2}).
		Insert(TopKEntry{Order: 9, CoreID: 2})
	m := a.Merge(b)
	if m.Len() != 3 {
		t.Fatalf("merge dedup wrong: %+v", m.Entries())
	}
	if e := m.Entries()[0]; e.Order != 10 || e.CoreID != 2 {
		t.Fatalf("dup order winner wrong: %+v", e)
	}
}

func TestTopKZeroK(t *testing.T) {
	s := NewTopK(0) // clamped to 1
	s = s.Insert(TopKEntry{Order: 1}).Insert(TopKEntry{Order: 2})
	if s.Len() != 1 || s.Entries()[0].Order != 2 {
		t.Fatalf("K clamp failed: %+v", s.Entries())
	}
	var nilSet *TopK
	got := nilSet.Insert(TopKEntry{Order: 7})
	if got.Len() != 1 {
		t.Fatal("insert into nil set failed")
	}
}

// applySeq folds a sequence of entries into a top-K set.
func applySeq(k int, entries []TopKEntry) *TopK {
	s := NewTopK(k)
	for _, e := range entries {
		s = s.Insert(e)
	}
	return s
}

// TestTopKMergeEquivalentToSerial is the §4 correctness property for
// TopKInsert: partitioning a stream of inserts across per-core slices and
// merging must equal applying the whole stream serially, regardless of
// partition or order.
func TestTopKMergeEquivalentToSerial(t *testing.T) {
	r := rng.New(2024)
	for trial := 0; trial < 300; trial++ {
		k := 1 + r.Intn(6)
		n := r.Intn(40)
		cores := 1 + r.Intn(4)
		entries := make([]TopKEntry, n)
		for i := range entries {
			entries[i] = TopKEntry{
				Order:  int64(r.Intn(15)),
				CoreID: int32(r.Intn(cores)),
				Data:   []byte(fmt.Sprintf("d%d", r.Intn(8))),
			}
		}
		serial := applySeq(k, entries)

		// Partition by core, apply to per-core slices, then merge in a
		// random core order.
		slices := make([]*TopK, cores)
		for c := range slices {
			slices[c] = NewTopK(k)
		}
		for _, e := range entries {
			slices[e.CoreID] = slices[e.CoreID].Insert(e)
		}
		perm := make([]int, cores)
		r.Perm(perm)
		merged := NewTopK(k)
		for _, c := range perm {
			merged = merged.Merge(slices[c])
		}
		if !merged.Equal(serial) {
			t.Fatalf("trial %d: merged %+v != serial %+v (entries %+v)",
				trial, merged.Entries(), serial.Entries(), entries)
		}
	}
}

func TestTopKMergeCommutative(t *testing.T) {
	f := func(ordersA, ordersB []uint8) bool {
		a, b := NewTopK(4), NewTopK(4)
		for _, o := range ordersA {
			a = a.Insert(TopKEntry{Order: int64(o % 10), CoreID: 1})
		}
		for _, o := range ordersB {
			b = b.Insert(TopKEntry{Order: int64(o % 10), CoreID: 2})
		}
		return a.Merge(b).Equal(b.Merge(a))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestTopKString(t *testing.T) {
	var nilT *TopK
	if nilT.String() == "" || NewTopK(2).String() == "" {
		t.Fatal("empty String")
	}
}
