package store

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// This file implements incremental copy-on-write state capture, the
// store half of the incremental checkpoint: instead of collecting every
// record while all workers are stalled at a barrier (an O(records)
// pause), the barrier only installs a Capture — O(1) — and the
// checkpointer walks the store afterwards, concurrently with writers.
//
// The protocol is a per-record claim race on Record.capGen. Exactly one
// party saves each record's barrier-time state per capture generation:
//
//   - A writer about to install a post-barrier value calls
//     SaveBeforeWrite while holding the record's commit lock. If the
//     record is unclaimed it saves the record's current (pre-write)
//     value, which is the barrier value because the claim proves no
//     earlier post-barrier write landed.
//   - The walker visits every record, reads a consistent (TID, value)
//     pair with the Silo read protocol, and claims the record with a
//     compare-and-swap on capGen. A successful claim proves the pair
//     predates every post-barrier write (any such write would have
//     claimed the record first), so the pair is the barrier state.
//
// Correctness leans on two engine invariants: no commit is in flight at
// the barrier (it runs at a quiesced phase boundary), and every
// post-barrier install of a value or TID on a captured store goes
// through SaveBeforeWrite while holding the record's commit lock. A
// writer therefore cannot straddle two captures: captures start only at
// quiesced barriers, where no writer holds a commit lock.

// captureReadSpins bounds one consistent-read attempt during the walk
// before yielding the processor; commit locks are held briefly, so the
// walk retries rather than aborting.
const captureReadSpins = 256

// Capture is one incremental copy-on-write capture in progress: the
// consistent snapshot of the store as of the barrier that called
// StartCapture, assembled concurrently with post-barrier writers.
type Capture struct {
	gen uint64

	// pending counts writers that may hold an unprocessed claim: it is
	// incremented before a writer's capGen CAS and decremented after its
	// save completes. CollectCapture drains it to zero after the walk and
	// before sealing, so a claim that beat the walker (making the walker
	// skip the record) can never have its save discarded by the seal.
	pending atomic.Int64

	mu       sync.Mutex
	sealed   bool
	saved    []SnapshotEntry // pre-barrier values saved by writers
	cowSaves int             // how many records writers had to copy
}

// StartCapture begins a copy-on-write capture of the store's state as
// of this call and returns its handle. It is O(1): the caller (the
// checkpoint barrier) must invoke it at a quiesced point with no commit
// in flight. Captures must not overlap; the previous capture must have
// been collected before a new one starts.
func (s *Store) StartCapture() *Capture {
	c := &Capture{gen: s.captureGen.Add(1)}
	s.capture.Store(c)
	return c
}

// SaveBeforeWrite is the writer half of the copy-on-write protocol.
// Engines must call it with r's commit lock held, after deciding to
// install a new value or TID and before doing so. When a capture is
// active and the record is unclaimed for it, the record's current state
// — its pre-barrier state — is saved into the capture. When no capture
// is active the cost is one atomic load.
func (s *Store) SaveBeforeWrite(key string, r *Record) {
	c := s.capture.Load()
	if c == nil {
		return
	}
	g := r.capGen.Load()
	if g == c.gen {
		return // already captured for this generation
	}
	// Announce the claim attempt before making it, so the collector's
	// pre-seal drain (see Capture.pending) covers the window between a
	// winning CAS and the append below.
	c.pending.Add(1)
	if !r.capGen.CompareAndSwap(g, c.gen) {
		c.pending.Add(-1)
		return // someone else captured it
	}
	tid, _ := r.TIDWord()
	e := SnapshotEntry{Key: key, TID: tid, Value: r.Value()}
	c.mu.Lock()
	if !c.sealed {
		c.saved = append(c.saved, e)
		c.cowSaves++
	}
	// A claim processed after the seal can only be a record created after
	// the barrier: the walk resolved every record that existed when it
	// ran, and the seal happens only after claims that beat the walker
	// have drained. Such a record's barrier state is "absent" — dropped.
	c.mu.Unlock()
	c.pending.Add(-1)
}

// CollectCapture walks the store concurrently with writers and returns
// the complete barrier-time state of capture c, in unspecified order,
// along with how many records post-barrier writers had to copy. Records
// with no value at the barrier (created by reads, or created after the
// barrier) are omitted. It must be called exactly once per capture, and
// it deactivates the capture before returning. Callers that can consume
// entries one at a time should use StreamCapture instead, which does not
// materialize the store.
func (s *Store) CollectCapture(c *Capture) (entries []SnapshotEntry, cowSaves int) {
	entries = make([]SnapshotEntry, 0, s.Len())
	cowSaves, _ = s.StreamCapture(c, func(e SnapshotEntry) error {
		entries = append(entries, e)
		return nil
	})
	return entries, cowSaves
}

// StreamCapture is CollectCapture without the slice: it resolves capture
// c concurrently with writers, calling emit once per record that had a
// value at the barrier, in unspecified order. Memory stays bounded by
// one shard's contents plus the writer-copied entries (O(copy-on-write
// saves), itself bounded by the writes that raced the walk) — never by
// the store size. Like CollectCapture it must be called exactly once per
// capture and deactivates the capture before returning, even when emit
// fails: on an emit error the walk stops emitting, finishes the
// deactivation protocol, and returns the error with the cowSaves count
// so far. emit runs on the caller's goroutine.
func (s *Store) StreamCapture(c *Capture, emit func(SnapshotEntry) error) (cowSaves int, err error) {
	var keys []string
	var recs []*Record
	for i := range s.shards {
		if err != nil {
			break
		}
		sh := &s.shards[i]
		// Copy the shard's contents so record claims spin without the
		// shard lock held. Records inserted after this copy were created
		// after the barrier and have no barrier state to save.
		sh.mu.RLock()
		keys, recs = keys[:0], recs[:0]
		for k, r := range sh.m {
			keys = append(keys, k)
			recs = append(recs, r)
		}
		sh.mu.RUnlock()
		for j, r := range recs {
			if err != nil {
				break
			}
			for {
				g := r.capGen.Load()
				if g == c.gen {
					break // a writer already saved this record's barrier state
				}
				v, tid, ok := r.ReadConsistent(captureReadSpins)
				if !ok {
					runtime.Gosched() // commit in progress; retry shortly
					continue
				}
				// The claim validates the read: if it fails, a writer
				// claimed (and saved) the record between our read and now.
				if r.capGen.CompareAndSwap(g, c.gen) && v != nil {
					err = emit(SnapshotEntry{Key: keys[j], TID: tid, Value: v})
				}
				break
			}
		}
	}
	// Drain in-flight claims before sealing: a writer that won its claim
	// during the walk made the walker skip that record, so its save must
	// land before the seal or the record would vanish from the snapshot.
	// This runs even after an emit error — the capture must always be
	// deactivated so writers stop paying the copy-on-write hook.
	for c.pending.Load() != 0 {
		runtime.Gosched()
	}
	// Seal: laggard writers that loaded the capture pointer before it is
	// cleared must not append concurrently with the caller reading saved.
	c.mu.Lock()
	c.sealed = true
	saved := c.saved
	cowSaves = c.cowSaves
	c.saved = nil
	c.mu.Unlock()
	s.capture.CompareAndSwap(c, nil)
	for _, e := range saved {
		if err != nil {
			break
		}
		if e.Value != nil {
			err = emit(e)
		}
	}
	return cowSaves, err
}
