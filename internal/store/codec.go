package store

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// EncodeValue serializes a value for redo logging and snapshots. The
// format is one kind byte followed by a kind-specific payload; absent
// values (nil) encode as a single zero byte.
func EncodeValue(v *Value) []byte { return AppendValue(nil, v) }

// AppendValue is EncodeValue into a caller-owned buffer: it appends the
// encoding of v to dst and returns the extended slice. The streaming
// snapshot writer uses it so encoding a store of any size reuses one
// buffer instead of allocating per entry.
func AppendValue(dst []byte, v *Value) []byte {
	if v == nil {
		return append(dst, byte(KindNone))
	}
	switch v.Kind {
	case KindInt64:
		dst = append(dst, byte(KindInt64))
		return binary.LittleEndian.AppendUint64(dst, uint64(v.Int))
	case KindBytes:
		dst = append(dst, byte(KindBytes))
		return append(dst, v.Bytes...)
	case KindTuple:
		dst = append(dst, byte(KindTuple))
		dst = binary.LittleEndian.AppendUint64(dst, uint64(v.Tuple.Order.A))
		dst = binary.LittleEndian.AppendUint64(dst, uint64(v.Tuple.Order.B))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(v.Tuple.CoreID))
		return append(dst, v.Tuple.Data...)
	case KindTopK:
		dst = append(dst, byte(KindTopK))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(v.TopK.K()))
		es := v.TopK.Entries()
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(es)))
		for _, e := range es {
			dst = binary.LittleEndian.AppendUint64(dst, uint64(e.Order))
			dst = binary.LittleEndian.AppendUint32(dst, uint32(e.CoreID))
			dst = binary.LittleEndian.AppendUint32(dst, uint32(len(e.Data)))
			dst = append(dst, e.Data...)
		}
		return dst
	default:
		return append(dst, byte(KindNone))
	}
}

// DecodeValue parses EncodeValue's output.
func DecodeValue(raw []byte) (*Value, error) {
	if len(raw) == 0 {
		return nil, errors.New("store: empty encoded value")
	}
	kind := Kind(raw[0])
	body := raw[1:]
	switch kind {
	case KindNone:
		return nil, nil
	case KindInt64:
		if len(body) != 8 {
			return nil, fmt.Errorf("store: int64 payload of %d bytes", len(body))
		}
		return IntValue(int64(binary.LittleEndian.Uint64(body))), nil
	case KindBytes:
		b := make([]byte, len(body))
		copy(b, body)
		return BytesValue(b), nil
	case KindTuple:
		if len(body) < 20 {
			return nil, fmt.Errorf("store: tuple payload of %d bytes", len(body))
		}
		data := make([]byte, len(body)-20)
		copy(data, body[20:])
		return TupleValue(Tuple{
			Order:  Order{A: int64(binary.LittleEndian.Uint64(body)), B: int64(binary.LittleEndian.Uint64(body[8:]))},
			CoreID: int32(binary.LittleEndian.Uint32(body[16:])),
			Data:   data,
		}), nil
	case KindTopK:
		if len(body) < 8 {
			return nil, fmt.Errorf("store: topk payload of %d bytes", len(body))
		}
		k := int(binary.LittleEndian.Uint32(body))
		n := binary.LittleEndian.Uint32(body[4:])
		body = body[8:]
		set := NewTopK(k)
		for i := uint32(0); i < n; i++ {
			if len(body) < 16 {
				return nil, errors.New("store: truncated topk entry")
			}
			order := int64(binary.LittleEndian.Uint64(body))
			coreID := int32(binary.LittleEndian.Uint32(body[8:]))
			dl := binary.LittleEndian.Uint32(body[12:])
			body = body[16:]
			if uint32(len(body)) < dl {
				return nil, errors.New("store: truncated topk data")
			}
			data := make([]byte, dl)
			copy(data, body[:dl])
			body = body[dl:]
			set = set.Insert(TopKEntry{Order: order, CoreID: coreID, Data: data})
		}
		if len(body) != 0 {
			return nil, fmt.Errorf("store: %d trailing topk bytes", len(body))
		}
		return TopKValue(set), nil
	default:
		return nil, fmt.Errorf("store: unknown value kind %d", kind)
	}
}
