package store

import "fmt"

// OpKind identifies a database operation. Each operation accesses exactly
// one record (§3); transactions compose multi-record logic from these.
type OpKind uint8

// Operation kinds. The splittable subset (§4) is Add, Max, Min, Mult,
// OPut and TopKInsert: each commutes with itself and returns nothing.
const (
	OpNone       OpKind = iota
	OpGet               // read a record's value
	OpPut               // overwrite a record's value (does not commute)
	OpAdd               // integer addition
	OpMax               // integer maximum
	OpMin               // integer minimum
	OpMult              // integer multiplication (paper §4: "for instance, multiply")
	OpOPut              // ordered put on (order, coreID, data) tuples
	OpTopKInsert        // insert into a bounded top-K set
)

// String implements fmt.Stringer.
func (k OpKind) String() string {
	switch k {
	case OpNone:
		return "none"
	case OpGet:
		return "get"
	case OpPut:
		return "put"
	case OpAdd:
		return "add"
	case OpMax:
		return "max"
	case OpMin:
		return "min"
	case OpMult:
		return "mult"
	case OpOPut:
		return "oput"
	case OpTopKInsert:
		return "topk-insert"
	default:
		return fmt.Sprintf("op(%d)", uint8(k))
	}
}

// Splittable reports whether the operation may execute against per-core
// slices during a split phase: it must commute with itself and return
// nothing (§4 guidelines 1 and 2).
func (k OpKind) Splittable() bool {
	switch k {
	case OpAdd, OpMax, OpMin, OpMult, OpOPut, OpTopKInsert:
		return true
	default:
		return false
	}
}

// Write reports whether the operation modifies the database.
func (k OpKind) Write() bool { return k != OpGet && k != OpNone }

// Op is one buffered operation on one record: the kind plus its operands.
// For OpAdd/OpMax/OpMin/OpMult, Int is the integer operand. For OpPut,
// Val is the new value. For OpOPut, Tuple carries (order, coreID, data).
// For OpTopKInsert, Entry carries (order, coreID, data) and K bounds the
// set when the record is created by this insert.
type Op struct {
	Kind  OpKind
	Int   int64
	Val   *Value
	Tuple Tuple
	Entry TopKEntry
	K     int
}

// Apply returns the value resulting from applying op to v. It is a pure
// function: v is never mutated, absent (nil) inputs act as the
// operation's identity, and the result is a fresh immutable value. Both
// the joined-phase commit protocol and the per-core slice machinery use
// this single definition, so split execution cannot drift from joined
// execution.
func Apply(v *Value, op Op) (*Value, error) {
	switch op.Kind {
	case OpPut:
		return op.Val, nil
	case OpAdd:
		cur, err := v.AsInt()
		if err != nil {
			return nil, err
		}
		return IntValue(cur + op.Int), nil
	case OpMult:
		if v == nil {
			return IntValue(op.Int), nil
		}
		cur, err := v.AsInt()
		if err != nil {
			return nil, err
		}
		return IntValue(cur * op.Int), nil
	case OpMax:
		if v == nil {
			return IntValue(op.Int), nil
		}
		cur, err := v.AsInt()
		if err != nil {
			return nil, err
		}
		if op.Int > cur {
			return IntValue(op.Int), nil
		}
		return v, nil
	case OpMin:
		if v == nil {
			return IntValue(op.Int), nil
		}
		cur, err := v.AsInt()
		if err != nil {
			return nil, err
		}
		if op.Int < cur {
			return IntValue(op.Int), nil
		}
		return v, nil
	case OpOPut:
		cur, present, err := v.AsTuple()
		if err != nil {
			return nil, err
		}
		if !present || op.Tuple.wins(cur) {
			return TupleValue(op.Tuple), nil
		}
		return v, nil
	case OpTopKInsert:
		cur, err := v.AsTopK()
		if err != nil {
			return nil, err
		}
		if cur == nil {
			cur = NewTopK(op.K)
		}
		return TopKValue(cur.Insert(op.Entry)), nil
	default:
		return nil, fmt.Errorf("store: cannot apply %v", op.Kind)
	}
}

// MergeValues combines a per-core slice value into a global value for the
// given selected operation; it is the merge-apply step of the paper's
// reconciliation protocol (Figure 4, Figure 5). Either argument may be
// nil (absent / identity).
func MergeValues(op OpKind, global, slice *Value) (*Value, error) {
	if slice == nil {
		return global, nil
	}
	if global == nil {
		return slice, nil
	}
	switch op {
	case OpAdd:
		g, err := global.AsInt()
		if err != nil {
			return nil, err
		}
		s, err := slice.AsInt()
		if err != nil {
			return nil, err
		}
		return IntValue(g + s), nil
	case OpMult:
		g, err := global.AsInt()
		if err != nil {
			return nil, err
		}
		s, err := slice.AsInt()
		if err != nil {
			return nil, err
		}
		return IntValue(g * s), nil
	case OpMax:
		g, err := global.AsInt()
		if err != nil {
			return nil, err
		}
		s, err := slice.AsInt()
		if err != nil {
			return nil, err
		}
		if s > g {
			return slice, nil
		}
		return global, nil
	case OpMin:
		g, err := global.AsInt()
		if err != nil {
			return nil, err
		}
		s, err := slice.AsInt()
		if err != nil {
			return nil, err
		}
		if s < g {
			return slice, nil
		}
		return global, nil
	case OpOPut:
		st, sok, err := slice.AsTuple()
		if err != nil {
			return nil, err
		}
		if !sok {
			return global, nil
		}
		gt, gok, err := global.AsTuple()
		if err != nil {
			return nil, err
		}
		if !gok || st.wins(gt) {
			return slice, nil
		}
		return global, nil
	case OpTopKInsert:
		g, err := global.AsTopK()
		if err != nil {
			return nil, err
		}
		s, err := slice.AsTopK()
		if err != nil {
			return nil, err
		}
		return TopKValue(g.Merge(s)), nil
	default:
		return nil, fmt.Errorf("store: %v is not splittable, cannot merge", op)
	}
}
