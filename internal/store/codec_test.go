package store

import (
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, v *Value) {
	t.Helper()
	got, err := DecodeValue(EncodeValue(v))
	if err != nil {
		t.Fatalf("decode(%v): %v", v, err)
	}
	if !got.Equal(v) {
		t.Fatalf("round trip %v -> %v", v, got)
	}
}

func TestValueCodecRoundTrip(t *testing.T) {
	roundTrip(t, nil)
	roundTrip(t, IntValue(0))
	roundTrip(t, IntValue(-12345))
	roundTrip(t, BytesValue(nil))
	roundTrip(t, BytesValue([]byte("hello")))
	roundTrip(t, TupleValue(Tuple{Order: Order{A: -1, B: 99}, CoreID: 7, Data: []byte("d")}))
	roundTrip(t, TupleValue(Tuple{}))
	set := NewTopK(3).
		Insert(TopKEntry{Order: 5, CoreID: 1, Data: []byte("a")}).
		Insert(TopKEntry{Order: 9, CoreID: 2, Data: nil})
	roundTrip(t, TopKValue(set))
	roundTrip(t, TopKValue(NewTopK(2)))
}

func TestValueCodecQuickInts(t *testing.T) {
	f := func(n int64) bool {
		got, err := DecodeValue(EncodeValue(IntValue(n)))
		if err != nil {
			return false
		}
		m, err := got.AsInt()
		return err == nil && m == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestValueCodecQuickBytes(t *testing.T) {
	f := func(b []byte) bool {
		got, err := DecodeValue(EncodeValue(BytesValue(b)))
		if err != nil {
			return false
		}
		out, err := got.AsBytes()
		if err != nil {
			return false
		}
		return string(out) == string(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestValueCodecErrors(t *testing.T) {
	cases := [][]byte{
		nil,
		{byte(KindInt64)},          // missing payload
		{byte(KindInt64), 1, 2, 3}, // short payload
		{byte(KindTuple), 1, 2},    // short tuple
		{byte(KindTopK), 1},        // short topk header
		{byte(KindTopK), 1, 0, 0, 0, 1, 0, 0, 0, 9}, // truncated entry
		{200}, // unknown kind
	}
	for i, raw := range cases {
		if _, err := DecodeValue(raw); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}
