package store

import (
	"sync"
	"sync/atomic"
)

// shardCount is the number of independent hash-map shards. Sharding keeps
// map-level insert locking off the contended-record path: contention in
// this system is supposed to come from record conflicts, not from the
// hash table protecting them.
const shardCount = 256

type shard struct {
	mu sync.RWMutex
	m  map[string]*Record
}

// Store is a sharded in-memory key/value map from string keys to records.
// Lookups of existing keys take a shard read-lock; record-level
// concurrency control is entirely the engines' business.
type Store struct {
	shards [shardCount]shard

	// capture is the active copy-on-write checkpoint capture, nil when no
	// checkpoint walk is in progress; captureGen issues its generation
	// numbers. See cow.go.
	capture    atomic.Pointer[Capture]
	captureGen atomic.Uint64
}

// New returns an empty store.
func New() *Store {
	s := &Store{}
	for i := range s.shards {
		s.shards[i].m = make(map[string]*Record)
	}
	return s
}

// fnv1a is the 64-bit FNV-1a hash, inlined to avoid an interface
// allocation per lookup.
func fnv1a(key string) uint64 {
	const offset64 = 14695981039346656037
	const prime64 = 1099511628211
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return h
}

// fnv1aBytes is fnv1a for a key still in its encoded []byte form; the
// parallel snapshot loader uses it to shard frames by key without
// allocating a string first.
func fnv1aBytes(key []byte) uint64 {
	const offset64 = 14695981039346656037
	const prime64 = 1099511628211
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return h
}

func (s *Store) shardFor(key string) *shard {
	return &s.shards[fnv1a(key)&(shardCount-1)]
}

// Get returns the record for key, or nil if it does not exist.
func (s *Store) Get(key string) *Record {
	sh := s.shardFor(key)
	sh.mu.RLock()
	r := sh.m[key]
	sh.mu.RUnlock()
	return r
}

// GetOrCreate returns the record for key, creating an empty record
// (absent value, TID 0) if needed. created reports whether this call
// created it.
func (s *Store) GetOrCreate(key string) (r *Record, created bool) {
	sh := s.shardFor(key)
	sh.mu.RLock()
	r = sh.m[key]
	sh.mu.RUnlock()
	if r != nil {
		return r, false
	}
	sh.mu.Lock()
	r = sh.m[key]
	if r == nil {
		r = &Record{}
		sh.m[key] = r
		created = true
	}
	sh.mu.Unlock()
	return r, created
}

// Preload creates a record for key with the given initial value and TID 0,
// replacing any existing value. It is intended for benchmark setup ("we
// pre-allocate all the records", §8.1) and is not transactional.
func (s *Store) Preload(key string, v *Value) {
	r, _ := s.GetOrCreate(key)
	r.SetValue(v)
}

// Delete removes key from the store. It is not transactional; it exists
// for tests and administrative tooling.
func (s *Store) Delete(key string) {
	sh := s.shardFor(key)
	sh.mu.Lock()
	delete(sh.m, key)
	sh.mu.Unlock()
}

// Len returns the total number of records.
func (s *Store) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		n += len(sh.m)
		sh.mu.RUnlock()
	}
	return n
}

// Range calls fn for every (key, record) pair until fn returns false.
// It holds one shard read-lock at a time; concurrent inserts during
// iteration may or may not be observed.
func (s *Store) Range(fn func(key string, r *Record) bool) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for k, r := range sh.m {
			if !fn(k, r) {
				sh.mu.RUnlock()
				return
			}
		}
		sh.mu.RUnlock()
	}
}
