package store

import (
	"fmt"
	"sync"
	"testing"
)

func TestStoreGetMissing(t *testing.T) {
	s := New()
	if s.Get("nope") != nil {
		t.Fatal("missing key should be nil")
	}
	if s.Len() != 0 {
		t.Fatal("empty store should have length 0")
	}
}

func TestStoreGetOrCreate(t *testing.T) {
	s := New()
	r1, created := s.GetOrCreate("k")
	if !created || r1 == nil {
		t.Fatal("first GetOrCreate should create")
	}
	r2, created := s.GetOrCreate("k")
	if created || r2 != r1 {
		t.Fatal("second GetOrCreate should return the same record")
	}
	if s.Get("k") != r1 {
		t.Fatal("Get should find created record")
	}
	if s.Len() != 1 {
		t.Fatalf("len = %d", s.Len())
	}
}

func TestStorePreloadAndDelete(t *testing.T) {
	s := New()
	s.Preload("a", IntValue(1))
	s.Preload("a", IntValue(2)) // replace
	if n, _ := s.Get("a").Value().AsInt(); n != 2 {
		t.Fatalf("preload replace failed: %d", n)
	}
	s.Delete("a")
	if s.Get("a") != nil {
		t.Fatal("delete failed")
	}
	s.Delete("a") // deleting absent key must not panic
}

func TestStoreRange(t *testing.T) {
	s := New()
	for i := 0; i < 100; i++ {
		s.Preload(fmt.Sprintf("k%03d", i), IntValue(int64(i)))
	}
	seen := map[string]bool{}
	s.Range(func(k string, r *Record) bool {
		seen[k] = true
		return true
	})
	if len(seen) != 100 {
		t.Fatalf("range saw %d keys", len(seen))
	}
	// Early stop.
	n := 0
	s.Range(func(k string, r *Record) bool {
		n++
		return n < 10
	})
	if n != 10 {
		t.Fatalf("early stop saw %d", n)
	}
}

func TestStoreConcurrentGetOrCreate(t *testing.T) {
	s := New()
	const goroutines = 8
	const keys = 200
	records := make([][]*Record, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		records[g] = make([]*Record, keys)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < keys; i++ {
				r, _ := s.GetOrCreate(fmt.Sprintf("key%d", i))
				records[g][i] = r
			}
		}(g)
	}
	wg.Wait()
	for i := 0; i < keys; i++ {
		for g := 1; g < goroutines; g++ {
			if records[g][i] != records[0][i] {
				t.Fatalf("key %d: goroutines saw different records", i)
			}
		}
	}
	if s.Len() != keys {
		t.Fatalf("len = %d, want %d", s.Len(), keys)
	}
}

func TestShardDistribution(t *testing.T) {
	// The FNV shard function should spread sequential keys over many
	// shards; a catastrophically bad hash would serialize all records
	// behind one mutex.
	s := New()
	counts := map[*shard]int{}
	for i := 0; i < 4096; i++ {
		counts[s.shardFor(fmt.Sprintf("user%d", i))]++
	}
	if len(counts) < shardCount/2 {
		t.Fatalf("keys landed in only %d shards", len(counts))
	}
}
