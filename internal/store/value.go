package store

import (
	"bytes"
	"fmt"
)

// Kind identifies the runtime type of a record's value. The paper's
// records "have typed values, and each type supports one or more
// operations" (§3).
type Kind uint8

// Value kinds.
const (
	KindNone  Kind = iota // absent / uninitialized
	KindInt64             // integer records (Add, Max, Min, Mult, Get, Put)
	KindBytes             // opaque byte strings (Get, Put)
	KindTuple             // ordered tuples (OPut, Get)
	KindTopK              // top-K sets (TopKInsert, GetTopK)
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindNone:
		return "none"
	case KindInt64:
		return "int64"
	case KindBytes:
		return "bytes"
	case KindTuple:
		return "tuple"
	case KindTopK:
		return "topk"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Order is the ordering component of an ordered tuple: one or two numbers
// compared lexicographically. The paper's RUBiS port uses
// [amount, timestamp] (Figure 7).
type Order struct {
	A, B int64
}

// Less reports whether o orders strictly before p.
func (o Order) Less(p Order) bool {
	if o.A != p.A {
		return o.A < p.A
	}
	return o.B < p.B
}

// Equal reports whether the two orders are identical.
func (o Order) Equal(p Order) bool { return o == p }

// Tuple is an ordered tuple (o, j, x): order, writing core ID, and an
// arbitrary byte string. The order and core ID components are what make
// OPut commute (§4).
type Tuple struct {
	Order  Order
	CoreID int32
	Data   []byte
}

// wins reports whether tuple t should replace tuple cur under OPut
// semantics: higher order wins; ties broken by higher core ID; remaining
// ties broken by lexicographically larger data so resolution stays
// deterministic and commutative.
func (t Tuple) wins(cur Tuple) bool {
	if cur.Order.Less(t.Order) {
		return true
	}
	if t.Order.Less(cur.Order) {
		return false
	}
	if t.CoreID != cur.CoreID {
		return t.CoreID > cur.CoreID
	}
	return bytes.Compare(t.Data, cur.Data) > 0
}

// Value is an immutable typed value. A nil *Value means "absent", which
// every splittable operation treats as its identity (the paper: "Absent
// records are treated as having o = −∞").
type Value struct {
	Kind  Kind
	Int   int64
	Bytes []byte
	Tuple Tuple
	TopK  *TopK
}

// IntValue returns an int64 value.
func IntValue(n int64) *Value { return &Value{Kind: KindInt64, Int: n} }

// BytesValue returns a byte-string value. The caller must not mutate b
// after the call.
func BytesValue(b []byte) *Value { return &Value{Kind: KindBytes, Bytes: b} }

// TupleValue returns an ordered-tuple value.
func TupleValue(t Tuple) *Value { return &Value{Kind: KindTuple, Tuple: t} }

// TopKValue returns a top-K set value.
func TopKValue(t *TopK) *Value { return &Value{Kind: KindTopK, TopK: t} }

// AsInt returns the integer content, treating absent as 0.
func (v *Value) AsInt() (int64, error) {
	if v == nil {
		return 0, nil
	}
	if v.Kind != KindInt64 {
		return 0, fmt.Errorf("store: value is %v, not int64", v.Kind)
	}
	return v.Int, nil
}

// AsBytes returns the byte-string content, treating absent as nil.
func (v *Value) AsBytes() ([]byte, error) {
	if v == nil {
		return nil, nil
	}
	if v.Kind != KindBytes {
		return nil, fmt.Errorf("store: value is %v, not bytes", v.Kind)
	}
	return v.Bytes, nil
}

// AsTuple returns the tuple content; ok is false when absent.
func (v *Value) AsTuple() (Tuple, bool, error) {
	if v == nil {
		return Tuple{}, false, nil
	}
	if v.Kind != KindTuple {
		return Tuple{}, false, fmt.Errorf("store: value is %v, not tuple", v.Kind)
	}
	return v.Tuple, true, nil
}

// AsTopK returns the top-K set content, treating absent as the empty set.
func (v *Value) AsTopK() (*TopK, error) {
	if v == nil {
		return nil, nil
	}
	if v.Kind != KindTopK {
		return nil, fmt.Errorf("store: value is %v, not topk", v.Kind)
	}
	return v.TopK, nil
}

// Equal reports deep equality of two values (nil == nil).
func (v *Value) Equal(w *Value) bool {
	if v == nil || w == nil {
		return v == nil && w == nil
	}
	if v.Kind != w.Kind {
		return false
	}
	switch v.Kind {
	case KindInt64:
		return v.Int == w.Int
	case KindBytes:
		return bytes.Equal(v.Bytes, w.Bytes)
	case KindTuple:
		return v.Tuple.Order == w.Tuple.Order &&
			v.Tuple.CoreID == w.Tuple.CoreID &&
			bytes.Equal(v.Tuple.Data, w.Tuple.Data)
	case KindTopK:
		return v.TopK.Equal(w.TopK)
	default:
		return true
	}
}

// String implements fmt.Stringer.
func (v *Value) String() string {
	if v == nil {
		return "<absent>"
	}
	switch v.Kind {
	case KindInt64:
		return fmt.Sprintf("int64(%d)", v.Int)
	case KindBytes:
		return fmt.Sprintf("bytes(%q)", v.Bytes)
	case KindTuple:
		return fmt.Sprintf("tuple(%v,%d,%q)", v.Tuple.Order, v.Tuple.CoreID, v.Tuple.Data)
	case KindTopK:
		return fmt.Sprintf("topk(%v)", v.TopK)
	default:
		return "none"
	}
}
