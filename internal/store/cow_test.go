package store

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// captureMap flattens capture output for comparison.
func captureMap(t *testing.T, entries []SnapshotEntry) map[string]SnapshotEntry {
	t.Helper()
	out := make(map[string]SnapshotEntry, len(entries))
	for _, e := range entries {
		if _, dup := out[e.Key]; dup {
			t.Fatalf("capture contains key %q twice", e.Key)
		}
		out[e.Key] = e
	}
	return out
}

func TestCaptureQuiescentStore(t *testing.T) {
	st := New()
	for i := 0; i < 100; i++ {
		st.PreloadTID(fmt.Sprintf("k%d", i), IntValue(int64(i)), uint64(i+1))
	}
	c := st.StartCapture()
	entries, cowSaves := st.CollectCapture(c)
	if cowSaves != 0 {
		t.Fatalf("%d copy-on-write saves with no writers", cowSaves)
	}
	got := captureMap(t, entries)
	if len(got) != 100 {
		t.Fatalf("captured %d entries, want 100", len(got))
	}
	for i := 0; i < 100; i++ {
		e := got[fmt.Sprintf("k%d", i)]
		if e.TID != uint64(i+1) {
			t.Fatalf("k%d captured TID %d, want %d", i, e.TID, i+1)
		}
		if n, _ := e.Value.AsInt(); n != int64(i) {
			t.Fatalf("k%d captured value %d, want %d", i, n, i)
		}
	}
}

// TestCaptureOmitsValuelessRecords: records created by reads (no value
// ever installed) have no barrier state and must not appear.
func TestCaptureOmitsValuelessRecords(t *testing.T) {
	st := New()
	st.PreloadTID("real", IntValue(1), 1)
	st.GetOrCreate("phantom")
	entries, _ := st.CollectCapture(st.StartCapture())
	if len(entries) != 1 || entries[0].Key != "real" {
		t.Fatalf("capture = %+v, want only 'real'", entries)
	}
}

// TestCaptureConcurrentWriters is the store-level copy-on-write
// property test: writers following the commit protocol (lock,
// SaveBeforeWrite, install, unlock-with-TID) run throughout the walk,
// and the capture must still equal the store's state at StartCapture.
// Run with -race.
func TestCaptureConcurrentWriters(t *testing.T) {
	const keys = 2000
	const writers = 4
	st := New()
	want := map[string]SnapshotEntry{}
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("k%d", i)
		st.PreloadTID(k, IntValue(int64(i)), uint64(i+1))
		want[k] = SnapshotEntry{Key: k, TID: uint64(i + 1), Value: st.Get(k).Value()}
	}

	// Quiesced point: no writer is running yet, matching the engine's
	// barrier contract.
	c := st.StartCapture()

	// Overwrite a slice of the keys before the walk can reach them, so
	// the copy-on-write path is exercised deterministically: these
	// records' barrier values can only come from writer-side saves.
	const overwritten = keys / 10
	for i := 0; i < overwritten; i++ {
		k := fmt.Sprintf("k%d", i*10)
		r := st.Get(k)
		r.Lock()
		st.SaveBeforeWrite(k, r)
		r.SetValue(IntValue(-1))
		r.UnlockWithTID(uint64(keys + 1))
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tid := uint64(keys + 10 + w) // above every pre-barrier TID
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := fmt.Sprintf("k%d", (i*7+w)%keys)
				r, _ := st.GetOrCreate(k)
				r.Lock()
				st.SaveBeforeWrite(k, r)
				r.SetValue(IntValue(int64(-i)))
				tid += writers
				r.UnlockWithTID(tid)
			}
		}(w)
	}

	entries, cowSaves := st.CollectCapture(c)
	close(stop)
	wg.Wait()
	if cowSaves < overwritten {
		t.Fatalf("%d copy-on-write saves, want at least the %d pre-walk overwrites", cowSaves, overwritten)
	}

	got := captureMap(t, entries)
	if len(got) != len(want) {
		t.Fatalf("captured %d entries, want %d", len(got), len(want))
	}
	for k, we := range want {
		ge, ok := got[k]
		if !ok {
			t.Fatalf("key %q missing from capture", k)
		}
		if ge.TID != we.TID || ge.Value != we.Value {
			t.Fatalf("key %q captured (tid=%d, %p), want barrier state (tid=%d, %p)",
				k, ge.TID, ge.Value, we.TID, we.Value)
		}
	}
	t.Logf("writers copied %d of %d records before the walk reached them", cowSaves, keys)
}

// TestCaptureNewKeysExcluded: records created after the barrier do not
// belong to the capture even when written during the walk.
func TestCaptureNewKeysExcluded(t *testing.T) {
	st := New()
	st.PreloadTID("old", IntValue(1), 1)
	c := st.StartCapture()
	r, _ := st.GetOrCreate("new")
	r.Lock()
	st.SaveBeforeWrite("new", r)
	r.SetValue(IntValue(99))
	r.UnlockWithTID(50)
	entries, _ := st.CollectCapture(c)
	got := captureMap(t, entries)
	if _, ok := got["new"]; ok {
		t.Fatal("post-barrier key leaked into the capture")
	}
	if e, ok := got["old"]; !ok || e.TID != 1 {
		t.Fatalf("pre-barrier key wrong: %+v", got)
	}
}

// TestCollectWaitsForInFlightClaim is the regression test for the
// claim/seal race: a writer that has won a record's capGen claim but
// has not yet appended its save must block the seal, or the record —
// skipped by the walker because of that very claim — would vanish from
// the snapshot. The test performs the writer's protocol by hand,
// pausing at the descheduling point.
func TestCollectWaitsForInFlightClaim(t *testing.T) {
	st := New()
	st.PreloadTID("k", IntValue(7), 3)
	c := st.StartCapture()
	r := st.Get("k")

	// Writer side, step 1: announce and win the claim — then stall
	// before saving, as a descheduled goroutine would.
	c.pending.Add(1)
	if g := r.capGen.Load(); !r.capGen.CompareAndSwap(g, c.gen) {
		t.Fatal("claim lost with no contention")
	}

	done := make(chan []SnapshotEntry, 1)
	go func() {
		entries, _ := st.CollectCapture(c)
		done <- entries
	}()
	select {
	case <-done:
		t.Fatal("capture sealed while a claimed save was in flight")
	case <-time.After(20 * time.Millisecond):
	}

	// Writer side, step 2: finish the save and release the claim.
	c.mu.Lock()
	c.saved = append(c.saved, SnapshotEntry{Key: "k", TID: 3, Value: r.Value()})
	c.cowSaves++
	c.mu.Unlock()
	c.pending.Add(-1)

	entries := <-done
	if len(entries) != 1 || entries[0].Key != "k" || entries[0].TID != 3 {
		t.Fatalf("in-flight save lost: capture = %+v", entries)
	}
}

// TestCaptureGenerationsDoNotLeak: a record claimed in one capture must
// be captured again by the next one.
func TestCaptureGenerationsDoNotLeak(t *testing.T) {
	st := New()
	st.PreloadTID("k", IntValue(1), 1)
	for gen := 0; gen < 3; gen++ {
		entries, _ := st.CollectCapture(st.StartCapture())
		if len(entries) != 1 || entries[0].Key != "k" {
			t.Fatalf("capture %d = %+v", gen, entries)
		}
	}
}
