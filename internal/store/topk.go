package store

import (
	"bytes"
	"fmt"
	"sort"
)

// TopKEntry is one member of a top-K set: a 3-tuple (order, core ID, data)
// exactly as in §4 of the paper.
type TopKEntry struct {
	Order  int64
	CoreID int32
	Data   []byte
}

// entryBeats reports whether a should be preferred over b when both share
// the same order value: "in case of duplicate order, the record with the
// highest core ID is chosen". Equal core IDs (same core re-inserting the
// same order) are resolved by lexicographically larger data so that the
// resolution commutes.
func entryBeats(a, b TopKEntry) bool {
	if a.CoreID != b.CoreID {
		return a.CoreID > b.CoreID
	}
	return bytes.Compare(a.Data, b.Data) > 0
}

// TopK is an immutable bounded set of ordered tuples: it contains at most
// K entries, at most one entry per order value, and drops the smallest
// order on overflow. All mutating methods return a new set, which keeps
// per-core slices safe to merge without locks and keeps the slice size
// independent of the number of operations applied (paper guideline 4).
type TopK struct {
	k       int
	entries []TopKEntry // sorted by descending order
}

// NewTopK returns an empty top-K set with capacity bound k.
func NewTopK(k int) *TopK {
	if k < 1 {
		k = 1
	}
	return &TopK{k: k}
}

// K returns the capacity bound.
func (t *TopK) K() int {
	if t == nil {
		return 0
	}
	return t.k
}

// Len returns the number of entries.
func (t *TopK) Len() int {
	if t == nil {
		return 0
	}
	return len(t.entries)
}

// Entries returns the entries in descending order. The caller must not
// mutate the result.
func (t *TopK) Entries() []TopKEntry {
	if t == nil {
		return nil
	}
	return t.entries
}

// Insert returns a new set containing e subject to the dedup-by-order and
// bound-by-K rules.
func (t *TopK) Insert(e TopKEntry) *TopK {
	if t == nil {
		t = NewTopK(1)
	}
	out := &TopK{k: t.k, entries: make([]TopKEntry, 0, len(t.entries)+1)}
	out.entries = append(out.entries, t.entries...)

	// Binary search for an existing entry with the same order.
	i := sort.Search(len(out.entries), func(i int) bool {
		return out.entries[i].Order <= e.Order
	})
	if i < len(out.entries) && out.entries[i].Order == e.Order {
		if entryBeats(e, out.entries[i]) {
			out.entries[i] = e
		}
		return out
	}
	// Insert at position i, keeping descending order.
	out.entries = append(out.entries, TopKEntry{})
	copy(out.entries[i+1:], out.entries[i:])
	out.entries[i] = e
	if len(out.entries) > out.k {
		out.entries = out.entries[:out.k]
	}
	return out
}

// Merge returns a new set combining t and other under the same rules.
// Merging is how per-core slices reconcile into the global store; its
// cost depends only on K, not on how many inserts each slice absorbed.
func (t *TopK) Merge(other *TopK) *TopK {
	if other == nil || other.Len() == 0 {
		return t
	}
	if t == nil || t.Len() == 0 {
		return other
	}
	k := t.k
	if other.k > k {
		k = other.k
	}
	out := &TopK{k: k, entries: make([]TopKEntry, 0, k)}
	i, j := 0, 0
	for len(out.entries) < k && (i < len(t.entries) || j < len(other.entries)) {
		var pick TopKEntry
		switch {
		case i >= len(t.entries):
			pick = other.entries[j]
			j++
		case j >= len(other.entries):
			pick = t.entries[i]
			i++
		case t.entries[i].Order > other.entries[j].Order:
			pick = t.entries[i]
			i++
		case other.entries[j].Order > t.entries[i].Order:
			pick = other.entries[j]
			j++
		default: // duplicate order: keep the winner, consume both
			pick = t.entries[i]
			if entryBeats(other.entries[j], pick) {
				pick = other.entries[j]
			}
			i++
			j++
		}
		out.entries = append(out.entries, pick)
	}
	return out
}

// Min returns the smallest order present; ok is false when empty.
func (t *TopK) Min() (int64, bool) {
	if t.Len() == 0 {
		return 0, false
	}
	return t.entries[len(t.entries)-1].Order, true
}

// Equal reports whether two sets hold identical entries and bound.
func (t *TopK) Equal(o *TopK) bool {
	if t.Len() != o.Len() || t.K() != o.K() {
		return false
	}
	for i := range t.Entries() {
		a, b := t.entries[i], o.entries[i]
		if a.Order != b.Order || a.CoreID != b.CoreID || !bytes.Equal(a.Data, b.Data) {
			return false
		}
	}
	return true
}

// String implements fmt.Stringer.
func (t *TopK) String() string {
	if t == nil {
		return "topk<nil>"
	}
	return fmt.Sprintf("topk(k=%d,n=%d)", t.k, len(t.entries))
}
