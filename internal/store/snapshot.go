package store

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// snapshotMagic begins every count-prefixed (v1) snapshot stream.
var snapshotMagic = []byte("DOPSNAP1")

// snapshotMagic2 begins every streamed (v2) snapshot: frames follow the
// magic directly, with no up-front entry count — the writer does not
// know it until the walk completes — and the stream ends with a
// terminator frame carrying the count as a cross-check.
var snapshotMagic2 = []byte("DOPSNAP2")

// snapEndMarker is the bodyLen sentinel of the v2 terminator frame. Real
// bodies are capped at 1<<30 bytes, so the marker can never be confused
// with one.
const snapEndMarker = ^uint32(0)

var snapCastagnoli = crc32.MakeTable(crc32.Castagnoli)

// SnapshotEntry is one record captured by a checkpoint: the key, the TID
// of the transaction that produced the value, and the value itself.
// Preserving TIDs lets recovery skip redo records the snapshot already
// covers and keeps post-recovery commit TIDs monotonic per key.
type SnapshotEntry struct {
	Key   string
	TID   uint64
	Value *Value
}

// SnapshotEntries captures every record as a SnapshotEntry, in
// unspecified order: it runs inside the checkpoint barrier with every
// worker stalled, so it does only pointer collection — WriteSnapshot
// sorts later, off the barrier. The store must be quiescent (no
// in-flight commits) — the barrier guarantees that; values are
// immutable, so holding the returned pointers is safe while the store
// keeps running afterwards.
func (s *Store) SnapshotEntries() []SnapshotEntry {
	out := make([]SnapshotEntry, 0, s.Len())
	s.Range(func(key string, r *Record) bool {
		tid, _ := r.TIDWord()
		out = append(out, SnapshotEntry{Key: key, TID: tid, Value: r.Value()})
		return true
	})
	return out
}

// PreloadTID is Preload but also installs the record's TID. Recovery
// uses it so that replayed state carries the commit TIDs it had before
// the crash.
func (s *Store) PreloadTID(key string, v *Value, tid uint64) {
	r, _ := s.GetOrCreate(key)
	r.SetValue(v)
	r.SetTID(tid)
}

// WriteSnapshot serializes entries to w in the count-prefixed v1 format:
//
//	magic | u64 count | count × (u32 bodyLen | u32 crc(body) | body)
//	body = u32 keyLen | key | u64 tid | encoded value
//
// Entries are stable-sorted by key in place first, so snapshots of
// identical state are byte-identical (canonical) regardless of the
// store's iteration order. Checkpoints of a live store stream through a
// SnapshotWriter instead, which trades canonical order for bounded
// memory.
func WriteSnapshot(w io.Writer, entries []SnapshotEntry) error {
	sort.SliceStable(entries, func(i, j int) bool { return entries[i].Key < entries[j].Key })
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(snapshotMagic); err != nil {
		return err
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], uint64(len(entries)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var body []byte
	for _, e := range entries {
		body = appendSnapshotBody(body[:0], e)
		binary.LittleEndian.PutUint32(hdr[:4], uint32(len(body)))
		binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(body, snapCastagnoli))
		if _, err := bw.Write(hdr[:]); err != nil {
			return err
		}
		if _, err := bw.Write(body); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// appendSnapshotBody appends one entry's frame body to dst.
func appendSnapshotBody(dst []byte, e SnapshotEntry) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(e.Key)))
	dst = append(dst, e.Key...)
	dst = binary.LittleEndian.AppendUint64(dst, e.TID)
	return AppendValue(dst, e.Value)
}

// SnapshotWriter streams snapshot entries to a writer in the v2 format,
// one CRC-framed entry at a time, without knowing the entry count up
// front. It reuses one internal buffer across Write calls, so encoding
// a store of any size costs O(largest entry) memory — the property the
// streaming checkpoint walk depends on. Close writes the terminator
// frame (carrying the final count as a corruption cross-check) and
// flushes; a SnapshotWriter that is never Closed produces a stream
// readers reject as truncated.
type SnapshotWriter struct {
	bw  *bufio.Writer
	n   uint64
	buf []byte
}

// NewSnapshotWriter starts a v2 snapshot stream on w.
func NewSnapshotWriter(w io.Writer) (*SnapshotWriter, error) {
	sw := &SnapshotWriter{bw: bufio.NewWriterSize(w, 1<<16), buf: make([]byte, 8)}
	if _, err := sw.bw.Write(snapshotMagic2); err != nil {
		return nil, err
	}
	return sw, nil
}

// Write appends one entry frame to the stream.
func (sw *SnapshotWriter) Write(e SnapshotEntry) error {
	// The frame is assembled — header and body — in the one reused
	// buffer: a stack-local header array would escape through the
	// io.Writer interface and cost one heap allocation per entry.
	sw.buf = appendSnapshotBody(sw.buf[:8], e)
	body := sw.buf[8:]
	binary.LittleEndian.PutUint32(sw.buf[:4], uint32(len(body)))
	binary.LittleEndian.PutUint32(sw.buf[4:8], crc32.Checksum(body, snapCastagnoli))
	if _, err := sw.bw.Write(sw.buf); err != nil {
		return err
	}
	sw.n++
	return nil
}

// Count reports how many entries have been written so far.
func (sw *SnapshotWriter) Count() int { return int(sw.n) }

// Close writes the terminator frame and flushes the stream. It does not
// close the underlying writer.
func (sw *SnapshotWriter) Close() error {
	var tail [16]byte
	binary.LittleEndian.PutUint32(tail[:4], snapEndMarker)
	binary.LittleEndian.PutUint64(tail[8:], sw.n)
	binary.LittleEndian.PutUint32(tail[4:8], crc32.Checksum(tail[8:], snapCastagnoli))
	if _, err := sw.bw.Write(tail[:]); err != nil {
		return err
	}
	return sw.bw.Flush()
}

// snapFraming drives version-dependent frame iteration for both
// snapshot readers: v1 streams read a declared count of frames, v2
// streams read frames until the terminator and validate its count.
type snapFraming struct {
	br    *bufio.Reader
	v2    bool
	count uint64 // v1: declared up front; v2: validated at the terminator
	seen  uint64
}

// newSnapFraming consumes the magic (and, for v1, the count header).
func newSnapFraming(r io.Reader, bufSize int) (*snapFraming, error) {
	br := bufio.NewReaderSize(r, bufSize)
	magic := make([]byte, len(snapshotMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("store: short snapshot magic: %w", err)
	}
	sf := &snapFraming{br: br}
	switch string(magic) {
	case string(snapshotMagic):
	case string(snapshotMagic2):
		sf.v2 = true
		return sf, nil
	default:
		return nil, errors.New("store: bad snapshot magic")
	}
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("store: short snapshot count: %w", err)
	}
	sf.count = binary.LittleEndian.Uint64(hdr[:])
	if sf.count > 1<<40 {
		return nil, fmt.Errorf("store: implausible snapshot entry count %d", sf.count)
	}
	return sf, nil
}

// next returns the next frame's raw body and declared CRC (unverified —
// the caller checks it, possibly on another goroutine), or done == true
// at a validated end of stream. Trailing bytes after the logical end
// mean the writer and reader disagree about the format and are rejected.
func (sf *snapFraming) next() (body []byte, crc uint32, done bool, err error) {
	if !sf.v2 && sf.seen == sf.count {
		return nil, 0, true, sf.expectEOF()
	}
	var hdr [8]byte
	if _, err := io.ReadFull(sf.br, hdr[:]); err != nil {
		return nil, 0, false, fmt.Errorf("store: truncated snapshot entry %d: %w", sf.seen, err)
	}
	bodyLen := binary.LittleEndian.Uint32(hdr[:4])
	wantCRC := binary.LittleEndian.Uint32(hdr[4:])
	if sf.v2 && bodyLen == snapEndMarker {
		var cnt [8]byte
		if _, err := io.ReadFull(sf.br, cnt[:]); err != nil {
			return nil, 0, false, fmt.Errorf("store: truncated snapshot terminator: %w", err)
		}
		if crc32.Checksum(cnt[:], snapCastagnoli) != wantCRC {
			return nil, 0, false, errors.New("store: snapshot terminator checksum mismatch")
		}
		if n := binary.LittleEndian.Uint64(cnt[:]); n != sf.seen {
			return nil, 0, false, fmt.Errorf("store: snapshot terminator count %d, read %d entries", n, sf.seen)
		}
		sf.count = sf.seen
		return nil, 0, true, sf.expectEOF()
	}
	if bodyLen > 1<<30 {
		return nil, 0, false, fmt.Errorf("store: implausible snapshot body length %d", bodyLen)
	}
	body = make([]byte, bodyLen)
	if _, err := io.ReadFull(sf.br, body); err != nil {
		return nil, 0, false, fmt.Errorf("store: truncated snapshot entry %d: %w", sf.seen, err)
	}
	sf.seen++
	return body, wantCRC, false, nil
}

func (sf *snapFraming) expectEOF() error {
	if _, err := sf.br.ReadByte(); err != io.EOF {
		return errors.New("store: trailing bytes after snapshot entries")
	}
	return nil
}

// ReadSnapshot parses a snapshot stream (either format) into a slice.
// Unlike WAL replay, a snapshot is all-or-nothing: it is published
// atomically by manifest install, so any truncation or corruption is an
// error, never a silent partial result.
func ReadSnapshot(r io.Reader) ([]SnapshotEntry, error) {
	sf, err := newSnapFraming(r, 1<<16)
	if err != nil {
		return nil, err
	}
	var out []SnapshotEntry
	for {
		body, crc, done, err := sf.next()
		if err != nil {
			return nil, err
		}
		if done {
			return out, nil
		}
		if crc32.Checksum(body, snapCastagnoli) != crc {
			return nil, fmt.Errorf("store: snapshot entry %d checksum mismatch", len(out))
		}
		e, err := decodeSnapshotBody(body)
		if err != nil {
			return nil, fmt.Errorf("store: snapshot entry %d: %w", len(out), err)
		}
		out = append(out, e)
	}
}

// snapFrame is one length-delimited snapshot entry handed from the
// reader goroutine to a decoder goroutine.
type snapFrame struct {
	body []byte
	crc  uint32
}

// ReadSnapshotInto streams a snapshot (either format) directly into st
// with parallelism decoder goroutines and returns the number of entries
// loaded. The reader goroutine does only framing I/O; CRC verification,
// value decoding and store insertion run on the decoders, sharded by
// key hash so shard-lock contention between decoders stays low (safety
// does not depend on the sharding — concurrent inserts are protected by
// the store's shard mutexes).
//
// tidFiltered selects the install rule. false is the exclusive recovery
// path: entries install unconditionally with PreloadTID, so st must not
// be written by anyone else during the load. true installs through
// Record.InstallRecovered — a per-key TID filter under the record lock —
// which lets WAL segment replay run into the same store concurrently
// with the snapshot load (overlapped recovery): whichever writer carries
// the higher TID for a key wins regardless of arrival order.
//
// Corruption semantics match ReadSnapshot: any truncated or corrupt
// frame fails the whole load.
func ReadSnapshotInto(r io.Reader, st *Store, parallelism int, tidFiltered bool) (int, error) {
	if parallelism < 1 {
		parallelism = 1
	}
	sf, err := newSnapFraming(r, 1<<20)
	if err != nil {
		return 0, err
	}

	var (
		failed  atomic.Bool
		errOnce sync.Once
		loadErr error
	)
	setErr := func(err error) {
		errOnce.Do(func() { loadErr = err })
		failed.Store(true)
	}
	chans := make([]chan snapFrame, parallelism)
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		chans[w] = make(chan snapFrame, 256)
		wg.Add(1)
		go func(ch <-chan snapFrame) {
			defer wg.Done()
			for fr := range ch {
				if failed.Load() {
					continue // drain so the reader never blocks
				}
				if crc32.Checksum(fr.body, snapCastagnoli) != fr.crc {
					setErr(errors.New("store: snapshot entry checksum mismatch"))
					continue
				}
				e, err := decodeSnapshotBody(fr.body)
				if err != nil {
					setErr(fmt.Errorf("store: snapshot entry: %w", err))
					continue
				}
				if tidFiltered {
					rec, _ := st.GetOrCreate(e.Key)
					rec.InstallRecovered(e.Value, e.TID)
				} else {
					st.PreloadTID(e.Key, e.Value, e.TID)
				}
			}
		}(chans[w])
	}
	finish := func(err error) (int, error) {
		for _, ch := range chans {
			close(ch)
		}
		wg.Wait()
		if err == nil && loadErr != nil {
			err = loadErr
		}
		if err != nil {
			return 0, err
		}
		return int(sf.seen), nil
	}

	for {
		if failed.Load() {
			return finish(nil)
		}
		body, wantCRC, done, err := sf.next()
		if err != nil {
			return finish(err)
		}
		if done {
			return finish(nil)
		}
		// Route by the entry's key hash: one key always lands on one
		// decoder, and distinct keys spread out, keeping store shard-lock
		// contention low (decoder = hash % parallelism does not coincide
		// with the store's hash & 255 sharding, so exclusivity is not
		// guaranteed — nor needed; shard mutexes protect inserts). A
		// malformed frame (body too short to hold even a key length) may
		// dispatch anywhere; its decoder reports the corruption.
		w := 0
		if len(body) >= 4 {
			if kl := binary.LittleEndian.Uint32(body); uint64(kl)+4 <= uint64(len(body)) {
				w = int(fnv1aBytes(body[4:4+kl]) % uint64(parallelism))
			}
		}
		chans[w] <- snapFrame{body: body, crc: wantCRC}
	}
}

func decodeSnapshotBody(body []byte) (SnapshotEntry, error) {
	if len(body) < 4 {
		return SnapshotEntry{}, errors.New("short key length")
	}
	kl := binary.LittleEndian.Uint32(body)
	body = body[4:]
	if uint32(len(body)) < kl {
		return SnapshotEntry{}, errors.New("short key")
	}
	key := string(body[:kl])
	body = body[kl:]
	if len(body) < 8 {
		return SnapshotEntry{}, errors.New("short tid")
	}
	tid := binary.LittleEndian.Uint64(body)
	v, err := DecodeValue(body[8:])
	if err != nil {
		return SnapshotEntry{}, err
	}
	return SnapshotEntry{Key: key, TID: tid, Value: v}, nil
}
