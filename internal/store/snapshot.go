package store

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// snapshotMagic begins every snapshot stream.
var snapshotMagic = []byte("DOPSNAP1")

var snapCastagnoli = crc32.MakeTable(crc32.Castagnoli)

// SnapshotEntry is one record captured by a checkpoint: the key, the TID
// of the transaction that produced the value, and the value itself.
// Preserving TIDs lets recovery skip redo records the snapshot already
// covers and keeps post-recovery commit TIDs monotonic per key.
type SnapshotEntry struct {
	Key   string
	TID   uint64
	Value *Value
}

// SnapshotEntries captures every record as a SnapshotEntry, in
// unspecified order: it runs inside the checkpoint barrier with every
// worker stalled, so it does only pointer collection — WriteSnapshot
// sorts later, off the barrier. The store must be quiescent (no
// in-flight commits) — the barrier guarantees that; values are
// immutable, so holding the returned pointers is safe while the store
// keeps running afterwards.
func (s *Store) SnapshotEntries() []SnapshotEntry {
	out := make([]SnapshotEntry, 0, s.Len())
	s.Range(func(key string, r *Record) bool {
		tid, _ := r.TIDWord()
		out = append(out, SnapshotEntry{Key: key, TID: tid, Value: r.Value()})
		return true
	})
	return out
}

// PreloadTID is Preload but also installs the record's TID. Recovery
// uses it so that replayed state carries the commit TIDs it had before
// the crash.
func (s *Store) PreloadTID(key string, v *Value, tid uint64) {
	r, _ := s.GetOrCreate(key)
	r.SetValue(v)
	r.SetTID(tid)
}

// WriteSnapshot serializes entries to w:
//
//	magic | u64 count | count × (u32 bodyLen | u32 crc(body) | body)
//	body = u32 keyLen | key | u64 tid | encoded value
//
// Entries are stable-sorted by key in place first, so snapshots of
// identical state are byte-identical (canonical) regardless of the
// store's iteration order.
func WriteSnapshot(w io.Writer, entries []SnapshotEntry) error {
	sort.SliceStable(entries, func(i, j int) bool { return entries[i].Key < entries[j].Key })
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(snapshotMagic); err != nil {
		return err
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], uint64(len(entries)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var body []byte
	for _, e := range entries {
		body = body[:0]
		body = binary.LittleEndian.AppendUint32(body, uint32(len(e.Key)))
		body = append(body, e.Key...)
		body = binary.LittleEndian.AppendUint64(body, e.TID)
		body = append(body, EncodeValue(e.Value)...)
		binary.LittleEndian.PutUint32(hdr[:4], uint32(len(body)))
		binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(body, snapCastagnoli))
		if _, err := bw.Write(hdr[:]); err != nil {
			return err
		}
		if _, err := bw.Write(body); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadSnapshot parses WriteSnapshot's output. Unlike WAL replay, a
// snapshot is all-or-nothing: it is published atomically by manifest
// install, so any truncation or corruption is an error, never a silent
// partial result.
func ReadSnapshot(r io.Reader) ([]SnapshotEntry, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	magic := make([]byte, len(snapshotMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("store: short snapshot magic: %w", err)
	}
	if string(magic) != string(snapshotMagic) {
		return nil, errors.New("store: bad snapshot magic")
	}
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("store: short snapshot count: %w", err)
	}
	count := binary.LittleEndian.Uint64(hdr[:])
	if count > 1<<40 {
		return nil, fmt.Errorf("store: implausible snapshot entry count %d", count)
	}
	var out []SnapshotEntry
	for i := uint64(0); i < count; i++ {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return nil, fmt.Errorf("store: truncated snapshot entry %d: %w", i, err)
		}
		bodyLen := binary.LittleEndian.Uint32(hdr[:4])
		wantCRC := binary.LittleEndian.Uint32(hdr[4:])
		if bodyLen > 1<<30 {
			return nil, fmt.Errorf("store: implausible snapshot body length %d", bodyLen)
		}
		body := make([]byte, bodyLen)
		if _, err := io.ReadFull(br, body); err != nil {
			return nil, fmt.Errorf("store: truncated snapshot entry %d: %w", i, err)
		}
		if crc32.Checksum(body, snapCastagnoli) != wantCRC {
			return nil, fmt.Errorf("store: snapshot entry %d checksum mismatch", i)
		}
		e, err := decodeSnapshotBody(body)
		if err != nil {
			return nil, fmt.Errorf("store: snapshot entry %d: %w", i, err)
		}
		out = append(out, e)
	}
	// Trailing bytes mean the writer and reader disagree about the
	// format; reject rather than silently ignore.
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, errors.New("store: trailing bytes after snapshot entries")
	}
	return out, nil
}

// snapFrame is one length-delimited snapshot entry handed from the
// reader goroutine to a decoder goroutine.
type snapFrame struct {
	body []byte
	crc  uint32
}

// ReadSnapshotInto streams WriteSnapshot's output directly into st with
// parallelism decoder goroutines and returns the number of entries
// loaded. The reader goroutine does only framing I/O; CRC verification,
// value decoding and store insertion run on the decoders, sharded by
// key hash so shard-lock contention between decoders stays low (safety
// does not depend on the sharding — concurrent inserts are protected by
// the store's shard mutexes). Entries are installed with PreloadTID, so
// st must not be serving traffic yet — this is the recovery path.
// Corruption semantics match ReadSnapshot: any truncated or corrupt
// frame fails the whole load.
func ReadSnapshotInto(r io.Reader, st *Store, parallelism int) (int, error) {
	if parallelism < 1 {
		parallelism = 1
	}
	br := bufio.NewReaderSize(r, 1<<20)
	magic := make([]byte, len(snapshotMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return 0, fmt.Errorf("store: short snapshot magic: %w", err)
	}
	if string(magic) != string(snapshotMagic) {
		return 0, errors.New("store: bad snapshot magic")
	}
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return 0, fmt.Errorf("store: short snapshot count: %w", err)
	}
	count := binary.LittleEndian.Uint64(hdr[:])
	if count > 1<<40 {
		return 0, fmt.Errorf("store: implausible snapshot entry count %d", count)
	}

	var (
		failed  atomic.Bool
		errOnce sync.Once
		loadErr error
	)
	setErr := func(err error) {
		errOnce.Do(func() { loadErr = err })
		failed.Store(true)
	}
	chans := make([]chan snapFrame, parallelism)
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		chans[w] = make(chan snapFrame, 256)
		wg.Add(1)
		go func(ch <-chan snapFrame) {
			defer wg.Done()
			for fr := range ch {
				if failed.Load() {
					continue // drain so the reader never blocks
				}
				if crc32.Checksum(fr.body, snapCastagnoli) != fr.crc {
					setErr(errors.New("store: snapshot entry checksum mismatch"))
					continue
				}
				e, err := decodeSnapshotBody(fr.body)
				if err != nil {
					setErr(fmt.Errorf("store: snapshot entry: %w", err))
					continue
				}
				st.PreloadTID(e.Key, e.Value, e.TID)
			}
		}(chans[w])
	}
	finish := func(err error) (int, error) {
		for _, ch := range chans {
			close(ch)
		}
		wg.Wait()
		if err == nil && loadErr != nil {
			err = loadErr
		}
		if err != nil {
			return 0, err
		}
		return int(count), nil
	}

	for i := uint64(0); i < count; i++ {
		if failed.Load() {
			return finish(nil)
		}
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return finish(fmt.Errorf("store: truncated snapshot entry %d: %w", i, err))
		}
		bodyLen := binary.LittleEndian.Uint32(hdr[:4])
		wantCRC := binary.LittleEndian.Uint32(hdr[4:])
		if bodyLen > 1<<30 {
			return finish(fmt.Errorf("store: implausible snapshot body length %d", bodyLen))
		}
		body := make([]byte, bodyLen)
		if _, err := io.ReadFull(br, body); err != nil {
			return finish(fmt.Errorf("store: truncated snapshot entry %d: %w", i, err))
		}
		// Route by the entry's key hash: one key always lands on one
		// decoder, and distinct keys spread out, keeping store shard-lock
		// contention low (decoder = hash % parallelism does not coincide
		// with the store's hash & 255 sharding, so exclusivity is not
		// guaranteed — nor needed; shard mutexes protect inserts). A
		// malformed frame (body too short to hold even a key length) may
		// dispatch anywhere; its decoder reports the corruption.
		w := 0
		if len(body) >= 4 {
			if kl := binary.LittleEndian.Uint32(body); uint64(kl)+4 <= uint64(len(body)) {
				w = int(fnv1aBytes(body[4:4+kl]) % uint64(parallelism))
			}
		}
		chans[w] <- snapFrame{body: body, crc: wantCRC}
	}
	// Trailing bytes mean the writer and reader disagree about the
	// format; reject rather than silently ignore.
	if _, err := br.ReadByte(); err != io.EOF {
		return finish(errors.New("store: trailing bytes after snapshot entries"))
	}
	return finish(nil)
}

func decodeSnapshotBody(body []byte) (SnapshotEntry, error) {
	if len(body) < 4 {
		return SnapshotEntry{}, errors.New("short key length")
	}
	kl := binary.LittleEndian.Uint32(body)
	body = body[4:]
	if uint32(len(body)) < kl {
		return SnapshotEntry{}, errors.New("short key")
	}
	key := string(body[:kl])
	body = body[kl:]
	if len(body) < 8 {
		return SnapshotEntry{}, errors.New("short tid")
	}
	tid := binary.LittleEndian.Uint64(body)
	v, err := DecodeValue(body[8:])
	if err != nil {
		return SnapshotEntry{}, err
	}
	return SnapshotEntry{Key: key, TID: tid, Value: v}, nil
}
