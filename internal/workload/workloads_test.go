package workload

import (
	"strings"
	"testing"
	"time"

	"doppel/internal/engine"
	"doppel/internal/occ"
	"doppel/internal/rng"
	"doppel/internal/store"
)

func TestKeySpace(t *testing.T) {
	ks := NewKeySpace('k', 100)
	if ks.N() != 100 {
		t.Fatal("N")
	}
	if len(ks.Key(0)) != 16 || len(ks.Key(99)) != 16 {
		t.Fatalf("key length %d", len(ks.Key(0)))
	}
	if !strings.HasPrefix(ks.Key(5), "k") {
		t.Fatal("prefix")
	}
	if ks.Key(5) == ks.Key(6) {
		t.Fatal("keys must differ")
	}
}

// exec runs a generated transaction against a tiny OCC engine to verify
// the generators produce executable bodies.
func exec(t *testing.T, e *occ.Engine, fn engine.TxFunc) {
	t.Helper()
	for i := 0; i < 1000; i++ {
		out, err := e.Attempt(0, fn, time.Now().UnixNano())
		if err != nil {
			t.Fatalf("user error: %v", err)
		}
		if out == engine.Committed {
			return
		}
	}
	t.Fatal("never committed")
}

func TestIncr1HotFraction(t *testing.T) {
	ks := NewKeySpace('k', 1000)
	g := &Incr1{Keys: ks, HotKey: 7, HotFrac: 0.3}
	r := rng.New(5)
	st := store.New()
	e := occ.New(st, 1)
	const n = 20000
	for i := 0; i < n; i++ {
		fn, isWrite := g.Next(0, r)
		if !isWrite {
			t.Fatal("INCR1 txns are writes")
		}
		exec(t, e, fn)
	}
	hot, _ := st.Get(ks.Key(7)).Value().AsInt()
	frac := float64(hot) / n
	if frac < 0.27 || frac > 0.33 {
		t.Fatalf("hot fraction %.3f, want ~0.30", frac)
	}
	// Conservation: total increments == n.
	var total int64
	st.Range(func(k string, rec *store.Record) bool {
		n, _ := rec.Value().AsInt()
		total += n
		return true
	})
	if total != n {
		t.Fatalf("total %d != %d", total, n)
	}
}

func TestIncr1NeverPicksHotForColdDraw(t *testing.T) {
	// With HotFrac 0 the hot key must never be chosen.
	ks := NewKeySpace('k', 10)
	g := &Incr1{Keys: ks, HotKey: 3, HotFrac: 0}
	r := rng.New(11)
	st := store.New()
	e := occ.New(st, 1)
	for i := 0; i < 5000; i++ {
		fn, _ := g.Next(0, r)
		exec(t, e, fn)
	}
	if rec := st.Get(ks.Key(3)); rec != nil && rec.Value() != nil {
		n, _ := rec.Value().AsInt()
		if n != 0 {
			t.Fatalf("hot key incremented %d times with HotFrac=0", n)
		}
	}
}

func TestIncrZSkew(t *testing.T) {
	ks := NewKeySpace('k', 500)
	g := &IncrZ{Keys: ks, Zipf: NewZipf(500, 1.5)}
	r := rng.New(21)
	st := store.New()
	e := occ.New(st, 1)
	const n = 10000
	for i := 0; i < n; i++ {
		fn, isWrite := g.Next(0, r)
		if !isWrite {
			t.Fatal("INCRZ txns are writes")
		}
		exec(t, e, fn)
	}
	// Analytically, P(rank 0) = 1/H(500, 1.5) ≈ 0.397.
	top, _ := st.Get(ks.Key(0)).Value().AsInt()
	if f := float64(top) / n; f < 0.37 || f > 0.43 {
		t.Fatalf("alpha=1.5 top key got %.3f of writes, want ~0.397", f)
	}
}

func TestLikeMixAndConservation(t *testing.T) {
	users := NewKeySpace('u', 200)
	pages := NewKeySpace('p', 200)
	g := &Like{Users: users, Pages: pages, PageZipf: NewZipf(200, 1.4), WriteFrac: 0.5}
	r := rng.New(33)
	st := store.New()
	e := occ.New(st, 1)
	writes := 0
	const n = 10000
	for i := 0; i < n; i++ {
		fn, isWrite := g.Next(0, r)
		if isWrite {
			writes++
		}
		exec(t, e, fn)
	}
	if f := float64(writes) / n; f < 0.47 || f > 0.53 {
		t.Fatalf("write fraction %.3f", f)
	}
	var total int64
	for i := 0; i < pages.N(); i++ {
		if rec := st.Get(pages.Key(i)); rec != nil && rec.Value() != nil {
			c, err := rec.Value().AsInt()
			if err != nil {
				t.Fatalf("page record type: %v", err)
			}
			total += c
		}
	}
	if total != int64(writes) {
		t.Fatalf("page counts %d != writes %d", total, writes)
	}
}
