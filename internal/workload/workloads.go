package workload

import (
	"fmt"

	"doppel/internal/engine"
	"doppel/internal/rng"
)

// KeySpace pre-generates the 16-byte string keys the paper's
// microbenchmarks use ("1M 16-byte keys", §8.2), so key formatting never
// appears on the benchmark's hot path.
type KeySpace struct {
	keys []string
}

// NewKeySpace builds n keys with a single-character prefix.
func NewKeySpace(prefix byte, n int) *KeySpace {
	ks := &KeySpace{keys: make([]string, n)}
	for i := range ks.keys {
		ks.keys[i] = fmt.Sprintf("%c%015d", prefix, i)
	}
	return ks
}

// Key returns key i.
func (ks *KeySpace) Key(i int) string { return ks.keys[i] }

// N returns the number of keys.
func (ks *KeySpace) N() int { return len(ks.keys) }

// Generator produces the next transaction for a worker. Implementations
// must be safe for concurrent use by distinct workers, each passing its
// own rng.
type Generator interface {
	// Next returns a transaction body and whether it writes.
	Next(worker int, r *rng.Rand) (fn engine.TxFunc, isWrite bool)
}

// Incr1 is the INCR1 microbenchmark (§8.2): each transaction increments
// one key; a fraction HotFrac of transactions increment the single hot
// key, the rest a uniformly random other key.
type Incr1 struct {
	Keys    *KeySpace
	HotKey  int
	HotFrac float64
}

// Next implements Generator.
func (g *Incr1) Next(worker int, r *rng.Rand) (engine.TxFunc, bool) {
	var key string
	if r.Bool(g.HotFrac) {
		key = g.Keys.Key(g.HotKey)
	} else {
		k := r.Intn(g.Keys.N() - 1)
		if k >= g.HotKey {
			k++
		}
		key = g.Keys.Key(k)
	}
	return func(tx engine.Tx) error { return tx.Add(key, 1) }, true
}

// IncrZ is the INCRZ microbenchmark (§8.4): each transaction increments
// one key chosen with Zipfian popularity.
type IncrZ struct {
	Keys *KeySpace
	Zipf *Zipf
}

// Next implements Generator.
func (g *IncrZ) Next(worker int, r *rng.Rand) (engine.TxFunc, bool) {
	key := g.Keys.Key(g.Zipf.Sample(r))
	return func(tx engine.Tx) error { return tx.Add(key, 1) }, true
}

// Like is the LIKE benchmark (§7, §8.5): users "like" pages. A write
// transaction records the user's like and increments the page's like
// count; a read transaction reads the user's last like and the page's
// count. Users are uniform; pages follow PageZipf. WriteFrac controls
// the transaction mix.
//
// Both transaction types access the user record before the page record,
// which gives the 2PL baseline a deadlock-free global lock order.
type Like struct {
	Users     *KeySpace
	Pages     *KeySpace
	PageZipf  *Zipf
	WriteFrac float64
}

// Next implements Generator.
func (g *Like) Next(worker int, r *rng.Rand) (engine.TxFunc, bool) {
	user := g.Users.Key(r.Intn(g.Users.N()))
	pageIdx := g.PageZipf.Sample(r)
	page := g.Pages.Key(pageIdx)
	if r.Bool(g.WriteFrac) {
		like := []byte(page)
		return func(tx engine.Tx) error {
			if err := tx.PutBytes(user, like); err != nil {
				return err
			}
			return tx.Add(page, 1)
		}, true
	}
	return func(tx engine.Tx) error {
		if _, err := tx.GetBytes(user); err != nil {
			return err
		}
		_, err := tx.GetInt(page)
		return err
	}, false
}
