// Package workload provides the paper's workload generators: the INCR1
// and INCRZ microbenchmarks (§8.2, §8.4), the LIKE social-network
// benchmark (§7, §8.5), key-space helpers, and a Zipfian sampler that is
// valid for every exponent the paper sweeps (α ∈ [0, 2]; the standard
// library's rand.Zipf requires s > 1 and cannot express them).
package workload

import (
	"math"

	"doppel/internal/rng"
)

// Zipf samples from a Zipfian popularity distribution over n items:
// item k (0-based rank) is drawn with probability proportional to
// 1/(k+1)^alpha. alpha == 0 is uniform. Sampling is O(1) via an alias
// table; construction is O(n).
type Zipf struct {
	n     int
	alpha float64
	h     float64 // generalized harmonic number H(n, alpha)
	alias *Alias
}

// NewZipf builds a sampler for n items with exponent alpha >= 0.
func NewZipf(n int, alpha float64) *Zipf {
	if n < 1 {
		panic("workload: Zipf needs n >= 1")
	}
	if alpha < 0 {
		panic("workload: Zipf needs alpha >= 0")
	}
	weights := make([]float64, n)
	h := 0.0
	for k := 0; k < n; k++ {
		w := math.Pow(float64(k+1), -alpha)
		weights[k] = w
		h += w
	}
	return &Zipf{n: n, alpha: alpha, h: h, alias: NewAlias(weights)}
}

// N returns the number of items.
func (z *Zipf) N() int { return z.n }

// Alpha returns the exponent.
func (z *Zipf) Alpha() float64 { return z.alpha }

// Sample draws an item rank in [0, n); rank 0 is the most popular.
func (z *Zipf) Sample(r *rng.Rand) int { return z.alias.Sample(r) }

// Prob returns the exact probability of the item with 0-based rank k.
// Table 1 of the paper is generated directly from this.
func (z *Zipf) Prob(k int) float64 {
	if k < 0 || k >= z.n {
		return 0
	}
	return math.Pow(float64(k+1), -z.alpha) / z.h
}

// Alias is Vose's alias method: O(1) sampling from an arbitrary discrete
// distribution.
type Alias struct {
	prob  []float64 // acceptance probability per column
	alias []int32   // alternative item per column
}

// NewAlias builds an alias table from non-negative weights (they need not
// sum to 1).
func NewAlias(weights []float64) *Alias {
	n := len(weights)
	if n == 0 {
		panic("workload: empty weights")
	}
	var sum float64
	for _, w := range weights {
		if w < 0 || math.IsNaN(w) {
			panic("workload: negative or NaN weight")
		}
		sum += w
	}
	if sum <= 0 {
		panic("workload: zero total weight")
	}
	a := &Alias{prob: make([]float64, n), alias: make([]int32, n)}
	scaled := make([]float64, n)
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for i, w := range weights {
		scaled[i] = w * float64(n) / sum
		if scaled[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		a.prob[s] = scaled[s]
		a.alias[s] = l
		scaled[l] = scaled[l] + scaled[s] - 1
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, i := range large {
		a.prob[i] = 1
		a.alias[i] = i
	}
	for _, i := range small {
		// Numerical leftovers: treat as full columns.
		a.prob[i] = 1
		a.alias[i] = i
	}
	return a
}

// Sample draws an item index.
func (a *Alias) Sample(r *rng.Rand) int {
	col := int(r.Uint64n(uint64(len(a.prob))))
	if r.Float64() < a.prob[col] {
		return col
	}
	return int(a.alias[col])
}
