package workload

import (
	"math"
	"testing"

	"doppel/internal/rng"
)

func TestZipfProbMatchesPaperTable1(t *testing.T) {
	// Table 1 of the paper: percentage of writes to the 1st, 2nd, 10th
	// and 100th most popular keys, 1M keys. Spot-check the α=1.0 and
	// α=1.4 rows against the paper's printed digits.
	z := NewZipf(1_000_000, 1.0)
	checks := []struct {
		rank int
		want float64 // percent
	}{{0, 6.953}, {1, 3.476}, {9, 0.6951}, {99, 0.0695}}
	for _, c := range checks {
		got := z.Prob(c.rank) * 100
		if math.Abs(got-c.want)/c.want > 0.01 {
			t.Errorf("alpha=1.0 rank %d: got %.4f%%, paper says %.4f%%", c.rank+1, got, c.want)
		}
	}
	z = NewZipf(1_000_000, 1.4)
	checks = []struct {
		rank int
		want float64
	}{{0, 32.30}, {1, 12.24}, {9, 1.286}, {99, 0.0512}}
	for _, c := range checks {
		got := z.Prob(c.rank) * 100
		if math.Abs(got-c.want)/c.want > 0.01 {
			t.Errorf("alpha=1.4 rank %d: got %.4f%%, paper says %.4f%%", c.rank+1, got, c.want)
		}
	}
}

func TestZipfUniformWhenAlphaZero(t *testing.T) {
	z := NewZipf(100, 0)
	for _, k := range []int{0, 50, 99} {
		if math.Abs(z.Prob(k)-0.01) > 1e-12 {
			t.Fatalf("alpha=0 prob(%d) = %v", k, z.Prob(k))
		}
	}
}

func TestZipfProbSumsToOne(t *testing.T) {
	for _, alpha := range []float64{0, 0.5, 1, 1.5, 2} {
		z := NewZipf(1000, alpha)
		sum := 0.0
		for k := 0; k < 1000; k++ {
			sum += z.Prob(k)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("alpha=%v sum=%v", alpha, sum)
		}
	}
	if NewZipf(10, 1).Prob(-1) != 0 || NewZipf(10, 1).Prob(10) != 0 {
		t.Fatal("out-of-range prob should be 0")
	}
}

func TestZipfSampleMatchesProb(t *testing.T) {
	// Empirical frequencies must track analytic probabilities.
	z := NewZipf(50, 1.2)
	r := rng.New(7)
	const n = 400000
	counts := make([]int, 50)
	for i := 0; i < n; i++ {
		counts[z.Sample(r)]++
	}
	for k := 0; k < 10; k++ {
		want := z.Prob(k)
		got := float64(counts[k]) / n
		if math.Abs(got-want)/want > 0.05 {
			t.Errorf("rank %d: freq %.5f want %.5f", k, got, want)
		}
	}
	if z.N() != 50 || z.Alpha() != 1.2 {
		t.Fatal("accessors")
	}
}

func TestZipfHighAlphaConcentration(t *testing.T) {
	z := NewZipf(1_000_000, 2.0)
	// Paper Table 1: 60.80% on the top key at alpha=2.
	if got := z.Prob(0) * 100; math.Abs(got-60.80) > 0.1 {
		t.Fatalf("alpha=2 top key %.2f%%", got)
	}
	r := rng.New(3)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if z.Sample(r) == 0 {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.608) > 0.02 {
		t.Fatalf("sampled top-key fraction %.3f", frac)
	}
}

func TestZipfPanicsOnBadArgs(t *testing.T) {
	for _, fn := range []func(){
		func() { NewZipf(0, 1) },
		func() { NewZipf(10, -1) },
		func() { NewAlias(nil) },
		func() { NewAlias([]float64{-1, 2}) },
		func() { NewAlias([]float64{0, 0}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestAliasSingleItem(t *testing.T) {
	a := NewAlias([]float64{5})
	r := rng.New(1)
	for i := 0; i < 100; i++ {
		if a.Sample(r) != 0 {
			t.Fatal("single item alias")
		}
	}
}

func TestAliasExactTwoToOne(t *testing.T) {
	a := NewAlias([]float64{2, 1})
	r := rng.New(9)
	const n = 300000
	zero := 0
	for i := 0; i < n; i++ {
		if a.Sample(r) == 0 {
			zero++
		}
	}
	frac := float64(zero) / n
	if math.Abs(frac-2.0/3.0) > 0.01 {
		t.Fatalf("2:1 weights sampled %.4f", frac)
	}
}
