package server

import (
	"errors"
	"net"
	"sync"
)

// Client is a synchronous client for one server connection. It is safe
// for concurrent use; calls serialize on the connection.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
}

// Dial connects to a server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn}, nil
}

// Call invokes the named procedure with args and returns its result.
// A procedure error comes back as a non-nil error with the server's
// message.
func (c *Client) Call(name string, args ...string) (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := writeFrame(c.conn, encodeRequest(name, args)); err != nil {
		return "", err
	}
	payload, err := readFrame(c.conn)
	if err != nil {
		return "", err
	}
	ok, msg, err := decodeResponse(payload)
	if err != nil {
		return "", err
	}
	if !ok {
		return "", errors.New(msg)
	}
	return msg, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }
