package server

import (
	"bufio"
	"context"
	"errors"
	"net"
	"sync"
)

// ErrClientClosed is returned for calls issued after (or failed by)
// Close.
var ErrClientClosed = errors.New("server: client closed")

// Call is one in-flight request, in the style of net/rpc: Go returns it
// immediately and delivers it on Done once the reply (or error) is in.
type Call struct {
	Name  string // procedure name
	Args  []Arg  // arguments
	Reply Arg    // result, valid after Done fires with Err == nil
	Err   error  // per-call or connection error
	// Disconnect reports that Err came from the connection dying, not
	// from the server answering: the call may never have executed, or
	// executed with its response lost. Retrying layers reconnect and
	// re-issue on Disconnect, and must not retry server-answered
	// failures (Disconnect false) that could have committed.
	Disconnect bool
	Done       chan *Call

	id uint64
}

func (c *Call) finish() {
	select {
	case c.Done <- c:
	default:
		// The caller under-buffered Done; dropping beats deadlocking the
		// read loop (net/rpc makes the same choice).
	}
}

// Client is a pipelined client for one server connection. It is safe
// for concurrent use: any number of goroutines may have calls in
// flight; requests share the connection through a batching writer and a
// reader goroutine matches responses to calls by ID, so responses may
// arrive out of request order.
type Client struct {
	conn     net.Conn
	fw       *frameWriter
	maxFrame int

	mu      sync.Mutex
	pending map[uint64]*Call
	nextID  uint64
	err     error // sticky connection error; nil while usable

	sendWG   sync.WaitGroup // in-progress fw.send calls
	stopOnce sync.Once      // tears down the frame writer exactly once
}

// Dial connects to a server with default tuning.
func Dial(addr string) (*Client, error) { return DialOptions(addr, Options{}) }

// DialOptions connects to a server. Only FlushEvery and MaxFrame of
// opts apply client-side (the server enforces its own MaxInFlight).
func DialOptions(addr string, opts Options) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn, opts), nil
}

// NewClient wraps an established connection — useful when the dial path
// is custom (a fault injector, a proxy, an in-memory pipe). The client
// owns conn and closes it on teardown.
func NewClient(conn net.Conn, opts Options) *Client {
	opts = opts.withDefaults()
	c := &Client{
		conn:     conn,
		fw:       startFrameWriter(conn, opts.FlushEvery),
		maxFrame: opts.MaxFrame,
		pending:  map[uint64]*Call{},
	}
	go c.readLoop(opts.MaxFrame)
	return c
}

// Go invokes the named procedure asynchronously. It returns the Call
// immediately; done (buffered, or nil to allocate one) receives the
// same Call when the response arrives. Issue many Go calls before
// reading Done to pipeline requests on the connection.
func (c *Client) Go(name string, args []Arg, done chan *Call) *Call {
	return c.issue(name, args, done, false, 0)
}

// GoID is Go with a caller-chosen request ID. A retrying layer that
// owns the ID space can re-issue the same ID on a fresh connection and
// let the server's session dedup replay (or coalesce with) the original
// execution. The caller is responsible for uniqueness within the
// connection: a client must use either Go or GoID, not both, and an ID
// still pending fails the new call immediately.
func (c *Client) GoID(id uint64, name string, args []Arg, done chan *Call) *Call {
	return c.issue(name, args, done, true, id)
}

func (c *Client) issue(name string, args []Arg, done chan *Call, explicit bool, id uint64) *Call {
	if done == nil {
		done = make(chan *Call, 1)
	} else if cap(done) == 0 {
		panic("server: Go done channel is unbuffered")
	}
	call := &Call{Name: name, Args: args, Done: done}
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		call.Err = err
		call.Disconnect = true
		call.finish()
		return call
	}
	if explicit {
		if _, dup := c.pending[id]; dup {
			c.mu.Unlock()
			call.Err = errors.New("server: request ID already pending")
			call.finish()
			return call
		}
	} else {
		id = c.nextID
		c.nextID++
	}
	call.id = id
	req := encodeRequest(id, name, args)
	if len(req) > c.maxFrame {
		// Fail just this call; sending it would make the server drop the
		// whole connection (and a frame over 4 GiB would wrap the length
		// header and desync the stream).
		c.mu.Unlock()
		call.Err = &FrameSizeError{Size: len(req), Limit: c.maxFrame}
		call.finish()
		return call
	}
	c.pending[id] = call
	c.sendWG.Add(1) // under mu: teardown sets c.err first, so no send starts after stop
	c.mu.Unlock()
	if !c.fw.send(req) {
		// The server stopped draining requests; tear the connection
		// down, which fails this call (and the rest) via the read loop.
		_ = c.conn.Close()
	}
	c.sendWG.Done()
	return call
}

// Call invokes the named procedure and waits for its result. A
// procedure error comes back as a non-nil error; UnknownProcedureError
// (detect with errors.As) means the server has no such handler.
func (c *Client) Call(name string, args ...Arg) (Arg, error) {
	call := <-c.Go(name, args, make(chan *Call, 1)).Done
	return call.Reply, call.Err
}

// CallContext is Call bounded by ctx: when ctx ends first the call is
// abandoned (a late response is discarded) and ctx.Err() returned. The
// abandoned request may still execute on the server — pair with session
// dedup when re-issuing.
func (c *Client) CallContext(ctx context.Context, name string, args ...Arg) (Arg, error) {
	call := c.Go(name, args, make(chan *Call, 1))
	select {
	case <-call.Done:
		return call.Reply, call.Err
	case <-ctx.Done():
		c.mu.Lock()
		delete(c.pending, call.id)
		c.mu.Unlock()
		return Nil, ctx.Err()
	}
}

// Err reports the client's sticky connection error: nil while the
// connection is usable, the fatal wire or close error afterward.
func (c *Client) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// readLoop matches responses to pending calls until the connection
// dies, then fails everything still outstanding.
func (c *Client) readLoop(maxFrame int) {
	br := bufio.NewReaderSize(c.conn, 64<<10)
	var wireErr error
	for {
		payload, err := readFrame(br, maxFrame)
		if err != nil {
			wireErr = err
			break
		}
		id, result, callErr, err := decodeResponse(payload)
		if err != nil {
			wireErr = err
			break
		}
		c.mu.Lock()
		call := c.pending[id]
		delete(c.pending, id)
		c.mu.Unlock()
		if call == nil {
			continue // response to a call we gave up on; ignore
		}
		call.Reply, call.Err = result, callErr
		call.finish()
	}
	c.mu.Lock()
	if c.err == nil {
		c.err = wireErr
	}
	failed := make([]*Call, 0, len(c.pending))
	for id, call := range c.pending {
		delete(c.pending, id)
		call.Err = c.err
		call.Disconnect = true
		failed = append(failed, call)
	}
	c.mu.Unlock()
	for _, call := range failed {
		call.finish()
	}
	c.stop()
}

// stop shuts the frame writer down once no send can still be in
// flight. Callers must have set c.err first so new Go calls fail fast
// instead of sending.
func (c *Client) stop() {
	c.stopOnce.Do(func() {
		c.sendWG.Wait()
		c.fw.close()
	})
}

// Close tears down the connection. Calls still in flight fail with
// ErrClientClosed.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.err == nil {
		c.err = ErrClientClosed
	}
	c.mu.Unlock()
	err := c.conn.Close() // unblocks the read loop, which fails pending calls
	c.stop()
	return err
}
