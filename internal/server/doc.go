// Package server provides Doppel's network interface: "clients submit
// transactions in the form of procedures" (§3) over TCP (§6: "Doppel
// supports RPC from remote clients over TCP"). Applications register
// named procedures; clients invoke them by name with typed arguments.
//
// The protocol is pipelined: requests carry IDs, so a client keeps many
// requests in flight on one connection and the server answers in
// whatever order transactions commit. Each connection runs a reader
// that fans requests out to the database's worker pool (bounded by
// Options.MaxInFlight) and a single flusher goroutine that batches
// response writes, which is what lets one TCP connection saturate the
// phase-reconciliation engine instead of paying a network round trip
// per transaction. See wire.go for the frame format.
//
// # Invariants
//
//   - Frames are length-prefixed and bounded by Options.MaxFrame; an
//     oversized or malformed frame fails the connection, never the
//     server.
//   - Responses for one connection are written by exactly one flusher
//     goroutine (writer.go), so replies are never interleaved
//     mid-frame even though they complete out of order.
//   - Handlers run inside a database transaction on worker goroutines;
//     a handler error aborts only its own transaction and is reported
//     to the client as a typed error response.
package server
