package server

import (
	"bufio"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"doppel"
	"doppel/internal/metrics"
)

// Handler executes one named procedure inside a transaction. The
// returned Arg is sent back to the client on commit; return Nil for
// void procedures.
type Handler func(tx doppel.Tx, args []Arg) (Arg, error)

// Backend is the database surface the server drives. Both *doppel.DB
// and *doppel.Cluster satisfy it; the server is indifferent to whether
// requests land on one worker pool or are routed across shards.
type Backend interface {
	ExecAsync(fn doppel.TxFunc, done func(error))
}

// Options tunes a Server. The zero value means defaults.
type Options struct {
	// MaxInFlight bounds how many requests from one connection execute
	// concurrently; further requests wait in the kernel socket buffer.
	// 0 means 128.
	MaxInFlight int
	// FlushEvery is how long the response flusher waits for more
	// completions before flushing a batch. 0 flushes as soon as the
	// response queue goes idle, which keeps latency minimal; a small
	// interval (e.g. 100µs) trades latency for larger batches.
	FlushEvery time.Duration
	// MaxFrame bounds the payload of one frame in either direction;
	// oversized frames are rejected before allocation and the
	// connection is dropped. 0 means DefaultMaxFrame (1 MiB).
	MaxFrame int
}

func (o Options) withDefaults() Options {
	if o.MaxInFlight <= 0 {
		o.MaxInFlight = 128
	}
	if o.MaxFrame <= 0 {
		o.MaxFrame = DefaultMaxFrame
	}
	if o.MaxFrame > 1<<31 {
		o.MaxFrame = 1 << 31 // frame headers are uint32; larger would wrap
	}
	return o
}

// Server serves registered procedures over TCP on top of a Doppel
// database.
type Server struct {
	db    Backend
	opts  Options
	stats *metrics.RPCStats

	mu       sync.RWMutex
	handlers map[string]Handler

	lis    net.Listener
	connWG sync.WaitGroup
	connMu sync.Mutex
	conns  map[net.Conn]struct{}
	closed atomic.Bool
}

// New returns a server over db with default Options.
func New(db Backend) *Server { return NewWithOptions(db, Options{}) }

// NewWithOptions returns a server over db with explicit tuning.
func NewWithOptions(db Backend, opts Options) *Server {
	return &Server{
		db:       db,
		opts:     opts.withDefaults(),
		stats:    metrics.NewRPCStats(),
		handlers: map[string]Handler{},
		conns:    map[net.Conn]struct{}{},
	}
}

// Register installs a procedure under name, replacing any previous one.
func (s *Server) Register(name string, h Handler) {
	s.mu.Lock()
	s.handlers[name] = h
	s.mu.Unlock()
}

// Stats returns the server's request accounting: total requests served,
// how many failed, and a request latency histogram (nanoseconds from
// decode to response enqueue).
func (s *Server) Stats() (requests, errors uint64, latency *metrics.Hist) {
	return s.stats.Snapshot()
}

// Listen starts accepting connections on addr (e.g. "127.0.0.1:7777")
// and returns the bound address. Serving happens on background
// goroutines until Close.
func (s *Server) Listen(addr string) (string, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.lis = lis
	s.connWG.Add(1)
	go s.acceptLoop()
	return lis.Addr().String(), nil
}

func (s *Server) acceptLoop() {
	defer s.connWG.Done()
	for {
		conn, err := s.lis.Accept()
		if err != nil {
			return // listener closed
		}
		s.connMu.Lock()
		if s.closed.Load() {
			s.connMu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.connMu.Unlock()
		s.connWG.Add(1)
		go func() {
			defer s.connWG.Done()
			s.serveConn(conn)
			s.connMu.Lock()
			delete(s.conns, conn)
			s.connMu.Unlock()
			conn.Close()
		}()
	}
}

// serveConn pumps one client connection: the read loop decodes requests
// and fans each straight into the database's worker pool via ExecAsync
// (no goroutine per request), while a frameWriter streams completions
// back as transactions commit — possibly out of request order. sem
// bounds in-flight requests per connection; response sends never block,
// so a completion callback can never stall a database worker on a slow
// client.
func (s *Server) serveConn(conn net.Conn) {
	fw := startFrameWriter(conn, s.opts.FlushEvery)
	sem := make(chan struct{}, s.opts.MaxInFlight)
	var reqWG sync.WaitGroup
	br := bufio.NewReaderSize(conn, 64<<10)
	for {
		payload, err := readFrame(br, s.opts.MaxFrame)
		if err != nil {
			break // EOF, peer reset, or oversized frame: drop the connection
		}
		id, name, args, err := decodeRequest(payload)
		if err != nil {
			break // corrupt stream: nothing after this point can be trusted
		}
		s.mu.RLock()
		h := s.handlers[name]
		s.mu.RUnlock()
		if h == nil {
			s.stats.RecordError()
			if !fw.send(encodeErrResponse(id, statusUnknownProc, name)) {
				break
			}
			continue
		}
		sem <- struct{}{} // bounds in-flight executions for this connection
		reqWG.Add(1)
		start := time.Now()
		var result Arg
		s.db.ExecAsync(func(tx doppel.Tx) error {
			var herr error
			result, herr = h(tx, args)
			return herr
		}, func(err error) {
			s.stats.Record(time.Since(start).Nanoseconds(), err == nil)
			if !fw.send(s.encodeResult(id, result, err)) {
				// The client stopped draining responses; drop it rather
				// than stall a database worker shared by every client.
				_ = conn.Close()
			}
			<-sem
			reqWG.Done()
		})
	}
	reqWG.Wait()
	fw.close()
}

// encodeResult encodes one completed request's response, downgrading
// results too large for the connection's frame limit to an error. The
// downgrade message states that the transaction committed: the client
// must not treat it as a safe-to-retry failure.
func (s *Server) encodeResult(id uint64, result Arg, err error) []byte {
	if err != nil {
		return encodeErrResponse(id, statusForError(err), err.Error())
	}
	resp := encodeOKResponse(id, result)
	if len(resp) > s.opts.MaxFrame {
		msg := "transaction committed but result dropped: " +
			(&FrameSizeError{Size: len(resp), Limit: s.opts.MaxFrame}).Error()
		return encodeErrResponse(id, statusErr, msg)
	}
	return resp
}

// Close stops accepting, closes open connections, and waits for
// in-flight requests to finish.
func (s *Server) Close() {
	if s.closed.Swap(true) {
		return
	}
	if s.lis != nil {
		_ = s.lis.Close()
	}
	s.connMu.Lock()
	for conn := range s.conns {
		_ = conn.Close() // unblocks the connection's read loop
	}
	s.connMu.Unlock()
	s.connWG.Wait()
}
