// Package server provides Doppel's network interface: "clients submit
// transactions in the form of procedures" (§3) over TCP (§6: "Doppel
// supports RPC from remote clients over TCP"). Applications register
// named procedures; clients invoke them by name with string arguments.
//
// The wire protocol is deliberately small: every message is a uint32
// length prefix followed by the payload. Requests carry a procedure name
// and its arguments; responses carry a status byte and either a result
// or an error string.
package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"doppel"
)

// Handler executes one named procedure inside a transaction. The
// returned string is sent back to the client on commit.
type Handler func(tx doppel.Tx, args []string) (string, error)

// Server serves registered procedures over TCP on top of a Doppel
// database.
type Server struct {
	db *doppel.DB

	mu       sync.RWMutex
	handlers map[string]Handler

	lis    net.Listener
	connWG sync.WaitGroup
	closed bool
}

// New returns a server over db.
func New(db *doppel.DB) *Server {
	return &Server{db: db, handlers: map[string]Handler{}}
}

// Register installs a procedure under name, replacing any previous one.
func (s *Server) Register(name string, h Handler) {
	s.mu.Lock()
	s.handlers[name] = h
	s.mu.Unlock()
}

// Listen starts accepting connections on addr (e.g. "127.0.0.1:7777")
// and returns the bound address. Serving happens on background
// goroutines until Close.
func (s *Server) Listen(addr string) (string, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.lis = lis
	s.connWG.Add(1)
	go s.acceptLoop()
	return lis.Addr().String(), nil
}

func (s *Server) acceptLoop() {
	defer s.connWG.Done()
	for {
		conn, err := s.lis.Accept()
		if err != nil {
			return // listener closed
		}
		s.connWG.Add(1)
		go func() {
			defer s.connWG.Done()
			defer conn.Close()
			s.serveConn(conn)
		}()
	}
}

// serveConn handles one client connection: a sequence of
// request/response exchanges.
func (s *Server) serveConn(conn net.Conn) {
	for {
		payload, err := readFrame(conn)
		if err != nil {
			return
		}
		name, args, err := decodeRequest(payload)
		if err != nil {
			_ = writeFrame(conn, encodeResponse(false, "bad request: "+err.Error()))
			return
		}
		s.mu.RLock()
		h := s.handlers[name]
		s.mu.RUnlock()
		if h == nil {
			_ = writeFrame(conn, encodeResponse(false, "unknown procedure "+name))
			continue
		}
		var result string
		err = s.db.Exec(func(tx doppel.Tx) error {
			var herr error
			result, herr = h(tx, args)
			return herr
		})
		if err != nil {
			_ = writeFrame(conn, encodeResponse(false, err.Error()))
			continue
		}
		_ = writeFrame(conn, encodeResponse(true, result))
	}
}

// Close stops accepting and waits for in-flight connections.
func (s *Server) Close() {
	if s.closed {
		return
	}
	s.closed = true
	if s.lis != nil {
		_ = s.lis.Close()
	}
	s.connWG.Wait()
}

// --- framing and encoding ---

const maxFrame = 1 << 20

func writeFrame(w io.Writer, payload []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("server: frame of %d bytes exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

func appendString(buf []byte, s string) []byte {
	var l [4]byte
	binary.BigEndian.PutUint32(l[:], uint32(len(s)))
	buf = append(buf, l[:]...)
	return append(buf, s...)
}

func readString(buf []byte) (string, []byte, error) {
	if len(buf) < 4 {
		return "", nil, errors.New("server: truncated string length")
	}
	n := binary.BigEndian.Uint32(buf)
	buf = buf[4:]
	if uint32(len(buf)) < n {
		return "", nil, errors.New("server: truncated string")
	}
	return string(buf[:n]), buf[n:], nil
}

func encodeRequest(name string, args []string) []byte {
	buf := appendString(nil, name)
	var c [4]byte
	binary.BigEndian.PutUint32(c[:], uint32(len(args)))
	buf = append(buf, c[:]...)
	for _, a := range args {
		buf = appendString(buf, a)
	}
	return buf
}

func decodeRequest(buf []byte) (name string, args []string, err error) {
	name, buf, err = readString(buf)
	if err != nil {
		return "", nil, err
	}
	if len(buf) < 4 {
		return "", nil, errors.New("server: truncated arg count")
	}
	n := binary.BigEndian.Uint32(buf)
	buf = buf[4:]
	if n > 1<<16 {
		return "", nil, errors.New("server: too many args")
	}
	args = make([]string, 0, n)
	for i := uint32(0); i < n; i++ {
		var a string
		a, buf, err = readString(buf)
		if err != nil {
			return "", nil, err
		}
		args = append(args, a)
	}
	return name, args, nil
}

func encodeResponse(ok bool, msg string) []byte {
	status := byte(0)
	if ok {
		status = 1
	}
	return appendString([]byte{status}, msg)
}

func decodeResponse(buf []byte) (ok bool, msg string, err error) {
	if len(buf) < 1 {
		return false, "", errors.New("server: empty response")
	}
	ok = buf[0] == 1
	msg, _, err = readString(buf[1:])
	return ok, msg, err
}
