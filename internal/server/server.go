package server

import (
	"bufio"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"doppel"
	"doppel/internal/metrics"
)

// Handler executes one named procedure inside a transaction. The
// returned Arg is sent back to the client on commit; return Nil for
// void procedures.
type Handler func(tx doppel.Tx, args []Arg) (Arg, error)

// Backend is the database surface the server drives. Both *doppel.DB
// and *doppel.Cluster satisfy it; the server is indifferent to whether
// requests land on one worker pool or are routed across shards.
type Backend interface {
	ExecAsync(fn doppel.TxFunc, done func(error))
}

// Options tunes a Server. The zero value means defaults.
type Options struct {
	// MaxInFlight bounds how many requests from one connection execute
	// concurrently; further requests wait in the kernel socket buffer.
	// 0 means 128.
	MaxInFlight int
	// MaxServerInFlight bounds transactional requests executing across
	// all connections. At the cap further requests are shed immediately
	// with ErrOverloaded instead of queueing behind the database workers,
	// which keeps latency bounded for the requests that are admitted.
	// 0 means unbounded (no shedding). Direct handlers are exempt.
	MaxServerInFlight int
	// FlushEvery is how long the response flusher waits for more
	// completions before flushing a batch. 0 flushes as soon as the
	// response queue goes idle, which keeps latency minimal; a small
	// interval (e.g. 100µs) trades latency for larger batches.
	FlushEvery time.Duration
	// MaxFrame bounds the payload of one frame in either direction;
	// oversized frames are rejected before allocation and the
	// connection is dropped. 0 means DefaultMaxFrame (1 MiB).
	MaxFrame int
	// ReadTimeout disconnects a connection that delivers no request for
	// this long — a stalled or half-open peer — without affecting other
	// connections. It is an idle timeout: a healthy quiet client must
	// reconnect or stay within it. 0 means never.
	ReadTimeout time.Duration
	// WriteTimeout bounds each response batch write; a peer that stops
	// draining its socket for this long is disconnected. 0 means never
	// (the 32 MiB pending-byte cap still applies).
	WriteTimeout time.Duration
}

func (o Options) withDefaults() Options {
	if o.MaxInFlight <= 0 {
		o.MaxInFlight = 128
	}
	if o.MaxFrame <= 0 {
		o.MaxFrame = DefaultMaxFrame
	}
	if o.MaxFrame > 1<<31 {
		o.MaxFrame = 1 << 31 // frame headers are uint32; larger would wrap
	}
	return o
}

// Server serves registered procedures over TCP on top of a Doppel
// database.
type Server struct {
	db    Backend
	opts  Options
	stats *metrics.RPCStats

	mu       sync.RWMutex
	handlers map[string]Handler
	directs  map[string]DirectHandler

	inflight chan struct{} // global transactional budget; nil = unbounded
	sheds    atomic.Uint64

	sessMu    sync.Mutex
	sessions  map[string]*session
	sessOrder []string

	lis    net.Listener
	connWG sync.WaitGroup
	connMu sync.Mutex
	conns  map[net.Conn]struct{}
	closed atomic.Bool
}

// DirectHandler executes one named procedure outside the transactional
// worker pool, on its own goroutine. Use it for control-plane calls
// that read server or replica state — possibly blocking (a catch-up
// wait) — without consuming a database worker. Direct handlers are
// exempt from the MaxServerInFlight budget but still count against the
// connection's MaxInFlight.
type DirectHandler func(args []Arg) (Arg, error)

// New returns a server over db with default Options.
func New(db Backend) *Server { return NewWithOptions(db, Options{}) }

// NewWithOptions returns a server over db with explicit tuning.
func NewWithOptions(db Backend, opts Options) *Server {
	opts = opts.withDefaults()
	s := &Server{
		db:       db,
		opts:     opts,
		stats:    metrics.NewRPCStats(),
		handlers: map[string]Handler{},
		directs:  map[string]DirectHandler{},
		sessions: map[string]*session{},
		conns:    map[net.Conn]struct{}{},
	}
	if opts.MaxServerInFlight > 0 {
		s.inflight = make(chan struct{}, opts.MaxServerInFlight)
	}
	return s
}

// Register installs a procedure under name, replacing any previous one.
func (s *Server) Register(name string, h Handler) {
	s.mu.Lock()
	s.handlers[name] = h
	s.mu.Unlock()
}

// RegisterDirect installs a non-transactional procedure under name,
// replacing any previous handler (direct or transactional) of that
// name.
func (s *Server) RegisterDirect(name string, h DirectHandler) {
	s.mu.Lock()
	s.directs[name] = h
	delete(s.handlers, name)
	s.mu.Unlock()
}

// Sheds reports how many requests were rejected with ErrOverloaded
// because the MaxServerInFlight budget was exhausted.
func (s *Server) Sheds() uint64 { return s.sheds.Load() }

// session returns the dedup session for token, creating it (and
// evicting the oldest beyond sessionCap) as needed.
func (s *Server) session(token string) *session {
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	if sess, ok := s.sessions[token]; ok {
		return sess
	}
	if len(s.sessOrder) >= sessionCap {
		oldest := s.sessOrder[0]
		s.sessOrder = s.sessOrder[1:]
		delete(s.sessions, oldest)
	}
	sess := newSession()
	s.sessions[token] = sess
	s.sessOrder = append(s.sessOrder, token)
	return sess
}

// Stats returns the server's request accounting: total requests served,
// how many failed, and a request latency histogram (nanoseconds from
// decode to response enqueue).
func (s *Server) Stats() (requests, errors uint64, latency *metrics.Hist) {
	return s.stats.Snapshot()
}

// Listen starts accepting connections on addr (e.g. "127.0.0.1:7777")
// and returns the bound address. Serving happens on background
// goroutines until Close.
func (s *Server) Listen(addr string) (string, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.ServeListener(lis)
	return lis.Addr().String(), nil
}

// ServeListener accepts from a listener the caller built — the hook for
// interposing a wrapper (TLS, a fault injector) between the network and
// the server. Serving happens on background goroutines until Close or
// Drain, which close lis.
func (s *Server) ServeListener(lis net.Listener) {
	s.lis = lis
	s.connWG.Add(1)
	go s.acceptLoop()
}

func (s *Server) acceptLoop() {
	defer s.connWG.Done()
	for {
		conn, err := s.lis.Accept()
		if err != nil {
			return // listener closed
		}
		s.connMu.Lock()
		if s.closed.Load() {
			s.connMu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.connMu.Unlock()
		s.connWG.Add(1)
		go func() {
			defer s.connWG.Done()
			s.serveConn(conn)
			s.connMu.Lock()
			delete(s.conns, conn)
			s.connMu.Unlock()
			conn.Close()
		}()
	}
}

// serveConn pumps one client connection: the read loop decodes requests
// and fans each straight into the database's worker pool via ExecAsync
// (no goroutine per request), while a frameWriter streams completions
// back as transactions commit — possibly out of request order. sem
// bounds in-flight requests per connection; response sends never block,
// so a completion callback can never stall a database worker on a slow
// client.
func (s *Server) serveConn(conn net.Conn) {
	fw := startFrameWriterCfg(conn, frameWriterConfig{
		flushEvery:   s.opts.FlushEvery,
		conn:         conn,
		writeTimeout: s.opts.WriteTimeout,
		// A write timeout or broken pipe means the peer is gone; close so
		// the read loop below stops serving it.
		onBroken: func() { _ = conn.Close() },
	})
	sem := make(chan struct{}, s.opts.MaxInFlight)
	var reqWG sync.WaitGroup
	var sess *session
	br := bufio.NewReaderSize(conn, 64<<10)
	for {
		if s.closed.Load() {
			break // draining: stop decoding, flush what's in flight
		}
		if t := s.opts.ReadTimeout; t > 0 {
			_ = conn.SetReadDeadline(time.Now().Add(t))
		}
		payload, err := readFrame(br, s.opts.MaxFrame)
		if err != nil {
			break // EOF, peer reset, stall, or oversized frame: drop the connection
		}
		id, name, args, err := decodeRequest(payload)
		if err != nil {
			break // corrupt stream: nothing after this point can be trusted
		}
		if name == sessionProc {
			token := ""
			if len(args) > 0 {
				token = string(args[0].Bytes())
			}
			sess = s.session(token)
			if !fw.send(encodeOKResponse(id, Nil)) {
				break
			}
			continue
		}
		s.mu.RLock()
		d := s.directs[name]
		var h Handler
		if d == nil {
			h = s.handlers[name]
		}
		s.mu.RUnlock()
		if d == nil && h == nil {
			s.stats.RecordError()
			if !fw.send(encodeErrResponse(id, statusUnknownProc, name)) {
				break
			}
			continue
		}
		if sess != nil {
			resp, dup := sess.claim(id, func(resp []byte) {
				if !fw.send(resp) {
					_ = conn.Close()
				}
			})
			if dup {
				// Replay the cached response, or — resp nil — stay parked
				// until the in-flight original completes.
				if resp != nil && !fw.send(resp) {
					break
				}
				continue
			}
		}
		if d != nil {
			sem <- struct{}{}
			reqWG.Add(1)
			go func() {
				defer reqWG.Done()
				start := time.Now()
				result, derr := d(args)
				s.stats.Record(time.Since(start).Nanoseconds(), derr == nil)
				s.deliver(sess, fw, conn, id, s.encodeResult(id, result, derr))
				<-sem
			}()
			continue
		}
		if s.inflight != nil {
			select {
			case s.inflight <- struct{}{}:
			default:
				// Shed: answer ErrOverloaded now instead of queueing behind
				// saturated workers. Never cache the rejection — the
				// retry must re-execute.
				s.sheds.Add(1)
				s.stats.RecordError()
				if sess != nil {
					sess.abandon(id)
				}
				if !fw.send(encodeErrResponse(id, statusErrOverloaded, doppel.ErrOverloaded.Error())) {
					break
				}
				continue
			}
		}
		sem <- struct{}{} // bounds in-flight executions for this connection
		reqWG.Add(1)
		start := time.Now()
		var result Arg
		s.db.ExecAsync(func(tx doppel.Tx) error {
			var herr error
			result, herr = h(tx, args)
			return herr
		}, func(err error) {
			s.stats.Record(time.Since(start).Nanoseconds(), err == nil)
			s.deliver(sess, fw, conn, id, s.encodeResult(id, result, err))
			if s.inflight != nil {
				<-s.inflight
			}
			<-sem
			reqWG.Done()
		})
	}
	reqWG.Wait()
	fw.close()
}

// deliver routes one completed response: through the session (which
// caches it and notifies every parked duplicate, including this
// connection) or straight to the frame writer. A send failure means the
// client stopped draining responses; drop it rather than stall a
// database worker shared by every client.
func (s *Server) deliver(sess *session, fw *frameWriter, conn net.Conn, id uint64, resp []byte) {
	if sess != nil {
		sess.complete(id, resp)
		return
	}
	if !fw.send(resp) {
		_ = conn.Close()
	}
}

// encodeResult encodes one completed request's response, downgrading
// results too large for the connection's frame limit to an error. The
// downgrade message states that the transaction committed: the client
// must not treat it as a safe-to-retry failure.
func (s *Server) encodeResult(id uint64, result Arg, err error) []byte {
	if err != nil {
		return encodeErrResponse(id, statusForError(err), err.Error())
	}
	resp := encodeOKResponse(id, result)
	if len(resp) > s.opts.MaxFrame {
		msg := "transaction committed but result dropped: " +
			(&FrameSizeError{Size: len(resp), Limit: s.opts.MaxFrame}).Error()
		return encodeErrResponse(id, statusErr, msg)
	}
	return resp
}

// Close stops accepting, closes open connections, and waits for
// in-flight requests to finish. In-flight responses may be lost; use
// Drain for a graceful shutdown.
func (s *Server) Close() {
	if s.closed.Swap(true) {
		return
	}
	if s.lis != nil {
		_ = s.lis.Close()
	}
	s.connMu.Lock()
	for conn := range s.conns {
		_ = conn.Close() // unblocks the connection's read loop
	}
	s.connMu.Unlock()
	s.connWG.Wait()
}

// Drain shuts down gracefully: stop accepting, stop reading further
// requests, finish every in-flight request and flush its response, then
// close the connections. Connections still busy after timeout are cut
// off; timeout 0 waits forever. Drain and Close are each effective at
// most once, in either order.
func (s *Server) Drain(timeout time.Duration) {
	if s.closed.Swap(true) {
		return
	}
	if s.lis != nil {
		_ = s.lis.Close()
	}
	s.connMu.Lock()
	for conn := range s.conns {
		// Expire the read loop: it stops decoding new requests, waits for
		// in-flight ones, flushes their responses, then closes the conn.
		_ = conn.SetReadDeadline(time.Now())
	}
	s.connMu.Unlock()
	done := make(chan struct{})
	go func() {
		s.connWG.Wait()
		close(done)
	}()
	var expired <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		expired = t.C
	}
	select {
	case <-done:
	case <-expired:
		s.connMu.Lock()
		for conn := range s.conns {
			_ = conn.Close()
		}
		s.connMu.Unlock()
		<-done
	}
}
