package server

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"testing"

	"doppel"
)

func newServer(t *testing.T) (*Server, *Client, *doppel.DB) {
	t.Helper()
	db := doppel.Open(doppel.Options{Workers: 2})
	s := New(db)
	s.Register("incr", func(tx doppel.Tx, args []string) (string, error) {
		if len(args) != 2 {
			return "", errors.New("incr needs key and amount")
		}
		n, err := strconv.ParseInt(args[1], 10, 64)
		if err != nil {
			return "", err
		}
		return "", tx.Add(args[0], n)
	})
	s.Register("get", func(tx doppel.Tx, args []string) (string, error) {
		if len(args) != 1 {
			return "", errors.New("get needs a key")
		}
		n, err := tx.GetInt(args[0])
		if err != nil {
			return "", err
		}
		return strconv.FormatInt(n, 10), nil
	})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		c.Close()
		s.Close()
		db.Close()
	})
	return s, c, db
}

func TestCallRoundTrip(t *testing.T) {
	_, c, _ := newServer(t)
	if _, err := c.Call("incr", "counter", "5"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Call("incr", "counter", "3"); err != nil {
		t.Fatal(err)
	}
	got, err := c.Call("get", "counter")
	if err != nil {
		t.Fatal(err)
	}
	if got != "8" {
		t.Fatalf("counter = %s", got)
	}
}

func TestUnknownProcedure(t *testing.T) {
	_, c, _ := newServer(t)
	if _, err := c.Call("nope"); err == nil {
		t.Fatal("expected error")
	}
	// The connection stays usable afterwards.
	if _, err := c.Call("incr", "k", "1"); err != nil {
		t.Fatal(err)
	}
}

func TestHandlerErrorPropagates(t *testing.T) {
	_, c, _ := newServer(t)
	if _, err := c.Call("incr", "onlykey"); err == nil {
		t.Fatal("expected arg error")
	}
	if _, err := c.Call("get", "k", "extra"); err == nil {
		t.Fatal("expected arg error")
	}
}

func TestConcurrentClients(t *testing.T) {
	s, _, _ := newServer(t)
	addr := s.lis.Addr().String()
	const clients = 4
	const perClient = 200
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for j := 0; j < perClient; j++ {
				if _, err := c.Call("incr", "shared", "1"); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	got, err := c.Call("get", "shared")
	if err != nil {
		t.Fatal(err)
	}
	if got != fmt.Sprint(clients*perClient) {
		t.Fatalf("shared = %s, want %d", got, clients*perClient)
	}
}

func TestCodecRoundTrip(t *testing.T) {
	name, args, err := decodeRequest(encodeRequest("proc", []string{"a", "", "xyz"}))
	if err != nil || name != "proc" || len(args) != 3 || args[2] != "xyz" {
		t.Fatalf("%v %v %v", name, args, err)
	}
	ok, msg, err := decodeResponse(encodeResponse(true, "hi"))
	if err != nil || !ok || msg != "hi" {
		t.Fatalf("%v %v %v", ok, msg, err)
	}
	ok, msg, err = decodeResponse(encodeResponse(false, "bad"))
	if err != nil || ok || msg != "bad" {
		t.Fatalf("%v %v %v", ok, msg, err)
	}
	if _, _, err := decodeRequest([]byte{0, 0}); err == nil {
		t.Fatal("truncated request should fail")
	}
	if _, _, err := decodeResponse(nil); err == nil {
		t.Fatal("empty response should fail")
	}
}
