package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"doppel"
)

func newServerOpts(t *testing.T, opts Options) (*Server, *Client) {
	t.Helper()
	db := doppel.Open(doppel.Options{Workers: 2})
	s := NewWithOptions(db, opts)
	s.Register("incr", func(tx doppel.Tx, args []Arg) (Arg, error) {
		if len(args) != 2 {
			return Nil, errors.New("incr needs key and amount")
		}
		n, err := args[1].Int64()
		if err != nil {
			return Nil, err
		}
		return Nil, tx.Add(args[0].String(), n)
	})
	s.Register("get", func(tx doppel.Tx, args []Arg) (Arg, error) {
		if len(args) != 1 {
			return Nil, errors.New("get needs a key")
		}
		n, err := tx.GetInt(args[0].String())
		if err != nil {
			return Nil, err
		}
		return Int(n), nil
	})
	s.Register("echo", func(tx doppel.Tx, args []Arg) (Arg, error) {
		if len(args) != 1 {
			return Nil, errors.New("echo needs one arg")
		}
		return args[0], nil
	})
	s.Register("sleep-echo", func(tx doppel.Tx, args []Arg) (Arg, error) {
		ms, err := args[0].Int64()
		if err != nil {
			return Nil, err
		}
		time.Sleep(time.Duration(ms) * time.Millisecond)
		return args[1], nil
	})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		c.Close()
		s.Close()
		db.Close()
	})
	return s, c
}

func newServer(t *testing.T) (*Server, *Client) {
	return newServerOpts(t, Options{})
}

func TestCallRoundTrip(t *testing.T) {
	_, c := newServer(t)
	if _, err := c.Call("incr", Str("counter"), Int(5)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Call("incr", Str("counter"), Int(3)); err != nil {
		t.Fatal(err)
	}
	got, err := c.Call("get", Str("counter"))
	if err != nil {
		t.Fatal(err)
	}
	if n, err := got.Int64(); err != nil || n != 8 {
		t.Fatalf("counter = %v (%v)", got, err)
	}
}

func TestUnknownProcedureTypedError(t *testing.T) {
	_, c := newServer(t)
	_, err := c.Call("nope")
	if err == nil {
		t.Fatal("expected error")
	}
	var unknown *UnknownProcedureError
	if !errors.As(err, &unknown) || unknown.Name != "nope" {
		t.Fatalf("err = %v, want UnknownProcedureError{nope}", err)
	}
	// The connection stays usable afterwards.
	if _, err := c.Call("incr", Str("k"), Int(1)); err != nil {
		t.Fatal(err)
	}
}

func TestHandlerErrorPropagates(t *testing.T) {
	_, c := newServer(t)
	if _, err := c.Call("incr", Str("onlykey")); err == nil {
		t.Fatal("expected arg error")
	}
	if _, err := c.Call("get", Str("k"), Str("extra")); err == nil {
		t.Fatal("expected arg error")
	}
	// Text integers parse for integer parameters (CLI interop).
	if _, err := c.Call("incr", Str("k"), Str("7")); err != nil {
		t.Fatal(err)
	}
	got, err := c.Call("get", Str("k"))
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != "7" {
		t.Fatalf("k = %v", got)
	}
}

// TestOutOfOrderCompletion pipelines a slow call behind nothing, then a
// fast call behind it, and requires the fast response to overtake the
// slow one on the same connection.
func TestOutOfOrderCompletion(t *testing.T) {
	_, c := newServer(t)
	slow := c.Go("sleep-echo", []Arg{Int(300), Str("slow")}, nil)
	time.Sleep(10 * time.Millisecond) // let the server pick up the slow call first
	fast := c.Go("sleep-echo", []Arg{Int(0), Str("fast")}, nil)

	select {
	case call := <-fast.Done:
		if call.Err != nil || call.Reply.String() != "fast" {
			t.Fatalf("fast: %v %v", call.Reply, call.Err)
		}
	case <-slow.Done:
		t.Fatal("slow call completed before fast call: no pipelining")
	case <-time.After(5 * time.Second):
		t.Fatal("timed out")
	}
	call := <-slow.Done
	if call.Err != nil || call.Reply.String() != "slow" {
		t.Fatalf("slow: %v %v", call.Reply, call.Err)
	}
}

// TestManyInFlight floods one connection with more concurrent calls
// than the server's in-flight bound and checks every response is routed
// to the right call.
func TestManyInFlight(t *testing.T) {
	_, c := newServerOpts(t, Options{MaxInFlight: 8})
	const n = 1000
	calls := make([]*Call, n)
	for i := 0; i < n; i++ {
		calls[i] = c.Go("echo", []Arg{Int(int64(i))}, nil)
	}
	for i, call := range calls {
		<-call.Done
		if call.Err != nil {
			t.Fatal(call.Err)
		}
		if got, _ := call.Reply.Int64(); got != int64(i) {
			t.Fatalf("call %d got reply %v: responses misrouted", i, call.Reply)
		}
	}

	// Writes interleaved with the echoes must all land.
	done := make(chan *Call, n)
	for i := 0; i < n; i++ {
		c.Go("incr", []Arg{Str("many"), Int(1)}, done)
	}
	for i := 0; i < n; i++ {
		if call := <-done; call.Err != nil {
			t.Fatal(call.Err)
		}
	}
	got, err := c.Call("get", Str("many"))
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := got.Int64(); v != n {
		t.Fatalf("many = %v, want %d", got, n)
	}
}

// TestOversizedFrameRejected checks that a frame header announcing more
// than MaxFrame bytes drops the connection without the server
// attempting the allocation, and that a corrupt payload does the same.
func TestOversizedFrameRejected(t *testing.T) {
	s, _ := newServerOpts(t, Options{MaxFrame: 4096})
	addr := s.lis.Addr().String()

	expectDropped := func(t *testing.T, raw []byte) {
		t.Helper()
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		if _, err := conn.Write(raw); err != nil {
			t.Fatal(err)
		}
		_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		if _, err := conn.Read(make([]byte, 1)); err != io.EOF {
			t.Fatalf("read after bad frame: %v, want EOF", err)
		}
	}

	t.Run("oversized", func(t *testing.T) {
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], 1<<31) // 2 GiB announced
		expectDropped(t, hdr[:])
	})
	t.Run("corrupt", func(t *testing.T) {
		payload := []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff}
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
		expectDropped(t, append(hdr[:], payload...))
	})

	// The client side enforces the same bound on responses.
	t.Run("client", func(t *testing.T) {
		if _, err := readFrame(readerOf(t, 1<<31), 4096); err == nil {
			t.Fatal("oversized frame accepted")
		} else {
			var fse *FrameSizeError
			if !errors.As(err, &fse) || fse.Limit != 4096 {
				t.Fatalf("err = %v, want FrameSizeError", err)
			}
		}
	})
}

func readerOf(t *testing.T, announced uint32) io.Reader {
	t.Helper()
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], announced)
	r, w := net.Pipe()
	go func() {
		_, _ = w.Write(hdr[:])
		_ = w.Close()
	}()
	t.Cleanup(func() { r.Close() })
	return r
}

func TestConcurrentClients(t *testing.T) {
	s, _ := newServer(t)
	addr := s.lis.Addr().String()
	const clients = 4
	const perClient = 200
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			done := make(chan *Call, perClient)
			for j := 0; j < perClient; j++ {
				c.Go("incr", []Arg{Str("shared"), Int(1)}, done)
			}
			for j := 0; j < perClient; j++ {
				if call := <-done; call.Err != nil {
					t.Error(call.Err)
					return
				}
			}
		}()
	}
	wg.Wait()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	got, err := c.Call("get", Str("shared"))
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != fmt.Sprint(clients*perClient) {
		t.Fatalf("shared = %v, want %d", got, clients*perClient)
	}
}

func TestCloseFailsPending(t *testing.T) {
	_, c := newServer(t)
	call := c.Go("sleep-echo", []Arg{Int(2000), Str("x")}, nil)
	time.Sleep(10 * time.Millisecond)
	c.Close()
	select {
	case <-call.Done:
		if call.Err == nil {
			t.Fatal("pending call succeeded after Close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pending call not failed by Close")
	}
	if _, err := c.Call("get", Str("k")); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("call after close: %v, want ErrClientClosed", err)
	}
}

func TestServerStats(t *testing.T) {
	s, c := newServer(t)
	if _, err := c.Call("incr", Str("k"), Int(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Call("nope"); err == nil {
		t.Fatal("expected error")
	}
	requests, errs, lat := s.Stats()
	if requests != 2 || errs != 1 {
		t.Fatalf("requests=%d errors=%d, want 2/1", requests, errs)
	}
	// Only executed requests contribute latency samples; the unknown
	// procedure must not drag the quantiles toward zero.
	if lat.Count() != 1 {
		t.Fatalf("latency samples = %d, want 1", lat.Count())
	}
}

// TestOversizedRequestFailsCall checks the client rejects a request
// over the frame limit by failing only that call, leaving the
// connection usable for the rest of the pipeline.
func TestOversizedRequestFailsCall(t *testing.T) {
	_, c := newServer(t)
	big := make([]byte, DefaultMaxFrame+1)
	_, err := c.Call("echo", Bytes(big))
	var fse *FrameSizeError
	if !errors.As(err, &fse) {
		t.Fatalf("err = %v, want FrameSizeError", err)
	}
	if _, err := c.Call("incr", Str("k"), Int(1)); err != nil {
		t.Fatalf("connection unusable after oversized request: %v", err)
	}
}

func TestCodecRoundTrip(t *testing.T) {
	id, name, args, err := decodeRequest(encodeRequest(42, "proc", []Arg{Str("a"), Str(""), Int(-7), Bytes([]byte{1, 2}), Nil}))
	if err != nil || id != 42 || name != "proc" || len(args) != 5 {
		t.Fatalf("%d %q %v %v", id, name, args, err)
	}
	if n, _ := args[2].Int64(); n != -7 {
		t.Fatalf("args[2] = %v", args[2])
	}
	if string(args[3].Bytes()) != "\x01\x02" || !args[4].IsNil() {
		t.Fatalf("args = %v", args)
	}

	rid, res, callErr, wireErr := decodeResponse(encodeOKResponse(9, Int(3)))
	if wireErr != nil || callErr != nil || rid != 9 {
		t.Fatalf("%d %v %v %v", rid, res, callErr, wireErr)
	}
	if n, _ := res.Int64(); n != 3 {
		t.Fatalf("res = %v", res)
	}
	rid, _, callErr, wireErr = decodeResponse(encodeErrResponse(10, statusErr, "bad"))
	if wireErr != nil || rid != 10 || callErr == nil || callErr.Error() != "bad" {
		t.Fatalf("%d %v %v", rid, callErr, wireErr)
	}
	rid, _, callErr, wireErr = decodeResponse(encodeErrResponse(11, statusUnknownProc, "p"))
	var unknown *UnknownProcedureError
	if wireErr != nil || rid != 11 || !errors.As(callErr, &unknown) {
		t.Fatalf("%d %v %v", rid, callErr, wireErr)
	}

	if _, _, _, err := decodeRequest([]byte{0}); err == nil {
		t.Fatal("truncated request should fail")
	}
	if _, _, _, wireErr := decodeResponse(nil); wireErr == nil {
		t.Fatal("empty response should fail")
	}
	if _, _, _, wireErr := decodeResponse([]byte{1, 99}); wireErr == nil {
		t.Fatal("unknown status should fail")
	}
}
