package server

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"net"
	"sync"
	"time"

	"doppel"
)

// errAttemptTimeout fails one attempt whose response did not arrive
// within RequestTimeout; the retry loop reconnects and re-issues.
var errAttemptTimeout = errors.New("server: request timed out")

// Dialer opens the underlying connection for a RetryClient. Tests point
// it at a fault injector or an in-memory pipe.
type Dialer func(addr string) (net.Conn, error)

// RetryOptions tunes a RetryClient. The zero value means defaults.
type RetryOptions struct {
	// Options tunes each underlying connection.
	Options
	// RequestTimeout bounds one attempt: if the response has not arrived,
	// the connection is presumed wedged, closed, and the request
	// re-issued on a fresh one. 0 means attempts wait forever (only
	// connection errors trigger retries).
	RequestTimeout time.Duration
	// MaxAttempts is the total tries per request, first included.
	// 0 means 10.
	MaxAttempts int
	// BackoffBase is the pre-jitter wait before the second attempt,
	// doubling per attempt up to BackoffMax. 0 means 5ms.
	BackoffBase time.Duration
	// BackoffMax caps the backoff growth. 0 means 500ms.
	BackoffMax time.Duration
	// Session is the dedup token sent to the server on every connection,
	// letting re-issued request IDs coalesce with or replay their
	// original execution instead of running twice. "" derives a random
	// token (unique per process, not across restarts).
	Session string
	// Seed fixes the jitter schedule for reproducible tests. 0 seeds
	// from a random token.
	Seed uint64
	// Dial overrides how connections are opened. nil means net.Dial
	// ("tcp", addr).
	Dial Dialer
}

func (o RetryOptions) withDefaults() RetryOptions {
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 10
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 5 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 500 * time.Millisecond
	}
	if o.Session == "" {
		o.Session = fmt.Sprintf("s-%016x%016x", rand.Uint64(), rand.Uint64())
	}
	if o.Seed == 0 {
		o.Seed = rand.Uint64() | 1
	}
	if o.Dial == nil {
		o.Dial = func(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	return o
}

// RetryClient wraps Client with reconnection and safe re-issue: every
// request gets an ID from a space that survives reconnects, each
// connection is bound to the same server-side dedup session, and
// connection failures trigger exponential backoff with jitter before
// the same ID is sent again. A request the server answered — success or
// failure — is never retried (except ErrOverloaded sheds, which the
// server guarantees did not execute); only disconnects and timeouts
// are, and dedup makes those re-issues exactly-once. When the budget
// runs out callers get an error matching doppel.ErrRetriesExhausted
// that also wraps the last underlying failure.
//
// It is safe for concurrent use.
type RetryClient struct {
	addr string
	opts RetryOptions

	mu     sync.Mutex
	c      *Client // current connection; nil when down
	nextID uint64  // 0 is reserved for the session handshake
	rng    *rand.Rand
	closed bool
}

// DialRetry returns a retrying client for addr. Connections are opened
// lazily, so DialRetry succeeds even while the server is down.
func DialRetry(addr string, opts RetryOptions) *RetryClient {
	opts = opts.withDefaults()
	return &RetryClient{
		addr:   addr,
		opts:   opts,
		nextID: 1,
		rng:    rand.New(rand.NewPCG(opts.Seed, 0)),
	}
}

// Session reports the dedup token this client binds its connections to.
func (rc *RetryClient) Session() string { return rc.opts.Session }

// conn returns a healthy connection, dialing and performing the session
// handshake as needed.
func (rc *RetryClient) conn() (*Client, error) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if rc.closed {
		return nil, ErrClientClosed
	}
	if rc.c != nil && rc.c.Err() == nil {
		return rc.c, nil
	}
	if rc.c != nil {
		_ = rc.c.Close()
		rc.c = nil
	}
	nc, err := rc.opts.Dial(rc.addr)
	if err != nil {
		return nil, err
	}
	c := NewClient(nc, rc.opts.Options)
	call := c.GoID(0, sessionProc, []Arg{Str(rc.opts.Session)}, make(chan *Call, 1))
	var expired <-chan time.Time
	if t := rc.opts.RequestTimeout; t > 0 {
		tm := time.NewTimer(t)
		defer tm.Stop()
		expired = tm.C
	}
	select {
	case <-call.Done:
		if call.Err != nil {
			_ = c.Close()
			return nil, call.Err
		}
	case <-expired:
		_ = c.Close()
		return nil, errAttemptTimeout
	}
	rc.c = c
	return c, nil
}

// invalidate drops c as the current connection if it still is.
func (rc *RetryClient) invalidate(c *Client) {
	rc.mu.Lock()
	if rc.c == c {
		rc.c = nil
	}
	rc.mu.Unlock()
	_ = c.Close()
}

// reserveID hands out the next request ID; the space is shared across
// reconnects so the server's dedup session can recognize re-issues.
func (rc *RetryClient) reserveID() uint64 {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	id := rc.nextID
	rc.nextID++
	return id
}

// jitteredBackoff returns attempt's wait: exponential from BackoffBase,
// capped at BackoffMax, with the upper half randomized so retrying
// clients desynchronize.
func (rc *RetryClient) jitteredBackoff(attempt int) time.Duration {
	d := rc.opts.BackoffBase << (attempt - 1)
	if d <= 0 || d > rc.opts.BackoffMax {
		d = rc.opts.BackoffMax
	}
	rc.mu.Lock()
	j := time.Duration(rc.rng.Int64N(int64(d)/2 + 1))
	rc.mu.Unlock()
	return d/2 + j
}

// Call invokes the named procedure, reconnecting and re-issuing across
// connection failures until ctx ends or the attempt budget runs out.
// Server-answered failures return immediately and are never retried;
// see the type comment for the exactly-once contract.
func (rc *RetryClient) Call(ctx context.Context, name string, args ...Arg) (Arg, error) {
	id := rc.reserveID()
	var lastErr error
	for attempt := 1; attempt <= rc.opts.MaxAttempts; attempt++ {
		if attempt > 1 {
			if err := sleepCtx(ctx, rc.jitteredBackoff(attempt-1)); err != nil {
				return Nil, err
			}
		}
		if err := ctx.Err(); err != nil {
			return Nil, err
		}
		c, err := rc.conn()
		if err != nil {
			if errors.Is(err, ErrClientClosed) {
				return Nil, err
			}
			lastErr = err
			continue
		}
		call := c.GoID(id, name, args, make(chan *Call, 1))
		var expired <-chan time.Time
		if t := rc.opts.RequestTimeout; t > 0 {
			tm := time.NewTimer(t)
			expired = tm.C
			defer tm.Stop()
		}
		select {
		case <-call.Done:
			switch {
			case call.Err == nil:
				return call.Reply, nil
			case errors.Is(call.Err, doppel.ErrOverloaded):
				// Shed before execution; back off and try again.
				lastErr = call.Err
			case call.Disconnect:
				lastErr = call.Err
				rc.invalidate(c)
			default:
				return Nil, call.Err // the server answered; retrying could double-execute
			}
		case <-expired:
			// The connection may be wedged (or the response lost mid-way);
			// drop it and re-issue. Session dedup keeps this exactly-once.
			lastErr = errAttemptTimeout
			rc.invalidate(c)
		case <-ctx.Done():
			return Nil, ctx.Err()
		}
	}
	return Nil, fmt.Errorf("server: %w after %d attempts: %w",
		doppel.ErrRetriesExhausted, rc.opts.MaxAttempts, lastErr)
}

// Close tears down the current connection and fails future calls.
func (rc *RetryClient) Close() error {
	rc.mu.Lock()
	rc.closed = true
	c := rc.c
	rc.c = nil
	rc.mu.Unlock()
	if c != nil {
		return c.Close()
	}
	return nil
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
