package server

import "sync"

// sessionProc is the reserved procedure name a client sends to bind its
// connection to a dedup session. The one byte-string argument is the
// session token; the server answers with an empty OK. Tokens name a
// retrying client's identity across reconnects, so a re-issued request
// ID returns the original response instead of executing twice.
const sessionProc = ".session"

// sessionResultCap bounds the responses one session caches; the oldest
// request IDs are evicted first. A retrying client re-issues only its
// recent window, so the cap just needs to exceed the client's pipeline
// depth times its retry horizon.
const sessionResultCap = 4096

// sessionCap bounds how many sessions the server tracks at once; the
// oldest session is evicted when a new token arrives at the cap.
const sessionCap = 1024

// pendingResult is one request ID's slot in a session: nil resp while
// the original execution is in flight, the encoded response afterward.
// Duplicates arriving mid-flight park a sender and are notified on
// completion.
type pendingResult struct {
	resp    []byte
	waiters []func([]byte)
}

// session deduplicates request IDs for one client identity. All methods
// are safe for concurrent use (reconnect races can briefly give two
// connections the same session).
type session struct {
	mu      sync.Mutex
	results map[uint64]*pendingResult
	order   []uint64 // FIFO of tracked IDs for eviction
}

func newSession() *session {
	return &session{results: map[uint64]*pendingResult{}}
}

// claim registers interest in request id from a sender. dup reports
// whether the ID was already seen: with a non-nil resp the original
// already completed (send resp, do not execute); with a nil resp the
// original is still executing and send has been parked for completion.
// A false dup means the caller owns the execution and must complete or
// abandon the ID.
func (s *session) claim(id uint64, send func([]byte)) (resp []byte, dup bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if p, ok := s.results[id]; ok {
		if p.resp != nil {
			return p.resp, true
		}
		p.waiters = append(p.waiters, send)
		return nil, true
	}
	if len(s.order) >= sessionResultCap {
		oldest := s.order[0]
		s.order = s.order[1:]
		delete(s.results, oldest)
	}
	s.results[id] = &pendingResult{waiters: []func([]byte){send}}
	s.order = append(s.order, id)
	return nil, false
}

// complete records id's response and delivers it to every parked
// sender, including the original connection's.
func (s *session) complete(id uint64, resp []byte) {
	s.mu.Lock()
	p := s.results[id]
	var waiters []func([]byte)
	if p != nil {
		p.resp = resp
		waiters, p.waiters = p.waiters, nil
	}
	s.mu.Unlock()
	for _, send := range waiters {
		send(resp)
	}
}

// abandon forgets an ID that was claimed but never executed (a shed
// request): the client's retry must re-execute, not replay a cached
// rejection. Parked duplicate senders are dropped; their clients time
// out and retry.
func (s *session) abandon(id uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if p, ok := s.results[id]; ok && p.resp == nil {
		delete(s.results, id)
		for i, v := range s.order {
			if v == id {
				s.order = append(s.order[:i], s.order[i+1:]...)
				break
			}
		}
	}
}
