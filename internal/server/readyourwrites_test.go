package server

// Read-your-writes across replication, end to end over the wire: a
// client writes on the primary's server, takes a position token from
// the "position" direct handler, presents it to a follower server's
// "waitpos", and must then observe its own write on the follower. This
// is the wiring doppel-server exposes with -wal / -follow.

import (
	"context"
	"testing"
	"time"

	"doppel"
)

func TestReadYourWritesAcrossReplica(t *testing.T) {
	dir := t.TempDir()
	// SyncCommit: the token is the durable log position, so it covers an
	// acknowledged write only if acknowledgement waits for durability.
	db, err := doppel.OpenErr(doppel.Options{Workers: 2, RedoLog: dir, SyncCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	primary := New(db)
	primary.Register("put", func(tx doppel.Tx, args []Arg) (Arg, error) {
		n, err := args[1].Int64()
		if err != nil {
			return Nil, err
		}
		return Nil, tx.PutInt(args[0].String(), n)
	})
	primary.RegisterDirect("position", func(args []Arg) (Arg, error) {
		return Str(db.LogPosition().String()), nil
	})
	paddr, err := primary.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()

	rep, err := doppel.OpenFollower(dir, doppel.FollowerOptions{PollInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()
	fsrv := New(rep)
	fsrv.Register("get", func(tx doppel.Tx, args []Arg) (Arg, error) {
		n, err := tx.GetInt(args[0].String())
		return Int(n), err
	})
	fsrv.RegisterDirect("waitpos", func(args []Arg) (Arg, error) {
		pos, err := doppel.ParseLogPosition(args[0].String())
		if err != nil {
			return Nil, err
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := rep.WaitPosition(ctx, pos); err != nil {
			return Nil, err
		}
		return Str(rep.Position().String()), nil
	})
	faddr, err := fsrv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer fsrv.Close()

	pc, err := Dial(paddr)
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	fc, err := Dial(faddr)
	if err != nil {
		t.Fatal(err)
	}
	defer fc.Close()

	for i := int64(1); i <= 10; i++ {
		if _, err := pc.Call("put", Str("rw"), Int(i)); err != nil {
			t.Fatal(err)
		}
		token, err := pc.Call("position")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fc.Call("waitpos", token); err != nil {
			t.Fatalf("waitpos(%s): %v", token.String(), err)
		}
		got, err := fc.Call("get", Str("rw"))
		if err != nil {
			t.Fatal(err)
		}
		if n, _ := got.Int64(); n < i {
			t.Fatalf("round %d: follower served %d after waitpos granted the token — stale read", i, n)
		}
	}
	// A malformed token is rejected at the wire, not silently waited on.
	if _, err := fc.Call("waitpos", Str("not-a-position")); err == nil {
		t.Fatal("malformed position token accepted")
	}
}
