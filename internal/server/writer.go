package server

import (
	"bufio"
	"io"
	"net"
	"sync"
	"time"
)

// flushThreshold is the buffered-byte level at which the writer flushes
// mid-batch instead of accumulating further.
const flushThreshold = 256 << 10

// maxPendingBytes bounds the bytes queued behind one connection's
// flusher. A peer that stops draining its socket hits this cap and is
// dropped; until then sends never block, which is what lets database
// workers complete requests without ever stalling on the network.
const maxPendingBytes = 32 << 20

// frameWriter batches frame writes through a single flusher goroutine:
// senders enqueue encoded payloads without blocking, the goroutine
// writes them through a buffered writer and flushes when the queue goes
// idle (or after waiting flushEvery for stragglers, when set). Both
// ends of a connection use one — the server for out-of-order responses,
// the client for pipelined requests — so a burst of messages costs one
// syscall, not one per message.
//
// After the underlying writer errors, the goroutine keeps draining the
// queue without writing, so late senders stay cheap no-ops.
type frameWriter struct {
	mu      sync.Mutex
	cond    *sync.Cond
	queue   [][]byte
	pending int // bytes in queue
	closed  bool

	done chan struct{}
	cfg  frameWriterConfig
}

// frameWriterConfig is the optional wiring around a frameWriter's loop.
type frameWriterConfig struct {
	flushEvery time.Duration
	// conn and writeTimeout together arm a write deadline before each
	// batch, so a peer that stops draining its socket breaks the writer
	// instead of wedging the flusher goroutine forever.
	conn         net.Conn
	writeTimeout time.Duration
	// onBroken runs once, from the flusher goroutine, when the writer
	// first fails. Servers use it to close the connection so the read
	// loop notices the peer is effectively gone.
	onBroken func()
}

func startFrameWriter(w io.Writer, flushEvery time.Duration) *frameWriter {
	return startFrameWriterCfg(w, frameWriterConfig{flushEvery: flushEvery})
}

func startFrameWriterCfg(w io.Writer, cfg frameWriterConfig) *frameWriter {
	fw := &frameWriter{done: make(chan struct{}), cfg: cfg}
	fw.cond = sync.NewCond(&fw.mu)
	go fw.loop(w, cfg.flushEvery)
	return fw
}

// armDeadline pushes the connection's write deadline ahead of a batch
// write or flush.
func (fw *frameWriter) armDeadline() {
	if fw.cfg.conn != nil && fw.cfg.writeTimeout > 0 {
		_ = fw.cfg.conn.SetWriteDeadline(time.Now().Add(fw.cfg.writeTimeout))
	}
}

// send enqueues one encoded payload without blocking. False means the
// queue is over its byte cap (the peer has stopped draining the
// connection) or the writer is closed; the caller should drop the
// connection.
func (fw *frameWriter) send(payload []byte) bool {
	fw.mu.Lock()
	if fw.closed || fw.pending > maxPendingBytes {
		fw.mu.Unlock()
		return false
	}
	fw.queue = append(fw.queue, payload)
	fw.pending += len(payload)
	fw.mu.Unlock()
	fw.cond.Signal()
	return true
}

// close stops the flusher after the queue drains. All sends must have
// completed; callers typically sequence this with a WaitGroup.
func (fw *frameWriter) close() {
	fw.mu.Lock()
	fw.closed = true
	fw.mu.Unlock()
	fw.cond.Signal()
	<-fw.done
}

func (fw *frameWriter) loop(w io.Writer, flushEvery time.Duration) {
	defer close(fw.done)
	bw := bufio.NewWriterSize(w, 64<<10)
	broken := false
	var batch [][]byte
	for {
		fw.mu.Lock()
		for len(fw.queue) == 0 && !fw.closed {
			fw.cond.Wait()
		}
		if len(fw.queue) == 0 {
			fw.mu.Unlock() // closed and drained
			if !broken {
				fw.armDeadline()
				_ = bw.Flush()
			}
			return
		}
		batch, fw.queue = fw.queue, batch[:0]
		fw.mu.Unlock()

		written := 0
		fw.armDeadline()
		for _, p := range batch {
			if !broken && writeFrame(bw, p) != nil {
				broken = true
				if fw.cfg.onBroken != nil {
					fw.cfg.onBroken()
					fw.cfg.onBroken = nil
				}
			}
			written += len(p)
		}
		fw.mu.Lock()
		fw.pending -= written
		more := len(fw.queue) > 0
		fw.mu.Unlock()
		if broken {
			continue // keep draining so senders stay no-ops
		}
		if more && bw.Buffered() < flushThreshold {
			continue // batch the next round into the same flush
		}
		if !more && flushEvery > 0 {
			// Idle: wait briefly for stragglers — the extra latency buys
			// larger batches under sustained pipelined load.
			time.Sleep(flushEvery)
			fw.mu.Lock()
			more = len(fw.queue) > 0
			fw.mu.Unlock()
			if more && bw.Buffered() < flushThreshold {
				continue
			}
		}
		fw.armDeadline()
		if bw.Flush() != nil {
			broken = true
			if fw.cfg.onBroken != nil {
				fw.cfg.onBroken()
				fw.cfg.onBroken = nil
			}
		}
	}
}
