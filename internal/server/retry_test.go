package server

import (
	"context"
	"errors"
	"math/rand/v2"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"doppel"
	"doppel/internal/fault"
)

// retryHarness runs a server and returns its address plus a teardown
// for direct-dial tests against the retry layer.
func retryHarness(t *testing.T, opts Options) (*Server, string, *doppel.DB) {
	t.Helper()
	db := doppel.Open(doppel.Options{Workers: 2})
	s := NewWithOptions(db, opts)
	s.Register("incr", func(tx doppel.Tx, args []Arg) (Arg, error) {
		n, err := args[1].Int64()
		if err != nil {
			return Nil, err
		}
		return Nil, tx.Add(args[0].String(), n)
	})
	s.Register("get", func(tx doppel.Tx, args []Arg) (Arg, error) {
		n, err := tx.GetInt(args[0].String())
		if err != nil {
			return Nil, err
		}
		return Int(n), nil
	})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		s.Close()
		db.Close()
	})
	return s, addr, db
}

func TestRetryClientPlainCalls(t *testing.T) {
	_, addr, _ := retryHarness(t, Options{})
	rc := DialRetry(addr, RetryOptions{Seed: 7})
	defer rc.Close()
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		if _, err := rc.Call(ctx, "incr", Str("k"), Int(1)); err != nil {
			t.Fatal(err)
		}
	}
	got, err := rc.Call(ctx, "get", Str("k"))
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := got.Int64(); n != 10 {
		t.Fatalf("counter = %d, want 10", n)
	}
}

// TestRetryClientExactlyOnceAcrossCuts drives increments through a
// fault network that severs connections mid-frame; session dedup must
// keep each increment exactly-once despite every re-issue.
func TestRetryClientExactlyOnceAcrossCuts(t *testing.T) {
	_, addr, _ := retryHarness(t, Options{})
	net99 := fault.NewNetwork(99)
	net99.SetScript(func(i uint64, rng *rand.Rand) fault.Script {
		// Every connection dies after a small, varying byte budget, so
		// cuts land before, inside, and after requests and responses.
		return fault.Script{CutAfterBytes: 40 + int64(rng.IntN(120))}
	})
	rc := DialRetry(addr, RetryOptions{
		RequestTimeout: 500 * time.Millisecond,
		MaxAttempts:    20,
		BackoffBase:    time.Millisecond,
		BackoffMax:     10 * time.Millisecond,
		Seed:           5,
		Dial: func(addr string) (net.Conn, error) {
			return net99.Dial("tcp", addr)
		},
	})
	defer rc.Close()
	ctx := context.Background()
	const ops = 30
	for i := 0; i < ops; i++ {
		if _, err := rc.Call(ctx, "incr", Str("k"), Int(1)); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	// Read the final count over a clean connection.
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	got, err := c.Call("get", Str("k"))
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := got.Int64(); n != ops {
		t.Fatalf("counter = %d, want %d (lost or doubled increments)", n, ops)
	}
	if s := net99.Stats(); s.Cut == 0 {
		t.Fatal("fault network never cut a connection; test exercised nothing")
	}
}

func TestRetryClientExhaustsAgainstDeadServer(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := lis.Addr().String()
	lis.Close() // nothing listens here anymore
	rc := DialRetry(addr, RetryOptions{
		MaxAttempts: 3,
		BackoffBase: time.Millisecond,
		BackoffMax:  2 * time.Millisecond,
		Seed:        3,
	})
	defer rc.Close()
	_, err = rc.Call(context.Background(), "get", Str("k"))
	if !errors.Is(err, doppel.ErrRetriesExhausted) {
		t.Fatalf("err = %v, want ErrRetriesExhausted", err)
	}
}

func TestRetryClientDoesNotRetryServerAnsweredErrors(t *testing.T) {
	s, addr, _ := retryHarness(t, Options{})
	var calls atomic.Int64
	s.Register("fail", func(tx doppel.Tx, args []Arg) (Arg, error) {
		calls.Add(1)
		return Nil, errors.New("boom")
	})
	rc := DialRetry(addr, RetryOptions{Seed: 11, BackoffBase: time.Millisecond})
	defer rc.Close()
	_, err := rc.Call(context.Background(), "fail")
	if err == nil || errors.Is(err, doppel.ErrRetriesExhausted) {
		t.Fatalf("err = %v, want the handler error unretried", err)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("handler ran %d times, want 1", n)
	}
}

func TestServerShedsWithErrOverloaded(t *testing.T) {
	db := doppel.Open(doppel.Options{Workers: 1})
	defer db.Close()
	s := NewWithOptions(db, Options{MaxServerInFlight: 2})
	release := make(chan struct{})
	s.Register("block", func(tx doppel.Tx, args []Arg) (Arg, error) {
		<-release
		return Nil, nil
	})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Fill the budget, then overflow it. All three ride one connection,
	// and the read loop acquires budget tokens in frame order, so the
	// third is deterministically the one shed.
	first := c.Go("block", nil, nil)
	second := c.Go("block", nil, nil)
	third := <-c.Go("block", nil, nil).Done
	if !errors.Is(third.Err, doppel.ErrOverloaded) {
		t.Fatalf("shed err = %v, want ErrOverloaded", third.Err)
	}
	if s.Sheds() == 0 {
		t.Fatal("Sheds() = 0 after a shed")
	}
	close(release)
	for _, call := range []*Call{first, second} {
		if got := <-call.Done; got.Err != nil {
			t.Fatalf("admitted call failed: %v", got.Err)
		}
	}
}

func TestDrainFinishesInFlight(t *testing.T) {
	db := doppel.Open(doppel.Options{Workers: 2})
	defer db.Close()
	s := New(db)
	s.Register("slow-incr", func(tx doppel.Tx, args []Arg) (Arg, error) {
		time.Sleep(50 * time.Millisecond)
		return Nil, tx.Add("k", 1)
	})
	s.Register("get", func(tx doppel.Tx, args []Arg) (Arg, error) {
		n, err := tx.GetInt("k")
		return Int(n), err
	})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	call := c.Go("slow-incr", nil, nil)
	time.Sleep(10 * time.Millisecond) // let the request reach the server
	s.Drain(5 * time.Second)
	got := <-call.Done
	if got.Err != nil {
		t.Fatalf("in-flight call lost its response across Drain: %v", got.Err)
	}
	// The drained server no longer accepts.
	if _, err := net.DialTimeout("tcp", addr, 200*time.Millisecond); err == nil {
		t.Fatal("drained server still accepting connections")
	}
}

func TestReadTimeoutDropsStalledConn(t *testing.T) {
	db := doppel.Open(doppel.Options{Workers: 1})
	defer db.Close()
	s := NewWithOptions(db, Options{ReadTimeout: 100 * time.Millisecond})
	s.Register("echo", func(tx doppel.Tx, args []Arg) (Arg, error) { return args[0], nil })
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// A raw conn that sends nothing must be disconnected.
	stalled, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer stalled.Close()
	stalled.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := stalled.Read(make([]byte, 1)); err == nil {
		t.Fatal("stalled conn not disconnected")
	}

	// Meanwhile an active client keeps working past the timeout window.
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 4; i++ {
		if _, err := c.Call("echo", Int(int64(i))); err != nil {
			t.Fatalf("active conn died: %v", err)
		}
		time.Sleep(40 * time.Millisecond)
	}
}
