package server

// Connection-failure isolation tests: each way one connection can go
// bad — dying mid-frame, losing its response half-written, announcing
// an oversized frame — must cost exactly that connection. The server
// keeps serving everyone else, and overload keeps latency bounded by
// shedding instead of queueing.

import (
	"encoding/binary"
	"errors"
	"math/rand/v2"
	"net"
	"sort"
	"sync"
	"testing"
	"time"

	"doppel"
	"doppel/internal/fault"
)

// assertStillServes proves the server is healthy by completing a call
// on a fresh connection.
func assertStillServes(t *testing.T, addr string) {
	t.Helper()
	c, err := Dial(addr)
	if err != nil {
		t.Fatalf("server stopped accepting: %v", err)
	}
	defer c.Close()
	got, err := c.Call("echo", Int(42))
	if err != nil {
		t.Fatalf("server stopped serving: %v", err)
	}
	if n, _ := got.Int64(); n != 42 {
		t.Fatalf("echo = %d, want 42", n)
	}
}

func connFailHarness(t *testing.T, opts Options) string {
	t.Helper()
	db := doppel.Open(doppel.Options{Workers: 2})
	s := NewWithOptions(db, opts)
	s.Register("echo", func(tx doppel.Tx, args []Arg) (Arg, error) { return args[0], nil })
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		s.Close()
		db.Close()
	})
	return addr
}

// TestDisconnectMidFrameDropsOnlyThatConn: a client that promises a
// 100-byte frame, delivers 10 bytes and vanishes must not take anyone
// else down.
func TestDisconnectMidFrameDropsOnlyThatConn(t *testing.T) {
	addr := connFailHarness(t, Options{})
	survivor, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer survivor.Close()

	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 100)
	if _, err := raw.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	if _, err := raw.Write(make([]byte, 10)); err != nil {
		t.Fatal(err)
	}
	raw.Close()

	if _, err := survivor.Call("echo", Int(7)); err != nil {
		t.Fatalf("pre-existing conn broken by another conn's death: %v", err)
	}
	assertStillServes(t, addr)
}

// TestHalfWrittenResponseDropsOnlyThatConn severs the server's response
// write mid-frame (via a scripted byte budget on the accepted conn) and
// requires the rest of the fleet to keep serving.
func TestHalfWrittenResponseDropsOnlyThatConn(t *testing.T) {
	db := doppel.Open(doppel.Options{Workers: 2})
	defer db.Close()
	s := New(db)
	s.Register("echo", func(tx doppel.Tx, args []Arg) (Arg, error) { return args[0], nil })
	netF := fault.NewNetwork(17)
	netF.SetScript(func(i uint64, rng *rand.Rand) fault.Script {
		if i == 0 {
			// Enough budget for the inbound request, cut during the
			// chunked outbound response.
			return fault.Script{CutAfterBytes: 60, WriteChunk: 5}
		}
		return fault.Script{}
	})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s.ServeListener(netF.Listener(lis))
	defer s.Close()
	addr := lis.Addr().String()

	victim, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer victim.Close()
	// A large echo forces the response across the cut boundary; the call
	// must fail as a disconnect, not hang.
	big := make([]byte, 128)
	call := victim.Go("echo", []Arg{Bytes(big)}, nil)
	select {
	case done := <-call.Done:
		if done.Err == nil {
			t.Fatal("call succeeded across a severed response write")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("half-written response left the client hanging")
	}
	if netF.Stats().Cut == 0 {
		t.Fatal("script never cut the connection; test exercised nothing")
	}
	assertStillServes(t, addr)
}

// TestOversizedFrameAfterValidTrafficDropsConn: a connection that has
// served real requests and then announces a frame over MaxFrame is cut
// off at the header — the payload is never allocated — and everyone
// else keeps serving.
func TestOversizedFrameAfterValidTrafficDropsConn(t *testing.T) {
	addr := connFailHarness(t, Options{MaxFrame: 4096})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(conn, Options{MaxFrame: 4096})
	defer c.Close()
	if _, err := c.Call("echo", Int(1)); err != nil {
		t.Fatal(err)
	}
	// Write the rogue header directly under the client's feet.
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 1<<30)
	if _, err := conn.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	// The server must hang up on this connection.
	errc := make(chan error, 1)
	go func() {
		_, err := c.Call("echo", Int(2))
		errc <- err
	}()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("call succeeded after an oversized frame announcement")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("oversized frame did not get the connection dropped")
	}
	assertStillServes(t, addr)
}

// TestOverloadShedsKeepLatencyBounded floods a server whose in-flight
// budget is tiny with far more concurrent requests than it will admit:
// the overflow must be shed with ErrOverloaded (fast), and the admitted
// requests' p99 latency must stay near the handler's own runtime — the
// bounded-queue behavior load shedding buys.
func TestOverloadShedsKeepLatencyBounded(t *testing.T) {
	db := doppel.Open(doppel.Options{Workers: 2})
	defer db.Close()
	s := NewWithOptions(db, Options{MaxServerInFlight: 4})
	s.Register("slow", func(tx doppel.Tx, args []Arg) (Arg, error) {
		time.Sleep(10 * time.Millisecond)
		return Nil, nil
	})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const conns = 8
	const perConn = 25
	var mu sync.Mutex
	var served []time.Duration
	var sheds, other int
	var wg sync.WaitGroup
	for i := 0; i < conns; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for j := 0; j < perConn; j++ {
				start := time.Now()
				_, err := c.Call("slow")
				d := time.Since(start)
				mu.Lock()
				switch {
				case err == nil:
					served = append(served, d)
				case errors.Is(err, doppel.ErrOverloaded):
					sheds++
				default:
					other++
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if other != 0 {
		t.Fatalf("%d calls failed with something other than ErrOverloaded", other)
	}
	if sheds == 0 {
		t.Fatal("no calls shed; the flood never exceeded the budget")
	}
	if len(served) == 0 {
		t.Fatal("every call shed; the server did no work at all")
	}
	sort.Slice(served, func(i, j int) bool { return served[i] < served[j] })
	p99 := served[len(served)*99/100]
	// Admitted work waits behind at most MaxServerInFlight slow calls;
	// the bound is generous for -race CI boxes but far below what an
	// unbounded queue of conns*perConn sleeps would build up.
	if p99 > 500*time.Millisecond {
		t.Fatalf("served p99 = %v; shedding failed to bound latency", p99)
	}
	t.Logf("served=%d shed=%d p99=%v", len(served), sheds, p99)
}
