package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strconv"

	"doppel"
)

// The wire protocol is a stream of length-prefixed frames in each
// direction. Every frame is a 4-byte big-endian payload length followed
// by the payload; payloads use varint-encoded fields (the same style as
// internal/store's codec) so small requests stay small.
//
// Request payload:
//
//	uvarint  request ID (echoed in the response; unique per connection)
//	uvarint  procedure name length, then the name bytes
//	uvarint  argument count
//	args     each: 1 tag byte, then a tag-specific payload
//
// Response payload:
//
//	uvarint  request ID
//	byte     status (statusOK, statusErr, statusUnknownProc)
//	body     statusOK: one typed result arg; otherwise an error message
//	         (uvarint length + bytes)
//
// Because requests carry IDs, responses may be written in any order: a
// client keeps many requests in flight on one connection and matches
// responses by ID.

// DefaultMaxFrame bounds a frame payload unless Options override it. A
// peer announcing a larger frame is rejected before any allocation.
const DefaultMaxFrame = 1 << 20

// maxArgs bounds the argument count of one request.
const maxArgs = 1 << 16

// Response status codes. The typed error statuses carry a doppel
// sentinel across the wire: the body is still the full error message,
// but the client rebuilds an error that errors.Is-matches the sentinel,
// so remote callers branch on ErrClosed and friends exactly as embedded
// callers do.
const (
	statusOK                  = 0 // body is the typed result
	statusErr                 = 1 // body is the handler's error message
	statusUnknownProc         = 2 // body is the unregistered procedure name
	statusErrClosed           = 3 // body wraps doppel.ErrClosed
	statusErrRequiresRedoLog  = 4 // body wraps doppel.ErrRequiresRedoLog
	statusErrLogExists        = 5 // body wraps doppel.ErrLogExists
	statusErrReadOnly         = 6 // body wraps doppel.ErrReadOnly
	statusErrOverloaded       = 7 // body wraps doppel.ErrOverloaded
	statusErrRetriesExhausted = 8 // body wraps doppel.ErrRetriesExhausted
)

// statusForError picks the response status for a handler failure,
// promoting recognized sentinels to their typed codes.
func statusForError(err error) byte {
	switch {
	case errors.Is(err, doppel.ErrClosed):
		return statusErrClosed
	case errors.Is(err, doppel.ErrRequiresRedoLog):
		return statusErrRequiresRedoLog
	case errors.Is(err, doppel.ErrLogExists):
		return statusErrLogExists
	case errors.Is(err, doppel.ErrReadOnly):
		return statusErrReadOnly
	case errors.Is(err, doppel.ErrOverloaded):
		return statusErrOverloaded
	case errors.Is(err, doppel.ErrRetriesExhausted):
		return statusErrRetriesExhausted
	default:
		return statusErr
	}
}

// sentinelFor returns the doppel sentinel a typed status carries, nil
// for the untyped statuses.
func sentinelFor(status byte) error {
	switch status {
	case statusErrClosed:
		return doppel.ErrClosed
	case statusErrRequiresRedoLog:
		return doppel.ErrRequiresRedoLog
	case statusErrLogExists:
		return doppel.ErrLogExists
	case statusErrReadOnly:
		return doppel.ErrReadOnly
	case statusErrOverloaded:
		return doppel.ErrOverloaded
	case statusErrRetriesExhausted:
		return doppel.ErrRetriesExhausted
	default:
		return nil
	}
}

// remoteError is a per-call failure that arrived with a typed status:
// it reports the server's message and unwraps to the sentinel.
type remoteError struct {
	sentinel error
	msg      string
}

func (e *remoteError) Error() string { return e.msg }
func (e *remoteError) Unwrap() error { return e.sentinel }

// Argument tag bytes.
const (
	tagNil   = 0
	tagInt   = 1
	tagBytes = 2
)

// ArgKind identifies the type of an Arg.
type ArgKind uint8

// Argument kinds.
const (
	ArgNil   ArgKind = ArgKind(tagNil)   // absent value (e.g. a void result)
	ArgInt   ArgKind = ArgKind(tagInt)   // int64
	ArgBytes ArgKind = ArgKind(tagBytes) // byte string (also used for text)
)

// Arg is one typed argument or result value on the wire.
type Arg struct {
	kind ArgKind
	n    int64
	b    []byte
}

// Nil is the absent Arg (a void result).
var Nil = Arg{}

// Int returns an integer Arg.
func Int(n int64) Arg { return Arg{kind: ArgInt, n: n} }

// Str returns a byte-string Arg holding s.
func Str(s string) Arg { return Arg{kind: ArgBytes, b: []byte(s)} }

// Bytes returns a byte-string Arg holding b. The caller must not modify
// b afterwards.
func Bytes(b []byte) Arg { return Arg{kind: ArgBytes, b: b} }

// Kind reports the Arg's type.
func (a Arg) Kind() ArgKind { return a.kind }

// IsNil reports whether the Arg is absent.
func (a Arg) IsNil() bool { return a.kind == ArgNil }

// Int64 returns the Arg as an int64. Byte-string args are parsed as
// decimal, so text-oriented clients (the CLI) interoperate with integer
// procedures.
func (a Arg) Int64() (int64, error) {
	switch a.kind {
	case ArgInt:
		return a.n, nil
	case ArgBytes:
		return strconv.ParseInt(string(a.b), 10, 64)
	default:
		return 0, errors.New("server: nil argument where integer expected")
	}
}

// Bytes returns the Arg's byte-string payload (nil for other kinds).
func (a Arg) Bytes() []byte { return a.b }

// String renders the Arg as text: integers in decimal, byte strings
// verbatim, nil as "".
func (a Arg) String() string {
	switch a.kind {
	case ArgInt:
		return strconv.FormatInt(a.n, 10)
	case ArgBytes:
		return string(a.b)
	default:
		return ""
	}
}

// UnknownProcedureError reports a call to a procedure the server has no
// handler for. Detect it with errors.As; the connection stays usable.
type UnknownProcedureError struct {
	Name string
}

func (e *UnknownProcedureError) Error() string {
	return "server: unknown procedure " + strconv.Quote(e.Name)
}

// FrameSizeError reports a frame whose announced payload length exceeds
// the connection's limit. The frame is rejected before any allocation
// and the connection is closed, since the stream can no longer be
// trusted.
type FrameSizeError struct {
	Size  int
	Limit int
}

func (e *FrameSizeError) Error() string {
	return fmt.Sprintf("server: frame of %d bytes exceeds limit %d", e.Size, e.Limit)
}

// --- framing ---

func writeFrame(w io.Writer, payload []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func readFrame(r io.Reader, maxFrame int) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if int64(n) > int64(maxFrame) {
		return nil, &FrameSizeError{Size: int(n), Limit: maxFrame}
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// --- payload encoding ---

func appendArg(buf []byte, a Arg) []byte {
	switch a.kind {
	case ArgInt:
		buf = append(buf, tagInt)
		return binary.AppendVarint(buf, a.n)
	case ArgBytes:
		buf = append(buf, tagBytes)
		buf = binary.AppendUvarint(buf, uint64(len(a.b)))
		return append(buf, a.b...)
	default:
		return append(buf, tagNil)
	}
}

func readArg(buf []byte) (Arg, []byte, error) {
	if len(buf) < 1 {
		return Nil, nil, errors.New("server: truncated argument tag")
	}
	tag := buf[0]
	buf = buf[1:]
	switch tag {
	case tagNil:
		return Nil, buf, nil
	case tagInt:
		n, w := binary.Varint(buf)
		if w <= 0 {
			return Nil, nil, errors.New("server: bad integer argument")
		}
		return Int(n), buf[w:], nil
	case tagBytes:
		l, w := binary.Uvarint(buf)
		if w <= 0 || l > uint64(len(buf)-w) {
			return Nil, nil, errors.New("server: truncated byte-string argument")
		}
		buf = buf[w:]
		b := make([]byte, l)
		copy(b, buf[:l])
		return Bytes(b), buf[l:], nil
	default:
		return Nil, nil, fmt.Errorf("server: unknown argument tag %d", tag)
	}
}

func encodeRequest(id uint64, name string, args []Arg) []byte {
	buf := binary.AppendUvarint(nil, id)
	buf = binary.AppendUvarint(buf, uint64(len(name)))
	buf = append(buf, name...)
	buf = binary.AppendUvarint(buf, uint64(len(args)))
	for _, a := range args {
		buf = appendArg(buf, a)
	}
	return buf
}

func decodeRequest(buf []byte) (id uint64, name string, args []Arg, err error) {
	id, w := binary.Uvarint(buf)
	if w <= 0 {
		return 0, "", nil, errors.New("server: truncated request ID")
	}
	buf = buf[w:]
	nl, w := binary.Uvarint(buf)
	if w <= 0 || nl > uint64(len(buf)-w) {
		return 0, "", nil, errors.New("server: truncated procedure name")
	}
	buf = buf[w:]
	name = string(buf[:nl])
	buf = buf[nl:]
	argc, w := binary.Uvarint(buf)
	if w <= 0 {
		return 0, "", nil, errors.New("server: truncated arg count")
	}
	if argc > maxArgs {
		return 0, "", nil, fmt.Errorf("server: %d args exceeds limit %d", argc, maxArgs)
	}
	buf = buf[w:]
	args = make([]Arg, 0, argc)
	for i := uint64(0); i < argc; i++ {
		var a Arg
		a, buf, err = readArg(buf)
		if err != nil {
			return 0, "", nil, err
		}
		args = append(args, a)
	}
	return id, name, args, nil
}

func encodeOKResponse(id uint64, result Arg) []byte {
	buf := binary.AppendUvarint(nil, id)
	buf = append(buf, statusOK)
	return appendArg(buf, result)
}

func encodeErrResponse(id uint64, status byte, msg string) []byte {
	buf := binary.AppendUvarint(nil, id)
	buf = append(buf, status)
	buf = binary.AppendUvarint(buf, uint64(len(msg)))
	return append(buf, msg...)
}

// decodeResponse splits per-call failures (callErr: the procedure
// failed, the connection stays usable) from wire corruption (wireErr:
// the stream can no longer be trusted).
func decodeResponse(buf []byte) (id uint64, result Arg, callErr, wireErr error) {
	id, w := binary.Uvarint(buf)
	if w <= 0 {
		return 0, Nil, nil, errors.New("server: truncated response ID")
	}
	buf = buf[w:]
	if len(buf) < 1 {
		return 0, Nil, nil, errors.New("server: truncated response status")
	}
	status := buf[0]
	buf = buf[1:]
	if status == statusOK {
		result, _, wireErr = readArg(buf)
		return id, result, nil, wireErr
	}
	ml, w := binary.Uvarint(buf)
	if w <= 0 || ml > uint64(len(buf)-w) {
		return 0, Nil, nil, errors.New("server: truncated error message")
	}
	msg := string(buf[w : w+int(ml)])
	switch status {
	case statusUnknownProc:
		return id, Nil, &UnknownProcedureError{Name: msg}, nil
	case statusErr:
		return id, Nil, errors.New(msg), nil
	default:
		if sentinel := sentinelFor(status); sentinel != nil {
			return id, Nil, &remoteError{sentinel: sentinel, msg: msg}, nil
		}
		return 0, Nil, nil, fmt.Errorf("server: unknown response status %d", status)
	}
}
