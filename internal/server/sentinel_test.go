package server

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"doppel"
)

// TestSentinelErrorsCrossTheWire: a handler failure that wraps a doppel
// sentinel must reach the client as an error that still errors.Is-matches
// the sentinel, with the server's full message preserved.
func TestSentinelErrorsCrossTheWire(t *testing.T) {
	srv, c := newServer(t)
	cases := []struct {
		name     string
		sentinel error
	}{
		{"fail-closed", doppel.ErrClosed},
		{"fail-requires-redo", doppel.ErrRequiresRedoLog},
		{"fail-log-exists", doppel.ErrLogExists},
		{"fail-read-only", doppel.ErrReadOnly},
	}
	for _, tc := range cases {
		sentinel := tc.sentinel
		srv.Register(tc.name, func(tx doppel.Tx, args []Arg) (Arg, error) {
			return Nil, fmt.Errorf("procedure refused: %w", sentinel)
		})
	}
	for _, tc := range cases {
		_, err := c.Call(tc.name)
		if err == nil {
			t.Fatalf("%s: expected error", tc.name)
		}
		if !errors.Is(err, tc.sentinel) {
			t.Errorf("%s: err = %v, does not match sentinel", tc.name, err)
		}
		if !strings.Contains(err.Error(), "procedure refused") {
			t.Errorf("%s: message %q lost server detail", tc.name, err)
		}
	}
	// The connection stays usable after typed failures.
	if _, err := c.Call("incr", Str("k"), Int(1)); err != nil {
		t.Fatal(err)
	}
}

// TestClosedBackendOverWire serves a closed database: every call must
// come back as an error matching doppel.ErrClosed on the client side —
// the remote branch-on-sentinel contract.
func TestClosedBackendOverWire(t *testing.T) {
	db := doppel.Open(doppel.Options{Workers: 1})
	db.Close()
	s := New(db)
	s.Register("ping", func(tx doppel.Tx, args []Arg) (Arg, error) {
		return Nil, nil
	})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Call("ping"); !errors.Is(err, doppel.ErrClosed) {
		t.Fatalf("call on closed backend = %v, want doppel.ErrClosed", err)
	}
}
