package engine

import (
	"errors"

	"doppel/internal/metrics"
	"doppel/internal/store"
)

// ErrAbort reports a concurrency-control conflict: the transaction had no
// effect and the caller should retry it later (the paper's workers retry
// "at a later time, chosen with exponential backoff").
var ErrAbort = errors.New("engine: transaction aborted due to conflict")

// ErrStash reports that a Doppel split phase could not execute the
// transaction because it accessed split data with a non-selected
// operation. The transaction had no effect; the engine has stashed it and
// will re-execute it in the next joined phase.
var ErrStash = errors.New("engine: transaction stashed until next joined phase")

// ErrFenced reports that the transaction touched a record carrying
// another transaction's commit fence: a cross-shard two-phase commit has
// validated that record and not yet applied, so interleaving with it
// would lose one of the writes. The transaction had no effect; the
// caller retries once the fence releases (microseconds in the common
// case).
var ErrFenced = errors.New("engine: record fenced by an in-flight cross-shard commit")

// ErrUnsupported reports an operation the engine cannot execute (for
// example, byte-string values in the Atomic engine).
var ErrUnsupported = errors.New("engine: operation not supported by this engine")

// Tx is the operation interface a transaction body programs against. All
// methods access exactly one record, per the paper's data model (§3);
// transactions compose multi-record logic from them. Blind update
// operations (Add, Max, ...) return only errors: splittable operations
// must return nothing (§4 guideline 2).
type Tx interface {
	// Get returns the record's current value (nil if absent).
	Get(key string) (*store.Value, error)
	// GetForUpdate is Get plus a write-intent hint: the 2PL engine takes
	// the write lock immediately (SELECT ... FOR UPDATE) so that
	// read-then-write transactions cannot deadlock on lock upgrades.
	// Other engines treat it exactly as Get.
	GetForUpdate(key string) (*store.Value, error)
	// GetInt returns an integer record's value, 0 if absent.
	GetInt(key string) (int64, error)
	// GetIntForUpdate is GetInt with the GetForUpdate hint.
	GetIntForUpdate(key string) (int64, error)
	// GetBytes returns a byte-string record's value, nil if absent.
	GetBytes(key string) ([]byte, error)
	// GetTuple returns an ordered-tuple record's value.
	GetTuple(key string) (store.Tuple, bool, error)
	// GetTopK returns the entries of a top-K record, best first.
	GetTopK(key string) ([]store.TopKEntry, error)

	// Put overwrites the record's value. Put does not commute and is
	// never splittable.
	Put(key string, v *store.Value) error
	// PutInt and PutBytes are Put conveniences.
	PutInt(key string, n int64) error
	PutBytes(key string, b []byte) error

	// Add adds n to an integer record (splittable).
	Add(key string, n int64) error
	// Max raises an integer record to at least n (splittable).
	Max(key string, n int64) error
	// Min lowers an integer record to at most n (splittable).
	Min(key string, n int64) error
	// Mult multiplies an integer record by n (splittable).
	Mult(key string, n int64) error
	// OPut performs an ordered put: the tuple with the highest (order,
	// core ID) wins (splittable). The engine supplies the core ID.
	OPut(key string, order store.Order, data []byte) error
	// TopKInsert inserts (order, coreID, data) into a top-K set record,
	// creating it with bound k if absent (splittable).
	TopKInsert(key string, order int64, data []byte, k int) error

	// WorkerID identifies the worker executing this transaction.
	WorkerID() int
}

// TxFunc is a transaction body. It may be re-executed after aborts or
// stashes, so it must be a pure function of the database state it reads.
// Returning a non-nil error that is not ErrAbort/ErrStash aborts the
// transaction permanently (user abort).
type TxFunc func(tx Tx) error

// Outcome reports what happened to one Attempt.
type Outcome uint8

// Attempt outcomes.
const (
	Committed Outcome = iota // transaction committed
	Aborted                  // conflict; caller should retry with backoff
	Stashed                  // Doppel stashed it; engine will retry it itself
	UserAbort                // the TxFunc returned its own error
	Paused                   // engine busy with a phase transition; fn did not run
	// AbortedFenced is Aborted's commit-fence flavor: the transaction
	// touched a record fenced by an in-flight cross-shard commit. The
	// caller should retry, but must not spin on the worker indefinitely —
	// the fence releases only when the cross-shard commit's apply
	// transactions (which may be queued behind this very worker) have
	// run, so a blocked retry loop can deadlock the shard. Callers park
	// the transaction off the worker queue instead (see doppel's
	// deferred-retry lane).
	AbortedFenced
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case Committed:
		return "committed"
	case Aborted:
		return "aborted"
	case Stashed:
		return "stashed"
	case UserAbort:
		return "user-abort"
	case Paused:
		return "paused"
	case AbortedFenced:
		return "aborted-fenced"
	default:
		return "unknown"
	}
}

// FenceTx is implemented by transactions that can execute on behalf of
// the cross-shard commit holding per-key fences: setting the owning
// fence token lets the transaction read and write its own fenced
// records, which every other transaction aborts on. The router's merged
// revalidate+apply transaction is the only caller.
type FenceTx interface {
	// SetFenceToken declares the fence token this transaction owns.
	SetFenceToken(token uint64)
}

// Engine is a concurrency-control scheme under test. Worker IDs are
// 0..Workers()-1; each must be driven from a single goroutine (the
// paper's one-worker-per-core model).
type Engine interface {
	// Name identifies the scheme ("doppel", "occ", "2pl", "atomic").
	Name() string
	// Workers returns the configured worker count.
	Workers() int
	// Attempt executes fn once as worker w. submitNanos is the time the
	// logical transaction was first submitted (for latency accounting
	// across retries). The returned error carries detail for UserAbort.
	Attempt(w int, fn TxFunc, submitNanos int64) (Outcome, error)
	// Poll performs background duties for worker w (phase participation
	// in Doppel; a no-op elsewhere). Harness loops call it when idle.
	Poll(w int)
	// WorkerStats returns worker w's private statistics. Only the owning
	// goroutine may call it during a run; the harness merges after.
	WorkerStats(w int) *metrics.TxnStats
	// Stop releases engine resources (coordinator goroutines etc.).
	Stop()
}
