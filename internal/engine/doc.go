// Package engine defines the contract shared by every concurrency-control
// engine in this repository: Doppel (phase reconciliation), OCC, 2PL and
// Atomic. The benchmark harness drives all four through this interface so
// their measurements differ only in concurrency control, matching the
// paper's setup ("Both OCC and 2PL are implemented in the same framework
// as Doppel", §8.1).
//
// # The driving contract
//
// Each worker index w must be driven from a single goroutine calling
// Attempt (run one transaction) and Poll (participate in engine
// housekeeping — for Doppel, phase transitions) between transactions.
// Transaction bodies receive a Tx and may be re-executed after
// conflicts or stashes, so they must be pure functions of the database
// state they read. The sentinel errors classify outcomes: ErrAbort is
// a retryable conflict, ErrStash means the transaction was saved for
// the next joined phase (Doppel only); anything else is the caller's
// own error and aborts without retry.
package engine
