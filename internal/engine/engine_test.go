package engine_test

import (
	"errors"
	"testing"

	"doppel/internal/atomiceng"
	"doppel/internal/core"
	"doppel/internal/engine"
	"doppel/internal/occ"
	"doppel/internal/store"
	"doppel/internal/twopl"
)

// Every concurrency-control scheme in the repository must satisfy the
// shared Engine contract.
var (
	_ engine.Engine = (*core.DB)(nil)
	_ engine.Engine = (*occ.Engine)(nil)
	_ engine.Engine = (*twopl.Engine)(nil)
	_ engine.Engine = (*atomiceng.Engine)(nil)
)

func TestOutcomeString(t *testing.T) {
	want := map[engine.Outcome]string{
		engine.Committed:   "committed",
		engine.Aborted:     "aborted",
		engine.Stashed:     "stashed",
		engine.UserAbort:   "user-abort",
		engine.Paused:      "paused",
		engine.Outcome(99): "unknown",
	}
	for o, s := range want {
		if o.String() != s {
			t.Errorf("Outcome(%d).String() = %q, want %q", o, o.String(), s)
		}
	}
}

func TestSentinelErrorsDistinct(t *testing.T) {
	errs := []error{engine.ErrAbort, engine.ErrStash, engine.ErrUnsupported}
	for i, a := range errs {
		if a == nil || a.Error() == "" {
			t.Fatalf("sentinel %d is empty", i)
		}
		for j, b := range errs {
			if i != j && errors.Is(a, b) {
				t.Fatalf("sentinels %d and %d are not distinct", i, j)
			}
		}
	}
}

// commit drives one Attempt to a terminal outcome the way harness and
// production loops do: Paused and Aborted are retried after Poll.
func commit(t *testing.T, e engine.Engine, w int, fn engine.TxFunc) (engine.Outcome, error) {
	t.Helper()
	for tries := 0; tries < 100_000; tries++ {
		out, err := e.Attempt(w, fn, 0)
		switch out {
		case engine.Paused, engine.Aborted:
			e.Poll(w)
			continue
		default:
			return out, err
		}
	}
	t.Fatal("transaction never reached a terminal outcome")
	return 0, nil
}

// TestTxContract exercises the Tx semantics both OCC and Doppel's split
// execution must provide: read-your-writes, commit visibility,
// WorkerID, GetForUpdate-as-Get, and user aborts discarding all
// effects.
func TestTxContract(t *testing.T) {
	engines := map[string]func() engine.Engine{
		"occ": func() engine.Engine { return occ.New(store.New(), 1) },
		"doppel": func() engine.Engine {
			return core.Open(store.New(), core.DefaultConfig(1))
		},
		"2pl": func() engine.Engine { return twopl.New(store.New(), 1) },
	}
	for name, build := range engines {
		t.Run(name, func(t *testing.T) {
			e := build()
			defer e.Stop()

			out, err := commit(t, e, 0, func(tx engine.Tx) error {
				if got := tx.WorkerID(); got != 0 {
					t.Errorf("WorkerID = %d, want 0", got)
				}
				if err := tx.PutInt("a", 1); err != nil {
					return err
				}
				// Read-your-writes within the transaction.
				n, err := tx.GetInt("a")
				if err != nil {
					return err
				}
				if n != 1 {
					t.Errorf("read-your-writes: a = %d, want 1", n)
				}
				return tx.Add("a", 2)
			})
			if out != engine.Committed || err != nil {
				t.Fatalf("commit: %v %v", out, err)
			}

			// Committed effects are visible, via GetForUpdate and Get alike.
			// GetForUpdate comes first: 2PL treats a plain read followed by
			// GetForUpdate as a forbidden lock upgrade.
			out, err = commit(t, e, 0, func(tx engine.Tx) error {
				v, err := tx.GetForUpdate("a")
				if err != nil {
					return err
				}
				if got, _ := v.AsInt(); got != 3 {
					t.Errorf("GetForUpdate a = %d, want 3", got)
				}
				n, err := tx.GetInt("a")
				if err != nil {
					return err
				}
				if n != 3 {
					t.Errorf("a = %d, want 3", n)
				}
				return nil
			})
			if out != engine.Committed || err != nil {
				t.Fatalf("read: %v %v", out, err)
			}

			// A user abort surfaces the body's own error and discards all
			// buffered effects.
			boom := errors.New("boom")
			out, err = commit(t, e, 0, func(tx engine.Tx) error {
				if err := tx.Add("a", 100); err != nil {
					return err
				}
				return boom
			})
			if out != engine.UserAbort || !errors.Is(err, boom) {
				t.Fatalf("user abort: %v %v", out, err)
			}
			out, err = commit(t, e, 0, func(tx engine.Tx) error {
				n, err := tx.GetInt("a")
				if err != nil {
					return err
				}
				if n != 3 {
					t.Errorf("a = %d after user abort, want 3 (abort leaked writes)", n)
				}
				return nil
			})
			if out != engine.Committed || err != nil {
				t.Fatalf("post-abort read: %v %v", out, err)
			}

			// Commits count in the worker's stats.
			if s := e.WorkerStats(0); s.Committed == 0 {
				t.Error("WorkerStats.Committed = 0 after commits")
			}
			if e.Workers() != 1 {
				t.Errorf("Workers = %d, want 1", e.Workers())
			}
			if e.Name() == "" {
				t.Error("empty engine name")
			}
		})
	}
}

// TestSplittableOps runs every splittable operation through OCC and
// Doppel and checks the merged outcome, since these are the operations
// phase reconciliation reorders across cores.
func TestSplittableOps(t *testing.T) {
	engines := map[string]func() engine.Engine{
		"occ": func() engine.Engine { return occ.New(store.New(), 1) },
		"doppel": func() engine.Engine {
			return core.Open(store.New(), core.DefaultConfig(1))
		},
	}
	for name, build := range engines {
		t.Run(name, func(t *testing.T) {
			e := build()
			defer e.Stop()
			out, err := commit(t, e, 0, func(tx engine.Tx) error {
				if err := tx.Add("sum", 5); err != nil {
					return err
				}
				if err := tx.Max("hi", 7); err != nil {
					return err
				}
				if err := tx.Min("lo", -7); err != nil {
					return err
				}
				if err := tx.OPut("last", store.Order{A: 9}, []byte("x")); err != nil {
					return err
				}
				return tx.TopKInsert("top", 3, []byte("e"), 4)
			})
			if out != engine.Committed || err != nil {
				t.Fatalf("splittable commit: %v %v", out, err)
			}
			out, err = commit(t, e, 0, func(tx engine.Tx) error {
				if n, _ := tx.GetInt("sum"); n != 5 {
					t.Errorf("sum = %d", n)
				}
				if n, _ := tx.GetInt("hi"); n != 7 {
					t.Errorf("hi = %d", n)
				}
				if n, _ := tx.GetInt("lo"); n != -7 {
					t.Errorf("lo = %d", n)
				}
				tup, ok, err := tx.GetTuple("last")
				if err != nil || !ok || string(tup.Data) != "x" || tup.Order.A != 9 {
					t.Errorf("last = %+v %v %v", tup, ok, err)
				}
				es, err := tx.GetTopK("top")
				if err != nil || len(es) != 1 || string(es[0].Data) != "e" {
					t.Errorf("top = %+v %v", es, err)
				}
				return nil
			})
			if out != engine.Committed || err != nil {
				t.Fatalf("verify: %v %v", out, err)
			}
		})
	}
}
