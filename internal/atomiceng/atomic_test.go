package atomiceng

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"doppel/internal/engine"
	"doppel/internal/store"
)

func commit(t *testing.T, e *Engine, w int, fn engine.TxFunc) {
	t.Helper()
	out, err := e.Attempt(w, fn, time.Now().UnixNano())
	if err != nil || out != engine.Committed {
		t.Fatalf("attempt: %v %v", out, err)
	}
}

func TestBasicOps(t *testing.T) {
	e := New(store.New(), 1)
	commit(t, e, 0, func(tx engine.Tx) error {
		if err := tx.PutInt("a", 10); err != nil {
			return err
		}
		if err := tx.Add("a", 5); err != nil {
			return err
		}
		if err := tx.Max("a", 3); err != nil {
			return err
		}
		if err := tx.Min("a", 100); err != nil {
			return err
		}
		if err := tx.Mult("a", 2); err != nil {
			return err
		}
		n, err := tx.GetInt("a")
		if err != nil {
			return err
		}
		if n != 30 {
			return fmt.Errorf("got %d", n)
		}
		return nil
	})
	commit(t, e, 0, func(tx engine.Tx) error {
		if err := tx.PutBytes("b", []byte("z")); err != nil {
			return err
		}
		if b, _ := tx.GetBytes("b"); string(b) != "z" {
			return errors.New("bytes")
		}
		if err := tx.OPut("o", store.Order{A: 1}, []byte("o")); err != nil {
			return err
		}
		if _, ok, _ := tx.GetTuple("o"); !ok {
			return errors.New("tuple")
		}
		if err := tx.TopKInsert("t", 1, []byte("t"), 2); err != nil {
			return err
		}
		if es, _ := tx.GetTopK("t"); len(es) != 1 {
			return errors.New("topk")
		}
		if v, _ := tx.GetForUpdate("a"); v == nil {
			return errors.New("GetForUpdate")
		}
		if n, _ := tx.GetIntForUpdate("a"); n != 30 {
			return errors.New("GetIntForUpdate")
		}
		if tx.WorkerID() != 0 {
			return errors.New("worker")
		}
		return nil
	})
	if e.Name() != "atomic" || e.Workers() != 1 {
		t.Fatal("metadata")
	}
	e.Poll(0)
	e.Stop()
}

func TestUserErrorSurfaced(t *testing.T) {
	e := New(store.New(), 1)
	boom := errors.New("boom")
	out, err := e.Attempt(0, func(tx engine.Tx) error { return boom }, time.Now().UnixNano())
	if out != engine.UserAbort || !errors.Is(err, boom) {
		t.Fatalf("%v %v", out, err)
	}
	if e.WorkerStats(0).Aborted != 1 {
		t.Fatal("abort not counted")
	}
}

func TestTypeErrorSurfaced(t *testing.T) {
	e := New(store.New(), 1)
	commit(t, e, 0, func(tx engine.Tx) error { return tx.PutBytes("s", []byte("b")) })
	out, err := e.Attempt(0, func(tx engine.Tx) error { return tx.Add("s", 1) }, time.Now().UnixNano())
	if out != engine.UserAbort || err == nil {
		t.Fatalf("%v %v", out, err)
	}
}

func TestConcurrentIncrementsNoLostUpdates(t *testing.T) {
	// The whole point of the Atomic baseline: contended increments are
	// lock-free and never lose updates.
	e := New(store.New(), 8)
	e.Store().Preload("hot", store.IntValue(0))
	const perWorker = 5000
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				commit(t, e, w, func(tx engine.Tx) error { return tx.Add("hot", 1) })
			}
		}(w)
	}
	wg.Wait()
	commit(t, e, 0, func(tx engine.Tx) error {
		n, err := tx.GetInt("hot")
		if err != nil {
			return err
		}
		if n != 8*perWorker {
			return fmt.Errorf("lost updates: %d", n)
		}
		return nil
	})
}

func TestConcurrentMaxConverges(t *testing.T) {
	e := New(store.New(), 4)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				commit(t, e, w, func(tx engine.Tx) error {
					return tx.Max("m", int64(w*1000+i))
				})
			}
		}(w)
	}
	wg.Wait()
	commit(t, e, 0, func(tx engine.Tx) error {
		n, err := tx.GetInt("m")
		if err != nil {
			return err
		}
		if n != 3999 {
			return fmt.Errorf("max = %d", n)
		}
		return nil
	})
}

func TestLatencyRecorded(t *testing.T) {
	e := New(store.New(), 1)
	commit(t, e, 0, func(tx engine.Tx) error { return tx.Add("k", 1) })
	commit(t, e, 0, func(tx engine.Tx) error { _, err := tx.GetInt("k"); return err })
	s := e.WorkerStats(0)
	if s.WriteLatency.Count() != 1 || s.ReadLatency.Count() != 1 {
		t.Fatal("latency counts")
	}
}
